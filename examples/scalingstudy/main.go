// Scalingstudy: reproduce the paper's headline experiment — EDSR training
// scaled to 512 simulated V100 GPUs under the four communication
// configurations (default MPI, MPI-Reg, MPI-Opt, NCCL) — and report
// throughput, scaling efficiency, and the optimized speedup.
package main

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/scaling"
)

func main() {
	nodeCounts := []int{1, 4, 16, 64, 128} // 4 → 512 GPUs
	steps := 6

	tunings := []core.MPITuning{
		core.DefaultTuning(), // MPI: CUDA_VISIBLE_DEVICES pinned, IPC lost
		{Visibility: cluster.VisibilityPinned, RegistrationCache: true}, // MPI-Reg
		core.OptimizedTuning(), // MPI-Opt: MV2_VISIBLE_DEVICES split + cache
		{UseNCCL: true},        // NCCL
	}

	fmt.Println("Simulated Lassen: EDSR (B=32, F=256, x2), batch 4/GPU, 4 GPUs/node")
	fmt.Printf("single-GPU baseline: %.1f img/s (paper: 10.3)\n\n", scaling.SingleGPUBaseline(0))

	curves := make([][]core.ScalingPoint, len(tunings))
	for i, t := range tunings {
		curves[i] = core.ScalingStudy(t, nodeCounts, steps)
	}

	fmt.Printf("%-8s", "GPUs")
	for _, t := range tunings {
		fmt.Printf(" %16s", t)
	}
	fmt.Println()
	for row := range curves[0] {
		fmt.Printf("%-8d", curves[0][row].GPUs)
		for i := range tunings {
			p := curves[i][row]
			fmt.Printf(" %8.0f (%3.0f%%)", p.ImagesPerSec, 100*p.Efficiency)
		}
		fmt.Println()
	}

	last := len(nodeCounts) - 1
	def, opt := curves[0][last], curves[2][last]
	fmt.Printf("\nat %d GPUs: MPI-Opt %.0f img/s vs MPI %.0f img/s → %.2fx speedup (paper: 1.26x)\n",
		def.GPUs, opt.ImagesPerSec, def.ImagesPerSec, opt.ImagesPerSec/def.ImagesPerSec)
	fmt.Printf("efficiency: %.1f%% vs %.1f%% → +%.1f points (paper: +15.6)\n",
		100*opt.Efficiency, 100*def.Efficiency, 100*(opt.Efficiency-def.Efficiency))
}
