// Modelzoo: the architecture lineage from the paper's background section
// (II-E/F) on real training runs — SRCNN (2014, refines a bicubic
// upscale), FSRCNN (2016, LR-resolution body with a learned
// deconvolution upsampler), SRResNet (2017, residual blocks with batch
// norm), and EDSR (2017, batch norm removed, residual scaling; the
// paper's workload) — all trained on the same synthetic data and compared
// by parameter count and held-out PSNR against the bicubic baseline.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/data"
	"repro/internal/trainer"
)

func main() {
	steps := flag.Int("steps", 250, "training steps per model")
	flag.Parse()

	base := trainer.Config{
		Data:      data.SyntheticConfig{Images: 64, Height: 48, Width: 48, Channels: 3, Seed: 7},
		Steps:     *steps,
		BatchSize: 4,
		PatchSize: 12,
		LR:        2e-3,
		Seed:      1,
	}

	zoo := []trainer.ZooConfig{
		{Arch: trainer.ArchSRCNN, Scale: 2, Train: base},
		{Arch: trainer.ArchFSRCNN, Scale: 2, Blocks: 2, Feats: 24, Train: base},
		{Arch: trainer.ArchSRResNet, Scale: 2, Blocks: 3, Feats: 16, Train: base},
		{Arch: trainer.ArchEDSR, Scale: 2, Blocks: 4, Feats: 16, Train: base},
	}

	fmt.Printf("training %d architectures for %d steps each on synthetic DIV2K-like data...\n\n",
		len(zoo), *steps)
	fmt.Printf("%-10s %10s %12s %14s %12s\n", "Model", "Params", "Final L1", "PSNR (dB)", "vs bicubic")
	var bicubic float64
	for _, z := range zoo {
		res, err := trainer.TrainZoo(z, 4)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		bicubic = res.PSNRBicubic
		fmt.Printf("%-10s %10d %12.4f %14.2f %+11.2f\n",
			res.Arch, res.Params, res.FinalLoss, res.PSNR, res.PSNR-res.PSNRBicubic)
	}
	fmt.Printf("%-10s %10s %12s %14.2f %12s\n", "bicubic", "-", "-", bicubic, "baseline")
	fmt.Println("\nthe EDSR lineage (remove batch norm, scale residuals) is the paper's Fig. 5 story")
}
