// Srgan: adversarial super-resolution training in miniature — the GAN
// branch of the DLSR family the paper's background surveys. A SRResNet
// generator and a convolutional discriminator train in alternation: D
// learns to tell real HR patches from generated ones; G minimizes a
// content loss (L1) plus the adversarial term that pushes its outputs
// toward D's "real" region.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/data"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func main() {
	steps := flag.Int("steps", 120, "adversarial training steps")
	advWeight := flag.Float64("adv", 1e-2, "adversarial loss weight")
	flag.Parse()

	rng := tensor.NewRNG(1)
	gen := models.NewSRResNet(3, 2, 12, 2, rng)
	disc := models.NewDiscriminator(3, []int{8, 16}, rng)
	gOpt := nn.NewAdam(gen.Params(), 1e-3)
	dOpt := nn.NewAdam(disc.Params(), 1e-3)

	ds := data.NewDataset(data.SyntheticConfig{Images: 48, Height: 48, Width: 48, Channels: 3, Seed: 7})
	loader, err := data.NewLoader(ds, data.LoaderConfig{
		BatchSize: 4, PatchSize: 8, Scale: 2, WorldSize: 1, Seed: 3,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ones := func(n int) *tensor.Tensor {
		t := tensor.New(n, 1)
		t.Fill(1)
		return t
	}
	zeros := func(n int) *tensor.Tensor { return tensor.New(n, 1) }
	bce := nn.BCEWithLogits{}
	l1 := nn.L1Loss{}

	fmt.Printf("adversarial training: G %d params, D %d params, %d steps\n",
		gen.NumParams(), disc.NumParams(), *steps)
	for step := 0; step < *steps; step++ {
		batch := loader.Next()
		n := batch.HR.Dim(0)

		// --- Discriminator step: real HR → 1, generated SR → 0.
		fake := gen.Forward(batch.LR)
		dOpt.ZeroGrad()
		realLogits := disc.Forward(batch.HR)
		lReal, gReal := bce.Forward(realLogits, ones(n))
		disc.Backward(gReal)
		fakeLogits := disc.Forward(fake)
		lFake, gFake := bce.Forward(fakeLogits, zeros(n))
		disc.Backward(gFake)
		dOpt.Step()

		// --- Generator step: content loss + adversarial loss through D.
		gOpt.ZeroGrad()
		sr := gen.Forward(batch.LR)
		lContent, gContent := l1.Forward(sr, batch.HR)
		logits := disc.Forward(sr)
		lAdv, gAdv := bce.Forward(logits, ones(n)) // G wants D to say "real"
		// Route the adversarial gradient back through D to the image.
		nn.ZeroGrads(disc.Params()) // discard D's grads from the G pass
		gImage := disc.Backward(gAdv)
		gImage.Scale(float32(*advWeight))
		gContent.Add(gImage)
		gen.Backward(gContent)
		gOpt.Step()

		if (step+1)%20 == 0 {
			fmt.Printf("step %3d  D(real) %.3f  D(fake) %.3f  G content %.4f  G adv %.3f\n",
				step+1, lReal, lFake, lContent, lAdv)
		}
	}

	// Evaluate the adversarially-trained generator.
	lr, hr := ds.Pair(0, 2)
	sr := gen.Forward(lr)
	sr.Clamp(0, 1)
	bi := models.BicubicUpscale(lr, 2)
	bi.Clamp(0, 1)
	fmt.Printf("\nPSNR — SRGAN generator: %.2f dB, bicubic: %.2f dB\n",
		metrics.PSNR(sr, hr, 1), metrics.PSNR(bi, hr, 1))
	fmt.Println("(GAN training trades PSNR for perceptual sharpness; the paper's Fig. 4 point)")
}
