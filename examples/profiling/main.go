// Profiling: attach the hvprof profiler to real in-process MPI collectives
// — the paper's Section III-B workflow in miniature. The example runs a
// few real fused allreduces of different sizes through the Horovod engine
// and prints the resulting message-size bucket report, then shows the
// Table I-style comparison between two simulated tunings.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/horovod"
	"repro/internal/hvprof"
	"repro/internal/mpi"
)

func main() {
	// Part 1 — profile REAL collectives: 4 ranks run fused allreduces on
	// real float32 buffers; every MPI call lands in the profiler.
	prof := hvprof.New()
	world := mpi.NewWorld(4)
	world.Run(func(comm *mpi.Comm) {
		comm.Profiler = prof
		engine := horovod.NewEngine(comm, horovod.Config{
			FusionThresholdBytes: 1 << 20, // 1 MB fusion buffer
			Average:              true,
			Algo:                 mpi.AlgoRing,
		})
		// A mix of small and large gradients, like a real model.
		sizes := []int{256, 4096, 65536, 300_000}
		ids := make([]int, len(sizes))
		for i, n := range sizes {
			buf := make([]float32, n)
			for j := range buf {
				buf[j] = float32(comm.Rank())
			}
			ids[i] = engine.Register(fmt.Sprintf("grad%d", i), buf)
		}
		engine.Start()
		for step := 0; step < 3; step++ {
			waits := make([]<-chan struct{}, len(ids))
			for i := len(ids) - 1; i >= 0; i-- {
				waits[i] = engine.Submit(ids[i])
			}
			for _, w := range waits {
				<-w
			}
		}
		engine.Shutdown()
	})
	fmt.Println("hvprof report for REAL in-process MPI traffic (4 ranks, 3 steps):")
	fmt.Println(prof.Report().String())

	// Part 2 — the paper's diagnostic payoff: the same profiler applied
	// to the simulated cluster exposes where default MPI loses time.
	fmt.Println("Table I-style comparison on the simulated cluster (default vs MPI-Opt):")
	rows := core.CompareTunings(core.DefaultTuning(), core.OptimizedTuning(), 1, 25)
	fmt.Println(hvprof.FormatCompare(rows, "MPI_Allreduce"))
	fmt.Println("(the ≥16 MB buckets improve ~50% once CUDA IPC is restored — the paper's key result)")
}
