// Superres: the paper's Fig. 4 in miniature — train EDSR, then write
// side-by-side PNG comparisons (nearest-style LR blow-up | bicubic | EDSR
// | ground truth) for held-out images, with per-image PSNR/SSIM.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/data"
	"repro/internal/imageio"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/tensor"
	"repro/internal/trainer"
)

func main() {
	outDir := flag.String("out", "superres-out", "output directory for PNGs")
	steps := flag.Int("steps", 400, "training steps")
	n := flag.Int("n", 3, "held-out images to render")
	flag.Parse()

	cfg := trainer.DefaultConfig()
	cfg.Steps = *steps
	cfg.LR = 2e-3
	cfg.LogEvery = 100
	cfg.Log = os.Stdout

	fmt.Printf("training EDSR (B=%d, F=%d, x%d) for %d steps...\n",
		cfg.Model.NumBlocks, cfg.Model.NumFeats, cfg.Model.Scale, cfg.Steps)
	model, _, err := trainer.TrainSingle(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Held-out images beyond the training set.
	eval := data.NewDataset(data.SyntheticConfig{
		Images: cfg.Data.Images + *n, Height: cfg.Data.Height,
		Width: cfg.Data.Width, Channels: 3, Seed: cfg.Data.Seed,
	})
	for i := 0; i < *n; i++ {
		lr, hr := eval.Pair(cfg.Data.Images+i, cfg.Model.Scale)
		sr := model.Forward(lr)
		sr.Clamp(0, 1)
		bicubic := models.BicubicUpscale(lr, cfg.Model.Scale)
		bicubic.Clamp(0, 1)
		// Nearest-neighbour blow-up of the LR input for visual reference.
		nearest := upscaleNearest(lr, cfg.Model.Scale)

		panel, err := imageio.SideBySide(nearest, bicubic, sr, hr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		path := filepath.Join(*outDir, fmt.Sprintf("compare_%02d.png", i))
		if err := imageio.SavePNG(path, panel); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s  (LR | bicubic | EDSR | HR)\n", path)
		fmt.Printf("  bicubic: PSNR %6.2f dB  SSIM %.4f\n",
			metrics.PSNR(bicubic, hr, 1), metrics.SSIM(bicubic, hr, 1))
		fmt.Printf("  EDSR:    PSNR %6.2f dB  SSIM %.4f\n",
			metrics.PSNR(sr, hr, 1), metrics.SSIM(sr, hr, 1))
	}
}

// upscaleNearest repeats each pixel s times in both axes — the crudest
// possible upsampler, shown as the visual reference panel.
func upscaleNearest(t *tensor.Tensor, s int) *tensor.Tensor {
	n, c, h, w := t.Dim(0), t.Dim(1), t.Dim(2), t.Dim(3)
	out := tensor.New(n, c, h*s, w*s)
	td, od := t.Data(), out.Data()
	for p := 0; p < n*c; p++ {
		for y := 0; y < h*s; y++ {
			srow := td[p*h*w+(y/s)*w : p*h*w+(y/s+1)*w]
			drow := od[p*h*s*w*s+y*w*s : p*h*s*w*s+(y+1)*w*s]
			for x := range drow {
				drow[x] = srow[x/s]
			}
		}
	}
	return out
}
