// Quickstart: train a tiny EDSR super-resolution network for real on the
// CPU, then compare its PSNR against classical bicubic upsampling on
// held-out images — the library's 60-second tour.
package main

import (
	"fmt"
	"os"

	"repro/internal/trainer"
)

func main() {
	cfg := trainer.DefaultConfig() // tiny EDSR, synthetic DIV2K-like data
	cfg.Steps = 200
	cfg.LR = 2e-3
	cfg.LogEvery = 40
	cfg.Log = os.Stdout

	fmt.Printf("Training EDSR (B=%d, F=%d, x%d) for %d steps on synthetic data...\n",
		cfg.Model.NumBlocks, cfg.Model.NumFeats, cfg.Model.Scale, cfg.Steps)
	model, stats, err := trainer.TrainSingle(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("trained: final L1 loss %.4f at %.1f images/sec\n\n", stats.FinalLoss, stats.ImagesPerSec)

	psnrModel, psnrBicubic := trainer.Evaluate(model, cfg, 4)
	fmt.Printf("held-out PSNR — EDSR: %.2f dB, bicubic: %.2f dB (Δ %+.2f dB)\n",
		psnrModel, psnrBicubic, psnrModel-psnrBicubic)
	if psnrModel > psnrBicubic {
		fmt.Println("the trained network beats the classical baseline (the paper's Fig. 4 in miniature)")
	}
}
