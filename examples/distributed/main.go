// Distributed: real data-parallel EDSR training across in-process MPI
// ranks, following the paper's Section III-A recipe step by step —
// broadcast initial parameters, shard the dataset, wrap the optimizer in
// a Horovod-style DistributedOptimizer, and scale the learning rate. The
// example verifies that all replicas stay bit-identical after training
// (the invariant synchronous data parallelism must maintain).
package main

import (
	"fmt"
	"os"
	"sync"

	"repro/internal/data"
	"repro/internal/horovod"
	"repro/internal/models"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func main() {
	const worldSize = 4
	const steps = 20

	world := mpi.NewWorld(worldSize)
	var mu sync.Mutex
	finalParams := make([][]float32, worldSize)
	losses := make([]float64, worldSize)

	world.Run(func(comm *mpi.Comm) {
		// 1. One process per (virtual) GPU; identical model structure on
		//    every rank, deliberately different initial weights to prove
		//    the broadcast works.
		rng := tensor.NewRNG(uint64(comm.Rank()) + 1)
		model := models.NewEDSR(models.EDSRConfig{
			NumBlocks: 2, NumFeats: 8, Scale: 2, ResScale: 0.1, Colors: 3,
		}, rng)

		// 2. Broadcast rank 0's parameters so all replicas start equal.
		horovod.BroadcastParameters(comm, model.Params(), 0)

		// 3. Wrap the optimizer; the engine fuses and averages gradients.
		engine := horovod.NewEngine(comm, horovod.DefaultConfig())
		opt := nn.NewAdam(model.Params(), 1e-3)
		dopt := horovod.NewDistributedOptimizer(opt, engine)
		engine.Start()
		defer engine.Shutdown()

		// 4. Scale the learning rate by the world size.
		horovod.ScaleLR(opt, comm.Size())

		// Shard the dataset: rank r trains on images ≡ r (mod worldSize).
		ds := data.NewDataset(data.SyntheticConfig{
			Images: 32, Height: 32, Width: 32, Channels: 3, Seed: 9,
		})
		loader, err := data.NewLoader(ds, data.LoaderConfig{
			BatchSize: 2, PatchSize: 8, Scale: 2,
			Rank: comm.Rank(), WorldSize: comm.Size(), Seed: 11,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}

		var last float64
		for step := 0; step < steps; step++ {
			batch := loader.Next()
			dopt.ZeroGrad()
			pred := model.Forward(batch.LR)
			loss, grad := nn.L1Loss{}.Forward(pred, batch.HR)
			model.Backward(grad)
			dopt.Step() // allreduce + update
			last = loss
			if comm.Rank() == 0 && (step+1)%5 == 0 {
				fmt.Printf("step %2d  rank0 shard loss %.4f\n", step+1, loss)
			}
		}

		var flat []float32
		for _, p := range model.Params() {
			flat = append(flat, p.Value.Data()...)
		}
		mu.Lock()
		finalParams[comm.Rank()] = flat
		losses[comm.Rank()] = last
		mu.Unlock()
	})

	// Verify the replicas never diverged.
	for r := 1; r < worldSize; r++ {
		for i := range finalParams[0] {
			if finalParams[r][i] != finalParams[0][i] {
				fmt.Printf("FAIL: rank %d diverged from rank 0 at parameter %d\n", r, i)
				os.Exit(1)
			}
		}
	}
	fmt.Printf("\nall %d replicas remained bit-identical after %d synchronized steps\n", worldSize, steps)
	fmt.Printf("per-rank final shard losses: %v\n", losses)
}
