// Command bench-serve measures the serving path end to end and emits a
// machine-readable BENCH_serve.json: upscale throughput (img/s) and
// latency percentiles (p50/p99) across micro-batch sizes, driven by
// concurrent HTTP clients POSTing PNGs through a real listener — the
// full decode → queue → coalesce → batched forward → stitch → encode
// pipeline, exactly what sr-serve runs in production.
//
// Batching trades latency for throughput by amortizing per-forward
// overhead across coalesced requests; the sweep makes that trade-off
// measurable on the machine at hand. The report records cores
// (GOMAXPROCS): with one worker per replica, batching gains require the
// batched forward to use the cores a larger batch exposes, so single-
// core boxes show the queueing cost, not the speedup (see
// EXPERIMENTS.md).
//
// Usage:
//
//	bench-serve [-o BENCH_serve.json] [-quick] [-requests 64] [-clients 16]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/data"
	"repro/internal/imageio"
	"repro/internal/models"
	"repro/internal/serve"
	"repro/internal/serve/cache"
	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/trace/request"
)

// sweepResult is one (variant, micro-batch-size) cell of the sweep.
// Variant and PSNRVsFloat32 tie every throughput number to the
// arithmetic that produced it and the golden-set fidelity it was
// admitted with; VsFloat32 is the speedup over the float32 variant at
// the same batch size.
type sweepResult struct {
	Variant       string   `json:"variant"`
	PSNRVsFloat32 *float64 `json:"psnr_vs_float32_db,omitempty"`
	MaxBatch      int      `json:"max_batch"`
	Workers       int      `json:"workers"`
	Clients       int      `json:"clients"`
	Requests      int      `json:"requests"`
	ImgPerSec     float64  `json:"img_per_sec"`
	P50Ms         float64  `json:"p50_ms"`
	P99Ms         float64  `json:"p99_ms"`
	MeanBatch     float64  `json:"mean_batch"`
	VsBatch1      float64  `json:"vs_batch1"`
	VsFloat32     float64  `json:"vs_float32,omitempty"`
	BatchedFwds   int64    `json:"batched_forwards"`
	TotalSubmits  int64    `json:"total_submits"`
	// Attribution sums per-stage self time (merged span intervals, ms)
	// across the traces the server's tail sampler retained during the
	// timed run; AttrCoverage is the mean fraction of request wall time
	// those stages explain.
	TracesKept   int                `json:"traces_kept,omitempty"`
	Attribution  map[string]float64 `json:"attribution_ms,omitempty"`
	AttrCoverage float64            `json:"attr_coverage_mean,omitempty"`
}

// cacheSweepResult is one point of the result-cache sweep: the same
// HTTP pipeline as the batch sweep, but driven by Zipf-distributed
// repeat traffic over a fixed scene catalog, with the cache either off
// (the baseline) or sized by CacheMB. VsCacheOff is the throughput
// ratio against the cache-off point of the same traffic.
type cacheSweepResult struct {
	CacheMB       int     `json:"cache_mb"` // 0 = cache off
	ZipfS         float64 `json:"zipf_s"`
	Scenes        int     `json:"scenes"`
	Clients       int     `json:"clients"`
	Requests      int     `json:"requests"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	HitRatio      float64 `json:"hit_ratio"`
	InflightWaits int64   `json:"inflight_waits"`
	Evictions     int64   `json:"evictions"`
	CacheBytes    int64   `json:"cache_bytes"`
	ImgPerSec     float64 `json:"img_per_sec"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	VsCacheOff    float64 `json:"vs_cache_off,omitempty"`
}

// report is the BENCH_serve.json schema.
type report struct {
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	Model      string             `json:"model"`
	Blocks     int                `json:"blocks"`
	Feats      int                `json:"feats"`
	Scale      int                `json:"scale"`
	ImageEdge  int                `json:"image_edge_lr_px"`
	Tile       int                `json:"tile"`
	MaxDelayMs float64            `json:"max_delay_ms"`
	Seed       uint64             `json:"seed"`
	Sweep      []sweepResult      `json:"sweep"`
	CacheSweep []cacheSweepResult `json:"cache_sweep,omitempty"`
}

// benchPoint serves one engine configuration over a real TCP listener
// and hammers it with concurrent clients.
func benchPoint(master *models.EDSR, variant string, maxBatch, workers, clients, requests, size, tile int, maxDelay time.Duration, pngBody []byte) (sweepResult, error) {
	res := sweepResult{Variant: variant, MaxBatch: maxBatch, Workers: workers, Clients: clients, Requests: requests}

	reg := trace.NewMetrics()
	met := serve.NewMetrics(reg)
	f, err := serve.EDSRVariantFactory(master, variant)
	if err != nil {
		return res, err
	}
	engine := serve.NewEngine(serve.EngineConfig{
		Batch: serve.BatcherConfig{
			MaxBatch: maxBatch,
			MaxDelay: maxDelay,
			Queue:    4 * clients * max(1, (size+tile-1)/tile*(size+tile-1)/tile),
			Workers:  workers,
		},
		TileSize: tile,
	}, met, nil)
	if err := engine.RegisterInfo("edsr-tiny", f, variant, nil); err != nil {
		return res, err
	}
	defer engine.Shutdown()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	srv := serve.NewServer(engine, reg, met, 0)
	// Keep every 4th request so the BENCH attribution table averages a
	// healthy trace population without tracing allocs dominating the run.
	srv.SetTraceStore(request.NewStore(request.Config{Capacity: 512, SampleRate: 0.25}))
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	url := "http://" + ln.Addr().String() + "/v1/upscale"

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
	post := func() (time.Duration, error) {
		began := time.Now()
		resp, err := client.Post(url, "image/png", bytes.NewReader(pngBody))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("status %d", resp.StatusCode)
		}
		return time.Since(began), nil
	}

	// Warmup: stabilize batcher and layer buffers outside the timed run.
	for i := 0; i < 2*clients; i++ {
		if _, err := post(); err != nil {
			return res, fmt.Errorf("warmup: %w", err)
		}
	}
	warmBatches, warmSubmits := met.Batches.Value(), met.Submits.Value()

	lats := make([]time.Duration, requests)
	errs := make([]error, clients)
	perClient := requests / clients
	began := time.Now()
	done := make(chan int, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			for i := 0; i < perClient; i++ {
				d, err := post()
				if err != nil {
					errs[c] = err
					break
				}
				lats[c*perClient+i] = d
			}
			done <- c
		}(c)
	}
	for c := 0; c < clients; c++ {
		<-done
	}
	wall := time.Since(began)
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}

	n := clients * perClient
	lats = lats[:n]
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res.Requests = n
	res.ImgPerSec = float64(n) / wall.Seconds()
	res.P50Ms = float64(lats[n/2].Microseconds()) / 1e3
	res.P99Ms = float64(lats[min(n-1, n*99/100)].Microseconds()) / 1e3
	res.BatchedFwds = met.Batches.Value() - warmBatches
	res.TotalSubmits = met.Submits.Value() - warmSubmits
	if res.BatchedFwds > 0 {
		res.MeanBatch = float64(res.TotalSubmits) / float64(res.BatchedFwds)
	}

	// Per-stage latency attribution from the traces the tail sampler
	// retained: where did a request's wall time actually go?
	var coverSum float64
	for _, t := range srv.TraceStore().Retained() {
		if t.Status != http.StatusOK {
			continue
		}
		rows, covered := t.Attribution()
		if res.Attribution == nil {
			res.Attribution = make(map[string]float64)
		}
		for _, row := range rows {
			res.Attribution[row.Label] += float64(row.Dur) / 1e6
		}
		coverSum += covered
		res.TracesKept++
	}
	if res.TracesKept > 0 {
		res.AttrCoverage = coverSum / float64(res.TracesKept)
	}
	return res, nil
}

// cacheBenchPoint replays a Zipf-distributed request stream (seq indexes
// into the scene PNGs) against a float32 engine with the given cache
// budget over a real listener. The identical stream is replayed for every
// budget, so cache-off and cache-on points see byte-for-byte the same
// traffic and differ only in the cache.
func cacheBenchPoint(master *models.EDSR, cacheMB, clients int, seq []int, pngs [][]byte, tile int, maxDelay time.Duration) (cacheSweepResult, error) {
	res := cacheSweepResult{CacheMB: cacheMB, Scenes: len(pngs), Clients: clients, Requests: len(seq)}

	reg := trace.NewMetrics()
	met := serve.NewMetrics(reg)
	f, err := serve.EDSRVariantFactory(master, serve.VariantFloat32)
	if err != nil {
		return res, err
	}
	engine := serve.NewEngine(serve.EngineConfig{
		Batch: serve.BatcherConfig{
			MaxBatch: 4,
			MaxDelay: maxDelay,
			Queue:    4 * clients,
			Workers:  1,
		},
		TileSize: tile,
		Cache:    cache.Config{MaxBytes: int64(cacheMB) << 20},
	}, met, nil)
	if err := engine.RegisterInfo("edsr-tiny", f, serve.VariantFloat32, nil); err != nil {
		return res, err
	}
	defer engine.Shutdown()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, err
	}
	httpSrv := &http.Server{Handler: serve.NewServer(engine, reg, met, 0)}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	url := "http://" + ln.Addr().String() + "/v1/upscale"

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: clients}}
	post := func(body []byte) (time.Duration, error) {
		began := time.Now()
		resp, err := client.Post(url, "image/png", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("status %d", resp.StatusCode)
		}
		return time.Since(began), nil
	}

	// Warmup outside the timed run: one cold request to stabilize layer
	// buffers, on a scene OUTSIDE the catalog so the cache starts empty
	// and the measured hit ratio reflects the Zipf stream alone.
	warm := tensor.New(1, 3, 8, 8)
	var warmPNG bytes.Buffer
	if err := imageio.WritePNG(&warmPNG, warm); err != nil {
		return res, err
	}
	for i := 0; i < 2; i++ {
		if _, err := post(warmPNG.Bytes()); err != nil {
			return res, fmt.Errorf("warmup: %w", err)
		}
	}
	warmHits, warmMisses := met.Cache.Hits.Value(), met.Cache.Misses.Value()
	warmWaits, warmEvicts := met.Cache.InflightWaits.Value(), met.Cache.Evictions.Value()

	n := len(seq) / clients * clients
	lats := make([]time.Duration, n)
	errs := make([]error, clients)
	perClient := n / clients
	began := time.Now()
	done := make(chan struct{}, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < perClient; i++ {
				d, err := post(pngs[seq[c*perClient+i]])
				if err != nil {
					errs[c] = err
					return
				}
				lats[c*perClient+i] = d
			}
		}(c)
	}
	for c := 0; c < clients; c++ {
		<-done
	}
	wall := time.Since(began)
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	res.Requests = n
	res.ImgPerSec = float64(n) / wall.Seconds()
	res.P50Ms = float64(lats[n/2].Microseconds()) / 1e3
	res.P99Ms = float64(lats[min(n-1, n*99/100)].Microseconds()) / 1e3
	res.Hits = met.Cache.Hits.Value() - warmHits
	res.Misses = met.Cache.Misses.Value() - warmMisses
	res.InflightWaits = met.Cache.InflightWaits.Value() - warmWaits
	res.Evictions = met.Cache.Evictions.Value() - warmEvicts
	if lookups := res.Hits + res.Misses; lookups > 0 {
		res.HitRatio = float64(res.Hits) / float64(lookups)
	}
	if c := engine.Cache(); c != nil {
		res.CacheBytes = c.Bytes()
	}
	return res, nil
}

func main() {
	out := flag.String("o", "BENCH_serve.json", "output JSON path")
	quick := flag.Bool("quick", false, "smaller sweep for CI smoke")
	requests := flag.Int("requests", 64, "timed requests per sweep point")
	clients := flag.Int("clients", 16, "concurrent HTTP clients")
	size := flag.Int("size", 32, "LR image edge in pixels")
	tile := flag.Int("tile", 48, "LR tile edge (<0 disables tiling)")
	workers := flag.Int("workers", 1, "batcher model replicas")
	maxDelay := flag.Duration("max-delay", 2*time.Millisecond, "batch-open hold time")
	variants := flag.String("variants", "float32,fused,int8", "comma-separated serving variants to sweep")
	seed := flag.Uint64("seed", 9, "RNG seed for benchmark images and Zipf traffic (recorded in the report)")
	zipfS := flag.Float64("zipf-s", 1.1, "Zipf exponent for cache-sweep repeat traffic (must be > 1)")
	cacheMB := flag.Int("cache-mb", 256, "result-cache budget for the cache-on sweep point (MiB)")
	cacheScenes := flag.Int("cache-scenes", 32, "distinct scenes in the cache-sweep catalog")
	cacheRequests := flag.Int("cache-requests", 512, "timed requests per cache-sweep point (0 skips the cache sweep)")
	flag.Parse()

	cfg := models.EDSRTiny()
	rep := report{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Model:      "edsr-tiny",
		Blocks:     cfg.NumBlocks,
		Feats:      cfg.NumFeats,
		Scale:      cfg.Scale,
		ImageEdge:  *size,
		Tile:       *tile,
		MaxDelayMs: float64(maxDelay.Microseconds()) / 1e3,
		Seed:       *seed,
	}

	// The benchmark image: a deterministic random LR PNG.
	rng := tensor.NewRNG(*seed)
	x := tensor.New(1, 3, *size, *size)
	x.FillUniform(rng, 0, 1)
	var png bytes.Buffer
	if err := imageio.WritePNG(&png, x); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	batches := []int{1, 2, 4, 8, 16}
	reqN, cliN := *requests, *clients
	cacheReqN, cacheScN := *cacheRequests, *cacheScenes
	if *quick {
		batches = []int{1, 4}
		reqN = min(reqN, 16)
		cliN = min(cliN, 4)
		cacheReqN = min(cacheReqN, 48)
		cacheScN = min(cacheScN, 8)
	}

	// One master weight set across all variants, so every sweep cell
	// serves the same model and the gate deltas are meaningful.
	master := models.NewEDSR(models.EDSRTiny(), tensor.NewRNG(1))
	float32At := map[int]float64{} // img/s of the float32 variant per batch size
	for _, vs := range strings.Split(*variants, ",") {
		variant, err := serve.ParseVariant(strings.TrimSpace(vs))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Record each compiled variant's golden-set fidelity alongside its
		// throughput, same gate sr-serve admits it with.
		var psnr *float64
		if variant != serve.VariantFloat32 {
			cand, _ := serve.EDSRVariantFactory(master, variant)
			g := serve.RunGate("edsr-tiny", variant, cand, serve.EDSRFactory(master))
			fmt.Fprintln(os.Stderr, g.Transcript())
			psnr = &g.DeltaDB
		}
		var batch1 float64
		for _, mb := range batches {
			r, err := benchPoint(master, variant, mb, *workers, cliN, reqN, *size, *tile, *maxDelay, png.Bytes())
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s max-batch %d: %v\n", variant, mb, err)
				os.Exit(1)
			}
			r.PSNRVsFloat32 = psnr
			if mb == batches[0] {
				batch1 = r.ImgPerSec
			}
			if batch1 > 0 {
				r.VsBatch1 = r.ImgPerSec / batch1
			}
			if variant == serve.VariantFloat32 {
				float32At[mb] = r.ImgPerSec
			} else if base := float32At[mb]; base > 0 {
				r.VsFloat32 = r.ImgPerSec / base
			}
			rep.Sweep = append(rep.Sweep, r)
			fmt.Fprintf(os.Stderr,
				"%-7s max-batch %2d: %6.2f img/s  p50 %7.2f ms  p99 %7.2f ms  mean batch %.2f  (%.2fx vs batch 1, %.2fx vs float32)\n",
				variant, mb, r.ImgPerSec, r.P50Ms, r.P99Ms, r.MeanBatch, r.VsBatch1, r.VsFloat32)
		}
	}

	// Cache sweep: Zipf-distributed repeat traffic over a synthetic scene
	// catalog, cache off vs on. Production SR traffic repeats (popular
	// thumbnails, retried jobs); Zipf s≈1.1 is the classic web-request
	// skew, so this point estimates what the result cache buys a real
	// deployment rather than the adversarial all-unique stream above.
	if cacheReqN > 0 {
		ds := data.NewDataset(data.SyntheticConfig{
			Images: cacheScN, Height: *size, Width: *size, Channels: 3, Seed: *seed,
		})
		pngs := make([][]byte, cacheScN)
		for i := range pngs {
			var buf bytes.Buffer
			if err := imageio.WritePNG(&buf, ds.HR(i)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			pngs[i] = buf.Bytes()
		}
		seq := data.NewZipfSampler(*seed, *zipfS, cacheScN).Sequence(cacheReqN)

		var base float64
		for _, mb := range []int{0, *cacheMB} {
			r, err := cacheBenchPoint(master, mb, cliN, seq, pngs, *tile, *maxDelay)
			if err != nil {
				fmt.Fprintf(os.Stderr, "cache %d MiB: %v\n", mb, err)
				os.Exit(1)
			}
			r.ZipfS = *zipfS
			if mb == 0 {
				base = r.ImgPerSec
			} else if base > 0 {
				r.VsCacheOff = r.ImgPerSec / base
			}
			rep.CacheSweep = append(rep.CacheSweep, r)
			fmt.Fprintf(os.Stderr,
				"cache %3d MiB zipf %.2f: %7.2f img/s  p50 %7.2f ms  p99 %7.2f ms  hit %.2f  waits %d  (%.2fx vs cache-off)\n",
				mb, *zipfS, r.ImgPerSec, r.P50Ms, r.P99Ms, r.HitRatio, r.InflightWaits, r.VsCacheOff)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f.Close()
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}
