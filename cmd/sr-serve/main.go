// Command sr-serve runs the batched super-resolution inference server:
// POST a PNG to /v1/upscale and get the super-resolved PNG back.
//
// Concurrent requests are coalesced into micro-batches (the serving-side
// analogue of the paper's batched training forward), large images are
// split into halo tiles to bound activation memory, and the process
// exposes the same observability surface as training: Prometheus
// counters on /metrics and, with -trace, a Chrome trace_event timeline
// of every request, queue wait, and batch on shutdown.
//
// SIGINT/SIGTERM drains gracefully: /healthz flips to 503, new requests
// are rejected, in-flight requests and queued batches complete, then the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/cache"
	"repro/internal/trace"
	"repro/internal/trace/request"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	checkpoint := flag.String("checkpoint", "", "serve a trained EDSR checkpoint (weights-only or full training state) as model \"edsr\"")
	builtins := flag.String("models", "bicubic", "comma-separated built-in models to also serve (bicubic, edsr-tiny, srcnn)")
	variant := flag.String("variant", "float32", "serving variant for network models: float32 (training graph), fused (prepacked weights + fused conv+bias+ReLU), int8 (quantized conv); compiled variants must pass the golden-set PSNR gate or the server refuses to start")
	maxBatch := flag.Int("max-batch", 8, "largest coalesced micro-batch")
	maxDelay := flag.Duration("max-delay", 2*time.Millisecond, "how long a worker holds an open batch for same-shaped followers")
	queue := flag.Int("queue", 64, "pending-request queue bound (full queue returns 429)")
	workers := flag.Int("workers", 1, "model replicas running batches concurrently")
	tile := flag.Int("tile", 48, "LR tile edge for splitting large images (<0 disables tiling)")
	maxBody := flag.Int64("max-body", serve.DefaultMaxBodyBytes, "largest accepted PNG upload in bytes")
	cacheMB := flag.Int("cache-mb", 256, "content-addressed result-cache budget in MiB (repeat requests skip the forward; concurrent identical requests collapse into one)")
	cacheOff := flag.Bool("cache-off", false, "disable the result cache regardless of -cache-mb")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON timeline here on shutdown (open at https://ui.perfetto.dev)")
	traceRetain := flag.Int("trace-retain", 256, "retained request traces served from /debug/traces (bounded ring)")
	traceSample := flag.Float64("trace-sample", 0.01, "probabilistic keep rate for unremarkable requests (<0 disables; errors and the slow tail are always kept)")
	traceSlowPct := flag.Float64("trace-slow-pct", 90, "always retain requests slower than this percentile of recent latency (<0 disables)")
	drainWait := flag.Duration("drain-wait", 10*time.Second, "how long to wait for in-flight requests on shutdown")
	drainGrace := flag.Duration("drain-grace", 3*time.Second, "lame-duck delay between flipping /healthz to 503 and closing the listener, so load balancers observe the drain and stop routing here before connections are refused (rolling restarts lose zero requests)")
	flag.Parse()

	reg := trace.NewMetrics()
	trace.RegisterBuildInfo(reg, trace.BuildVersion, "serve")
	trace.RegisterRuntimeMetrics(reg)
	met := serve.NewMetrics(reg)
	var rec *trace.Recorder
	var sess *trace.Session
	if *tracePath != "" {
		sess = trace.NewSession(0)
		rec = sess.Recorder(0)
	}

	cacheBytes := int64(*cacheMB) << 20
	if *cacheOff {
		cacheBytes = 0
	}
	engine := serve.NewEngine(serve.EngineConfig{
		Batch: serve.BatcherConfig{
			MaxBatch: *maxBatch,
			MaxDelay: *maxDelay,
			Queue:    *queue,
			Workers:  *workers,
		},
		TileSize: *tile,
		Cache:    cache.Config{MaxBytes: cacheBytes},
	}, met, rec)

	vr, err := serve.ParseVariant(*variant)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// gated registers a candidate factory under name. Compiled variants
	// must first clear the golden-set PSNR gate against ref (the float32
	// path over the same weights) — a failing gate aborts startup, so an
	// optimized server can never silently serve degraded images.
	gated := func(name string, cand, ref serve.Factory) {
		if ref == nil {
			if err := engine.Register(name, cand); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			return
		}
		g := serve.RunGate(name, vr, cand, ref)
		fmt.Println(g.Transcript())
		if !g.Pass {
			fmt.Fprintf(os.Stderr, "variant %s failed the PSNR gate for %s; refusing to serve\n", vr, name)
			os.Exit(1)
		}
		delta := g.DeltaDB
		if err := engine.RegisterInfo(name, cand, vr, &delta); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	if *checkpoint != "" {
		master, cfg, err := serve.LoadEDSRMaster(*checkpoint)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cand, err := serve.EDSRVariantFactory(master, vr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var ref serve.Factory
		if vr != serve.VariantFloat32 {
			ref = serve.EDSRFactory(master)
		}
		gated("edsr", cand, ref)
		fmt.Printf("model edsr: x%d, %d blocks, %d feats (from %s)\n",
			cfg.Scale, cfg.NumBlocks, cfg.NumFeats, *checkpoint)
	}
	for _, name := range strings.Split(*builtins, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		useVr := vr
		if name == "bicubic" {
			// The classical baseline has no network to compile; it always
			// serves as-is regardless of -variant.
			useVr = serve.VariantFloat32
		}
		cand, ref, err := serve.BuiltinVariantFactory(name, useVr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		gated(name, cand, ref)
	}
	models := engine.Models()
	if len(models) == 0 {
		fmt.Fprintln(os.Stderr, "no models to serve: pass -checkpoint and/or -models")
		os.Exit(2)
	}
	for _, m := range models {
		fmt.Printf("serving %-10s x%d (halo %d, variant %s)\n", m.Name, m.Scale, m.Halo, m.Variant)
	}
	if engine.Cache().Enabled() {
		fmt.Printf("result cache: %d MiB (content-addressed, singleflight; -cache-off to disable)\n", *cacheMB)
	} else {
		fmt.Println("result cache: off")
	}

	srv := serve.NewServer(engine, reg, met, *maxBody)
	srv.SetTraceStore(request.NewStore(request.Config{
		Capacity:   *traceRetain,
		SampleRate: *traceSample,
		SlowPct:    *traceSlowPct,
	}))
	fmt.Printf("request tracing: /debug/traces (retain %d, slow-pct %g, sample %g)\n",
		*traceRetain, *traceSlowPct, *traceSample)
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	done := make(chan error, 1)
	go func() {
		err := httpSrv.ListenAndServe()
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		done <- err
	}()
	fmt.Printf("listening on %s (default model %q; POST PNGs to /v1/upscale)\n", *addr, models[0].Name)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		// The listener died on its own; still run the batcher queues dry
		// so queued requests complete instead of being abandoned.
		engine.Shutdown()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case s := <-sig:
		fmt.Printf("\n%s: draining...\n", s)
		// Drain order: flip /healthz to 503 and reject new upscales, then
		// hold the listener open for the lame-duck window so load
		// balancers observe the drain and stop routing here — shutting
		// down immediately would reset the requests they route in the
		// meantime. Only then close the listener, let in-flight handlers
		// finish, and run the batcher queues dry.
		srv.StartDrain()
		if *drainGrace > 0 {
			fmt.Printf("lame duck for %s (healthz now 503)...\n", *drainGrace)
			time.Sleep(*drainGrace)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "HTTP shutdown:", err)
		}
		cancel()
		engine.Shutdown()
	}

	if sess != nil {
		f, err := os.Create(*tracePath)
		if err == nil {
			err = sess.Timeline().WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace export failed:", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %s (open at https://ui.perfetto.dev)\n", *tracePath)
	}
}
