// Command scalesim runs the simulated distributed-EDSR scaling study: for
// each requested backend and node count it reports throughput, scaling
// efficiency, and communication statistics — the data behind the paper's
// Figs. 10-13.
//
// Usage:
//
//	scalesim [-backends MPI,MPI-Reg,MPI-Opt,NCCL] [-nodes 1,2,4,...]
//	         [-steps N] [-cycle ms] [-fusion MB] [-profile]
//	         [-compress none|fp16|topk] [-topk-ratio N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/collective"
	"repro/internal/hvprof"
	"repro/internal/scaling"
)

func main() {
	backends := flag.String("backends", "MPI,MPI-Reg,MPI-Opt,NCCL", "comma-separated backends")
	nodes := flag.String("nodes", "1,2,4,8,16,32,64,128", "comma-separated node counts (4 GPUs each)")
	steps := flag.Int("steps", 10, "measured training steps per run")
	cycleMs := flag.Float64("cycle", 10, "HOROVOD_CYCLE_TIME in ms")
	fusionMB := flag.Int64("fusion", 64, "HOROVOD_FUSION_THRESHOLD in MB")
	compress := flag.String("compress", "none", "gradient compression: none, fp16, or topk")
	topkRatio := flag.Int("topk-ratio", 32, "top-k compression ratio (elements kept = n/ratio)")
	profile := flag.Bool("profile", false, "print the hvprof bucket report per run")
	timeline := flag.Bool("timeline", false, "render an ASCII timeline of the first two steps")
	csvOut := flag.String("csv", "", "also write results as CSV to this file")
	flag.Parse()

	var bs []collective.Backend
	for _, name := range strings.Split(*backends, ",") {
		b, err := parseBackend(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		bs = append(bs, b)
	}
	comp, err := collective.ParseCompression(*compress)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var ns []int
	for _, s := range strings.Split(*nodes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad node count %q\n", s)
			os.Exit(2)
		}
		ns = append(ns, n)
	}

	var csvFile *os.File
	if *csvOut != "" {
		var err error
		csvFile, err = os.Create(*csvOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer csvFile.Close()
		fmt.Fprintln(csvFile, "backend,gpus,images_per_sec,efficiency,step_ms,msgs_per_step,reg_hit_rate,wire_reduction")
	}

	base := scaling.SingleGPUBaseline(0)
	fmt.Printf("Simulated Lassen scaling study — EDSR (B=32, F=256, x2), batch 4/GPU\n")
	fmt.Printf("Single-GPU baseline: %.2f images/sec (paper: 10.3)\n", base)
	if comp != collective.CompressNone {
		fmt.Printf("Gradient compression: %s", comp)
		if comp == collective.CompressTopK {
			fmt.Printf(" (ratio %d)", *topkRatio)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Printf("%-8s %6s %12s %8s %10s %10s %8s %8s\n",
		"Backend", "GPUs", "img/s", "eff %", "step ms", "msgs/step", "reg-hit%", "wire-x")
	for _, b := range bs {
		for _, n := range ns {
			opt := scaling.Options{
				Nodes:                n,
				Backend:              b,
				Steps:                *steps,
				CycleTimeSec:         *cycleMs / 1000,
				FusionThresholdBytes: *fusionMB << 20,
				Compression:          comp,
				TopKRatio:            *topkRatio,
			}
			var prof *hvprof.Profiler
			if *profile {
				prof = hvprof.New()
				opt.Prof = prof
			}
			var tl *hvprof.Timeline
			if *timeline {
				tl = hvprof.NewTimeline()
				opt.Trace = tl
			}
			r := scaling.Run(opt)
			wireX := 1.0
			if r.WireBytes > 0 {
				wireX = float64(r.FusedBytes) / float64(r.WireBytes)
			}
			fmt.Printf("%-8s %6d %12.1f %8.1f %10.1f %10.1f %8.1f %8.2f\n",
				b, r.GPUs, r.ImagesPerSec, 100*scaling.Efficiency(r, base),
				r.StepSec*1000, float64(r.Messages)/float64(*steps),
				100*r.RegCacheHitRate(), wireX)
			if csvFile != nil {
				fmt.Fprintf(csvFile, "%s,%d,%.3f,%.4f,%.3f,%.2f,%.4f,%.3f\n",
					b, r.GPUs, r.ImagesPerSec, scaling.Efficiency(r, base),
					r.StepSec*1000, float64(r.Messages)/float64(*steps), r.RegCacheHitRate(), wireX)
			}
			if prof != nil {
				fmt.Println(prof.Report().String())
			}
			if tl != nil {
				fmt.Println(tl.Render(0, 2.2*r.StepSec, 100))
			}
		}
		fmt.Println()
	}
}

func parseBackend(name string) (collective.Backend, error) {
	switch strings.ToUpper(name) {
	case "MPI":
		return collective.BackendMPI, nil
	case "MPI-REG", "MPIREG":
		return collective.BackendMPIReg, nil
	case "MPI-OPT", "MPIOPT":
		return collective.BackendMPIOpt, nil
	case "NCCL":
		return collective.BackendNCCL, nil
	default:
		return 0, fmt.Errorf("unknown backend %q (want MPI, MPI-Reg, MPI-Opt, or NCCL)", name)
	}
}
