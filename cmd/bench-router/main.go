// Command bench-router measures the fleet router end to end and emits
// a machine-readable BENCH_router.json. Unlike bench-serve (one engine
// in-process), bench-router spawns real replica *processes* — it
// re-execs itself with -replica, each child running the same engine +
// HTTP stack as sr-serve on its own port — and drives concurrent
// clients through an in-process router over real TCP.
//
// Scenarios:
//
//   - direct-1: clients hit one replica directly (no router) — the
//     baseline the routed numbers are normalized against.
//   - routed-1 / routed-3: the router in front of 1 and 3 replicas.
//   - rolling-restart: 3 replicas under continuous load; one is
//     SIGTERM-drained (lame-duck → exit) and restarted on the same
//     port. Zero failed requests is an acceptance criterion, not a
//     statistic: the run exits non-zero if any client request fails.
//   - kill: same, but the replica is SIGKILLed mid-traffic with no
//     drain; passive ejection + buffered-body retries must mask it.
//   - slow-replica unhedged vs hedged: one replica serves with an
//     injected straggler delay; hedged p99 must beat unhedged p99
//     (the tail-at-scale result), also enforced by exit code.
//   - overload-shed: per-replica admission capped below the offered
//     load; records the shed rate and verifies sheds are 429s, not
//     failures.
//
// Usage:
//
//	bench-router [-o BENCH_router.json] [-quick] [-clients 8] [-dur 2s]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/imageio"
	"repro/internal/router"
	"repro/internal/serve"
	"repro/internal/tensor"
	"repro/internal/trace"
	rtrace "repro/internal/trace/request"
)

// scenarioResult is one row of the report.
type scenarioResult struct {
	Name      string  `json:"name"`
	Replicas  int     `json:"replicas"`
	Routed    bool    `json:"routed"`
	Placement string  `json:"placement,omitempty"`
	Hedge     bool    `json:"hedge"`
	SlowMs    int     `json:"slow_replica_ms,omitempty"`
	Clients   int     `json:"clients"`
	Requests  int64   `json:"requests"`
	OK        int64   `json:"ok"`
	Shed      int64   `json:"shed"`
	Failed    int64   `json:"failed"`
	ShedRate  float64 `json:"shed_rate"`
	ImgPerSec float64 `json:"img_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
	VsDirect  float64 `json:"vs_direct,omitempty"`
	// Router-side evidence of the churn the clients never saw.
	Retries        int64 `json:"retries,omitempty"`
	HedgesLaunched int64 `json:"hedges_launched,omitempty"`
	HedgeWins      int64 `json:"hedge_won,omitempty"`
	HedgeWasted    int64 `json:"hedge_wasted,omitempty"`
	Ejections      int64 `json:"ejections,omitempty"`
	Readmits       int64 `json:"readmits,omitempty"`
	// Request-trace evidence from the router's tail sampler: how many
	// traces were retained, the per-stage attribution table summed over
	// them (milliseconds), and how much of each 200-response's wall time
	// the spans explain (mean and worst case — the ≥95% acceptance
	// criterion). ReplayTraceID is a retained trace whose tree shows a
	// failed attempt and its replay joined under one trace ID, verified
	// present in the /debug/traces output over HTTP.
	TracesKept      int                `json:"traces_kept,omitempty"`
	Attribution     map[string]float64 `json:"attribution_ms,omitempty"`
	AttrCoverage    float64            `json:"attr_coverage_mean,omitempty"`
	AttrCoverageMin float64            `json:"attr_coverage_min,omitempty"`
	ReplayTraceID   string             `json:"replay_trace_id,omitempty"`
}

// report is the BENCH_router.json schema.
type report struct {
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu"`
	Model      string           `json:"model"`
	ImageEdge  int              `json:"image_edge_lr_px"`
	Seed       uint64           `json:"seed"`
	Scenarios  []scenarioResult `json:"scenarios"`
}

func main() {
	// Replica mode: this process IS one fleet member (see runReplica).
	replica := flag.Bool("replica", false, "internal: run as a fleet replica")
	addr := flag.String("addr", "127.0.0.1:0", "replica listen address")
	slowMs := flag.Int("slow-ms", 0, "replica: injected per-request straggler delay")
	graceMs := flag.Int("grace-ms", 250, "replica: lame-duck window after SIGTERM")

	out := flag.String("o", "BENCH_router.json", "output JSON path")
	quick := flag.Bool("quick", false, "shorter scenarios for CI smoke")
	clients := flag.Int("clients", 8, "concurrent HTTP clients")
	dur := flag.Duration("dur", 2*time.Second, "steady-state load per scenario")
	size := flag.Int("size", 24, "LR image edge in pixels")
	seed := flag.Uint64("seed", 17, "RNG seed for benchmark images")
	slowReplica := flag.Int("slow-replica-ms", 150, "straggler delay for the slow-replica scenarios")
	flag.Parse()

	if *replica {
		runReplica(*addr, *slowMs, *graceMs)
		return
	}

	loadDur := *dur
	if *quick {
		loadDur = min(loadDur, 600*time.Millisecond)
	}

	rep := report{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Model:      "bicubic",
		ImageEdge:  *size,
		Seed:       *seed,
	}

	// Benchmark bodies: a few distinct deterministic PNGs so hash
	// placement spreads and per-replica caches would differ.
	rng := tensor.NewRNG(*seed)
	var bodies [][]byte
	for i := 0; i < 4; i++ {
		x := tensor.New(1, 3, *size, *size+i)
		x.FillUniform(rng, 0, 1)
		var buf bytes.Buffer
		if err := imageio.WritePNG(&buf, x); err != nil {
			fatal(err)
		}
		bodies = append(bodies, buf.Bytes())
	}

	self, err := os.Executable()
	if err != nil {
		fatal(err)
	}
	b := &bench{self: self, bodies: bodies, clients: *clients, loadDur: loadDur}

	fail := false
	check := func(ok bool, format string, args ...any) {
		if !ok {
			fmt.Fprintf(os.Stderr, "FAIL: "+format+"\n", args...)
			fail = true
		}
	}

	// --- direct baseline -------------------------------------------------
	direct := b.scenario("direct-1", 1, nil, nil)
	rep.Scenarios = append(rep.Scenarios, direct)
	check(direct.Failed == 0, "direct baseline had %d failures", direct.Failed)

	// --- routed steady state --------------------------------------------
	for _, n := range []int{1, 3} {
		r := b.scenario(fmt.Sprintf("routed-%d", n), n, &router.Config{Placement: "least-loaded"}, nil)
		if direct.ImgPerSec > 0 {
			r.VsDirect = r.ImgPerSec / direct.ImgPerSec
		}
		rep.Scenarios = append(rep.Scenarios, r)
		check(r.Failed == 0, "%s had %d failures", r.Name, r.Failed)
	}

	// --- rolling restart: drain one of three under load ------------------
	rr := b.scenario("rolling-restart", 3, &router.Config{
		Placement: "least-loaded",
		Pool:      router.PoolConfig{HealthInterval: 25 * time.Millisecond},
	}, func(fleet []*replicaProc, rt *router.Router) {
		time.Sleep(loadDur / 4)
		fleet[1].drain() // SIGTERM → lame duck → exit
		waitHealthy(rt, 2)
		fleet[1].respawn(b.self)
		waitHealthy(rt, 3)
		time.Sleep(loadDur / 4)
	})
	rep.Scenarios = append(rep.Scenarios, rr)
	check(rr.Failed == 0, "rolling restart leaked %d failed requests to clients", rr.Failed)
	check(rr.Ejections >= 1 && rr.Readmits >= 1,
		"rolling restart never cycled the replica (ejections %d, readmits %d)", rr.Ejections, rr.Readmits)

	// --- kill: no drain, no grace ----------------------------------------
	kill := b.scenario("kill", 3, &router.Config{
		Placement: "least-loaded",
		Pool:      router.PoolConfig{HealthInterval: 25 * time.Millisecond},
	}, func(fleet []*replicaProc, rt *router.Router) {
		time.Sleep(loadDur / 4)
		fleet[2].kill() // SIGKILL mid-traffic
		waitHealthy(rt, 2)
		fleet[2].respawn(b.self)
		waitHealthy(rt, 3)
		time.Sleep(loadDur / 4)
	})
	rep.Scenarios = append(rep.Scenarios, kill)
	check(kill.Failed == 0, "killed replica leaked %d failed requests to clients", kill.Failed)
	check(kill.ReplayTraceID != "",
		"kill scenario: /debug/traces shows no retained trace with the replayed attempt joined to the original trace ID")

	// --- slow replica: unhedged vs hedged --------------------------------
	b.slowMs = *slowReplica
	unhedged := b.scenario("slow-replica-unhedged", 3, &router.Config{Placement: "least-loaded"}, nil)
	hedged := b.scenario("slow-replica-hedged", 3, &router.Config{
		Placement:  "least-loaded",
		Hedge:      true,
		HedgeFloor: 25 * time.Millisecond,
	}, nil)
	b.slowMs = 0
	rep.Scenarios = append(rep.Scenarios, unhedged, hedged)
	check(unhedged.Failed == 0 && hedged.Failed == 0, "slow-replica scenarios had failures")
	check(hedged.P99Ms < unhedged.P99Ms,
		"hedging did not beat the straggler: hedged p99 %.2fms vs unhedged %.2fms",
		hedged.P99Ms, unhedged.P99Ms)
	check(hedged.HedgesLaunched > 0, "hedge scenario never launched a hedge")
	check(hedged.HedgesLaunched == hedged.HedgeWins+hedged.HedgeWasted,
		"hedge accounting broken: launched %d != won %d + wasted %d",
		hedged.HedgesLaunched, hedged.HedgeWins, hedged.HedgeWasted)

	// --- overload shed ----------------------------------------------------
	shed := b.scenario("overload-shed", 1, &router.Config{
		Placement: "least-loaded",
		Pool:      router.PoolConfig{MaxInflight: 1},
	}, nil)
	rep.Scenarios = append(rep.Scenarios, shed)
	check(shed.Failed == 0, "overload shed produced %d hard failures (sheds must be clean 429s)", shed.Failed)
	check(shed.Shed > 0, "overload scenario never shed (max-inflight 1, %d clients)", b.clients)

	// --- attribution acceptance: retained traces must explain their
	// wall time. For every routed scenario that retained slow-tail
	// traces, the per-stage span union must cover ≥95% of each such
	// request's measured wall, worst case included — a straggler whose
	// trace cannot say where the time went is an attribution bug.
	for _, r := range rep.Scenarios {
		if r.TracesKept == 0 || r.AttrCoverageMin == 0 {
			continue
		}
		check(r.AttrCoverageMin >= 0.95,
			"%s: per-stage attribution covers only %.1f%% of the worst slow-tail request's wall time (want >= 95%%)",
			r.Name, r.AttrCoverageMin*100)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	f.Close()
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	if fail {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// bench carries the fixed benchmark inputs across scenarios.
type bench struct {
	self    string
	bodies  [][]byte
	clients int
	loadDur time.Duration
	slowMs  int // straggler delay for replica index 0, when > 0
}

// scenario spawns n replica processes, optionally fronts them with a
// router (cfg nil → clients hit replica 0 directly), drives steady
// client load, and runs churn (if any) in the middle of it.
func (b *bench) scenario(name string, n int, cfg *router.Config, churn func([]*replicaProc, *router.Router)) scenarioResult {
	res := scenarioResult{
		Name: name, Replicas: n, Routed: cfg != nil,
		Hedge: cfg != nil && cfg.Hedge, SlowMs: b.slowMs, Clients: b.clients,
	}

	fleet := make([]*replicaProc, n)
	for i := range fleet {
		slow := 0
		if i == 0 {
			slow = b.slowMs
		}
		p, err := spawnReplica(b.self, "127.0.0.1:0", slow)
		if err != nil {
			fatal(fmt.Errorf("%s: spawn replica %d: %w", name, i, err))
		}
		fleet[i] = p
		defer p.kill()
	}

	target := "http://" + fleet[0].addr
	var rt *router.Router
	if cfg != nil {
		res.Placement = cfg.Placement
		for _, p := range fleet {
			cfg.Backends = append(cfg.Backends, "http://"+p.addr)
		}
		var err error
		rt, err = router.New(*cfg, trace.NewMetrics(), nil)
		if err != nil {
			fatal(fmt.Errorf("%s: router: %w", name, err))
		}
		defer rt.Close()
		waitHealthy(rt, n)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		httpSrv := &http.Server{Handler: rt}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		target = "http://" + ln.Addr().String()
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: b.clients + 2}}
	defer client.CloseIdleConnections()
	url := target + "/v1/upscale?model=bicubic"

	// Warmup outside the timed window.
	for i := 0; i < b.clients; i++ {
		postOnce(client, url, b.bodies[i%len(b.bodies)])
	}

	var ok, shedN, failed atomic.Int64
	var mu sync.Mutex
	var lats []time.Duration
	var firstErr atomic.Pointer[string]
	stop := make(chan struct{})
	var wg sync.WaitGroup
	began := time.Now()
	for c := 0; c < b.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			body := b.bodies[c%len(b.bodies)]
			for {
				select {
				case <-stop:
					return
				default:
				}
				d, code, err := postOnce(client, url, body)
				switch {
				case err != nil:
					failed.Add(1)
					msg := err.Error()
					firstErr.CompareAndSwap(nil, &msg)
				case code == http.StatusOK:
					ok.Add(1)
					mu.Lock()
					lats = append(lats, d)
					mu.Unlock()
				case code == http.StatusTooManyRequests:
					shedN.Add(1)
					time.Sleep(2 * time.Millisecond) // honor the back-off
				default:
					failed.Add(1)
					msg := fmt.Sprintf("status %d", code)
					firstErr.CompareAndSwap(nil, &msg)
				}
			}
		}(c)
	}

	if churn != nil {
		churn(fleet, rt)
	} else {
		time.Sleep(b.loadDur)
	}
	close(stop)
	wg.Wait()
	wall := time.Since(began)

	res.OK, res.Shed, res.Failed = ok.Load(), shedN.Load(), failed.Load()
	res.Requests = res.OK + res.Shed + res.Failed
	if res.Requests > 0 {
		res.ShedRate = float64(res.Shed) / float64(res.Requests)
	}
	res.ImgPerSec = float64(res.OK) / wall.Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		res.P50Ms = float64(lats[n/2].Microseconds()) / 1e3
		res.P99Ms = float64(lats[min(n-1, n*99/100)].Microseconds()) / 1e3
	}
	if rt != nil {
		m := rt.Metrics()
		res.Retries = m.Retries.Value()
		res.HedgesLaunched = m.HedgesLaunched.Value()
		res.HedgeWins = m.HedgeWins.Value()
		res.HedgeWasted = m.HedgeWasted.Value()
		res.Ejections = m.Ejections.Value()
		res.Readmits = m.Readmits.Value()
		b.collectTraces(&res, rt, client, target)
	}
	if msg := firstErr.Load(); msg != nil {
		fmt.Fprintf(os.Stderr, "%s: first failure: %s\n", name, *msg)
	}
	fmt.Fprintf(os.Stderr,
		"%-22s %d replica(s): %6.1f img/s  p50 %6.2f ms  p99 %7.2f ms  ok %5d  shed %4d  failed %d  retries %d  hedges %d/%d/%d  eject/readmit %d/%d  traces %d (cov %.2f)\n",
		name, n, res.ImgPerSec, res.P50Ms, res.P99Ms, res.OK, res.Shed, res.Failed,
		res.Retries, res.HedgesLaunched, res.HedgeWins, res.HedgeWasted, res.Ejections, res.Readmits,
		res.TracesKept, res.AttrCoverage)
	return res
}

// collectTraces summarizes the router's retained request traces into
// the scenario row: the per-stage attribution table, the attribution
// coverage of completed (200) requests (AttrCoverageMin is taken over
// the slow-tail keep class only — that is the class attribution exists
// to explain; a 5 ms sampled request's fixed scheduling overhead is a
// visible fraction, a straggler's is noise), and — when a trace shows a
// replayed attempt (≥2 attempt spans under one trace ID, the SIGKILL
// evidence) — that trace's ID, verified to actually appear in the
// /debug/traces output served over HTTP.
func (b *bench) collectTraces(res *scenarioResult, rt *router.Router, client *http.Client, target string) {
	traces := rt.TraceStore().Retained()
	res.TracesKept = len(traces)
	if len(traces) == 0 {
		return
	}
	res.Attribution = make(map[string]float64)
	res.AttrCoverageMin = 0
	var covSum float64
	covN := 0
	for _, t := range traces {
		rows, covered := t.Attribution()
		for _, row := range rows {
			res.Attribution[row.Label] += float64(row.Dur) / 1e6
		}
		if t.Status == http.StatusOK {
			covSum += covered
			covN++
			if t.KeptFor == rtrace.KeptSlow &&
				(res.AttrCoverageMin == 0 || covered < res.AttrCoverageMin) {
				res.AttrCoverageMin = covered
			}
		}
		if res.ReplayTraceID == "" {
			attempts := 0
			for _, sp := range t.Spans {
				if sp.Stage == rtrace.StageRouterAttempt {
					attempts++
				}
			}
			if attempts >= 2 {
				res.ReplayTraceID = t.ID.String()
			}
		}
	}
	if covN > 0 {
		res.AttrCoverage = covSum / float64(covN)
	}
	if res.ReplayTraceID != "" {
		// The debug endpoint must serve the same trace to an operator.
		// The perfetto view carries every retained trace (the text view
		// shows only the slowest ten).
		found := false
		if resp, err := client.Get(target + "/debug/traces?format=perfetto"); err == nil {
			if data, err := io.ReadAll(resp.Body); err == nil {
				found = bytes.Contains(data, []byte(res.ReplayTraceID))
			}
			resp.Body.Close()
		}
		if !found {
			res.ReplayTraceID = ""
		}
	}
}

// postOnce sends one upscale and fully reads the response.
func postOnce(client *http.Client, url string, body []byte) (time.Duration, int, error) {
	began := time.Now()
	resp, err := client.Post(url, "image/png", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return 0, 0, err
	}
	return time.Since(began), resp.StatusCode, nil
}

// waitHealthy blocks until the router's rotation has n replicas.
func waitHealthy(rt *router.Router, n int) {
	deadline := time.Now().Add(10 * time.Second)
	for rt.Pool().NumHealthy() != n {
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("fleet never reached %d healthy replicas (have %d)", n, rt.Pool().NumHealthy()))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// replicaProc is one child replica process.
type replicaProc struct {
	cmd    *exec.Cmd
	addr   string // concrete host:port, stable across respawns
	slowMs int
}

// spawnReplica starts a child on addr and waits for its ADDR line.
func spawnReplica(self, addr string, slowMs int) (*replicaProc, error) {
	cmd := exec.Command(self, "-replica",
		"-addr", addr,
		"-slow-ms", fmt.Sprint(slowMs))
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var got string
	if _, err := fmt.Fscanf(stdout, "ADDR %s\n", &got); err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("replica did not report its address: %w", err)
	}
	go io.Copy(io.Discard, stdout) // drain any later chatter
	// Wait until the replica actually answers health checks.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + got + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, fmt.Errorf("replica on %s never became healthy", got)
		}
		time.Sleep(2 * time.Millisecond)
	}
	return &replicaProc{cmd: cmd, addr: got, slowMs: slowMs}, nil
}

// drain performs the sr-serve shutdown sequence (SIGTERM → lame duck →
// exit) and waits for the process to leave.
func (p *replicaProc) drain() {
	if p.cmd == nil {
		return
	}
	p.cmd.Process.Signal(syscall.SIGTERM)
	p.cmd.Wait()
	p.cmd = nil
}

// kill is the hard-failure analogue: SIGKILL, no drain.
func (p *replicaProc) kill() {
	if p.cmd == nil {
		return
	}
	p.cmd.Process.Kill()
	p.cmd.Wait()
	p.cmd = nil
}

// respawn restarts the replica on its original port.
func (p *replicaProc) respawn(self string) {
	np, err := spawnReplica(self, p.addr, p.slowMs)
	if err != nil {
		fatal(fmt.Errorf("respawn %s: %w", p.addr, err))
	}
	p.cmd = np.cmd
}

// runReplica is the child process: a real engine + serve.Server on
// addr, the same stack sr-serve runs, plus an optional injected
// straggler delay on the upscale path. SIGTERM triggers the sr-serve
// drain sequence (healthz 503 → lame duck → listener close → queues
// dry) so the parent can exercise rolling restarts.
func runReplica(addr string, slowMs, graceMs int) {
	engine := serve.NewEngine(serve.EngineConfig{
		Batch:    serve.BatcherConfig{MaxBatch: 8, MaxDelay: 500 * time.Microsecond, Queue: 256, Workers: 1},
		TileSize: 64,
	}, nil, nil)
	if err := engine.Register("bicubic", serve.BicubicFactory(2, 3)); err != nil {
		fatal(err)
	}
	srv := serve.NewServer(engine, nil, nil, 0)

	var handler http.Handler = srv
	if slowMs > 0 {
		delay := time.Duration(slowMs) * time.Millisecond
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			// Straggle only the serving path; health checks stay honest.
			if r.URL.Path == "/v1/upscale" {
				time.Sleep(delay)
			}
			srv.ServeHTTP(w, r)
		})
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("ADDR %s\n", ln.Addr().String())
	httpSrv := &http.Server{Handler: handler}
	done := make(chan struct{})
	go func() {
		httpSrv.Serve(ln)
		close(done)
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	<-sig
	srv.StartDrain()
	time.Sleep(time.Duration(graceMs) * time.Millisecond)
	httpSrv.Close()
	<-done
	engine.Shutdown()
}
