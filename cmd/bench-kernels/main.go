// Command bench-kernels measures the compute hot path and emits a
// machine-readable BENCH_kernels.json: GFLOP/s for GEMM sizes drawn from
// EDSR layer shapes (seed kernel vs naive j-inner vs cache-blocked), and
// img/s for tiny-EDSR training steps (seed-style serial convolutions vs
// the batch-parallel zero-alloc path).
//
// The "seed" baselines are faithful replicas of the repository's original
// kernels — the j-inner GEMM with the zero-skip branch and the serial
// per-sample, allocate-per-call convolution layers — so the reported
// speedups track exactly what the blocked engine replaced.
//
// Usage:
//
//	bench-kernels [-o BENCH_kernels.json] [-steps 30] [-mintime 0.25]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// gemmResult records one GEMM shape's throughput under the three kernels.
type gemmResult struct {
	M             int     `json:"m"`
	K             int     `json:"k"`
	N             int     `json:"n"`
	Shape         string  `json:"shape"`
	SeedGFLOPS    float64 `json:"seed_gflops"`
	NaiveGFLOPS   float64 `json:"naive_gflops"`
	BlockedGFLOPS float64 `json:"blocked_gflops"`
	BlockedVsSeed float64 `json:"blocked_vs_seed"`
}

// trainResult records the tiny-EDSR train-step comparison.
type trainResult struct {
	Model            string  `json:"model"`
	Batch            int     `json:"batch"`
	Patch            int     `json:"patch"`
	Steps            int     `json:"steps"`
	Workers          int     `json:"workers"`
	SeedImgPerSec    float64 `json:"seed_img_per_sec"`
	BlockedImgPerSec float64 `json:"blocked_img_per_sec"`
	Speedup          float64 `json:"speedup"`
	AllocsPerStep    float64 `json:"blocked_allocs_per_step"`
}

type report struct {
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Gemm       []gemmResult `json:"gemm"`
	Train      trainResult  `json:"train"`
}

func main() {
	out := flag.String("o", "BENCH_kernels.json", "output path for the JSON report")
	steps := flag.Int("steps", 30, "train steps per timing run")
	minTime := flag.Float64("mintime", 0.25, "minimum seconds per GEMM timing loop")
	flag.Parse()
	if *steps < 1 {
		fmt.Fprintln(os.Stderr, "bench-kernels: -steps must be >= 1")
		os.Exit(2)
	}

	rep := report{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	// GEMM shapes from EDSR layer lowerings (m = outC, k = inC·kh·kw,
	// n = output pixels of a 24×24 HR patch). The 256×2304×576 shape is
	// the body convolution of the paper's 256-feature config.
	shapes := [][3]int{
		{256, 2304, 576},  // EDSR-paper body conv
		{1024, 2304, 576}, // EDSR-paper tail upsample conv
		{64, 576, 576},    // EDSR-baseline body conv
		{256, 27, 576},    // EDSR-paper head conv
		{16, 144, 144},    // EDSR-tiny body conv (12×12 patch)
	}
	for _, s := range shapes {
		m, k, n := s[0], s[1], s[2]
		fmt.Fprintf(os.Stderr, "gemm %dx%dx%d...\n", m, k, n)
		r := benchGemm(m, k, n, *minTime)
		rep.Gemm = append(rep.Gemm, r)
		fmt.Fprintf(os.Stderr, "  seed %.2f  naive %.2f  blocked %.2f GFLOP/s  (%.1fx vs seed)\n",
			r.SeedGFLOPS, r.NaiveGFLOPS, r.BlockedGFLOPS, r.BlockedVsSeed)
	}

	fmt.Fprintln(os.Stderr, "tiny-EDSR train steps...")
	rep.Train = benchTrain(*steps)
	fmt.Fprintf(os.Stderr, "  seed %.1f img/s  blocked %.1f img/s  (%.1fx)  allocs/step %.0f\n",
		rep.Train.SeedImgPerSec, rep.Train.BlockedImgPerSec, rep.Train.Speedup, rep.Train.AllocsPerStep)

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f.Close()
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

// timeLoop runs fn until minTime seconds have elapsed (at least once
// after one warm-up call) and returns seconds per call.
func timeLoop(minTime float64, fn func()) float64 {
	fn() // warm up: grows buffers, faults pages
	iters := 0
	var elapsed time.Duration
	for iters == 0 || elapsed.Seconds() < minTime {
		start := time.Now()
		fn()
		elapsed += time.Since(start)
		iters++
	}
	return elapsed.Seconds() / float64(iters)
}

func benchGemm(m, k, n int, minTime float64) gemmResult {
	rng := tensor.NewRNG(uint64(m*31 + k*7 + n))
	a := tensor.New(m, k)
	a.FillUniform(rng, -1, 1)
	b := tensor.New(k, n)
	b.FillUniform(rng, -1, 1)
	dst := tensor.New(m, n)
	flops := 2 * float64(m) * float64(k) * float64(n)

	seedSec := timeLoop(minTime, func() { seedMatMul(dst.Data(), a.Data(), b.Data(), m, k, n) })
	naiveSec := timeLoop(minTime, func() { tensor.MatMulNaive(dst, a, b) })
	blockedSec := timeLoop(minTime, func() { tensor.MatMul(dst, a, b) })

	r := gemmResult{
		M: m, K: k, N: n,
		Shape:         fmt.Sprintf("%dx%dx%d", m, k, n),
		SeedGFLOPS:    flops / seedSec / 1e9,
		NaiveGFLOPS:   flops / naiveSec / 1e9,
		BlockedGFLOPS: flops / blockedSec / 1e9,
	}
	r.BlockedVsSeed = r.BlockedGFLOPS / r.SeedGFLOPS
	return r
}

// benchTrain times full tiny-EDSR training steps (forward, L1 loss,
// backward, Adam) on a fixed in-memory batch, for the seed-style replica
// model and for the current models.NewEDSR path.
func benchTrain(steps int) trainResult {
	cfg := models.EDSRTiny()
	const batch, patch = 4, 12
	rng := tensor.NewRNG(99)
	lr := tensor.New(batch, cfg.Colors, patch, patch)
	lr.FillUniform(rng, 0, 1)
	hr := tensor.New(batch, cfg.Colors, patch*cfg.Scale, patch*cfg.Scale)
	hr.FillUniform(rng, 0, 1)

	res := trainResult{
		Model: "edsr-tiny", Batch: batch, Patch: patch, Steps: steps,
		Workers: tensor.WorkerCount(batch, 1),
	}

	// Seed path: replica layers, allocate-per-call, serial batch loop.
	seedModel := newSeedEDSR(cfg, tensor.NewRNG(1))
	seedOpt := nn.NewAdam(seedModel.params(), 1e-3)
	seedSec := timeLoop(0, wrapSteps(steps, func() {
		seedOpt.ZeroGrad()
		pred := seedModel.forward(lr)
		_, grad := nn.L1Loss{}.Forward(pred, hr)
		seedModel.backward(grad)
		seedOpt.Step()
	}))
	res.SeedImgPerSec = float64(batch*steps) / seedSec

	// Blocked path: the real model with scratch pools and buffer reuse.
	model := models.NewEDSR(cfg, tensor.NewRNG(1))
	opt := nn.NewAdam(model.Params(), 1e-3)
	var gradBuf *tensor.Tensor
	loss := nn.L1Loss{}
	step := func() {
		opt.ZeroGrad()
		pred := model.Forward(lr)
		_, grad := loss.ForwardBuf(gradBuf, pred, hr)
		gradBuf = grad
		model.Backward(grad)
		opt.Step()
	}
	step() // warm up scratch buffers before metering allocations
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	sec := timeLoop(0, wrapSteps(steps, step))
	runtime.ReadMemStats(&m1)
	res.BlockedImgPerSec = float64(batch*steps) / sec
	res.AllocsPerStep = float64(m1.Mallocs-m0.Mallocs) / float64(2*steps) // timeLoop runs warm-up + timed pass
	res.Speedup = res.BlockedImgPerSec / res.SeedImgPerSec
	return res
}

// wrapSteps returns a closure running fn steps times; timeLoop then
// reports seconds per step batch, which we divide back out.
func wrapSteps(steps int, fn func()) func() {
	return func() {
		for i := 0; i < steps; i++ {
			fn()
		}
	}
}
