package main

// Faithful replicas of the repository's original (pre-blocking) kernels
// and convolution layers, kept here so the benchmark always compares the
// current engine against the exact baseline it replaced: the j-inner GEMM
// with the `av == 0` zero-skip branch, and serial per-sample convolutions
// that allocate their outputs and gradients on every call.

import (
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// seedMatMul is the seed dst = a(m×k)·b(k×n) kernel: j-inner with the
// zero-skip branch, rows split across workers at the seed's grain of 8.
func seedMatMul(dst, a, b []float32, m, k, n int) {
	tensor.ParallelWorkers(m, 8, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dst[i*n : (i+1)*n]
			for j := range drow {
				drow[j] = 0
			}
			arow := a[i*k : (i+1)*k]
			for p, av := range arow {
				if av == 0 {
					continue
				}
				brow := b[p*n : (p+1)*n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	})
}

// seedMatMulTransA computes dst(m×n) = aᵀ·b for a stored (k×m).
func seedMatMulTransA(dst, a, b []float32, k, m, n int) {
	tensor.ParallelWorkers(m, 4, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dst[i*n : (i+1)*n]
			for j := range drow {
				drow[j] = 0
			}
			for p := 0; p < k; p++ {
				av := a[p*m+i]
				if av == 0 {
					continue
				}
				brow := b[p*n : (p+1)*n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	})
}

// seedMatMulTransBAccum computes dst(m×k) += a(m×n)·bᵀ for b stored (k×n).
func seedMatMulTransBAccum(dst, a, b []float32, m, n, k int) {
	tensor.ParallelWorkers(m, 4, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a[i*n : (i+1)*n]
			drow := dst[i*k : (i+1)*k]
			for p := 0; p < k; p++ {
				brow := b[p*n : (p+1)*n]
				var s float32
				for j, av := range arow {
					s += av * brow[j]
				}
				drow[p] += s
			}
		}
	})
}

// seedConv is the seed Conv2d: serial batch loop, fresh output/gradient
// tensors per call, bias added in a separate pass after the GEMM.
type seedConv struct {
	weight, bias *nn.Param
	inC, outC    int
	kh, kw       int
	stride, pad  int

	lastIn             *tensor.Tensor
	lastOutH, lastOutW int
	col, gradCol       *tensor.Tensor
}

func newSeedConv(name string, inC, outC, k, stride, pad int, rng *tensor.RNG) *seedConv {
	c := &seedConv{inC: inC, outC: outC, kh: k, kw: k, stride: stride, pad: pad}
	c.weight = nn.NewParam(name+".weight", outC, inC*k*k)
	c.weight.Value.KaimingInit(rng, inC*k*k)
	c.bias = nn.NewParam(name+".bias", outC)
	return c
}

func (c *seedConv) forward(x *tensor.Tensor) *tensor.Tensor {
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	outH := (h+2*c.pad-c.kh)/c.stride + 1
	outW := (w+2*c.pad-c.kw)/c.stride + 1
	c.lastIn, c.lastOutH, c.lastOutW = x, outH, outW
	k := c.inC * c.kh * c.kw
	cols := outH * outW
	if c.col == nil || c.col.Dim(0) != k || c.col.Dim(1) != cols {
		c.col = tensor.New(k, cols)
	}
	out := tensor.New(n, c.outC, outH, outW)
	inPlane := c.inC * h * w
	outPlane := c.outC * cols
	for i := 0; i < n; i++ {
		tensor.Im2ColBuf(c.col.Data(), x.Data()[i*inPlane:(i+1)*inPlane], c.inC, h, w, c.kh, c.kw, c.stride, c.pad)
		seedMatMul(out.Data()[i*outPlane:(i+1)*outPlane], c.weight.Value.Data(), c.col.Data(), c.outC, k, cols)
	}
	bd, od := c.bias.Value.Data(), out.Data()
	for i := 0; i < n; i++ {
		for oc := 0; oc < c.outC; oc++ {
			b := bd[oc]
			row := od[i*outPlane+oc*cols : i*outPlane+(oc+1)*cols]
			for j := range row {
				row[j] += b
			}
		}
	}
	return out
}

func (c *seedConv) backward(gradOut *tensor.Tensor) *tensor.Tensor {
	x := c.lastIn
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	k := c.inC * c.kh * c.kw
	cols := c.lastOutH * c.lastOutW
	if c.gradCol == nil || c.gradCol.Dim(0) != k || c.gradCol.Dim(1) != cols {
		c.gradCol = tensor.New(k, cols)
	}
	gradIn := tensor.New(n, c.inC, h, w)
	inPlane := c.inC * h * w
	outPlane := c.outC * cols
	scratch := tensor.New(c.inC, h, w)
	for i := 0; i < n; i++ {
		tensor.Im2ColBuf(c.col.Data(), x.Data()[i*inPlane:(i+1)*inPlane], c.inC, h, w, c.kh, c.kw, c.stride, c.pad)
		g := gradOut.Data()[i*outPlane : (i+1)*outPlane]
		seedMatMulTransBAccum(c.weight.Grad.Data(), g, c.col.Data(), c.outC, cols, k)
		seedMatMulTransA(c.gradCol.Data(), c.weight.Value.Data(), g, c.outC, k, cols)
		for j := range scratch.Data() {
			scratch.Data()[j] = 0
		}
		tensor.Col2ImBuf(scratch.Data(), c.gradCol.Data(), c.inC, h, w, c.kh, c.kw, c.stride, c.pad)
		copy(gradIn.Data()[i*inPlane:(i+1)*inPlane], scratch.Data())
		bg := c.bias.Grad.Data()
		for oc := 0; oc < c.outC; oc++ {
			var s float32
			for _, v := range g[oc*cols : (oc+1)*cols] {
				s += v
			}
			bg[oc] += s
		}
	}
	c.lastIn = nil
	return gradIn
}

// seedReLU allocates its output and gradient on every call (seed style).
type seedReLU struct{ mask []bool }

func (r *seedReLU) forward(x *tensor.Tensor) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	if cap(r.mask) < x.Len() {
		r.mask = make([]bool, x.Len())
	}
	r.mask = r.mask[:x.Len()]
	for i, v := range x.Data() {
		if v > 0 {
			out.Data()[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

func (r *seedReLU) backward(g *tensor.Tensor) *tensor.Tensor {
	gi := tensor.New(g.Shape()...)
	for i, pass := range r.mask {
		if pass {
			gi.Data()[i] = g.Data()[i]
		}
	}
	return gi
}

// seedShuffle is the seed PixelShuffle (allocating rearrangement).
type seedShuffle struct {
	r       int
	inShape []int
}

func (p *seedShuffle) forward(x *tensor.Tensor) *tensor.Tensor {
	r := p.r
	n, cIn, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	cOut := cIn / (r * r)
	p.inShape = []int{n, cIn, h, w}
	out := tensor.New(n, cOut, h*r, w*r)
	xd, od := x.Data(), out.Data()
	oh, ow := h*r, w*r
	for i := 0; i < n; i++ {
		for c := 0; c < cOut; c++ {
			for dy := 0; dy < r; dy++ {
				for dx := 0; dx < r; dx++ {
					ic := c*r*r + dy*r + dx
					for y := 0; y < h; y++ {
						srow := xd[((i*cIn+ic)*h+y)*w : ((i*cIn+ic)*h+y+1)*w]
						obase := ((i*cOut+c)*oh+(y*r+dy))*ow + dx
						for xq, v := range srow {
							od[obase+xq*r] = v
						}
					}
				}
			}
		}
	}
	return out
}

func (p *seedShuffle) backward(gradOut *tensor.Tensor) *tensor.Tensor {
	r := p.r
	n, cIn, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	cOut := cIn / (r * r)
	gradIn := tensor.New(n, cIn, h, w)
	gd, gi := gradOut.Data(), gradIn.Data()
	oh, ow := h*r, w*r
	for i := 0; i < n; i++ {
		for c := 0; c < cOut; c++ {
			for dy := 0; dy < r; dy++ {
				for dx := 0; dx < r; dx++ {
					ic := c*r*r + dy*r + dx
					for y := 0; y < h; y++ {
						irow := gi[((i*cIn+ic)*h+y)*w : ((i*cIn+ic)*h+y+1)*w]
						obase := ((i*cOut+c)*oh+(y*r+dy))*ow + dx
						for xq := range irow {
							irow[xq] = gd[obase+xq*r]
						}
					}
				}
			}
		}
	}
	return gradIn
}

// seedMeanShift shifts per-channel means, allocating its output.
type seedMeanShift struct {
	mean []float32
	sign float32
}

func (m *seedMeanShift) forward(x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	out := tensor.New(n, c, h, w)
	plane := h * w
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			off := (i*c + ch) * plane
			mu := m.sign * m.mean[ch]
			src, dst := x.Data()[off:off+plane], out.Data()[off:off+plane]
			for j, v := range src {
				dst[j] = v + mu
			}
		}
	}
	return out
}

func (m *seedMeanShift) backward(g *tensor.Tensor) *tensor.Tensor {
	gi := tensor.New(g.Shape()...)
	copy(gi.Data(), g.Data())
	return gi
}

// seedResBlock is the EDSR-style block: conv → relu → conv, scaled branch.
type seedResBlock struct {
	conv1, conv2 *seedConv
	relu         seedReLU
	resScale     float32
}

func (b *seedResBlock) forward(x *tensor.Tensor) *tensor.Tensor {
	h := b.conv1.forward(x)
	h = b.relu.forward(h)
	h = b.conv2.forward(h)
	h.Scale(b.resScale)
	h.Add(x)
	return h
}

func (b *seedResBlock) backward(g *tensor.Tensor) *tensor.Tensor {
	branch := g.Clone()
	branch.Scale(b.resScale)
	gi := b.conv2.backward(branch)
	gi = b.relu.backward(gi)
	gi = b.conv1.backward(gi)
	gi.Add(g)
	return gi
}

// seedEDSR mirrors models.EDSR built from the seed layers above.
type seedEDSR struct {
	cfg              models.EDSRConfig
	subMean, addMean seedMeanShift
	head             *seedConv
	blocks           []*seedResBlock
	bodyEnd          *seedConv
	tailUp           *seedConv
	shuffle          seedShuffle
	tailOut          *seedConv
}

func newSeedEDSR(cfg models.EDSRConfig, rng *tensor.RNG) *seedEDSR {
	if cfg.Scale != 2 {
		panic("bench: seed replica supports scale 2 only")
	}
	mean := models.DIV2KMean
	m := &seedEDSR{
		cfg:     cfg,
		subMean: seedMeanShift{mean: mean, sign: -1},
		addMean: seedMeanShift{mean: mean, sign: +1},
		head:    newSeedConv("head", cfg.Colors, cfg.NumFeats, 3, 1, 1, rng),
	}
	for i := 0; i < cfg.NumBlocks; i++ {
		m.blocks = append(m.blocks, &seedResBlock{
			conv1:    newSeedConv("c1", cfg.NumFeats, cfg.NumFeats, 3, 1, 1, rng),
			conv2:    newSeedConv("c2", cfg.NumFeats, cfg.NumFeats, 3, 1, 1, rng),
			resScale: cfg.ResScale,
		})
	}
	m.bodyEnd = newSeedConv("body.end", cfg.NumFeats, cfg.NumFeats, 3, 1, 1, rng)
	m.tailUp = newSeedConv("tail.up", cfg.NumFeats, cfg.NumFeats*4, 3, 1, 1, rng)
	m.shuffle = seedShuffle{r: 2}
	m.tailOut = newSeedConv("tail.out", cfg.NumFeats, cfg.Colors, 3, 1, 1, rng)
	return m
}

func (m *seedEDSR) forward(x *tensor.Tensor) *tensor.Tensor {
	x = m.subMean.forward(x)
	h := m.head.forward(x)
	b := h
	for _, blk := range m.blocks {
		b = blk.forward(b)
	}
	b = m.bodyEnd.forward(b)
	b.Add(h)
	out := m.tailUp.forward(b)
	out = m.shuffle.forward(out)
	out = m.tailOut.forward(out)
	return m.addMean.forward(out)
}

func (m *seedEDSR) backward(g *tensor.Tensor) *tensor.Tensor {
	g = m.addMean.backward(g)
	g = m.tailOut.backward(g)
	g = m.shuffle.backward(g)
	g = m.tailUp.backward(g)
	gb := m.bodyEnd.backward(g)
	for i := len(m.blocks) - 1; i >= 0; i-- {
		gb = m.blocks[i].backward(gb)
	}
	gb.Add(g)
	gi := m.head.backward(gb)
	return m.subMean.backward(gi)
}

func (m *seedEDSR) params() []*nn.Param {
	var ps []*nn.Param
	add := func(c *seedConv) { ps = append(ps, c.weight, c.bias) }
	add(m.head)
	for _, blk := range m.blocks {
		add(blk.conv1)
		add(blk.conv2)
	}
	add(m.bodyEnd)
	add(m.tailUp)
	add(m.tailOut)
	return ps
}
