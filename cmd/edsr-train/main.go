// Command edsr-train trains an EDSR super-resolution model for real on
// the CPU — single-process or data-parallel across in-process MPI ranks —
// on the synthetic DIV2K-like dataset, then evaluates PSNR against the
// bicubic baseline and optionally saves a checkpoint.
//
// Usage:
//
//	edsr-train [-ranks N] [-steps N] [-batch N] [-patch N] [-scale 2|3|4]
//	           [-blocks N] [-feats N] [-lr 1e-3] [-checkpoint path] [-eval N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/trainer"
)

func main() {
	arch := flag.String("arch", "edsr", "architecture: edsr, srcnn, srresnet, or fsrcnn (non-edsr train single-process)")
	ranks := flag.Int("ranks", 1, "data-parallel worker count")
	steps := flag.Int("steps", 200, "training steps")
	batch := flag.Int("batch", 4, "batch size per rank (paper: 4)")
	patch := flag.Int("patch", 12, "LR patch size in pixels")
	scale := flag.Int("scale", 2, "super-resolution factor (paper: 2)")
	blocks := flag.Int("blocks", 4, "EDSR residual blocks (paper: 32)")
	feats := flag.Int("feats", 16, "EDSR feature maps (paper config: 256)")
	lr := flag.Float64("lr", 2e-3, "base learning rate (scaled by ranks)")
	images := flag.Int("images", 64, "synthetic dataset size (DIV2K: 800)")
	size := flag.Int("size", 48, "synthetic HR image edge in pixels")
	evalN := flag.Int("eval", 4, "held-out images for PSNR evaluation")
	checkpoint := flag.String("checkpoint", "", "path to save the trained model")
	state := flag.String("state", "", "path to save full training state (resumable; single-rank EDSR only)")
	resume := flag.String("resume", "", "resume from a training state saved with -state")
	benchsets := flag.Bool("benchsets", false, "evaluate on the standard benchmark sets after training")
	logEvery := flag.Int("log", 20, "log every N steps")
	flag.Parse()

	cfg := trainer.Config{
		Model: models.EDSRConfig{
			NumBlocks: *blocks, NumFeats: *feats, Scale: *scale,
			ResScale: 0.1, Colors: 3,
		},
		Data: data.SyntheticConfig{
			Images: *images, Height: *size, Width: *size, Channels: 3, Seed: 7,
		},
		Steps:     *steps,
		BatchSize: *batch,
		PatchSize: *patch,
		LR:        *lr,
		Seed:      1,
		LogEvery:  *logEvery,
		Log:       os.Stdout,
	}
	if err := cfg.Model.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	a, err := trainer.ParseArch(*arch)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if a != trainer.ArchEDSR {
		// Baseline architectures run through the model zoo (single rank).
		res, err := trainer.TrainZoo(trainer.ZooConfig{
			Arch: a, Scale: *scale, Blocks: *blocks, Feats: *feats, Train: cfg,
		}, *evalN)
		if err != nil {
			fmt.Fprintln(os.Stderr, "training failed:", err)
			os.Exit(1)
		}
		fmt.Printf("trained %s (%d params): final L1 %.5f\n", res.Arch, res.Params, res.FinalLoss)
		if *evalN > 0 {
			fmt.Printf("held-out PSNR: %s %.2f dB vs bicubic %.2f dB (Δ %+.2f dB)\n",
				res.Arch, res.PSNR, res.PSNRBicubic, res.PSNR-res.PSNRBicubic)
		}
		return
	}

	// Resumable single-rank path: session-based training with full-state
	// checkpoints.
	if *state != "" || *resume != "" {
		if *ranks != 1 {
			fmt.Fprintln(os.Stderr, "-state/-resume support single-rank training only")
			os.Exit(2)
		}
		var sess *trainer.Session
		if *resume != "" {
			sess, err = trainer.ResumeSession(*resume)
			if err == nil {
				fmt.Printf("resumed from %s at step %d\n", *resume, sess.Step)
			}
		} else {
			sess, err = trainer.NewSession(cfg)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sess.Cfg.Log = os.Stdout
		sess.Cfg.LogEvery = *logEvery
		loss, err := sess.RunSteps(*steps)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("done: step %d, final L1 loss %.5f, %.1f images/sec\n",
			sess.Step, loss, sess.ImagesPerSec())
		if *state != "" {
			if err := sess.Save(*state); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("training state saved to %s\n", *state)
		}
		if *evalN > 0 {
			pm, pb := trainer.Evaluate(sess.Model, sess.Cfg, *evalN)
			fmt.Printf("held-out PSNR: EDSR %.2f dB vs bicubic %.2f dB (Δ %+.2f dB)\n", pm, pb, pm-pb)
		}
		return
	}

	fmt.Printf("Training EDSR (B=%d, F=%d, x%d) on %d rank(s), batch %d, %d steps\n",
		*blocks, *feats, *scale, *ranks, *batch, *steps)
	model, st, err := trainer.TrainDistributed(cfg, *ranks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "training failed:", err)
		os.Exit(1)
	}
	fmt.Printf("done: final L1 loss %.5f, avg %.5f, %.1f images/sec, %.1fs wall\n",
		st.FinalLoss, st.AvgLoss, st.ImagesPerSec, st.WallSeconds)

	if *evalN > 0 {
		pm, pb := trainer.Evaluate(model, cfg, *evalN)
		fmt.Printf("held-out PSNR: EDSR %.2f dB vs bicubic %.2f dB (Δ %+.2f dB)\n", pm, pb, pm-pb)
	}
	if *checkpoint != "" {
		if err := trainer.SaveCheckpoint(*checkpoint, model, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "checkpoint failed:", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint saved to %s\n", *checkpoint)
	}
	if *benchsets {
		scores := trainer.EvaluateOnBenchmarks(model, nil, *scale, *size, 99)
		fmt.Print(trainer.FormatBenchmarkScores("edsr", scores))
	}
}
