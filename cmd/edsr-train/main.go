// Command edsr-train trains an EDSR super-resolution model for real on
// the CPU — single-process or data-parallel across in-process MPI ranks —
// on the synthetic DIV2K-like dataset, then evaluates PSNR against the
// bicubic baseline and optionally saves a checkpoint.
//
// Usage:
//
//	edsr-train [-ranks N] [-steps N] [-batch N] [-patch N] [-scale 2|3|4]
//	           [-blocks N] [-feats N] [-lr 1e-3] [-checkpoint path] [-eval N]
//
// Fault-tolerant multi-rank runs (crash-safe checkpoints, elastic
// restart) add:
//
//	edsr-train -ranks 4 -checkpoint ck.gob -ckpt-every 10 \
//	           [-inject-fault rank@step] [-recv-timeout 2s] [-resume ck.gob]
//
// Observability (tracing and live metrics):
//
//	edsr-train -ranks 4 -trace out.json -trace-jsonl out.jsonl \
//	           -metrics-addr :9090
//
// -trace writes a Chrome trace_event timeline (open in Perfetto);
// -trace-jsonl the same spans as JSONL for hvprof-report -spans;
// -metrics-addr serves Prometheus /metrics plus /debug/pprof live.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/mpi"
	"repro/internal/trace"
	"repro/internal/trainer"
)

// exportTrace writes one trace artifact via the given timeline encoder.
func exportTrace(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseFaultSpec parses "rank@step" into a crash-injection plan.
func parseFaultSpec(s string) (mpi.FaultPlan, error) {
	plan := mpi.NoFaults()
	rankStr, stepStr, ok := strings.Cut(s, "@")
	if !ok {
		return plan, fmt.Errorf("bad -inject-fault %q: want rank@step", s)
	}
	rank, err1 := strconv.Atoi(rankStr)
	step, err2 := strconv.Atoi(stepStr)
	if err1 != nil || err2 != nil || rank < 0 || step < 0 {
		return plan, fmt.Errorf("bad -inject-fault %q: want rank@step", s)
	}
	plan.CrashRank, plan.CrashStep = rank, step
	return plan, nil
}

func main() {
	arch := flag.String("arch", "edsr", "architecture: edsr, srcnn, srresnet, or fsrcnn (non-edsr train single-process)")
	ranks := flag.Int("ranks", 1, "data-parallel worker count")
	steps := flag.Int("steps", 200, "training steps")
	batch := flag.Int("batch", 4, "batch size per rank (paper: 4)")
	patch := flag.Int("patch", 12, "LR patch size in pixels")
	scale := flag.Int("scale", 2, "super-resolution factor (paper: 2)")
	blocks := flag.Int("blocks", 4, "EDSR residual blocks (paper: 32)")
	feats := flag.Int("feats", 16, "EDSR feature maps (paper config: 256)")
	lr := flag.Float64("lr", 2e-3, "base learning rate (scaled by ranks)")
	images := flag.Int("images", 64, "synthetic dataset size (DIV2K: 800)")
	size := flag.Int("size", 48, "synthetic HR image edge in pixels")
	evalN := flag.Int("eval", 4, "held-out images for PSNR evaluation")
	checkpoint := flag.String("checkpoint", "", "path to save the trained model")
	state := flag.String("state", "", "path to save full training state (resumable; single-rank EDSR only)")
	resume := flag.String("resume", "", "resume from a training state saved with -state")
	benchsets := flag.Bool("benchsets", false, "evaluate on the standard benchmark sets after training")
	logEvery := flag.Int("log", 20, "log every N steps")
	ckptEvery := flag.Int("ckpt-every", 0, "multi-rank: write a distributed checkpoint to -checkpoint every N steps")
	injectFault := flag.String("inject-fault", "", "multi-rank: crash injection \"rank@step\" (fault-tolerance experiments)")
	recvTimeout := flag.Duration("recv-timeout", 0, "multi-rank: failure-detection deadline for receives (0 disables)")
	maxRestarts := flag.Int("max-restarts", 2, "multi-rank: elastic restarts allowed after rank failures")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON timeline here at run end (open at https://ui.perfetto.dev)")
	traceJSONL := flag.String("trace-jsonl", "", "write the span timeline as JSONL (input for hvprof-report -spans)")
	metricsAddr := flag.String("metrics-addr", "", "serve live Prometheus /metrics and /debug/pprof on this address (e.g. :9090)")
	compress := flag.String("compress", "", "multi-rank gradient compression: none, fp16, topk, hier, or hier-fp16")
	topkRatio := flag.Int("topk-ratio", 0, "top-k compression ratio (0 = default 32)")
	gpusPerNode := flag.Int("gpus-per-node", 0, "ranks per simulated node for hierarchical allreduce (0 = flat)")
	flag.Parse()

	cfg := trainer.Config{
		Model: models.EDSRConfig{
			NumBlocks: *blocks, NumFeats: *feats, Scale: *scale,
			ResScale: 0.1, Colors: 3,
		},
		Data: data.SyntheticConfig{
			Images: *images, Height: *size, Width: *size, Channels: 3, Seed: 7,
		},
		Steps:       *steps,
		BatchSize:   *batch,
		PatchSize:   *patch,
		LR:          *lr,
		Seed:        1,
		LogEvery:    *logEvery,
		Log:         os.Stdout,
		Compression: *compress,
		TopKRatio:   *topkRatio,
		GPUsPerNode: *gpusPerNode,
	}
	if err := cfg.Model.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *tracePath != "" || *traceJSONL != "" {
		cfg.Trace = trace.NewSession(0)
	}
	if *metricsAddr != "" {
		reg := trace.NewMetrics()
		cfg.Metrics = trace.NewTrainMetrics(reg)
		srv, err := trace.ServeMetrics(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Printf("metrics: http://%s/metrics (pprof under /debug/pprof/)\n", srv.Addr())
	}
	// writeTrace exports the merged timeline after a traced run and
	// prints rank 0's backward/allreduce overlap verdict.
	writeTrace := func() {
		if cfg.Trace == nil {
			return
		}
		tl := cfg.Trace.Timeline()
		if *tracePath != "" {
			if err := exportTrace(*tracePath, tl.WriteChromeTrace); err != nil {
				fmt.Fprintln(os.Stderr, "trace export failed:", err)
				os.Exit(1)
			}
			fmt.Printf("trace: %d spans from %d rank(s) -> %s (open at https://ui.perfetto.dev)\n",
				tl.NumSpans(), len(tl.Ranks), *tracePath)
		}
		if *traceJSONL != "" {
			if err := exportTrace(*traceJSONL, tl.WriteJSONL); err != nil {
				fmt.Fprintln(os.Stderr, "trace export failed:", err)
				os.Exit(1)
			}
			fmt.Printf("spans: %s (analyze with hvprof-report -spans %s)\n", *traceJSONL, *traceJSONL)
		}
		fmt.Println(trace.FormatOverlap(tl.Overlap(0)))
	}

	a, err := trainer.ParseArch(*arch)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if a != trainer.ArchEDSR {
		// Baseline architectures run through the model zoo (single rank).
		res, err := trainer.TrainZoo(trainer.ZooConfig{
			Arch: a, Scale: *scale, Blocks: *blocks, Feats: *feats, Train: cfg,
		}, *evalN)
		if err != nil {
			fmt.Fprintln(os.Stderr, "training failed:", err)
			os.Exit(1)
		}
		fmt.Printf("trained %s (%d params): final L1 %.5f\n", res.Arch, res.Params, res.FinalLoss)
		if *evalN > 0 {
			fmt.Printf("held-out PSNR: %s %.2f dB vs bicubic %.2f dB (Δ %+.2f dB)\n",
				res.Arch, res.PSNR, res.PSNRBicubic, res.PSNR-res.PSNRBicubic)
		}
		return
	}

	if *state != "" && *ranks != 1 {
		fmt.Fprintln(os.Stderr, "-state supports single-rank training only (multi-rank: -checkpoint with -ckpt-every)")
		os.Exit(2)
	}

	// Resumable single-rank path: session-based training with full-state
	// checkpoints. Multi-rank -resume falls through to the elastic path.
	if *ranks == 1 && (*state != "" || *resume != "") {
		var sess *trainer.Session
		if *resume != "" {
			sess, err = trainer.ResumeSession(*resume)
			if err == nil {
				fmt.Printf("resumed from %s at step %d\n", *resume, sess.Step)
			}
		} else {
			sess, err = trainer.NewSession(cfg)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sess.Cfg.Log = os.Stdout
		sess.Cfg.LogEvery = *logEvery
		loss, err := sess.RunSteps(*steps)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("done: step %d, final L1 loss %.5f, %.1f images/sec\n",
			sess.Step, loss, sess.ImagesPerSec())
		if *state != "" {
			if err := sess.Save(*state); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("training state saved to %s\n", *state)
		}
		if *evalN > 0 {
			pm, pb := trainer.Evaluate(sess.Model, sess.Cfg, *evalN)
			fmt.Printf("held-out PSNR: EDSR %.2f dB vs bicubic %.2f dB (Δ %+.2f dB)\n", pm, pb, pm-pb)
		}
		return
	}

	// Fault-tolerant multi-rank path: periodic distributed checkpoints,
	// optional crash injection, elastic restart with the survivors.
	if *ranks > 1 && (*ckptEvery > 0 || *injectFault != "" || *recvTimeout > 0 || *resume != "") {
		ckptPath := *checkpoint
		if *resume != "" {
			ckptPath = *resume
		}
		if ckptPath == "" && *ckptEvery > 0 {
			fmt.Fprintln(os.Stderr, "-ckpt-every needs -checkpoint (or -resume) to name the state file")
			os.Exit(2)
		}
		fault := mpi.NoFaults()
		if *injectFault != "" {
			fault, err = parseFaultSpec(*injectFault)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
		if *resume != "" {
			step, ws, err := trainer.LoadElasticState(ckptPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "resume failed:", err)
				os.Exit(1)
			}
			fmt.Printf("resuming from %s (step %d, saved by a %d-rank world)\n", ckptPath, step, ws)
		}
		fmt.Printf("Training EDSR (B=%d, F=%d, x%d) on %d rank(s), batch %d, %d steps (elastic)\n",
			*blocks, *feats, *scale, *ranks, *batch, *steps)
		model, stats, err := trainer.TrainElastic(trainer.ElasticConfig{
			Train:           cfg,
			WorldSize:       *ranks,
			CheckpointPath:  ckptPath,
			CheckpointEvery: *ckptEvery,
			RecvTimeout:     *recvTimeout,
			Fault:           fault,
			MaxRestarts:     *maxRestarts,
		})
		for i, a := range stats.Attempts {
			status := "ok"
			if a.Err != "" {
				// errors.Join output is one line per failed rank; the first
				// line carries the root cause.
				status, _, _ = strings.Cut(a.Err, "\n")
			}
			fmt.Printf("attempt %d: world %d, steps %d..%d, avg loss %.5f — %s\n",
				i+1, a.WorldSize, a.StartStep, a.EndStep, a.AvgLoss, status)
		}
		writeTrace() // a trace of a failed run is still evidence
		if err != nil {
			fmt.Fprintln(os.Stderr, "training failed:", err)
			os.Exit(1)
		}
		if stats.Restarts > 0 {
			fmt.Printf("recovered from %d rank failure(s) via elastic restart\n", stats.Restarts)
		}
		if *evalN > 0 {
			pm, pb := trainer.Evaluate(model, cfg, *evalN)
			fmt.Printf("held-out PSNR: EDSR %.2f dB vs bicubic %.2f dB (Δ %+.2f dB)\n", pm, pb, pm-pb)
		}
		return
	}

	fmt.Printf("Training EDSR (B=%d, F=%d, x%d) on %d rank(s), batch %d, %d steps\n",
		*blocks, *feats, *scale, *ranks, *batch, *steps)
	model, st, err := trainer.TrainDistributed(cfg, *ranks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "training failed:", err)
		os.Exit(1)
	}
	fmt.Printf("done: final L1 loss %.5f, avg %.5f, %.1f images/sec, %.1fs wall\n",
		st.FinalLoss, st.AvgLoss, st.ImagesPerSec, st.WallSeconds)
	if st.DrainMsPerStep > 0 {
		fmt.Printf("communication wait: %.2f ms/step exposed in Drain\n", st.DrainMsPerStep)
	}
	writeTrace()

	if *evalN > 0 {
		pm, pb := trainer.Evaluate(model, cfg, *evalN)
		fmt.Printf("held-out PSNR: EDSR %.2f dB vs bicubic %.2f dB (Δ %+.2f dB)\n", pm, pb, pm-pb)
	}
	if *checkpoint != "" {
		if err := trainer.SaveCheckpoint(*checkpoint, model, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "checkpoint failed:", err)
			os.Exit(1)
		}
		fmt.Printf("checkpoint saved to %s\n", *checkpoint)
	}
	if *benchsets {
		scores := trainer.EvaluateOnBenchmarks(model, nil, *scale, *size, 99)
		fmt.Print(trainer.FormatBenchmarkScores("edsr", scores))
	}
}
