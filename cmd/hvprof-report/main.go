// Command hvprof-report reproduces the paper's profiling workflow
// (Section III-B): run an EDSR training job for N steps under a chosen
// tuning with the hvprof profiler attached, and print the allreduce
// profile organized by message size — the paper's Fig. 14 — plus the
// default-vs-optimized comparison of Table I.
//
// Usage:
//
//	hvprof-report [-nodes 1] [-steps 100] [-compare]
//	hvprof-report -spans out.jsonl
//
// With -spans the report is built from a recorded span stream (the
// JSONL file written by edsr-train -trace-jsonl) instead of a simulated
// profile: the same Table-I bucket breakdown, computed from real
// measured collectives, plus each rank's backward/allreduce overlap.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/hvprof"
	"repro/internal/trace"
)

// reportSpans renders the bucket report and overlap verdicts from a
// JSONL span stream recorded by a traced training run.
func reportSpans(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tl, err := trace.ReadJSONL(f)
	if err != nil {
		return err
	}
	rep := tl.HvprofReport()
	fmt.Printf("hvprof: %d spans from %d rank(s) in %s\n\n", tl.NumSpans(), len(tl.Ranks), path)
	fmt.Println(rep.String())
	for _, rt := range tl.Ranks {
		fmt.Println(trace.FormatOverlap(tl.Overlap(rt.Rank)))
	}
	return nil
}

func main() {
	nodes := flag.Int("nodes", 1, "simulated nodes (4 GPUs each); paper profiles 1 node")
	steps := flag.Int("steps", 100, "training steps to profile (paper: 100)")
	compare := flag.Bool("compare", true, "profile both default and optimized tunings")
	spans := flag.String("spans", "", "build the report from a recorded JSONL span stream (edsr-train -trace-jsonl) instead of simulating")
	flag.Parse()

	if *spans != "" {
		if err := reportSpans(*spans); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("hvprof: EDSR, %d node(s) x 4 GPUs, %d steps\n\n", *nodes, *steps)
	defRep, defRes := core.Profile(core.ProfileOptions{
		Nodes: *nodes, Steps: *steps, Tuning: core.DefaultTuning(),
	})
	fmt.Printf("== default MPI (CUDA_VISIBLE_DEVICES pinned, no reg cache) ==\n")
	fmt.Printf("throughput: %.1f img/s\n%s\n", defRes.ImagesPerSec, defRep.String())

	if !*compare {
		return
	}
	optRep, optRes := core.Profile(core.ProfileOptions{
		Nodes: *nodes, Steps: *steps, Tuning: core.OptimizedTuning(),
	})
	fmt.Printf("== MPI-Opt (MV2_VISIBLE_DEVICES split + reg cache) ==\n")
	fmt.Printf("throughput: %.1f img/s\n%s\n", optRes.ImagesPerSec, optRep.String())

	rows := hvprof.Compare(defRep, optRep, "allreduce")
	fmt.Println(hvprof.FormatCompare(rows, "MPI_Allreduce"))
	fmt.Println("(compare with the paper's Table I: 53.1% / 49.7% on the large buckets, 45.4% total)")
}
