// Command sr-router fronts a fleet of sr-serve replicas: POST a PNG to
// its /v1/upscale and it places the request on a healthy replica,
// retries replicas that drain or die mid-request, and (optionally)
// hedges tail-slow requests onto a second replica.
//
// The router is what makes rolling restarts of the fleet invisible: a
// replica entering its lame-duck window (healthz 503) is ejected from
// rotation before its listener closes, requests already routed there
// are replayed elsewhere from the buffered body, and the replica is
// readmitted once its health checks pass again.
//
// Observability mirrors sr-serve: sr_router_* counters on /metrics
// and, with -trace, a Chrome trace_event timeline of every routed
// request on shutdown.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
	"repro/internal/trace"
	"repro/internal/trace/request"
)

func main() {
	addr := flag.String("addr", ":8090", "HTTP listen address")
	backends := flag.String("backends", "", "comma-separated sr-serve base URLs (http://host:port), required")
	placement := flag.String("placement", "least-loaded", "replica placement: least-loaded (fewest in-flight) or hash (consistent hashing on request content — repeat images hit the replica that cached them)")
	rate := flag.Float64("rate", 0, "per-client request rate limit in req/s (<=0 disables)")
	burst := flag.Float64("burst", 0, "per-client burst allowance (defaults to the rate)")
	maxInflight := flag.Int("max-inflight", 32, "in-flight requests admitted per replica; a fully saturated fleet sheds with 429")
	hedge := flag.Bool("hedge", false, "hedge slow requests onto a second replica (first response wins, loser cancelled)")
	hedgeFloor := flag.Duration("hedge-floor", 25*time.Millisecond, "minimum hedge delay; raised to the observed p95 as latency samples accumulate")
	healthInterval := flag.Duration("health-interval", 250*time.Millisecond, "replica /healthz poll interval")
	maxBody := flag.Int64("max-body", router.DefaultMaxBodyBytes, "largest accepted upload in bytes (buffered for replay)")
	timeout := flag.Duration("timeout", 120*time.Second, "end-to-end bound on one proxy attempt")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON timeline here on shutdown (open at https://ui.perfetto.dev)")
	traceRetain := flag.Int("trace-retain", 256, "retained request traces served from /debug/traces (bounded ring)")
	traceSample := flag.Float64("trace-sample", 0.01, "probabilistic keep rate for unremarkable requests (<0 disables; errors and the slow tail are always kept)")
	traceSlowPct := flag.Float64("trace-slow-pct", 90, "always retain requests slower than this percentile of recent latency (<0 disables)")
	drainGrace := flag.Duration("drain-grace", 3*time.Second, "lame-duck delay between flipping /healthz to 503 and closing the listener")
	drainWait := flag.Duration("drain-wait", 10*time.Second, "how long to wait for in-flight proxied requests on shutdown")
	flag.Parse()

	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "no backends: pass -backends http://host:port[,http://host:port...]")
		os.Exit(2)
	}

	reg := trace.NewMetrics()
	trace.RegisterBuildInfo(reg, trace.BuildVersion, "router")
	trace.RegisterRuntimeMetrics(reg)
	var rec *trace.Recorder
	var sess *trace.Session
	if *tracePath != "" {
		sess = trace.NewSession(0)
		rec = sess.Recorder(0)
	}

	rt, err := router.New(router.Config{
		Backends:   urls,
		Placement:  *placement,
		RatePerSec: *rate,
		Burst:      *burst,
		MaxBody:    *maxBody,
		Hedge:      *hedge,
		HedgeFloor: *hedgeFloor,
		Timeout:    *timeout,
		Pool: router.PoolConfig{
			HealthInterval: *healthInterval,
			MaxInflight:    *maxInflight,
		},
	}, reg, rec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer rt.Close()
	rt.SetTraceStore(request.NewStore(request.Config{
		Capacity:   *traceRetain,
		SampleRate: *traceSample,
		SlowPct:    *traceSlowPct,
	}))
	fmt.Printf("request tracing: /debug/traces (retain %d, slow-pct %g, sample %g)\n",
		*traceRetain, *traceSlowPct, *traceSample)

	httpSrv := &http.Server{Addr: *addr, Handler: rt}
	done := make(chan error, 1)
	go func() {
		err := httpSrv.ListenAndServe()
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		done <- err
	}()
	fmt.Printf("routing %d replicas (%s placement, hedge=%v) on %s\n",
		len(urls), *placement, *hedge, *addr)
	fmt.Printf("fleet health: %d/%d replicas up\n", rt.Pool().NumHealthy(), len(urls))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case s := <-sig:
		// Same drain order as sr-serve: advertise the drain first so
		// whatever fronts the router stops sending traffic, then close
		// the listener and let in-flight proxied requests finish.
		fmt.Printf("\n%s: draining...\n", s)
		rt.StartDrain()
		if *drainGrace > 0 {
			fmt.Printf("lame duck for %s (healthz now 503)...\n", *drainGrace)
			time.Sleep(*drainGrace)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "HTTP shutdown:", err)
		}
		cancel()
	}

	if sess != nil {
		f, err := os.Create(*tracePath)
		if err == nil {
			err = sess.Timeline().WriteChromeTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace export failed:", err)
			os.Exit(1)
		}
		fmt.Printf("trace: %s (open at https://ui.perfetto.dev)\n", *tracePath)
	}
}
