// Command figures regenerates the paper's evaluation artifacts — Figs. 1,
// 9, 10, 11, 12, 13, 14 and Table I — printing measured values next to the
// published ones.
//
// Usage:
//
//	figures            # everything, paper-sized runs
//	figures -quick     # reduced runs for a fast look
//	figures -fig 13    # one figure
//	figures -table 1   # Table I only
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/collective"
	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced steps/scales")
	fig := flag.Int("fig", 0, "regenerate a single figure (1, 6-7, 9-14)")
	table := flag.Int("table", 0, "regenerate a single table (1)")
	ablations := flag.Bool("ablations", false, "also run the tunable-parameter ablation sweeps")
	extras := flag.Bool("extras", false, "also run the tuning-limit and model-sensitivity studies")
	flag.Parse()

	opt := experiments.Full()
	if *quick {
		opt = experiments.Quick()
	}

	runFig := func(n int) {
		switch n {
		case 1:
			fmt.Println(experiments.RunFig1().Format())
		case 6, 7:
			fmt.Println(experiments.FormatFig6(experiments.RunFig6(0)))
		case 9:
			fmt.Println(experiments.FormatFig9(experiments.RunFig9()))
		case 10:
			fmt.Println(experiments.RunFig10(opt).Format())
		case 11:
			fmt.Println(experiments.RunFig11(opt).Format())
		case 12:
			fmt.Println(experiments.RunFig12(opt).Format())
		case 13:
			fmt.Println(experiments.RunFig13(opt).Format())
		case 14:
			fmt.Println(experiments.RunFig14(opt).Format())
		default:
			fmt.Fprintf(os.Stderr, "no figure %d (have 1, 6-7, 9-14)\n", n)
			os.Exit(2)
		}
	}

	switch {
	case *fig != 0:
		runFig(*fig)
	case *table != 0:
		if *table != 1 {
			fmt.Fprintf(os.Stderr, "no table %d (have 1)\n", *table)
			os.Exit(2)
		}
		fmt.Println(experiments.RunTableI(opt).Format())
	default:
		for _, n := range []int{1, 6, 9, 10, 11, 12, 13, 14} {
			runFig(n)
		}
		fmt.Println(experiments.RunTableI(opt).Format())
	}
	if *ablations {
		steps := opt.Steps
		fmt.Println(experiments.RunFusionAblation(collective.BackendMPIOpt, 8, steps).Format())
		fmt.Println(experiments.RunCycleAblation(collective.BackendMPIOpt, 8, steps).Format())
		fmt.Println(experiments.RunJitterAblation(collective.BackendMPIOpt, 32, steps).Format())
	}
	if *extras {
		fmt.Println(experiments.RunTuningLimit(16, opt.Steps).Format())
		fmt.Println(experiments.FormatModelSensitivity(experiments.RunModelSensitivity(16, opt.Steps)))
		nodes := []int{1, 4, 16, 64, 128}
		fmt.Println(experiments.FormatStrongScaling([]experiments.StrongScalingResult{
			experiments.RunStrongScaling(collective.BackendMPI, 512, opt.Steps, nodes),
			experiments.RunStrongScaling(collective.BackendMPIOpt, 512, opt.Steps, nodes),
		}))
		fmt.Println(experiments.FormatCompression(experiments.RunCompressionStudy(32, opt.Steps), 32))
	}
}
