// Command bench-comm measures the communication hot path and emits a
// machine-readable BENCH_comm.json: allreduce throughput (GB/s of payload
// per rank) across algorithms, message sizes, and world sizes, and
// distributed tiny-EDSR training throughput comparing the three gradient
// submission strategies — the original pre-overlap comm stack (seed ring
// replica, serial submission), submit-after-backward on the current
// collectives, and overlapped per-layer submission during backward.
//
// The "seed ring" is a faithful replica of the repository's original ring
// allreduce (non-pipelined, scalar summation, per-call allocations), so
// ring_vs_seed tracks exactly what the chunk-pipelined SIMD zero-alloc
// ring replaced.
//
// Usage:
//
//	bench-comm [-o BENCH_comm.json] [-quick] [-steps 8]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/collective"
	"repro/internal/horovod"
	"repro/internal/models"
	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// allreduceResult records one (world, size) cell of the algorithm sweep.
// Throughput is payload GB/s per rank: 4·elems bytes reduced per call.
type allreduceResult struct {
	World      int     `json:"world"`
	Elems      int     `json:"elems"`
	Bytes      int64   `json:"bytes"`
	SeedRing   float64 `json:"seed_ring_gb_s"`
	Ring       float64 `json:"ring_gb_s"`
	RecDbl     float64 `json:"recursive_doubling_gb_s"`
	Naive      float64 `json:"naive_gb_s"`
	RingVsSeed float64 `json:"ring_vs_seed"`
}

// overlapResult records the distributed training comparison.
type overlapResult struct {
	World              int     `json:"world"`
	Model              string  `json:"model"`
	Feats              int     `json:"feats"`
	Blocks             int     `json:"blocks"`
	Batch              int     `json:"batch_per_rank"`
	Patch              int     `json:"patch"`
	Steps              int     `json:"steps"`
	GradMB             float64 `json:"grad_mb"`
	SeedStackImgPerSec float64 `json:"seed_stack_img_per_sec"`
	SerialImgPerSec    float64 `json:"serial_img_per_sec"`
	OverlapImgPerSec   float64 `json:"overlap_img_per_sec"`
	OverlapVsSerial    float64 `json:"overlap_vs_serial"`
	OverlapVsSeedStack float64 `json:"overlap_vs_seed_stack"`
	// Drain time: mean milliseconds rank 0 spends between the end of its
	// backward pass and the completion of all gradient reductions — the
	// communication latency left exposed after the backward pass, which is
	// exactly the window overlap exists to shrink. On a host with spare
	// cores the engine reduces early layers while backward is still
	// computing, so overlap_drain_ms < serial_drain_ms; on a single-core
	// host (all ranks time-share one CPU) the total communication work is
	// conserved and both drain and img/s stay near parity.
	SerialDrainMs  float64 `json:"serial_drain_ms"`
	OverlapDrainMs float64 `json:"overlap_drain_ms"`
}

// compressionResult records one arm of the gradient-compression sweep:
// the same distributed tiny-EDSR training loop under one allreduce
// variant, with bytes-on-wire metered at the mailbox (Comm.SentBytes).
type compressionResult struct {
	World   int    `json:"world"`
	Variant string `json:"variant"`
	// WireMBPerStep is rank 0's outbound traffic per training step.
	WireMBPerStep float64 `json:"wire_mb_per_step"`
	ImgPerSec     float64 `json:"img_per_sec"`
	DrainMs       float64 `json:"drain_ms"`
	// WireVsExact is the wire-bytes reduction factor relative to the
	// exact ("none") arm of the same world size.
	WireVsExact float64 `json:"wire_vs_exact"`
}

type report struct {
	GOOS        string              `json:"goos"`
	GOARCH      string              `json:"goarch"`
	GOMAXPROCS  int                 `json:"gomaxprocs"`
	Quick       bool                `json:"quick"`
	Allreduce   []allreduceResult   `json:"allreduce"`
	Overlap     []overlapResult     `json:"overlap"`
	Compression []compressionResult `json:"compression"`
}

func main() {
	out := flag.String("o", "BENCH_comm.json", "output path for the JSON report")
	quick := flag.Bool("quick", false, "smaller sweep for CI smoke runs")
	steps := flag.Int("steps", 8, "timed training steps per arm")
	flag.Parse()
	if *steps < 1 {
		fmt.Fprintln(os.Stderr, "bench-comm: -steps must be >= 1")
		os.Exit(2)
	}

	rep := report{
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Quick:      *quick,
	}

	worlds := []int{2, 4, 8}
	elems := []int{1 << 12, 1 << 16, 1 << 20, 1 << 23} // 16 KB .. 32 MB
	targetBytes := int64(64 << 20)                     // per measurement
	if *quick {
		worlds = []int{4}
		elems = []int{1 << 16, 1 << 20}
		targetBytes = 8 << 20
	}
	for _, world := range worlds {
		for _, n := range elems {
			r := benchAllreduce(world, n, targetBytes)
			rep.Allreduce = append(rep.Allreduce, r)
			fmt.Fprintf(os.Stderr,
				"allreduce p=%d %7.1f KB: seed-ring %6.3f  ring %6.3f  recdbl %6.3f  naive %6.3f GB/s  (ring %.2fx vs seed)\n",
				world, float64(r.Bytes)/1024, r.SeedRing, r.Ring, r.RecDbl, r.Naive, r.RingVsSeed)
		}
	}

	trainWorlds := []int{4}
	if !*quick {
		trainWorlds = []int{4, 8}
	}
	for _, world := range trainWorlds {
		o := benchOverlap(world, *steps, *quick)
		rep.Overlap = append(rep.Overlap, o)
		fmt.Fprintf(os.Stderr,
			"train p=%d (%s, %.1f MB grads): seed-stack %5.2f  serial %5.2f  overlap %5.2f img/s  (overlap %.2fx vs serial, %.2fx vs seed stack; drain %.1f -> %.1f ms)\n",
			world, o.Model, o.GradMB, o.SeedStackImgPerSec, o.SerialImgPerSec, o.OverlapImgPerSec,
			o.OverlapVsSerial, o.OverlapVsSeedStack, o.SerialDrainMs, o.OverlapDrainMs)
	}

	for _, world := range trainWorlds {
		rows := benchCompression(world, *steps, *quick)
		rep.Compression = append(rep.Compression, rows...)
		for _, cr := range rows {
			fmt.Fprintf(os.Stderr,
				"compress p=%d %-9s: %7.2f MB/step on wire (%5.2fx vs exact)  %5.2f img/s  drain %.1f ms\n",
				cr.World, cr.Variant, cr.WireMBPerStep, cr.WireVsExact, cr.ImgPerSec, cr.DrainMs)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	f.Close()
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

// timeCollective times iters calls of run on a fresh world and returns
// wall seconds, measured on rank 0 between barriers after a warmup.
func timeCollective(world, elems, iters int, run func(c *mpi.Comm, buf []float32)) float64 {
	w := mpi.NewWorld(world)
	var sec float64
	w.Run(func(c *mpi.Comm) {
		// All-zero operands: summing zeros has identical arithmetic cost to
		// real data (no subnormals) and cannot overflow across iterations.
		buf := make([]float32, elems)
		run(c, buf) // warmup: primes buffer pools and scratch
		c.Barrier()
		start := time.Now()
		for i := 0; i < iters; i++ {
			run(c, buf)
		}
		c.Barrier()
		if c.Rank() == 0 {
			sec = time.Since(start).Seconds()
		}
	})
	return sec
}

func benchAllreduce(world, elems int, targetBytes int64) allreduceResult {
	bytes := int64(elems) * 4
	iters := int(targetBytes / bytes)
	if iters < 2 {
		iters = 2
	}
	gbs := func(sec float64) float64 {
		return float64(bytes) * float64(iters) / sec / 1e9
	}
	r := allreduceResult{World: world, Elems: elems, Bytes: bytes}
	r.SeedRing = gbs(timeCollective(world, elems, iters, func(c *mpi.Comm, buf []float32) {
		seedAllreduceRing(c, buf)
	}))
	r.Ring = gbs(timeCollective(world, elems, iters, func(c *mpi.Comm, buf []float32) {
		c.AllreduceSum(buf, mpi.AlgoRing)
	}))
	r.RecDbl = gbs(timeCollective(world, elems, iters, func(c *mpi.Comm, buf []float32) {
		c.AllreduceSum(buf, mpi.AlgoRecursiveDoubling)
	}))
	r.Naive = gbs(timeCollective(world, elems, iters, func(c *mpi.Comm, buf []float32) {
		c.AllreduceSum(buf, mpi.AlgoNaive)
	}))
	r.RingVsSeed = r.Ring / r.SeedRing
	return r
}

// benchOverlap times distributed tiny-EDSR training (wider 64-feature
// variant so gradient traffic is non-trivial) under the three submission
// strategies and returns aggregate img/s for each.
func benchOverlap(world, steps int, quick bool) overlapResult {
	cfg := models.EDSRConfig{NumBlocks: 4, NumFeats: 64, Scale: 2, ResScale: 0.1, Colors: 3}
	batch, patch := 1, 6
	if quick {
		cfg.NumFeats = 32
	}
	model := models.NewEDSR(cfg, tensor.NewRNG(1))
	res := overlapResult{
		World: world, Model: "edsr-tiny-wide", Feats: cfg.NumFeats, Blocks: cfg.NumBlocks,
		Batch: batch, Patch: patch, Steps: steps,
		GradMB: float64(nn.GradBytes(model.Params())) / (1 << 20),
	}
	res.SeedStackImgPerSec, _ = trainArm(world, steps, cfg, batch, patch, "seedstack")
	res.SerialImgPerSec, res.SerialDrainMs = trainArm(world, steps, cfg, batch, patch, "serial")
	res.OverlapImgPerSec, res.OverlapDrainMs = trainArm(world, steps, cfg, batch, patch, "overlap")
	res.OverlapVsSerial = res.OverlapImgPerSec / res.SerialImgPerSec
	res.OverlapVsSeedStack = res.OverlapImgPerSec / res.SeedStackImgPerSec
	return res
}

// benchCompression times the same distributed training loop under each
// gradient-compression variant and meters real bytes-on-wire per step.
// The hier-fp16 arm models 2 "GPUs" per node so the two-level reduction
// has actual intra/inter structure to exploit.
func benchCompression(world, steps int, quick bool) []compressionResult {
	cfg := models.EDSRConfig{NumBlocks: 4, NumFeats: 64, Scale: 2, ResScale: 0.1, Colors: 3}
	if quick {
		cfg.NumFeats = 32
	}
	variants := []string{"none", "fp16", "topk-32", "hier-fp16"}
	rows := make([]compressionResult, 0, len(variants))
	var exactMB float64
	for _, v := range variants {
		img, drain, wireMB := compressArm(world, steps, cfg, v)
		row := compressionResult{
			World: world, Variant: v,
			WireMBPerStep: wireMB, ImgPerSec: img, DrainMs: drain,
			WireVsExact: 1,
		}
		if v == "none" {
			exactMB = wireMB
		} else if wireMB > 0 {
			row.WireVsExact = exactMB / wireMB
		}
		rows = append(rows, row)
	}
	// Self-check the issue's headline claim before publishing the report:
	// top-k must cut bytes-on-wire at least 2x versus the exact ring.
	for _, r := range rows {
		if r.Variant == "topk-32" && r.WireVsExact < 2 {
			fmt.Fprintf(os.Stderr, "bench-comm: top-k wire reduction %.2fx < 2x — compression metering broken\n", r.WireVsExact)
			os.Exit(1)
		}
	}
	return rows
}

// compressArm runs one compression variant (batch 1, patch 6, overlap
// submission) and returns img/s, rank 0 drain ms, and rank 0's outbound
// MB per step measured by differencing Comm.SentBytes around the timed
// window.
func compressArm(world, steps int, cfg models.EDSRConfig, variant string) (float64, float64, float64) {
	const batch, patch = 1, 6
	name := variant
	ratio := 0
	if variant == "topk-32" {
		name, ratio = "topk", 32
	}
	w := mpi.NewWorld(world)
	if name == "hier" || name == "hier-fp16" {
		w.SetGPUsPerNode(2)
	}
	var sec, drainMs, wireMB float64
	w.Run(func(c *mpi.Comm) {
		model := models.NewEDSR(cfg, tensor.NewRNG(1))
		params := model.Params()
		opt := nn.NewAdam(params, 1e-4)
		dataRng := tensor.NewRNG(uint64(100 + c.Rank()))
		lrT := tensor.New(batch, cfg.Colors, patch, patch)
		lrT.FillUniform(dataRng, 0, 1)
		hrT := tensor.New(batch, cfg.Colors, patch*cfg.Scale, patch*cfg.Scale)
		hrT.FillUniform(dataRng, 0, 1)
		loss := nn.L1Loss{}
		var gradBuf *tensor.Tensor

		fn, err := collective.NewAllreduceFnByName(name, ratio)
		if err != nil {
			panic(err)
		}
		ecfg := horovod.Config{
			FusionThresholdBytes: 64 << 20,
			CycleTime:            0,
			Average:              true,
			Algo:                 mpi.AlgoRing,
			AllreduceFn:          fn,
		}
		if name == "topk" {
			// Error feedback keys residuals by gradient buffer, which needs
			// stable unfused per-tensor buffers.
			ecfg.FusionThresholdBytes = 1
		}
		e := horovod.NewEngine(c, ecfg)
		d := horovod.NewDistributedOptimizer(opt, e)
		model.SetGradHook(d.GradHook())
		e.Start()
		defer e.Shutdown()
		horovod.BroadcastParameters(c, params, 0)
		var drain time.Duration
		step := func() {
			opt.ZeroGrad()
			pred := model.Forward(lrT)
			_, g := loss.ForwardBuf(gradBuf, pred, hrT)
			gradBuf = g
			model.Backward(g)
			t := time.Now()
			d.Drain()
			drain += time.Since(t)
			opt.Step()
		}

		step() // warmup
		drain = 0
		c.Barrier()
		sentBefore := c.SentBytes()
		start := time.Now()
		for s := 0; s < steps; s++ {
			step()
		}
		elapsed := time.Since(start)
		sent := c.SentBytes() - sentBefore
		c.Barrier()
		if c.Rank() == 0 {
			sec = elapsed.Seconds()
			drainMs = drain.Seconds() * 1e3 / float64(steps)
			wireMB = float64(sent) / float64(steps) / (1 << 20)
		}
	})
	return float64(batch*world*steps) / sec, drainMs, wireMB
}

// trainArm runs one submission strategy and returns aggregate img/s and
// rank 0's mean exposed-communication window (backward end → reductions
// complete) in milliseconds.
//
//	seedstack: engine with serial submission over the seed ring replica —
//	           the pre-overlap comm stack end to end
//	serial:    engine path, all tensors submitted after backward
//	overlap:   engine path, tensors submitted via GradHook during backward
func trainArm(world, steps int, cfg models.EDSRConfig, batch, patch int, mode string) (float64, float64) {
	w := mpi.NewWorld(world)
	var sec, drainMs float64
	w.Run(func(c *mpi.Comm) {
		model := models.NewEDSR(cfg, tensor.NewRNG(1)) // same weights everywhere
		params := model.Params()
		opt := nn.NewAdam(params, 1e-4)
		dataRng := tensor.NewRNG(uint64(100 + c.Rank()))
		lrT := tensor.New(batch, cfg.Colors, patch, patch)
		lrT.FillUniform(dataRng, 0, 1)
		hrT := tensor.New(batch, cfg.Colors, patch*cfg.Scale, patch*cfg.Scale)
		hrT.FillUniform(dataRng, 0, 1)
		loss := nn.L1Loss{}
		var gradBuf *tensor.Tensor

		backward := func() {
			opt.ZeroGrad()
			pred := model.Forward(lrT)
			_, g := loss.ForwardBuf(gradBuf, pred, hrT)
			gradBuf = g
			model.Backward(g)
		}

		ecfg := horovod.Config{
			FusionThresholdBytes: 64 << 20,
			CycleTime:            0,
			Average:              true,
			Algo:                 mpi.AlgoRing,
		}
		if mode == "seedstack" {
			// Pre-overlap comm stack: same engine, serial submission, but
			// the original non-pipelined scalar allocating ring underneath.
			ecfg.AllreduceFn = seedAllreduceRing
		}
		e := horovod.NewEngine(c, ecfg)
		d := horovod.NewDistributedOptimizer(opt, e)
		if mode == "overlap" {
			model.SetGradHook(d.GradHook())
		}
		e.Start()
		defer e.Shutdown()
		horovod.BroadcastParameters(c, params, 0)
		var drain time.Duration
		step := func() {
			backward()
			t := time.Now()
			d.Drain()
			drain += time.Since(t)
			opt.Step()
		}

		step() // warmup: scratch pools, fusion buffer, message pools
		drain = 0
		c.Barrier()
		start := time.Now()
		for s := 0; s < steps; s++ {
			step()
		}
		c.Barrier()
		if c.Rank() == 0 {
			sec = time.Since(start).Seconds()
			drainMs = drain.Seconds() * 1e3 / float64(steps)
		}
	})
	return float64(batch*world*steps) / sec, drainMs
}
