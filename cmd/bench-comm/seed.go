package main

import "repro/internal/mpi"

// seedTag is a user-space tag base (below the library's collective bands)
// for the seed replica's ring traffic.
const seedTag = 1 << 10

// seedSumInto is the original scalar reduction loop, before sumInto was
// routed through the SIMD vector kernels.
func seedSumInto(dst, src []float32) {
	for i, v := range src {
		dst[i] += v
	}
}

// seedAllreduceRing is a faithful replica of the repository's original
// ring allreduce: per-call bound and tmp allocations, scalar summation,
// and strictly step-synchronous (non-pipelined) chunk exchange. It runs
// over the public point-to-point API on user tags, so the reported
// speedups track exactly what the chunk-pipelined SIMD zero-alloc ring
// replaced. (Send-side payload copies still come from the transport's
// buffer pool, which benefits this baseline too; the comparison is
// therefore conservative.)
func seedAllreduceRing(c *mpi.Comm, buf []float32) error {
	p := c.Size()
	if p == 1 {
		return nil
	}
	n := len(buf)
	if n == 0 {
		return nil
	}
	bound := make([]int, p+1)
	for i := 0; i <= p; i++ {
		bound[i] = i * n / p
	}
	chunk := func(i int) []float32 {
		i = ((i % p) + p) % p
		return buf[bound[i]:bound[i+1]]
	}
	next := (c.Rank() + 1) % p
	prev := (c.Rank() - 1 + p) % p
	maxChunk := 0
	for i := 0; i < p; i++ {
		if s := bound[i+1] - bound[i]; s > maxChunk {
			maxChunk = s
		}
	}
	tmp := make([]float32, maxChunk)

	for step := 0; step < p-1; step++ {
		sc := chunk(c.Rank() - step)
		rc := chunk(c.Rank() - step - 1)
		c.Send(next, seedTag+step, sc)
		c.Recv(prev, seedTag+step, tmp[:len(rc)])
		seedSumInto(rc, tmp[:len(rc)])
	}
	for step := 0; step < p-1; step++ {
		sc := chunk(c.Rank() + 1 - step)
		rc := chunk(c.Rank() - step)
		c.Send(next, seedTag+p+step, sc)
		c.Recv(prev, seedTag+p+step, tmp[:len(rc)])
		copy(rc, tmp[:len(rc)])
	}
	return nil
}
