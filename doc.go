// Package repro reproduces "Scaling Single-Image Super-Resolution
// Training on Modern HPC Clusters: Early Experiences" (Anthony, Xu,
// Subramoni, Panda — IPDPS-W 2021) as a self-contained Go system.
//
// The paper distributes EDSR training with Horovod on the Lassen
// supercomputer and shows that restoring CUDA IPC (via an
// MV2_VISIBLE_DEVICES split-visibility scheme) plus the InfiniBand
// registration cache cuts total allreduce time 45.4% and lifts 512-GPU
// scaling efficiency by 15.6 points (a 1.26x speedup). This repository
// rebuilds the entire stack from scratch and regenerates every figure
// and table of the paper's evaluation:
//
//   - a real CPU deep-learning framework (internal/tensor, internal/nn,
//     internal/models) that trains actual EDSR/SRCNN/FSRCNN/SRResNet
//     networks on a synthetic DIV2K-like dataset;
//   - an in-process MPI with ring/recursive-doubling/hierarchical
//     collectives (internal/mpi) and a Horovod engine with tensor fusion
//     and gradient negotiation (internal/horovod) for real data-parallel
//     training;
//   - a deterministic discrete-event model of Lassen — NVLink, InfiniBand,
//     CUDA-IPC visibility rules, registration cache — for the 512-GPU
//     scaling study (internal/simnet, internal/cluster,
//     internal/collective, internal/scaling, internal/perfmodel);
//   - the hvprof communication profiler (internal/hvprof) shared by both
//     paths, and the experiment harness (internal/experiments) that prints
//     every figure with the paper's values alongside.
//
// Entry points: the executables under cmd/, the runnable examples under
// examples/, and the per-figure benchmarks in bench_test.go. See README.md
// for a tour, DESIGN.md for the substitution map, and EXPERIMENTS.md for
// measured-vs-paper results.
package repro
