// Package repro's root benchmark harness regenerates every table and
// figure of the paper's evaluation as a Go benchmark, reporting the
// figure's headline quantity as a custom metric:
//
//	go test -bench=. -benchmem
//
// Figure/table → benchmark mapping (see DESIGN.md for the full index):
//
//	Fig. 1  → BenchmarkFig1_SingleGPUThroughput
//	Fig. 9  → BenchmarkFig9_BatchSizeSweep
//	Fig. 10 → BenchmarkFig10_DefaultScaling
//	Fig. 11 → BenchmarkFig11_RegCache
//	Fig. 12 → BenchmarkFig12_OptimizedScaling
//	Fig. 13 → BenchmarkFig13_ScalingEfficiency
//	Fig. 14 → BenchmarkFig14_HvprofProfile
//	Table I → BenchmarkTable1_AllreduceBuckets
package repro

import (
	"fmt"
	"testing"

	"repro/internal/collective"
	"repro/internal/experiments"
	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/perfmodel"
	"repro/internal/scaling"
	"repro/internal/tensor"
)

// benchOptions keeps simulated runs small enough for repeated benchmark
// iterations while preserving the figures' shapes.
func benchOptions() experiments.Options {
	return experiments.Options{Steps: 4, ProfileSteps: 10, NodeCounts: []int{1, 16, 128}}
}

// BenchmarkFig1_SingleGPUThroughput regenerates Fig. 1 two ways: the
// calibrated V100 model (reported as img/s metrics) and a real CPU
// forward+backward pass of both architectures to demonstrate the
// classification-vs-super-resolution cost contrast on live code.
func BenchmarkFig1_SingleGPUThroughput(b *testing.B) {
	f := experiments.RunFig1()
	b.Run("model", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f = experiments.RunFig1()
		}
		b.ReportMetric(f.EDSRImgPerSec, "edsr-img/s")
		b.ReportMetric(f.ResNet50ImgPerSec, "resnet-img/s")
		b.ReportMetric(f.Ratio, "ratio")
	})
	b.Run("real-edsr-tiny", func(b *testing.B) {
		rng := tensor.NewRNG(1)
		m := models.NewEDSR(models.EDSRTiny(), rng)
		x := tensor.New(1, 3, 24, 24)
		x.FillUniform(rng, 0, 1)
		target := tensor.New(1, 3, 48, 48)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			y := m.Forward(x)
			_, g := nn.L1Loss{}.Forward(y, target)
			m.Backward(g)
		}
	})
	b.Run("real-resnet-mini", func(b *testing.B) {
		rng := tensor.NewRNG(2)
		m := models.NewMiniResNet([]int{8, 16}, 1, 10, rng)
		x := tensor.New(1, 3, 48, 48)
		x.FillUniform(rng, 0, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			y := m.Forward(x)
			_, g := nn.SoftmaxCrossEntropy{}.Forward(y, []int{3})
			m.Backward(g)
		}
	})
}

// BenchmarkFig9_BatchSizeSweep regenerates the single-GPU batch-size
// evaluation, one sub-benchmark per batch size.
func BenchmarkFig9_BatchSizeSweep(b *testing.B) {
	for _, batch := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			var tp float64
			var fits bool
			for i := 0; i < b.N; i++ {
				tp, fits = perfmodel.EDSRThroughput(batch)
			}
			b.ReportMetric(tp, "img/s")
			if fits {
				b.ReportMetric(1, "fits16GB")
			} else {
				b.ReportMetric(0, "fits16GB")
			}
		})
	}
}

// benchScaling runs one simulated configuration per iteration and reports
// throughput and efficiency.
func benchScaling(b *testing.B, backend collective.Backend, nodes int) {
	b.Helper()
	var r scaling.Result
	for i := 0; i < b.N; i++ {
		r = scaling.Run(scaling.Options{Nodes: nodes, Backend: backend, Steps: 4})
	}
	b.ReportMetric(r.ImagesPerSec, "img/s")
	b.ReportMetric(100*scaling.Efficiency(r, scaling.SingleGPUBaseline(0)), "eff%")
}

// BenchmarkFig10_DefaultScaling regenerates the default-configuration
// throughput curves (MPI vs NCCL).
func BenchmarkFig10_DefaultScaling(b *testing.B) {
	for _, backend := range []collective.Backend{collective.BackendMPI, collective.BackendNCCL} {
		for _, nodes := range []int{1, 16, 128} {
			b.Run(fmt.Sprintf("%s/%dGPUs", backend, nodes*4), func(b *testing.B) {
				benchScaling(b, backend, nodes)
			})
		}
	}
}

// BenchmarkFig11_RegCache regenerates the registration-cache comparison
// and reports the average improvement and hit rate.
func BenchmarkFig11_RegCache(b *testing.B) {
	var f experiments.Fig11
	for i := 0; i < b.N; i++ {
		f = experiments.RunFig11(benchOptions())
	}
	b.ReportMetric(100*f.AvgImprovement, "gain%")
	b.ReportMetric(100*f.HitRate, "hit%")
}

// BenchmarkFig12_OptimizedScaling regenerates the optimized throughput
// study and reports the MPI-Opt/MPI speedup at max scale (paper: 1.26x).
func BenchmarkFig12_OptimizedScaling(b *testing.B) {
	var f experiments.Fig12
	for i := 0; i < b.N; i++ {
		f = experiments.RunFig12(benchOptions())
	}
	b.ReportMetric(f.SpeedupAtMax, "speedup-x")
}

// BenchmarkFig13_ScalingEfficiency regenerates the efficiency study and
// reports the MPI-Opt − MPI gain at max scale (paper: 15.6 points).
func BenchmarkFig13_ScalingEfficiency(b *testing.B) {
	var f experiments.Fig13
	for i := 0; i < b.N; i++ {
		f = experiments.RunFig13(benchOptions())
	}
	b.ReportMetric(f.EffGainAtMax, "eff-gain-pts")
	last := len(f.Curves[0].Points) - 1
	b.ReportMetric(100*f.Curves[0].Efficiencies()[last], "mpi-eff%")
	b.ReportMetric(100*f.Curves[2].Efficiencies()[last], "opt-eff%")
}

// BenchmarkFig14_HvprofProfile regenerates the 4-GPU communication
// profile and reports total allreduce milliseconds per configuration.
func BenchmarkFig14_HvprofProfile(b *testing.B) {
	var f experiments.Fig14
	for i := 0; i < b.N; i++ {
		f = experiments.RunFig14(benchOptions())
	}
	b.ReportMetric(f.Default.TotalSeconds("allreduce")*1000, "default-ms")
	b.ReportMetric(f.Optimized.TotalSeconds("allreduce")*1000, "opt-ms")
}

// BenchmarkTable1_AllreduceBuckets regenerates Table I and reports the
// total allreduce-time improvement (paper: 45.4%).
func BenchmarkTable1_AllreduceBuckets(b *testing.B) {
	var t experiments.TableI
	for i := 0; i < b.N; i++ {
		t = experiments.RunTableI(benchOptions())
	}
	b.ReportMetric(t.TotalImprovement(), "improvement%")
}
