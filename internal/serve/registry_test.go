package serve

import (
	"path/filepath"
	"testing"

	"repro/internal/models"
	"repro/internal/tensor"
	"repro/internal/trainer"
)

// serveConfig is a tiny trainable config for checkpoint round-trips.
func serveConfig() trainer.Config {
	cfg := trainer.DefaultConfig()
	cfg.Model = models.EDSRConfig{NumBlocks: 1, NumFeats: 6, Scale: 2, ResScale: 0.1, Colors: 3}
	cfg.Data.Images = 8
	cfg.Data.Height, cfg.Data.Width = 24, 24
	cfg.Steps = 0
	cfg.BatchSize = 2
	cfg.PatchSize = 8
	return cfg
}

// checkFactoryMatches asserts a factory's replicas forward identically
// to the reference model.
func checkFactoryMatches(t *testing.T, f Factory, ref *models.EDSR) {
	t.Helper()
	rng := tensor.NewRNG(61)
	x := randImage(rng, 3, 9, 9)
	want := ref.Forward(x).Clone()
	got := f().Forward(x)
	if d := maxAbsDiff(want, got); d != 0 {
		t.Fatalf("replica forward differs from checkpointed model by %g", d)
	}
}

// TestLoadEDSRCheckpointWeightsFile round-trips the weights-only
// trainer.SaveCheckpoint format into a serving Factory.
func TestLoadEDSRCheckpointWeightsFile(t *testing.T) {
	cfg := serveConfig()
	master := models.NewEDSR(cfg.Model, tensor.NewRNG(cfg.Seed))
	path := filepath.Join(t.TempDir(), "weights.ckpt")
	if err := trainer.SaveCheckpoint(path, master, cfg); err != nil {
		t.Fatalf("SaveCheckpoint: %v", err)
	}
	f, gotCfg, err := LoadEDSRCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadEDSRCheckpoint: %v", err)
	}
	if gotCfg != cfg.Model {
		t.Fatalf("config %+v, want %+v", gotCfg, cfg.Model)
	}
	checkFactoryMatches(t, f, master)
}

// TestLoadEDSRCheckpointSessionFile loads the full training-state file
// written by trainer.Session.Save — the server must accept checkpoints
// straight out of a crash-safe training run, optimizer state and all.
func TestLoadEDSRCheckpointSessionFile(t *testing.T) {
	s, err := trainer.NewSession(serveConfig())
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	if _, err := s.RunSteps(2); err != nil {
		t.Fatalf("RunSteps: %v", err)
	}
	path := filepath.Join(t.TempDir(), "session.ckpt")
	if err := s.Save(path); err != nil {
		t.Fatalf("Session.Save: %v", err)
	}
	f, _, err := LoadEDSRCheckpoint(path)
	if err != nil {
		t.Fatalf("LoadEDSRCheckpoint on a Session.Save file: %v", err)
	}
	checkFactoryMatches(t, f, s.Model)
}

// TestLoadEDSRCheckpointMissing checks the error path.
func TestLoadEDSRCheckpointMissing(t *testing.T) {
	if _, _, err := LoadEDSRCheckpoint(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("expected an error for a missing checkpoint")
	}
}

// TestBuiltinFactories checks every built-in name yields a working
// factory and unknown names fail.
func TestBuiltinFactories(t *testing.T) {
	rng := tensor.NewRNG(67)
	for _, name := range []string{"bicubic", "edsr-tiny", "srcnn"} {
		f, err := BuiltinFactory(name)
		if err != nil {
			t.Fatalf("BuiltinFactory(%q): %v", name, err)
		}
		m := f()
		x := randImage(rng, m.Colors(), 7, 7)
		y := m.Forward(x)
		if y.Dim(2) != 7*m.Scale() || y.Dim(3) != 7*m.Scale() {
			t.Fatalf("%s: output %v for 7x7 input, scale %d", name, y.Shape(), m.Scale())
		}
	}
	if _, err := BuiltinFactory("alexnet"); err == nil {
		t.Fatal("expected an error for an unknown built-in")
	}
}
