// Package cache is the content-addressed result cache that sits between
// the serving engine and the batcher. Heavy real-world SR traffic is
// highly redundant — the same thumbnails, logos, and tiles arrive again
// and again — so after kernel efficiency (the compiled inference path)
// the next win on the hot path is not computing the same forward twice.
//
// Two mechanisms compose:
//
//   - A byte-budgeted sharded LRU stores upscaled tensors under a
//     128-bit content key (MakeKey: post-normalization pixels + model +
//     variant + scale + tile geometry). A hit copies the stored result
//     into the caller's output buffer with zero heap allocations
//     (enforced by TestCacheHitLookupNoAllocs).
//   - A singleflight layer collapses concurrent identical misses: the
//     first requester becomes the leader and runs the batched forward;
//     followers park on the flight and share the leader's result. A
//     waiter whose request context is cancelled (client disconnect)
//     unblocks immediately without cancelling the shared forward —
//     other waiters and the leader still get their result.
//
// The cache works at both granularities the engine serves: whole images
// (small requests that ride the batcher in one submission, and the
// stitched result of large ones) and individual halo tiles (so a new
// image that shares tiles with cached traffic — flat sky, repeated
// texture, a reposted logo — still skips most of its forwards).
package cache

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/tensor"
	"repro/internal/trace"
	"repro/internal/trace/request"
)

// Config sizes the cache.
type Config struct {
	// MaxBytes budgets the stored tensor bytes across all shards.
	// <= 0 disables the cache entirely (New returns nil).
	MaxBytes int64
	// Shards is the number of independently locked LRU segments
	// (rounded up to a power of two, default 8). More shards cut lock
	// contention between concurrent tiles at the cost of slightly
	// coarser per-shard budgets.
	Shards int
}

// entry is one cached result: an intrusive LRU list node owned by its
// shard. val is cache-owned (a clone of the computed output) and
// immutable once inserted; hits copy out of it under the shard lock.
type entry struct {
	key        Key
	val        *tensor.Tensor
	bytes      int64
	prev, next *entry
}

// shard is one LRU segment: a map for lookup plus an intrusive
// doubly-linked list in recency order (head = most recent).
type shard struct {
	mu         sync.Mutex
	m          map[Key]*entry
	head, tail *entry
	bytes      int64
	budget     int64
}

// flight is one in-progress computation. done is closed after res/err
// are set; res is the cache-owned clone waiters copy from.
type flight struct {
	done chan struct{}
	res  *tensor.Tensor
	err  error
}

// Cache is the sharded LRU plus the singleflight table. A nil *Cache is
// a valid "caching off" instance: Get always misses and Do computes
// directly, so callers need no enabled-checks.
type Cache struct {
	shards []shard
	mask   uint64

	fmu     sync.Mutex
	flights map[Key]*flight

	bytes   atomic.Int64
	entries atomic.Int64

	met *Metrics
	rec *trace.Recorder
}

// New builds a cache within cfg's byte budget. met and rec may be nil
// (observability off). cfg.MaxBytes <= 0 returns nil — the disabled
// cache — so callers can wire the config through unconditionally.
func New(cfg Config, met *Metrics, rec *trace.Recorder) *Cache {
	if cfg.MaxBytes <= 0 {
		return nil
	}
	n := cfg.Shards
	if n < 1 {
		n = 8
	}
	// Round up to a power of two so shard selection is a mask.
	for n&(n-1) != 0 {
		n++
	}
	c := &Cache{
		shards:  make([]shard, n),
		mask:    uint64(n - 1),
		flights: make(map[Key]*flight),
		met:     met,
		rec:     rec,
	}
	for i := range c.shards {
		c.shards[i].m = make(map[Key]*entry)
		c.shards[i].budget = cfg.MaxBytes / int64(n)
	}
	return c
}

// Enabled reports whether the cache is actually storing results.
func (c *Cache) Enabled() bool { return c != nil }

// shardFor selects the shard for k. The key is already well-mixed, so
// the low bits are uniform.
func (c *Cache) shardFor(k Key) *shard { return &c.shards[k.Lo&c.mask] }

// Get looks k up and, on a hit, copies the stored result into out and
// refreshes the entry's recency. It returns false on a miss (also when
// the cache is disabled or the stored shape does not match out, which
// cannot happen for keys derived with MakeKey). The hit path performs
// zero heap allocations.
func (c *Cache) Get(k Key, out *tensor.Tensor) bool {
	if c == nil {
		return false
	}
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.m[k]
	if !ok || e.val.Len() != out.Len() {
		s.mu.Unlock()
		c.met.miss()
		return false
	}
	start := c.rec.Now()
	s.moveToFront(e)
	copy(out.Data(), e.val.Data())
	s.mu.Unlock()
	c.met.hit()
	c.rec.Emit(trace.CatServeCache, trace.TrackMain, start, out.Bytes())
	return true
}

// Do runs the miss path for k with singleflight collapsing: if another
// request is already computing k, the call parks until that flight
// finishes and copies its result into out; otherwise it becomes the
// leader, runs compute(out), and publishes a cache-owned clone for the
// LRU and any waiters. The leader's compute is never cancelled — a
// parked waiter whose ctx is cancelled returns ctx.Err() immediately
// while the shared forward keeps running for everyone else. A leader
// error is shared with every waiter of that flight (they joined the
// same computation); the error is not cached, so the next request
// retries.
func (c *Cache) Do(ctx context.Context, k Key, out *tensor.Tensor, compute func(*tensor.Tensor) error) error {
	if c == nil {
		return compute(out)
	}
	c.fmu.Lock()
	if f, ok := c.flights[k]; ok {
		c.fmu.Unlock()
		return c.wait(ctx, f, out)
	}
	f := &flight{done: make(chan struct{})}
	c.flights[k] = f
	c.fmu.Unlock()

	// Re-check the LRU: a previous flight may have landed between the
	// caller's Get miss and our leadership. Counts as a (rescue) hit.
	if c.Get(k, out) {
		c.finish(k, f, out, nil)
		return nil
	}

	err := compute(out)
	c.finish(k, f, out, err)
	if err == nil {
		c.insert(k, f.res)
	}
	return err
}

// finish publishes the flight outcome: clones out for waiters (success
// only), removes the flight so later requests start fresh, and wakes
// the waiters. Removal precedes the close so no request can join a
// finished flight's map entry after its result was already evicted.
func (c *Cache) finish(k Key, f *flight, out *tensor.Tensor, err error) {
	if err == nil {
		f.res = out.Clone()
	}
	f.err = err
	c.fmu.Lock()
	delete(c.flights, k)
	c.fmu.Unlock()
	close(f.done)
}

// wait parks on f until it completes or ctx is cancelled. Cancellation
// only unblocks this waiter; the flight itself keeps running.
func (c *Cache) wait(ctx context.Context, f *flight, out *tensor.Tensor) error {
	c.met.inflightWait()
	start := c.rec.Now()
	a := request.FromContext(ctx)
	wstart := a.Now()
	select {
	case <-f.done:
	case <-ctx.Done():
		c.met.inflightCancel()
		if a != nil {
			// The wait covered real wall time even though the client left.
			a.Emit(request.StageServeCacheWait, request.NewSpanID(), a.Root(),
				wstart, a.Now(), 0, request.FlagCancelled, -1, 0)
		}
		return ctx.Err()
	}
	if f.err != nil {
		return f.err
	}
	copy(out.Data(), f.res.Data())
	a.EmitStage(request.StageServeCacheWait, a.Root(), wstart, out.Bytes())
	c.rec.Emit(trace.CatServeCache, trace.TrackMain, start, out.Bytes())
	return nil
}

// insert stores val (cache-owned) under k, evicting from the tail of
// the shard's recency list until the entry fits its budget. Values
// larger than a whole shard budget are not cached at all — caching a
// tensor that would immediately evict the entire shard is pure churn.
func (c *Cache) insert(k Key, val *tensor.Tensor) {
	s := c.shardFor(k)
	n := val.Bytes()
	if n > s.budget {
		return
	}
	var delta int64
	var dEntries, evicted int
	s.mu.Lock()
	if old, ok := s.m[k]; ok {
		// A rescue-hit leader or an evicted-then-recomputed key: replace
		// in place, keeping the recency refresh.
		s.bytes += n - old.bytes
		delta = n - old.bytes
		old.val, old.bytes = val, n
		s.moveToFront(old)
	} else {
		for s.bytes+n > s.budget && s.tail != nil {
			delta -= s.tail.bytes
			s.remove(s.tail)
			evicted++
			dEntries--
		}
		e := &entry{key: k, val: val, bytes: n}
		s.m[k] = e
		s.pushFront(e)
		s.bytes += n
		delta += n
		dEntries++
	}
	s.mu.Unlock()
	c.met.evicted(evicted)
	c.met.footprint(c.bytes.Add(delta), int(c.entries.Add(int64(dEntries))))
}

// Len reports the live entry count (for tests).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	return int(c.entries.Load())
}

// Bytes reports the live stored-tensor bytes (for tests).
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	return c.bytes.Load()
}

// pushFront links e as the most-recent entry. Caller holds s.mu.
func (s *shard) pushFront(e *entry) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// remove unlinks e and drops it from the map. Caller holds s.mu.
func (s *shard) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
	s.bytes -= e.bytes
	delete(s.m, e.key)
}

// moveToFront refreshes e's recency. Caller holds s.mu.
func (s *shard) moveToFront(e *entry) {
	if s.head == e {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
}
