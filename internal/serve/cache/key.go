package cache

import (
	"math"
	"math/bits"

	"repro/internal/tensor"
)

// Key is a 128-bit content-addressed cache key. It is derived from the
// post-normalization tensor content (the float32 planes the model
// actually sees, after PNG decode and 1/255 scaling) plus the serving
// identity — model name, variant, scale, and tile geometry — so two
// requests share a key exactly when the serving stack would compute the
// same bytes for both. Keys are deterministic across processes and
// runs (no per-process hash seed), which keeps benchmark hit ratios
// reproducible.
type Key struct {
	Hi, Lo uint64
}

// Hash accumulator constants: two independent multiply-xor-rotate
// lanes seeded differently, finalized with the splitmix64 avalanche.
// Not cryptographic — the threat model is accidental collision between
// real images, where 128 well-mixed bits make collisions effectively
// impossible (verified for stability and bit-sensitivity by
// FuzzKeyDerivation).
const (
	keySeedLo = 0x9e3779b97f4a7c15
	keySeedHi = 0xc2b2ae3d27d4eb4f
	keyMulA   = 0xff51afd7ed558ccd
	keyMulB   = 0xc4ceb9fe1a85ec53
)

// hasher is the two-lane streaming state. The zero value is NOT ready;
// use newHasher.
type hasher struct {
	lo, hi uint64
	n      uint64 // words absorbed, folded in at finalization
}

func newHasher() hasher { return hasher{lo: keySeedLo, hi: keySeedHi} }

// word absorbs one 64-bit word into both lanes.
func (h *hasher) word(w uint64) {
	h.lo = bits.RotateLeft64(h.lo^(w*keyMulA), 31) * keyMulB
	h.hi = bits.RotateLeft64(h.hi^(w*keyMulB), 29) * keyMulA
	h.n++
}

// str absorbs a string length-prefixed, so ("ab","c") and ("a","bc")
// hash differently. Byte-indexed to stay allocation-free.
func (h *hasher) str(s string) {
	h.word(uint64(len(s)))
	var w uint64
	var k uint
	for i := 0; i < len(s); i++ {
		w |= uint64(s[i]) << (8 * k)
		if k++; k == 8 {
			h.word(w)
			w, k = 0, 0
		}
	}
	if k > 0 {
		h.word(w)
	}
}

// floats absorbs a float32 slice two elements per word. Float bits are
// hashed directly, so -0 and +0 (and NaN payloads) are distinct — the
// key tracks exact byte content, matching the byte-identity contract.
func (h *hasher) floats(d []float32) {
	i := 0
	for ; i+1 < len(d); i += 2 {
		h.word(uint64(math.Float32bits(d[i])) | uint64(math.Float32bits(d[i+1]))<<32)
	}
	if i < len(d) {
		h.word(uint64(math.Float32bits(d[i])))
	}
}

// mix64 is the splitmix64 finalizer.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// sum finalizes the two lanes, cross-feeding them so every input bit
// influences both halves of the key.
func (h *hasher) sum() Key {
	lo := mix64(h.lo ^ h.n*keyMulA)
	hi := mix64(h.hi ^ h.n*keyMulB ^ lo)
	return Key{Hi: hi, Lo: mix64(lo ^ hi)}
}

// Granularity tags which serving level a key caches. It is hashed into
// the key as a domain separator: a whole-image request and a halo tile
// can carry the *same tensor* — when the engine's halo padding grows a
// central tile to cover the entire image, ExtractTile returns a copy of
// it — and without separation the tile's singleflight would join its
// own ancestor's whole-image flight and deadlock waiting on itself
// (pinned by serve.TestCacheTileGranularity, whose center tile pads to
// the full image). Keeping the domains
// apart makes flight nesting strictly whole → tile → batcher, which is
// cycle-free.
type Granularity uint8

const (
	// GranImage keys a whole-image request (and the stitched result of
	// a tiled one).
	GranImage Granularity = iota + 1
	// GranTile keys one extracted halo tile.
	GranTile
)

// MakeKey derives the cache key for serving tensor x (an LR image or an
// extracted halo tile, post-normalization) with the named model and
// variant at the given upscale factor and engine tile size. The tensor's
// dims are hashed ahead of its data, so equal flattened content at
// different geometry never collides. Allocation-free — it runs on the
// cache-hit lookup path.
func MakeKey(g Granularity, model, variant string, scale, tile int, x *tensor.Tensor) Key {
	h := newHasher()
	h.word(uint64(g))
	h.str(model)
	h.str(variant)
	h.word(uint64(int64(scale)))
	h.word(uint64(int64(tile)))
	h.word(uint64(x.Rank()))
	for i := 0; i < x.Rank(); i++ {
		h.word(uint64(x.Dim(i)))
	}
	h.floats(x.Data())
	return h.sum()
}
