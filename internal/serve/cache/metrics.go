package cache

import "repro/internal/trace"

// Metrics bundles the result-cache instruments, registered on the same
// trace.Metrics registry as the sr_* serving counters and scraped from
// the shared /metrics endpoint. Every method tolerates a nil receiver
// (observability off), matching the serve.Metrics convention, so the
// lookup hot path needs no enabled-checks.
type Metrics struct {
	// Hits and Misses partition lookups: a hit copies a stored result
	// out without touching the batcher; a miss falls through to the
	// singleflight compute path.
	Hits   *trace.Counter
	Misses *trace.Counter
	// Evictions counts entries dropped to stay inside the byte budget.
	Evictions *trace.Counter
	// InflightWaits counts requests that parked on another request's
	// in-flight forward instead of computing their own; InflightCancels
	// counts waiters that gave up early because their request context
	// was cancelled (the shared forward keeps running).
	InflightWaits   *trace.Counter
	InflightCancels *trace.Counter
	// Bytes and Entries gauge the live cache footprint.
	Bytes   *trace.Gauge
	Entries *trace.Gauge
}

// NewMetrics registers the cache instruments on m (nil m → nil bundle,
// metrics off).
func NewMetrics(m *trace.Metrics) *Metrics {
	if m == nil {
		return nil
	}
	return &Metrics{
		Hits:            m.Counter("sr_cache_hit_total", "Result-cache hits (forward skipped, stored tensor copied out)."),
		Misses:          m.Counter("sr_cache_miss_total", "Result-cache misses (request computed a forward)."),
		Evictions:       m.Counter("sr_cache_evict_total", "Entries evicted to stay inside the byte budget."),
		InflightWaits:   m.Counter("sr_cache_inflight_wait_total", "Requests collapsed onto another request's in-flight forward."),
		InflightCancels: m.Counter("sr_cache_inflight_cancel_total", "Singleflight waiters cancelled by their request context."),
		Bytes:           m.Gauge("sr_cache_bytes", "Bytes of upscaled tensors currently cached."),
		Entries:         m.Gauge("sr_cache_entries", "Entries currently cached."),
	}
}

// hit records one lookup that was served from the cache.
func (m *Metrics) hit() {
	if m == nil {
		return
	}
	m.Hits.Inc()
}

// miss records one lookup that fell through to compute.
func (m *Metrics) miss() {
	if m == nil {
		return
	}
	m.Misses.Inc()
}

// evicted records n entries dropped by the byte budget.
func (m *Metrics) evicted(n int) {
	if m == nil {
		return
	}
	m.Evictions.Add(int64(n))
}

// inflightWait records a request parking on an in-flight forward.
func (m *Metrics) inflightWait() {
	if m == nil {
		return
	}
	m.InflightWaits.Inc()
}

// inflightCancel records a waiter unblocked by context cancellation.
func (m *Metrics) inflightCancel() {
	if m == nil {
		return
	}
	m.InflightCancels.Inc()
}

// footprint records the live byte and entry totals.
func (m *Metrics) footprint(bytes int64, entries int) {
	if m == nil {
		return
	}
	m.Bytes.Set(float64(bytes))
	m.Entries.Set(float64(entries))
}
