package cache

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/tensor"
	"repro/internal/trace"
)

// fill gives t deterministic content derived from seed.
func fill(t *tensor.Tensor, seed uint64) *tensor.Tensor {
	rng := tensor.NewRNG(seed)
	t.FillUniform(rng, 0, 1)
	return t
}

func TestGetMissThenHitRoundTrip(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20}, nil, nil)
	x := fill(tensor.New(1, 3, 8, 8), 1)
	k := MakeKey(GranImage, "m", "float32", 2, 48, x)
	out := tensor.New(1, 3, 16, 16)
	if c.Get(k, out) {
		t.Fatal("hit on an empty cache")
	}
	var computes int
	want := fill(tensor.New(1, 3, 16, 16), 2)
	compute := func(o *tensor.Tensor) error {
		computes++
		o.CopyFrom(want)
		return nil
	}
	if err := c.Do(context.Background(), k, out, compute); err != nil {
		t.Fatal(err)
	}
	got := tensor.New(1, 3, 16, 16)
	if !c.Get(k, got) {
		t.Fatal("miss after Do stored the result")
	}
	if computes != 1 {
		t.Fatalf("computes = %d, want 1", computes)
	}
	for i, v := range got.Data() {
		if v != want.Data()[i] {
			t.Fatalf("cached bytes differ at %d", i)
		}
	}
	if c.Len() != 1 || c.Bytes() != want.Bytes() {
		t.Fatalf("footprint = (%d entries, %d bytes), want (1, %d)", c.Len(), c.Bytes(), want.Bytes())
	}
}

func TestByteBudgetEvictsLRU(t *testing.T) {
	// One shard so recency order is global and the budget is exact.
	val := tensor.New(1, 3, 8, 8) // 768 bytes per entry
	c := New(Config{MaxBytes: 4 * val.Bytes(), Shards: 1}, nil, nil)
	keys := make([]Key, 6)
	for i := range keys {
		x := fill(tensor.New(1, 3, 4, 4), uint64(i+1))
		keys[i] = MakeKey(GranImage, "m", "float32", 2, 48, x)
		err := c.Do(context.Background(), keys[i], tensor.New(1, 3, 8, 8), func(o *tensor.Tensor) error {
			fill(o, uint64(100+i))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		// Touch key 0 after every insert so it stays hot.
		if i > 0 {
			c.Get(keys[0], val)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("entries = %d, want 4 (budget holds 4)", c.Len())
	}
	if !c.Get(keys[0], val) {
		t.Fatal("hot entry was evicted despite recency refreshes")
	}
	if c.Get(keys[1], val) || c.Get(keys[2], val) {
		t.Fatal("LRU entries survived past the byte budget")
	}
	if c.Get(keys[5], val) != true {
		t.Fatal("most recent insert missing")
	}
}

func TestOversizedValueNotCached(t *testing.T) {
	c := New(Config{MaxBytes: 64, Shards: 1}, nil, nil)
	x := fill(tensor.New(1, 3, 8, 8), 1)
	k := MakeKey(GranImage, "m", "float32", 2, 48, x)
	out := tensor.New(1, 3, 16, 16) // 3 KB >> 64 B budget
	err := c.Do(context.Background(), k, out, func(o *tensor.Tensor) error {
		fill(o, 2)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("oversized value was cached: %d entries, %d bytes", c.Len(), c.Bytes())
	}
}

func TestSingleflightCollapsesConcurrentMisses(t *testing.T) {
	reg := trace.NewMetrics()
	met := NewMetrics(reg)
	c := New(Config{MaxBytes: 1 << 20}, met, nil)
	x := fill(tensor.New(1, 3, 8, 8), 3)
	k := MakeKey(GranImage, "m", "float32", 2, 48, x)
	want := fill(tensor.New(1, 3, 16, 16), 4)

	var computes atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})
	compute := func(o *tensor.Tensor) error {
		computes.Add(1)
		close(started)
		<-gate // hold the flight open until all waiters have joined
		o.CopyFrom(want)
		return nil
	}
	slowJoin := func(o *tensor.Tensor) error {
		t.Error("follower ran its own compute instead of joining the flight")
		return nil
	}

	const followers = 8
	var wg sync.WaitGroup
	errs := make([]error, followers+1)
	outs := make([]*tensor.Tensor, followers+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		outs[0] = tensor.New(1, 3, 16, 16)
		errs[0] = c.Do(context.Background(), k, outs[0], compute)
	}()
	<-started
	for i := 1; i <= followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i] = tensor.New(1, 3, 16, 16)
			errs[i] = c.Do(context.Background(), k, outs[i], slowJoin)
		}(i)
	}
	// Let followers reach the wait before releasing the leader.
	for met.InflightWaits.Value() < followers {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("computes = %d, want 1 (singleflight)", n)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		for j, v := range outs[i].Data() {
			if v != want.Data()[j] {
				t.Fatalf("request %d result differs at %d", i, j)
			}
		}
	}
	if w := met.InflightWaits.Value(); w != followers {
		t.Fatalf("inflight waits = %d, want %d", w, followers)
	}
}

func TestWaiterCancelUnblocksWithoutKillingFlight(t *testing.T) {
	reg := trace.NewMetrics()
	met := NewMetrics(reg)
	c := New(Config{MaxBytes: 1 << 20}, met, nil)
	x := fill(tensor.New(1, 3, 8, 8), 5)
	k := MakeKey(GranImage, "m", "float32", 2, 48, x)
	want := fill(tensor.New(1, 3, 16, 16), 6)

	gate := make(chan struct{})
	started := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		out := tensor.New(1, 3, 16, 16)
		leaderDone <- c.Do(context.Background(), k, out, func(o *tensor.Tensor) error {
			close(started)
			<-gate
			o.CopyFrom(want)
			return nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		out := tensor.New(1, 3, 16, 16)
		waiterDone <- c.Do(ctx, k, out, func(o *tensor.Tensor) error {
			t.Error("cancelled waiter must not compute")
			return nil
		})
	}()
	for met.InflightWaits.Value() < 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-waiterDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter did not unblock while the flight was still running")
	}
	if met.InflightCancels.Value() != 1 {
		t.Fatalf("inflight cancels = %d, want 1", met.InflightCancels.Value())
	}

	// The shared forward was not cancelled: release it and verify the
	// leader completes and the result lands in the cache.
	close(gate)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader: %v", err)
	}
	got := tensor.New(1, 3, 16, 16)
	if !c.Get(k, got) {
		t.Fatal("flight result was not cached after waiter cancellation")
	}
}

func TestLeaderErrorSharedNotCached(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20}, nil, nil)
	x := fill(tensor.New(1, 3, 8, 8), 7)
	k := MakeKey(GranImage, "m", "float32", 2, 48, x)
	boom := errors.New("overloaded")

	gate := make(chan struct{})
	started := make(chan struct{})
	leaderDone := make(chan error, 1)
	go func() {
		leaderDone <- c.Do(context.Background(), k, tensor.New(1, 3, 16, 16), func(o *tensor.Tensor) error {
			close(started)
			<-gate
			return boom
		})
	}()
	<-started
	waiterDone := make(chan error, 1)
	go func() {
		waiterDone <- c.Do(context.Background(), k, tensor.New(1, 3, 16, 16), func(o *tensor.Tensor) error {
			t.Error("waiter joined a flight, must not compute")
			return nil
		})
	}()
	time.Sleep(5 * time.Millisecond) // let the waiter park
	close(gate)
	if err := <-leaderDone; !errors.Is(err, boom) {
		t.Fatalf("leader error = %v, want %v", err, boom)
	}
	if err := <-waiterDone; !errors.Is(err, boom) {
		t.Fatalf("waiter error = %v, want %v (shared flight outcome)", err, boom)
	}
	// Errors are not cached: the next request recomputes.
	var recomputed bool
	err := c.Do(context.Background(), k, tensor.New(1, 3, 16, 16), func(o *tensor.Tensor) error {
		recomputed = true
		return nil
	})
	if err != nil || !recomputed {
		t.Fatalf("retry after error: err=%v recomputed=%v", err, recomputed)
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache
	if c.Enabled() || New(Config{MaxBytes: 0}, nil, nil) != nil {
		t.Fatal("MaxBytes <= 0 must yield the disabled (nil) cache")
	}
	x := fill(tensor.New(1, 3, 8, 8), 9)
	k := MakeKey(GranImage, "m", "float32", 2, 48, x)
	out := tensor.New(1, 3, 16, 16)
	if c.Get(k, out) {
		t.Fatal("nil cache hit")
	}
	var computes int
	if err := c.Do(context.Background(), k, out, func(o *tensor.Tensor) error {
		computes++
		return nil
	}); err != nil || computes != 1 {
		t.Fatalf("nil-cache Do: err=%v computes=%d", err, computes)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("nil cache reported a footprint")
	}
}

// TestCacheHammerConcurrent races hits, misses, singleflight joins,
// waiter cancellations, and evictions across shards under -race: a
// small key universe and a budget far below the working set force every
// transition to happen concurrently.
func TestCacheHammerConcurrent(t *testing.T) {
	reg := trace.NewMetrics()
	met := NewMetrics(reg)
	oneVal := tensor.New(1, 3, 16, 16)
	c := New(Config{MaxBytes: 6 * oneVal.Bytes(), Shards: 4}, met, nil)

	const universe = 24
	xs := make([]*tensor.Tensor, universe)
	keys := make([]Key, universe)
	wants := make([]*tensor.Tensor, universe)
	for i := range xs {
		xs[i] = fill(tensor.New(1, 3, 8, 8), uint64(1000+i))
		keys[i] = MakeKey(GranImage, "m", "float32", 2, 48, xs[i])
		wants[i] = fill(tensor.New(1, 3, 16, 16), uint64(2000+i))
	}

	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			out := tensor.New(1, 3, 16, 16)
			for i := 0; i < 300; i++ {
				k := rng.Intn(universe)
				ctx := context.Background()
				var cancel context.CancelFunc
				if rng.Intn(4) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(200))*time.Microsecond)
				}
				if !c.Get(keys[k], out) {
					err := c.Do(ctx, keys[k], out, func(o *tensor.Tensor) error {
						time.Sleep(time.Duration(rng.Intn(100)) * time.Microsecond)
						o.CopyFrom(wants[k])
						return nil
					})
					if err != nil && !errors.Is(err, context.DeadlineExceeded) {
						t.Errorf("Do: %v", err)
					}
					if err != nil {
						if cancel != nil {
							cancel()
						}
						continue
					}
				}
				// Whatever path filled out, it must be byte-exact.
				for j, v := range out.Data() {
					if v != wants[k].Data()[j] {
						t.Errorf("worker %d: corrupt result for key %d at %d", w, k, j)
						break
					}
				}
				if cancel != nil {
					cancel()
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Bytes() > 6*oneVal.Bytes() {
		t.Fatalf("cache over budget after hammer: %d bytes", c.Bytes())
	}
	if met.Hits.Value() == 0 || met.Misses.Value() == 0 || met.Evictions.Value() == 0 {
		t.Fatalf("hammer did not exercise all transitions: hits=%d misses=%d evicts=%d",
			met.Hits.Value(), met.Misses.Value(), met.Evictions.Value())
	}
}

// TestFootprintGaugesTrack pins the sr_cache_bytes/entries gauges to
// the real footprint through inserts and evictions.
func TestFootprintGaugesTrack(t *testing.T) {
	reg := trace.NewMetrics()
	met := NewMetrics(reg)
	val := tensor.New(1, 3, 8, 8)
	c := New(Config{MaxBytes: 2 * val.Bytes(), Shards: 1}, met, nil)
	for i := 0; i < 5; i++ {
		x := fill(tensor.New(1, 3, 4, 4), uint64(50+i))
		k := MakeKey(GranImage, "m", "float32", 2, 48, x)
		if err := c.Do(context.Background(), k, tensor.New(1, 3, 8, 8), func(o *tensor.Tensor) error {
			fill(o, uint64(60+i))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if int64(met.Bytes.Value()) != c.Bytes() || int(met.Entries.Value()) != c.Len() {
			t.Fatalf("gauges (%v bytes, %v entries) diverged from footprint (%d, %d)",
				met.Bytes.Value(), met.Entries.Value(), c.Bytes(), c.Len())
		}
	}
	if c.Len() != 2 {
		t.Fatalf("entries = %d, want 2", c.Len())
	}
	if met.Evictions.Value() != 3 {
		t.Fatalf("evictions = %d, want 3", met.Evictions.Value())
	}
}

// TestTraceSpansEmitted verifies hits and singleflight waits land in
// the serve/cache trace category.
func TestTraceSpansEmitted(t *testing.T) {
	sess := trace.NewSession(0)
	rec := sess.Recorder(0)
	c := New(Config{MaxBytes: 1 << 20}, nil, rec)
	x := fill(tensor.New(1, 3, 8, 8), 11)
	k := MakeKey(GranImage, "m", "float32", 2, 48, x)
	out := tensor.New(1, 3, 16, 16)
	if err := c.Do(context.Background(), k, out, func(o *tensor.Tensor) error {
		fill(o, 12)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !c.Get(k, out) {
		t.Fatal("miss")
	}
	var cacheSpans int
	for _, s := range rec.Spans() {
		if s.Cat == trace.CatServeCache {
			cacheSpans++
		}
	}
	if cacheSpans == 0 {
		t.Fatal("no serve/cache spans recorded for a cache hit")
	}
	if trace.CatServeCache.String() != "serve/cache" || trace.CatServeCache.Group() != "serve" {
		t.Fatalf("category naming: %q / %q", trace.CatServeCache.String(), trace.CatServeCache.Group())
	}
}

// TestShapeMismatchIsMiss covers the defensive path: a stored value
// whose length differs from the caller's buffer reads as a miss rather
// than a partial copy. (Unreachable through MakeKey, which hashes dims.)
func TestShapeMismatchIsMiss(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20}, nil, nil)
	x := fill(tensor.New(1, 3, 8, 8), 13)
	k := MakeKey(GranImage, "m", "float32", 2, 48, x)
	if err := c.Do(context.Background(), k, tensor.New(1, 3, 16, 16), func(o *tensor.Tensor) error {
		fill(o, 14)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if c.Get(k, tensor.New(1, 3, 8, 8)) {
		t.Fatal("hit with a mismatched output shape")
	}
}

// Exhaustively assert the insert/replace path keeps the list and map
// consistent (the intrusive list is the riskiest code here).
func TestInsertReplaceKeepsConsistency(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, Shards: 1}, nil, nil)
	x := fill(tensor.New(1, 3, 8, 8), 15)
	k := MakeKey(GranImage, "m", "float32", 2, 48, x)
	for i := 0; i < 3; i++ {
		c.insert(k, fill(tensor.New(1, 3, 16, 16), uint64(70+i)))
	}
	if c.Len() != 1 {
		t.Fatalf("replacing inserts duplicated: %d entries", c.Len())
	}
	want := fill(tensor.New(1, 3, 16, 16), 72)
	got := tensor.New(1, 3, 16, 16)
	if !c.Get(k, got) {
		t.Fatal("miss after replace")
	}
	for i, v := range got.Data() {
		if v != want.Data()[i] {
			t.Fatalf("replace kept stale bytes at %d", i)
		}
	}
	if c.shards[0].head.key != k {
		t.Fatal("replaced entry not at list head")
	}
}
