package cache

import (
	"context"
	"testing"

	"repro/internal/tensor"
	"repro/internal/trace"
)

// TestCacheHitLookupNoAllocs pins the cache-hit perf contract: key
// derivation plus a hit — map lookup, LRU refresh, copy-out, metrics,
// trace span — performs zero heap allocations, so a hot-content server
// spends nothing on GC for the traffic it already answered. Measured
// with metrics and tracing ON, the production configuration.
func TestCacheHitLookupNoAllocs(t *testing.T) {
	reg := trace.NewMetrics()
	met := NewMetrics(reg)
	sess := trace.NewSession(0)
	c := New(Config{MaxBytes: 1 << 20}, met, sess.Recorder(0))

	rng := tensor.NewRNG(21)
	x := tensor.New(1, 3, 32, 32)
	x.FillUniform(rng, 0, 1)
	out := tensor.New(1, 3, 64, 64)
	k := MakeKey(GranImage, "edsr", "fused", 2, 48, x)
	if err := c.Do(context.Background(), k, out, func(o *tensor.Tensor) error {
		o.FillUniform(rng, 0, 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	if allocs := testing.AllocsPerRun(100, func() {
		kk := MakeKey(GranImage, "edsr", "fused", 2, 48, x)
		if !c.Get(kk, out) {
			t.Fatal("unexpected miss")
		}
	}); allocs != 0 {
		t.Fatalf("cache-hit lookup allocated %.0f objects, want 0", allocs)
	}
}

// TestMakeKeyNoAllocs isolates key derivation (it runs on every
// request, hit or miss).
func TestMakeKeyNoAllocs(t *testing.T) {
	rng := tensor.NewRNG(22)
	x := tensor.New(1, 3, 48, 48)
	x.FillUniform(rng, 0, 1)
	if allocs := testing.AllocsPerRun(100, func() {
		_ = MakeKey(GranImage, "edsr-tiny", "int8", 2, 48, x)
	}); allocs != 0 {
		t.Fatalf("MakeKey allocated %.0f objects, want 0", allocs)
	}
}
