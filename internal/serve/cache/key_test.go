package cache

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/imageio"
	"repro/internal/tensor"
)

func TestMakeKeyDeterministic(t *testing.T) {
	rng := tensor.NewRNG(1)
	x := tensor.New(1, 3, 12, 12)
	x.FillUniform(rng, 0, 1)
	a := MakeKey(GranImage, "edsr", "int8", 2, 48, x)
	b := MakeKey(GranImage, "edsr", "int8", 2, 48, x.Clone())
	if a != b {
		t.Fatalf("same inputs hashed differently: %x vs %x", a, b)
	}
}

// TestMakeKeySensitivity flips every key-derivation field one at a time
// and requires a different key: a collision across any of them would
// serve one model's pixels under another's identity.
func TestMakeKeySensitivity(t *testing.T) {
	rng := tensor.NewRNG(2)
	x := tensor.New(1, 3, 12, 12)
	x.FillUniform(rng, 0, 1)
	base := MakeKey(GranImage, "edsr", "float32", 2, 48, x)

	perturbed := map[string]Key{
		"model":   MakeKey(GranImage, "srcnn", "float32", 2, 48, x),
		"variant": MakeKey(GranImage, "edsr", "fused", 2, 48, x),
		"scale":   MakeKey(GranImage, "edsr", "float32", 4, 48, x),
		"tile":    MakeKey(GranImage, "edsr", "float32", 2, 64, x),
		// Granularity is the singleflight domain separator: a halo tile
		// padded to the full image carries the same tensor as the whole-
		// image request, and a shared key would let the tile join its own
		// ancestor's flight (deadlock).
		"granularity": MakeKey(GranTile, "edsr", "float32", 2, 48, x),
	}
	// One-ULP pixel change.
	y := x.Clone()
	y.Data()[77] = math.Float32frombits(math.Float32bits(y.Data()[77]) ^ 1)
	perturbed["pixel-bit"] = MakeKey(GranImage, "edsr", "float32", 2, 48, y)
	// Same flattened bytes, different geometry.
	z := tensor.FromSlice(x.Data(), 1, 3, 9, 16)
	perturbed["dims"] = MakeKey(GranImage, "edsr", "float32", 2, 48, z)

	seen := map[Key]string{base: "base"}
	for field, k := range perturbed {
		if prev, dup := seen[k]; dup {
			t.Errorf("perturbing %s collided with %s", field, prev)
		}
		seen[k] = field
	}
	// Boundary-sensitivity: moving a string byte across the
	// model/variant delimiter must change the key.
	if MakeKey(GranImage, "ab", "c", 2, 48, x) == MakeKey(GranImage, "a", "bc", 2, 48, x) {
		t.Error("length prefixing failed: string boundary shift collided")
	}
}

func TestMakeKeyZeroVsNegativeZero(t *testing.T) {
	x := tensor.New(1, 1, 2, 2)
	y := x.Clone()
	y.Data()[0] = float32(math.Copysign(0, -1))
	if MakeKey(GranImage, "m", "v", 2, 48, x) == MakeKey(GranImage, "m", "v", 2, 48, y) {
		t.Fatal("-0 and +0 collided; key must track exact bytes")
	}
}

// FuzzKeyDerivation feeds mutated PNG bytes through the real decode
// path (the normalization the key is computed after) and checks the two
// properties serving correctness rests on: stability — the same decoded
// content always derives the same key — and bit-sensitivity — flipping
// one bit of any pixel, or any identity field, changes the key.
func FuzzKeyDerivation(f *testing.F) {
	rng := tensor.NewRNG(3)
	for _, edge := range []int{1, 3, 8} {
		x := tensor.New(1, 3, edge, edge)
		x.FillUniform(rng, 0, 1)
		var buf bytes.Buffer
		if err := imageio.WritePNG(&buf, x); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes(), uint16(0))
	}
	f.Fuzz(func(t *testing.T, png []byte, pixSel uint16) {
		x, err := imageio.ReadPNG(bytes.NewReader(png))
		if err != nil {
			t.Skip() // invalid PNG: decode rejects it before any caching
		}
		k1 := MakeKey(GranImage, "edsr", "int8", 2, 48, x)
		k2 := MakeKey(GranImage, "edsr", "int8", 2, 48, x.Clone())
		if k1 != k2 {
			t.Fatalf("unstable key: %x vs %x", k1, k2)
		}
		// Flip one bit of one pixel: the key must move.
		y := x.Clone()
		i := int(pixSel) % y.Len()
		bit := uint32(1) << (pixSel % 31)
		y.Data()[i] = math.Float32frombits(math.Float32bits(y.Data()[i]) ^ bit)
		if MakeKey(GranImage, "edsr", "int8", 2, 48, y) == k1 {
			t.Fatalf("pixel bit flip at %d did not change the key", i)
		}
		if MakeKey(GranImage, "edsr", "fused", 2, 48, x) == k1 || MakeKey(GranImage, "srcnn", "int8", 2, 48, x) == k1 {
			t.Fatal("identity field change did not change the key")
		}
	})
}
