package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/imageio"
	"repro/internal/trace"
	rtrace "repro/internal/trace/request"
)

// DefaultMaxBodyBytes bounds an uploaded PNG (16 MB).
const DefaultMaxBodyBytes = 16 << 20

// statusClientClosedRequest is the conventional (nginx) status for a
// request abandoned by its client; it only feeds metrics — the
// connection is already gone, so no response is written.
const statusClientClosedRequest = 499

// Server is the HTTP front end: POST a PNG to /v1/upscale and get the
// super-resolved PNG back. It adds transport concerns on top of the
// engine — body limits, content negotiation, error mapping (backpressure
// → 429, drain → 503), health, model listing, and the shared /metrics
// endpoint.
type Server struct {
	e        *Engine
	reg      *trace.Metrics
	met      *Metrics
	traces   *rtrace.Store
	maxBody  int64
	mux      *http.ServeMux
	draining atomic.Bool
}

// NewServer wires the engine into an http.Handler. reg and met may be
// nil (no /metrics endpoint, no counters); maxBody <= 0 selects
// DefaultMaxBodyBytes. Request tracing is on by default (tail-sampled,
// bounded memory) and served from /debug/traces; SetTraceStore swaps in
// a store with non-default knobs.
func NewServer(e *Engine, reg *trace.Metrics, met *Metrics, maxBody int64) *Server {
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	s := &Server{
		e: e, reg: reg, met: met, maxBody: maxBody,
		traces: rtrace.NewStore(rtrace.Config{}),
		mux:    http.NewServeMux(),
	}
	s.mux.HandleFunc("/v1/upscale", s.handleUpscale)
	s.mux.HandleFunc("/v1/models", s.handleModels)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		s.traces.Handler().ServeHTTP(w, r)
	})
	if reg != nil {
		s.mux.Handle("/metrics", reg.Handler())
	}
	return s
}

// SetTraceStore replaces the request-trace store (configure sampling
// knobs before serving traffic).
func (s *Server) SetTraceStore(st *rtrace.Store) {
	if st != nil {
		s.traces = st
	}
}

// TraceStore returns the server's request-trace store.
func (s *Server) TraceStore() *rtrace.Store { return s.traces }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// StartDrain flips the server into draining mode: /healthz reports 503
// (so load balancers stop routing here) and new upscale requests are
// rejected with 503, while requests already inside a handler finish
// normally. Call Engine.Shutdown after the HTTP server has finished its
// in-flight handlers to complete the drain.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// fail writes a plain-text error response and records the outcome.
// Both 429 (saturated) and 503 (draining) carry Retry-After: a load
// balancer that sees a bare 503 from a draining replica hot-retries
// it, while Retry-After tells it to back off for the drain window.
func (s *Server) fail(w http.ResponseWriter, code int, msg string) {
	s.met.httpOutcome(code)
	switch code {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", "1")
	}
	http.Error(w, msg, code)
}

// handleUpscale is POST /v1/upscale?model=NAME with a PNG body. It
// brackets the whole exchange in a request trace: the trace ID comes in
// on `traceparent` (or is minted here), rides the context through the
// engine, goes back to the client as X-Trace-Id, and — when the tail
// sampler keeps the trace — is linked from the latency histogram as an
// exemplar.
func (s *Server) handleUpscale(w http.ResponseWriter, r *http.Request) {
	s.met.httpRequest()
	a := s.traces.Start(r.Header.Get("traceparent"))
	began := time.Now()
	if a != nil {
		w.Header().Set("X-Trace-Id", a.TraceID().String())
		r = r.WithContext(rtrace.NewContext(r.Context(), a))
	}
	status := s.doUpscale(w, r, a)
	if id, kept := s.traces.Finish(a, status); kept {
		s.met.requestExemplar(time.Since(began).Seconds(), id.String())
	}
}

// doUpscale runs the upscale exchange and returns the HTTP status it
// accounted for (499 when the client vanished mid-request).
func (s *Server) doUpscale(w http.ResponseWriter, r *http.Request, a *rtrace.Active) int {
	if r.Method != http.MethodPost {
		// RFC 9110 §15.5.6: a 405 MUST name the allowed methods.
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, http.StatusMethodNotAllowed, "POST a PNG body")
		return http.StatusMethodNotAllowed
	}
	if s.draining.Load() {
		s.fail(w, http.StatusServiceUnavailable, ErrDraining.Error())
		return http.StatusServiceUnavailable
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dstart := a.Now()
	x, err := imageio.ReadPNG(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.fail(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("body over %d bytes", s.maxBody))
			return http.StatusRequestEntityTooLarge
		}
		s.fail(w, http.StatusBadRequest, "bad PNG: "+err.Error())
		return http.StatusBadRequest
	}
	a.EmitStage(rtrace.StageServeDecode, a.Root(), dstart, x.Bytes())
	// The request context rides into the engine so a client that
	// disconnects while parked on another request's in-flight forward
	// unblocks immediately (the shared forward keeps running).
	out, err := s.e.UpscaleCtx(r.Context(), r.URL.Query().Get("model"), x)
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// Client gone: nothing to write, just account for it.
		s.met.httpOutcome(statusClientClosedRequest)
		return statusClientClosedRequest
	case errors.Is(err, ErrOverloaded):
		s.fail(w, http.StatusTooManyRequests, err.Error())
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		s.fail(w, http.StatusServiceUnavailable, err.Error())
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownModel):
		s.fail(w, http.StatusNotFound, err.Error())
		return http.StatusNotFound
	case errors.Is(err, ErrBadInput):
		s.fail(w, http.StatusBadRequest, err.Error())
		return http.StatusBadRequest
	default:
		s.fail(w, http.StatusInternalServerError, err.Error())
		return http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "image/png")
	estart := a.Now()
	if err := imageio.WritePNG(w, out); err != nil {
		// Headers are gone; all we can do is count it.
		s.met.httpOutcome(http.StatusInternalServerError)
		return http.StatusInternalServerError
	}
	a.EmitStage(rtrace.StageServeEncode, a.Root(), estart, out.Bytes())
	s.met.httpOutcome(http.StatusOK)
	return http.StatusOK
}

// handleModels is GET /v1/models. It feeds the same request/outcome
// accounting as upscale so the sr_requests_total partition covers
// every endpoint.
func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	s.met.httpRequest()
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.fail(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.e.Models()); err != nil {
		// Headers are gone; all we can do is count it.
		s.met.httpOutcome(http.StatusInternalServerError)
		return
	}
	s.met.httpOutcome(http.StatusOK)
}

// handleHealth is GET /healthz: 200 while serving, 503 while draining.
// The draining 503 goes through fail so it carries Retry-After — load
// balancers poll this endpoint and must back off, not hot-retry, a
// replica in its lame-duck window.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.met.httpRequest()
	if s.draining.Load() {
		s.fail(w, http.StatusServiceUnavailable, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
	s.met.httpOutcome(http.StatusOK)
}
