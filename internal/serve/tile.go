package serve

import (
	"fmt"

	"repro/internal/tensor"
)

// Tile is one piece of a tiled forward. Core (CX0,CY0)–(CX1,CY1) is the
// half-open LR region this tile is responsible for in the output;
// Padded (PX0,PY0)–(PX1,PY1) is the core grown by the model's halo and
// clamped to the image bounds — the region actually forwarded. Zero
// padding inside the model only corrupts the outermost halo pixels of
// the padded tile, which the stitcher crops away, so the core comes out
// identical to a whole-image forward. Where the padded region hits a
// real image border the clamp makes the tile border coincide with the
// image border, and the model's zero padding applies exactly as it
// would on the whole image.
type Tile struct {
	CX0, CY0, CX1, CY1 int
	PX0, PY0, PX1, PY1 int
}

// SplitTiles cuts an h×w LR image into tiles with cores at most
// tile×tile and a halo-pixel context ring. tile < 1 (or a tile covering
// the whole image) degenerates to a single tile whose padded region is
// the full image, making the tiled forward trivially exact.
func SplitTiles(h, w, tile, halo int) []Tile {
	if tile < 1 {
		tile = max(h, w)
	}
	if halo < 0 {
		halo = 0
	}
	ts := make([]Tile, 0, ((h+tile-1)/tile)*((w+tile-1)/tile))
	for y0 := 0; y0 < h; y0 += tile {
		y1 := min(y0+tile, h)
		for x0 := 0; x0 < w; x0 += tile {
			x1 := min(x0+tile, w)
			ts = append(ts, Tile{
				CX0: x0, CY0: y0, CX1: x1, CY1: y1,
				PX0: max(0, x0-halo), PY0: max(0, y0-halo),
				PX1: min(w, x1+halo), PY1: min(h, y1+halo),
			})
		}
	}
	return ts
}

// ExtractTile copies the padded region of t from the LR image x
// (1, C, H, W) into a fresh (1, C, ph, pw) tensor.
func ExtractTile(x *tensor.Tensor, t Tile) *tensor.Tensor {
	c, w := x.Dim(1), x.Dim(3)
	ph, pw := t.PY1-t.PY0, t.PX1-t.PX0
	out := tensor.New(1, c, ph, pw)
	xd, od := x.Data(), out.Data()
	h := x.Dim(2)
	for ch := 0; ch < c; ch++ {
		srcPlane := xd[ch*h*w : (ch+1)*h*w]
		dstPlane := od[ch*ph*pw : (ch+1)*ph*pw]
		for y := 0; y < ph; y++ {
			src := srcPlane[(t.PY0+y)*w+t.PX0 : (t.PY0+y)*w+t.PX1]
			copy(dstPlane[y*pw:(y+1)*pw], src)
		}
	}
	return out
}

// StitchTile copies the core of a forwarded tile into the SR output
// image. y is the model output for the padded tile, (1, C, ph*s, pw*s);
// dst is the whole SR image (1, C, H*s, W*s). Only the core region —
// the seam-cropped center — is written.
func StitchTile(dst, y *tensor.Tensor, t Tile, scale int) {
	c := dst.Dim(1)
	dw := dst.Dim(3)
	pw := (t.PX1 - t.PX0) * scale
	ph := (t.PY1 - t.PY0) * scale
	// Core region in the tile's local HR coordinates.
	ly0, lx0 := (t.CY0-t.PY0)*scale, (t.CX0-t.PX0)*scale
	ch, cw := (t.CY1-t.CY0)*scale, (t.CX1-t.CX0)*scale
	yd, dd := y.Data(), dst.Data()
	dh := dst.Dim(2)
	for chn := 0; chn < c; chn++ {
		srcPlane := yd[chn*ph*pw : (chn+1)*ph*pw]
		dstPlane := dd[chn*dh*dw : (chn+1)*dh*dw]
		for r := 0; r < ch; r++ {
			src := srcPlane[(ly0+r)*pw+lx0 : (ly0+r)*pw+lx0+cw]
			drow := dstPlane[(t.CY0*scale+r)*dw+t.CX0*scale:]
			copy(drow[:cw], src)
		}
	}
}

// TiledForward runs m over x (1, C, H, W) tile by tile with the model's
// halo and stitches the seam-cropped cores into the full SR image.
// Memory is bounded by one padded tile's activations instead of the
// whole image's; with halo ≥ the receptive-field radius the result
// equals m.Forward(x) (see TestTiledForwardEquivalence).
func TiledForward(m Model, x *tensor.Tensor, tile int) (*tensor.Tensor, error) {
	if err := checkInput(x, m.Colors()); err != nil {
		return nil, err
	}
	c, h, w := x.Dim(1), x.Dim(2), x.Dim(3)
	s := m.Scale()
	out := tensor.New(1, c, h*s, w*s)
	for _, t := range SplitTiles(h, w, tile, m.Halo()) {
		y := m.Forward(ExtractTile(x, t))
		if y.Dim(2) != (t.PY1-t.PY0)*s || y.Dim(3) != (t.PX1-t.PX0)*s {
			return nil, fmt.Errorf("serve: model produced %v for a %dx%d tile at scale %d",
				y.Shape(), t.PY1-t.PY0, t.PX1-t.PX0, s)
		}
		StitchTile(out, y, t, s)
	}
	return out, nil
}
