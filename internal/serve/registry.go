package serve

import (
	"fmt"

	"repro/internal/models"
	"repro/internal/tensor"
	"repro/internal/trainer"
)

// LoadEDSRCheckpoint loads trained EDSR weights from disk and returns a
// Factory serving them. Both checkpoint flavors work: the weights-only
// file written by trainer.SaveCheckpoint and the full training state
// written by trainer.Session.Save — gob matches the shared
// Config/Names/Values fields and skips the optimizer state.
func LoadEDSRCheckpoint(path string) (Factory, models.EDSRConfig, error) {
	m, cfg, err := trainer.LoadCheckpoint(path)
	if err != nil {
		return nil, models.EDSRConfig{}, fmt.Errorf("serve: loading %s: %w", path, err)
	}
	return EDSRFactory(m), cfg.Model, nil
}

// BuiltinFactory returns a Factory for the named built-in model —
// fresh-weight demo networks and the bicubic baseline, so the server can
// run without a checkpoint:
//
//	bicubic    classical baseline, scale 2
//	edsr-tiny  EDSRTiny with seeded random weights
//	srcnn      SRCNN with seeded random weights, scale 2
func BuiltinFactory(name string) (Factory, error) {
	switch name {
	case "bicubic":
		return BicubicFactory(2, 3), nil
	case "edsr-tiny":
		master := models.NewEDSR(models.EDSRTiny(), tensor.NewRNG(1))
		return EDSRFactory(master), nil
	case "srcnn":
		master := models.NewSRCNN(3, tensor.NewRNG(1))
		return SRCNNFactory(master, 2, 3), nil
	default:
		return nil, fmt.Errorf("serve: unknown built-in model %q (have bicubic, edsr-tiny, srcnn)", name)
	}
}
