package serve

import (
	"fmt"

	"repro/internal/models"
	"repro/internal/tensor"
	"repro/internal/trainer"
)

// LoadEDSRCheckpoint loads trained EDSR weights from disk and returns a
// Factory serving them. Both checkpoint flavors work: the weights-only
// file written by trainer.SaveCheckpoint and the full training state
// written by trainer.Session.Save — gob matches the shared
// Config/Names/Values fields and skips the optimizer state.
func LoadEDSRCheckpoint(path string) (Factory, models.EDSRConfig, error) {
	m, cfg, err := trainer.LoadCheckpoint(path)
	if err != nil {
		return nil, models.EDSRConfig{}, fmt.Errorf("serve: loading %s: %w", path, err)
	}
	return EDSRFactory(m), cfg.Model, nil
}

// LoadEDSRMaster loads trained EDSR weights and returns the master model
// itself, for callers that build variant factories (and the float32 gate
// reference) from one weight set.
func LoadEDSRMaster(path string) (*models.EDSR, models.EDSRConfig, error) {
	m, cfg, err := trainer.LoadCheckpoint(path)
	if err != nil {
		return nil, models.EDSRConfig{}, fmt.Errorf("serve: loading %s: %w", path, err)
	}
	return m, cfg.Model, nil
}

// BuiltinFactory returns a Factory for the named built-in model —
// fresh-weight demo networks and the bicubic baseline, so the server can
// run without a checkpoint:
//
//	bicubic    classical baseline, scale 2
//	edsr-tiny  EDSRTiny with seeded random weights
//	srcnn      SRCNN with seeded random weights, scale 2
func BuiltinFactory(name string) (Factory, error) {
	switch name {
	case "bicubic":
		return BicubicFactory(2, 3), nil
	case "edsr-tiny":
		master := models.NewEDSR(models.EDSRTiny(), tensor.NewRNG(1))
		return EDSRFactory(master), nil
	case "srcnn":
		master := models.NewSRCNN(3, tensor.NewRNG(1))
		return SRCNNFactory(master, 2, 3), nil
	default:
		return nil, fmt.Errorf("serve: unknown built-in model %q (have bicubic, edsr-tiny, srcnn)", name)
	}
}

// BuiltinVariantFactory returns the candidate Factory serving the named
// built-in under variant, plus the float32 reference Factory over the
// same weights for the golden-set gate (nil when the candidate is the
// reference). bicubic has no network to compile and rejects compiled
// variants.
func BuiltinVariantFactory(name, variant string) (cand, ref Factory, err error) {
	if variant == "" || variant == VariantFloat32 {
		cand, err = BuiltinFactory(name)
		return cand, nil, err
	}
	switch name {
	case "bicubic":
		return nil, nil, fmt.Errorf("serve: bicubic has no %s variant (classical baseline)", variant)
	case "edsr-tiny":
		master := models.NewEDSR(models.EDSRTiny(), tensor.NewRNG(1))
		return CompiledEDSRFactory(master, variant), EDSRFactory(master), nil
	case "srcnn":
		master := models.NewSRCNN(3, tensor.NewRNG(1))
		return CompiledSRCNNFactory(master, 2, 3, variant), SRCNNFactory(master, 2, 3), nil
	default:
		return nil, nil, fmt.Errorf("serve: unknown built-in model %q (have bicubic, edsr-tiny, srcnn)", name)
	}
}
