package serve

import (
	"fmt"
	"testing"

	"repro/internal/models"
	"repro/internal/tensor"
)

// maxAbsDiff returns the largest per-element difference.
func maxAbsDiff(a, b *tensor.Tensor) float64 {
	if !a.SameShape(b) {
		return 1e30
	}
	var m float64
	ad, bd := a.Data(), b.Data()
	for i := range ad {
		d := float64(ad[i]) - float64(bd[i])
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// randImage builds a deterministic random (1, c, h, w) image in [0,1].
func randImage(rng *tensor.RNG, c, h, w int) *tensor.Tensor {
	x := tensor.New(1, c, h, w)
	x.FillUniform(rng, 0, 1)
	return x
}

// checkTiledEquivalence asserts tiled forward == whole forward within
// 1e-5 per pixel for one (model, image, tile) case.
func checkTiledEquivalence(t *testing.T, m Model, x *tensor.Tensor, tile int, label string) {
	t.Helper()
	whole := m.Forward(x).Clone() // the model reuses its output buffer
	tiled, err := TiledForward(m, x, tile)
	if err != nil {
		t.Fatalf("%s: TiledForward: %v", label, err)
	}
	if !whole.SameShape(tiled) {
		t.Fatalf("%s: shape %v vs whole %v", label, tiled.Shape(), whole.Shape())
	}
	if d := maxAbsDiff(whole, tiled); d > 1e-5 {
		t.Errorf("%s: tiled forward differs from whole by %g (> 1e-5)", label, d)
	}
}

// TestTiledForwardEquivalence is the property test: for randomized image
// sizes, tile sizes, and model configurations, a tiled forward with the
// model's halo must match the whole-image forward within 1e-5 per pixel.
// A failure here means the halo under-covers the receptive field (seam
// artifacts) or the stitcher mis-addresses a region.
func TestTiledForwardEquivalence(t *testing.T) {
	rng := tensor.NewRNG(42)
	edsrConfigs := []models.EDSRConfig{
		{NumBlocks: 1, NumFeats: 4, Scale: 2, ResScale: 0.1, Colors: 3},
		{NumBlocks: 2, NumFeats: 6, Scale: 3, ResScale: 0.1, Colors: 3},
		{NumBlocks: 3, NumFeats: 4, Scale: 4, ResScale: 1, Colors: 3},
	}
	var cases []Model
	for _, cfg := range edsrConfigs {
		cases = append(cases, &EDSRModel{M: models.NewEDSR(cfg, rng)})
	}
	cases = append(cases,
		&SRCNNModel{M: models.NewSRCNN(3, rng), scale: 2, c: 3},
		&BicubicModel{S: 3, C: 3},
	)
	tiles := []int{2, 4, 8, 16, 64}
	for mi, m := range cases {
		for trial := 0; trial < 4; trial++ {
			h := 3 + int(rng.Uint64()%28)
			w := 3 + int(rng.Uint64()%28)
			x := randImage(rng, m.Colors(), h, w)
			tile := tiles[rng.Intn(len(tiles))]
			label := fmt.Sprintf("model %d (scale %d, halo %d) image %dx%d tile %d",
				mi, m.Scale(), m.Halo(), h, w, tile)
			checkTiledEquivalence(t, m, x, tile, label)
		}
	}
}

// TestTiledForwardDegenerateCases pins the edge geometries: an image
// smaller than one tile (single-tile path), exact-multiple sizes (no
// partial tiles), tile exactly the image size, and 1-pixel slivers from
// an off-by-one image edge.
func TestTiledForwardDegenerateCases(t *testing.T) {
	rng := tensor.NewRNG(7)
	m := &EDSRModel{M: models.NewEDSR(models.EDSRConfig{
		NumBlocks: 2, NumFeats: 4, Scale: 2, ResScale: 0.1, Colors: 3}, rng)}
	cases := []struct {
		h, w, tile int
		name       string
	}{
		{5, 7, 16, "image smaller than one tile"},
		{16, 16, 8, "exact multiple of the tile size"},
		{12, 12, 12, "tile exactly the image"},
		{17, 9, 8, "1-pixel sliver tiles at the edges"},
		{8, 24, 8, "single row of tiles"},
		{3, 3, 1, "1x1 cores, halo larger than the image"},
	}
	for _, c := range cases {
		x := randImage(rng, 3, c.h, c.w)
		checkTiledEquivalence(t, m, x, c.tile, c.name)
	}
}

// TestSplitTilesCoverage checks the tiling geometry invariants directly:
// cores partition the image exactly, and every padded region stays in
// bounds while covering its core by the halo (clamped at image borders).
func TestSplitTilesCoverage(t *testing.T) {
	rng := tensor.NewRNG(3)
	for trial := 0; trial < 50; trial++ {
		h := 1 + int(rng.Uint64()%40)
		w := 1 + int(rng.Uint64()%40)
		tile := 1 + int(rng.Uint64()%12)
		halo := int(rng.Uint64() % 8)
		covered := make([]int, h*w)
		for _, tl := range SplitTiles(h, w, tile, halo) {
			if tl.PX0 > tl.CX0 || tl.PY0 > tl.CY0 || tl.PX1 < tl.CX1 || tl.PY1 < tl.CY1 {
				t.Fatalf("padded %+v does not contain core", tl)
			}
			if tl.PX0 < 0 || tl.PY0 < 0 || tl.PX1 > w || tl.PY1 > h {
				t.Fatalf("padded %+v out of %dx%d bounds", tl, h, w)
			}
			wantPX0 := max(0, tl.CX0-halo)
			wantPY0 := max(0, tl.CY0-halo)
			wantPX1 := min(w, tl.CX1+halo)
			wantPY1 := min(h, tl.CY1+halo)
			if tl.PX0 != wantPX0 || tl.PY0 != wantPY0 || tl.PX1 != wantPX1 || tl.PY1 != wantPY1 {
				t.Fatalf("padded %+v does not extend the core by halo %d (clamped)", tl, halo)
			}
			for y := tl.CY0; y < tl.CY1; y++ {
				for x := tl.CX0; x < tl.CX1; x++ {
					covered[y*w+x]++
				}
			}
		}
		for i, n := range covered {
			if n != 1 {
				t.Fatalf("%dx%d tile %d halo %d: pixel %d covered %d times", h, w, tile, halo, i, n)
			}
		}
	}
}
