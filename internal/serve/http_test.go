package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/imageio"
	"repro/internal/models"
	"repro/internal/serve/cache"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// encodePNG renders a tensor to PNG bytes.
func encodePNG(t *testing.T, x *tensor.Tensor) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := imageio.WritePNG(&buf, x); err != nil {
		t.Fatalf("WritePNG: %v", err)
	}
	return buf.Bytes()
}

// newTestServer builds an engine+server around one EDSRTiny master.
func newTestServer(t *testing.T, tile int, batch BatcherConfig) (*Server, *models.EDSR) {
	t.Helper()
	master := models.NewEDSR(models.EDSRTiny(), tensor.NewRNG(11))
	e := NewEngine(EngineConfig{Batch: batch, TileSize: tile}, nil, nil)
	if err := e.Register("edsr", EDSRFactory(master)); err != nil {
		t.Fatalf("Register: %v", err)
	}
	t.Cleanup(e.Shutdown)
	return NewServer(e, nil, nil, 0), master
}

// postPNG POSTs body to the server and returns the recorded response.
func postPNG(s *Server, url string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	return rr
}

// TestServerGoldenBitIdentical is the end-to-end golden: a PNG posted to
// /v1/upscale must come back bit-identical to encoding the model's
// direct forward of the same decoded image. The image fits in one tile,
// so this pins the whole-image batcher path with zero numeric drift
// through HTTP, decode, batching, and re-encode.
func TestServerGoldenBitIdentical(t *testing.T) {
	s, master := newTestServer(t, 64, BatcherConfig{MaxBatch: 4, MaxDelay: time.Millisecond})
	rng := tensor.NewRNG(23)
	pngBytes := encodePNG(t, randImage(rng, 3, 14, 17))

	// Golden path: decode the same PNG (uint8-quantized, like the server
	// sees it) and run the master model directly.
	x, err := imageio.ReadPNG(bytes.NewReader(pngBytes))
	if err != nil {
		t.Fatalf("ReadPNG: %v", err)
	}
	want := encodePNG(t, master.Forward(x).Clone())

	rr := postPNG(s, "/v1/upscale?model=edsr", pngBytes)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); ct != "image/png" {
		t.Fatalf("Content-Type %q, want image/png", ct)
	}
	if !bytes.Equal(rr.Body.Bytes(), want) {
		t.Fatalf("HTTP response PNG (%d bytes) differs from direct forward PNG (%d bytes)",
			rr.Body.Len(), len(want))
	}

	// The default model (no ?model=) is the first registered one.
	rr = postPNG(s, "/v1/upscale", pngBytes)
	if rr.Code != http.StatusOK || !bytes.Equal(rr.Body.Bytes(), want) {
		t.Fatalf("default-model response differs (status %d)", rr.Code)
	}
}

// TestServerGoldenTiled runs the same golden through the tiling path: an
// image larger than the tile size is split, batched per tile, stitched,
// and must still encode to the same PNG as the direct whole-image
// forward.
func TestServerGoldenTiled(t *testing.T) {
	s, master := newTestServer(t, 8, BatcherConfig{MaxBatch: 4, MaxDelay: time.Millisecond})
	rng := tensor.NewRNG(29)
	pngBytes := encodePNG(t, randImage(rng, 3, 21, 26))

	x, err := imageio.ReadPNG(bytes.NewReader(pngBytes))
	if err != nil {
		t.Fatalf("ReadPNG: %v", err)
	}
	want := encodePNG(t, master.Forward(x).Clone())

	rr := postPNG(s, "/v1/upscale?model=edsr", pngBytes)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	if !bytes.Equal(rr.Body.Bytes(), want) {
		t.Fatalf("tiled HTTP response differs from whole-image forward PNG")
	}
}

// TestServerErrorMapping pins the HTTP status for each failure class.
func TestServerErrorMapping(t *testing.T) {
	s, _ := newTestServer(t, 64, BatcherConfig{MaxBatch: 1})
	rng := tensor.NewRNG(31)
	goodPNG := encodePNG(t, randImage(rng, 3, 8, 8))

	t.Run("method not allowed", func(t *testing.T) {
		rr := httptest.NewRecorder()
		s.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/upscale", nil))
		if rr.Code != http.StatusMethodNotAllowed {
			t.Fatalf("status %d, want 405", rr.Code)
		}
	})
	t.Run("garbage body", func(t *testing.T) {
		if rr := postPNG(s, "/v1/upscale", []byte("not a png")); rr.Code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", rr.Code)
		}
	})
	t.Run("truncated png", func(t *testing.T) {
		if rr := postPNG(s, "/v1/upscale", goodPNG[:len(goodPNG)/2]); rr.Code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", rr.Code)
		}
	})
	t.Run("unknown model", func(t *testing.T) {
		if rr := postPNG(s, "/v1/upscale?model=nope", goodPNG); rr.Code != http.StatusNotFound {
			t.Fatalf("status %d, want 404", rr.Code)
		}
	})
	t.Run("oversized body", func(t *testing.T) {
		small := NewServer(s.e, nil, nil, 64) // 64-byte cap
		if rr := postPNG(small, "/v1/upscale", goodPNG); rr.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413", rr.Code)
		}
	})
}

// TestServerModelsAndHealth checks the introspection endpoints.
func TestServerModelsAndHealth(t *testing.T) {
	s, _ := newTestServer(t, 64, BatcherConfig{})

	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/v1/models", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/v1/models status %d", rr.Code)
	}
	var infos []ModelInfo
	if err := json.NewDecoder(rr.Body).Decode(&infos); err != nil {
		t.Fatalf("decoding /v1/models: %v", err)
	}
	if len(infos) != 1 || infos[0].Name != "edsr" || infos[0].Scale != 2 || infos[0].Halo < 1 {
		t.Fatalf("unexpected model listing: %+v", infos)
	}

	rr = httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/healthz status %d, want 200", rr.Code)
	}
}

// TestServerBackpressure checks that a saturated queue surfaces as 429
// with a Retry-After header rather than unbounded queueing.
func TestServerBackpressure(t *testing.T) {
	e := NewEngine(EngineConfig{Batch: BatcherConfig{
		MaxBatch: 1, Queue: 1, Workers: 1,
	}, TileSize: 64}, nil, nil)
	if err := e.Register("slow", fakeFactory(2, 20*time.Millisecond, &batchLog{})); err != nil {
		t.Fatalf("Register: %v", err)
	}
	t.Cleanup(e.Shutdown)
	s := NewServer(e, nil, nil, 0)
	rng := tensor.NewRNG(37)
	pngBytes := encodePNG(t, randImage(rng, 3, 6, 6))

	const N = 12
	var ok, rejected atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rr := postPNG(s, "/v1/upscale", pngBytes)
			switch rr.Code {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusTooManyRequests:
				if rr.Header().Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				rejected.Add(1)
			default:
				t.Errorf("unexpected status %d: %s", rr.Code, rr.Body.String())
			}
		}()
	}
	wg.Wait()
	if ok.Load() == 0 || rejected.Load() == 0 {
		t.Fatalf("want both successes and rejections, got ok %d rejected %d", ok.Load(), rejected.Load())
	}
}

// TestServerDrain checks graceful-drain semantics: after StartDrain the
// health check flips to 503 so load balancers stop routing here, new
// upscales are rejected with 503, and requests already in flight still
// complete successfully.
func TestServerDrain(t *testing.T) {
	e := NewEngine(EngineConfig{Batch: BatcherConfig{
		MaxBatch: 1, Queue: 8, Workers: 1,
	}, TileSize: 64}, nil, nil)
	if err := e.Register("slow", fakeFactory(2, 30*time.Millisecond, &batchLog{})); err != nil {
		t.Fatalf("Register: %v", err)
	}
	t.Cleanup(e.Shutdown)
	s := NewServer(e, nil, nil, 0)
	rng := tensor.NewRNG(41)
	pngBytes := encodePNG(t, randImage(rng, 3, 6, 6))

	// Put one request in flight, then drain while it runs.
	inflight := make(chan *httptest.ResponseRecorder, 1)
	go func() { inflight <- postPNG(s, "/v1/upscale", pngBytes) }()
	time.Sleep(10 * time.Millisecond) // let it reach the model
	s.StartDrain()

	if rr := postPNG(s, "/v1/upscale", pngBytes); rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain upscale status %d, want 503", rr.Code)
	}
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz status %d, want 503", rr.Code)
	}
	if rr := <-inflight; rr.Code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", rr.Code)
	}
}

// TestServerMetricsEndpoint checks the serving counters reach the shared
// /metrics endpoint in Prometheus text format.
func TestServerMetricsEndpoint(t *testing.T) {
	reg := trace.NewMetrics()
	met := NewMetrics(reg)
	e := NewEngine(EngineConfig{Batch: BatcherConfig{MaxBatch: 2}, TileSize: 8}, met, nil)
	master := models.NewEDSR(models.EDSRTiny(), tensor.NewRNG(11))
	if err := e.Register("edsr", EDSRFactory(master)); err != nil {
		t.Fatalf("Register: %v", err)
	}
	t.Cleanup(e.Shutdown)
	s := NewServer(e, reg, met, 0)
	rng := tensor.NewRNG(43)

	// One small request and one tiled request.
	if rr := postPNG(s, "/v1/upscale", encodePNG(t, randImage(rng, 3, 6, 6))); rr.Code != http.StatusOK {
		t.Fatalf("small upscale: %d", rr.Code)
	}
	if rr := postPNG(s, "/v1/upscale", encodePNG(t, randImage(rng, 3, 20, 20))); rr.Code != http.StatusOK {
		t.Fatalf("tiled upscale: %d", rr.Code)
	}
	postPNG(s, "/v1/upscale", []byte("junk")) // one error outcome

	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rr.Code)
	}
	body, _ := io.ReadAll(rr.Body)
	text := string(body)
	for _, want := range []string{
		"sr_requests_total 3",
		"sr_responses_total 2",
		"sr_errors_total 1",
		"sr_batches_total",
		"sr_tiles_total",
		"sr_queue_seconds",
		"sr_request_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("metrics body:\n%s", text)
	}
}

// gateModel blocks every Forward until the test releases it: entered
// gets one tick when a forward begins, release lets it finish. It
// makes occupancy (worker busy, queue full) and singleflight parking
// fully deterministic in the contract test below.
type gateModel struct {
	scale   int
	entered chan struct{}
	release chan struct{}
	out     *tensor.Tensor
}

func (g *gateModel) Forward(x *tensor.Tensor) *tensor.Tensor {
	g.entered <- struct{}{}
	<-g.release
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	g.out = tensor.Ensure(g.out, n, c, h*g.scale, w*g.scale)
	return g.out
}
func (g *gateModel) Scale() int  { return g.scale }
func (g *gateModel) Halo() int   { return 1 }
func (g *gateModel) Colors() int { return 3 }

// TestServerStatusHeaderContract pins the full status/header contract
// the fleet router depends on: 405 with Allow, 413, 429 with
// Retry-After, draining 503s with Retry-After on both /v1/upscale and
// /healthz, 404 for unknown models, and 499 (client disconnect)
// accounting — plus the requirement that every endpoint routes through
// the same sr_requests_total outcome partition.
func TestServerStatusHeaderContract(t *testing.T) {
	reg := trace.NewMetrics()
	met := NewMetrics(reg)
	gate := &gateModel{scale: 2, entered: make(chan struct{}, 4), release: make(chan struct{})}
	e := NewEngine(EngineConfig{
		Batch:    BatcherConfig{MaxBatch: 1, Queue: 1, Workers: 1},
		TileSize: 64,
		Cache:    cache.Config{MaxBytes: 1 << 20},
	}, met, nil)
	if err := e.Register("gate", func() Model { return gate }); err != nil {
		t.Fatalf("Register: %v", err)
	}
	t.Cleanup(func() {
		close(gate.release) // unblock any stragglers so Shutdown returns
		e.Shutdown()
	})
	s := NewServer(e, reg, met, 0)
	rng := tensor.NewRNG(53)
	img := func() []byte { return encodePNG(t, randImage(rng, 3, 6, 6)) }

	do := func(method, url string, body []byte) *httptest.ResponseRecorder {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		rr := httptest.NewRecorder()
		s.ServeHTTP(rr, httptest.NewRequest(method, url, rd))
		return rr
	}
	expect := func(rr *httptest.ResponseRecorder, code int, headers map[string]string, label string) {
		t.Helper()
		if rr.Code != code {
			t.Fatalf("%s: status %d, want %d (%s)", label, rr.Code, code, rr.Body.String())
		}
		for h, want := range headers {
			if got := rr.Header().Get(h); got != want {
				t.Errorf("%s: header %s = %q, want %q", label, h, got, want)
			}
		}
	}

	// RFC 9110: 405 responses must name the allowed methods.
	expect(do(http.MethodGet, "/v1/upscale", nil), http.StatusMethodNotAllowed,
		map[string]string{"Allow": "POST"}, "GET upscale")
	expect(do(http.MethodPost, "/v1/models", img()), http.StatusMethodNotAllowed,
		map[string]string{"Allow": "GET"}, "POST models")

	// 404 for an unregistered model.
	expect(do(http.MethodPost, "/v1/upscale?model=nope", img()), http.StatusNotFound, nil, "unknown model")

	// 413 when the body exceeds the configured cap.
	tiny := NewServer(e, reg, met, 64)
	rr := httptest.NewRecorder()
	tiny.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/v1/upscale", bytes.NewReader(img())))
	expect(rr, http.StatusRequestEntityTooLarge, nil, "oversized body")

	// 429 + Retry-After when the queue is full: A occupies the worker,
	// B fills the 1-slot queue, C is shed.
	bodyA, bodyB := img(), img()
	respA := make(chan *httptest.ResponseRecorder, 1)
	go func() { respA <- do(http.MethodPost, "/v1/upscale", bodyA) }()
	<-gate.entered // A is inside Forward
	respB := make(chan *httptest.ResponseRecorder, 1)
	go func() { respB <- do(http.MethodPost, "/v1/upscale", bodyB) }()
	waitFor(t, func() bool { return e.mods["gate"].b.QueueLen() == 1 }, "request B queued")
	expect(do(http.MethodPost, "/v1/upscale", img()), http.StatusTooManyRequests,
		map[string]string{"Retry-After": "1"}, "shed request")
	gate.release <- struct{}{} // finish A
	<-gate.entered             // B inside Forward
	gate.release <- struct{}{} // finish B
	expect(<-respA, http.StatusOK, nil, "request A")
	expect(<-respB, http.StatusOK, nil, "request B")

	// 499 accounting: leader D blocks in Forward, waiter E parks on
	// D's singleflight and is cancelled; E must be counted as an error
	// outcome with nothing written.
	shared := img()
	respD := make(chan *httptest.ResponseRecorder, 1)
	go func() { respD <- do(http.MethodPost, "/v1/upscale", shared) }()
	<-gate.entered // D inside Forward
	errsBefore := met.Errors.Value()
	ctx, cancel := context.WithCancel(context.Background())
	respE := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rr := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/upscale", bytes.NewReader(shared)).WithContext(ctx)
		s.ServeHTTP(rr, req)
		respE <- rr
	}()
	waitFor(t, func() bool { return met.Cache.InflightWaits.Value() >= 1 }, "waiter E parked")
	cancel()
	rrE := <-respE
	if rrE.Body.Len() != 0 {
		t.Errorf("cancelled waiter wrote a body: %q", rrE.Body.String())
	}
	if got := met.Errors.Value(); got != errsBefore+1 {
		t.Errorf("499 accounting: errors %d, want %d", got, errsBefore+1)
	}
	gate.release <- struct{}{} // finish D
	expect(<-respD, http.StatusOK, nil, "leader D")

	// Accounted introspection endpoints.
	expect(do(http.MethodGet, "/v1/models", nil), http.StatusOK, nil, "models")
	rr = httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	expect(rr, http.StatusOK, nil, "healthz")

	// Draining: both the upscale path and the health check answer 503
	// with Retry-After so a load balancer backs off for the lame-duck
	// window instead of hot-retrying.
	s.StartDrain()
	expect(do(http.MethodPost, "/v1/upscale", img()), http.StatusServiceUnavailable,
		map[string]string{"Retry-After": "1"}, "draining upscale")
	rr = httptest.NewRecorder()
	s.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	expect(rr, http.StatusServiceUnavailable, map[string]string{"Retry-After": "1"}, "draining healthz")

	// Every request above must land in exactly one outcome bucket.
	total := met.Requests.Value()
	parts := met.Responses.Value() + met.Rejected.Value() + met.Errors.Value()
	if total == 0 || total != parts {
		t.Errorf("outcome partition: %d requests vs %d outcomes (responses %d, rejected %d, errors %d)",
			total, parts, met.Responses.Value(), met.Rejected.Value(), met.Errors.Value())
	}
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
