package serve

import (
	"time"

	"repro/internal/serve/cache"
	"repro/internal/trace"
)

// BatchBuckets histogram the coalesced batch sizes.
var BatchBuckets = []float64{1, 2, 4, 8, 16, 32}

// Metrics bundles the serving instruments, registered on a trace.Metrics
// registry and scraped from the same /metrics endpoint the trainer uses.
// Like trace.TrainMetrics, every method tolerates a nil receiver, so the
// engine and batcher need no enabled-checks on the hot path.
type Metrics struct {
	// Requests counts HTTP upscale requests received; Responses,
	// Rejected, and Errors partition their outcomes (2xx / 429+503 /
	// other).
	Requests  *trace.Counter
	Responses *trace.Counter
	Rejected  *trace.Counter
	Errors    *trace.Counter
	// Submits counts batcher submissions (a tiled request submits once
	// per tile); Batches counts coalesced forwards, and BatchSize
	// histograms how full they were.
	Submits   *trace.Counter
	Batches   *trace.Counter
	BatchSize *trace.Histogram
	// Tiles counts tile submissions from split requests.
	Tiles *trace.Counter
	// BatchCloseFull/Timeout/Shape/Drain partition sr_batches_total by
	// why the worker stopped collecting: capacity reached, MaxDelay
	// expired, a different-shaped follower arrived, or shutdown drain.
	// A healthy saturated server closes on full; a mostly-idle one on
	// timeout.
	BatchCloseFull    *trace.Counter
	BatchCloseTimeout *trace.Counter
	BatchCloseShape   *trace.Counter
	BatchCloseDrain   *trace.Counter
	// QueueDepth is the live pending-request queue length;
	// QueueSeconds histograms how long requests waited in it.
	QueueDepth   *trace.Gauge
	QueueSeconds *trace.Histogram
	// RequestSeconds histograms end-to-end upscale latency (decode and
	// encode excluded; queue, batching, and forward included).
	RequestSeconds *trace.Histogram
	// Cache bundles the sr_cache_* result-cache instruments.
	Cache *cache.Metrics
}

// NewMetrics registers the serving instruments on m (nil m → nil bundle,
// metrics off).
func NewMetrics(m *trace.Metrics) *Metrics {
	if m == nil {
		return nil
	}
	return &Metrics{
		Requests:          m.Counter("sr_requests_total", "HTTP upscale requests received."),
		Responses:         m.Counter("sr_responses_total", "Successful upscale responses."),
		Rejected:          m.Counter("sr_rejected_total", "Requests rejected by backpressure (429) or drain (503)."),
		Errors:            m.Counter("sr_errors_total", "Requests failed with a client or server error."),
		Submits:           m.Counter("sr_submits_total", "Batcher submissions (tiles submit individually)."),
		Batches:           m.Counter("sr_batches_total", "Coalesced micro-batch forwards."),
		BatchSize:         m.Histogram("sr_batch_size", "Images per coalesced forward.", BatchBuckets),
		Tiles:             m.Counter("sr_tiles_total", "Tiles produced by splitting large images."),
		BatchCloseFull:    m.Counter("sr_batch_close_full_total", "Batches closed by reaching MaxBatch."),
		BatchCloseTimeout: m.Counter("sr_batch_close_timeout_total", "Batches closed by the MaxDelay timer."),
		BatchCloseShape:   m.Counter("sr_batch_close_shape_total", "Batches closed by a different-shaped follower."),
		BatchCloseDrain:   m.Counter("sr_batch_close_drain_total", "Batches closed by shutdown drain."),
		QueueDepth:        m.Gauge("sr_queue_depth", "Pending requests in the batching queue."),
		QueueSeconds:      m.Histogram("sr_queue_seconds", "Time requests spent queued before a worker picked them up.", trace.DurationBuckets),
		RequestSeconds:    m.Histogram("sr_request_seconds", "End-to-end upscale latency (queue + batching + forward).", trace.DurationBuckets),
		Cache:             cache.NewMetrics(m),
	}
}

// cacheMetrics unwraps the cache bundle, tolerating a nil receiver.
func (m *Metrics) cacheMetrics() *cache.Metrics {
	if m == nil {
		return nil
	}
	return m.Cache
}

// submitted records an accepted submission and the resulting queue depth.
func (m *Metrics) submitted(depth int) {
	if m == nil {
		return
	}
	m.Submits.Inc()
	m.QueueDepth.Set(float64(depth))
}

// tiled records a request split into n tiles.
func (m *Metrics) tiled(n int) {
	if m == nil {
		return
	}
	m.Tiles.Add(int64(n))
}

// httpRequest records one HTTP request arrival.
func (m *Metrics) httpRequest() {
	if m == nil {
		return
	}
	m.Requests.Inc()
}

// httpOutcome records the response status: 2xx → Responses, 429/503 →
// Rejected, anything else → Errors.
func (m *Metrics) httpOutcome(code int) {
	if m == nil {
		return
	}
	switch {
	case code >= 200 && code < 300:
		m.Responses.Inc()
	case code == 429 || code == 503:
		m.Rejected.Inc()
	default:
		m.Errors.Inc()
	}
}

// batched records one coalesced forward of n images and the queue depth
// after it was pulled.
func (m *Metrics) batched(n, depth int) {
	if m == nil {
		return
	}
	m.Batches.Inc()
	m.BatchSize.Observe(float64(n))
	m.QueueDepth.Set(float64(depth))
}

// closeReason says why a worker stopped collecting into a batch.
type closeReason int

const (
	closeFull closeReason = iota
	closeTimeout
	closeShape
	closeDrain
)

// batchClosed records why a batch stopped collecting.
func (m *Metrics) batchClosed(r closeReason) {
	if m == nil {
		return
	}
	switch r {
	case closeFull:
		m.BatchCloseFull.Inc()
	case closeTimeout:
		m.BatchCloseTimeout.Inc()
	case closeShape:
		m.BatchCloseShape.Inc()
	case closeDrain:
		m.BatchCloseDrain.Inc()
	}
}

// queueWait records one request's time in the queue.
func (m *Metrics) queueWait(sec float64) {
	if m == nil {
		return
	}
	m.QueueSeconds.Observe(sec)
}

// requestExemplar links a retained trace ID to the latency bucket its
// request landed in, so a scrape can jump from a slow bucket straight
// to /debug/traces.
func (m *Metrics) requestExemplar(sec float64, traceID string) {
	if m == nil {
		return
	}
	m.RequestSeconds.Exemplar(sec, traceID)
}

// observeRequest records one engine request's end-to-end latency.
func (m *Metrics) observeRequest(d time.Duration) {
	if m == nil {
		return
	}
	m.RequestSeconds.Observe(d.Seconds())
}
