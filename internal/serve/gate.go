package serve

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/tensor"
)

// Golden-set fidelity gate. A compiled variant is only admitted into the
// engine if its outputs stay within GateMaxDelta dB of the float32
// reference on a fixed set of seeded images. The gate measures quality
// loss, not raw output distance: each forward is scored against a
// bicubic upscale of the input (a deterministic stand-in for ground
// truth), and the delta between the reference's PSNR and the variant's
// PSNR is what must stay under the budget. This way an int8 path that
// perturbs pixels the model was going to get wrong anyway is not
// penalized beyond its actual quality cost.

// GateMaxDelta is the admission budget: a variant whose golden-set PSNR
// trails the float32 reference by this much or more hard-fails at load.
const GateMaxDelta = 0.05

// GoldenImages is the number of seeded golden-set images (kept small —
// the gate runs at every server start).
const GoldenImages = 4

// goldenEdge is the LR edge of each golden image.
const goldenEdge = 24

// GateResult reports one variant's golden-set comparison.
type GateResult struct {
	Model   string  // registered model name
	Variant string  // candidate variant
	Images  int     // golden images scored
	RefPSNR float64 // float32 reference vs bicubic stand-in, mean dB
	VarPSNR float64 // candidate vs bicubic stand-in, mean dB
	// DeltaDB = RefPSNR − VarPSNR: the quality the variant gives up.
	// Negative means the variant scored higher (bit-exact paths give 0).
	DeltaDB float64
	// DirectPSNR is candidate output vs reference output, mean dB (+Inf
	// when bit-exact). Reported for the record; the gate keys on DeltaDB.
	DirectPSNR float64
	Pass       bool
}

// Transcript renders the result as the one-line-per-image-set summary
// printed at startup and recorded in EXPERIMENTS.md.
func (g GateResult) Transcript() string {
	verdict := "PASS"
	if !g.Pass {
		verdict = "FAIL"
	}
	direct := "+Inf (bit-exact)"
	if !math.IsInf(g.DirectPSNR, 1) {
		direct = fmt.Sprintf("%.2f dB", g.DirectPSNR)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "gate %s variant=%s: %s\n", g.Model, g.Variant, verdict)
	fmt.Fprintf(&b, "  golden set: %d seeded %dx%d images\n", g.Images, goldenEdge, goldenEdge)
	fmt.Fprintf(&b, "  psnr vs stand-in: float32 %.4f dB, %s %.4f dB (delta %.4f dB, budget %.2f dB)\n",
		g.RefPSNR, g.Variant, g.VarPSNR, g.DeltaDB, GateMaxDelta)
	fmt.Fprintf(&b, "  psnr vs float32 output: %s", direct)
	return b.String()
}

// goldenImage synthesizes golden image i: smooth seeded low-frequency
// content plus mild seeded noise, clamped to [0,1]. Smooth content keeps
// the stand-in PSNRs in a realistic SR range; the noise keeps the set
// from being trivially flat.
func goldenImage(i, colors int) *tensor.Tensor {
	x := tensor.New(1, colors, goldenEdge, goldenEdge)
	rng := tensor.NewRNG(uint64(1000 + i))
	d := x.Data()
	for c := 0; c < colors; c++ {
		fx := 1 + rng.Float64()*3
		fy := 1 + rng.Float64()*3
		ph := rng.Float64() * 2 * math.Pi
		for y := 0; y < goldenEdge; y++ {
			for xx := 0; xx < goldenEdge; xx++ {
				v := 0.5 + 0.35*math.Sin(2*math.Pi*(fx*float64(xx)+fy*float64(y))/goldenEdge+ph)
				v += 0.08 * (rng.Float64() - 0.5)
				d[c*goldenEdge*goldenEdge+y*goldenEdge+xx] = float32(math.Min(1, math.Max(0, v)))
			}
		}
	}
	return x
}

// RunGate scores candidate against reference on the golden set and
// returns the admission verdict. Both factories must serve the same
// weights; reference is the float32 training-graph path.
func RunGate(model, variant string, candidate, reference Factory) GateResult {
	ref := reference()
	cand := candidate()
	scale, colors := ref.Scale(), ref.Colors()

	g := GateResult{Model: model, Variant: variant, Images: GoldenImages}
	var refSum, varSum, directSum float64
	directInf := true
	for i := 0; i < GoldenImages; i++ {
		x := goldenImage(i, colors)
		// BicubicResize allocates a fresh result, so the stand-in survives
		// the forwards below.
		standIn := models.BicubicUpscale(x, scale)

		yr := ref.Forward(x)
		refSum += metrics.PSNR(yr, standIn, 1)
		// Models reuse their output buffer: copy the reference result
		// before the candidate forward (they may share kernels).
		yrCopy := tensor.New(yr.Shape()...)
		yrCopy.CopyFrom(yr)

		yv := cand.Forward(x)
		varSum += metrics.PSNR(yv, standIn, 1)
		direct := metrics.PSNR(yv, yrCopy, 1)
		if math.IsInf(direct, 1) {
			continue
		}
		directInf = false
		directSum += direct
	}
	g.RefPSNR = refSum / GoldenImages
	g.VarPSNR = varSum / GoldenImages
	g.DeltaDB = g.RefPSNR - g.VarPSNR
	if directInf {
		g.DirectPSNR = math.Inf(1)
	} else {
		g.DirectPSNR = directSum / GoldenImages
	}
	g.Pass = g.DeltaDB < GateMaxDelta
	return g
}
