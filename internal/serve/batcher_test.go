package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// batchLog records every batch size any replica ran, across workers.
type batchLog struct {
	mu    sync.Mutex
	sizes []int
}

func (l *batchLog) add(n int) {
	l.mu.Lock()
	l.sizes = append(l.sizes, n)
	l.mu.Unlock()
}

func (l *batchLog) seen() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]int(nil), l.sizes...)
}

// fakeModel is a deterministic test model: nearest-neighbor upscale of
// 2x+1, with an optional artificial forward delay. Like the real
// models it reuses its output buffer, so each worker needs its own
// replica — fakeFactory mirrors the production Factory contract.
type fakeModel struct {
	scale int
	delay time.Duration
	log   *batchLog
	out   *tensor.Tensor
}

// fakeFactory builds an independent replica per worker sharing one log.
func fakeFactory(scale int, delay time.Duration, log *batchLog) Factory {
	return func() Model { return &fakeModel{scale: scale, delay: delay, log: log} }
}

func (f *fakeModel) Forward(x *tensor.Tensor) *tensor.Tensor {
	f.log.add(x.Dim(0))
	if f.delay > 0 {
		time.Sleep(f.delay)
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	s := f.scale
	f.out = tensor.Ensure(f.out, n, c, h*s, w*s)
	xd, od := x.Data(), f.out.Data()
	for i := 0; i < n*c; i++ {
		src := xd[i*h*w : (i+1)*h*w]
		dst := od[i*h*s*w*s : (i+1)*h*s*w*s]
		for y := 0; y < h*s; y++ {
			for xx := 0; xx < w*s; xx++ {
				dst[y*w*s+xx] = 2*src[(y/s)*w+xx/s] + 1
			}
		}
	}
	return f.out
}

func (f *fakeModel) Scale() int  { return f.scale }
func (f *fakeModel) Halo() int   { return 0 }
func (f *fakeModel) Colors() int { return 3 }

// checkFakeOutput verifies a fakeModel result for input x.
func checkFakeOutput(t *testing.T, x, out *tensor.Tensor, scale int) {
	t.Helper()
	h, w := x.Dim(2), x.Dim(3)
	if out.Dim(2) != h*scale || out.Dim(3) != w*scale {
		t.Fatalf("output shape %v for input %v", out.Shape(), x.Shape())
	}
	xd, od := x.Data(), out.Data()
	for i := range xd {
		// Spot-check the top-left corner of each pixel's s×s block.
		y, xx := (i/w)%h, i%w
		c := i / (h * w)
		got := od[c*h*scale*w*scale+(y*scale)*w*scale+xx*scale]
		if got != 2*xd[i]+1 {
			t.Fatalf("element %d: got %g, want %g", i, got, 2*xd[i]+1)
		}
	}
}

// TestBatcherHammerDrainShutdown is the exactly-once contract under
// load: many goroutines hammer the batcher while it shuts down mid-
// flight. Every Submit must return exactly one outcome — a correct
// result, ErrOverloaded, or ErrDraining — and nothing may hang or be
// silently dropped. Run under -race by scripts/check.sh.
func TestBatcherHammerDrainShutdown(t *testing.T) {
	b := NewBatcher(fakeFactory(2, 200*time.Microsecond, &batchLog{}), BatcherConfig{
		MaxBatch: 4, MaxDelay: 300 * time.Microsecond, Queue: 8, Workers: 2,
	}, nil, nil)

	const N = 200
	var ok, overloaded, draining, other atomic.Int64
	var wg sync.WaitGroup
	rngMu := sync.Mutex{}
	rng := tensor.NewRNG(99)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rngMu.Lock()
			h := 2 + rng.Intn(3)
			x := tensor.New(1, 3, h, h)
			x.FillUniform(rng, 0, 1)
			rngMu.Unlock()
			out := tensor.New(1, 3, 2*h, 2*h)
			switch err := b.Submit(x, out); {
			case err == nil:
				checkFakeOutput(t, x, out, 2)
				ok.Add(1)
			case errors.Is(err, ErrOverloaded):
				overloaded.Add(1)
			case errors.Is(err, ErrDraining):
				draining.Add(1)
			default:
				other.Add(1)
				t.Errorf("unexpected error: %v", err)
			}
		}(i)
		if i == N/2 {
			// Shut down mid-hammer, concurrently with active Submits.
			wg.Add(1)
			go func() {
				defer wg.Done()
				b.Shutdown()
			}()
		}
	}
	wg.Wait()
	b.Shutdown() // idempotent
	total := ok.Load() + overloaded.Load() + draining.Load() + other.Load()
	if total != N {
		t.Fatalf("accounted for %d of %d requests (ok %d, 429 %d, drain %d, other %d)",
			total, N, ok.Load(), overloaded.Load(), draining.Load(), other.Load())
	}
	if other.Load() != 0 {
		t.Fatalf("%d requests got unexpected errors", other.Load())
	}
	if ok.Load() == 0 {
		t.Fatal("no request succeeded before shutdown")
	}
	t.Logf("ok %d, overloaded %d, draining %d", ok.Load(), overloaded.Load(), draining.Load())
}

// TestBatcherCoalesces checks that concurrent same-shaped requests
// actually share batches instead of running one by one.
func TestBatcherCoalesces(t *testing.T) {
	log := &batchLog{}
	b := NewBatcher(fakeFactory(2, 2*time.Millisecond, log), BatcherConfig{
		MaxBatch: 8, MaxDelay: 50 * time.Millisecond, Queue: 32, Workers: 1,
	}, nil, nil)
	defer b.Shutdown()

	const N = 16
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			x := tensor.New(1, 3, 4, 4)
			x.Fill(0.25)
			out := tensor.New(1, 3, 8, 8)
			if err := b.Submit(x, out); err != nil {
				t.Errorf("Submit: %v", err)
			}
		}()
	}
	wg.Wait()
	sizes := log.seen()
	total, maxB := 0, 0
	for _, s := range sizes {
		total += s
		maxB = max(maxB, s)
	}
	if total != N {
		t.Fatalf("forwards covered %d images, want %d (batches %v)", total, N, sizes)
	}
	if maxB < 2 {
		t.Fatalf("no coalescing happened: batch sizes %v", sizes)
	}
	t.Logf("batch sizes: %v", sizes)
}

// TestBatcherBackpressure checks the bounded queue rejects instead of
// queueing without limit, and that rejected submissions leave the
// batcher consistent.
func TestBatcherBackpressure(t *testing.T) {
	b := NewBatcher(fakeFactory(2, 20*time.Millisecond, &batchLog{}), BatcherConfig{
		MaxBatch: 1, Queue: 1, Workers: 1,
	}, nil, nil)
	defer b.Shutdown()

	const N = 12
	var wg sync.WaitGroup
	var ok, rejected atomic.Int64
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			x := tensor.New(1, 3, 4, 4)
			out := tensor.New(1, 3, 8, 8)
			switch err := b.Submit(x, out); {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrOverloaded):
				rejected.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if ok.Load()+rejected.Load() != N {
		t.Fatalf("ok %d + rejected %d != %d", ok.Load(), rejected.Load(), N)
	}
	if rejected.Load() == 0 {
		t.Fatalf("a 1-deep queue under %d concurrent requests rejected nothing", N)
	}
	t.Logf("ok %d, rejected %d", ok.Load(), rejected.Load())
}

// TestBatcherMixedShapes checks that shape-grouped batching still
// serves interleaved traffic of different image sizes correctly.
func TestBatcherMixedShapes(t *testing.T) {
	b := NewBatcher(fakeFactory(2, time.Millisecond, &batchLog{}), BatcherConfig{
		MaxBatch: 4, MaxDelay: 5 * time.Millisecond, Queue: 64, Workers: 2,
	}, nil, nil)
	defer b.Shutdown()

	shapes := [][2]int{{3, 3}, {5, 4}, {2, 7}}
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, w := shapes[i%3][0], shapes[i%3][1]
			x := tensor.New(1, 3, h, w)
			x.Fill(float32(i) / 30)
			out := tensor.New(1, 3, 2*h, 2*w)
			if err := b.Submit(x, out); err != nil {
				t.Errorf("shape %dx%d: %v", h, w, err)
				return
			}
			checkFakeOutput(t, x, out, 2)
		}(i)
	}
	wg.Wait()
}

// TestBatchedForwardBitIdentical pins the numerics contract batching
// relies on: an EDSR forward of one sample is bit-identical whether it
// runs alone or coalesced into a batch with other images (the conv
// kernels process samples independently).
func TestBatchedForwardBitIdentical(t *testing.T) {
	rng := tensor.NewRNG(5)
	master := models.NewEDSR(models.EDSRTiny(), rng)
	a := randImage(rng, 3, 10, 10)
	companion := randImage(rng, 3, 10, 10)

	// Reference: the sample forwarded alone.
	solo := master.Forward(a).Clone()

	// The same sample inside a batch of 3, via the batcher.
	b := NewBatcher(EDSRFactory(master), BatcherConfig{
		MaxBatch: 3, MaxDelay: time.Second, Queue: 8, Workers: 1,
	}, nil, nil)
	defer b.Shutdown()
	outA := tensor.New(1, 3, 20, 20)
	var wg sync.WaitGroup
	wg.Add(3)
	errs := make([]error, 3)
	go func() { defer wg.Done(); errs[0] = b.Submit(a, outA) }()
	for i := 1; i < 3; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = b.Submit(companion, tensor.New(1, 3, 20, 20))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if d := maxAbsDiff(solo, outA); d != 0 {
		t.Fatalf("batched forward differs from solo forward by %g, want bit-identical", d)
	}
}

// TestBatchFullClosesBeforeDelay pins the batch-close fix: a batch that
// reaches MaxBatch from already-queued requests must close and run
// immediately, not sit out the MaxDelay hold. With a 2s MaxDelay any
// regression back to timer-bound closing blows the deadline by orders
// of magnitude.
func TestBatchFullClosesBeforeDelay(t *testing.T) {
	log := &batchLog{}
	met := NewMetrics(trace.NewMetrics())
	b := NewBatcher(fakeFactory(2, 0, log), BatcherConfig{
		MaxBatch: 4, MaxDelay: 2 * time.Second, Queue: 32, Workers: 1,
	}, met, nil)
	defer b.Shutdown()

	const N = 8 // two full batches
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			x := tensor.New(1, 3, 4, 4)
			out := tensor.New(1, 3, 8, 8)
			if err := b.Submit(x, out); err != nil {
				t.Errorf("Submit: %v", err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	// All N must complete far below MaxDelay. 500ms is ~4x a slow-CI
	// scheduling hiccup and 1/4 of the 2s delay a regression would incur.
	if elapsed >= 500*time.Millisecond {
		t.Fatalf("%d requests took %v with MaxDelay=2s: full batches are waiting on the timer", N, elapsed)
	}
	if got := met.BatchCloseFull.Value(); got == 0 {
		t.Fatalf("no batch closed on full (sizes %v, timeout closes %d)",
			log.seen(), met.BatchCloseTimeout.Value())
	}
	t.Logf("%d requests in %v, batches %v, closes full=%d timeout=%d",
		N, elapsed, log.seen(), met.BatchCloseFull.Value(), met.BatchCloseTimeout.Value())
}

// TestSoloRequestBoundedByMaxDelay pins the other side of the timing
// contract: a lone request under MaxBatch>1 waits at most ~MaxDelay for
// followers that never come, then runs. The timer must fire once per
// batch, not reset per poll.
func TestSoloRequestBoundedByMaxDelay(t *testing.T) {
	met := NewMetrics(trace.NewMetrics())
	const delay = 30 * time.Millisecond
	b := NewBatcher(fakeFactory(2, 0, &batchLog{}), BatcherConfig{
		MaxBatch: 8, MaxDelay: delay, Queue: 32, Workers: 1,
	}, met, nil)
	defer b.Shutdown()

	x := tensor.New(1, 3, 4, 4)
	out := tensor.New(1, 3, 8, 8)
	start := time.Now()
	if err := b.Submit(x, out); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	elapsed := time.Since(start)
	if elapsed < delay {
		t.Fatalf("solo request returned in %v, before the %v hold expired", elapsed, delay)
	}
	if elapsed > delay+200*time.Millisecond {
		t.Fatalf("solo request took %v, want ~MaxDelay=%v plus scheduling slack", elapsed, delay)
	}
	if got := met.BatchCloseTimeout.Value(); got != 1 {
		t.Fatalf("timeout closes = %d, want 1", got)
	}
	t.Logf("solo request in %v (MaxDelay %v)", elapsed, delay)
}

// TestBatchCloseReasonCounters drives each close path and checks the
// sr_batch_close_* partition accounts for every batch.
func TestBatchCloseReasonCounters(t *testing.T) {
	met := NewMetrics(trace.NewMetrics())
	b := NewBatcher(fakeFactory(2, 0, &batchLog{}), BatcherConfig{
		MaxBatch: 2, MaxDelay: 5 * time.Millisecond, Queue: 32, Workers: 1,
	}, met, nil)

	submit := func(h, w int) error {
		x := tensor.New(1, 3, h, w)
		out := tensor.New(1, 3, 2*h, 2*w)
		return b.Submit(x, out)
	}

	// Solo request → timeout close.
	if err := submit(4, 4); err != nil {
		t.Fatalf("solo: %v", err)
	}
	// Shape change mid-collect → shape close for the first batch.
	var wg sync.WaitGroup
	for _, hw := range [][2]int{{4, 4}, {6, 6}} {
		wg.Add(1)
		go func(h, w int) {
			defer wg.Done()
			if err := submit(h, w); err != nil {
				t.Errorf("%dx%d: %v", h, w, err)
			}
		}(hw[0], hw[1])
	}
	wg.Wait()
	b.Shutdown()

	full := met.BatchCloseFull.Value()
	timeout := met.BatchCloseTimeout.Value()
	shape := met.BatchCloseShape.Value()
	drain := met.BatchCloseDrain.Value()
	batches := met.Batches.Value()
	if full+timeout+shape+drain != batches {
		t.Fatalf("close reasons %d+%d+%d+%d don't partition %d batches",
			full, timeout, shape, drain, batches)
	}
	if timeout == 0 {
		t.Fatalf("solo request produced no timeout close")
	}
	t.Logf("batches %d: full=%d timeout=%d shape=%d drain=%d", batches, full, timeout, shape, drain)
}
