package serve

import (
	"fmt"

	"repro/internal/models"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Serving variants. A variant names the arithmetic a registered model
// runs with: the training graph as-is, or one of the compiled inference
// paths (see internal/models/compile.go). The compiled variants are
// selected at load time (sr-serve -variant) and admitted only after the
// golden-set PSNR gate passes.
const (
	// VariantFloat32 serves the training graph unchanged — the reference
	// every other variant is gated against.
	VariantFloat32 = "float32"
	// VariantFused serves the compiled float32 graph: weights prepacked
	// into the GEMM panel layout once at load, conv+bias+ReLU fused into
	// a single kernel pass. Bit-exact with VariantFloat32.
	VariantFused = "fused"
	// VariantInt8 serves the compiled int8 graph: per-channel weight
	// scales computed at load, activations quantized on the fly.
	VariantInt8 = "int8"
)

// Variants lists the recognized variant names.
var Variants = []string{VariantFloat32, VariantFused, VariantInt8}

// ParseVariant validates a -variant flag value ("" → float32).
func ParseVariant(s string) (string, error) {
	switch s {
	case "", VariantFloat32:
		return VariantFloat32, nil
	case VariantFused, VariantInt8:
		return s, nil
	}
	return "", fmt.Errorf("serve: unknown variant %q (have %v)", s, Variants)
}

// variantPrecision maps a compiled variant name to its nn.Precision.
func variantPrecision(variant string) nn.Precision {
	if variant == VariantInt8 {
		return nn.PrecInt8
	}
	return nn.PrecFloat32
}

// CompiledEDSRModel adapts models.CompiledEDSR to the serving
// interface. Scale, Colors, and Halo match EDSRModel — the compiled
// graph computes the same function, so the tiler contract carries over.
type CompiledEDSRModel struct {
	M *models.CompiledEDSR
}

// Forward runs the compiled network.
func (e *CompiledEDSRModel) Forward(x *tensor.Tensor) *tensor.Tensor { return e.M.Forward(x) }

// Scale returns the configured upscale factor.
func (e *CompiledEDSRModel) Scale() int { return e.M.Config.Scale }

// Colors returns the configured channel count.
func (e *CompiledEDSRModel) Colors() int { return e.M.Config.Colors }

// Halo returns the receptive-field radius in LR pixels (see
// EDSRModel.Halo — the compiled graph has the same topology).
func (e *CompiledEDSRModel) Halo() int { return 2*e.M.Config.NumBlocks + 5 }

// CompiledEDSRFactory returns a Factory producing independent compiled
// replicas of master. Each replica runs the compile pass itself —
// Compile snapshots the weights into private packed panels, so replicas
// share nothing and batcher workers can forward concurrently.
func CompiledEDSRFactory(master *models.EDSR, variant string) Factory {
	opts := models.CompileOptions{Precision: variantPrecision(variant)}
	return func() Model { return &CompiledEDSRModel{M: master.Compile(opts)} }
}

// CompiledSRCNNModel adapts models.CompiledSRCNN: like SRCNNModel it
// performs the bicubic pre-upscale itself.
type CompiledSRCNNModel struct {
	M     *models.CompiledSRCNN
	scale int
	c     int
}

// Forward bicubic-upscales the LR batch and refines it with the
// compiled network.
func (s *CompiledSRCNNModel) Forward(x *tensor.Tensor) *tensor.Tensor {
	return s.M.Forward(models.BicubicUpscale(x, s.scale))
}

// Scale returns the upscale factor.
func (s *CompiledSRCNNModel) Scale() int { return s.scale }

// Colors returns the input channel count.
func (s *CompiledSRCNNModel) Colors() int { return s.c }

// Halo matches SRCNNModel.Halo (same receptive field).
func (s *CompiledSRCNNModel) Halo() int { return 2 + (6+s.scale-1)/s.scale }

// CompiledSRCNNFactory returns a Factory producing independent compiled
// SRCNN replicas at the given scale.
func CompiledSRCNNFactory(master *models.SRCNN, scale, colors int, variant string) Factory {
	opts := models.CompileOptions{Precision: variantPrecision(variant)}
	return func() Model {
		return &CompiledSRCNNModel{M: master.Compile(opts), scale: scale, c: colors}
	}
}

// EDSRVariantFactory returns the Factory serving master under the given
// variant.
func EDSRVariantFactory(master *models.EDSR, variant string) (Factory, error) {
	switch variant {
	case "", VariantFloat32:
		return EDSRFactory(master), nil
	case VariantFused, VariantInt8:
		return CompiledEDSRFactory(master, variant), nil
	}
	return nil, fmt.Errorf("serve: unknown variant %q (have %v)", variant, Variants)
}
