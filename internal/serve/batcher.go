package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/tensor"
	"repro/internal/trace"
	rtrace "repro/internal/trace/request"
)

// Submission errors. The HTTP layer maps ErrOverloaded to 429 and
// ErrDraining to 503; both are returned synchronously from Submit, so a
// rejected request is never half-enqueued.
var (
	ErrOverloaded = errors.New("serve: queue full")
	ErrDraining   = errors.New("serve: draining, not accepting requests")
	errShape      = errors.New("serve: result buffer shape mismatch")
)

// BatcherConfig sizes the dynamic micro-batching queue.
type BatcherConfig struct {
	// MaxBatch is the largest coalesced batch (default 8).
	MaxBatch int
	// MaxDelay is how long a worker holds an open batch waiting for
	// same-shaped followers — the Horovod cycle time of the serving path
	// (default 2ms). Zero disables waiting: batches only form from
	// requests already queued.
	MaxDelay time.Duration
	// Queue bounds the pending-request queue; a full queue rejects with
	// ErrOverloaded (default 64).
	Queue int
	// Workers is the number of model replicas running batches
	// concurrently (default 1).
	Workers int
}

// withDefaults fills unset fields.
func (c BatcherConfig) withDefaults() BatcherConfig {
	if c.MaxBatch < 1 {
		c.MaxBatch = 8
	}
	if c.MaxDelay < 0 {
		c.MaxDelay = 0
	}
	if c.MaxDelay == 0 && c.MaxBatch > 1 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.Queue < 1 {
		c.Queue = 64
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	return c
}

// request is one queued unit of work: a single LR image (or tile) and
// the caller-provided output buffer its SR result is copied into.
// Requests are pooled; errc is buffered so a worker's reply never
// blocks.
type request struct {
	x, out *tensor.Tensor
	enq    int64 // Recorder.Now() at enqueue, for the queue-wait span
	// act is the submitting request's trace collector (nil when
	// untraced); tEnq/tPulled are span-clock stamps bounding the
	// queue-wait and batch-wait spans runBatch emits into it.
	act           *rtrace.Active
	tEnq, tPulled int64
	errc          chan error
}

// Batcher coalesces concurrent single-image requests into batched
// forwards. The first request pulled by a worker opens a batch; the
// worker then waits up to MaxDelay for more same-shaped requests (shapes
// must match to share one NCHW batch tensor) before running the model
// once over all of them. Each worker owns a private model replica, so
// batches run concurrently without sharing layer buffers.
type Batcher struct {
	cfg   BatcherConfig
	queue chan *request
	pool  sync.Pool

	mu       sync.RWMutex // guards draining vs. queue sends
	draining bool
	wg       sync.WaitGroup

	scale, halo, colors int

	met *Metrics
	rec *trace.Recorder
}

// NewBatcher starts cfg.Workers workers, each with its own replica from
// f. met and rec may be nil (metrics and tracing off).
func NewBatcher(f Factory, cfg BatcherConfig, met *Metrics, rec *trace.Recorder) *Batcher {
	cfg = cfg.withDefaults()
	b := &Batcher{
		cfg:   cfg,
		queue: make(chan *request, cfg.Queue),
		pool:  sync.Pool{New: func() any { return &request{errc: make(chan error, 1)} }},
		met:   met,
		rec:   rec,
	}
	for i := 0; i < cfg.Workers; i++ {
		m := f()
		if i == 0 {
			b.scale, b.halo, b.colors = m.Scale(), m.Halo(), m.Colors()
		}
		w := &worker{
			b:     b,
			model: m,
			batch: make([]*request, 0, cfg.MaxBatch),
			timer: time.NewTimer(time.Hour),
		}
		if !w.timer.Stop() {
			<-w.timer.C
		}
		b.wg.Add(1)
		go w.run()
	}
	return b
}

// Scale returns the served model's upscale factor.
func (b *Batcher) Scale() int { return b.scale }

// Halo returns the served model's tiling halo in LR pixels.
func (b *Batcher) Halo() int { return b.halo }

// Colors returns the served model's input channel count.
func (b *Batcher) Colors() int { return b.colors }

// Submit enqueues one image (1, C, h, w) and blocks until a worker has
// written its SR result into out (1, C, h*scale, w*scale), which the
// caller allocates. Every call gets exactly one outcome: nil once out is
// filled, ErrOverloaded if the queue was full, ErrDraining after
// Shutdown began, or a shape error. x and out must not be touched until
// Submit returns.
func (b *Batcher) Submit(x, out *tensor.Tensor) error {
	return b.SubmitCtx(context.Background(), x, out)
}

// SubmitCtx is Submit carrying the request context: when ctx holds a
// request-trace collector, the worker records this submission's
// queue-wait, batch-wait, and forward spans into it. ctx does not
// cancel the submission — batched work is never abandoned part-way.
func (b *Batcher) SubmitCtx(ctx context.Context, x, out *tensor.Tensor) error {
	if x.Rank() != 4 || x.Dim(0) != 1 || x.Dim(1) != b.colors {
		return fmt.Errorf("serve: want a single (1,%d,h,w) image, got %v", b.colors, x.Shape())
	}
	req := b.pool.Get().(*request)
	req.x, req.out = x, out
	req.enq = b.rec.Now()
	req.act = rtrace.FromContext(ctx)
	req.tEnq = rtrace.Now()

	b.mu.RLock()
	if b.draining {
		b.mu.RUnlock()
		b.release(req)
		return ErrDraining
	}
	select {
	case b.queue <- req:
		b.mu.RUnlock()
	default:
		b.mu.RUnlock()
		b.release(req)
		return ErrOverloaded
	}
	b.met.submitted(len(b.queue))

	err := <-req.errc
	b.release(req)
	return err
}

// release returns a request to the pool with its payload cleared.
func (b *Batcher) release(req *request) {
	req.x, req.out, req.act = nil, nil, nil
	b.pool.Put(req)
}

// QueueLen reports the current queue depth (for tests and backpressure
// introspection).
func (b *Batcher) QueueLen() int { return len(b.queue) }

// Shutdown drains the batcher: new Submits fail with ErrDraining,
// already-queued requests are completed, and the call returns once every
// worker has exited. Idempotent.
func (b *Batcher) Shutdown() {
	b.mu.Lock()
	if b.draining {
		b.mu.Unlock()
		b.wg.Wait()
		return
	}
	b.draining = true
	close(b.queue)
	b.mu.Unlock()
	b.wg.Wait()
}

// worker pulls requests, coalesces them into batches, and runs its model
// replica. The steady-state batch path (runBatch) is allocation-free
// once buffer shapes have stabilized — enforced by
// TestRunBatchNoAllocs.
type worker struct {
	b     *Batcher
	model Model
	in    *tensor.Tensor // reused NCHW batch input
	batch []*request     // reused batch slice, cap MaxBatch
	timer *time.Timer
}

// run is the worker loop. A request of a different shape than the open
// batch closes the batch and seeds the next one (pending), so
// mixed-shape traffic degrades to smaller batches instead of failing.
func (w *worker) run() {
	defer w.b.wg.Done()
	var pending *request
	for {
		first := pending
		pending = nil
		if first == nil {
			r, ok := <-w.b.queue
			if !ok {
				return
			}
			r.pulled()
			first = r
		}
		pending = w.collect(first)
		w.runBatch(w.batch)
	}
}

// collect fills w.batch starting from first and returns the follower
// that must seed the next batch (nil normally). It runs in two phases:
// a non-blocking drain that absorbs everything already queued, then —
// only if the batch still has room — a single MaxDelay timer wait for
// followers. A batch that reaches MaxBatch during the drain never arms
// the timer at all, so full batches close in queue-pull time rather
// than timer-resolution time (pinned by TestBatchFullClosesBeforeDelay);
// the timer fires at most once per batch, bounding a lone request's
// extra latency by MaxDelay exactly.
func (w *worker) collect(first *request) *request {
	w.batch = append(w.batch[:0], first)
	max := w.b.cfg.MaxBatch
	if max <= 1 {
		w.b.met.batchClosed(closeFull)
		return nil
	}
	for len(w.batch) < max {
		select {
		case r, ok := <-w.b.queue:
			if !ok {
				w.b.met.batchClosed(closeDrain)
				return nil
			}
			r.pulled()
			if !r.x.SameShape(first.x) {
				w.b.met.batchClosed(closeShape)
				return r
			}
			w.batch = append(w.batch, r)
		default:
			// Queue empty right now: hold the batch open for followers.
			w.timer.Reset(w.b.cfg.MaxDelay)
			for len(w.batch) < max {
				select {
				case r, ok := <-w.b.queue:
					if !ok {
						w.stopTimer()
						w.b.met.batchClosed(closeDrain)
						return nil
					}
					r.pulled()
					if !r.x.SameShape(first.x) {
						w.stopTimer()
						w.b.met.batchClosed(closeShape)
						return r
					}
					w.batch = append(w.batch, r)
				case <-w.timer.C:
					w.b.met.batchClosed(closeTimeout)
					return nil
				}
			}
			w.stopTimer()
			w.b.met.batchClosed(closeFull)
			return nil
		}
	}
	w.b.met.batchClosed(closeFull)
	return nil
}

// pulled stamps the moment a worker took the request off the queue,
// bounding its queue-wait span (and starting batch-wait).
func (r *request) pulled() {
	if r.act != nil {
		r.tPulled = rtrace.Now()
	}
}

// stopTimer cancels the hold timer, draining its channel if it fired
// between the last receive and the stop.
func (w *worker) stopTimer() {
	if !w.timer.Stop() {
		<-w.timer.C
	}
}

// runBatch assembles the NCHW batch, runs one forward, and scatters the
// per-sample results into each request's output buffer. Samples are
// processed independently by the batch-parallel kernels, so a sample's
// result is bit-identical no matter which batch it rode in (pinned by
// TestBatchedForwardBitIdentical).
func (w *worker) runBatch(reqs []*request) {
	n := len(reqs)
	first := reqs[0].x
	c, h, wd := first.Dim(1), first.Dim(2), first.Dim(3)
	plane := c * h * wd
	w.in = tensor.Ensure(w.in, n, c, h, wd)
	id := w.in.Data()
	now := w.b.rec.Now()
	for i, r := range reqs {
		copy(id[i*plane:(i+1)*plane], r.x.Data())
		w.b.rec.Emit(trace.CatServeQueue, trace.TrackMain, r.enq, r.x.Bytes())
		w.b.met.queueWait(float64(now-r.enq) / 1e9)
	}
	start := w.b.rec.Now()
	fwdStart := rtrace.Now()
	y := w.model.Forward(w.in)
	fwdEnd := rtrace.Now()
	outPlane := y.Len() / n
	yd := y.Data()
	for i, r := range reqs {
		if a := r.act; a != nil {
			// The request's life through the batcher, in its own trace:
			// queued → held in an open batch → the coalesced forward.
			root := a.Root()
			a.Emit(rtrace.StageServeQueue, rtrace.NewSpanID(), root, r.tEnq, r.tPulled, r.x.Bytes(), 0, -1, 0)
			a.Emit(rtrace.StageServeBatchWait, rtrace.NewSpanID(), root, r.tPulled, fwdStart, 0, 0, -1, 0)
			a.Emit(rtrace.StageServeForward, rtrace.NewSpanID(), root, fwdStart, fwdEnd, r.x.Bytes(), 0, -1, int32(n))
		}
		if r.out == nil || r.out.Len() != outPlane {
			r.errc <- errShape
			continue
		}
		copy(r.out.Data(), yd[i*outPlane:(i+1)*outPlane])
		r.errc <- nil
	}
	w.b.rec.Emit(trace.CatServeBatch, trace.TrackMain, start, w.in.Bytes())
	w.b.met.batched(n, len(w.b.queue))
}
