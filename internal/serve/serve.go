// Package serve is the inference half of the system: a dynamic
// micro-batching engine and HTTP front end that turn the training
// stack's models into a super-resolution service.
//
// The pieces compose bottom-up:
//
//   - Model adapts the zoo networks (EDSR, SRCNN, bicubic) to a uniform
//     inference interface that also reports the upscale factor and the
//     receptive-field halo the tiler needs.
//   - SplitTiles/TiledForward bound memory: an arbitrarily large image
//     is cut into overlapping halo tiles, each forwarded independently,
//     and the seam-free cores are stitched back together. With a halo at
//     least the model's receptive-field radius the stitched result
//     equals the whole-image forward (property-tested in tile_test.go).
//   - Batcher coalesces concurrent requests into batches,
//     Horovod-cycle style: the first request opens a batch, and the
//     worker waits up to MaxDelay for same-shaped followers before
//     running one batched forward. The convolution kernels parallelize
//     over the batch dimension, so a coalesced batch uses the cores a
//     single request would leave idle.
//   - Engine ties a model Registry to per-model batchers, routes large
//     images through the tiler (tiles re-enter the batcher, so tiles
//     from different requests share batches), and feeds the PR 4
//     observability stack (serve/* spans, Prometheus instruments).
//   - Server is the HTTP layer: POST a PNG, get the upscaled PNG back,
//     with backpressure (bounded queue → 429) and graceful drain.
package serve

import (
	"fmt"

	"repro/internal/models"
	"repro/internal/tensor"
)

// Model is a super-resolution network ready for inference. Forward maps
// an LR batch (N, C, h, w) to an SR batch (N, C, h*Scale, w*Scale); like
// the nn layers, the returned tensor is owned by the model and reused by
// the next call, so callers copy out what they keep. A Model is not safe
// for concurrent Forwards — the batcher gives each worker its own
// replica (see Factory).
type Model interface {
	Forward(x *tensor.Tensor) *tensor.Tensor
	// Scale is the integer upscale factor.
	Scale() int
	// Halo is the LR-pixel context each tile side needs so that a tiled
	// forward is seam-free: at least the model's receptive-field radius
	// at LR resolution (plus the resampling support for models that
	// pre-upscale).
	Halo() int
	// Colors is the expected input channel count.
	Colors() int
}

// Factory builds one independent Model replica. The batcher calls it
// once per worker; replicas must produce bit-identical outputs (same
// weights), which the constructors below guarantee by copying parameters
// from a single master.
type Factory func() Model

// EDSRModel adapts models.EDSR to the serving interface.
type EDSRModel struct {
	M *models.EDSR
}

// Forward runs the network.
func (e *EDSRModel) Forward(x *tensor.Tensor) *tensor.Tensor { return e.M.Forward(x) }

// Scale returns the configured upscale factor.
func (e *EDSRModel) Scale() int { return e.M.Config.Scale }

// Colors returns the configured channel count.
func (e *EDSRModel) Colors() int { return e.M.Config.Colors }

// Halo returns the receptive-field radius in LR pixels. Every EDSR conv
// is 3×3 (radius 1): head + 2 per residual block + body-end + the
// upsampler convs. The tail convs at ≥LR resolution contribute at most 1
// LR pixel each; 2*B+5 covers every supported scale with a pixel to
// spare.
func (e *EDSRModel) Halo() int { return 2*e.M.Config.NumBlocks + 5 }

// NewEDSRModel wraps master directly (no copy): use when the caller owns
// the model and serves with a single worker.
func NewEDSRModel(m *models.EDSR) *EDSRModel { return &EDSRModel{M: m} }

// EDSRFactory returns a Factory producing independent replicas of
// master: same architecture, parameters copied, private scratch and
// activation buffers.
func EDSRFactory(master *models.EDSR) Factory {
	cfg := master.Config
	src := master.Params()
	return func() Model {
		m := models.NewEDSR(cfg, tensor.NewRNG(1))
		dst := m.Params()
		for i, p := range dst {
			p.Value.CopyFrom(src[i].Value)
		}
		return &EDSRModel{M: m}
	}
}

// SRCNNModel adapts models.SRCNN: the network refines a bicubic
// upscale, so Forward performs the pre-upsampling itself.
type SRCNNModel struct {
	M     *models.SRCNN
	scale int
	c     int
}

// Forward bicubic-upscales the LR batch and refines it with the network.
func (s *SRCNNModel) Forward(x *tensor.Tensor) *tensor.Tensor {
	return s.M.Forward(models.BicubicUpscale(x, s.scale))
}

// Scale returns the upscale factor.
func (s *SRCNNModel) Scale() int { return s.scale }

// Colors returns the input channel count.
func (s *SRCNNModel) Colors() int { return s.c }

// Halo returns the LR context per tile side: the 9-1-5 conv stack has an
// HR receptive radius of 6 pixels (= ceil(6/scale) LR), and the bicubic
// resampler's 4-tap kernel reaches 2 LR pixels past each output pixel's
// projection, so tile-local edge clamping never contaminates the core.
func (s *SRCNNModel) Halo() int { return 2 + (6+s.scale-1)/s.scale }

// SRCNNFactory returns a Factory producing parameter-identical SRCNN
// replicas at the given scale.
func SRCNNFactory(master *models.SRCNN, scale, colors int) Factory {
	src := master.Params()
	return func() Model {
		m := models.NewSRCNN(colors, tensor.NewRNG(1))
		for i, p := range m.Params() {
			p.Value.CopyFrom(src[i].Value)
		}
		return &SRCNNModel{M: m, scale: scale, c: colors}
	}
}

// BicubicModel is the classical baseline as a servable model: stateless,
// so tiling it mostly exercises the tiler itself.
type BicubicModel struct {
	S int
	C int
}

// Forward bicubic-upscales the batch.
func (b *BicubicModel) Forward(x *tensor.Tensor) *tensor.Tensor {
	return models.BicubicUpscale(x, b.S)
}

// Scale returns the upscale factor.
func (b *BicubicModel) Scale() int { return b.S }

// Colors returns the input channel count.
func (b *BicubicModel) Colors() int { return b.C }

// Halo returns the 4-tap resampling support (2 LR pixels per side).
func (b *BicubicModel) Halo() int { return 2 }

// BicubicFactory returns a Factory for the bicubic baseline.
func BicubicFactory(scale, colors int) Factory {
	return func() Model { return &BicubicModel{S: scale, C: colors} }
}

// checkInput validates a request tensor against the model contract.
func checkInput(x *tensor.Tensor, colors int) error {
	if x.Rank() != 4 || x.Dim(0) != 1 {
		return fmt.Errorf("serve: want a single image (1,C,H,W), got %v", x.Shape())
	}
	if x.Dim(1) != colors {
		return fmt.Errorf("serve: model wants %d channels, image has %d", colors, x.Dim(1))
	}
	return nil
}
