package serve

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/serve/cache"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// cacheEnginePair builds two engines over the same master weights and
// variant: ref with caching off, cached with the given budget. Shared
// weights make their outputs directly comparable.
func cacheEnginePair(t *testing.T, variant string, tile int, cacheBytes int64, met *Metrics) (ref, cached *Engine) {
	t.Helper()
	master := models.NewEDSR(models.EDSRTiny(), tensor.NewRNG(1))
	f, err := EDSRVariantFactory(master, variant)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(bytes int64, m *Metrics) *Engine {
		e := NewEngine(EngineConfig{
			Batch:    BatcherConfig{MaxBatch: 4, MaxDelay: time.Millisecond, Queue: 256},
			TileSize: tile,
			Cache:    cache.Config{MaxBytes: bytes},
		}, m, nil)
		if err := e.RegisterInfo("edsr-tiny", f, variant, nil); err != nil {
			t.Fatal(err)
		}
		return e
	}
	ref = mk(0, nil)
	cached = mk(cacheBytes, met)
	t.Cleanup(func() { ref.Shutdown(); cached.Shutdown() })
	return ref, cached
}

// TestCacheHitByteIdentical is the correctness-drift property test: for
// every serving variant and both request granularities (whole-image and
// tiled), the cache-miss response, the cache-hit response, and the
// cache-off response are byte-identical. Float equality is exact
// (math.Float32bits), so a single mangled pixel fails.
func TestCacheHitByteIdentical(t *testing.T) {
	for _, variant := range Variants {
		for _, tc := range []struct {
			name string
			edge int
			tile int
		}{
			{"whole-image", 16, 48}, // rides the batcher in one submission
			{"tiled", 24, 8},        // splits into halo tiles, per-tile cache
		} {
			t.Run(variant+"/"+tc.name, func(t *testing.T) {
				reg := trace.NewMetrics()
				met := NewMetrics(reg)
				ref, cached := cacheEnginePair(t, variant, tc.tile, 64<<20, met)

				x := tensor.New(1, 3, tc.edge, tc.edge)
				x.FillUniform(tensor.NewRNG(7), 0, 1)

				want, err := ref.Upscale("", x)
				if err != nil {
					t.Fatal(err)
				}
				miss, err := cached.Upscale("", x) // cold: every key misses
				if err != nil {
					t.Fatal(err)
				}
				hit, err := cached.Upscale("", x) // warm: whole image hits
				if err != nil {
					t.Fatal(err)
				}
				if met.Cache.Hits.Value() == 0 {
					t.Fatal("second request did not hit the cache")
				}
				for i := range want.Data() {
					wb := math.Float32bits(want.Data()[i])
					if math.Float32bits(miss.Data()[i]) != wb {
						t.Fatalf("miss response differs from cache-off at %d", i)
					}
					if math.Float32bits(hit.Data()[i]) != wb {
						t.Fatalf("hit response differs from cache-off at %d", i)
					}
				}
			})
		}
	}
}

// TestCacheTileGranularity verifies the tile-level cache works across
// requests: a second image that shares pixel content with the first
// (here: the identical image) hits per tile without a whole-image
// entry, and a whole-image hit never consults the batcher at all.
func TestCacheTileGranularity(t *testing.T) {
	reg := trace.NewMetrics()
	met := NewMetrics(reg)
	_, cached := cacheEnginePair(t, VariantFloat32, 8, 64<<20, met)

	x := tensor.New(1, 3, 24, 24) // 3x3 tile grid
	x.FillUniform(tensor.NewRNG(9), 0, 1)
	if _, err := cached.Upscale("", x); err != nil {
		t.Fatal(err)
	}
	submitsCold := met.Submits.Value()
	if submitsCold != 9 {
		t.Fatalf("cold tiled request made %d submits, want 9", submitsCold)
	}
	if _, err := cached.Upscale("", x); err != nil {
		t.Fatal(err)
	}
	if met.Submits.Value() != submitsCold {
		t.Fatalf("warm request reached the batcher (%d extra submits)", met.Submits.Value()-submitsCold)
	}
	// 1 whole-image hit; the 9 tile entries stay cached for partial overlap.
	if met.Cache.Hits.Value() < 1 {
		t.Fatal("warm request did not hit")
	}
}

// TestCacheSingleflightCollapsesRequests pins the collapsing behavior
// end to end: N concurrent identical requests produce exactly one
// batcher submission, and every response is byte-identical.
func TestCacheSingleflightCollapsesRequests(t *testing.T) {
	reg := trace.NewMetrics()
	met := NewMetrics(reg)
	_, cached := cacheEnginePair(t, VariantFloat32, 48, 64<<20, met)

	x := tensor.New(1, 3, 16, 16)
	x.FillUniform(tensor.NewRNG(11), 0, 1)
	const n = 12
	outs := make([]*tensor.Tensor, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = cached.Upscale("", x)
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
	}
	if s := met.Submits.Value(); s != 1 {
		t.Fatalf("%d identical concurrent requests made %d submits, want 1 (singleflight)", n, s)
	}
	for i := 1; i < n; i++ {
		for j := range outs[0].Data() {
			if math.Float32bits(outs[i].Data()[j]) != math.Float32bits(outs[0].Data()[j]) {
				t.Fatalf("request %d result differs at %d", i, j)
			}
		}
	}
}

// TestCacheWaiterCancelHammerDrainShutdown is the satellite hammer: a
// storm of requests over a tiny image universe (forcing singleflight
// pileups), a fraction of them with contexts cancelled mid-wait, racing
// an engine drain/shutdown. Required outcomes: every call returns (no
// deadlock — the test finishing is the assertion), cancelled waiters
// surface ctx.Err() without poisoning the shared forward, and every
// successful response is byte-identical to the reference.
func TestCacheWaiterCancelHammerDrainShutdown(t *testing.T) {
	master := models.NewEDSR(models.EDSRTiny(), tensor.NewRNG(1))
	refEngine := NewEngine(EngineConfig{
		Batch: BatcherConfig{MaxBatch: 4, Queue: 1024}, TileSize: 48,
	}, nil, nil)
	if err := refEngine.Register("edsr-tiny", EDSRFactory(master)); err != nil {
		t.Fatal(err)
	}
	defer refEngine.Shutdown()

	e := NewEngine(EngineConfig{
		Batch:    BatcherConfig{MaxBatch: 4, MaxDelay: 200 * time.Microsecond, Queue: 1024},
		TileSize: 48,
		Cache:    cache.Config{MaxBytes: 32 << 20},
	}, nil, nil)
	if err := e.Register("edsr-tiny", EDSRFactory(master)); err != nil {
		t.Fatal(err)
	}

	const universe = 3
	xs := make([]*tensor.Tensor, universe)
	wants := make([]*tensor.Tensor, universe)
	for i := range xs {
		xs[i] = tensor.New(1, 3, 12, 12)
		xs[i].FillUniform(tensor.NewRNG(uint64(40+i)), 0, 1)
		var err error
		if wants[i], err = refEngine.Upscale("", xs[i]); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 24
	var wg sync.WaitGroup
	var cancelled, ok, rejected int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 40; i++ {
				k := rng.Intn(universe)
				ctx := context.Background()
				var cancel context.CancelFunc
				if rng.Intn(3) == 0 {
					ctx, cancel = context.WithCancel(ctx)
					delay := time.Duration(rng.Intn(300)) * time.Microsecond
					time.AfterFunc(delay, cancel)
				}
				out, err := e.UpscaleCtx(ctx, "", xs[k])
				if cancel != nil {
					cancel()
				}
				mu.Lock()
				switch {
				case err == nil:
					ok++
					for j := range out.Data() {
						if math.Float32bits(out.Data()[j]) != math.Float32bits(wants[k].Data()[j]) {
							t.Errorf("worker %d: response for image %d differs at %d", w, k, j)
							break
						}
					}
				case errors.Is(err, context.Canceled):
					cancelled++
				case errors.Is(err, ErrDraining), errors.Is(err, ErrOverloaded):
					rejected++
				default:
					t.Errorf("worker %d: unexpected error %v", w, err)
				}
				mu.Unlock()
			}
		}(w)
	}
	// Shut down mid-storm: requests after the drain see ErrDraining,
	// in-flight leaders complete, waiters still get their result.
	time.Sleep(10 * time.Millisecond)
	e.Shutdown()
	wg.Wait()

	if ok == 0 {
		t.Fatal("no request succeeded before the drain")
	}
	t.Logf("hammer: %d ok, %d cancelled, %d rejected by drain/backpressure", ok, cancelled, rejected)
}
