package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/tensor"
	"repro/internal/trace"
	rtrace "repro/internal/trace/request"
)

// TestUpscaleTraceHeaders pins the tracing HTTP contract: every upscale
// response carries X-Trace-Id, a valid incoming traceparent is adopted
// (same trace ID echoed back), and a malformed one degrades to a fresh
// mint — never an error.
func TestUpscaleTraceHeaders(t *testing.T) {
	s, _ := newTestServer(t, 64, BatcherConfig{MaxBatch: 2, MaxDelay: time.Millisecond})
	s.SetTraceStore(rtrace.NewStore(rtrace.Config{Capacity: 8, SampleRate: 1}))
	png := encodePNG(t, randImage(tensor.NewRNG(31), 3, 9, 9))

	rr := postPNG(s, "/v1/upscale?model=edsr", png)
	if rr.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rr.Code, rr.Body.String())
	}
	fresh := rr.Header().Get("X-Trace-Id")
	if len(fresh) != 32 {
		t.Fatalf("X-Trace-Id %q, want 32 hex digits", fresh)
	}

	// A valid traceparent is adopted: the response echoes its trace ID.
	id, span := rtrace.NewTraceID(), rtrace.NewSpanID()
	req := httptest.NewRequest(http.MethodPost, "/v1/upscale?model=edsr", strings.NewReader(string(png)))
	req.Header.Set("traceparent", rtrace.Traceparent(id, span))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Trace-Id") != id.String() {
		t.Fatalf("valid traceparent: status %d X-Trace-Id %q, want 200 with %s",
			rec.Code, rec.Header().Get("X-Trace-Id"), id)
	}

	// A malformed traceparent must not 4xx — fresh trace, request served.
	req = httptest.NewRequest(http.MethodPost, "/v1/upscale?model=edsr", strings.NewReader(string(png)))
	req.Header.Set("traceparent", "00-zzzz-bogus-01")
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	got := rec.Header().Get("X-Trace-Id")
	if rec.Code != http.StatusOK || len(got) != 32 || got == id.String() {
		t.Fatalf("malformed traceparent: status %d X-Trace-Id %q, want 200 with a fresh ID",
			rec.Code, got)
	}

	// All three requests were retained (SampleRate 1) and /debug/traces
	// serves them with serving-stage attribution.
	if n := len(s.TraceStore().Retained()); n != 3 {
		t.Fatalf("retained %d traces, want 3", n)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "serve/forward") {
		t.Fatalf("/debug/traces: %d, body lacks stage attribution:\n%s", rec.Code, rec.Body.String())
	}
}

// TestMetricsEndpointContract pins the /metrics surface other tooling
// scrapes: the Prometheus 0.0.4 Content-Type, the sr_build_info gauge
// with version and variant labels, the runtime gauges, and a histogram
// exemplar linking a latency bucket to a retained trace ID.
func TestMetricsEndpointContract(t *testing.T) {
	reg := trace.NewMetrics()
	trace.RegisterBuildInfo(reg, trace.BuildVersion, "serve")
	trace.RegisterRuntimeMetrics(reg)
	met := NewMetrics(reg)
	master := models.NewEDSR(models.EDSRTiny(), tensor.NewRNG(11))
	e := NewEngine(EngineConfig{Batch: BatcherConfig{MaxBatch: 2, MaxDelay: time.Millisecond}}, met, nil)
	if err := e.Register("edsr", EDSRFactory(master)); err != nil {
		t.Fatalf("Register: %v", err)
	}
	t.Cleanup(e.Shutdown)
	s := NewServer(e, reg, met, 0)
	s.SetTraceStore(rtrace.NewStore(rtrace.Config{Capacity: 8, SampleRate: 1}))

	png := encodePNG(t, randImage(tensor.NewRNG(37), 3, 9, 9))
	if rr := postPNG(s, "/v1/upscale?model=edsr", png); rr.Code != http.StatusOK {
		t.Fatalf("upscale: %d %s", rr.Code, rr.Body.String())
	}
	traceID := s.TraceStore().Retained()[0].ID.String()

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Fatalf("/metrics Content-Type %q, want the Prometheus 0.0.4 pin", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`sr_build_info{version="` + trace.BuildVersion + `",variant="serve"} 1`,
		"go_goroutines ",
		"go_heap_bytes ",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
	if !strings.Contains(body, `# {trace_id="`+traceID+`"}`) {
		t.Fatalf("/metrics lacks an exemplar for retained trace %s:\n%s", traceID, body)
	}
}
