package serve

import (
	"math"
	"testing"

	"repro/internal/models"
	"repro/internal/tensor"
)

// TestGateFusedBitExact pins the compiled float32 contract end to end:
// the fused variant's golden-set outputs are bit-identical to the
// training graph, so the gate admits it with a zero delta.
func TestGateFusedBitExact(t *testing.T) {
	master := models.NewEDSR(models.EDSRTiny(), tensor.NewRNG(7))
	g := RunGate("edsr-tiny", VariantFused, CompiledEDSRFactory(master, VariantFused), EDSRFactory(master))
	if !g.Pass {
		t.Fatalf("fused variant failed the gate:\n%s", g.Transcript())
	}
	if g.DeltaDB != 0 {
		t.Fatalf("fused variant delta %.6f dB, want exactly 0 (bit-exact)", g.DeltaDB)
	}
	if !math.IsInf(g.DirectPSNR, 1) {
		t.Fatalf("fused variant direct PSNR %.2f dB, want +Inf (bit-exact)", g.DirectPSNR)
	}
	t.Logf("\n%s", g.Transcript())
}

// TestGateInt8Reports checks the int8 gate mechanics: finite scores, a
// consistent verdict, and a sane direct PSNR. Whether random weights
// pass the 0.05 dB budget is the gate's call — trained checkpoints are
// what the budget is calibrated for.
func TestGateInt8Reports(t *testing.T) {
	master := models.NewEDSR(models.EDSRTiny(), tensor.NewRNG(7))
	g := RunGate("edsr-tiny", VariantInt8, CompiledEDSRFactory(master, VariantInt8), EDSRFactory(master))
	if math.IsNaN(g.RefPSNR) || math.IsNaN(g.VarPSNR) || math.IsInf(g.RefPSNR, 0) {
		t.Fatalf("non-finite gate scores: ref %.2f var %.2f", g.RefPSNR, g.VarPSNR)
	}
	if got := g.DeltaDB < GateMaxDelta; got != g.Pass {
		t.Fatalf("verdict %v inconsistent with delta %.4f (budget %.2f)", g.Pass, g.DeltaDB, GateMaxDelta)
	}
	if g.DirectPSNR < 15 {
		t.Fatalf("int8 output only %.2f dB from float32 — quantization is broken", g.DirectPSNR)
	}
	t.Logf("\n%s", g.Transcript())
}

// TestGateSRCNNFused covers the second architecture through the gate.
func TestGateSRCNNFused(t *testing.T) {
	master := models.NewSRCNN(3, tensor.NewRNG(7))
	g := RunGate("srcnn", VariantFused, CompiledSRCNNFactory(master, 2, 3, VariantFused), SRCNNFactory(master, 2, 3))
	if !g.Pass || g.DeltaDB != 0 {
		t.Fatalf("fused SRCNN not bit-exact:\n%s", g.Transcript())
	}
}

// TestEngineVariantInfo checks /v1/models metadata: Register defaults to
// float32, RegisterInfo carries the variant and gate delta through.
func TestEngineVariantInfo(t *testing.T) {
	e := NewEngine(EngineConfig{Batch: BatcherConfig{MaxBatch: 1, Workers: 1}}, nil, nil)
	defer e.Shutdown()
	if err := e.Register("plain", BicubicFactory(2, 3)); err != nil {
		t.Fatal(err)
	}
	master := models.NewEDSR(models.EDSRTiny(), tensor.NewRNG(7))
	delta := 0.012
	if err := e.RegisterInfo("opt", CompiledEDSRFactory(master, VariantFused), VariantFused, &delta); err != nil {
		t.Fatal(err)
	}
	infos := e.Models()
	if len(infos) != 2 {
		t.Fatalf("got %d models, want 2", len(infos))
	}
	if infos[0].Variant != VariantFloat32 || infos[0].PSNRVsFloat32 != nil {
		t.Fatalf("plain Register produced %+v, want float32 variant with no psnr", infos[0])
	}
	if infos[1].Variant != VariantFused || infos[1].PSNRVsFloat32 == nil || *infos[1].PSNRVsFloat32 != delta {
		t.Fatalf("RegisterInfo produced %+v, want fused with psnr %v", infos[1], delta)
	}
}

// TestCompiledVariantServes runs a compiled model through the full
// engine path (tiling + batching) and checks the result matches the
// float32 engine bit-for-bit for the fused variant.
func TestCompiledVariantServes(t *testing.T) {
	master := models.NewEDSR(models.EDSRTiny(), tensor.NewRNG(7))
	cfg := EngineConfig{Batch: BatcherConfig{MaxBatch: 2, Workers: 1}, TileSize: 24}

	x := goldenImage(0, 3)
	run := func(f Factory) *tensor.Tensor {
		e := NewEngine(cfg, nil, nil)
		defer e.Shutdown()
		if err := e.Register("m", f); err != nil {
			t.Fatal(err)
		}
		y, err := e.Upscale("m", x)
		if err != nil {
			t.Fatal(err)
		}
		return y
	}
	want := run(EDSRFactory(master))
	got := run(CompiledEDSRFactory(master, VariantFused))
	wd, gd := want.Data(), got.Data()
	for i := range wd {
		if wd[i] != gd[i] {
			t.Fatalf("fused engine output differs at %d: %v vs %v", i, gd[i], wd[i])
		}
	}
}
