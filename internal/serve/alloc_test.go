package serve

import (
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/tensor"
)

// TestRunBatchNoAllocs pins the serving perf contract the batcher.go
// comments promise: once buffer shapes have stabilized, the steady-state
// batched forward — batch assembly, model forward, result scatter, and
// the per-request replies — performs zero heap allocations. Measured
// with a single tensor worker, like the kernel alloc tests: the
// multi-worker path allocates only goroutine bookkeeping inside
// ParallelWorkers.
func TestRunBatchNoAllocs(t *testing.T) {
	prev := tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(prev)
	rng := tensor.NewRNG(17)
	master := models.NewEDSR(models.EDSRTiny(), rng)

	// A worker wired by hand, without the goroutine loop, so the measured
	// function is exactly the per-batch work.
	b := &Batcher{cfg: BatcherConfig{MaxBatch: 4}.withDefaults()}
	w := &worker{b: b, model: EDSRFactory(master)()}

	const n = 4
	scale := w.model.Scale()
	reqs := make([]*request, n)
	for i := range reqs {
		x := tensor.New(1, 3, 12, 12)
		x.FillUniform(rng, 0, 1)
		reqs[i] = &request{
			x:    x,
			out:  tensor.New(1, 3, 12*scale, 12*scale),
			errc: make(chan error, 1),
		}
	}
	step := func() {
		w.runBatch(reqs)
		for _, r := range reqs {
			if err := <-r.errc; err != nil {
				t.Fatalf("runBatch reply: %v", err)
			}
		}
	}
	step() // warmup: grows the batch input and all layer buffers

	if allocs := testing.AllocsPerRun(5, step); allocs != 0 {
		t.Fatalf("steady-state batched forward allocated %.0f objects per batch, want 0", allocs)
	}
}

// TestSubmitSteadyStateAllocs bounds the full Submit round trip: the
// request itself is pooled, so a warm path costs only the fixed channel
// and scheduling bookkeeping, not per-request tensor churn. The bound is
// loose (goroutine wakeups inside AllocsPerRun are noisy) but catches a
// regression to per-request buffer allocation, which would add
// hundreds of objects for images this size.
func TestSubmitSteadyStateAllocs(t *testing.T) {
	prev := tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(prev)
	rng := tensor.NewRNG(18)
	master := models.NewEDSR(models.EDSRTiny(), rng)
	b := NewBatcher(EDSRFactory(master), BatcherConfig{
		MaxBatch: 1, MaxDelay: time.Microsecond, Queue: 4, Workers: 1,
	}, nil, nil)
	defer b.Shutdown()

	x := tensor.New(1, 3, 16, 16)
	x.FillUniform(rng, 0, 1)
	out := tensor.New(1, 3, 32, 32)
	for i := 0; i < 3; i++ { // warmup
		if err := b.Submit(x, out); err != nil {
			t.Fatalf("warmup Submit: %v", err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := b.Submit(x, out); err != nil {
			t.Errorf("Submit: %v", err)
		}
	})
	if allocs > 10 {
		t.Fatalf("steady-state Submit allocated %.0f objects per request, want <= 10", allocs)
	}
}
