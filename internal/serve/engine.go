package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/serve/cache"
	"repro/internal/tensor"
	"repro/internal/trace"
	rtrace "repro/internal/trace/request"
)

// ErrUnknownModel is returned by Upscale for an unregistered model name
// (HTTP 404).
var ErrUnknownModel = errors.New("serve: unknown model")

// ErrBadInput wraps client-side validation failures (HTTP 400).
var ErrBadInput = errors.New("serve: bad input")

// EngineConfig sizes the inference engine.
type EngineConfig struct {
	// Batch configures every model's micro-batching queue.
	Batch BatcherConfig
	// TileSize is the LR tile core edge; images larger than one tile in
	// either dimension are split into halo tiles and re-batched per
	// tile, bounding activation memory to one padded tile regardless of
	// image size (default 48, <0 disables tiling).
	TileSize int
	// Cache configures the content-addressed result cache in front of
	// the batcher (MaxBytes <= 0 disables it). Hits skip the forward
	// entirely; concurrent identical misses collapse into one forward
	// via singleflight. Both whole images and halo tiles are cached.
	Cache cache.Config
}

// ModelInfo describes one registered model (the /v1/models payload).
// Variant names the serving arithmetic (float32 / fused / int8); for
// compiled variants PSNRVsFloat32 carries the golden-set gate delta in
// dB the variant was admitted with (absent for the float32 reference
// and for bit-exact variants, whose delta is zero by construction).
type ModelInfo struct {
	Name          string   `json:"name"`
	Scale         int      `json:"scale"`
	Halo          int      `json:"halo"`
	Colors        int      `json:"colors"`
	Variant       string   `json:"variant"`
	PSNRVsFloat32 *float64 `json:"psnr_vs_float32_db,omitempty"`
}

// modelEntry is one registered model: its batcher plus the serving
// metadata reported by /v1/models.
type modelEntry struct {
	b       *Batcher
	variant string
	psnr    *float64
}

// Engine routes upscale requests to per-model batchers, tiling images
// that exceed the tile size. The first registered model is the default.
type Engine struct {
	cfg EngineConfig

	mu    sync.RWMutex
	mods  map[string]*modelEntry
	order []string

	cache *cache.Cache

	met *Metrics
	rec *trace.Recorder
}

// NewEngine creates an engine; met and rec may be nil (observability
// off).
func NewEngine(cfg EngineConfig, met *Metrics, rec *trace.Recorder) *Engine {
	if cfg.TileSize == 0 {
		cfg.TileSize = 48
	}
	return &Engine{
		cfg:   cfg,
		mods:  map[string]*modelEntry{},
		cache: cache.New(cfg.Cache, met.cacheMetrics(), rec),
		met:   met,
		rec:   rec,
	}
}

// Cache returns the engine's result cache (nil when caching is off),
// for tests and benchmarks that inspect hit ratios.
func (e *Engine) Cache() *cache.Cache { return e.cache }

// Register adds a model under name, spinning up its batcher workers.
// The model is recorded as the float32 variant; compiled variants go
// through RegisterInfo with their gate result.
func (e *Engine) Register(name string, f Factory) error {
	return e.RegisterInfo(name, f, VariantFloat32, nil)
}

// RegisterInfo adds a model with explicit variant metadata. psnr, when
// non-nil, is the golden-set PSNR delta vs float32 (dB) the variant was
// admitted with — the caller runs the gate before registering.
func (e *Engine) RegisterInfo(name string, f Factory, variant string, psnr *float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.mods[name]; dup {
		return fmt.Errorf("serve: model %q already registered", name)
	}
	e.mods[name] = &modelEntry{
		b:       NewBatcher(f, e.cfg.Batch, e.met, e.rec),
		variant: variant,
		psnr:    psnr,
	}
	e.order = append(e.order, name)
	return nil
}

// Models lists the registered models in registration order.
func (e *Engine) Models() []ModelInfo {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]ModelInfo, 0, len(e.order))
	for _, name := range e.order {
		m := e.mods[name]
		out = append(out, ModelInfo{
			Name: name, Scale: m.b.Scale(), Halo: m.b.Halo(), Colors: m.b.Colors(),
			Variant: m.variant, PSNRVsFloat32: m.psnr,
		})
	}
	return out
}

// entry resolves a model name ("" selects the default) to its
// registration and the resolved name (part of the cache key).
func (e *Engine) entry(name string) (*modelEntry, string, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if name == "" {
		if len(e.order) == 0 {
			return nil, "", fmt.Errorf("%w: no models registered", ErrUnknownModel)
		}
		name = e.order[0]
	}
	m, ok := e.mods[name]
	if !ok {
		return nil, "", fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return m, name, nil
}

// Upscale super-resolves one image with the default (background)
// context: the request can never be abandoned early. See UpscaleCtx.
func (e *Engine) Upscale(name string, x *tensor.Tensor) (*tensor.Tensor, error) {
	return e.UpscaleCtx(context.Background(), name, x)
}

// UpscaleCtx super-resolves one image (1, C, H, W) with the named model
// and returns a freshly allocated (1, C, H*s, W*s) result. Images within
// the tile size ride the batcher whole; larger images are split into
// halo tiles, submitted concurrently (so tiles from different requests
// coalesce into shared batches), and stitched. A request is atomic: if
// any tile is rejected by backpressure the whole request fails with that
// error.
//
// With the result cache enabled, the request is first looked up by
// content key (and, when tiled, per tile): hits skip the batcher
// entirely, and concurrent identical misses collapse into one forward.
// ctx only governs this request's singleflight waits — a cancelled ctx
// (client disconnect) unblocks the caller with ctx.Err() while any
// shared forward it was parked on keeps running; forwards themselves
// are never cancelled.
func (e *Engine) UpscaleCtx(ctx context.Context, name string, x *tensor.Tensor) (*tensor.Tensor, error) {
	ent, name, err := e.entry(name)
	if err != nil {
		return nil, err
	}
	b := ent.b
	if err := checkInput(x, b.Colors()); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	began := time.Now()
	start := e.rec.Now()
	c, h, w := x.Dim(1), x.Dim(2), x.Dim(3)
	s := b.Scale()
	out := tensor.New(1, c, h*s, w*s)

	a := rtrace.FromContext(ctx)
	if e.cache == nil {
		err = e.forward(ctx, ent, name, x, out)
	} else {
		k := cache.MakeKey(cache.GranImage, name, ent.variant, s, e.cfg.TileSize, x)
		cstart := a.Now()
		if e.cache.Get(k, out) {
			a.EmitStage(rtrace.StageServeCacheHit, a.Root(), cstart, out.Bytes())
		} else {
			a.EmitStage(rtrace.StageServeCacheMiss, a.Root(), cstart, 0)
			err = e.cache.Do(ctx, k, out, func(o *tensor.Tensor) error {
				return e.forward(ctx, ent, name, x, o)
			})
		}
	}
	if err != nil {
		return nil, err
	}
	e.rec.Emit(trace.CatServeRequest, trace.TrackMain, start, x.Bytes())
	e.met.observeRequest(time.Since(began))
	return out, nil
}

// forward computes the upscale of x into out through the batcher —
// whole for images within the tile size, tiled otherwise. Tiles consult
// the cache individually, so redundant tiles (across requests, or
// repeated within one image) are forwarded once.
func (e *Engine) forward(ctx context.Context, ent *modelEntry, name string, x, out *tensor.Tensor) error {
	b := ent.b
	c, h, w := x.Dim(1), x.Dim(2), x.Dim(3)
	s := b.Scale()
	tile := e.cfg.TileSize
	if tile < 0 || (h <= tile && w <= tile) {
		// Whole image in one submission: no extract/stitch copies.
		return b.SubmitCtx(ctx, x, out)
	}
	a := rtrace.FromContext(ctx)
	tiles := SplitTiles(h, w, tile, b.Halo())
	e.met.tiled(len(tiles))
	errs := make([]error, len(tiles))
	outs := make([]*tensor.Tensor, len(tiles))
	var wg sync.WaitGroup
	for i, t := range tiles {
		wg.Add(1)
		go func(i int, t Tile) {
			defer wg.Done()
			xt := ExtractTile(x, t)
			outs[i] = tensor.New(1, c, (t.PY1-t.PY0)*s, (t.PX1-t.PX0)*s)
			if e.cache == nil {
				errs[i] = b.SubmitCtx(ctx, xt, outs[i])
				return
			}
			k := cache.MakeKey(cache.GranTile, name, ent.variant, s, tile, xt)
			cstart := a.Now()
			if e.cache.Get(k, outs[i]) {
				a.EmitStage(rtrace.StageServeCacheHit, a.Root(), cstart, outs[i].Bytes())
				return
			}
			errs[i] = e.cache.Do(ctx, k, outs[i], func(o *tensor.Tensor) error {
				return b.SubmitCtx(ctx, xt, o)
			})
		}(i, t)
	}
	wg.Wait()
	for _, terr := range errs {
		if terr != nil {
			return terr
		}
	}
	sstart := a.Now()
	for i, t := range tiles {
		StitchTile(out, outs[i], t, s)
	}
	a.EmitStage(rtrace.StageServeStitch, a.Root(), sstart, out.Bytes())
	return nil
}

// Shutdown drains every model's batcher: queued work completes, new
// submissions fail with ErrDraining, and the call returns when all
// workers have exited.
func (e *Engine) Shutdown() {
	e.mu.RLock()
	mods := make([]*Batcher, 0, len(e.mods))
	for _, m := range e.mods {
		mods = append(mods, m.b)
	}
	e.mu.RUnlock()
	for _, b := range mods {
		b.Shutdown()
	}
}
