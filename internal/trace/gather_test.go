package trace

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/hvprof"
	"repro/internal/mpi"
)

func TestSpanWireRoundTrip(t *testing.T) {
	spans := []Span{
		{Cat: CatStep, Track: TrackMain, Start: 0, Dur: 1, Bytes: 0},
		{Cat: CatAllreduceRing, Track: TrackEngine, Start: 123456789012345, Dur: 987654321, Bytes: 64 << 20},
		{Cat: CatRestart, Track: TrackMain, Start: -5, Dur: 0, Bytes: -1},
		{Cat: numCategories - 1, Track: TrackEngine, Start: math.MaxInt64, Dur: math.MinInt64, Bytes: math.MaxInt64},
	}
	wire := encodeSpans(spans, nil)
	if len(wire) != len(spans)*spanFloats {
		t.Fatalf("wire length %d", len(wire))
	}
	back := decodeSpans(wire)
	if !reflect.DeepEqual(spans, back) {
		t.Fatalf("round trip:\nout: %+v\nin:  %+v", spans, back)
	}
}

func TestGatherMergesAllRanks(t *testing.T) {
	const world = 4
	s := NewSession(64)
	w := mpi.NewWorld(world)
	if err := w.Run(func(c *mpi.Comm) {
		rec := s.Recorder(c.Rank())
		for i := 0; i <= c.Rank(); i++ { // rank r records r+1 spans
			rec.EmitInstant(CatGradHook, TrackMain, int64(c.Rank()*100+i))
		}
		s.Gather(c, 0)
	}); err != nil {
		t.Fatal(err)
	}
	tl := s.Timeline()
	if len(tl.Ranks) != world {
		t.Fatalf("ranks %d", len(tl.Ranks))
	}
	for r, rt := range tl.Ranks {
		if rt.Rank != r || len(rt.Spans) != r+1 {
			t.Fatalf("rank %d: %d spans (%+v)", r, len(rt.Spans), rt)
		}
		for i, sp := range rt.Spans {
			if sp.Bytes != int64(r*100+i) {
				t.Fatalf("rank %d span %d corrupted: %+v", r, i, sp)
			}
		}
	}
}

func TestGatherReportsDrops(t *testing.T) {
	s := NewSession(2)
	w := mpi.NewWorld(2)
	if err := w.Run(func(c *mpi.Comm) {
		rec := s.Recorder(c.Rank())
		for i := 0; i < 5; i++ {
			rec.EmitInstant(CatGradHook, TrackMain, 0)
		}
		s.Gather(c, 0)
	}); err != nil {
		t.Fatal(err)
	}
	for _, rt := range s.Timeline().Ranks {
		if rt.Dropped != 3 || len(rt.Spans) != 2 {
			t.Fatalf("rank %d: %d spans, %d dropped", rt.Rank, len(rt.Spans), rt.Dropped)
		}
	}
}

// TestProfilerTracerAgree runs real collectives with BOTH the legacy
// hvprof profiler and the span tracer attached to the same Comm. The
// two views come from one timing measurement inside mpi, so the
// per-op total seconds of the direct hvprof report and of the report
// derived from the gathered spans must agree to float rounding.
func TestProfilerTracerAgree(t *testing.T) {
	const world = 4
	s := NewSession(0)
	prof := hvprof.New()
	w := mpi.NewWorld(world)
	if err := w.Run(func(c *mpi.Comm) {
		c.Profiler = prof
		c.Tracer = s.Recorder(c.Rank()).Sink(TrackMain)
		buf := make([]float32, 1024)
		for i := range buf {
			buf[i] = float32(c.Rank())
		}
		c.Bcast(buf[:64], 0)
		c.AllreduceSum(buf, mpi.AlgoRing)
		c.AllreduceSum(buf[:128], mpi.AlgoRecursiveDoubling)
		c.Barrier()
		s.Gather(c, 0)
	}); err != nil {
		t.Fatal(err)
	}
	direct := prof.Report()
	derived := s.Timeline().HvprofReport()
	ops := direct.Ops()
	if !reflect.DeepEqual(ops, derived.Ops()) {
		t.Fatalf("op sets differ: %v vs %v", ops, derived.Ops())
	}
	if len(ops) == 0 {
		t.Fatal("no collectives recorded")
	}
	for _, op := range ops {
		d, g := direct.TotalSeconds(op), derived.TotalSeconds(op)
		if math.Abs(d-g) > 1e-9*float64(world) {
			t.Errorf("op %s: direct %.12f s, span-derived %.12f s", op, d, g)
		}
		for i, db := range direct.PerOp[op] {
			gb := derived.PerOp[op][i]
			if db.Count != gb.Count || db.Bytes != gb.Bytes {
				t.Errorf("op %s bucket %d: direct %+v, derived %+v", op, i, db, gb)
			}
		}
	}
}
