package trace

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter %d", c.Value())
	}
	if m.Counter("c_total", "dup") != c {
		t.Fatal("re-registration returned a new counter")
	}
	g := m.Gauge("g", "help")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge %g", g.Value())
	}
	h := m.Histogram("h_seconds", "help", []float64{1, 10})
	for _, v := range []float64{0.5, 1.0, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 106.5 {
		t.Fatalf("count %d sum %g", h.Count(), h.Sum())
	}
}

func TestNilMetricsSafe(t *testing.T) {
	var m *Metrics
	m.Counter("x", "").Inc()
	m.Gauge("y", "").Set(1)
	m.Histogram("z", "", DurationBuckets).Observe(1)
	if err := m.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	var tm *TrainMetrics
	tm.ObserveStep(4, time.Second, 10)
	if NewTrainMetrics(nil) != nil {
		t.Fatal("NewTrainMetrics(nil) should be nil")
	}
}

func TestPrometheusExposition(t *testing.T) {
	m := NewMetrics()
	m.Counter("steps_total", "Completed steps.").Add(7)
	m.Gauge("world_size", "Ranks.").Set(4)
	h := m.Histogram("lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP steps_total Completed steps.",
		"# TYPE steps_total counter",
		"steps_total 7",
		"# TYPE world_size gauge",
		"world_size 4",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.55",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewMetrics().Histogram("h", "", []float64{1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 || h.Sum() != 4000 {
		t.Fatalf("count %d sum %g", h.Count(), h.Sum())
	}
}

func TestServeMetricsEndpoint(t *testing.T) {
	m := NewMetrics()
	m.Counter("edsr_steps_total", "Steps.").Add(3)
	srv, err := ServeMetrics("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "edsr_steps_total 3") {
		t.Fatalf("/metrics: %d\n%s", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
}

func TestTrainMetricsObserveStep(t *testing.T) {
	m := NewMetrics()
	tm := NewTrainMetrics(m)
	tm.WorldSize.Set(4)
	tm.ObserveStep(16, 100*time.Millisecond, 160)
	tm.ObserveStep(16, 100*time.Millisecond, 0) // 0 throughput must not clobber the gauge
	if tm.Steps.Value() != 2 || tm.Images.Value() != 32 {
		t.Fatalf("steps %d images %d", tm.Steps.Value(), tm.Images.Value())
	}
	if tm.StepSeconds.Count() != 2 {
		t.Fatalf("step histogram count %d", tm.StepSeconds.Count())
	}
	if tm.ImagesPerSec.Value() != 160 {
		t.Fatalf("throughput gauge %g", tm.ImagesPerSec.Value())
	}
}
