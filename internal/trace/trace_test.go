package trace

import (
	"sync"
	"testing"
	"time"
)

func TestCategoryNamesRoundTrip(t *testing.T) {
	for c := Category(0); c < numCategories; c++ {
		if got := CategoryOf(c.String()); got != c {
			t.Errorf("CategoryOf(%q) = %v, want %v", c.String(), got, c)
		}
	}
	if got := CategoryOf("no-such-op"); got != CatOther {
		t.Errorf("unknown op -> %v, want CatOther", got)
	}
}

func TestHvprofOpFolding(t *testing.T) {
	for _, c := range []Category{CatAllreduceRing, CatAllreduceRecDbl, CatAllreduceNaive} {
		op, ok := c.HvprofOp()
		if !ok || op != "allreduce" {
			t.Errorf("%v -> (%q, %v), want (allreduce, true)", c, op, ok)
		}
	}
	for _, c := range []Category{CatStep, CatForward, CatBackward, CatDrain, CatFusedReduce, CatCheckpoint} {
		if _, ok := c.HvprofOp(); ok {
			t.Errorf("%v should not be an hvprof collective", c)
		}
	}
}

func TestRecorderEmit(t *testing.T) {
	r := NewRecorder(3, 16)
	start := r.Now()
	time.Sleep(time.Millisecond)
	r.Emit(CatForward, TrackMain, start, 42)
	r.EmitInstant(CatGradHook, TrackMain, 7)
	if r.Len() != 2 {
		t.Fatalf("len %d", r.Len())
	}
	spans := r.Spans()
	if spans[0].Cat != CatForward || spans[0].Bytes != 42 || spans[0].Dur <= 0 {
		t.Fatalf("span 0: %+v", spans[0])
	}
	if spans[1].Cat != CatGradHook || spans[1].Dur != 0 {
		t.Fatalf("span 1: %+v", spans[1])
	}
	if r.Rank() != 3 {
		t.Fatalf("rank %d", r.Rank())
	}
}

func TestRecorderDropsWhenFull(t *testing.T) {
	r := NewRecorder(0, 4)
	for i := 0; i < 10; i++ {
		r.EmitInstant(CatGradHook, TrackMain, int64(i))
	}
	if r.Len() != 4 {
		t.Fatalf("len %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped %d, want 6", r.Dropped())
	}
	// The first four spans survive untouched (drop-new, never overwrite).
	for i, s := range r.Spans() {
		if s.Bytes != int64(i) {
			t.Fatalf("span %d clobbered: %+v", i, s)
		}
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Now() != 0 || r.Len() != 0 || r.Dropped() != 0 || r.Spans() != nil {
		t.Fatal("nil recorder accessors not zero")
	}
	r.Emit(CatStep, TrackMain, 0, 0)
	r.EmitInstant(CatStep, TrackMain, 0)
	r.Sink(TrackMain).RecordSpan("allreduce/ring", 1, time.Millisecond)
	var s *Session
	s.Recorder(0).Emit(CatStep, TrackMain, 0, 0)
	s.Gather(nil, 0)
	if s.Timeline().NumSpans() != 0 {
		t.Fatal("nil session timeline not empty")
	}
}

func TestSinkBackdatesSpans(t *testing.T) {
	r := NewRecorder(0, 8)
	sink := r.Sink(TrackEngine)
	dur := 5 * time.Millisecond
	sink.RecordSpan("allreduce/ring", 1024, dur)
	sp := r.Spans()[0]
	if sp.Cat != CatAllreduceRing || sp.Track != TrackEngine || sp.Bytes != 1024 {
		t.Fatalf("span %+v", sp)
	}
	if sp.Dur != int64(dur) {
		t.Fatalf("dur %d, want %d", sp.Dur, int64(dur))
	}
	// The span ends at the RecordSpan call and extends dur into the past.
	if end := sp.Start + sp.Dur; end > r.Now() {
		t.Fatalf("span ends in the future: start %d end %d now %d", sp.Start, end, r.Now())
	}
}

// TestEmitNoAllocs is the tracing-overhead gate (also run by
// scripts/check.sh): recording spans with tracing enabled must not
// allocate on the hot path.
func TestEmitNoAllocs(t *testing.T) {
	r := NewRecorder(0, 1<<16)
	sink := r.Sink(TrackEngine)
	allocs := testing.AllocsPerRun(1000, func() {
		start := r.Now()
		r.Emit(CatForward, TrackMain, start, 64)
		r.EmitInstant(CatGradHook, TrackMain, 64)
		sink.RecordSpan("allreduce/ring", 1024, time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates %.1f times per op, want 0", allocs)
	}
	// The full-buffer path must not allocate either.
	full := NewRecorder(0, 1)
	full.EmitInstant(CatStep, TrackMain, 0)
	allocs = testing.AllocsPerRun(1000, func() {
		full.EmitInstant(CatStep, TrackMain, 0)
	})
	if allocs != 0 {
		t.Fatalf("drop path allocates %.1f times per op, want 0", allocs)
	}
}

// TestConcurrentRecording drives one recorder from many goroutines —
// the trainer and engine tracks emit concurrently in real runs — and
// is meaningful under -race (scripts/check.sh runs it so).
func TestConcurrentRecording(t *testing.T) {
	const goroutines, per = 8, 500
	r := NewRecorder(0, goroutines*per/2) // force the drop path too
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(track Track) {
			defer wg.Done()
			sink := r.Sink(track)
			for i := 0; i < per; i++ {
				start := r.Now()
				r.Emit(CatForward, track, start, int64(i))
				sink.RecordSpan("negotiate", 4, time.Microsecond)
			}
		}(Track(g % 2))
	}
	wg.Wait()
	total := uint64(r.Len()) + r.Dropped()
	if want := uint64(goroutines * per * 2); total != want {
		t.Fatalf("recorded+dropped = %d, want %d", total, want)
	}
	for _, s := range r.Spans() {
		if s.Cat != CatForward && s.Cat != CatNegotiate {
			t.Fatalf("torn span: %+v", s)
		}
	}
}

func TestSessionSharedEpoch(t *testing.T) {
	s := NewSession(8)
	r0, r1 := s.Recorder(0), s.Recorder(1)
	if r0 == r1 {
		t.Fatal("ranks share a recorder")
	}
	if s.Recorder(0) != r0 {
		t.Fatal("recorder not cached per rank")
	}
	if r0.epoch != r1.epoch {
		t.Fatal("ranks do not share the session epoch")
	}
	r0.EmitInstant(CatStep, TrackMain, 0)
	r1.EmitInstant(CatStep, TrackMain, 0)
	tl := s.Timeline()
	if len(tl.Ranks) != 2 || tl.NumSpans() != 2 {
		t.Fatalf("timeline %+v", tl)
	}
	if tl.Ranks[0].Rank != 0 || tl.Ranks[1].Rank != 1 {
		t.Fatalf("ranks unsorted: %+v", tl.Ranks)
	}
}
