package request

import (
	"sync"
	"sync/atomic"
	"time"

	"slices"
)

// Config tunes a Store's tail sampler and retention bound.
type Config struct {
	// Capacity is the retained-trace ring size (default 256). Memory is
	// bounded by Capacity × the per-trace span count — there is no
	// unbounded accumulation however interesting the traffic gets.
	Capacity int
	// SampleRate is the probabilistic keep rate for unremarkable
	// requests (fast, successful). 0 selects the default 0.01; negative
	// disables probabilistic sampling entirely. The decision is
	// deterministic in the trace ID, so the router and every replica
	// keep the *same* unremarkable traces and a cross-process tree can
	// be assembled after the fact.
	SampleRate float64
	// SlowPct keeps every request slower than this percentile of the
	// recent-latency window (default 90 — the slowest decile is always
	// retained). Negative disables the slow class.
	SlowPct float64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.SampleRate == 0 {
		c.SampleRate = 0.01
	}
	if c.SlowPct == 0 {
		c.SlowPct = 90
	}
	return c
}

// Keep reasons, in decision order.
const (
	KeptError   = "error"
	KeptForced  = "retry"
	KeptSlow    = "slow"
	KeptSampled = "sampled"
)

// Trace is one retained request: the span tree (root first) plus the
// verdict that retained it.
type Trace struct {
	ID TraceID
	// RemoteParent is the caller's span ID from the incoming
	// traceparent (0 when this process was the trace's edge).
	RemoteParent uint64
	// RootID is the root span's ID (Spans[0].ID).
	RootID uint64
	// Wall anchors the trace to the wall clock for export.
	Wall time.Time
	// Dur is the request's total wall time in nanoseconds.
	Dur int64
	// Status is the HTTP status written (0 for a transport-level loss).
	Status int
	// KeptFor is the sampling verdict: error, retry, slow, or sampled.
	KeptFor string
	// Dropped counts spans lost to collector overflow.
	Dropped uint32
	// Spans is the recorded tree, root first, in emission order.
	Spans []SpanRec
}

// latencyWindow sizes the recent-duration ring the slow threshold is
// computed from; thresholdEvery is how often (in finishes) it is
// recomputed; thresholdWarm is the minimum sample count before the
// slow class arms (a cold window would retain everything).
const (
	latencyWindow  = 512
	thresholdEvery = 32
	thresholdWarm  = 64
)

// Store owns the request-tracing state of one process: the collector
// pool, the tail sampler, and the bounded ring of retained traces. The
// sampled-out fast path — Start, a handful of Emits, Finish — performs
// zero heap allocations (enforced by TestSampledOutFastPathNoAllocs);
// retention cost is paid only for traces worth keeping.
type Store struct {
	cfg  Config
	pool sync.Pool

	// Finished-request accounting.
	total, droppedSpans                     atomic.Int64
	keptErr, keptForced, keptSlow, keptSamp atomic.Int64
	thresh                                  atomic.Int64 // current slow threshold, ns

	mu       sync.Mutex
	retained []*Trace // ring, nil until first keep
	next     int
	window   [latencyWindow]int64
	wn       int // filled entries
	wnext    int // ring cursor
	scratch  [latencyWindow]int64
	finishes int
}

// NewStore builds a store; the zero Config selects the defaults
// (capacity 256, slowest decile + 1% sampled).
func NewStore(cfg Config) *Store {
	s := &Store{cfg: cfg.withDefaults()}
	s.pool.New = func() any { return new(Active) }
	return s
}

// Config returns the store's resolved configuration.
func (s *Store) Config() Config {
	if s == nil {
		return Config{}
	}
	return s.cfg
}

// Start begins collecting one request's trace. traceparent is the
// incoming W3C header ("" at the edge): a valid header joins the
// existing trace as a child of its parent span; anything malformed,
// all-zero, or future-versioned falls back to a freshly minted trace ID
// — propagation problems degrade to a trace restart, never a 4xx. A nil
// store returns a nil Active, which every method tolerates.
func (s *Store) Start(traceparent string) *Active {
	if s == nil {
		return nil
	}
	id, parent, ok := ParseTraceparent(traceparent)
	if !ok {
		id, parent = NewTraceID(), 0
	}
	a := s.pool.Get().(*Active)
	a.store = s
	a.reset(id, parent)
	return a
}

// sampleHit is the deterministic probabilistic decision: a pure
// function of the trace ID, so every process along the request's path
// reaches the same verdict for the "unremarkable" class.
func (s *Store) sampleHit(id TraceID) bool {
	rate := s.cfg.SampleRate
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	return id.Lo>>11 < uint64(rate*(1<<53))
}

// Finish completes the request: the root span is sealed with status,
// the tail sampler decides whether the trace is retained, and the
// collector returns to the pool. It reports the trace ID and whether
// the trace was kept (so the caller can link a histogram exemplar to
// it). a must not be used after Finish.
func (s *Store) Finish(a *Active, status int) (TraceID, bool) {
	if s == nil || a == nil {
		return TraceID{}, false
	}
	end := pkgNow()
	dur := end - a.t0
	id := a.id
	s.total.Add(1)
	if d := a.dropped.Load(); d > 0 {
		s.droppedSpans.Add(int64(d))
	}

	// Feed the latency window and periodically recompute the slow
	// threshold from a sorted copy (preallocated scratch, no allocs).
	s.mu.Lock()
	s.window[s.wnext] = dur
	s.wnext = (s.wnext + 1) % latencyWindow
	if s.wn < latencyWindow {
		s.wn++
	}
	s.finishes++
	if s.cfg.SlowPct > 0 && s.wn >= thresholdWarm && s.finishes%thresholdEvery == 0 {
		w := s.scratch[:s.wn]
		copy(w, s.window[:s.wn])
		slices.Sort(w)
		i := int(float64(s.wn) * s.cfg.SlowPct / 100)
		if i >= s.wn {
			i = s.wn - 1
		}
		s.thresh.Store(w[i])
	}
	s.mu.Unlock()

	reason := ""
	thresh := s.thresh.Load()
	switch {
	case status == 0 || status == 499 || status >= 500:
		reason = KeptError
	case a.force.Load():
		reason = KeptForced
	case s.cfg.SlowPct > 0 && thresh > 0 && dur >= thresh:
		reason = KeptSlow
	case s.sampleHit(id):
		reason = KeptSampled
	}
	if reason == "" {
		s.pool.Put(a)
		return id, false
	}

	switch reason {
	case KeptError:
		s.keptErr.Add(1)
	case KeptForced:
		s.keptForced.Add(1)
	case KeptSlow:
		s.keptSlow.Add(1)
	case KeptSampled:
		s.keptSamp.Add(1)
	}
	n := int(a.n.Load())
	if n > MaxSpans {
		n = MaxSpans
	}
	t := &Trace{
		ID:           id,
		RemoteParent: a.remoteParent,
		RootID:       a.rootID,
		Wall:         a.wall,
		Dur:          dur,
		Status:       status,
		KeptFor:      reason,
		Dropped:      a.dropped.Load(),
		Spans:        make([]SpanRec, 0, n+1),
	}
	t.Spans = append(t.Spans, SpanRec{
		ID: a.rootID, Parent: a.remoteParent,
		Start: 0, Dur: dur,
		Stage: StageRoot, Backend: -1, Extra: int32(status),
	})
	t.Spans = append(t.Spans, a.spans[:n]...)
	s.pool.Put(a)

	s.mu.Lock()
	if s.retained == nil {
		s.retained = make([]*Trace, 0, s.cfg.Capacity)
	}
	if len(s.retained) < s.cfg.Capacity {
		s.retained = append(s.retained, t)
	} else {
		s.retained[s.next] = t
		s.next = (s.next + 1) % s.cfg.Capacity
	}
	s.mu.Unlock()
	return id, true
}

// Retained snapshots the retained traces, oldest first.
func (s *Store) Retained() []*Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Trace, 0, len(s.retained))
	out = append(out, s.retained[s.next:]...)
	out = append(out, s.retained[:s.next]...)
	return out
}

// Stats is a point-in-time summary of the store's sampling activity.
type Stats struct {
	Finished     int64
	KeptErrors   int64
	KeptRetried  int64
	KeptSlow     int64
	KeptSampled  int64
	DroppedSpans int64
	// SlowThreshold is the current slow-class cutoff in nanoseconds
	// (0 until the window warms up).
	SlowThreshold int64
}

// Kept totals the retained-trace count across classes.
func (st Stats) Kept() int64 {
	return st.KeptErrors + st.KeptRetried + st.KeptSlow + st.KeptSampled
}

// Stats snapshots the sampling counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Finished:      s.total.Load(),
		KeptErrors:    s.keptErr.Load(),
		KeptRetried:   s.keptForced.Load(),
		KeptSlow:      s.keptSlow.Load(),
		KeptSampled:   s.keptSamp.Load(),
		DroppedSpans:  s.droppedSpans.Load(),
		SlowThreshold: s.thresh.Load(),
	}
}
