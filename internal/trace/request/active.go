package request

import (
	"context"
	"sync/atomic"
	"time"
)

// MaxSpans bounds one request's span count (a heavily tiled image emits
// a handful of spans per tile). Overflow is counted, not stored — the
// collector is fixed-size so the hot path never grows memory.
const MaxSpans = 192

// epoch anchors the package's monotonic clock; span timestamps are
// nanoseconds since it, converted to trace-relative offsets at Emit.
var epoch = time.Now()

// pkgNow returns nanoseconds since the package epoch (monotonic).
func pkgNow() int64 { return int64(time.Since(epoch)) }

// Now reads the span clock without an Active — for code (the batcher
// worker) that timestamps work shared by several requests' collectors.
func Now() int64 { return pkgNow() }

// Active is one in-flight request's span collector: a fixed-size array
// whose slots are claimed with one atomic increment, so the engine's
// concurrent tile goroutines, the batcher worker, and the cache can all
// record into the same request without locks or allocations. Actives
// are pooled by their Store; after Finish the collector must not be
// touched (it may already belong to another request).
//
// All methods tolerate a nil receiver, so instrumentation points need
// no enabled-checks: a nil *Active records nothing.
type Active struct {
	store        *Store
	id           TraceID
	remoteParent uint64
	rootID       uint64
	t0           int64     // pkgNow at Start
	wall         time.Time // wall clock at Start, anchors exports
	n            atomic.Uint32
	dropped      atomic.Uint32
	force        atomic.Bool
	spans        [MaxSpans]SpanRec
}

// TraceID returns the request's 128-bit trace ID.
func (a *Active) TraceID() TraceID {
	if a == nil {
		return TraceID{}
	}
	return a.id
}

// Root returns the root span ID — the default parent for spans emitted
// by this process.
func (a *Active) Root() uint64 {
	if a == nil {
		return 0
	}
	return a.rootID
}

// Now returns the current time on the span clock. Pass the value back
// to Emit/EmitStage as a span's start.
func (a *Active) Now() int64 {
	if a == nil {
		return 0
	}
	return pkgNow()
}

// T0 returns the span-clock time at which the request started. Using it
// as the first stage span's start makes the stages tile from t=0, so
// per-stage attribution accounts dispatch overhead to the adjacent
// stage instead of losing it between spans.
func (a *Active) T0() int64 {
	if a == nil {
		return 0
	}
	return a.t0
}

// Traceparent formats the outbound traceparent header that parents a
// downstream process's spans under span ("" on a nil receiver).
func (a *Active) Traceparent(span uint64) string {
	if a == nil {
		return ""
	}
	return Traceparent(a.id, span)
}

// ForceKeep marks the trace as unconditionally interesting — the tail
// sampler retains it regardless of latency or sampling (the router sets
// it when a request needed a retry, so every replayed request is
// inspectable).
func (a *Active) ForceKeep() {
	if a != nil {
		a.force.Store(true)
	}
}

// Emit records one completed span: [start, end) on the span clock (a
// pair of Now values), with the given tree links and annotations. A
// full collector counts the span as dropped instead of storing it;
// neither path allocates.
func (a *Active) Emit(stage Stage, id, parent uint64, start, end, bytes int64, flags uint8, backend int16, extra int32) {
	if a == nil {
		return
	}
	idx := a.n.Add(1) - 1
	if idx >= MaxSpans {
		a.dropped.Add(1)
		return
	}
	s := &a.spans[idx]
	s.ID, s.Parent = id, parent
	s.Start, s.Dur = start-a.t0, end-start
	s.Bytes = bytes
	s.Stage, s.Flags, s.Backend, s.Extra = stage, flags, backend, extra
}

// EmitStage is the common case: mint a span ID, record [start, now) as
// a child of parent, and return the new span's ID.
func (a *Active) EmitStage(stage Stage, parent uint64, start, bytes int64) uint64 {
	if a == nil {
		return 0
	}
	id := NewSpanID()
	a.Emit(stage, id, parent, start, pkgNow(), bytes, 0, -1, 0)
	return id
}

// reset prepares a pooled collector for a new request.
func (a *Active) reset(id TraceID, remoteParent uint64) {
	a.id = id
	a.remoteParent = remoteParent
	a.rootID = NewSpanID()
	a.t0 = pkgNow()
	a.wall = time.Now()
	a.n.Store(0)
	a.dropped.Store(0)
	a.force.Store(false)
}

// ctxKey keys the Active in a request context.
type ctxKey struct{}

// NewContext returns ctx carrying a, so the engine, batcher, and cache
// layers can record into the request's trace without new plumbing.
func NewContext(ctx context.Context, a *Active) context.Context {
	if a == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, a)
}

// FromContext extracts the request's collector (nil when the request is
// untraced — every Active method tolerates that).
func FromContext(ctx context.Context) *Active {
	a, _ := ctx.Value(ctxKey{}).(*Active)
	return a
}
