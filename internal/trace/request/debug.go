package request

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
)

// AttrRow is one line of a trace's per-stage latency attribution.
type AttrRow struct {
	Label string  `json:"label"`
	Dur   int64   `json:"dur_ns"`
	Frac  float64 `json:"frac"` // of the request's wall time
}

// spanLabel groups spans for attribution: the stage name, annotated
// when the span was a hedge or was cancelled (cancelled spans still
// covered real wall time — a hedge loser that ran 40 ms explains 40 ms).
func spanLabel(s SpanRec) string {
	name := s.Stage.String()
	switch {
	case s.Flags&FlagCancelled != 0:
		return name + " (cancelled)"
	case s.Flags&FlagHedge != 0:
		return name + " (hedge)"
	}
	return name
}

// mergeLen returns the total length of the union of [start, end)
// intervals. ivs is sorted in place.
func mergeLen(ivs [][2]int64) int64 {
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i][0] < ivs[j][0] })
	var total int64
	curS, curE := ivs[0][0], ivs[0][1]
	for _, iv := range ivs[1:] {
		if iv[0] > curE {
			total += curE - curS
			curS, curE = iv[0], iv[1]
			continue
		}
		if iv[1] > curE {
			curE = iv[1]
		}
	}
	return total + (curE - curS)
}

// Attribution decomposes the trace's wall time into per-stage rows
// (merged intervals per label, so ten concurrent tile forwards count
// once) plus the covered fraction: union of all non-root span time over
// the request's wall time. Rows are sorted by duration, largest first.
func (t *Trace) Attribution() (rows []AttrRow, covered float64) {
	if t == nil || t.Dur <= 0 {
		return nil, 0
	}
	perLabel := make(map[string][][2]int64)
	var all [][2]int64
	for _, s := range t.Spans {
		if s.Stage == StageRoot {
			continue
		}
		iv := [2]int64{s.Start, s.Start + s.Dur}
		if iv[1] > t.Dur {
			iv[1] = t.Dur
		}
		if iv[0] < 0 {
			iv[0] = 0
		}
		if iv[1] <= iv[0] {
			continue
		}
		l := spanLabel(s)
		perLabel[l] = append(perLabel[l], iv)
		all = append(all, iv)
	}
	for label, ivs := range perLabel {
		d := mergeLen(ivs)
		rows = append(rows, AttrRow{Label: label, Dur: d, Frac: float64(d) / float64(t.Dur)})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Dur != rows[j].Dur {
			return rows[i].Dur > rows[j].Dur
		}
		return rows[i].Label < rows[j].Label
	})
	return rows, float64(mergeLen(all)) / float64(t.Dur)
}

// fmtMS renders nanoseconds as milliseconds with two decimals.
func fmtMS(ns int64) string { return fmt.Sprintf("%.2fms", float64(ns)/1e6) }

// Handler serves the store's retained traces: a plain-text "slowest
// requests with per-stage attribution" view by default, and
// Perfetto/Chrome-compatible trace JSON with ?format=perfetto (load the
// payload in ui.perfetto.dev or chrome://tracing).
func (s *Store) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		switch r.URL.Query().Get("format") {
		case "perfetto", "json":
			w.Header().Set("Content-Type", "application/json")
			s.writePerfetto(w)
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			s.writeText(w)
		}
	})
}

// writeText emits the sampling summary and the slowest ten retained
// requests, each decomposed into its per-stage attribution.
func (s *Store) writeText(w http.ResponseWriter) {
	st := s.Stats()
	cfg := s.Config()
	fmt.Fprintf(w, "request tracing: finished=%d kept=%d (error=%d retry=%d slow=%d sampled=%d) dropped_spans=%d\n",
		st.Finished, st.Kept(), st.KeptErrors, st.KeptRetried, st.KeptSlow, st.KeptSampled, st.DroppedSpans)
	fmt.Fprintf(w, "knobs: capacity=%d slow_pct=%g (threshold=%s) sample_rate=%g\n",
		cfg.Capacity, cfg.SlowPct, fmtMS(st.SlowThreshold), cfg.SampleRate)

	traces := s.Retained()
	fmt.Fprintf(w, "retained=%d\n", len(traces))
	sort.Slice(traces, func(i, j int) bool { return traces[i].Dur > traces[j].Dur })
	if len(traces) > 10 {
		traces = traces[:10]
	}
	if len(traces) > 0 {
		fmt.Fprintf(w, "\nslowest %d retained requests:\n", len(traces))
	}
	for _, t := range traces {
		fmt.Fprintf(w, "\ntrace %s status=%d kept=%s dur=%s spans=%d dropped=%d\n",
			t.ID, t.Status, t.KeptFor, fmtMS(t.Dur), len(t.Spans), t.Dropped)
		rows, covered := t.Attribution()
		for _, row := range rows {
			fmt.Fprintf(w, "  %-28s %10s %6.1f%%\n", row.Label, fmtMS(row.Dur), row.Frac*100)
		}
		fmt.Fprintf(w, "  %-28s %10s %6.1f%%\n", "(unattributed)", fmtMS(t.Dur-int64(covered*float64(t.Dur))), (1-covered)*100)
	}
}

// traceEvent is one Chrome trace_event record (the "JSON array format"
// Perfetto ingests directly).
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// writePerfetto exports every retained trace as one Perfetto "process":
// the root span on lane 0, concurrent spans (hedge attempts, tile
// forwards) fanned out to the first free lane so overlap is visible.
func (s *Store) writePerfetto(w http.ResponseWriter) {
	traces := s.Retained()
	sort.Slice(traces, func(i, j int) bool { return traces[i].Dur > traces[j].Dur })
	events := make([]traceEvent, 0, 64)
	for pid, t := range traces {
		base := float64(t.Wall.UnixNano()) / 1e3
		events = append(events, traceEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": fmt.Sprintf("trace %s · %d · kept=%s", t.ID, t.Status, t.KeptFor)},
		})

		// Greedy lane assignment: root pinned to lane 0, each other
		// span takes the first lane whose previous span has ended.
		spans := make([]SpanRec, len(t.Spans))
		copy(spans, t.Spans)
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		laneEnd := []int64{t.Dur} // lane 0 reserved for the root
		maxLane := 0
		for _, sp := range spans {
			lane := 0
			if sp.Stage != StageRoot {
				lane = -1
				for l := 1; l < len(laneEnd); l++ {
					if laneEnd[l] <= sp.Start {
						lane = l
						break
					}
				}
				if lane < 0 {
					lane = len(laneEnd)
					laneEnd = append(laneEnd, 0)
				}
				laneEnd[lane] = sp.Start + sp.Dur
				if lane > maxLane {
					maxLane = lane
				}
			}
			args := map[string]any{
				"trace_id": t.ID.String(),
				"span":     fmt.Sprintf("%016x", sp.ID),
				"parent":   fmt.Sprintf("%016x", sp.Parent),
			}
			if sp.Bytes > 0 {
				args["bytes"] = sp.Bytes
			}
			if sp.Backend >= 0 {
				args["backend"] = sp.Backend
			}
			if sp.Extra != 0 {
				args["extra"] = sp.Extra
			}
			name := spanLabel(sp)
			if sp.Flags&FlagWinner != 0 {
				name += " ★"
			}
			events = append(events, traceEvent{
				Name: name, Ph: "X",
				Ts: base + float64(sp.Start)/1e3, Dur: float64(sp.Dur) / 1e3,
				Pid: pid, Tid: lane, Args: args,
			})
		}
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": "request"},
		})
		for l := 1; l <= maxLane; l++ {
			events = append(events, traceEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: l,
				Args: map[string]any{"name": fmt.Sprintf("lane %d", l)},
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(map[string]any{"traceEvents": events})
}
