package request

import (
	"strings"
	"testing"
)

// TestTraceparentRoundTrip pins format → parse as the identity: the
// header the router sends is the trace the replica joins.
func TestTraceparentRoundTrip(t *testing.T) {
	for i := 0; i < 64; i++ {
		id, span := NewTraceID(), NewSpanID()
		h := Traceparent(id, span)
		if len(h) != traceparentLen {
			t.Fatalf("Traceparent %q has length %d, want %d", h, len(h), traceparentLen)
		}
		if !strings.HasPrefix(h, "00-") || !strings.HasSuffix(h, "-01") {
			t.Fatalf("Traceparent %q is not a version-00 sampled header", h)
		}
		gotID, gotSpan, ok := ParseTraceparent(h)
		if !ok || gotID != id || gotSpan != span {
			t.Fatalf("round trip %q → (%v, %x, %v), want (%v, %x, true)",
				h, gotID, gotSpan, ok, id, span)
		}
	}
	if h := Traceparent(TraceID{Hi: 0xdead, Lo: 0xbeef}, 0x1234); h !=
		"00-000000000000dead000000000000beef-0000000000001234-01" {
		t.Fatalf("fixed-point header %q", h)
	}
}

// TestParseTraceparentRejects tables the inputs the parser must refuse
// — malformed, all-zero, future-versioned — each of which Start must
// answer with a freshly minted trace, never a 4xx.
func TestParseTraceparentRejects(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if _, _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("canonical W3C example %q rejected", valid)
	}
	bad := map[string]string{
		"empty":             "",
		"truncated":         valid[:54],
		"trailing junk":     valid + "0",
		"zero trace id":     "00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"zero parent id":    "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		"future version":    "01-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"version ff":        "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"non-hex trace id":  "00-0af7651916cd43dd8448eb211c80319g-b7ad6b7169203331-01",
		"non-hex parent":    "00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333x-01",
		"non-hex flags":     "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-zz",
		"wrong separators":  "00_0af7651916cd43dd8448eb211c80319c_b7ad6b7169203331_01",
		"missing field":     "00-0af7651916cd43dd8448eb211c80319c-01",
		"spaces for dashes": "00 0af7651916cd43dd8448eb211c80319c b7ad6b7169203331 01",
		"uppercase version": "0A-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
	}
	for name, h := range bad {
		if id, par, ok := ParseTraceparent(h); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted → (%v, %x)", name, h, id, par)
		}
	}

	// The degraded path: a store handed garbage must mint fresh, and two
	// garbage headers must not collide on the same trace.
	s := NewStore(Config{SampleRate: -1, SlowPct: -1})
	a1 := s.Start("ff-garbage")
	a2 := s.Start("ff-garbage")
	if a1.TraceID().IsZero() || a2.TraceID().IsZero() {
		t.Fatal("malformed traceparent produced a zero trace ID instead of a fresh mint")
	}
	if a1.TraceID() == a2.TraceID() {
		t.Fatal("two malformed headers adopted the same trace ID")
	}
	s.Finish(a1, 200)
	s.Finish(a2, 200)

	// A valid header is adopted verbatim.
	a3 := s.Start(valid)
	if a3.TraceID().String() != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("valid traceparent not adopted: got trace %s", a3.TraceID())
	}
	s.Finish(a3, 200)
}

// TestIDUniqueness spot-checks the splitmix64 minter: no zero IDs, no
// immediate repeats across a healthy sample.
func TestIDUniqueness(t *testing.T) {
	seen := make(map[TraceID]bool, 4096)
	for i := 0; i < 4096; i++ {
		id := NewTraceID()
		if id.IsZero() {
			t.Fatal("minted the all-zero trace ID")
		}
		if seen[id] {
			t.Fatalf("trace ID %s minted twice", id)
		}
		seen[id] = true
	}
	spans := make(map[uint64]bool, 4096)
	for i := 0; i < 4096; i++ {
		id := NewSpanID()
		if id == 0 || spans[id] {
			t.Fatalf("span ID %x zero or repeated", id)
		}
		spans[id] = true
	}
}
