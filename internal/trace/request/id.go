// Package request is the per-request half of the tracing subsystem:
// where package trace answers "where did the training step go" with
// per-rank ring buffers, this package answers "why was this request
// slow" across the serving fleet.
//
// A 128-bit trace ID is minted at the fleet edge (or adopted from an
// incoming W3C `traceparent` header) and propagated over HTTP through
// sr-router → sr-serve → Engine.UpscaleCtx → batcher/cache, each layer
// emitting fixed-size spans into a pooled per-request collector
// (Active) with zero heap allocations on the hot path. When the
// request finishes, a tail sampler (Store) decides with the benefit of
// hindsight whether the trace was interesting — an error, a
// slowest-percentile straggler, a retried/hedged request, or a
// probabilistic sample — and only then pays for retention. Retained
// traces are served from /debug/traces as Perfetto-compatible JSON and
// as a plain-text "slowest requests with per-stage attribution" view,
// the serving-side analogue of the training path's hvprof bucket
// attribution.
package request

import (
	"os"
	"sync/atomic"
	"time"
)

// TraceID is a W3C-style 128-bit trace identifier.
type TraceID struct {
	Hi, Lo uint64
}

// IsZero reports whether the ID is the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t.Hi == 0 && t.Lo == 0 }

const hexDigits = "0123456789abcdef"

// appendHex64 writes v as 16 lowercase hex digits.
func appendHex64(dst []byte, v uint64) []byte {
	for shift := 60; shift >= 0; shift -= 4 {
		dst = append(dst, hexDigits[(v>>uint(shift))&0xf])
	}
	return dst
}

// String renders the ID as 32 lowercase hex digits (the traceparent
// trace-id field).
func (t TraceID) String() string {
	buf := make([]byte, 0, 32)
	buf = appendHex64(buf, t.Hi)
	buf = appendHex64(buf, t.Lo)
	return string(buf)
}

// idState seeds the process-local ID generator. Mixing the wall clock
// with the PID keeps replicas spawned in the same nanosecond (bench
// fleets) from colliding.
var idState atomic.Uint64

func init() {
	idState.Store(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<40)
}

// nextRand is a splitmix64 step over idState: one atomic add plus
// finalizer, so minting IDs is lock-free and allocation-free.
func nextRand() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewTraceID mints a random non-zero 128-bit trace ID.
func NewTraceID() TraceID {
	for {
		id := TraceID{Hi: nextRand(), Lo: nextRand()}
		if !id.IsZero() {
			return id
		}
	}
}

// NewSpanID mints a random non-zero 64-bit span ID. Span IDs are
// process-global so spans minted on the router and on a replica can
// never collide inside one merged trace tree.
func NewSpanID() uint64 {
	for {
		if id := nextRand(); id != 0 {
			return id
		}
	}
}

// traceparentLen is the fixed length of a version-00 traceparent:
// "00-" + 32 hex + "-" + 16 hex + "-" + 2 hex.
const traceparentLen = 55

// hexVal decodes one lowercase/uppercase hex digit; ok=false otherwise.
func hexVal(c byte) (uint64, bool) {
	switch {
	case c >= '0' && c <= '9':
		return uint64(c - '0'), true
	case c >= 'a' && c <= 'f':
		return uint64(c-'a') + 10, true
	case c >= 'A' && c <= 'F':
		return uint64(c-'A') + 10, true
	}
	return 0, false
}

// parseHex64 decodes s[off:off+16] as a big-endian hex uint64.
func parseHex64(s string, off int) (uint64, bool) {
	var v uint64
	for i := 0; i < 16; i++ {
		d, ok := hexVal(s[off+i])
		if !ok {
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// ParseTraceparent parses a W3C traceparent header ("00-<32 hex
// trace-id>-<16 hex parent-id>-<2 hex flags>") and returns the trace ID
// and the caller's span ID (the parent of everything this process
// records). ok is false — and the caller must mint a fresh trace, never
// reject the request — for malformed input, an all-zero trace or parent
// ID, and any version other than 00 (a future-version header may carry
// fields this parser cannot bound, so it conservatively restarts the
// trace rather than half-adopting it).
func ParseTraceparent(h string) (id TraceID, parent uint64, ok bool) {
	if len(h) != traceparentLen || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, 0, false
	}
	if h[0] != '0' || h[1] != '0' { // version 00 only; ff is invalid per spec
		return TraceID{}, 0, false
	}
	hi, ok1 := parseHex64(h, 3)
	lo, ok2 := parseHex64(h, 19)
	par, ok3 := parseHex64(h, 36)
	if _, ok4 := hexVal(h[53]); !ok4 {
		return TraceID{}, 0, false
	}
	if _, ok5 := hexVal(h[54]); !ok5 {
		return TraceID{}, 0, false
	}
	if !ok1 || !ok2 || !ok3 {
		return TraceID{}, 0, false
	}
	id = TraceID{Hi: hi, Lo: lo}
	if id.IsZero() || par == 0 {
		return TraceID{}, 0, false
	}
	return id, par, true
}

// Traceparent formats a version-00 traceparent header for an outbound
// request whose spans should parent under span. The sampled flag is
// always set: the receiver records unconditionally and tail-samples at
// its own edge.
func Traceparent(id TraceID, span uint64) string {
	buf := make([]byte, 0, traceparentLen)
	buf = append(buf, '0', '0', '-')
	buf = appendHex64(buf, id.Hi)
	buf = appendHex64(buf, id.Lo)
	buf = append(buf, '-')
	buf = appendHex64(buf, span)
	buf = append(buf, '-', '0', '1')
	return string(buf)
}
