package request

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// finishOne runs one Start → spans → Finish cycle against s and returns
// the keep verdict.
func finishOne(s *Store, status int, force bool, spanCount int) (TraceID, bool) {
	a := s.Start("")
	for i := 0; i < spanCount; i++ {
		start := a.Now()
		a.EmitStage(StageServeDecode, a.Root(), start, 64)
	}
	if force {
		a.ForceKeep()
	}
	return s.Finish(a, status)
}

// TestTailSamplingKeepClasses pins the verdict ladder: errors always
// kept, forced (retried) requests always kept, everything else dropped
// when sampling and the slow class are disabled.
func TestTailSamplingKeepClasses(t *testing.T) {
	s := NewStore(Config{Capacity: 16, SampleRate: -1, SlowPct: -1})

	if _, kept := finishOne(s, 200, false, 2); kept {
		t.Fatal("unremarkable 200 kept with sampling disabled")
	}
	for _, status := range []int{0, 499, 500, 503} {
		if _, kept := finishOne(s, status, false, 2); !kept {
			t.Fatalf("status %d not kept as an error", status)
		}
	}
	if _, kept := finishOne(s, 200, true, 2); !kept {
		t.Fatal("ForceKeep (retried request) not retained")
	}

	st := s.Stats()
	if st.Finished != 6 || st.KeptErrors != 4 || st.KeptRetried != 1 || st.KeptSampled != 0 || st.KeptSlow != 0 {
		t.Fatalf("stats %+v, want 6 finished / 4 errors / 1 retried", st)
	}
	for _, tr := range s.Retained() {
		if tr.KeptFor != KeptError && tr.KeptFor != KeptForced {
			t.Fatalf("retained trace kept for %q", tr.KeptFor)
		}
		if tr.Spans[0].Stage != StageRoot || tr.Spans[0].Extra != int32(tr.Status) {
			t.Fatalf("root span not sealed with status: %+v", tr.Spans[0])
		}
	}

	// SampleRate 1 keeps everything, deterministically in the trace ID.
	all := NewStore(Config{Capacity: 16, SampleRate: 1, SlowPct: -1})
	id, kept := finishOne(all, 200, false, 1)
	if !kept {
		t.Fatal("SampleRate 1 dropped a request")
	}
	if !all.sampleHit(id) {
		t.Fatal("sampleHit disagrees with the keep decision")
	}
	if s.sampleHit(id) {
		t.Fatal("sampleHit fired with probabilistic sampling disabled")
	}
}

// TestSlowClassRetainsTail warms the latency window with fast requests,
// then checks that an order-of-magnitude straggler is retained as
// "slow" once the threshold arms.
func TestSlowClassRetainsTail(t *testing.T) {
	s := NewStore(Config{Capacity: 512, SampleRate: -1, SlowPct: 90})

	// Warm the window past thresholdWarm with fast requests so the
	// threshold recompute arms.
	for i := 0; i < thresholdWarm+thresholdEvery; i++ {
		a := s.Start("")
		s.Finish(a, 200)
	}
	if s.Stats().SlowThreshold <= 0 {
		t.Fatal("slow threshold did not arm after warmup")
	}

	a := s.Start("")
	time.Sleep(20 * time.Millisecond) // ≫ any warmup request's wall time
	if _, kept := s.Finish(a, 200); !kept {
		t.Fatal("20ms straggler not retained above a microsecond-scale threshold")
	}
	traces := s.Retained()
	last := traces[len(traces)-1]
	if last.KeptFor != KeptSlow {
		t.Fatalf("straggler kept for %q, want %q", last.KeptFor, KeptSlow)
	}
}

// TestRetentionBounded pins the memory bound: the ring holds exactly
// Capacity traces, oldest evicted first.
func TestRetentionBounded(t *testing.T) {
	s := NewStore(Config{Capacity: 4, SampleRate: -1, SlowPct: -1})
	var ids []TraceID
	for i := 0; i < 10; i++ {
		id, kept := finishOne(s, 500, false, 1)
		if !kept {
			t.Fatal("error trace dropped")
		}
		ids = append(ids, id)
	}
	got := s.Retained()
	if len(got) != 4 {
		t.Fatalf("retained %d traces with capacity 4", len(got))
	}
	for i, tr := range got {
		if want := ids[len(ids)-4+i]; tr.ID != want {
			t.Fatalf("ring slot %d holds %s, want %s (oldest-first order)", i, tr.ID, want)
		}
	}
}

// TestSpanOverflowCountsDropped pins the fixed-size collector: spans
// past MaxSpans are counted, not stored, and nothing crashes.
func TestSpanOverflowCountsDropped(t *testing.T) {
	s := NewStore(Config{Capacity: 4, SampleRate: -1, SlowPct: -1})
	a := s.Start("")
	for i := 0; i < MaxSpans+10; i++ {
		a.EmitStage(StageServeForward, a.Root(), a.Now(), 0)
	}
	if _, kept := s.Finish(a, 500); !kept {
		t.Fatal("error trace dropped")
	}
	tr := s.Retained()[0]
	if tr.Dropped != 10 {
		t.Fatalf("dropped = %d, want 10", tr.Dropped)
	}
	if len(tr.Spans) != MaxSpans+1 { // +1 root
		t.Fatalf("stored %d spans, want %d", len(tr.Spans), MaxSpans+1)
	}
}

// TestAttributionMergesIntervals checks the attribution math on a
// hand-built trace: concurrent same-label spans merge (no double
// counting), cancelled hedges get their own label, covered is the
// union fraction.
func TestAttributionMergesIntervals(t *testing.T) {
	ms := int64(time.Millisecond)
	tr := &Trace{
		Dur: 100 * ms,
		Spans: []SpanRec{
			{Stage: StageRoot, Dur: 100 * ms},
			// Two overlapping forwards: [0,60) ∪ [40,80) = 80ms, not 100.
			{Stage: StageServeForward, Start: 0, Dur: 60 * ms},
			{Stage: StageServeForward, Start: 40 * ms, Dur: 40 * ms},
			// A cancelled hedge attempt gets its own label.
			{Stage: StageRouterAttempt, Start: 10 * ms, Dur: 30 * ms, Flags: FlagHedge | FlagCancelled},
			// A span leaking past the root is clamped to the wall time.
			{Stage: StageServeEncode, Start: 90 * ms, Dur: 20 * ms},
		},
	}
	rows, covered := tr.Attribution()
	byLabel := map[string]AttrRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	if r := byLabel["serve/forward"]; r.Dur != 80*ms {
		t.Fatalf("overlapping forwards attributed %v, want 80ms (merged union)", time.Duration(r.Dur))
	}
	if r := byLabel["router/attempt (cancelled)"]; r.Dur != 30*ms {
		t.Fatalf("cancelled hedge attributed %v, want 30ms under its own label", time.Duration(r.Dur))
	}
	if r := byLabel["serve/encode"]; r.Dur != 10*ms {
		t.Fatalf("overflowing span attributed %v, want clamped 10ms", time.Duration(r.Dur))
	}
	// Union: [0,80) ∪ [90,100) = 90ms of 100ms.
	if covered < 0.899 || covered > 0.901 {
		t.Fatalf("covered %.3f, want 0.9", covered)
	}
	if rows[0].Label != "serve/forward" {
		t.Fatalf("rows not sorted by duration: first is %q", rows[0].Label)
	}
}

// TestDebugHandler exercises /debug/traces in both formats plus the
// method guard.
func TestDebugHandler(t *testing.T) {
	s := NewStore(Config{Capacity: 8, SampleRate: -1, SlowPct: -1})
	id, _ := finishOne(s, 500, false, 3)
	h := s.Handler()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), id.String()) {
		t.Fatalf("text view %d, missing trace %s:\n%s", rr.Code, id, rr.Body.String())
	}
	if !strings.Contains(rr.Body.String(), "serve/decode") {
		t.Fatalf("text view lacks per-stage attribution:\n%s", rr.Body.String())
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/debug/traces?format=perfetto", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("perfetto view Content-Type %q", ct)
	}
	var payload struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &payload); err != nil {
		t.Fatalf("perfetto output is not JSON: %v", err)
	}
	var complete, meta int
	for _, e := range payload.TraceEvents {
		switch e.Ph {
		case "X":
			complete++
		case "M":
			meta++
		}
	}
	if complete != 4 || meta == 0 { // root + 3 decode spans
		t.Fatalf("perfetto events: %d complete / %d metadata, want 4 / >0", complete, meta)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/debug/traces", nil))
	if rr.Code != http.StatusMethodNotAllowed || rr.Header().Get("Allow") != http.MethodGet {
		t.Fatalf("POST /debug/traces: %d Allow=%q", rr.Code, rr.Header().Get("Allow"))
	}
}

// TestSampledOutFastPathNoAllocs enforces the package's core
// performance contract: a request that the tail sampler drops — the
// overwhelming majority in production — must complete its entire
// Start → Emit×N → Finish cycle without a single heap allocation.
func TestSampledOutFastPathNoAllocs(t *testing.T) {
	s := NewStore(Config{Capacity: 16, SampleRate: -1, SlowPct: -1})
	allocs := testing.AllocsPerRun(200, func() {
		a := s.Start("")
		root := a.Root()
		start := a.Now()
		a.Emit(StageServeDecode, NewSpanID(), root, start, a.Now(), 4096, 0, -1, 0)
		a.Emit(StageServeQueue, NewSpanID(), root, start, a.Now(), 0, 0, -1, 0)
		a.Emit(StageServeForward, NewSpanID(), root, start, a.Now(), 4096, 0, -1, 4)
		a.Emit(StageServeEncode, NewSpanID(), root, start, a.Now(), 8192, 0, -1, 0)
		if _, kept := s.Finish(a, 200); kept {
			t.Fatal("fast-path request unexpectedly retained")
		}
	})
	if allocs != 0 {
		t.Fatalf("sampled-out fast path allocates %.1f times per request, want 0", allocs)
	}

	// The same holds when joining an existing trace from a header.
	tp := Traceparent(NewTraceID(), NewSpanID())
	allocs = testing.AllocsPerRun(200, func() {
		a := s.Start(tp)
		a.EmitStage(StageServeDecode, a.Root(), a.Now(), 64)
		s.Finish(a, 200)
	})
	if allocs != 0 {
		t.Fatalf("joined-trace fast path allocates %.1f times per request, want 0", allocs)
	}
}
