package request

// Stage names one attributable phase of a request's life. The router
// and replica stages together partition a routed request's wall time;
// the attribution view (Trace.Attribution) groups spans by stage so a
// slow request decomposes into "where the milliseconds went".
type Stage uint8

const (
	// StageRoot is the request's root span: handler entry to response
	// written, one per process the request crossed.
	StageRoot Stage = iota

	// Router-side stages (internal/router).
	StageRouterLimiter   // token-bucket admission check
	StageRouterReadBody  // buffering the upload for replay
	StageRouterPlacement // picking a backend
	StageRouterAttempt   // one proxied exchange (hedges and retries are separate spans)
	StageRouterWrite     // copying the winning response to the client

	// Replica-side stages (internal/serve).
	StageServeDecode    // PNG decode + validation
	StageServeQueue     // waiting in the batcher queue for a worker
	StageServeBatchWait // held in an open batch waiting for followers
	StageServeForward   // the coalesced model forward
	StageServeStitch    // stitching tile results into the output
	StageServeEncode    // PNG encode of the response

	// Result-cache stages (internal/serve/cache).
	StageServeCacheHit  // content-addressed hit: the copy-out
	StageServeCacheMiss // the lookup that found nothing
	StageServeCacheWait // parked on another request's in-flight forward

	numStages
)

var stageNames = [numStages]string{
	"root",
	"router/limiter",
	"router/read-body",
	"router/placement",
	"router/attempt",
	"router/write",
	"serve/decode",
	"serve/queue",
	"serve/batch-wait",
	"serve/forward",
	"serve/stitch",
	"serve/encode",
	"serve/cache-hit",
	"serve/cache-miss",
	"serve/cache-wait",
}

// String returns the stage's canonical name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "other"
}

// Span flags.
const (
	// FlagWinner marks the attempt whose response was written back.
	FlagWinner uint8 = 1 << iota
	// FlagHedge marks an attempt launched by the hedge timer.
	FlagHedge
	// FlagCancelled marks a span cut short because its work became
	// irrelevant (a hedge loser, a waiter whose client disconnected).
	FlagCancelled
	// FlagError marks an attempt that failed (transport error or a
	// retryable status).
	FlagError
)

// SpanRec is one fixed-size span record. Start and Dur are nanoseconds
// relative to the owning trace's start, so a retained trace is
// self-contained; the Store anchors it to the wall clock for export.
type SpanRec struct {
	// ID and Parent link the span tree. The root span's Parent is the
	// remote parent from the incoming traceparent (0 at the edge).
	ID, Parent uint64
	Start, Dur int64
	// Bytes is the payload size the span covered, when meaningful.
	Bytes int64
	Stage Stage
	Flags uint8
	// Backend is the router-side backend index (-1 when not applicable).
	Backend int16
	// Extra carries per-stage detail: HTTP status for router attempts,
	// batch size for serve/forward spans.
	Extra int32
}
