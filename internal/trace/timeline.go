package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/hvprof"
)

// RankTrace is one rank's portion of the merged timeline.
type RankTrace struct {
	Rank    int
	Dropped uint64
	Spans   []Span
}

// Timeline is the merged, per-rank view of a traced run.
type Timeline struct {
	Ranks []RankTrace
}

// sort orders ranks by id and each rank's spans by start time.
func (t *Timeline) sort() {
	sort.Slice(t.Ranks, func(i, j int) bool { return t.Ranks[i].Rank < t.Ranks[j].Rank })
	for _, rt := range t.Ranks {
		spans := rt.Spans
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	}
}

// NumSpans counts spans across all ranks.
func (t *Timeline) NumSpans() int {
	n := 0
	for _, rt := range t.Ranks {
		n += len(rt.Spans)
	}
	return n
}

// traceEvent is one entry of the Chrome trace_event JSON format
// (loadable in Perfetto and chrome://tracing). ts and dur are
// microseconds; pid is the rank, tid the goroutine track.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the timeline in Chrome trace_event JSON: one
// process per rank, one thread per goroutine track ("trainer" and
// "horovod-engine"), complete ("X") events for timed spans and instant
// ("i") events for zero-duration markers like grad-hook submissions.
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	var evs []traceEvent
	for _, rt := range t.Ranks {
		evs = append(evs, traceEvent{
			Name: "process_name", Ph: "M", Pid: rt.Rank,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", rt.Rank)},
		})
		tracks := map[Track]bool{}
		for _, s := range rt.Spans {
			tracks[s.Track] = true
		}
		for track := range tracks {
			evs = append(evs, traceEvent{
				Name: "thread_name", Ph: "M", Pid: rt.Rank, Tid: int(track),
				Args: map[string]any{"name": track.String()},
			})
		}
		for _, s := range rt.Spans {
			ev := traceEvent{
				Name: s.Cat.String(),
				Cat:  s.Cat.Group(),
				Pid:  rt.Rank,
				Tid:  int(s.Track),
				Ts:   float64(s.Start) / 1e3,
			}
			if s.Dur > 0 {
				ev.Ph = "X"
				ev.Dur = float64(s.Dur) / 1e3
			} else {
				ev.Ph = "i"
				ev.S = "t"
			}
			if s.Bytes > 0 {
				ev.Args = map[string]any{"bytes": s.Bytes}
			}
			evs = append(evs, ev)
		}
	}
	// Sort metadata first, then by time, so viewers label tracks before
	// the first sample arrives.
	sort.SliceStable(evs, func(i, j int) bool {
		mi, mj := evs[i].Ph == "M", evs[j].Ph == "M"
		if mi != mj {
			return mi
		}
		return evs[i].Ts < evs[j].Ts
	})
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// jsonlSpan is the line format of the JSONL span stream consumed by
// cmd/hvprof-report.
type jsonlSpan struct {
	Rank    int    `json:"rank"`
	Track   uint8  `json:"track"`
	Cat     string `json:"cat"`
	StartNs int64  `json:"start_ns"`
	DurNs   int64  `json:"dur_ns"`
	Bytes   int64  `json:"bytes,omitempty"`
}

// WriteJSONL exports every span as one JSON object per line
// (rank, track, cat, start_ns, dur_ns, bytes).
func (t *Timeline) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rt := range t.Ranks {
		for _, s := range rt.Spans {
			if err := enc.Encode(jsonlSpan{
				Rank:    rt.Rank,
				Track:   uint8(s.Track),
				Cat:     s.Cat.String(),
				StartNs: s.Start,
				DurNs:   s.Dur,
				Bytes:   s.Bytes,
			}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL span stream back into a timeline.
func ReadJSONL(r io.Reader) (*Timeline, error) {
	byRank := map[int]*RankTrace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var js jsonlSpan
		if err := json.Unmarshal(sc.Bytes(), &js); err != nil {
			return nil, fmt.Errorf("trace: JSONL line %d: %w", line, err)
		}
		rt, ok := byRank[js.Rank]
		if !ok {
			rt = &RankTrace{Rank: js.Rank}
			byRank[js.Rank] = rt
		}
		rt.Spans = append(rt.Spans, Span{
			Cat:   CategoryOf(js.Cat),
			Track: Track(js.Track),
			Start: js.StartNs,
			Dur:   js.DurNs,
			Bytes: js.Bytes,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	t := &Timeline{}
	for _, rt := range byRank {
		t.Ranks = append(t.Ranks, *rt)
	}
	t.sort()
	return t, nil
}

// Replay feeds every MPI-collective span into p — the hvprof.Profiler
// interface — deriving the bucket report from the very spans the
// timeline renders. This is the adapter that keeps the Table I tables
// and the trace a single source of truth: there is no second
// instrumentation path to drift from.
func (t *Timeline) Replay(p interface {
	Record(op string, bytes int64, seconds float64)
}) {
	for _, rt := range t.Ranks {
		for _, s := range rt.Spans {
			if op, ok := s.Cat.HvprofOp(); ok {
				p.Record(op, s.Bytes, float64(s.Dur)/1e9)
			}
		}
	}
}

// HvprofReport builds the hvprof bucket report from the timeline's
// collective spans (all ranks merged, like a shared profiler).
func (t *Timeline) HvprofReport() hvprof.Report {
	p := hvprof.New()
	t.Replay(p)
	return p.Report()
}

// OverlapStats quantifies how much allreduce time the backward pass
// hides on one rank: the paper's overlap question ("does submitting
// gradients during backward actually overlap communication with
// compute?") answered from the trace itself.
type OverlapStats struct {
	Rank int
	// BackwardSec is total backward-phase time on the trainer track.
	BackwardSec float64
	// AllreduceSec is total allreduce time on the engine track.
	AllreduceSec float64
	// OverlapSec is the wall-clock intersection of the two.
	OverlapSec float64
	// HiddenFrac is OverlapSec / AllreduceSec (0 when no allreduce ran):
	// the fraction of communication hidden behind backward compute.
	HiddenFrac float64
	// DrainSec is total drain (exposed communication) time.
	DrainSec float64
}

// Overlap computes OverlapStats for one rank.
func (t *Timeline) Overlap(rank int) OverlapStats {
	st := OverlapStats{Rank: rank}
	var backward, allreduce [][2]int64
	for _, rt := range t.Ranks {
		if rt.Rank != rank {
			continue
		}
		for _, s := range rt.Spans {
			switch {
			case s.Cat == CatBackward && s.Track == TrackMain:
				backward = append(backward, [2]int64{s.Start, s.Start + s.Dur})
			case s.Track == TrackEngine &&
				(s.Cat == CatAllreduceRing || s.Cat == CatAllreduceRecDbl || s.Cat == CatAllreduceNaive):
				allreduce = append(allreduce, [2]int64{s.Start, s.Start + s.Dur})
			case s.Cat == CatDrain:
				st.DrainSec += float64(s.Dur) / 1e9
			}
		}
	}
	backward = mergeIntervals(backward)
	allreduce = mergeIntervals(allreduce)
	st.BackwardSec = totalSec(backward)
	st.AllreduceSec = totalSec(allreduce)
	st.OverlapSec = intersectSec(backward, allreduce)
	if st.AllreduceSec > 0 {
		st.HiddenFrac = st.OverlapSec / st.AllreduceSec
	}
	return st
}

// FormatOverlap renders one rank's overlap verdict.
func FormatOverlap(st OverlapStats) string {
	return fmt.Sprintf(
		"rank %d: backward %.1fms, allreduce %.1fms, overlapped %.1fms (%.0f%% of comm hidden), drain %.1fms exposed",
		st.Rank, st.BackwardSec*1e3, st.AllreduceSec*1e3, st.OverlapSec*1e3,
		st.HiddenFrac*100, st.DrainSec*1e3)
}

// mergeIntervals sorts and coalesces overlapping [start, end) intervals.
func mergeIntervals(iv [][2]int64) [][2]int64 {
	if len(iv) == 0 {
		return iv
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i][0] < iv[j][0] })
	out := iv[:1]
	for _, x := range iv[1:] {
		last := &out[len(out)-1]
		if x[0] <= last[1] {
			if x[1] > last[1] {
				last[1] = x[1]
			}
		} else {
			out = append(out, x)
		}
	}
	return out
}

func totalSec(iv [][2]int64) float64 {
	var ns int64
	for _, x := range iv {
		ns += x[1] - x[0]
	}
	return float64(ns) / 1e9
}

// intersectSec returns the total intersection of two merged interval
// sets in seconds.
func intersectSec(a, b [][2]int64) float64 {
	var ns int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := max64(a[i][0], b[j][0])
		hi := min64(a[i][1], b[j][1])
		if hi > lo {
			ns += hi - lo
		}
		if a[i][1] < b[j][1] {
			i++
		} else {
			j++
		}
	}
	return float64(ns) / 1e9
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
