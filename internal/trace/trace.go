// Package trace is the structured tracing and live-metrics subsystem:
// the measurement layer that spans trainer → horovod engine → mpi
// collectives. It is the in-repo analogue of Horovod's timeline and the
// paper's hvprof methodology (profile first, optimize second): every
// phase of a training step — forward, backward, per-parameter grad
// hooks, the engine's negotiate/allreduce rounds, drain, checkpoints,
// elastic restarts — is recorded as a fixed-size span in a per-rank
// ring buffer with zero heap allocations on the hot path.
//
// At run end the per-rank recorders are gathered over MPI (see Gather)
// and merged into one Timeline, exported as Chrome trace_event JSON
// (one track per rank plus one per engine background goroutine, viewable
// in Perfetto) and as JSONL for cmd/hvprof-report. The hvprof bucket
// tables are *derived from the same spans* (Timeline.Replay), so the
// Table I report and the timeline can never diverge.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Category classifies a span. The MPI-collective categories carry the
// allreduce algorithm so the timeline can distinguish ring from
// recursive-doubling rounds; Category.HvprofOp folds them back to the
// operation names the hvprof bucket tables use.
type Category uint8

// Span categories, trainer → engine → collectives.
const (
	// CatOther is the fallback for unrecognized op names.
	CatOther Category = iota
	// CatStep covers one full optimization step (data load excluded).
	CatStep
	// CatForward and CatBackward are the model's compute phases.
	CatForward
	CatBackward
	// CatGradHook marks the instant a parameter's gradient became final
	// and was submitted to the engine (zero-duration span).
	CatGradHook
	// CatNegotiate is the engine's readiness-mask min-allreduce.
	CatNegotiate
	// Allreduce spans, split by algorithm.
	CatAllreduceRing
	CatAllreduceRecDbl
	CatAllreduceNaive
	// Remaining MPI collectives.
	CatBcast
	CatBarrier
	CatGather
	CatAllgather
	// CatFusedReduce covers one engine fusion-group reduction (copy-in,
	// allreduce, average, scatter-back); the inner allreduce span nests
	// inside it on the engine track.
	CatFusedReduce
	// CatDrain is the optimizer's wait for outstanding reductions — the
	// exposed (non-overlapped) communication window of a step.
	CatDrain
	// CatCheckpoint covers writing a distributed checkpoint.
	CatCheckpoint
	// CatRestart marks an elastic restart boundary (state restore after
	// a rank failure).
	CatRestart
	// Serving-path categories (internal/serve): one HTTP upscale request
	// end to end, one coalesced micro-batch forward, and the time a
	// request spent queued before a worker picked it up.
	CatServeRequest
	CatServeBatch
	CatServeQueue
	// CatServeCache covers result-cache activity on the serving path: a
	// content-addressed hit (the span is the copy-out) or the time a
	// request spent parked on another request's in-flight forward
	// (singleflight wait).
	CatServeCache
	// CatRouterProxy covers one routed upscale request at the fleet
	// router (internal/router): placement, the proxied backend exchange,
	// and any hedged or retried attempts until a response was written
	// back to the client.
	CatRouterProxy
	// Compressed-allreduce spans (appended — category values are wire
	// format for recorded traces, so new entries only ever go at the
	// end): fp16-packed ring, top-k sparsified ring with error feedback,
	// and the two-level node-aware hierarchy.
	CatAllreduceFP16
	CatAllreduceTopK
	CatAllreduceHier

	numCategories
)

var catNames = [numCategories]string{
	"other",
	"step",
	"forward",
	"backward",
	"grad-hook",
	"negotiate",
	"allreduce/ring",
	"allreduce/recursive-doubling",
	"allreduce/naive",
	"bcast",
	"barrier",
	"gather",
	"allgather",
	"fused-reduce",
	"drain",
	"checkpoint",
	"restart",
	"serve/request",
	"serve/batch",
	"serve/queue",
	"serve/cache",
	"router/proxy",
	"allreduce/fp16",
	"allreduce/topk",
	"allreduce/hier",
}

// String returns the category's canonical op name.
func (c Category) String() string {
	if int(c) < len(catNames) {
		return catNames[c]
	}
	return "other"
}

// catByName inverts catNames for CategoryOf.
var catByName = func() map[string]Category {
	m := make(map[string]Category, numCategories)
	for i, n := range catNames {
		m[n] = Category(i)
	}
	return m
}()

// CategoryOf maps an op name (the strings the mpi layer and the JSONL
// stream carry) to its category; unknown names map to CatOther.
func CategoryOf(op string) Category {
	if c, ok := catByName[op]; ok {
		return c
	}
	return CatOther
}

// HvprofOp returns the hvprof bucket-table operation a category feeds
// and whether it is an MPI collective at all. All allreduce algorithms
// fold into "allreduce", matching the ops internal/hvprof aggregates.
func (c Category) HvprofOp() (string, bool) {
	switch c {
	case CatAllreduceRing, CatAllreduceRecDbl, CatAllreduceNaive,
		CatAllreduceFP16, CatAllreduceTopK, CatAllreduceHier:
		return "allreduce", true
	case CatNegotiate:
		return "negotiate", true
	case CatBcast:
		return "bcast", true
	case CatBarrier:
		return "barrier", true
	case CatGather:
		return "gather", true
	case CatAllgather:
		return "allgather", true
	}
	return "", false
}

// Group returns the Chrome-trace "cat" grouping for the category.
func (c Category) Group() string {
	switch c {
	case CatStep, CatForward, CatBackward:
		return "compute"
	case CatNegotiate, CatAllreduceRing, CatAllreduceRecDbl, CatAllreduceNaive,
		CatAllreduceFP16, CatAllreduceTopK, CatAllreduceHier,
		CatBcast, CatBarrier, CatGather, CatAllgather:
		return "mpi"
	case CatGradHook, CatFusedReduce, CatDrain:
		return "engine"
	case CatCheckpoint, CatRestart:
		return "lifecycle"
	case CatServeRequest, CatServeBatch, CatServeQueue, CatServeCache:
		return "serve"
	case CatRouterProxy:
		return "router"
	}
	return "other"
}

// Track identifies the goroutine lane a span belongs to within a rank.
type Track uint8

const (
	// TrackMain is the rank's training-loop goroutine.
	TrackMain Track = 0
	// TrackEngine is the rank's Horovod background engine goroutine.
	TrackEngine Track = 1
)

// String names the track for trace viewers.
func (t Track) String() string {
	if t == TrackEngine {
		return "horovod-engine"
	}
	return "trainer"
}

// Span is one fixed-size timed record. Start is nanoseconds since the
// owning Session's epoch (a monotonic clock shared by all ranks of an
// in-process world, so merged timelines are aligned without skew
// correction).
type Span struct {
	Cat   Category
	Track Track
	Start int64
	Dur   int64
	Bytes int64
}

// DefaultCapacity is the per-rank span buffer size when a Session is
// created with capacity <= 0: 64Ki spans ≈ 2.5 MB per rank.
const DefaultCapacity = 64 << 10

// Recorder is one rank's span buffer. The hot path (Now, Emit, and the
// Sink adapter) is lock-free and allocation-free: a slot is claimed with
// one atomic increment and written in place; when the buffer is full new
// spans are counted as dropped rather than overwriting older ones (an
// overwrite would race a slow writer against a wrapped-around claimant).
//
// The zero slots past the claimed index are never handed out, so
// concurrent Emits from the trainer and engine goroutines write disjoint
// memory; Spans must only be called after the writers have quiesced
// (run end), which is when Gather runs.
type Recorder struct {
	rank    int
	epoch   time.Time
	next    atomic.Uint64
	dropped atomic.Uint64
	spans   []Span
}

// NewRecorder creates a standalone recorder (tests, single-process
// runs). Training runs normally obtain recorders from a Session so all
// ranks share one epoch.
func NewRecorder(rank, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{rank: rank, epoch: time.Now(), spans: make([]Span, capacity)}
}

// Rank returns the rank this recorder belongs to.
func (r *Recorder) Rank() int {
	if r == nil {
		return 0
	}
	return r.rank
}

// Now returns nanoseconds since the recorder's epoch on the monotonic
// clock. Safe on a nil recorder (returns 0), so instrumentation points
// need no enabled-check.
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.epoch))
}

// Emit records a span of category cat on track that began at start (a
// value from Now) and ends now. Nil-recorder and full-buffer calls are
// no-ops; neither allocates.
func (r *Recorder) Emit(cat Category, track Track, start, bytes int64) {
	if r == nil {
		return
	}
	r.emit(cat, track, start, r.Now()-start, bytes)
}

// EmitInstant records a zero-duration marker (rendered as an instant
// event in Chrome traces).
func (r *Recorder) EmitInstant(cat Category, track Track, bytes int64) {
	if r == nil {
		return
	}
	r.emit(cat, track, r.Now(), 0, bytes)
}

func (r *Recorder) emit(cat Category, track Track, start, dur, bytes int64) {
	idx := r.next.Add(1) - 1
	if idx >= uint64(len(r.spans)) {
		r.dropped.Add(1)
		return
	}
	s := &r.spans[idx]
	s.Cat = cat
	s.Track = track
	s.Start = start
	s.Dur = dur
	s.Bytes = bytes
}

// Len returns the number of recorded (non-dropped) spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := r.next.Load()
	if n > uint64(len(r.spans)) {
		return len(r.spans)
	}
	return int(n)
}

// Dropped returns how many spans were discarded because the buffer was
// full.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// Spans returns a snapshot of the recorded spans. Call only after the
// recording goroutines have quiesced.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return append([]Span(nil), r.spans[:r.Len()]...)
}

// Sink binds a recorder to one track and adapts it to the mpi.Tracer
// interface: the communication layer reports (op, bytes, duration)
// triples ending now, and the sink back-dates the span start so the
// collectives appear with their true extent on the timeline.
type Sink struct {
	r     *Recorder
	track Track
}

// Sink returns the recorder's adapter for the given track. A nil
// recorder yields a nil sink whose RecordSpan is a no-op, so callers may
// install it unconditionally.
func (r *Recorder) Sink(track Track) *Sink {
	if r == nil {
		return nil
	}
	return &Sink{r: r, track: track}
}

// RecordSpan implements mpi.Tracer: a collective of the given op and
// payload finished just now after running for dur.
func (s *Sink) RecordSpan(op string, bytes int64, dur time.Duration) {
	if s == nil || s.r == nil {
		return
	}
	now := s.r.Now()
	s.r.emit(CategoryOf(op), s.track, now-int64(dur), int64(dur), bytes)
}

// Session owns the tracing state of one training run: per-rank
// recorders sharing a single epoch, and — after Gather — the merged
// global timeline.
type Session struct {
	capacity int
	epoch    time.Time

	mu       sync.Mutex
	recs     map[int]*Recorder
	gathered *Timeline
}

// NewSession creates a tracing session; capacityPerRank <= 0 selects
// DefaultCapacity.
func NewSession(capacityPerRank int) *Session {
	if capacityPerRank <= 0 {
		capacityPerRank = DefaultCapacity
	}
	return &Session{capacity: capacityPerRank, epoch: time.Now(), recs: map[int]*Recorder{}}
}

// Recorder returns (creating on first use) the recorder for one rank.
// Safe to call from concurrent rank goroutines; nil sessions return a
// nil recorder, which every Recorder method tolerates.
func (s *Session) Recorder(rank int) *Recorder {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.recs[rank]
	if !ok {
		r = &Recorder{rank: rank, epoch: s.epoch, spans: make([]Span, s.capacity)}
		s.recs[rank] = r
	}
	return r
}

// Timeline merges the session's spans into one global timeline. If the
// run ended with a Gather, the MPI-gathered merge is returned; otherwise
// the recorders are assembled locally (the ranks share this process's
// address space, so the local view is complete — Gather exists so the
// merge path matches what a multi-process deployment would run).
func (s *Session) Timeline() *Timeline {
	if s == nil {
		return &Timeline{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gathered != nil {
		// An elastic run can shrink its world between attempts: ranks
		// that died before the final gather exist only as local
		// recorders. Fold them in so their pre-failure spans survive.
		t := &Timeline{Ranks: append([]RankTrace(nil), s.gathered.Ranks...)}
		have := map[int]bool{}
		for _, rt := range t.Ranks {
			have[rt.Rank] = true
		}
		for rank, r := range s.recs {
			if !have[rank] {
				t.Ranks = append(t.Ranks, RankTrace{Rank: rank, Dropped: r.Dropped(), Spans: r.Spans()})
			}
		}
		t.sort()
		return t
	}
	return s.localTimeline()
}

// localTimeline assembles a timeline from the in-process recorders.
// Caller holds s.mu.
func (s *Session) localTimeline() *Timeline {
	t := &Timeline{}
	for rank := range s.recs {
		t.Ranks = append(t.Ranks, RankTrace{
			Rank:    rank,
			Dropped: s.recs[rank].Dropped(),
			Spans:   s.recs[rank].Spans(),
		})
	}
	t.sort()
	return t
}

// setGathered stores the MPI-merged timeline (root rank only).
func (s *Session) setGathered(t *Timeline) {
	s.mu.Lock()
	s.gathered = t
	s.mu.Unlock()
}

// GobEncode and GobDecode make Session gob-inert. A Session rides
// along in trainer.Config, which checkpoint structs embed; the trainer
// nils the field before encoding, but gob's type analysis still
// requires every field type to be encodable, and an unexported-only
// struct is not. Encoding a session yields nothing; decoding restores
// nothing — tracing state is runtime-only by design.
func (s *Session) GobEncode() ([]byte, error) { return nil, nil }

// GobDecode implements gob.GobDecoder as a no-op (see GobEncode).
func (s *Session) GobDecode([]byte) error { return nil }
