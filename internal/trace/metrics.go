package trace

import (
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is a registry of counters, gauges, and histograms rendered in
// Prometheus text exposition format. Registration takes a lock; the
// instruments themselves are single atomics (or atomic arrays), so
// updating them from the training hot path is lock-free and
// allocation-free.
type Metrics struct {
	mu   sync.Mutex
	fams []*family
}

type family struct {
	name, help, typ string
	c               *Counter
	g               *Gauge
	h               *Histogram
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add increases the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative buckets (Prometheus
// histogram semantics: bucket i counts observations ≤ edges[i], plus an
// implicit +Inf bucket) and tracks the sum of observed values.
type Histogram struct {
	edges   []float64
	counts  []atomic.Int64 // len(edges)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.edges) && v > h.edges[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Counter registers (or returns the existing) counter with this name.
func (m *Metrics) Counter(name, help string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if f := m.find(name); f != nil {
		return f.c
	}
	f := &family{name: name, help: help, typ: "counter", c: &Counter{}}
	m.fams = append(m.fams, f)
	return f.c
}

// Gauge registers (or returns the existing) gauge with this name.
func (m *Metrics) Gauge(name, help string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if f := m.find(name); f != nil {
		return f.g
	}
	f := &family{name: name, help: help, typ: "gauge", g: &Gauge{}}
	m.fams = append(m.fams, f)
	return f.g
}

// Histogram registers (or returns the existing) histogram with the
// given ascending bucket upper bounds.
func (m *Metrics) Histogram(name, help string, buckets []float64) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if f := m.find(name); f != nil {
		return f.h
	}
	edges := append([]float64(nil), buckets...)
	sort.Float64s(edges)
	f := &family{name: name, help: help, typ: "histogram",
		h: &Histogram{edges: edges, counts: make([]atomic.Int64, len(edges)+1)}}
	m.fams = append(m.fams, f)
	return f.h
}

// find returns the family with the given name; caller holds m.mu.
func (m *Metrics) find(name string) *family {
	for _, f := range m.fams {
		if f.name == name {
			return f
		}
	}
	return nil
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (the format scraped from /metrics).
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	fams := append([]*family(nil), m.fams...)
	m.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		var err error
		switch f.typ {
		case "counter":
			_, err = fmt.Fprintf(w, "%s %d\n", f.name, f.c.Value())
		case "gauge":
			_, err = fmt.Fprintf(w, "%s %g\n", f.name, f.g.Value())
		case "histogram":
			var cum int64
			for i, edge := range f.h.edges {
				cum += f.h.counts[i].Load()
				if _, err = fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", f.name, edge, cum); err != nil {
					return err
				}
			}
			cum += f.h.counts[len(f.h.edges)].Load()
			_, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
				f.name, cum, f.name, f.h.Sum(), f.name, f.h.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry at any path (mount it at /metrics).
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = m.WritePrometheus(w)
	})
}

// MetricsServer is a live observability endpoint: /metrics in
// Prometheus format plus the full /debug/pprof suite.
type MetricsServer struct {
	srv *http.Server
	ln  net.Listener
}

// ServeMetrics starts the endpoint on addr (e.g. ":9090"; ":0" picks a
// free port) and serves in a background goroutine until Close.
func ServeMetrics(addr string, m *Metrics) (*MetricsServer, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", m.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("trace: metrics endpoint: %w", err)
	}
	s := &MetricsServer{srv: &http.Server{Handler: mux}, ln: ln}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *MetricsServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *MetricsServer) Close() error { return s.srv.Close() }

// DurationBuckets are generic latency bucket bounds in seconds
// (100 µs … 30 s).
var DurationBuckets = []float64{
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// MessageBuckets mirror the hvprof Table I size classes (bytes).
var MessageBuckets = []float64{
	128 << 10, // 128 KB
	16 << 20,  // 16 MB
	32 << 20,  // 32 MB
	64 << 20,  // 64 MB
}

// TrainMetrics bundles the live training instruments the trainer, the
// Horovod engine, and the elastic driver update. All fields tolerate a
// nil receiver, and NewTrainMetrics(nil) returns nil, so instrumented
// code needs no enabled-checks.
type TrainMetrics struct {
	// Steps and Images count completed optimization steps and globally
	// processed images (rank 0 updates them).
	Steps  *Counter
	Images *Counter
	// BytesReduced totals gradient bytes through the engine's allreduce;
	// AllreduceBytes histograms the fusion-group message sizes into the
	// hvprof size classes.
	BytesReduced   *Counter
	AllreduceBytes *Histogram
	// StepSeconds and DrainSeconds histogram the step latency and the
	// exposed communication wait per step.
	StepSeconds  *Histogram
	DrainSeconds *Histogram
	// Restarts and FailedRanks count elastic-recovery events.
	Restarts    *Counter
	FailedRanks *Counter
	// ImagesPerSec and WorldSize are live gauges.
	ImagesPerSec *Gauge
	WorldSize    *Gauge
	// Checkpoints counts distributed checkpoints written.
	Checkpoints *Counter
}

// NewTrainMetrics registers the standard training instruments on m.
func NewTrainMetrics(m *Metrics) *TrainMetrics {
	if m == nil {
		return nil
	}
	return &TrainMetrics{
		Steps:          m.Counter("edsr_steps_total", "Completed optimization steps."),
		Images:         m.Counter("edsr_images_total", "Images processed across all ranks."),
		BytesReduced:   m.Counter("edsr_bytes_reduced_total", "Gradient bytes allreduced by the Horovod engine."),
		AllreduceBytes: m.Histogram("edsr_allreduce_message_bytes", "Fusion-group allreduce message sizes (hvprof size classes).", MessageBuckets),
		StepSeconds:    m.Histogram("edsr_step_seconds", "Training step latency.", DurationBuckets),
		DrainSeconds:   m.Histogram("edsr_drain_seconds", "Exposed communication wait per step (DistributedOptimizer.Drain).", DurationBuckets),
		Restarts:       m.Counter("edsr_restarts_total", "Elastic restarts after rank failures."),
		FailedRanks:    m.Counter("edsr_failed_ranks_total", "Ranks lost to crashes or timeouts."),
		ImagesPerSec:   m.Gauge("edsr_images_per_second", "Current training throughput."),
		WorldSize:      m.Gauge("edsr_world_size", "Live data-parallel world size."),
		Checkpoints:    m.Counter("edsr_checkpoints_total", "Distributed checkpoints written."),
	}
}

// GobEncode and GobDecode make TrainMetrics gob-inert, like
// trace.Session: it travels in trainer.Config, whose checkpoint
// serialization must tolerate the field type even though the value is
// stripped first. Live metrics are runtime-only by design.
func (t *TrainMetrics) GobEncode() ([]byte, error) { return nil, nil }

// GobDecode implements gob.GobDecoder as a no-op (see GobEncode).
func (t *TrainMetrics) GobDecode([]byte) error { return nil }

// ObserveStep records one completed step: n images in d, at the given
// running throughput. Nil-safe.
func (t *TrainMetrics) ObserveStep(n int, d time.Duration, imgPerSec float64) {
	if t == nil {
		return
	}
	t.Steps.Inc()
	t.Images.Add(int64(n))
	t.StepSeconds.Observe(d.Seconds())
	if imgPerSec > 0 {
		t.ImagesPerSec.Set(imgPerSec)
	}
}
