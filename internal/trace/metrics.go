package trace

import (
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is a registry of counters, gauges, and histograms rendered in
// Prometheus text exposition format. Registration takes a lock; the
// instruments themselves are single atomics (or atomic arrays), so
// updating them from the training hot path is lock-free and
// allocation-free.
type Metrics struct {
	mu   sync.Mutex
	fams []*family
}

type family struct {
	name, help, typ string
	// labels is the pre-rendered label set ({k="v",...}) for labeled
	// gauges such as sr_build_info; empty for plain instruments.
	labels string
	c      *Counter
	g      *Gauge
	// gf, when set, is sampled at render time (live runtime gauges).
	gf func() float64
	h  *Histogram
}

// NewMetrics creates an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// Counter is a monotonically increasing integer.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add increases the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// exemplar links one observed value in a histogram bucket to the trace
// that produced it (OpenMetrics exemplar semantics).
type exemplar struct {
	traceID string
	value   float64
	tsMilli int64
}

// Histogram counts observations into cumulative buckets (Prometheus
// histogram semantics: bucket i counts observations ≤ edges[i], plus an
// implicit +Inf bucket) and tracks the sum of observed values.
type Histogram struct {
	edges   []float64
	counts  []atomic.Int64 // len(edges)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
	// exemplars holds the latest retained-trace exemplar per bucket,
	// written only by Exemplar (the tail sampler's kept path), so the
	// Observe hot path never touches them.
	exemplars []atomic.Pointer[exemplar]
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.edges) && v > h.edges[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Exemplar attaches traceID as the exemplar of the bucket v falls in,
// so a scrape can jump from a latency bucket straight to a retained
// trace in /debug/traces. Call it only for traces the tail sampler
// kept — it allocates, and an exemplar pointing at an unretained trace
// would dangle.
func (h *Histogram) Exemplar(v float64, traceID string) {
	if h == nil || traceID == "" {
		return
	}
	i := 0
	for i < len(h.edges) && v > h.edges[i] {
		i++
	}
	h.exemplars[i].Store(&exemplar{traceID: traceID, value: v, tsMilli: time.Now().UnixMilli()})
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Counter registers (or returns the existing) counter with this name.
func (m *Metrics) Counter(name, help string) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if f := m.find(name); f != nil {
		return f.c
	}
	f := &family{name: name, help: help, typ: "counter", c: &Counter{}}
	m.fams = append(m.fams, f)
	return f.c
}

// Gauge registers (or returns the existing) gauge with this name.
func (m *Metrics) Gauge(name, help string) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if f := m.find(name); f != nil {
		return f.g
	}
	f := &family{name: name, help: help, typ: "gauge", g: &Gauge{}}
	m.fams = append(m.fams, f)
	return f.g
}

// Histogram registers (or returns the existing) histogram with the
// given ascending bucket upper bounds.
func (m *Metrics) Histogram(name, help string, buckets []float64) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if f := m.find(name); f != nil {
		return f.h
	}
	edges := append([]float64(nil), buckets...)
	sort.Float64s(edges)
	f := &family{name: name, help: help, typ: "histogram",
		h: &Histogram{edges: edges,
			counts:    make([]atomic.Int64, len(edges)+1),
			exemplars: make([]atomic.Pointer[exemplar], len(edges)+1)}}
	m.fams = append(m.fams, f)
	return f.h
}

// GaugeWithLabels registers a gauge carrying a fixed label set (e.g.
// sr_build_info{version="...",variant="..."}). Labels are rendered in
// the order given; the (name, label set) pair is the identity.
func (m *Metrics) GaugeWithLabels(name, help string, labels [][2]string) *Gauge {
	if m == nil {
		return nil
	}
	var b []byte
	b = append(b, '{')
	for i, kv := range labels {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, kv[0]...)
		b = append(b, '=', '"')
		b = append(b, kv[1]...)
		b = append(b, '"')
	}
	b = append(b, '}')
	ls := string(b)
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.fams {
		if f.name == name && f.labels == ls {
			return f.g
		}
	}
	f := &family{name: name, help: help, typ: "gauge", labels: ls, g: &Gauge{}}
	m.fams = append(m.fams, f)
	return f.g
}

// GaugeFunc registers a gauge whose value is sampled from fn at scrape
// time — for live process state (goroutine count, heap bytes) that
// would otherwise need a background updater.
func (m *Metrics) GaugeFunc(name, help string, fn func() float64) {
	if m == nil || fn == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.find(name) != nil {
		return
	}
	m.fams = append(m.fams, &family{name: name, help: help, typ: "gauge", gf: fn})
}

// find returns the family with the given name; caller holds m.mu.
func (m *Metrics) find(name string) *family {
	for _, f := range m.fams {
		if f.name == name {
			return f
		}
	}
	return nil
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (the format scraped from /metrics).
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	fams := append([]*family(nil), m.fams...)
	m.mu.Unlock()
	seen := make(map[string]bool, len(fams))
	for _, f := range fams {
		if !seen[f.name] {
			seen[f.name] = true
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
				return err
			}
		}
		var err error
		switch f.typ {
		case "counter":
			_, err = fmt.Fprintf(w, "%s %d\n", f.name, f.c.Value())
		case "gauge":
			v := f.g.Value()
			if f.gf != nil {
				v = f.gf()
			}
			_, err = fmt.Fprintf(w, "%s%s %g\n", f.name, f.labels, v)
		case "histogram":
			var cum int64
			for i, edge := range f.h.edges {
				cum += f.h.counts[i].Load()
				if _, err = fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d%s\n", f.name, edge, cum, exemplarSuffix(f.h, i)); err != nil {
					return err
				}
			}
			cum += f.h.counts[len(f.h.edges)].Load()
			_, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d%s\n%s_sum %g\n%s_count %d\n",
				f.name, cum, exemplarSuffix(f.h, len(f.h.edges)), f.name, f.h.Sum(), f.name, f.h.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// exemplarSuffix renders bucket i's exemplar in OpenMetrics style
// (" # {trace_id=\"...\"} value timestamp") — an extension to the 0.0.4
// text format understood by OpenMetrics-aware scrapers and ignored as a
// comment by plain ones.
func exemplarSuffix(h *Histogram, i int) string {
	if i >= len(h.exemplars) {
		return ""
	}
	e := h.exemplars[i].Load()
	if e == nil {
		return ""
	}
	return fmt.Sprintf(" # {trace_id=\"%s\"} %g %.3f", e.traceID, e.value, float64(e.tsMilli)/1e3)
}

// Handler serves the registry at any path (mount it at /metrics).
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = m.WritePrometheus(w)
	})
}

// MetricsServer is a live observability endpoint: /metrics in
// Prometheus format plus the full /debug/pprof suite.
type MetricsServer struct {
	srv *http.Server
	ln  net.Listener
}

// ServeMetrics starts the endpoint on addr (e.g. ":9090"; ":0" picks a
// free port) and serves in a background goroutine until Close.
func ServeMetrics(addr string, m *Metrics) (*MetricsServer, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", m.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("trace: metrics endpoint: %w", err)
	}
	s := &MetricsServer{srv: &http.Server{Handler: mux}, ln: ln}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *MetricsServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *MetricsServer) Close() error { return s.srv.Close() }

// BuildVersion identifies this build in sr_build_info. Bump per release
// tag; binaries carry it so a scrape can tell which code a replica runs.
const BuildVersion = "0.9.0"

// RegisterBuildInfo registers the constant-1 sr_build_info gauge whose
// labels identify the running build (version + variant, e.g. "serve" or
// "router").
func RegisterBuildInfo(m *Metrics, version, variant string) {
	m.GaugeWithLabels("sr_build_info",
		"Build identity of this process; constant 1, labels carry the information.",
		[][2]string{{"version", version}, {"variant", variant}}).Set(1)
}

// RegisterRuntimeMetrics registers live process gauges (goroutine count
// and heap bytes), sampled at scrape time.
func RegisterRuntimeMetrics(m *Metrics) {
	m.GaugeFunc("go_goroutines", "Current number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	m.GaugeFunc("go_heap_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
}

// DurationBuckets are generic latency bucket bounds in seconds
// (100 µs … 30 s).
var DurationBuckets = []float64{
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// MessageBuckets mirror the hvprof Table I size classes (bytes).
var MessageBuckets = []float64{
	128 << 10, // 128 KB
	16 << 20,  // 16 MB
	32 << 20,  // 32 MB
	64 << 20,  // 64 MB
}

// TrainMetrics bundles the live training instruments the trainer, the
// Horovod engine, and the elastic driver update. All fields tolerate a
// nil receiver, and NewTrainMetrics(nil) returns nil, so instrumented
// code needs no enabled-checks.
type TrainMetrics struct {
	// Steps and Images count completed optimization steps and globally
	// processed images (rank 0 updates them).
	Steps  *Counter
	Images *Counter
	// BytesReduced totals gradient bytes through the engine's allreduce;
	// AllreduceBytes histograms the fusion-group message sizes into the
	// hvprof size classes.
	BytesReduced   *Counter
	AllreduceBytes *Histogram
	// StepSeconds and DrainSeconds histogram the step latency and the
	// exposed communication wait per step.
	StepSeconds  *Histogram
	DrainSeconds *Histogram
	// Restarts and FailedRanks count elastic-recovery events.
	Restarts    *Counter
	FailedRanks *Counter
	// ImagesPerSec and WorldSize are live gauges.
	ImagesPerSec *Gauge
	WorldSize    *Gauge
	// Checkpoints counts distributed checkpoints written.
	Checkpoints *Counter
}

// NewTrainMetrics registers the standard training instruments on m.
func NewTrainMetrics(m *Metrics) *TrainMetrics {
	if m == nil {
		return nil
	}
	return &TrainMetrics{
		Steps:          m.Counter("edsr_steps_total", "Completed optimization steps."),
		Images:         m.Counter("edsr_images_total", "Images processed across all ranks."),
		BytesReduced:   m.Counter("edsr_bytes_reduced_total", "Gradient bytes allreduced by the Horovod engine."),
		AllreduceBytes: m.Histogram("edsr_allreduce_message_bytes", "Fusion-group allreduce message sizes (hvprof size classes).", MessageBuckets),
		StepSeconds:    m.Histogram("edsr_step_seconds", "Training step latency.", DurationBuckets),
		DrainSeconds:   m.Histogram("edsr_drain_seconds", "Exposed communication wait per step (DistributedOptimizer.Drain).", DurationBuckets),
		Restarts:       m.Counter("edsr_restarts_total", "Elastic restarts after rank failures."),
		FailedRanks:    m.Counter("edsr_failed_ranks_total", "Ranks lost to crashes or timeouts."),
		ImagesPerSec:   m.Gauge("edsr_images_per_second", "Current training throughput."),
		WorldSize:      m.Gauge("edsr_world_size", "Live data-parallel world size."),
		Checkpoints:    m.Counter("edsr_checkpoints_total", "Distributed checkpoints written."),
	}
}

// GobEncode and GobDecode make TrainMetrics gob-inert, like
// trace.Session: it travels in trainer.Config, whose checkpoint
// serialization must tolerate the field type even though the value is
// stripped first. Live metrics are runtime-only by design.
func (t *TrainMetrics) GobEncode() ([]byte, error) { return nil, nil }

// GobDecode implements gob.GobDecoder as a no-op (see GobEncode).
func (t *TrainMetrics) GobDecode([]byte) error { return nil }

// ObserveStep records one completed step: n images in d, at the given
// running throughput. Nil-safe.
func (t *TrainMetrics) ObserveStep(n int, d time.Duration, imgPerSec float64) {
	if t == nil {
		return
	}
	t.Steps.Inc()
	t.Images.Add(int64(n))
	t.StepSeconds.Observe(d.Seconds())
	if imgPerSec > 0 {
		t.ImagesPerSec.Set(imgPerSec)
	}
}
