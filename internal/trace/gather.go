package trace

import (
	"math"

	"repro/internal/mpi"
)

// Point-to-point tags for the span gather (user tag space, below the
// collective tag bands).
const (
	tagTraceHeader  = 9001
	tagTracePayload = 9002
)

// spanFloats is the wire size of one span: category+track packed in one
// float's bits, then start, dur, and bytes as lo/hi bit halves. The MPI
// substrate moves float32 buffers; Send/Recv only copy, so raw bit
// halves round-trip exactly (the same trick the elastic checkpoint uses
// for RNG streams).
const spanFloats = 7

func encodeSpans(spans []Span, out []float32) []float32 {
	for _, s := range spans {
		out = append(out,
			math.Float32frombits(uint32(s.Cat)|uint32(s.Track)<<8),
			math.Float32frombits(uint32(s.Start)),
			math.Float32frombits(uint32(uint64(s.Start)>>32)),
			math.Float32frombits(uint32(s.Dur)),
			math.Float32frombits(uint32(uint64(s.Dur)>>32)),
			math.Float32frombits(uint32(s.Bytes)),
			math.Float32frombits(uint32(uint64(s.Bytes)>>32)),
		)
	}
	return out
}

func decodeSpans(in []float32) []Span {
	n := len(in) / spanFloats
	spans := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		f := in[i*spanFloats:]
		packed := math.Float32bits(f[0])
		spans = append(spans, Span{
			Cat:   Category(packed & 0xff),
			Track: Track(packed >> 8 & 0xff),
			Start: int64(uint64(math.Float32bits(f[1])) | uint64(math.Float32bits(f[2]))<<32),
			Dur:   int64(uint64(math.Float32bits(f[3])) | uint64(math.Float32bits(f[4]))<<32),
			Bytes: int64(uint64(math.Float32bits(f[5])) | uint64(math.Float32bits(f[6]))<<32),
		})
	}
	return spans
}

// Gather collects every rank's recorded spans on root and merges them
// into the session's global timeline. Every rank of the communicator
// must call it (it is collective: non-root ranks send a header with
// their span and drop counts, then the encoded payload); on root the
// merged timeline becomes what Session.Timeline returns. Call at run
// end, after the recording goroutines have quiesced.
func (s *Session) Gather(c *mpi.Comm, root int) {
	if s == nil {
		return
	}
	rec := s.Recorder(c.Rank())
	spans := rec.Spans()
	if c.Rank() != root {
		hdr := [2]float32{
			math.Float32frombits(uint32(len(spans))),
			math.Float32frombits(uint32(rec.Dropped())),
		}
		c.Send(root, tagTraceHeader, hdr[:])
		if len(spans) > 0 {
			c.Send(root, tagTracePayload, encodeSpans(spans, make([]float32, 0, len(spans)*spanFloats)))
		}
		return
	}
	t := &Timeline{Ranks: []RankTrace{{Rank: root, Dropped: rec.Dropped(), Spans: spans}}}
	for src := 0; src < c.Size(); src++ {
		if src == root {
			continue
		}
		var hdr [2]float32
		c.Recv(src, tagTraceHeader, hdr[:])
		count := int(math.Float32bits(hdr[0]))
		dropped := uint64(math.Float32bits(hdr[1]))
		var remote []Span
		if count > 0 {
			buf := make([]float32, count*spanFloats)
			c.Recv(src, tagTracePayload, buf)
			remote = decodeSpans(buf)
		}
		t.Ranks = append(t.Ranks, RankTrace{Rank: src, Dropped: dropped, Spans: remote})
	}
	t.sort()
	s.setGathered(t)
}
