package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

// makeTimeline builds a deterministic two-rank timeline with spans on
// both tracks, an instant marker, and a known overlap structure.
func makeTimeline() *Timeline {
	ms := func(n int64) int64 { return n * 1e6 }
	return &Timeline{Ranks: []RankTrace{
		{Rank: 0, Spans: []Span{
			{Cat: CatStep, Track: TrackMain, Start: 0, Dur: ms(10)},
			{Cat: CatForward, Track: TrackMain, Start: 0, Dur: ms(3)},
			{Cat: CatBackward, Track: TrackMain, Start: ms(3), Dur: ms(5)},
			{Cat: CatGradHook, Track: TrackMain, Start: ms(4), Dur: 0, Bytes: 256},
			{Cat: CatAllreduceRing, Track: TrackEngine, Start: ms(4), Dur: ms(2), Bytes: 1 << 20},
			{Cat: CatAllreduceRing, Track: TrackEngine, Start: ms(9), Dur: ms(2), Bytes: 2 << 20},
			{Cat: CatDrain, Track: TrackMain, Start: ms(8), Dur: ms(3)},
		}},
		{Rank: 1, Spans: []Span{
			{Cat: CatStep, Track: TrackMain, Start: 0, Dur: ms(10)},
			{Cat: CatNegotiate, Track: TrackEngine, Start: ms(1), Dur: ms(1), Bytes: 52},
			{Cat: CatBcast, Track: TrackMain, Start: ms(2), Dur: ms(1), Bytes: 4096},
		}},
	}}
}

// TestChromeTraceSchema validates the exported JSON against the
// trace_event contract Perfetto expects: a traceEvents array whose
// entries carry name/ph/pid/tid/ts (dur for complete events, s for
// instants), non-negative timestamps and durations, metadata naming
// every rank process and goroutine track, and spans from every rank.
func TestChromeTraceSchema(t *testing.T) {
	tl := makeTimeline()
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Unit != "ms" {
		t.Fatalf("displayTimeUnit %q", doc.Unit)
	}
	ranksSeen := map[float64]bool{}
	processNames := map[float64]bool{}
	threadNames := 0
	sawMeta, sawEvent := false, false
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		pid, pidOK := ev["pid"].(float64)
		if name == "" || !pidOK {
			t.Fatalf("event %d missing name/pid: %v", i, ev)
		}
		switch ph {
		case "M":
			if sawEvent {
				t.Fatalf("metadata event %d after span events (viewers label tracks late)", i)
			}
			sawMeta = true
			switch name {
			case "process_name":
				processNames[pid] = true
			case "thread_name":
				threadNames++
			}
		case "X":
			sawEvent = true
			ts, dur := ev["ts"].(float64), ev["dur"].(float64)
			if ts < 0 || dur <= 0 {
				t.Fatalf("event %d: ts %g dur %g", i, ts, dur)
			}
			ranksSeen[pid] = true
			if _, ok := ev["tid"].(float64); !ok {
				t.Fatalf("event %d missing tid", i)
			}
		case "i":
			sawEvent = true
			if s, _ := ev["s"].(string); s != "t" {
				t.Fatalf("instant event %d missing thread scope: %v", i, ev)
			}
			ranksSeen[pid] = true
		default:
			t.Fatalf("event %d: unknown phase %q", i, ph)
		}
	}
	if !sawMeta || !sawEvent {
		t.Fatal("trace missing metadata or span events")
	}
	if !ranksSeen[0] || !ranksSeen[1] {
		t.Fatalf("spans missing for some ranks: %v", ranksSeen)
	}
	if !processNames[0] || !processNames[1] {
		t.Fatalf("process_name metadata missing: %v", processNames)
	}
	if threadNames < 3 { // rank 0 has two tracks, rank 1 at least one
		t.Fatalf("thread_name metadata count %d", threadNames)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tl := makeTimeline()
	var buf bytes.Buffer
	if err := tl.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	tl.sort()
	if !reflect.DeepEqual(tl, back) {
		t.Fatalf("round trip mismatch:\nout: %+v\nin:  %+v", tl, back)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(bytes.NewBufferString("{\"rank\":0}\nnot json\n")); err == nil {
		t.Fatal("want error on malformed line")
	}
}

// TestHvprofCrossCheck verifies the acceptance criterion that the
// bucket report and the timeline come from the same records: per-op
// total seconds derived via Timeline.HvprofReport must equal the sum
// of the corresponding span durations.
func TestHvprofCrossCheck(t *testing.T) {
	tl := makeTimeline()
	rep := tl.HvprofReport()
	wantByOp := map[string]float64{}
	for _, rt := range tl.Ranks {
		for _, s := range rt.Spans {
			if op, ok := s.Cat.HvprofOp(); ok {
				wantByOp[op] += float64(s.Dur) / 1e9
			}
		}
	}
	if len(wantByOp) == 0 {
		t.Fatal("fixture has no collective spans")
	}
	for op, want := range wantByOp {
		if got := rep.TotalSeconds(op); math.Abs(got-want) > 1e-12 {
			t.Errorf("op %s: report %g s, spans %g s", op, got, want)
		}
	}
	// Compute-side spans must not leak into the bucket tables.
	for _, op := range []string{"step", "forward", "backward", "drain", "fused-reduce"} {
		if rep.TotalSeconds(op) != 0 {
			t.Errorf("non-collective op %s leaked into the hvprof report", op)
		}
	}
	if got := rep.TotalSeconds("allreduce"); math.Abs(got-4e-3) > 1e-12 {
		t.Errorf("allreduce total %g, want 4ms", got)
	}
}

func TestOverlapMath(t *testing.T) {
	tl := makeTimeline()
	st := tl.Overlap(0)
	// backward [3,8)ms; allreduce [4,6) and [9,11) → overlap [4,6) = 2ms.
	if math.Abs(st.BackwardSec-5e-3) > 1e-12 {
		t.Errorf("backward %g", st.BackwardSec)
	}
	if math.Abs(st.AllreduceSec-4e-3) > 1e-12 {
		t.Errorf("allreduce %g", st.AllreduceSec)
	}
	if math.Abs(st.OverlapSec-2e-3) > 1e-12 {
		t.Errorf("overlap %g", st.OverlapSec)
	}
	if math.Abs(st.HiddenFrac-0.5) > 1e-9 {
		t.Errorf("hidden frac %g", st.HiddenFrac)
	}
	if math.Abs(st.DrainSec-3e-3) > 1e-12 {
		t.Errorf("drain %g", st.DrainSec)
	}
	if s := FormatOverlap(st); s == "" {
		t.Fatal("empty format")
	}
	// Rank 1 ran no allreduce: fraction must stay 0, not NaN.
	if st1 := tl.Overlap(1); st1.HiddenFrac != 0 || st1.AllreduceSec != 0 {
		t.Errorf("rank 1 overlap %+v", st1)
	}
}

func TestMergeAndIntersect(t *testing.T) {
	merged := mergeIntervals([][2]int64{{5, 7}, {0, 2}, {1, 3}, {7, 9}})
	want := [][2]int64{{0, 3}, {5, 9}}
	if !reflect.DeepEqual(merged, want) {
		t.Fatalf("merge %v, want %v", merged, want)
	}
	sec := intersectSec([][2]int64{{0, 3}, {5, 9}}, [][2]int64{{2, 6}})
	if math.Abs(sec-2e-9) > 1e-18 { // [2,3) + [5,6) = 2 ns
		t.Fatalf("intersect %g", sec)
	}
}
