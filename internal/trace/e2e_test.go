// End-to-end: a real 4-rank traced training run must produce a valid
// Chrome trace with spans from every rank on both goroutine tracks,
// live metrics that agree with the run's shape, and a drain-time stat.
// External test package: trainer imports trace, so the e2e direction
// must live outside package trace.
package trace_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/data"
	"repro/internal/models"
	"repro/internal/trace"
	"repro/internal/trainer"
)

func traceTestConfig(steps int) trainer.Config {
	return trainer.Config{
		Model: models.EDSRConfig{NumBlocks: 1, NumFeats: 4, Scale: 2, ResScale: 0.1, Colors: 3},
		Data:  data.SyntheticConfig{Images: 8, Height: 24, Width: 24, Channels: 3, Seed: 7},
		Steps: steps, BatchSize: 2, PatchSize: 8, LR: 1e-3, Seed: 1,
	}
}

func TestTracedDistributedTraining(t *testing.T) {
	const world = 4
	cfg := traceTestConfig(3)
	cfg.Trace = trace.NewSession(0)
	reg := trace.NewMetrics()
	cfg.Metrics = trace.NewTrainMetrics(reg)

	_, st, err := trainer.TrainDistributed(cfg, world)
	if err != nil {
		t.Fatal(err)
	}
	if st.DrainMsPerStep <= 0 {
		t.Errorf("DrainMsPerStep = %g, want > 0 for a distributed run", st.DrainMsPerStep)
	}

	tl := cfg.Trace.Timeline()
	if len(tl.Ranks) != world {
		t.Fatalf("timeline has %d ranks, want %d", len(tl.Ranks), world)
	}
	for _, rt := range tl.Ranks {
		cats := map[trace.Category]int{}
		tracks := map[trace.Track]bool{}
		for _, s := range rt.Spans {
			cats[s.Cat]++
			tracks[s.Track] = true
			if s.Start < 0 || s.Dur < 0 {
				t.Fatalf("rank %d: negative time in %+v", rt.Rank, s)
			}
		}
		for _, want := range []trace.Category{
			trace.CatStep, trace.CatForward, trace.CatBackward,
			trace.CatGradHook, trace.CatDrain, trace.CatFusedReduce,
			trace.CatNegotiate, trace.CatAllreduceRing,
		} {
			if cats[want] == 0 {
				t.Errorf("rank %d: no %v spans", rt.Rank, want)
			}
		}
		if cats[trace.CatStep] != cfg.Steps {
			t.Errorf("rank %d: %d step spans, want %d", rt.Rank, cats[trace.CatStep], cfg.Steps)
		}
		if !tracks[trace.TrackMain] || !tracks[trace.TrackEngine] {
			t.Errorf("rank %d: tracks %v, want both trainer and engine", rt.Rank, tracks)
		}
	}

	// The exported Chrome trace must be valid trace_event JSON.
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.Ts < 0 || ev.Dur < 0 {
			t.Fatalf("malformed event %+v", ev)
		}
		if ev.Ph != "M" {
			pids[ev.Pid] = true
		}
	}
	if len(pids) != world {
		t.Fatalf("trace events cover %d ranks, want %d", len(pids), world)
	}

	// The span-derived hvprof report sees the run's collectives.
	rep := tl.HvprofReport()
	for _, op := range []string{"allreduce", "negotiate", "bcast"} {
		if rep.TotalSeconds(op) <= 0 {
			t.Errorf("span-derived report: no %s time", op)
		}
	}

	// Live metrics reflect the run: world-size gauge, per-step counts.
	if got := cfg.Metrics.WorldSize.Value(); got != world {
		t.Errorf("world size gauge %g", got)
	}
	if got := cfg.Metrics.Steps.Value(); got != int64(cfg.Steps) {
		t.Errorf("steps counter %d, want %d", got, cfg.Steps)
	}
	if got := cfg.Metrics.Images.Value(); got != int64(cfg.Steps*cfg.BatchSize*world) {
		t.Errorf("images counter %d", got)
	}
	if cfg.Metrics.BytesReduced.Value() <= 0 || cfg.Metrics.DrainSeconds.Count() == 0 {
		t.Errorf("engine metrics not updated: bytes %d drains %d",
			cfg.Metrics.BytesReduced.Value(), cfg.Metrics.DrainSeconds.Count())
	}
}

// TestTracedSingleTraining: the single-process path records compute
// spans on rank 0 without any MPI world.
func TestTracedSingleTraining(t *testing.T) {
	cfg := traceTestConfig(2)
	cfg.Trace = trace.NewSession(0)
	if _, _, err := trainer.TrainSingle(cfg); err != nil {
		t.Fatal(err)
	}
	tl := cfg.Trace.Timeline()
	if len(tl.Ranks) != 1 {
		t.Fatalf("ranks %d", len(tl.Ranks))
	}
	cats := map[trace.Category]int{}
	for _, s := range tl.Ranks[0].Spans {
		cats[s.Cat]++
	}
	if cats[trace.CatStep] != 2 || cats[trace.CatForward] != 2 || cats[trace.CatBackward] != 2 {
		t.Fatalf("compute span counts %v", cats)
	}
}

// TestUntracedConfigStillSerializes guards the checkpoint paths: a
// traced Config must strip its runtime-only fields before gob encoding
// (a *trace.Session is not serializable).
func TestTracedCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := traceTestConfig(1)
	cfg.Trace = trace.NewSession(0)
	cfg.Metrics = trace.NewTrainMetrics(trace.NewMetrics())
	model, _, err := trainer.TrainSingle(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := dir + "/ck.gob"
	if err := trainer.SaveCheckpoint(path, model, cfg); err != nil {
		t.Fatalf("traced config broke checkpointing: %v", err)
	}
	if _, _, err := trainer.LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
}
