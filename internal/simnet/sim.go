// Package simnet is a deterministic discrete-event simulation kernel in
// the SimPy style: simulated processes are goroutines that block on a
// virtual clock (Sleep), rendezvous channels (Send/Recv), and FIFO
// resources (Acquire/Release). Exactly one process runs at a time and
// events at equal timestamps fire in creation order, so a simulation is a
// pure function of its inputs.
//
// The cluster model in internal/cluster and the collective algorithms in
// internal/collective are built on this kernel; together they stand in for
// the Lassen system the paper measured on.
package simnet

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is simulated seconds since the start of the run.
type Time = float64

// event resumes one blocked process at a point in virtual time.
type event struct {
	at   Time
	seq  uint64
	proc *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim owns the virtual clock and the event queue.
type Sim struct {
	now    Time
	seq    uint64
	events eventHeap
	// yield carries control back from the running process to the
	// scheduler: true means the process terminated.
	yield chan bool
	alive int
}

// New creates an empty simulation.
func New() *Sim {
	return &Sim{yield: make(chan bool)}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Proc is one simulated process. All Proc methods must be called from the
// process's own goroutine.
type Proc struct {
	sim    *Sim
	name   string
	resume chan struct{}
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sim returns the owning simulation.
func (p *Proc) Sim() *Sim { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// schedule enqueues a wake-up for proc at time t.
func (s *Sim) schedule(t Time, proc *Proc) {
	if t < s.now {
		panic(fmt.Sprintf("simnet: scheduling into the past (%g < %g)", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, event{at: t, seq: s.seq, proc: proc})
}

// Spawn creates a process and schedules it to start at the current time.
// May be called before Run or from a running process.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan struct{})}
	s.alive++
	go func() {
		<-p.resume
		defer func() {
			s.alive--
			s.yield <- true
		}()
		fn(p)
	}()
	s.schedule(s.now, p)
	return p
}

// Run executes events until the queue empties or until limit (use
// math.Inf(1) for no limit). It returns the final virtual time. Run
// panics if processes remain blocked with no pending events (deadlock),
// since a simulation that cannot progress is a modeling bug.
func (s *Sim) Run(limit Time) Time {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(event)
		if e.at > limit {
			heap.Push(&s.events, e)
			s.now = limit
			return s.now
		}
		s.now = e.at
		e.proc.resume <- struct{}{}
		<-s.yield
	}
	if s.alive > 0 {
		panic(fmt.Sprintf("simnet: deadlock — %d process(es) blocked with no pending events at t=%g", s.alive, s.now))
	}
	return s.now
}

// RunAll runs with no time limit.
func (s *Sim) RunAll() Time { return s.Run(math.Inf(1)) }

// block yields control to the scheduler and waits to be resumed.
func (p *Proc) block() {
	p.sim.yield <- false
	<-p.resume
}

// Block parks the process until another process calls Sim.Wake on it.
// It is the low-level hook custom synchronization primitives (such as the
// collective barriers in internal/collective) build on.
func (p *Proc) Block() { p.block() }

// Wake schedules a process previously parked with Block to resume at the
// current virtual time. Waking a process that is not parked corrupts the
// simulation, so primitives must pair Block/Wake exactly.
func (s *Sim) Wake(p *Proc) { s.schedule(s.now, p) }

// Sleep advances the process by d simulated seconds (d < 0 panics).
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic("simnet: negative sleep")
	}
	p.sim.schedule(p.sim.now+d, p)
	p.block()
}

// Yield reschedules the process at the current time behind already-queued
// events, letting equal-time events interleave deterministically.
func (p *Proc) Yield() {
	p.sim.schedule(p.sim.now, p)
	p.block()
}
