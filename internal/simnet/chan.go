package simnet

// Chan is a rendezvous channel between simulated processes: Send blocks
// until a matching Recv and vice versa, both resuming at the same virtual
// time. It carries arbitrary values; collective algorithms use it for
// synchronization between ranks.
type Chan struct {
	sim   *Sim
	name  string
	sendQ []*chanWaiter
	recvQ []*chanWaiter
}

type chanWaiter struct {
	proc *Proc
	val  any
}

// NewChan creates a rendezvous channel.
func (s *Sim) NewChan(name string) *Chan {
	return &Chan{sim: s, name: name}
}

// Send delivers v to a receiver, blocking until one is present.
func (c *Chan) Send(p *Proc, v any) {
	if len(c.recvQ) > 0 {
		r := c.recvQ[0]
		c.recvQ = c.recvQ[1:]
		r.val = v
		c.sim.schedule(c.sim.now, r.proc)
		return
	}
	w := &chanWaiter{proc: p, val: v}
	c.sendQ = append(c.sendQ, w)
	p.block()
}

// Recv blocks until a sender provides a value.
func (c *Chan) Recv(p *Proc) any {
	if len(c.sendQ) > 0 {
		s := c.sendQ[0]
		c.sendQ = c.sendQ[1:]
		c.sim.schedule(c.sim.now, s.proc)
		return s.val
	}
	w := &chanWaiter{proc: p}
	c.recvQ = append(c.recvQ, w)
	p.block()
	return w.val
}

// Resource is a counted resource with FIFO admission (a link, a NIC, a
// copy engine). Acquire blocks while all units are held.
type Resource struct {
	sim      *Sim
	name     string
	capacity int
	inUse    int
	waiters  []*Proc
}

// NewResource creates a resource with the given capacity.
func (s *Sim) NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic("simnet: resource capacity must be >= 1")
	}
	return &Resource{sim: s, name: name, capacity: capacity}
}

// Acquire takes one unit, blocking FIFO if none are free.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.block()
	// Ownership was transferred by Release; inUse already accounts for us.
}

// Release frees one unit, waking the oldest waiter if any.
func (r *Resource) Release() {
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		// Hand the unit directly to the waiter.
		r.sim.schedule(r.sim.now, next)
		return
	}
	if r.inUse == 0 {
		panic("simnet: Release without Acquire on " + r.name)
	}
	r.inUse--
}

// InUse reports the number of held units (for tests and stats).
func (r *Resource) InUse() int { return r.inUse }

// Use acquires the resource, sleeps d, and releases — the common pattern
// for modeling an exclusive transfer of known duration.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// WaitGroup lets one process wait for n completions signalled by others.
type WaitGroup struct {
	sim     *Sim
	pending int
	waiter  *Proc
}

// NewWaitGroup creates a wait group expecting n Done calls.
func (s *Sim) NewWaitGroup(n int) *WaitGroup {
	return &WaitGroup{sim: s, pending: n}
}

// Done signals one completion.
func (w *WaitGroup) Done() {
	w.pending--
	if w.pending < 0 {
		panic("simnet: WaitGroup Done past zero")
	}
	if w.pending == 0 && w.waiter != nil {
		w.sim.schedule(w.sim.now, w.waiter)
		w.waiter = nil
	}
}

// Wait blocks p until the count reaches zero. Only one process may wait.
func (w *WaitGroup) Wait(p *Proc) {
	if w.pending == 0 {
		return
	}
	if w.waiter != nil {
		panic("simnet: WaitGroup already has a waiter")
	}
	w.waiter = p
	p.block()
}
