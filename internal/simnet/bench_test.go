package simnet

import "testing"

// BenchmarkEventThroughput measures raw scheduler throughput: one proc,
// many sleeps.
func BenchmarkEventThroughput(b *testing.B) {
	s := New()
	s.Spawn("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(0.001)
		}
	})
	b.ResetTimer()
	s.RunAll()
}

// BenchmarkManyProcs measures context-switch cost with many interleaved
// processes, the regime the 512-rank cluster simulation runs in.
func BenchmarkManyProcs(b *testing.B) {
	const procs = 512
	s := New()
	per := b.N/procs + 1
	for i := 0; i < procs; i++ {
		s.Spawn("p", func(p *Proc) {
			for j := 0; j < per; j++ {
				p.Sleep(0.001)
			}
		})
	}
	b.ResetTimer()
	s.RunAll()
}

// BenchmarkChanRendezvous measures the rendezvous channel hot path.
func BenchmarkChanRendezvous(b *testing.B) {
	s := New()
	ch := s.NewChan("c")
	s.Spawn("send", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ch.Send(p, i)
		}
	})
	s.Spawn("recv", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			ch.Recv(p)
		}
	})
	b.ResetTimer()
	s.RunAll()
}

// BenchmarkResourceContention measures FIFO resource queuing.
func BenchmarkResourceContention(b *testing.B) {
	s := New()
	r := s.NewResource("link", 1)
	const procs = 16
	per := b.N/procs + 1
	for i := 0; i < procs; i++ {
		s.Spawn("p", func(p *Proc) {
			for j := 0; j < per; j++ {
				r.Use(p, 0.0001)
			}
		})
	}
	b.ResetTimer()
	s.RunAll()
}
