package simnet

import (
	"math"
	"testing"
)

func TestSleepAdvancesClock(t *testing.T) {
	s := New()
	var woke Time
	s.Spawn("a", func(p *Proc) {
		p.Sleep(2.5)
		woke = p.Now()
	})
	end := s.RunAll()
	if woke != 2.5 || end != 2.5 {
		t.Fatalf("woke=%g end=%g", woke, end)
	}
}

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []string
	s.Spawn("late", func(p *Proc) {
		p.Sleep(2)
		order = append(order, "late")
	})
	s.Spawn("early", func(p *Proc) {
		p.Sleep(1)
		order = append(order, "early")
	})
	s.RunAll()
	if len(order) != 2 || order[0] != "early" || order[1] != "late" {
		t.Fatalf("order %v", order)
	}
}

func TestEqualTimeFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Spawn("p", func(p *Proc) {
			p.Sleep(1)
			order = append(order, i)
		})
	}
	s.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events out of creation order: %v", order)
		}
	}
}

func TestRunLimit(t *testing.T) {
	s := New()
	reached := false
	s.Spawn("a", func(p *Proc) {
		p.Sleep(10)
		reached = true
	})
	end := s.Run(5)
	if end != 5 || reached {
		t.Fatalf("end=%g reached=%v", end, reached)
	}
	// Continue to completion.
	end = s.RunAll()
	if end != 10 || !reached {
		t.Fatalf("after resume: end=%g reached=%v", end, reached)
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	s := New()
	panicked := false
	s.Spawn("a", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		p.Sleep(-1)
	})
	s.RunAll()
	if !panicked {
		t.Fatal("expected panic")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		s := New()
		var stamps []Time
		for i := 0; i < 10; i++ {
			i := i
			s.Spawn("p", func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(Time(i%3) * 0.5)
					stamps = append(stamps, p.Now())
				}
			})
		}
		s.RunAll()
		return stamps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different event counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestChanRendezvous(t *testing.T) {
	s := New()
	ch := s.NewChan("c")
	var got any
	var recvAt Time
	s.Spawn("recv", func(p *Proc) {
		got = ch.Recv(p)
		recvAt = p.Now()
	})
	s.Spawn("send", func(p *Proc) {
		p.Sleep(3)
		ch.Send(p, 42)
	})
	s.RunAll()
	if got != 42 || recvAt != 3 {
		t.Fatalf("got=%v at %g", got, recvAt)
	}
}

func TestChanSenderBlocksUntilReceiver(t *testing.T) {
	s := New()
	ch := s.NewChan("c")
	var sendDone Time
	s.Spawn("send", func(p *Proc) {
		ch.Send(p, "x")
		sendDone = p.Now()
	})
	s.Spawn("recv", func(p *Proc) {
		p.Sleep(7)
		ch.Recv(p)
	})
	s.RunAll()
	if sendDone != 7 {
		t.Fatalf("sender resumed at %g, want 7", sendDone)
	}
}

func TestChanManyMessagesOrdered(t *testing.T) {
	s := New()
	ch := s.NewChan("c")
	var got []int
	s.Spawn("send", func(p *Proc) {
		for i := 0; i < 10; i++ {
			ch.Send(p, i)
		}
	})
	s.Spawn("recv", func(p *Proc) {
		for i := 0; i < 10; i++ {
			got = append(got, ch.Recv(p).(int))
		}
	})
	s.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("message order %v", got)
		}
	}
}

func TestResourceSerializes(t *testing.T) {
	s := New()
	r := s.NewResource("link", 1)
	var finish []Time
	for i := 0; i < 3; i++ {
		s.Spawn("user", func(p *Proc) {
			r.Use(p, 2)
			finish = append(finish, p.Now())
		})
	}
	s.RunAll()
	want := []Time{2, 4, 6}
	for i, f := range finish {
		if f != want[i] {
			t.Fatalf("finish times %v, want %v (FIFO serialization)", finish, want)
		}
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	s := New()
	r := s.NewResource("link", 2)
	var finish []Time
	for i := 0; i < 4; i++ {
		s.Spawn("user", func(p *Proc) {
			r.Use(p, 3)
			finish = append(finish, p.Now())
		})
	}
	s.RunAll()
	want := []Time{3, 3, 6, 6}
	for i, f := range finish {
		if f != want[i] {
			t.Fatalf("finish %v, want %v", finish, want)
		}
	}
}

func TestResourceReleaseWithoutAcquirePanics(t *testing.T) {
	s := New()
	r := s.NewResource("x", 1)
	panicked := false
	s.Spawn("a", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		r.Release()
	})
	s.RunAll()
	if !panicked {
		t.Fatal("expected panic")
	}
}

func TestDeadlockDetected(t *testing.T) {
	s := New()
	ch := s.NewChan("never")
	s.Spawn("stuck", func(p *Proc) {
		ch.Recv(p)
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	s.RunAll()
}

func TestWaitGroup(t *testing.T) {
	s := New()
	wg := s.NewWaitGroup(3)
	var doneAt Time
	for i := 1; i <= 3; i++ {
		d := Time(i)
		s.Spawn("worker", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	s.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	s.RunAll()
	if doneAt != 3 {
		t.Fatalf("waiter resumed at %g, want 3", doneAt)
	}
}

func TestWaitGroupAlreadyZero(t *testing.T) {
	s := New()
	wg := s.NewWaitGroup(0)
	ok := false
	s.Spawn("w", func(p *Proc) {
		wg.Wait(p) // must not block
		ok = true
	})
	s.RunAll()
	if !ok {
		t.Fatal("Wait on zero count should return immediately")
	}
}

func TestSpawnFromProcess(t *testing.T) {
	s := New()
	var childAt Time
	s.Spawn("parent", func(p *Proc) {
		p.Sleep(1)
		p.Sim().Spawn("child", func(c *Proc) {
			c.Sleep(1)
			childAt = c.Now()
		})
		p.Sleep(5)
	})
	s.RunAll()
	if childAt != 2 {
		t.Fatalf("child finished at %g, want 2", childAt)
	}
}

func TestYield(t *testing.T) {
	s := New()
	var order []string
	s.Spawn("a", func(p *Proc) {
		p.Yield()
		order = append(order, "a")
	})
	s.Spawn("b", func(p *Proc) {
		order = append(order, "b")
	})
	s.RunAll()
	// a yields, so b (already queued) runs its body first.
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("order %v", order)
	}
}

func TestManyProcsPerformance(t *testing.T) {
	// Sanity check that thousands of procs with many events complete.
	s := New()
	for i := 0; i < 2000; i++ {
		s.Spawn("p", func(p *Proc) {
			for j := 0; j < 10; j++ {
				p.Sleep(0.001)
			}
		})
	}
	end := s.RunAll()
	if math.Abs(end-0.01) > 1e-12 {
		t.Fatalf("end %g", end)
	}
}

// Property: resources never exceed capacity under random workloads.
func TestResourceCapacityInvariant(t *testing.T) {
	s := New()
	r := s.NewResource("link", 3)
	violated := false
	for i := 0; i < 20; i++ {
		d := Time(i%4+1) * 0.01
		s.Spawn("user", func(p *Proc) {
			r.Acquire(p)
			if r.InUse() > 3 {
				violated = true
			}
			p.Sleep(d)
			r.Release()
		})
	}
	s.RunAll()
	if violated {
		t.Fatal("resource exceeded its capacity")
	}
}

// Property: total simulated time of serialized resource use equals the
// sum of durations (conservation under FIFO).
func TestResourceConservation(t *testing.T) {
	s := New()
	r := s.NewResource("link", 1)
	var total Time
	for i := 1; i <= 10; i++ {
		d := Time(i) * 0.01
		total += d
		s.Spawn("user", func(p *Proc) {
			r.Use(p, d)
		})
	}
	end := s.RunAll()
	if math.Abs(end-total) > 1e-12 {
		t.Fatalf("end %g, want %g", end, total)
	}
}
