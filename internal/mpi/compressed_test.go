package mpi

import (
	"math"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// runAllRanks executes fn on every rank of a fresh world and returns each
// rank's buffer, seeded by seed(rank, i).
func runAllRanks(t *testing.T, size, n int, seed func(rank, i int) float32, fn func(c *Comm, buf []float32)) [][]float32 {
	t.Helper()
	w := NewWorld(size)
	var mu sync.Mutex
	results := make([][]float32, size)
	if err := w.Run(func(c *Comm) {
		buf := make([]float32, n)
		for i := range buf {
			buf[i] = seed(c.Rank(), i)
		}
		fn(c, buf)
		mu.Lock()
		results[c.Rank()] = buf
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	return results
}

// TestAllreduceSumFP16Exact: small integers are exactly representable in
// binary16 and their sums stay within the exact range (≤2048), so the
// compressed ring must reproduce the exact sum bit for bit — the
// "bit-safe where promised" half of the fp16 contract.
func TestAllreduceSumFP16Exact(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5, 8} {
		for _, n := range []int{1, 2, 13, 100, 257, 1000} {
			seed := func(rank, i int) float32 { return float32((rank+i)%17 - 8) }
			got := runAllRanks(t, size, n, seed, func(c *Comm, buf []float32) {
				c.AllreduceSumFP16(buf)
			})
			for i := 0; i < n; i++ {
				var want float32
				for r := 0; r < size; r++ {
					want += seed(r, i)
				}
				for r := 0; r < size; r++ {
					if got[r][i] != want {
						t.Fatalf("size=%d n=%d rank=%d elem=%d: got %g want %g",
							size, n, r, i, got[r][i], want)
					}
				}
			}
		}
	}
}

// TestAllreduceSumFP16QuantizedClose: on arbitrary values the compressed
// result must stay within the accumulated fp16 rounding envelope of the
// exact sum (one rounding per ring hop), and all ranks must agree
// bit-wise — replicas diverging silently is the failure mode that
// destroys data-parallel training.
func TestAllreduceSumFP16QuantizedClose(t *testing.T) {
	for _, size := range []int{2, 4, 7} {
		n := 1003
		seed := func(rank, i int) float32 {
			return float32(math.Sin(float64(rank*n+i))) * 0.1
		}
		got := runAllRanks(t, size, n, seed, func(c *Comm, buf []float32) {
			c.AllreduceSumFP16(buf)
		})
		for i := 0; i < n; i++ {
			var want float64
			for r := 0; r < size; r++ {
				want += float64(seed(r, i))
			}
			// p−1 hops each round through fp16: ≤ (p−1)·2^-11 relative on a
			// magnitude bounded by the running sum; use a generous absolute
			// bound scaled to the value range (|sum| ≤ 0.1·p).
			tol := float64(size) * 0.1 / 2048 * float64(size)
			if d := math.Abs(float64(got[0][i]) - want); d > tol {
				t.Fatalf("size=%d elem=%d: |%g - %g| = %g > %g", size, i, got[0][i], want, d, tol)
			}
			for r := 1; r < size; r++ {
				if math.Float32bits(got[r][i]) != math.Float32bits(got[0][i]) {
					t.Fatalf("size=%d elem=%d: rank %d (%#x) disagrees with rank 0 (%#x)",
						size, i, r, math.Float32bits(got[r][i]), math.Float32bits(got[0][i]))
				}
			}
		}
	}
}

// TestAllreduceSumFP16ChunkSweep exercises the pipelined sub-chunking
// boundaries (1-element sub-chunks, odd lengths, sub-chunks larger than
// ring chunks) — the same sweep the uncompressed ring is pinned by.
func TestAllreduceSumFP16ChunkSweep(t *testing.T) {
	for _, cs := range []int{1, 3, 8, 1024} {
		old := SetRingChunkElems(cs)
		for _, size := range []int{2, 3, 5} {
			for _, n := range []int{1, 13, 257} {
				seed := func(rank, i int) float32 { return float32((rank*3+i)%11 - 5) }
				got := runAllRanks(t, size, n, seed, func(c *Comm, buf []float32) {
					c.AllreduceSumFP16(buf)
				})
				for i := 0; i < n; i++ {
					var want float32
					for r := 0; r < size; r++ {
						want += seed(r, i)
					}
					if got[0][i] != want {
						t.Fatalf("cs=%d size=%d n=%d elem=%d: got %g want %g", cs, size, n, i, got[0][i], want)
					}
				}
			}
		}
		SetRingChunkElems(old)
	}
}

// TestAllreduceSumNodeAware checks the two-level design across topology
// shapes — divisible and ragged node widths, exact and fp16 inter-node
// wire — against the flat exact sum.
func TestAllreduceSumNodeAware(t *testing.T) {
	for _, fp16 := range []bool{false, true} {
		for _, tc := range []struct{ size, gs int }{
			{1, 1}, {2, 1}, {4, 2}, {4, 4}, {8, 4}, {6, 4}, {7, 3}, {8, 1},
		} {
			for _, n := range []int{1, 13, 257, 1000} {
				seed := func(rank, i int) float32 { return float32((rank+2*i)%13 - 6) }
				w := NewWorld(tc.size)
				w.SetGPUsPerNode(tc.gs)
				var mu sync.Mutex
				results := make([][]float32, tc.size)
				if err := w.Run(func(c *Comm) {
					buf := make([]float32, n)
					for i := range buf {
						buf[i] = seed(c.Rank(), i)
					}
					c.AllreduceSumNodeAware(buf, fp16)
					mu.Lock()
					results[c.Rank()] = buf
					mu.Unlock()
				}); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < n; i++ {
					var want float32
					for r := 0; r < tc.size; r++ {
						want += seed(r, i)
					}
					for r := 0; r < tc.size; r++ {
						// Small integers: exact through fp16 as well.
						if results[r][i] != want {
							t.Fatalf("fp16=%v size=%d gs=%d n=%d rank=%d elem=%d: got %g want %g",
								fp16, tc.size, tc.gs, n, r, i, results[r][i], want)
						}
					}
				}
			}
		}
	}
}

// TestCompressedAllreduceProfiled: the fp16 and node-aware variants must
// record themselves under the "allreduce" hvprof op with the compressed
// wire payload — the message size the paper's bucket tables key on.
func TestCompressedAllreduceProfiled(t *testing.T) {
	w := NewWorld(4)
	w.SetGPUsPerNode(2)
	prof := &countingProfiler{}
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Profiler = prof
		}
		buf := make([]float32, 1001)
		c.AllreduceSumFP16(buf)
		c.AllreduceSumNodeAware(buf, true)
	})
	if prof.ops["allreduce"] != 2 {
		t.Fatalf("allreduce records: %d, want 2", prof.ops["allreduce"])
	}
	wantBytes := 2 * int64(tensor.HalfWords(1001)) * 4
	if prof.bytes["allreduce"] != wantBytes {
		t.Fatalf("allreduce bytes: %d, want %d (compressed wire size)", prof.bytes["allreduce"], wantBytes)
	}
}

// TestCompressedAllreduceZeroAlloc pins the steady-state zero-allocation
// contract of both compressed hot paths, matching the standard the
// uncompressed collectives are held to.
func TestCompressedAllreduceZeroAlloc(t *testing.T) {
	const runs = 50
	for _, variant := range []string{"fp16", "node-aware-fp16"} {
		w := NewWorld(4)
		w.SetGPUsPerNode(2)
		var got float64
		w.Run(func(c *Comm) {
			buf := make([]float32, 3001)
			iter := func() {
				if variant == "fp16" {
					c.AllreduceSumFP16(buf)
				} else {
					c.AllreduceSumNodeAware(buf, true)
				}
			}
			for i := 0; i < 3; i++ {
				iter()
			}
			if c.Rank() == 0 {
				got = testing.AllocsPerRun(runs, iter)
			} else {
				for i := 0; i < runs+1; i++ {
					iter()
				}
			}
		})
		if got != 0 {
			t.Errorf("%s: %g allocs per allreduce, want 0", variant, got)
		}
	}
}

// TestSentBytesMeter: the per-rank wire meter must count exactly the
// payload Send moves — differencing it is how bench-comm measures the
// compression ratio on the wire.
func TestSentBytesMeter(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 5, make([]float32, 100))
		} else {
			c.Recv(0, 5, make([]float32, 100))
		}
	})
	c0 := w.Comm(0)
	if got := c0.SentBytes(); got != 400 {
		t.Fatalf("rank 0 sent %d bytes, want 400", got)
	}
	if got := w.Comm(1).SentBytes(); got != 0 {
		t.Fatalf("rank 1 sent %d bytes, want 0", got)
	}
}

// TestSetGPUsPerNodeValidation pins the panic on nonsensical topology.
func TestSetGPUsPerNodeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for GPUs per node < 1")
		}
	}()
	NewWorld(2).SetGPUsPerNode(0)
}
