package mpi

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, []float32{1, 2, 3})
		} else {
			buf := make([]float32, 3)
			c.Recv(0, 7, buf)
			if buf[0] != 1 || buf[2] != 3 {
				t.Errorf("recv %v", buf)
			}
		}
	})
}

func TestSendCopiesBuffer(t *testing.T) {
	w := NewWorld(2)
	var got []float32
	var mu sync.Mutex
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			buf := []float32{42}
			c.Send(1, 1, buf)
			buf[0] = 0 // mutate after send; receiver must see 42
			c.Barrier()
		} else {
			c.Barrier()
			b := make([]float32, 1)
			c.Recv(0, 1, b)
			mu.Lock()
			got = b
			mu.Unlock()
		}
	})
	if got[0] != 42 {
		t.Fatalf("send did not copy: got %v", got)
	}
}

func TestTagMatching(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 5, []float32{5})
			c.Send(1, 9, []float32{9})
		} else {
			b := make([]float32, 1)
			c.Recv(0, 9, b) // receive out of arrival order by tag
			if b[0] != 9 {
				t.Errorf("tag 9 got %v", b)
			}
			c.Recv(0, 5, b)
			if b[0] != 5 {
				t.Errorf("tag 5 got %v", b)
			}
		}
	})
}

func TestMessageOrderingSameTag(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			for i := 0; i < 20; i++ {
				c.Send(1, 3, []float32{float32(i)})
			}
		} else {
			b := make([]float32, 1)
			for i := 0; i < 20; i++ {
				c.Recv(0, 3, b)
				if b[0] != float32(i) {
					t.Errorf("message %d arrived as %g", i, b[0])
				}
			}
		}
	})
}

func TestRecvSizeMismatchPanics(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, []float32{1, 2})
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("expected panic on size mismatch")
			}
		}()
		c.Recv(0, 1, make([]float32, 3))
	})
}

func TestBcastAllRoots(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 7, 8, 16} {
		for root := 0; root < size; root += (size + 2) / 3 {
			w := NewWorld(size)
			var mu sync.Mutex
			results := make(map[int][]float32)
			w.Run(func(c *Comm) {
				buf := make([]float32, 5)
				if c.Rank() == root {
					for i := range buf {
						buf[i] = float32(i + 10)
					}
				}
				c.Bcast(buf, root)
				mu.Lock()
				results[c.Rank()] = buf
				mu.Unlock()
			})
			for r, buf := range results {
				for i := range buf {
					if buf[i] != float32(i+10) {
						t.Fatalf("size=%d root=%d rank=%d: %v", size, root, r, buf)
					}
				}
			}
		}
	}
}

func TestBarrierCompletes(t *testing.T) {
	for _, size := range []int{1, 2, 5, 8} {
		w := NewWorld(size)
		w.Run(func(c *Comm) {
			for i := 0; i < 3; i++ {
				c.Barrier()
			}
		})
	}
}

func allreduceCase(t *testing.T, size, n int, algo AllreduceAlgo) {
	t.Helper()
	w := NewWorld(size)
	var mu sync.Mutex
	results := make([][]float32, size)
	w.Run(func(c *Comm) {
		buf := make([]float32, n)
		for i := range buf {
			buf[i] = float32(c.Rank()*n + i)
		}
		c.AllreduceSum(buf, algo)
		mu.Lock()
		results[c.Rank()] = buf
		mu.Unlock()
	})
	// Expected: sum over ranks of (r*n + i).
	for r, buf := range results {
		for i := range buf {
			var want float32
			for rr := 0; rr < size; rr++ {
				want += float32(rr*n + i)
			}
			if math.Abs(float64(buf[i]-want)) > 1e-3 {
				t.Fatalf("size=%d n=%d algo=%v rank=%d elem=%d: got %g want %g",
					size, n, algo, r, i, buf[i], want)
			}
		}
	}
}

func TestAllreduceSumAllAlgorithms(t *testing.T) {
	for _, algo := range []AllreduceAlgo{AlgoRing, AlgoRecursiveDoubling, AlgoNaive} {
		for _, size := range []int{1, 2, 3, 4, 5, 8, 13} {
			for _, n := range []int{1, 7, 64, 1000} {
				allreduceCase(t, size, n, algo)
			}
		}
	}
}

func TestAllreduceSmallerThanWorld(t *testing.T) {
	// n < p exercises empty ring chunks.
	allreduceCase(t, 8, 3, AlgoRing)
	allreduceCase(t, 13, 5, AlgoRing)
}

// Property: ring and naive allreduce agree on random inputs.
func TestQuickAllreduceAgreement(t *testing.T) {
	f := func(vals []float32, sizeRaw uint8) bool {
		size := int(sizeRaw)%6 + 2
		n := len(vals)
		if n == 0 {
			return true
		}
		for i, v := range vals {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) || v > 1e3 || v < -1e3 {
				vals[i] = 1
			}
		}
		run := func(algo AllreduceAlgo) []float32 {
			w := NewWorld(size)
			out := make([][]float32, size)
			var mu sync.Mutex
			w.Run(func(c *Comm) {
				buf := make([]float32, n)
				for i := range buf {
					buf[i] = vals[i] * float32(c.Rank()+1)
				}
				c.AllreduceSum(buf, algo)
				mu.Lock()
				out[c.Rank()] = buf
				mu.Unlock()
			})
			return out[0]
		}
		a, b := run(AlgoRing), run(AlgoNaive)
		for i := range a {
			if math.Abs(float64(a[i]-b[i])) > 1e-2*(math.Abs(float64(b[i]))+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMin(t *testing.T) {
	for _, size := range []int{2, 3, 8} {
		w := NewWorld(size)
		var mu sync.Mutex
		results := make([][]float32, size)
		w.Run(func(c *Comm) {
			// Element i is 1 except rank i%size reports 0 — a readiness mask.
			buf := make([]float32, size*2)
			for i := range buf {
				buf[i] = 1
				if i%size == c.Rank() {
					buf[i] = 0
				}
			}
			c.AllreduceMin(buf)
			mu.Lock()
			results[c.Rank()] = buf
			mu.Unlock()
		})
		for r, buf := range results {
			for i, v := range buf {
				if v != 0 {
					t.Fatalf("size=%d rank=%d elem=%d: min should be 0, got %g", size, r, i, v)
				}
			}
		}
	}
}

func TestGather(t *testing.T) {
	size := 5
	w := NewWorld(size)
	var got []float32
	w.Run(func(c *Comm) {
		in := []float32{float32(c.Rank()), float32(c.Rank() * 10)}
		if c.Rank() == 2 {
			out := make([]float32, 2*size)
			c.Gather(in, out, 2)
			got = out
		} else {
			c.Gather(in, nil, 2)
		}
	})
	for r := 0; r < size; r++ {
		if got[2*r] != float32(r) || got[2*r+1] != float32(r*10) {
			t.Fatalf("gather: %v", got)
		}
	}
}

func TestAllgather(t *testing.T) {
	for _, size := range []int{1, 2, 4, 7} {
		w := NewWorld(size)
		var mu sync.Mutex
		results := make([][]float32, size)
		w.Run(func(c *Comm) {
			in := []float32{float32(c.Rank() + 100)}
			out := make([]float32, size)
			c.Allgather(in, out)
			mu.Lock()
			results[c.Rank()] = out
			mu.Unlock()
		})
		for r, out := range results {
			for i, v := range out {
				if v != float32(i+100) {
					t.Fatalf("size=%d rank=%d: %v", size, r, out)
				}
			}
		}
	}
}

type countingProfiler struct {
	mu    sync.Mutex
	ops   map[string]int
	bytes map[string]int64
}

func (p *countingProfiler) Record(op string, bytes int64, seconds float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ops == nil {
		p.ops = map[string]int{}
		p.bytes = map[string]int64{}
	}
	p.ops[op]++
	p.bytes[op] += bytes
}

func TestProfilerReceivesRecords(t *testing.T) {
	w := NewWorld(4)
	prof := &countingProfiler{}
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Profiler = prof
		}
		buf := make([]float32, 256)
		c.AllreduceSum(buf, AlgoRing)
		c.Bcast(buf, 0)
	})
	if prof.ops["allreduce"] != 1 {
		t.Fatalf("allreduce records: %d", prof.ops["allreduce"])
	}
	if prof.bytes["allreduce"] != 1024 {
		t.Fatalf("allreduce bytes: %d", prof.bytes["allreduce"])
	}
	if prof.ops["bcast"] != 1 {
		t.Fatalf("bcast records: %d", prof.ops["bcast"])
	}
}

func TestWorldValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size 0")
		}
	}()
	NewWorld(0)
}

func TestCommRankValidation(t *testing.T) {
	w := NewWorld(2)
	for _, r := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rank %d: expected panic", r)
				}
			}()
			w.Comm(r)
		}()
	}
}

func TestAlgoString(t *testing.T) {
	if AlgoRing.String() != "ring" || AlgoNaive.String() != "naive" {
		t.Fatal("algo names wrong")
	}
	if AllreduceAlgo(99).String() == "" {
		t.Fatal("unknown algo should still render")
	}
}
