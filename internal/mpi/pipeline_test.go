package mpi

import (
	"sync"
	"testing"
)

// TestRingChunkPipelineSweep checks the pipelined ring against the naive
// reference across sub-chunk granularities, including pathological ones
// (1-element sub-chunks, sub-chunks larger than any ring chunk).
func TestRingChunkPipelineSweep(t *testing.T) {
	for _, cs := range []int{1, 3, 8, 1024} {
		old := SetRingChunkElems(cs)
		for _, size := range []int{2, 3, 5, 8} {
			for _, n := range []int{1, 13, 100, 257} {
				allreduceCase(t, size, n, AlgoRing)
			}
		}
		SetRingChunkElems(old)
	}
}

func TestSetRingChunkElemsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for chunk < 1")
		}
	}()
	SetRingChunkElems(0)
}

// TestAllreduceSteadyStateZeroAlloc pins the zero-alloc contract of the
// communication hot path: after warmup, an allreduce performs no heap
// allocations on any rank — message payloads come from the world's buffer
// pool and algorithm scratch from the per-Comm pool. Rank 0 measures with
// testing.AllocsPerRun (which runs the function runs+1 times, warmup
// included); peers execute exactly matching iterations.
func TestAllreduceSteadyStateZeroAlloc(t *testing.T) {
	const runs = 50
	for _, algo := range []AllreduceAlgo{AlgoRing, AlgoRecursiveDoubling, AlgoNaive} {
		w := NewWorld(4)
		var got float64
		w.Run(func(c *Comm) {
			buf := make([]float32, 3000)
			iter := func() { c.AllreduceSum(buf, algo) }
			// Prime pools and scratch on every rank before measuring.
			for i := 0; i < 3; i++ {
				iter()
			}
			if c.Rank() == 0 {
				got = testing.AllocsPerRun(runs, iter)
			} else {
				for i := 0; i < runs+1; i++ {
					iter()
				}
			}
		})
		if got != 0 {
			t.Errorf("algo=%v: %g allocs per allreduce, want 0", algo, got)
		}
	}
}

// TestSendRecvSteadyStateZeroAlloc checks the pooled point-to-point path
// directly.
func TestSendRecvSteadyStateZeroAlloc(t *testing.T) {
	const runs = 50
	w := NewWorld(2)
	var got float64
	w.Run(func(c *Comm) {
		buf := make([]float32, 500)
		peer := 1 - c.Rank()
		iter := func() {
			c.Sendrecv(peer, 7, buf, peer, 7, buf)
		}
		for i := 0; i < 3; i++ {
			iter()
		}
		if c.Rank() == 0 {
			got = testing.AllocsPerRun(runs, iter)
		} else {
			for i := 0; i < runs+1; i++ {
				iter()
			}
		}
	})
	if got != 0 {
		t.Errorf("%g allocs per sendrecv, want 0", got)
	}
}

// TestBarrierAndGatherProfiled covers the collectives that previously
// bypassed the profiler entirely.
func TestBarrierAndGatherProfiled(t *testing.T) {
	w := NewWorld(4)
	prof := &countingProfiler{}
	out := make([]float32, 4)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Profiler = prof
		}
		c.Barrier()
		in := []float32{float32(c.Rank())}
		if c.Rank() == 0 {
			c.Gather(in, out, 0)
		} else {
			c.Gather(in, nil, 0)
		}
	})
	if prof.ops["barrier"] != 1 {
		t.Errorf("barrier records: %d, want 1", prof.ops["barrier"])
	}
	if prof.ops["gather"] != 1 {
		t.Errorf("gather records: %d, want 1", prof.ops["gather"])
	}
}

// TestBcastProfiledSingleRank: a single-rank world must still record the
// (trivial) broadcast — the old early return skipped it.
func TestBcastProfiledSingleRank(t *testing.T) {
	w := NewWorld(1)
	prof := &countingProfiler{}
	w.Run(func(c *Comm) {
		c.Profiler = prof
		buf := make([]float32, 8)
		c.Bcast(buf, 0)
		c.Allgather(buf, buf[:8])
	})
	if prof.ops["bcast"] != 1 {
		t.Errorf("bcast records: %d, want 1", prof.ops["bcast"])
	}
	if prof.ops["allgather"] != 1 {
		t.Errorf("allgather records: %d, want 1", prof.ops["allgather"])
	}
}

// TestNegotiateMin checks the dedicated negotiation collective: same min
// semantics as AllreduceMin, recorded under the "negotiate" op.
func TestNegotiateMin(t *testing.T) {
	w := NewWorld(4)
	prof := &countingProfiler{}
	var mu sync.Mutex
	results := make([][]float32, 4)
	w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Profiler = prof
		}
		mask := []float32{1, 1, 1, 1}
		mask[c.Rank()] = 0
		c.NegotiateMin(mask)
		mu.Lock()
		results[c.Rank()] = mask
		mu.Unlock()
	})
	for r, mask := range results {
		for i, v := range mask {
			if v != 0 {
				t.Fatalf("rank %d elem %d: %g, want 0", r, i, v)
			}
		}
	}
	if prof.ops["negotiate"] != 1 {
		t.Errorf("negotiate records: %d, want 1", prof.ops["negotiate"])
	}
	if prof.ops["allreduce"] != 0 {
		t.Errorf("negotiation leaked into allreduce op: %d records", prof.ops["allreduce"])
	}
}
