package mpi

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunRecoversPanicAndReportsRank pins the satellite bugfix: a panic
// in one rank's goroutine (here the Recv length-mismatch panic) must not
// take down the process or the unrelated ranks, and the returned error
// must say which rank failed and why.
func TestRunRecoversPanicAndReportsRank(t *testing.T) {
	w := NewWorld(3)
	var rank2Done atomic.Bool
	err := w.Run(func(c *Comm) {
		switch c.Rank() {
		case 0:
			c.Send(1, 1, []float32{1, 2})
		case 1:
			c.Recv(0, 1, make([]float32, 3)) // panics: size mismatch
		case 2:
			rank2Done.Store(true) // unrelated rank keeps working
		}
	})
	if err == nil {
		t.Fatal("expected an error from the panicking rank")
	}
	if !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("error does not identify rank 1: %v", err)
	}
	if !strings.Contains(err.Error(), "3 elements") {
		t.Fatalf("error does not carry the panic cause: %v", err)
	}
	if !rank2Done.Load() {
		t.Fatal("unrelated rank 2 did not complete")
	}
	if got := w.FailedRanks(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("FailedRanks = %v, want [1]", got)
	}
}

// TestRunCleanReturnsNil checks the healthy path is unchanged.
func TestRunCleanReturnsNil(t *testing.T) {
	w := NewWorld(4)
	if err := w.Run(func(c *Comm) { c.Barrier() }); err != nil {
		t.Fatalf("clean run returned %v", err)
	}
	if got := w.Survivors(); len(got) != 4 {
		t.Fatalf("Survivors = %v, want all 4", got)
	}
}

// TestRecvDeadlineDetectsSilentPeer: with a receive timeout set, a Recv
// on a rank that never sends surfaces as ErrRankFailed/ErrRecvTimeout
// instead of hanging forever.
func TestRecvDeadlineDetectsSilentPeer(t *testing.T) {
	w := NewWorld(2)
	w.SetRecvTimeout(50 * time.Millisecond)
	start := time.Now()
	err := w.Run(func(c *Comm) {
		if c.Rank() == 0 {
			c.Recv(1, 7, make([]float32, 1)) // rank 1 never sends
		}
	})
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if !errors.Is(err, ErrRankFailed) || !errors.Is(err, ErrRecvTimeout) {
		t.Fatalf("error chain missing sentinels: %v", err)
	}
	var re *RankError
	if !errors.As(err, &re) || re.Rank != 1 {
		t.Fatalf("expected *RankError naming rank 1, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("detection took %v, deadline not honored", elapsed)
	}
}

// TestCrashInjectionUnblocksCollective: rank 1 crashes at its fault
// point while the others enter an allreduce that needs it. The survivors
// must error out via the failure registry (no timeout configured — the
// in-process crash propagates through markDown) rather than deadlock.
func TestCrashInjectionUnblocksCollective(t *testing.T) {
	w := NewWorld(3)
	plan := NoFaults()
	plan.CrashRank, plan.CrashStep = 1, 0
	w.SetFaultPlan(plan)
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(c *Comm) {
			c.FaultPoint(0) // rank 1 dies here
			buf := []float32{float32(c.Rank())}
			c.AllreduceSum(buf, AlgoRing)
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected failure error")
		}
		if !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("error chain missing ErrInjectedFault: %v", err)
		}
		if got := w.FailedRanks(); len(got) != 1 || got[0] != 1 {
			t.Fatalf("FailedRanks = %v, want [1]", got)
		}
		if got := w.Survivors(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
			t.Fatalf("Survivors = %v, want [0 2]", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("collective deadlocked on crashed rank")
	}
}

// TestMessagesBeforeCrashStillDelivered: in-flight messages sent before
// a rank died are drained first; only the missing ones fail.
func TestMessagesBeforeCrashStillDelivered(t *testing.T) {
	w := NewWorld(2)
	var got float32
	err := w.Run(func(c *Comm) {
		if c.Rank() == 1 {
			c.Send(0, 3, []float32{42})
			panic(&RankError{Rank: 1, Err: ErrInjectedFault})
		}
		buf := make([]float32, 1)
		c.Recv(1, 3, buf) // already queued: must succeed
		got = buf[0]
		c.Recv(1, 4, buf) // never sent: must fail fast
	})
	if got != 42 {
		t.Fatalf("pre-crash message lost: got %g", got)
	}
	if err == nil || !errors.Is(err, ErrRankFailed) {
		t.Fatalf("expected rank-failed error, got %v", err)
	}
}

// TestDropPlanDetectedByDeadline: a rank whose sends silently vanish (a
// partitioned node — the process is alive, so no panic ever marks it
// down) is detected by the receive deadline on its peers.
func TestDropPlanDetectedByDeadline(t *testing.T) {
	w := NewWorld(2)
	w.SetRecvTimeout(60 * time.Millisecond)
	plan := NoFaults()
	plan.DropRank, plan.DropAfter = 1, 1 // first send delivered, rest lost
	w.SetFaultPlan(plan)
	err := w.Run(func(c *Comm) {
		buf := make([]float32, 1)
		if c.Rank() == 1 {
			c.Send(0, 1, buf) // delivered
			c.Send(0, 2, buf) // dropped
			return
		}
		c.Recv(1, 1, buf)
		c.Recv(1, 2, buf) // never arrives → deadline
	})
	if err == nil || !errors.Is(err, ErrRecvTimeout) {
		t.Fatalf("expected recv-timeout error, got %v", err)
	}
	if got := w.FailedRanks(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("FailedRanks = %v, want [1]", got)
	}
}

// TestDelayPlanSlowsButDelivers: a delayed link stays within a generous
// deadline; nothing is declared failed and data is intact.
func TestDelayPlanSlowsButDelivers(t *testing.T) {
	w := NewWorld(2)
	w.SetRecvTimeout(5 * time.Second)
	plan := NoFaults()
	plan.DelayRank, plan.Delay = 1, 20*time.Millisecond
	w.SetFaultPlan(plan)
	start := time.Now()
	err := w.Run(func(c *Comm) {
		buf := []float32{float32(c.Rank() + 1)}
		if c.Rank() == 1 {
			c.Send(0, 9, buf)
			return
		}
		c.Recv(1, 9, buf)
		if buf[0] != 2 {
			t.Errorf("delayed payload corrupted: %g", buf[0])
		}
	})
	if err != nil {
		t.Fatalf("delay must not fail the run: %v", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("delay was not applied")
	}
}

// TestCascadeAbortClassifiedAsSurvivor: rank 2 crashes; rank 0 and 1,
// blocked on collectives needing it, abort with peer-failure errors but
// remain survivors for the elastic restart.
func TestCascadeAbortClassifiedAsSurvivor(t *testing.T) {
	w := NewWorld(3)
	plan := NoFaults()
	plan.CrashRank, plan.CrashStep = 2, 5
	w.SetFaultPlan(plan)
	err := w.Run(func(c *Comm) {
		c.FaultPoint(5)
		buf := []float32{1}
		c.AllreduceSum(buf, AlgoNaive)
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got := w.Survivors(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("Survivors = %v, want [0 1]", got)
	}
}

// TestFaultPointNoPlanIsFree: without a plan, FaultPoint is a no-op.
func TestFaultPointNoPlanIsFree(t *testing.T) {
	w := NewWorld(2)
	if err := w.Run(func(c *Comm) {
		for s := 0; s < 100; s++ {
			c.FaultPoint(s)
		}
	}); err != nil {
		t.Fatal(err)
	}
}
