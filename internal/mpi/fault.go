package mpi

import (
	"errors"
	"fmt"
	"sort"
	"time"
)

// Failure sentinels. Every failure the substrate reports is wrapped in a
// *RankError, and errors.Is(err, ErrRankFailed) matches all of them;
// the finer-grained sentinels name the cause.
var (
	// ErrRankFailed matches any *RankError (the generic "a rank is gone").
	ErrRankFailed = errors.New("mpi: rank failed")
	// ErrRecvTimeout is the cause when a peer stayed silent past the
	// world's receive deadline — the timeout-based failure detection
	// Horovod uses for stall/dead-worker detection.
	ErrRecvTimeout = errors.New("mpi: receive deadline exceeded")
	// ErrInjectedFault is the cause planted by a FaultPlan crash.
	ErrInjectedFault = errors.New("mpi: injected fault")
)

// RankError reports that a rank can no longer participate in the world:
// it crashed, panicked, timed out, or aborted after observing another
// failure. Rank is the rank being reported dead (not necessarily the
// rank that detected it); Err is the cause.
type RankError struct {
	Rank int
	Err  error
}

func (e *RankError) Error() string {
	return fmt.Sprintf("mpi: rank %d failed: %v", e.Rank, e.Err)
}

// Unwrap exposes the cause to errors.Is/As chains.
func (e *RankError) Unwrap() error { return e.Err }

// Is makes every RankError match the generic ErrRankFailed sentinel.
func (e *RankError) Is(target error) bool { return target == ErrRankFailed }

// FaultPlan is a deterministic fault-injection schedule for a World. The
// zero value injects nothing only by accident of rank 0 existing; build
// plans from NoFaults so disabled slots are explicit (-1).
type FaultPlan struct {
	// CrashRank dies with ErrInjectedFault when it calls
	// Comm.FaultPoint(CrashStep) — training loops call FaultPoint once
	// per step, so this is "rank crashes at step N". -1 disables.
	CrashRank int
	// CrashStep is the FaultPoint argument at which CrashRank dies.
	CrashStep int

	// DropRank's sends vanish silently starting with its (DropAfter+1)-th
	// message: the process keeps computing but peers stop hearing from it
	// (a dead NIC / partitioned node). Peers detect it through the
	// receive deadline. -1 disables.
	DropRank  int
	DropAfter int

	// DelayRank's messages are delivered only after Delay (a slow link;
	// exercises deadline tuning without killing anyone). -1 disables.
	DelayRank int
	Delay     time.Duration
}

// NoFaults returns a plan with every injection disabled.
func NoFaults() FaultPlan {
	return FaultPlan{CrashRank: -1, DropRank: -1, DelayRank: -1}
}

// active reports whether the plan injects anything at all.
func (p FaultPlan) active() bool {
	return p.CrashRank >= 0 || p.DropRank >= 0 || (p.DelayRank >= 0 && p.Delay > 0)
}

// SetFaultPlan installs a fault-injection schedule. Call before Run.
func (w *World) SetFaultPlan(p FaultPlan) {
	if p.active() {
		w.plan = &p
	} else {
		w.plan = nil
	}
}

// SetRecvTimeout bounds how long any Recv waits for a message before
// declaring the sender failed (0, the default, waits forever). Deadlines
// are evaluated by a watchdog that World.Run manages, so timeouts fire
// only inside Run — exactly where multi-rank jobs live.
func (w *World) SetRecvTimeout(d time.Duration) { w.recvTimeout = d }

// markDown records that a rank is out of the computation and wakes every
// blocked receiver so the failure propagates instead of deadlocking.
// root distinguishes the rank that originated a failure (crash, panic,
// timeout victim) from ranks that merely aborted after observing one;
// only root failures are excluded from Survivors.
func (w *World) markDown(rank int, cause error, root bool) {
	w.fmu.Lock()
	if _, dup := w.down[rank]; !dup {
		w.down[rank] = cause
	}
	if root {
		if _, dup := w.rootFailed[rank]; !dup {
			w.rootFailed[rank] = cause
		}
	}
	w.fmu.Unlock()
	for _, mb := range w.mailboxes {
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
}

// downCause returns the recorded cause if rank is down, else nil.
func (w *World) downCause(rank int) error {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	return w.down[rank]
}

// FailedRanks returns the ranks that originated failures (crashed,
// panicked, or were declared dead by a receive timeout), sorted.
func (w *World) FailedRanks() []int {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	ranks := make([]int, 0, len(w.rootFailed))
	for r := range w.rootFailed {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks
}

// Survivors returns the ranks that did not originate a failure — the set
// an elastic restart rebuilds the next, smaller world from. Ranks that
// aborted because a peer died count as survivors.
func (w *World) Survivors() []int {
	w.fmu.Lock()
	defer w.fmu.Unlock()
	var ranks []int
	for r := 0; r < w.size; r++ {
		if _, failed := w.rootFailed[r]; !failed {
			ranks = append(ranks, r)
		}
	}
	return ranks
}

// PeerFailure returns a *RankError for the lowest-numbered down rank
// (including the caller itself), or nil while the world is healthy.
// Background engines poll it between negotiation rounds so they abort
// instead of stalling on a dead peer's never-ready tensors.
func (c *Comm) PeerFailure() error {
	w := c.world
	w.fmu.Lock()
	defer w.fmu.Unlock()
	if len(w.down) == 0 {
		return nil
	}
	for r := 0; r < w.size; r++ {
		if cause, ok := w.down[r]; ok {
			return &RankError{Rank: r, Err: cause}
		}
	}
	return nil
}

// FaultPoint is the per-step injection hook: training loops call it once
// per step, and a FaultPlan scheduled to crash this rank at this step
// kills it here — the rank marks itself down (waking every peer blocked
// on it) and panics with a *RankError that World.Run converts into a
// per-rank error. A nil plan makes this a no-op.
func (c *Comm) FaultPoint(step int) {
	p := c.world.plan
	if p == nil || p.CrashRank != c.rank || step != p.CrashStep {
		return
	}
	cause := fmt.Errorf("%w: rank %d crashed at step %d", ErrInjectedFault, c.rank, step)
	c.world.markDown(c.rank, cause, true)
	panic(&RankError{Rank: c.rank, Err: cause})
}

// recoverRankError converts a recovered panic value from rank's goroutine
// into that rank's error and records the rank as down. A *RankError
// naming another rank means this rank aborted after observing a peer
// failure (it survives an elastic restart); anything else — including a
// *RankError naming itself, the injected-crash path — makes this rank
// the root cause.
func (w *World) recoverRankError(rank int, r any) error {
	if err, ok := r.(error); ok {
		var re *RankError
		if errors.As(err, &re) {
			if re.Rank == rank {
				w.markDown(rank, re.Err, true)
				return err
			}
			wrapped := fmt.Errorf("rank %d aborted: %w", rank, err)
			w.markDown(rank, wrapped, false)
			return wrapped
		}
		// A plain error panic (e.g. Drain surfacing an engine failure):
		// keep the chain intact so callers can errors.Is the root cause.
		wrapped := fmt.Errorf("rank %d panicked: %w", rank, err)
		w.markDown(rank, wrapped, true)
		return wrapped
	}
	err := fmt.Errorf("rank %d panicked: %v", rank, r)
	w.markDown(rank, err, true)
	return err
}

// startWatchdog launches the deadline evaluator for Run: a ticker that
// periodically wakes every blocked receiver so expired Recv deadlines
// are noticed even when no message ever arrives. Returns a stop func.
// With no receive timeout configured there is nothing to evaluate and
// the returned stop is a no-op.
func (w *World) startWatchdog() func() {
	if w.recvTimeout <= 0 {
		return func() {}
	}
	tick := w.recvTimeout / 4
	const minTick, maxTick = time.Millisecond, 200 * time.Millisecond
	if tick < minTick {
		tick = minTick
	}
	if tick > maxTick {
		tick = maxTick
	}
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(tick)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				for _, mb := range w.mailboxes {
					mb.mu.Lock()
					mb.cond.Broadcast()
					mb.mu.Unlock()
				}
			}
		}
	}()
	return func() { close(stop) }
}
