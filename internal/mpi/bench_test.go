package mpi

import (
	"fmt"
	"testing"
)

// benchAllreduce measures one full allreduce across the world per
// iteration, for the given algorithm and message size.
func benchAllreduce(b *testing.B, size, elems int, algo AllreduceAlgo) {
	b.Helper()
	w := NewWorld(size)
	b.SetBytes(int64(elems) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(func(c *Comm) {
			buf := make([]float32, elems)
			for j := range buf {
				buf[j] = float32(c.Rank())
			}
			c.AllreduceSum(buf, algo)
		})
	}
}

func BenchmarkAllreduceAlgorithms(b *testing.B) {
	for _, algo := range []AllreduceAlgo{AlgoRing, AlgoRecursiveDoubling, AlgoNaive} {
		for _, elems := range []int{64, 65536} {
			b.Run(fmt.Sprintf("%v/%delems", algo, elems), func(b *testing.B) {
				benchAllreduce(b, 8, elems, algo)
			})
		}
	}
}

func BenchmarkHierarchicalAllreduce(b *testing.B) {
	w := NewWorld(8)
	b.SetBytes(65536 * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(func(c *Comm) {
			buf := make([]float32, 65536)
			c.HierarchicalAllreduce(buf, 4)
		})
	}
}

func BenchmarkBcast(b *testing.B) {
	w := NewWorld(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(func(c *Comm) {
			buf := make([]float32, 16384)
			c.Bcast(buf, 0)
		})
	}
}

func BenchmarkSendRecvLatency(b *testing.B) {
	w := NewWorld(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Run(func(c *Comm) {
			buf := []float32{1}
			if c.Rank() == 0 {
				c.Send(1, 1, buf)
				c.Recv(1, 2, buf)
			} else {
				c.Recv(0, 1, buf)
				c.Send(0, 2, buf)
			}
		})
	}
}
