package mpi

import (
	"fmt"
	"time"
)

// Tag ranges reserved per collective so concurrent collectives with
// different purposes cannot cross-match. User point-to-point traffic
// should use tags below tagBase.
// Each collective gets a 2^18-wide tag band, so per-step tag offsets
// (bounded by 2·world size) never collide across collectives for worlds
// up to 2^17 ranks.
const (
	tagBase      = 1 << 24
	tagStride    = 1 << 18
	tagBcast     = tagBase + 0*tagStride
	tagBarrier   = tagBase + 1*tagStride
	tagRing      = tagBase + 2*tagStride
	tagRecDouble = tagBase + 3*tagStride
	tagGather    = tagBase + 4*tagStride
	tagAllgather = tagBase + 5*tagStride
	tagReduce    = tagBase + 6*tagStride
)

// AllreduceAlgo selects the allreduce algorithm.
type AllreduceAlgo int

// Allreduce algorithms. Ring is bandwidth-optimal for large messages
// (NCCL's default); recursive doubling is latency-optimal for small ones;
// Naive (reduce + broadcast through a root) is the correctness reference.
const (
	AlgoRing AllreduceAlgo = iota
	AlgoRecursiveDoubling
	AlgoNaive
)

// String names the algorithm.
func (a AllreduceAlgo) String() string {
	switch a {
	case AlgoRing:
		return "ring"
	case AlgoRecursiveDoubling:
		return "recursive-doubling"
	case AlgoNaive:
		return "naive"
	default:
		return fmt.Sprintf("algo(%d)", int(a))
	}
}

// Bcast broadcasts root's buf to all ranks via a binomial tree.
func (c *Comm) Bcast(buf []float32, root int) {
	start := time.Now()
	size := c.world.size
	if size == 1 {
		return
	}
	// Renumber so the root is virtual rank 0, then run the standard
	// binomial tree: at round k (mask = 2^k), ranks below mask forward to
	// rank+mask; ranks in [mask, 2·mask) receive from rank−mask.
	vrank := (c.rank - root + size) % size
	for mask := 1; mask < size; mask <<= 1 {
		switch {
		case vrank < mask:
			if vrank+mask < size {
				c.Send((vrank+mask+root)%size, tagBcast, buf)
			}
		case vrank < 2*mask:
			c.Recv((vrank-mask+root)%size, tagBcast, buf)
		}
	}
	c.profile("bcast", int64(len(buf))*4, time.Since(start).Seconds())
}

// Barrier blocks until every rank has entered it (dissemination barrier).
func (c *Comm) Barrier() {
	size := c.world.size
	token := []float32{0}
	for dist := 1; dist < size; dist <<= 1 {
		dst := (c.rank + dist) % size
		src := (c.rank - dist + size) % size
		c.Sendrecv(dst, tagBarrier, token, src, tagBarrier, token)
	}
}

// AllreduceSum sums buf element-wise across all ranks; on return every
// rank's buf holds the global sum.
func (c *Comm) AllreduceSum(buf []float32, algo AllreduceAlgo) {
	start := time.Now()
	switch algo {
	case AlgoRing:
		c.ringAllreduce(buf, sumInto)
	case AlgoRecursiveDoubling:
		c.recursiveDoubling(buf, sumInto)
	case AlgoNaive:
		c.naiveAllreduce(buf, sumInto)
	default:
		panic(fmt.Sprintf("mpi: unknown allreduce algorithm %d", algo))
	}
	c.profile("allreduce", int64(len(buf))*4, time.Since(start).Seconds())
}

// AllreduceMin computes the element-wise minimum across ranks. Horovod's
// coordinator uses a min over readiness masks to find tensors ready on
// every rank.
func (c *Comm) AllreduceMin(buf []float32) {
	start := time.Now()
	c.recursiveDoubling(buf, minInto)
	c.profile("allreduce", int64(len(buf))*4, time.Since(start).Seconds())
}

func sumInto(dst, src []float32) {
	for i, v := range src {
		dst[i] += v
	}
}

func minInto(dst, src []float32) {
	for i, v := range src {
		if v < dst[i] {
			dst[i] = v
		}
	}
}

// ringAllreduce implements reduce-scatter + allgather over a logical ring:
// bandwidth-optimal (each rank sends 2·(p−1)/p of the buffer).
func (c *Comm) ringAllreduce(buf []float32, op func(dst, src []float32)) {
	p := c.world.size
	if p == 1 {
		return
	}
	n := len(buf)
	if n == 0 {
		return
	}
	// Chunk boundaries: chunk i covers [bound[i], bound[i+1]).
	bound := make([]int, p+1)
	for i := 0; i <= p; i++ {
		bound[i] = i * n / p
	}
	chunk := func(i int) []float32 {
		i = ((i % p) + p) % p
		return buf[bound[i]:bound[i+1]]
	}
	next := (c.rank + 1) % p
	prev := (c.rank - 1 + p) % p
	maxChunk := 0
	for i := 0; i < p; i++ {
		if s := bound[i+1] - bound[i]; s > maxChunk {
			maxChunk = s
		}
	}
	tmp := make([]float32, maxChunk)

	// Reduce-scatter: after p−1 steps, rank r owns the full sum of chunk
	// (r+1) mod p.
	for step := 0; step < p-1; step++ {
		sendIdx := c.rank - step
		recvIdx := c.rank - step - 1
		sc := chunk(sendIdx)
		rc := chunk(recvIdx)
		c.Send(next, tagRing+step, sc)
		c.Recv(prev, tagRing+step, tmp[:len(rc)])
		op(rc, tmp[:len(rc)])
	}
	// Allgather: circulate the completed chunks.
	for step := 0; step < p-1; step++ {
		sendIdx := c.rank + 1 - step
		recvIdx := c.rank - step
		sc := chunk(sendIdx)
		rc := chunk(recvIdx)
		c.Send(next, tagRing+p+step, sc)
		c.Recv(prev, tagRing+p+step, tmp[:len(rc)])
		copy(rc, tmp[:len(rc)])
	}
}

// recursiveDoubling implements the latency-optimal exchange for any rank
// count: non-powers-of-two fold the extra ranks into partners first.
func (c *Comm) recursiveDoubling(buf []float32, op func(dst, src []float32)) {
	p := c.world.size
	if p == 1 {
		return
	}
	// Largest power of two ≤ p.
	pof2 := 1
	for pof2*2 <= p {
		pof2 *= 2
	}
	rem := p - pof2
	tmp := make([]float32, len(buf))

	// Phase 1: ranks [0, 2·rem) pair up; odd ranks send to even partners
	// and sit out the main exchange.
	newRank := -1
	switch {
	case c.rank < 2*rem && c.rank%2 == 1:
		c.Send(c.rank-1, tagRecDouble, buf)
		// Wait for the final result in phase 3.
		c.Recv(c.rank-1, tagRecDouble+1, buf)
		return
	case c.rank < 2*rem:
		c.Recv(c.rank+1, tagRecDouble, tmp)
		op(buf, tmp)
		newRank = c.rank / 2
	default:
		newRank = c.rank - rem
	}

	// Phase 2: recursive doubling among pof2 virtual ranks.
	toReal := func(vr int) int {
		if vr < rem {
			return vr * 2
		}
		return vr + rem
	}
	for mask := 1; mask < pof2; mask <<= 1 {
		partner := toReal(newRank ^ mask)
		c.Sendrecv(partner, tagRecDouble+2+mask, buf, partner, tagRecDouble+2+mask, tmp)
		op(buf, tmp)
	}

	// Phase 3: deliver results back to the folded odd ranks.
	if c.rank < 2*rem && c.rank%2 == 0 {
		c.Send(c.rank+1, tagRecDouble+1, buf)
	}
}

// naiveAllreduce gathers to rank 0, reduces, and broadcasts — the
// correctness reference the optimized algorithms are tested against.
func (c *Comm) naiveAllreduce(buf []float32, op func(dst, src []float32)) {
	if c.rank == 0 {
		tmp := make([]float32, len(buf))
		for src := 1; src < c.world.size; src++ {
			c.Recv(src, tagReduce, tmp)
			op(buf, tmp)
		}
	} else {
		c.Send(0, tagReduce, buf)
	}
	c.Bcast(buf, 0)
}

// Gather collects equal-length contributions on root; on root, out must
// have size·len(in) elements. Other ranks may pass out nil.
func (c *Comm) Gather(in []float32, out []float32, root int) {
	if c.rank == root {
		if len(out) != len(in)*c.world.size {
			panic(fmt.Sprintf("mpi: Gather out has %d elements, want %d", len(out), len(in)*c.world.size))
		}
		copy(out[root*len(in):(root+1)*len(in)], in)
		for src := 0; src < c.world.size; src++ {
			if src == root {
				continue
			}
			c.Recv(src, tagGather, out[src*len(in):(src+1)*len(in)])
		}
	} else {
		c.Send(root, tagGather, in)
	}
}

// Allgather concatenates every rank's equal-length contribution on every
// rank: out has size·len(in) elements.
func (c *Comm) Allgather(in []float32, out []float32) {
	start := time.Now()
	p := c.world.size
	if len(out) != len(in)*p {
		panic(fmt.Sprintf("mpi: Allgather out has %d elements, want %d", len(out), len(in)*p))
	}
	copy(out[c.rank*len(in):(c.rank+1)*len(in)], in)
	if p == 1 {
		return
	}
	// Ring allgather.
	next := (c.rank + 1) % p
	prev := (c.rank - 1 + p) % p
	for step := 0; step < p-1; step++ {
		sendIdx := (c.rank - step + p) % p
		recvIdx := (c.rank - step - 1 + p) % p
		c.Send(next, tagAllgather+step, out[sendIdx*len(in):(sendIdx+1)*len(in)])
		c.Recv(prev, tagAllgather+step, out[recvIdx*len(in):(recvIdx+1)*len(in)])
	}
	c.profile("allgather", int64(len(out))*4, time.Since(start).Seconds())
}
