package mpi

import (
	"fmt"
	"time"

	"repro/internal/tensor"
)

// Tag ranges reserved per collective so concurrent collectives with
// different purposes cannot cross-match. User point-to-point traffic
// should use tags below tagBase.
// Each collective gets a 2^18-wide tag band, so per-step tag offsets
// (bounded by 2·world size) never collide across collectives for worlds
// up to 2^17 ranks.
const (
	tagBase      = 1 << 24
	tagStride    = 1 << 18
	tagBcast     = tagBase + 0*tagStride
	tagBarrier   = tagBase + 1*tagStride
	tagRing      = tagBase + 2*tagStride
	tagRecDouble = tagBase + 3*tagStride
	tagGather    = tagBase + 4*tagStride
	tagAllgather = tagBase + 5*tagStride
	tagReduce    = tagBase + 6*tagStride
)

// AllreduceAlgo selects the allreduce algorithm.
type AllreduceAlgo int

// Allreduce algorithms. Ring is bandwidth-optimal for large messages
// (NCCL's default); recursive doubling is latency-optimal for small ones;
// Naive (reduce + broadcast through a root) is the correctness reference.
const (
	AlgoRing AllreduceAlgo = iota
	AlgoRecursiveDoubling
	AlgoNaive
)

// String names the algorithm.
func (a AllreduceAlgo) String() string {
	switch a {
	case AlgoRing:
		return "ring"
	case AlgoRecursiveDoubling:
		return "recursive-doubling"
	case AlgoNaive:
		return "naive"
	default:
		return fmt.Sprintf("algo(%d)", int(a))
	}
}

// Bcast broadcasts root's buf to all ranks via a binomial tree.
func (c *Comm) Bcast(buf []float32, root int) {
	start := time.Now()
	size := c.world.size
	// Renumber so the root is virtual rank 0, then run the standard
	// binomial tree: at round k (mask = 2^k), ranks below mask forward to
	// rank+mask; ranks in [mask, 2·mask) receive from rank−mask. A
	// single-rank world still records the (trivial) collective so profiles
	// count every Bcast call.
	vrank := (c.rank - root + size) % size
	for mask := 1; mask < size; mask <<= 1 {
		switch {
		case vrank < mask:
			if vrank+mask < size {
				c.Send((vrank+mask+root)%size, tagBcast, buf)
			}
		case vrank < 2*mask:
			c.Recv((vrank-mask+root)%size, tagBcast, buf)
		}
	}
	c.profile("bcast", "bcast", int64(len(buf))*4, time.Since(start))
}

// Barrier blocks until every rank has entered it (dissemination barrier).
func (c *Comm) Barrier() {
	start := time.Now()
	size := c.world.size
	token := [1]float32{}
	rounds := int64(0)
	for dist := 1; dist < size; dist <<= 1 {
		dst := (c.rank + dist) % size
		src := (c.rank - dist + size) % size
		c.Sendrecv(dst, tagBarrier, token[:], src, tagBarrier, token[:])
		rounds++
	}
	c.profile("barrier", "barrier", rounds*4, time.Since(start))
}

// allreduceTraceOps are the algorithm-qualified span names indexed by
// AllreduceAlgo (static strings: the trace path must not allocate).
var allreduceTraceOps = [...]string{
	AlgoRing:              "allreduce/ring",
	AlgoRecursiveDoubling: "allreduce/recursive-doubling",
	AlgoNaive:             "allreduce/naive",
}

// AllreduceSum sums buf element-wise across all ranks; on return every
// rank's buf holds the global sum.
func (c *Comm) AllreduceSum(buf []float32, algo AllreduceAlgo) {
	start := time.Now()
	switch algo {
	case AlgoRing:
		c.ringAllreduce(buf, sumInto)
	case AlgoRecursiveDoubling:
		c.recursiveDoubling(buf, sumInto)
	case AlgoNaive:
		c.naiveAllreduce(buf, sumInto)
	default:
		panic(fmt.Sprintf("mpi: unknown allreduce algorithm %d", algo))
	}
	c.profile("allreduce", allreduceTraceOps[algo], int64(len(buf))*4, time.Since(start))
}

// AllreduceMin computes the element-wise minimum across ranks.
func (c *Comm) AllreduceMin(buf []float32) {
	start := time.Now()
	c.recursiveDoubling(buf, minInto)
	c.profile("allreduce", allreduceTraceOps[AlgoRecursiveDoubling], int64(len(buf))*4, time.Since(start))
}

// NegotiateMin is AllreduceMin recorded under the dedicated "negotiate"
// profile op. Horovod's coordinator mins readiness masks to find tensors
// ready on every rank; that is control traffic, and folding it into the
// "allreduce" op would inflate the apparent payload volume in profiles.
func (c *Comm) NegotiateMin(buf []float32) {
	start := time.Now()
	c.recursiveDoubling(buf, minInto)
	c.profile("negotiate", "negotiate", int64(len(buf))*4, time.Since(start))
}

// sumInto and minInto delegate to the SIMD-dispatched vector kernels in
// internal/tensor (AVX2 on amd64, scalar elsewhere); they are the
// reduction primitives of every collective here.
func sumInto(dst, src []float32) { tensor.VecAdd(dst, src) }

func minInto(dst, src []float32) { tensor.VecMin(dst, src) }

// ringChunkElems is the sub-chunk granularity (elements) of the pipelined
// ring allreduce. Each per-step ring chunk is walked in windows of this
// size so the transport of a reduced window overlaps the reduction of the
// next one; 64K floats (256 KB) keeps per-message fixed costs below a
// percent while still splitting multi-megabyte chunks into several
// in-flight pieces.
var ringChunkElems = 64 << 10

// SetRingChunkElems overrides the pipelined ring's sub-chunk granularity
// (in float32 elements) and returns the previous value. Benchmarks use it
// to sweep the pipeline depth; values < 1 panic.
func SetRingChunkElems(n int) int {
	if n < 1 {
		panic("mpi: ring chunk must be >= 1 element")
	}
	old := ringChunkElems
	ringChunkElems = n
	return old
}

// ringAllreduce implements reduce-scatter + allgather over a logical ring:
// bandwidth-optimal (each rank sends 2·(p−1)/p of the buffer).
//
// Both phases are chunk-pipelined: every per-step ring chunk is processed
// in sub-chunks of ringChunkElems, and each sub-chunk is forwarded to the
// next rank the moment it is reduced (or received, in the allgather), so
// downstream transport of sub-chunk k overlaps local reduction of
// sub-chunk k+1. Sub-chunks of one step share a tag; per-(src, tag) FIFO
// ordering keeps them in sequence. The only buffer is a per-Comm scratch
// of one sub-chunk.
func (c *Comm) ringAllreduce(buf []float32, op func(dst, src []float32)) {
	p := c.world.size
	if p == 1 {
		return
	}
	n := len(buf)
	if n == 0 {
		return
	}
	next := (c.rank + 1) % p
	prev := (c.rank - 1 + p) % p
	// Chunk i covers [i·n/p, (i+1)·n/p); bounds are computed, not stored.
	chunk := func(i int) []float32 {
		i = ((i % p) + p) % p
		return buf[i*n/p : (i+1)*n/p]
	}
	cs := ringChunkElems
	tmp := c.tmpScratch(min(cs, (n+p-1)/p))

	// Prime the pipeline: step 0's traffic is this rank's own chunk,
	// which needs no reduction first.
	own := chunk(c.rank)
	for lo := 0; lo < len(own); lo += cs {
		c.Send(next, tagRing, own[lo:min(lo+cs, len(own))])
	}
	// Reduce-scatter: at step s this rank accumulates into chunk
	// (rank−s−1); after p−1 steps, rank r owns the full sum of chunk
	// (r+1) mod p. Each reduced sub-chunk is sent onward immediately —
	// the last step's sub-chunks bridge straight into the allgather.
	for step := 0; step < p-1; step++ {
		rc := chunk(c.rank - step - 1)
		for lo := 0; lo < len(rc); lo += cs {
			hi := min(lo+cs, len(rc))
			t := tmp[:hi-lo]
			c.Recv(prev, tagRing+step, t)
			op(rc[lo:hi], t)
			if step < p-2 {
				c.Send(next, tagRing+step+1, rc[lo:hi])
			} else {
				c.Send(next, tagRing+p, rc[lo:hi])
			}
		}
	}
	// Allgather: circulate the completed chunks; received sub-chunks land
	// directly in place and are forwarded before the next one is awaited.
	for step := 0; step < p-1; step++ {
		rc := chunk(c.rank - step)
		for lo := 0; lo < len(rc); lo += cs {
			hi := min(lo+cs, len(rc))
			c.Recv(prev, tagRing+p+step, rc[lo:hi])
			if step < p-2 {
				c.Send(next, tagRing+p+step+1, rc[lo:hi])
			}
		}
	}
}

// recursiveDoubling implements the latency-optimal exchange for any rank
// count: non-powers-of-two fold the extra ranks into partners first.
func (c *Comm) recursiveDoubling(buf []float32, op func(dst, src []float32)) {
	p := c.world.size
	if p == 1 {
		return
	}
	// Largest power of two ≤ p.
	pof2 := 1
	for pof2*2 <= p {
		pof2 *= 2
	}
	rem := p - pof2
	tmp := c.tmpScratch(len(buf))

	// Phase 1: ranks [0, 2·rem) pair up; odd ranks send to even partners
	// and sit out the main exchange.
	newRank := -1
	switch {
	case c.rank < 2*rem && c.rank%2 == 1:
		c.Send(c.rank-1, tagRecDouble, buf)
		// Wait for the final result in phase 3.
		c.Recv(c.rank-1, tagRecDouble+1, buf)
		return
	case c.rank < 2*rem:
		c.Recv(c.rank+1, tagRecDouble, tmp)
		op(buf, tmp)
		newRank = c.rank / 2
	default:
		newRank = c.rank - rem
	}

	// Phase 2: recursive doubling among pof2 virtual ranks.
	toReal := func(vr int) int {
		if vr < rem {
			return vr * 2
		}
		return vr + rem
	}
	for mask := 1; mask < pof2; mask <<= 1 {
		partner := toReal(newRank ^ mask)
		c.Sendrecv(partner, tagRecDouble+2+mask, buf, partner, tagRecDouble+2+mask, tmp)
		op(buf, tmp)
	}

	// Phase 3: deliver results back to the folded odd ranks.
	if c.rank < 2*rem && c.rank%2 == 0 {
		c.Send(c.rank+1, tagRecDouble+1, buf)
	}
}

// naiveAllreduce gathers to rank 0, reduces, and broadcasts — the
// correctness reference the optimized algorithms are tested against.
func (c *Comm) naiveAllreduce(buf []float32, op func(dst, src []float32)) {
	if c.rank == 0 {
		tmp := c.tmpScratch(len(buf))
		for src := 1; src < c.world.size; src++ {
			c.Recv(src, tagReduce, tmp)
			op(buf, tmp)
		}
	} else {
		c.Send(0, tagReduce, buf)
	}
	c.Bcast(buf, 0)
}

// Gather collects equal-length contributions on root; on root, out must
// have size·len(in) elements. Other ranks may pass out nil.
func (c *Comm) Gather(in []float32, out []float32, root int) {
	start := time.Now()
	if c.rank == root {
		if len(out) != len(in)*c.world.size {
			panic(fmt.Sprintf("mpi: Gather out has %d elements, want %d", len(out), len(in)*c.world.size))
		}
		copy(out[root*len(in):(root+1)*len(in)], in)
		for src := 0; src < c.world.size; src++ {
			if src == root {
				continue
			}
			c.Recv(src, tagGather, out[src*len(in):(src+1)*len(in)])
		}
	} else {
		c.Send(root, tagGather, in)
	}
	c.profile("gather", "gather", int64(len(in))*4, time.Since(start))
}

// Allgather concatenates every rank's equal-length contribution on every
// rank: out has size·len(in) elements.
func (c *Comm) Allgather(in []float32, out []float32) {
	start := time.Now()
	p := c.world.size
	if len(out) != len(in)*p {
		panic(fmt.Sprintf("mpi: Allgather out has %d elements, want %d", len(out), len(in)*p))
	}
	copy(out[c.rank*len(in):(c.rank+1)*len(in)], in)
	if p > 1 {
		// Ring allgather.
		next := (c.rank + 1) % p
		prev := (c.rank - 1 + p) % p
		for step := 0; step < p-1; step++ {
			sendIdx := (c.rank - step + p) % p
			recvIdx := (c.rank - step - 1 + p) % p
			c.Send(next, tagAllgather+step, out[sendIdx*len(in):(sendIdx+1)*len(in)])
			c.Recv(prev, tagAllgather+step, out[recvIdx*len(in):(recvIdx+1)*len(in)])
		}
	}
	c.profile("allgather", "allgather", int64(len(out))*4, time.Since(start))
}
