package mpi

import (
	"time"

	"repro/internal/tensor"
)

// Tag bands for the compressed collectives. TagSparse is exported: the
// top-k sparsified allreduce in internal/collective runs its gather
// phase over the public Send/Recv API and needs a band the built-in
// collectives never touch.
const (
	tagFP16 = tagBase + 10*tagStride
	// TagSparse is the base of the tag band reserved for the sparse
	// (top-k) allreduce implemented in internal/collective. Per-step
	// offsets stay within the band for worlds up to 2^17 ranks.
	TagSparse = tagBase + 11*tagStride
)

// AllreduceSumFP16 sums buf element-wise across all ranks with an
// fp16-compressed wire format: every hop of the chunk-pipelined ring
// packs its float32 payload into IEEE 754 binary16 pairs (half the
// bytes), the receiver unpacks and accumulates in full float32, and the
// final allgather circulates each chunk's packed bits unchanged — so
// every rank decodes the identical halves and replicas stay bit-wise in
// sync. Partial sums are re-quantized at each of the p−1 reduce-scatter
// hops, which is the numerics Horovod's fp16 compressor exhibits on a
// ring; convergence under it is pinned by the harness in
// internal/collective.
func (c *Comm) AllreduceSumFP16(buf []float32) {
	start := time.Now()
	c.fp16RingAllreduce(buf)
	// Record the compressed message size: what actually hits the wire,
	// so hvprof's size buckets tell the compression story.
	c.profile("allreduce", "allreduce/fp16", int64(tensor.HalfWords(len(buf)))*4, time.Since(start))
}

// fp16RingAllreduce is the chunk-pipelined ring of ringAllreduce with a
// packed-fp16 wire: sub-chunks are forwarded the moment they are reduced,
// and the only buffers are one wire sub-chunk (scrWork) and one unpacked
// receive sub-chunk (scrTmp) per Comm — the steady state allocates
// nothing.
func (c *Comm) fp16RingAllreduce(buf []float32) {
	p := c.world.size
	if p == 1 {
		// Single rank: the "wire" is a no-op, but quantize for parity with
		// the multi-rank result (a world of one still rounds through fp16).
		tensor.QuantizeHalf(buf)
		return
	}
	n := len(buf)
	if n == 0 {
		return
	}
	next := (c.rank + 1) % p
	prev := (c.rank - 1 + p) % p
	chunk := func(i int) []float32 {
		i = ((i % p) + p) % p
		return buf[i*n/p : (i+1)*n/p]
	}
	cs := ringChunkElems
	maxSub := min(cs, (n+p-1)/p)
	tmp := c.tmpScratch(maxSub)
	wire := c.workScratch(tensor.HalfWords(maxSub))

	// Prime the pipeline: step 0's traffic is this rank's own chunk,
	// packed but not yet reduced.
	own := chunk(c.rank)
	for lo := 0; lo < len(own); lo += cs {
		hi := min(lo+cs, len(own))
		w := wire[:tensor.HalfWords(hi-lo)]
		tensor.PackHalf(w, own[lo:hi])
		c.Send(next, tagFP16, w)
	}
	// Reduce-scatter: unpack the incoming sub-chunk, accumulate in fp32,
	// re-pack, forward. After p−1 steps rank r owns the full sum of chunk
	// (r+1) mod p; its final packed form bridges into the allgather, and
	// the owner adopts its own quantized bits so every rank converges on
	// the same values.
	for step := 0; step < p-1; step++ {
		rc := chunk(c.rank - step - 1)
		for lo := 0; lo < len(rc); lo += cs {
			hi := min(lo+cs, len(rc))
			w := wire[:tensor.HalfWords(hi-lo)]
			c.Recv(prev, tagFP16+step, w)
			t := tmp[:hi-lo]
			tensor.UnpackHalf(t, w)
			sumInto(rc[lo:hi], t)
			tensor.PackHalf(w, rc[lo:hi])
			if step < p-2 {
				c.Send(next, tagFP16+step+1, w)
			} else {
				tensor.UnpackHalf(rc[lo:hi], w)
				c.Send(next, tagFP16+p, w)
			}
		}
	}
	// Allgather: circulate the finished chunks' packed bits; unpack in
	// place and forward the wire words untouched.
	for step := 0; step < p-1; step++ {
		rc := chunk(c.rank - step)
		for lo := 0; lo < len(rc); lo += cs {
			hi := min(lo+cs, len(rc))
			w := wire[:tensor.HalfWords(hi-lo)]
			c.Recv(prev, tagFP16+p+step, w)
			tensor.UnpackHalf(rc[lo:hi], w)
			if step < p-2 {
				c.Send(next, tagFP16+p+step+1, w)
			}
		}
	}
}

// AllreduceSumNodeAware is the two-level node-aware allreduce mirroring
// the paper's MVAPICH2-GDR hierarchical design, driven by the world's
// topology (SetGPUsPerNode): reduce within each node onto its leader in
// full precision (the intra-node hop models NVLink, where compression
// buys nothing), ring-allreduce across node leaders — the inter-node hop
// that crosses the InfiniBand fabric — with an optionally fp16-compressed
// wire, then broadcast the result within each node. With one GPU per
// node it degenerates to a flat (optionally compressed) leader ring.
func (c *Comm) AllreduceSumNodeAware(buf []float32, fp16 bool) {
	start := time.Now()
	p := c.world.size
	gs := c.world.gpusPerNode
	if p == 1 {
		if fp16 {
			tensor.QuantizeHalf(buf)
		}
		c.profile("allreduce", "allreduce/hier", wireBytesHier(len(buf), fp16), time.Since(start))
		return
	}
	leader := c.rank - c.rank%gs
	groupEnd := min(leader+gs, p)
	tmp := c.tmpScratch(len(buf))

	// Phase 1: intra-node reduce onto the leader (flat gather-reduce in
	// fp32; groups are small — 4 GPUs per node on Lassen).
	if c.rank == leader {
		for src := leader + 1; src < groupEnd; src++ {
			c.Recv(src, tagHier, tmp)
			sumInto(buf, tmp)
		}
	} else {
		c.Send(leader, tagHier, buf)
	}

	// Phase 2: inter-node ring among leaders, compressed when asked.
	if c.rank == leader {
		leaders := (p + gs - 1) / gs
		switch {
		case leaders == 1 && fp16:
			// One node: no inter-node wire, but round through fp16 so the
			// result matches what a multi-node run would broadcast.
			tensor.QuantizeHalf(buf)
		case leaders > 1 && fp16:
			c.leaderRingFP16(buf, gs, leaders)
		case leaders > 1:
			c.leaderRing(buf, gs, leaders)
		}
	}

	// Phase 3: intra-node broadcast of the result.
	if c.rank == leader {
		for dst := leader + 1; dst < groupEnd; dst++ {
			c.Send(dst, tagHier+1, buf)
		}
	} else {
		c.Recv(leader, tagHier+1, buf)
	}
	c.profile("allreduce", "allreduce/hier", wireBytesHier(len(buf), fp16), time.Since(start))
}

// wireBytesHier is the recorded message size of the node-aware variant:
// the inter-node (leader-ring) payload, compressed when fp16 is on —
// the hop whose bytes the hierarchy exists to manage.
func wireBytesHier(n int, fp16 bool) int64 {
	if fp16 {
		return int64(tensor.HalfWords(n)) * 4
	}
	return int64(n) * 4
}

// leaderRingFP16 is leaderRing with a packed-fp16 wire: reduce-scatter
// unpacks, accumulates in fp32 and re-packs per hop; the allgather
// circulates each chunk's final packed bits so all leaders agree
// bit-wise. Scratch discipline matches leaderRing: scrTmp still holds
// phase 1's buffer upstream, so the unpack scratch lives in scrWork,
// partitioned into wire words and unpacked floats.
func (c *Comm) leaderRingFP16(buf []float32, groupSize, leaders int) {
	me := c.rank / groupSize
	nextLeader := ((me + 1) % leaders) * groupSize
	prevLeader := ((me - 1 + leaders) % leaders) * groupSize
	n := len(buf)
	chunk := func(i int) []float32 {
		i = ((i % leaders) + leaders) % leaders
		return buf[i*n/leaders : (i+1)*n/leaders]
	}
	maxChunk := (n + leaders - 1) / leaders
	ww := tensor.HalfWords(maxChunk)
	work := c.workScratch(ww*2 + maxChunk)
	sendWire, recvWire, tmp := work[:ww], work[ww:2*ww], work[2*ww:]

	for step := 0; step < leaders-1; step++ {
		sc := chunk(me - step)
		rc := chunk(me - step - 1)
		sw := sendWire[:tensor.HalfWords(len(sc))]
		tensor.PackHalf(sw, sc)
		c.Send(nextLeader, tagHier+2+step, sw)
		rw := recvWire[:tensor.HalfWords(len(rc))]
		c.Recv(prevLeader, tagHier+2+step, rw)
		t := tmp[:len(rc)]
		tensor.UnpackHalf(t, rw)
		sumInto(rc, t)
	}
	// The owned chunk's final value rounds through fp16 once (its packed
	// form is what circulates), and every leader unpacks those same bits.
	ownIdx := me + 1
	own := chunk(ownIdx)
	ow := sendWire[:tensor.HalfWords(len(own))]
	tensor.PackHalf(ow, own)
	tensor.UnpackHalf(own, ow)
	for step := 0; step < leaders-1; step++ {
		sc := chunk(me + 1 - step)
		rc := chunk(me - step)
		sw := sendWire[:tensor.HalfWords(len(sc))]
		tensor.PackHalf(sw, sc)
		c.Send(nextLeader, tagHier+2+leaders+step, sw)
		rw := recvWire[:tensor.HalfWords(len(rc))]
		c.Recv(prevLeader, tagHier+2+leaders+step, rw)
		tensor.UnpackHalf(rc, rw)
	}
}
