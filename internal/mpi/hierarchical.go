package mpi

import "fmt"

// Additional tag bands for the extended collectives.
const (
	tagReduceScatter = tagBase + 7*tagStride
	tagHier          = tagBase + 8*tagStride
	tagReduceOp      = tagBase + 9*tagStride
)

// Reduce sums buf element-wise onto root; non-root buffers are left
// unchanged. Implemented as a binomial tree reduction.
func (c *Comm) Reduce(buf []float32, root int) {
	size := c.world.size
	if size == 1 {
		return
	}
	// Virtual ranks with root at 0; children send up the binomial tree.
	vrank := (c.rank - root + size) % size
	acc := buf
	if vrank != 0 {
		// Work on a copy so the caller's buffer is not clobbered on
		// non-root ranks (MPI_Reduce semantics).
		acc = c.workScratch(len(buf))
		copy(acc, buf)
	}
	tmp := c.tmpScratch(len(buf))
	for mask := 1; mask < size; mask <<= 1 {
		if vrank&mask != 0 {
			parent := ((vrank &^ mask) + root) % size
			c.Send(parent, tagReduceOp+mask, acc)
			return
		}
		src := vrank | mask
		if src < size {
			c.Recv((src+root)%size, tagReduceOp+mask, tmp)
			sumInto(acc, tmp)
		}
	}
}

// ReduceScatterBlock reduces the full buffer and scatters equal blocks:
// on return, recv holds the global sum of this rank's block. len(buf)
// must be divisible by the world size and len(recv) must be the block
// size. This is the first half of a ring allreduce exposed directly.
func (c *Comm) ReduceScatterBlock(buf []float32, recv []float32) {
	p := c.world.size
	if len(buf)%p != 0 {
		panic(fmt.Sprintf("mpi: ReduceScatterBlock length %d not divisible by %d ranks", len(buf), p))
	}
	block := len(buf) / p
	if len(recv) != block {
		panic(fmt.Sprintf("mpi: ReduceScatterBlock recv length %d, want %d", len(recv), block))
	}
	if p == 1 {
		copy(recv, buf)
		return
	}
	// Work on a copy to preserve MPI semantics (buf unchanged).
	work := c.workScratch(len(buf))
	copy(work, buf)
	next := (c.rank + 1) % p
	prev := (c.rank - 1 + p) % p
	tmp := c.tmpScratch(block)
	chunk := func(i int) []float32 {
		i = ((i % p) + p) % p
		return work[i*block : (i+1)*block]
	}
	// Schedule shifted by one so rank r finishes owning block r (the
	// MPI_Reduce_scatter_block contract), not block r+1 as in the raw
	// ring allreduce first phase.
	for step := 0; step < p-1; step++ {
		c.Send(next, tagReduceScatter+step, chunk(c.rank-1-step))
		c.Recv(prev, tagReduceScatter+step, tmp)
		sumInto(chunk(c.rank-2-step), tmp)
	}
	copy(recv, chunk(c.rank))
}

// HierarchicalAllreduce is the two-level design MVAPICH2-GDR uses on
// GPU-dense nodes (and the one the cluster simulator models): reduce
// within each group of groupSize consecutive ranks onto a leader, ring-
// allreduce across leaders, then broadcast within each group. With
// groupSize == 1 or == world size it degenerates to a flat algorithm.
func (c *Comm) HierarchicalAllreduce(buf []float32, groupSize int) {
	p := c.world.size
	if groupSize < 1 {
		panic("mpi: HierarchicalAllreduce group size must be >= 1")
	}
	if p == 1 {
		return
	}
	leader := c.rank - c.rank%groupSize
	groupEnd := leader + groupSize
	if groupEnd > p {
		groupEnd = p
	}
	tmp := c.tmpScratch(len(buf))

	// Phase 1: intra-group reduce onto the leader (flat gather-reduce;
	// groups are small — 4 GPUs per node on Lassen).
	if c.rank == leader {
		for src := leader + 1; src < groupEnd; src++ {
			c.Recv(src, tagHier, tmp)
			sumInto(buf, tmp)
		}
	} else {
		c.Send(leader, tagHier, buf)
	}

	// Phase 2: ring allreduce among leaders.
	if c.rank == leader {
		leaders := (p + groupSize - 1) / groupSize
		if leaders > 1 {
			c.leaderRing(buf, groupSize, leaders)
		}
	}

	// Phase 3: intra-group broadcast of the result.
	if c.rank == leader {
		for dst := leader + 1; dst < groupEnd; dst++ {
			c.Send(dst, tagHier+1, buf)
		}
	} else {
		c.Recv(leader, tagHier+1, buf)
	}
}

// leaderRing runs a ring allreduce among the group leaders only.
func (c *Comm) leaderRing(buf []float32, groupSize, leaders int) {
	me := c.rank / groupSize
	nextLeader := ((me + 1) % leaders) * groupSize
	prevLeader := ((me - 1 + leaders) % leaders) * groupSize
	n := len(buf)
	// Chunk i covers [i·n/leaders, (i+1)·n/leaders). The scratch lives in
	// scrWork: scrTmp still holds HierarchicalAllreduce's phase-1 buffer.
	chunk := func(i int) []float32 {
		i = ((i % leaders) + leaders) % leaders
		return buf[i*n/leaders : (i+1)*n/leaders]
	}
	tmp := c.workScratch((n + leaders - 1) / leaders)
	for step := 0; step < leaders-1; step++ {
		sc := chunk(me - step)
		rc := chunk(me - step - 1)
		c.Send(nextLeader, tagHier+2+step, sc)
		c.Recv(prevLeader, tagHier+2+step, tmp[:len(rc)])
		sumInto(rc, tmp[:len(rc)])
	}
	for step := 0; step < leaders-1; step++ {
		sc := chunk(me + 1 - step)
		rc := chunk(me - step)
		c.Send(nextLeader, tagHier+2+leaders+step, sc)
		c.Recv(prevLeader, tagHier+2+leaders+step, tmp[:len(rc)])
		copy(rc, tmp[:len(rc)])
	}
}
