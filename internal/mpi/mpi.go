// Package mpi implements an in-process message-passing interface with the
// subset of MPI semantics distributed DNN training needs: ranks with
// point-to-point send/receive (tag matching, real data movement) and the
// collectives Horovod uses — broadcast, barrier, allreduce (several
// algorithms), allgather, and gather.
//
// Each rank is a goroutine; sends copy their payload so senders may reuse
// buffers immediately (MPI's blocking-send contract). The package is the
// substrate on which the repository's *real* data-parallel training runs;
// the scaled-up 512-GPU experiments use the discrete-event simulator in
// internal/collective instead, with the same algorithmic structure.
package mpi

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Profiler receives a record for every collective a communicator executes.
// internal/hvprof implements it; a nil profiler disables recording.
type Profiler interface {
	Record(op string, bytes int64, seconds float64)
}

// Tracer receives a span for every collective a communicator executes:
// the op name (allreduce ops carry their algorithm, e.g.
// "allreduce/ring"), the payload size, and the duration of a span
// ending at the moment of the call. internal/trace implements it; both
// it and Profiler are fed from one timing measurement, so a bucket
// report derived from the spans matches the profiler's exactly.
// Implementations must not allocate (they sit on the training hot path)
// and must be safe for the goroutine that owns the Comm.
type Tracer interface {
	RecordSpan(op string, bytes int64, dur time.Duration)
}

// message is an in-flight point-to-point payload.
type message struct {
	src, tag int
	data     []float32
}

// mailbox is one rank's incoming queue with (src, tag) matching. MPI
// ordering semantics hold: messages from the same (src, tag) are received
// in send order.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.queue = append(m.queue, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// get blocks until a message matching (src, tag) is available and removes
// the first match. It is deadline- and failure-aware: when the world has
// a receive timeout, a silent src is declared dead after the deadline;
// when src (or the receiving rank itself) is already marked down, get
// fails immediately instead of hanging forever. Messages queued before a
// sender died are still drained first — MPI's "messages in flight at
// failure time are delivered" semantics.
func (m *mailbox) get(w *World, self, src, tag int) (message, error) {
	var deadline time.Time
	if w.recvTimeout > 0 {
		deadline = time.Now().Add(w.recvTimeout)
	}
	m.mu.Lock()
	for {
		for i, msg := range m.queue {
			if msg.src == src && msg.tag == tag {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				m.mu.Unlock()
				return msg, nil
			}
		}
		if cause := w.downCause(src); cause != nil {
			m.mu.Unlock()
			return message{}, &RankError{Rank: src, Err: cause}
		}
		if cause := w.downCause(self); cause != nil {
			m.mu.Unlock()
			return message{}, &RankError{Rank: self, Err: cause}
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			// markDown wants every mailbox lock (to wake peers blocked on
			// the now-dead src), including ours — release first.
			m.mu.Unlock()
			cause := fmt.Errorf("%w: no message from rank %d (tag %d) within %v, detected by rank %d",
				ErrRecvTimeout, src, tag, w.recvTimeout, self)
			w.markDown(src, cause, true)
			return message{}, &RankError{Rank: src, Err: cause}
		}
		// Woken by put, by markDown (failure propagation), or by the
		// watchdog (deadline evaluation); every wake re-checks all three.
		m.cond.Wait()
	}
}

// bufPool recycles message payload buffers so steady-state point-to-point
// traffic performs no heap allocations: Send draws a buffer from the
// pool instead of allocating a copy, and Recv returns it after the
// payload is copied out. Buffers are segregated into power-of-two size
// classes; the pool grows to the peak number of concurrent in-flight
// messages per class and is stable afterwards.
type bufPool struct {
	mu      sync.Mutex
	classes [33][][]float32
}

// sizeClass returns the class index whose buffers have capacity 2^k ≥ n.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

func (p *bufPool) get(n int) []float32 {
	if n == 0 {
		return nil
	}
	k := sizeClass(n)
	p.mu.Lock()
	if s := p.classes[k]; len(s) > 0 {
		buf := s[len(s)-1]
		p.classes[k] = s[:len(s)-1]
		p.mu.Unlock()
		return buf[:n]
	}
	p.mu.Unlock()
	return make([]float32, n, 1<<k)
}

func (p *bufPool) put(buf []float32) {
	if cap(buf) == 0 {
		return
	}
	k := sizeClass(cap(buf))
	p.mu.Lock()
	p.classes[k] = append(p.classes[k], buf[:cap(buf)])
	p.mu.Unlock()
}

// World is a set of communicating ranks sharing one address space.
type World struct {
	size      int
	mailboxes []*mailbox
	pool      bufPool

	// recvTimeout bounds every Recv (0 = wait forever); see
	// SetRecvTimeout. plan, when non-nil, injects deterministic faults.
	recvTimeout time.Duration
	plan        *FaultPlan
	// sendSeq counts each rank's sends, the deterministic clock the drop
	// injection keys on (atomic: main loop and engine send concurrently).
	sendSeq []atomic.Int64
	// sentBytes meters each rank's outbound payload volume (every Send,
	// across all Comm forks of the rank) — the bytes-on-wire counter the
	// compression benchmarks read via Comm.SentBytes.
	sentBytes []atomic.Int64

	// gpusPerNode is the simulated node width for topology-aware
	// collectives (see SetGPUsPerNode); 1 means every rank is its own
	// node leader.
	gpusPerNode int

	// down holds every rank that left the computation (crash, panic,
	// timeout, or abort-on-peer-failure) keyed to its cause; rootFailed
	// is the subset that originated a failure. Guarded by fmu.
	fmu        sync.Mutex
	down       map[int]error
	rootFailed map[int]error
}

// NewWorld creates a world with the given number of ranks.
func NewWorld(size int) *World {
	if size < 1 {
		panic("mpi: world size must be >= 1")
	}
	w := &World{
		size:        size,
		down:        map[int]error{},
		rootFailed:  map[int]error{},
		sendSeq:     make([]atomic.Int64, size),
		sentBytes:   make([]atomic.Int64, size),
		gpusPerNode: 1,
	}
	w.mailboxes = make([]*mailbox, size)
	for i := range w.mailboxes {
		w.mailboxes[i] = newMailbox()
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// SetGPUsPerNode declares the simulated node width: ranks
// [k·g, (k+1)·g) share node k, and rank k·g is that node's leader. The
// node-aware collectives (AllreduceSumNodeAware) use this topology to
// keep bulk traffic intra-node; g must be >= 1. The default is 1 —
// every rank its own leader, which degenerates the two-level design to
// a flat leader ring.
func (w *World) SetGPUsPerNode(g int) {
	if g < 1 {
		panic("mpi: GPUs per node must be >= 1")
	}
	w.gpusPerNode = g
}

// Comm returns the communicator for one rank.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, w.size))
	}
	return &Comm{world: w, rank: rank}
}

// Run launches fn on every rank concurrently and waits for all to finish.
// It is the moral equivalent of mpirun for in-process jobs — including
// the failure semantics: a panic in one rank's goroutine (an injected
// crash, a Recv on a dead peer, a plain bug) no longer takes down the
// whole process. The rank is recovered, recorded as down (waking every
// peer blocked on it), and reported in the returned error, which joins
// one error per affected rank and says which rank failed and why.
// Healthy runs return nil.
func (w *World) Run(fn func(c *Comm)) error {
	stopWatchdog := w.startWatchdog()
	defer stopWatchdog()
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					errs[rank] = w.recoverRankError(rank, rec)
				}
			}()
			fn(w.Comm(rank))
		}(r)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Comm is one rank's handle on the world.
//
// A Comm is a single-goroutine object for reducing collectives: the
// allreduce family, Reduce, and ReduceScatterBlock share the per-Comm
// scratch buffers below and must not run concurrently on one Comm.
// Point-to-point Send/Recv, Bcast, and Barrier are scratch-free, so a
// background engine may negotiate on its own collectives while the
// owning goroutine broadcasts (the Horovod startup pattern). Distinct
// Comm values for the same rank (each World.Comm call returns a fresh
// one) have independent scratch.
type Comm struct {
	world    *World
	rank     int
	Profiler Profiler
	// Tracer, when non-nil, receives a span per collective. Give each
	// goroutine that runs collectives its own Comm (see Fork) so spans
	// land on the right timeline track.
	Tracer Tracer

	// scrTmp receives chunks inside the allreduce algorithms; scrWork is
	// the secondary buffer of the two-buffer collectives (Reduce's
	// accumulator copy, ReduceScatterBlock's working copy). Both grow to
	// the largest message seen and are reused, so the reduction path is
	// allocation-free in steady state.
	scrTmp  []float32
	scrWork []float32
}

// tmpScratch returns the per-Comm receive scratch with at least n
// elements.
func (c *Comm) tmpScratch(n int) []float32 {
	if cap(c.scrTmp) < n {
		c.scrTmp = make([]float32, n)
	}
	return c.scrTmp[:n]
}

// workScratch returns the per-Comm secondary work buffer with at least n
// elements.
func (c *Comm) workScratch(n int) []float32 {
	if cap(c.scrWork) < n {
		c.scrWork = make([]float32, n)
	}
	return c.scrWork[:n]
}

// Fork returns a new communicator handle for the same rank with
// independent scratch buffers and its own Profiler/Tracer fields. A
// background goroutine (the Horovod engine) runs its collectives on a
// fork so its reductions neither share scratch with, nor mis-attribute
// trace spans to, the owning goroutine.
func (c *Comm) Fork() *Comm { return &Comm{world: c.world, rank: c.rank} }

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// GPUsPerNode returns the world's node width (see World.SetGPUsPerNode).
func (c *Comm) GPUsPerNode() int { return c.world.gpusPerNode }

// SentBytes returns the total payload bytes this rank has sent through
// Send since the world was created, across every Comm fork of the rank.
// The compression benchmarks difference it around a training window to
// measure real bytes-on-wire per variant.
func (c *Comm) SentBytes() int64 { return c.world.sentBytes[c.rank].Load() }

// ProfileCollective reports a custom collective — one built outside this
// package from the exported primitives, e.g. the compressed variants in
// internal/collective — to the attached Profiler and Tracer, exactly as
// the built-in collectives report themselves. op is the hvprof bucket
// operation ("allreduce"); traceOp the variant-qualified span name
// ("allreduce/topk"); bytes the compressed payload size that actually
// travels per message, so hvprof's message-size buckets reflect the wire.
func (c *Comm) ProfileCollective(op, traceOp string, bytes int64, dur time.Duration) {
	c.profile(op, traceOp, bytes, dur)
}

// Send delivers a copy of data to dst with the given tag (blocking send
// semantics: the buffer may be reused on return). The copy lives in a
// pooled buffer recycled by the matching Recv, so steady-state traffic
// does not allocate.
func (c *Comm) Send(dst, tag int, data []float32) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d", dst))
	}
	cp := c.world.pool.get(len(data))
	copy(cp, data)
	c.world.sentBytes[c.rank].Add(int64(len(data)) * 4)
	msg := message{src: c.rank, tag: tag, data: cp}
	if p := c.world.plan; p != nil {
		seq := c.world.sendSeq[c.rank].Add(1)
		if p.DropRank == c.rank && seq > int64(p.DropAfter) {
			// Lost on the wire: the sender believes it succeeded; peers
			// find out through the receive deadline.
			c.world.pool.put(cp)
			return
		}
		if p.DelayRank == c.rank && p.Delay > 0 {
			mb := c.world.mailboxes[dst]
			time.AfterFunc(p.Delay, func() { mb.put(msg) })
			return
		}
	}
	c.world.mailboxes[dst].put(msg)
}

// Recv blocks until a message with the given source and tag arrives and
// copies it into buf, which must be exactly the message length.
//
// Recv is deadline-aware: if the world has a receive timeout and src
// stays silent past it — or src is already known to be down — Recv
// panics with a *RankError instead of hanging forever. The panic
// propagates the failure through whatever collective is running and is
// recovered at the rank boundary by World.Run (or by the Horovod
// engine's background loop), where it becomes an ordinary error.
func (c *Comm) Recv(src, tag int, buf []float32) {
	if src < 0 || src >= c.world.size {
		panic(fmt.Sprintf("mpi: Recv from invalid rank %d", src))
	}
	msg, err := c.world.mailboxes[c.rank].get(c.world, c.rank, src, tag)
	if err != nil {
		panic(err)
	}
	if len(msg.data) != len(buf) {
		panic(fmt.Sprintf("mpi: Recv buffer %d elements, message %d (src=%d tag=%d)",
			len(buf), len(msg.data), src, tag))
	}
	copy(buf, msg.data)
	c.world.pool.put(msg.data)
}

// Sendrecv exchanges buffers with two peers (send to dst, receive from
// src), the building block of ring algorithms. Send happens first so the
// ring cannot deadlock.
func (c *Comm) Sendrecv(dst, sendTag int, sendBuf []float32, src, recvTag int, recvBuf []float32) {
	c.Send(dst, sendTag, sendBuf)
	c.Recv(src, recvTag, recvBuf)
}

// profile reports one finished collective to the attached Profiler and
// Tracer from a single duration measurement. op is the hvprof bucket
// operation; traceOp the (possibly algorithm-qualified) span name.
func (c *Comm) profile(op, traceOp string, bytes int64, dur time.Duration) {
	if c.Profiler != nil {
		c.Profiler.Record(op, bytes, dur.Seconds())
	}
	if c.Tracer != nil {
		c.Tracer.RecordSpan(traceOp, bytes, dur)
	}
}
