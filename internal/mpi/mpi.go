// Package mpi implements an in-process message-passing interface with the
// subset of MPI semantics distributed DNN training needs: ranks with
// point-to-point send/receive (tag matching, real data movement) and the
// collectives Horovod uses — broadcast, barrier, allreduce (several
// algorithms), allgather, and gather.
//
// Each rank is a goroutine; sends copy their payload so senders may reuse
// buffers immediately (MPI's blocking-send contract). The package is the
// substrate on which the repository's *real* data-parallel training runs;
// the scaled-up 512-GPU experiments use the discrete-event simulator in
// internal/collective instead, with the same algorithmic structure.
package mpi

import (
	"fmt"
	"sync"
)

// Profiler receives a record for every collective a communicator executes.
// internal/hvprof implements it; a nil profiler disables recording.
type Profiler interface {
	Record(op string, bytes int64, seconds float64)
}

// message is an in-flight point-to-point payload.
type message struct {
	src, tag int
	data     []float32
}

// mailbox is one rank's incoming queue with (src, tag) matching. MPI
// ordering semantics hold: messages from the same (src, tag) are received
// in send order.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.queue = append(m.queue, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// get blocks until a message matching (src, tag) is available and removes
// the first match.
func (m *mailbox) get(src, tag int) message {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, msg := range m.queue {
			if msg.src == src && msg.tag == tag {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				return msg
			}
		}
		m.cond.Wait()
	}
}

// World is a set of communicating ranks sharing one address space.
type World struct {
	size      int
	mailboxes []*mailbox
}

// NewWorld creates a world with the given number of ranks.
func NewWorld(size int) *World {
	if size < 1 {
		panic("mpi: world size must be >= 1")
	}
	w := &World{size: size}
	w.mailboxes = make([]*mailbox, size)
	for i := range w.mailboxes {
		w.mailboxes[i] = newMailbox()
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Comm returns the communicator for one rank.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, w.size))
	}
	return &Comm{world: w, rank: rank}
}

// Run launches fn on every rank concurrently and waits for all to finish.
// It is the moral equivalent of mpirun for in-process jobs.
func (w *World) Run(fn func(c *Comm)) {
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			fn(w.Comm(rank))
		}(r)
	}
	wg.Wait()
}

// Comm is one rank's handle on the world.
type Comm struct {
	world    *World
	rank     int
	Profiler Profiler
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Send delivers a copy of data to dst with the given tag (blocking send
// semantics: the buffer may be reused on return).
func (c *Comm) Send(dst, tag int, data []float32) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpi: Send to invalid rank %d", dst))
	}
	cp := make([]float32, len(data))
	copy(cp, data)
	c.world.mailboxes[dst].put(message{src: c.rank, tag: tag, data: cp})
}

// Recv blocks until a message with the given source and tag arrives and
// copies it into buf, which must be exactly the message length.
func (c *Comm) Recv(src, tag int, buf []float32) {
	if src < 0 || src >= c.world.size {
		panic(fmt.Sprintf("mpi: Recv from invalid rank %d", src))
	}
	msg := c.world.mailboxes[c.rank].get(src, tag)
	if len(msg.data) != len(buf) {
		panic(fmt.Sprintf("mpi: Recv buffer %d elements, message %d (src=%d tag=%d)",
			len(buf), len(msg.data), src, tag))
	}
	copy(buf, msg.data)
}

// Sendrecv exchanges buffers with two peers (send to dst, receive from
// src), the building block of ring algorithms. Send happens first so the
// ring cannot deadlock.
func (c *Comm) Sendrecv(dst, sendTag int, sendBuf []float32, src, recvTag int, recvBuf []float32) {
	c.Send(dst, sendTag, sendBuf)
	c.Recv(src, recvTag, recvBuf)
}

func (c *Comm) profile(op string, bytes int64, seconds float64) {
	if c.Profiler != nil {
		c.Profiler.Record(op, bytes, seconds)
	}
}
