package mpi

import (
	"math"
	"sync"
	"testing"
)

func TestReduceOntoRoot(t *testing.T) {
	for _, size := range []int{1, 2, 4, 5, 8} {
		for _, root := range []int{0, size - 1} {
			w := NewWorld(size)
			var mu sync.Mutex
			results := make([][]float32, size)
			w.Run(func(c *Comm) {
				buf := []float32{float32(c.Rank() + 1), 10 * float32(c.Rank()+1)}
				c.Reduce(buf, root)
				mu.Lock()
				results[c.Rank()] = buf
				mu.Unlock()
			})
			var want float32
			for r := 1; r <= size; r++ {
				want += float32(r)
			}
			if results[root][0] != want || results[root][1] != 10*want {
				t.Fatalf("size=%d root=%d: root got %v, want [%g %g]",
					size, root, results[root], want, 10*want)
			}
			// Non-root buffers unchanged (MPI_Reduce semantics).
			for r := 0; r < size; r++ {
				if r == root {
					continue
				}
				if results[r][0] != float32(r+1) {
					t.Fatalf("size=%d: non-root %d buffer clobbered: %v", size, r, results[r])
				}
			}
		}
	}
}

func TestReduceScatterBlock(t *testing.T) {
	for _, size := range []int{1, 2, 4, 6} {
		n := size * 3
		w := NewWorld(size)
		var mu sync.Mutex
		results := make([][]float32, size)
		w.Run(func(c *Comm) {
			buf := make([]float32, n)
			for i := range buf {
				buf[i] = float32((c.Rank() + 1) * (i + 1))
			}
			recv := make([]float32, 3)
			c.ReduceScatterBlock(buf, recv)
			mu.Lock()
			results[c.Rank()] = recv
			mu.Unlock()
		})
		var rankSum float32
		for r := 1; r <= size; r++ {
			rankSum += float32(r)
		}
		for r, recv := range results {
			for j, v := range recv {
				idx := r*3 + j
				want := rankSum * float32(idx+1)
				if math.Abs(float64(v-want)) > 1e-3 {
					t.Fatalf("size=%d rank=%d block[%d] = %g, want %g", size, r, j, v, want)
				}
			}
		}
	}
}

func TestReduceScatterBlockValidation(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() != 0 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("expected panic for non-divisible length")
			}
		}()
		c.ReduceScatterBlock(make([]float32, 3), make([]float32, 1))
	})
}

func TestHierarchicalAllreduce(t *testing.T) {
	// Group sizes that divide, exceed, and straggle the world size.
	for _, tc := range []struct{ size, group int }{
		{8, 4}, {8, 2}, {8, 8}, {8, 1}, {6, 4}, {12, 4}, {5, 2}, {4, 3},
	} {
		w := NewWorld(tc.size)
		var mu sync.Mutex
		results := make([][]float32, tc.size)
		w.Run(func(c *Comm) {
			buf := make([]float32, 13)
			for i := range buf {
				buf[i] = float32(c.Rank()*13 + i)
			}
			c.HierarchicalAllreduce(buf, tc.group)
			mu.Lock()
			results[c.Rank()] = buf
			mu.Unlock()
		})
		for r, buf := range results {
			for i, v := range buf {
				var want float32
				for rr := 0; rr < tc.size; rr++ {
					want += float32(rr*13 + i)
				}
				if math.Abs(float64(v-want)) > 1e-2 {
					t.Fatalf("size=%d group=%d rank=%d elem=%d: %g want %g",
						tc.size, tc.group, r, i, v, want)
				}
			}
		}
	}
}

func TestHierarchicalMatchesRing(t *testing.T) {
	const size = 8
	run := func(hier bool) []float32 {
		w := NewWorld(size)
		var out []float32
		var mu sync.Mutex
		w.Run(func(c *Comm) {
			buf := make([]float32, 100)
			for i := range buf {
				buf[i] = float32(c.Rank()) * 0.25 * float32(i%7)
			}
			if hier {
				c.HierarchicalAllreduce(buf, 4)
			} else {
				c.AllreduceSum(buf, AlgoRing)
			}
			if c.Rank() == 0 {
				mu.Lock()
				out = buf
				mu.Unlock()
			}
		})
		return out
	}
	a, b := run(true), run(false)
	for i := range a {
		if math.Abs(float64(a[i]-b[i])) > 1e-3 {
			t.Fatalf("element %d: hierarchical %g vs ring %g", i, a[i], b[i])
		}
	}
}

func TestHierarchicalInvalidGroupPanics(t *testing.T) {
	w := NewWorld(2)
	w.Run(func(c *Comm) {
		if c.Rank() != 0 {
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		c.HierarchicalAllreduce(make([]float32, 4), 0)
	})
}
