// Package metrics implements the image-quality measures used to evaluate
// super-resolution (PSNR and SSIM, the two IQA methods the paper cites)
// and the throughput meters used for the scaling study (images/second and
// scaling efficiency).
package metrics

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// PSNR returns the peak signal-to-noise ratio in dB between two image
// batches with pixel values in [0, maxVal]. Identical images return +Inf.
func PSNR(a, b *tensor.Tensor, maxVal float64) float64 {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("metrics: PSNR shape mismatch %v vs %v", a.Shape(), b.Shape()))
	}
	ad, bd := a.Data(), b.Data()
	var mse float64
	for i, v := range ad {
		d := float64(v) - float64(bd[i])
		mse += d * d
	}
	mse /= float64(len(ad))
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(maxVal*maxVal/mse)
}

// SSIM returns the mean structural similarity index between two single
// images (1, C, H, W) with values in [0, maxVal], computed per channel with
// an 8×8 sliding window (stride 4) and averaged — the standard Wang et al.
// formulation with C1=(0.01·L)², C2=(0.03·L)².
func SSIM(a, b *tensor.Tensor, maxVal float64) float64 {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("metrics: SSIM shape mismatch %v vs %v", a.Shape(), b.Shape()))
	}
	if a.Rank() != 4 || a.Dim(0) != 1 {
		panic("metrics: SSIM expects a single image (1,C,H,W)")
	}
	const win, stride = 8, 4
	c, h, w := a.Dim(1), a.Dim(2), a.Dim(3)
	if h < win || w < win {
		panic("metrics: image smaller than SSIM window")
	}
	c1 := (0.01 * maxVal) * (0.01 * maxVal)
	c2 := (0.03 * maxVal) * (0.03 * maxVal)
	ad, bd := a.Data(), b.Data()
	var total float64
	var count int
	for ch := 0; ch < c; ch++ {
		pa := ad[ch*h*w : (ch+1)*h*w]
		pb := bd[ch*h*w : (ch+1)*h*w]
		for y := 0; y+win <= h; y += stride {
			for x := 0; x+win <= w; x += stride {
				var sa, sb, saa, sbb, sab float64
				for dy := 0; dy < win; dy++ {
					off := (y+dy)*w + x
					for dx := 0; dx < win; dx++ {
						va, vb := float64(pa[off+dx]), float64(pb[off+dx])
						sa += va
						sb += vb
						saa += va * va
						sbb += vb * vb
						sab += va * vb
					}
				}
				n := float64(win * win)
				ma, mb := sa/n, sb/n
				va := saa/n - ma*ma
				vb := sbb/n - mb*mb
				cov := sab/n - ma*mb
				ssim := ((2*ma*mb + c1) * (2*cov + c2)) /
					((ma*ma + mb*mb + c1) * (va + vb + c2))
				total += ssim
				count++
			}
		}
	}
	return total / float64(count)
}

// ThroughputMeter accumulates step timings into an images/second figure —
// the benchmarking support the paper added to EDSR for its scaling study.
type ThroughputMeter struct {
	images  int
	seconds float64
	// WarmupSteps are skipped (framework graph building / cache warmup
	// distorts the first iterations on real systems too).
	WarmupSteps int
	steps       int
}

// Record adds one training step that processed n images in sec seconds.
func (m *ThroughputMeter) Record(n int, sec float64) {
	m.steps++
	if m.steps <= m.WarmupSteps {
		return
	}
	m.images += n
	m.seconds += sec
}

// ImagesPerSecond returns the accumulated throughput.
func (m *ThroughputMeter) ImagesPerSecond() float64 {
	if m.seconds == 0 {
		return 0
	}
	return float64(m.images) / m.seconds
}

// Steps returns the number of recorded (post-warmup) steps.
func (m *ThroughputMeter) Steps() int {
	s := m.steps - m.WarmupSteps
	if s < 0 {
		return 0
	}
	return s
}

// ScalingEfficiency returns T(n) / (n · T(1)): the ratio of observed
// aggregate throughput to perfect linear scaling from the single-unit
// throughput (the metric in the paper's Fig. 13).
func ScalingEfficiency(throughputN float64, n int, throughput1 float64) float64 {
	if n < 1 || throughput1 <= 0 {
		return 0
	}
	return throughputN / (float64(n) * throughput1)
}

// Speedup returns the ratio of two throughputs (the paper's "1.26×"
// headline is Speedup(optimized, default) at 512 GPUs).
func Speedup(optimized, baseline float64) float64 {
	if baseline <= 0 {
		return 0
	}
	return optimized / baseline
}
