package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestPSNRIdentical(t *testing.T) {
	x := tensor.New(1, 1, 8, 8)
	x.Fill(0.5)
	if !math.IsInf(PSNR(x, x.Clone(), 1), 1) {
		t.Fatal("identical images should give +Inf PSNR")
	}
}

func TestPSNRKnownValue(t *testing.T) {
	a := tensor.New(1, 1, 10, 10)
	b := tensor.New(1, 1, 10, 10)
	b.Fill(0.1) // MSE = 0.01 → PSNR = 10·log10(1/0.01) = 20 dB
	if got := PSNR(a, b, 1); math.Abs(got-20) > 1e-5 {
		t.Fatalf("PSNR = %g, want 20", got)
	}
}

func TestPSNRMonotonicInError(t *testing.T) {
	a := tensor.New(1, 1, 8, 8)
	small, big := tensor.New(1, 1, 8, 8), tensor.New(1, 1, 8, 8)
	small.Fill(0.05)
	big.Fill(0.2)
	if PSNR(a, small, 1) <= PSNR(a, big, 1) {
		t.Fatal("smaller error must give higher PSNR")
	}
}

func TestPSNRShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PSNR(tensor.New(1, 1, 4, 4), tensor.New(1, 1, 5, 5), 1)
}

func TestSSIMIdentical(t *testing.T) {
	rng := tensor.NewRNG(1)
	x := tensor.New(1, 3, 16, 16)
	x.FillUniform(rng, 0, 1)
	if got := SSIM(x, x.Clone(), 1); math.Abs(got-1) > 1e-6 {
		t.Fatalf("SSIM of identical images = %g, want 1", got)
	}
}

func TestSSIMDegradesWithNoise(t *testing.T) {
	rng := tensor.NewRNG(2)
	x := tensor.New(1, 1, 32, 32)
	for y := 0; y < 32; y++ {
		for xx := 0; xx < 32; xx++ {
			x.Set(float32(0.5+0.4*math.Sin(float64(xx)/3)*math.Cos(float64(y)/4)), 0, 0, y, xx)
		}
	}
	mild := x.Clone()
	heavy := x.Clone()
	for i := range mild.Data() {
		mild.Data()[i] += 0.02 * rng.NormFloat32()
		heavy.Data()[i] += 0.2 * rng.NormFloat32()
	}
	sMild, sHeavy := SSIM(x, mild, 1), SSIM(x, heavy, 1)
	if !(1 > sMild && sMild > sHeavy) {
		t.Fatalf("SSIM ordering violated: mild %g, heavy %g", sMild, sHeavy)
	}
	if sHeavy < -1 || sMild > 1 {
		t.Fatalf("SSIM out of [-1, 1]: %g %g", sMild, sHeavy)
	}
}

func TestSSIMRequiresSingleImage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for batch input")
		}
	}()
	SSIM(tensor.New(2, 1, 16, 16), tensor.New(2, 1, 16, 16), 1)
}

func TestThroughputMeter(t *testing.T) {
	var m ThroughputMeter
	m.Record(4, 0.5)
	m.Record(4, 0.5)
	if got := m.ImagesPerSecond(); math.Abs(got-8) > 1e-9 {
		t.Fatalf("throughput %g, want 8", got)
	}
	if m.Steps() != 2 {
		t.Fatalf("steps %d", m.Steps())
	}
}

func TestThroughputMeterWarmup(t *testing.T) {
	m := ThroughputMeter{WarmupSteps: 2}
	m.Record(100, 10) // warmup, ignored
	m.Record(100, 10) // warmup, ignored
	m.Record(4, 1)
	if got := m.ImagesPerSecond(); math.Abs(got-4) > 1e-9 {
		t.Fatalf("warmup not skipped: %g", got)
	}
	if m.Steps() != 1 {
		t.Fatalf("steps %d, want 1", m.Steps())
	}
}

func TestThroughputMeterEmpty(t *testing.T) {
	var m ThroughputMeter
	if m.ImagesPerSecond() != 0 {
		t.Fatal("empty meter should report 0")
	}
}

func TestScalingEfficiency(t *testing.T) {
	// Perfect scaling: 4 GPUs at 4× single throughput → 100%.
	if got := ScalingEfficiency(41.2, 4, 10.3); math.Abs(got-1) > 1e-9 {
		t.Fatalf("perfect scaling = %g", got)
	}
	// Paper's headline: ~70% at 512.
	eff := ScalingEfficiency(0.70*512*10.3, 512, 10.3)
	if math.Abs(eff-0.70) > 1e-9 {
		t.Fatalf("eff = %g", eff)
	}
	if ScalingEfficiency(10, 0, 1) != 0 || ScalingEfficiency(10, 4, 0) != 0 {
		t.Fatal("degenerate inputs should give 0")
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(1.26, 1.0); math.Abs(got-1.26) > 1e-9 {
		t.Fatalf("speedup %g", got)
	}
	if Speedup(1, 0) != 0 {
		t.Fatal("zero baseline should give 0")
	}
}

// Property: PSNR is symmetric in its arguments.
func TestQuickPSNRSymmetric(t *testing.T) {
	f := func(seed uint16) bool {
		rng := tensor.NewRNG(uint64(seed) + 1)
		a := tensor.New(1, 1, 8, 8)
		b := tensor.New(1, 1, 8, 8)
		a.FillUniform(rng, 0, 1)
		b.FillUniform(rng, 0, 1)
		return math.Abs(PSNR(a, b, 1)-PSNR(b, a, 1)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding error can only lower (or keep) PSNR on average — check
// the exact inequality for nested perturbations: ||a-b|| <= ||a-c|| where
// c adds further noise on top of b implies PSNR(a,b) >= PSNR(a,c).
func TestQuickPSNRNestedNoise(t *testing.T) {
	f := func(seed uint16) bool {
		rng := tensor.NewRNG(uint64(seed)*13 + 7)
		a := tensor.New(1, 1, 6, 6)
		a.FillUniform(rng, 0, 1)
		b := a.Clone()
		c := a.Clone()
		for i := range b.Data() {
			noise := 0.05 * rng.NormFloat32()
			b.Data()[i] += noise
			c.Data()[i] += noise + 0.05*rng.NormFloat32()
		}
		// c has strictly more noise variance in expectation; accept with
		// slack for sampling.
		return PSNR(a, b, 1) >= PSNR(a, c, 1)-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
