package collective

import (
	"fmt"

	"repro/internal/simnet"
)

// Simulation-side pricing of the compressed allreduce variants, mirroring
// the real implementations in compress.go / internal/mpi on the cluster
// cost model: fp16 halves every wire payload and pays pack/unpack passes
// at the GPU's compression-kernel bandwidth; top-k shrinks the payload by
// ~ratio and replaces the reduce-scatter+allgather with a sparse ring
// allgather of fixed-size index+value payloads.

// compressSleep charges one pass of a compression kernel over bytes of
// input on this rank's GPU (a compute cost, not a port transfer).
func (g *Group) compressSleep(p *simnet.Proc, bytes int64) {
	if cb := g.Cl.Cfg.CompressBandwidth; cb > 0 {
		p.Sleep(float64(bytes) / cb)
	}
}

// AllreduceCompressed performs one allreduce of a logical bytes-sized
// gradient bucket under the selected compression and returns the wire
// payload size the variant moved (per ring message — the figure hvprof's
// size buckets and the wire-reduction reports key on). CompressNone
// delegates to the backend's exact Allreduce.
func (g *Group) AllreduceCompressed(p *simnet.Proc, rank int, bytes int64, regKey uint64, comp Compression, topkRatio int) int64 {
	switch comp {
	case CompressFP16:
		return g.AllreduceFP16(p, rank, bytes, regKey)
	case CompressTopK:
		return g.AllreduceTopK(p, rank, bytes, topkRatio, regKey)
	default:
		g.Allreduce(p, rank, bytes, regKey)
		return bytes
	}
}

// AllreduceFP16 is the fp16-compressed allreduce: the collective itself
// moves half the bytes over whichever algorithm the backend runs, plus a
// pack and an unpack pass per rank (re-quantization at intermediate hops
// rides the same passes in the real implementation's pipeline shadow).
func (g *Group) AllreduceFP16(p *simnet.Proc, rank int, bytes int64, regKey uint64) int64 {
	wire := (bytes + 1) / 2
	inst := g.join(p, rank)
	if g.NumRanks() > 1 {
		g.compressSleep(p, bytes) // pack to binary16
		if g.Backend == BackendNCCL {
			g.flatRing(p, inst, rank, wire, regKey)
		} else {
			g.hierarchical(p, inst, rank, wire, regKey)
		}
		g.compressSleep(p, bytes) // unpack to float32
	}
	inst.barrier(p)
	if rank == 0 {
		if g.Prof != nil {
			g.Prof.Record("allreduce", wire, p.Now()-inst.start)
		}
		if g.Trace != nil {
			g.Trace.Add("comm", fmt.Sprintf("allreduce fp16 %dMB", wire>>20), inst.start, p.Now())
		}
	}
	g.release(inst)
	return wire
}

// AllreduceTopK is the top-k sparsified allreduce: every rank selects
// k = ⌈n/ratio⌉ elements (one selection pass over the bucket), then the
// fixed-size payloads — 1+2k words of count, indices, and values —
// travel a flat ring allgather in which each rank forwards p−1 payloads,
// and every rank decodes all p contributions. Returns the per-payload
// wire size.
func (g *Group) AllreduceTopK(p *simnet.Proc, rank int, bytes int64, ratio int, regKey uint64) int64 {
	elems := bytes / 4
	if elems < 1 {
		elems = 1
	}
	wire := int64(TopKWords(TopKCount(int(elems), ratio))) * 4
	inst := g.join(p, rank)
	pr := g.NumRanks()
	if pr > 1 {
		g.compressSleep(p, bytes) // error-feedback fold + top-k selection
		cl := g.Cl
		gpu := cl.GPU(rank)
		next := cl.GPU((rank + 1) % pr)
		vol := int64(pr-1) * wire
		pipeline := float64(pr-1) * g.NCCLChunkLatency
		if next.Node == gpu.Node {
			dur := pipeline + float64(vol)/cl.Cfg.NVLinkBandwidth
			gpu.Port().Use(p, dur)
		} else {
			cl.InterRingEdge(p, gpu.Node, vol, pipeline, g.Backend.InterPath(), regKey)
		}
		inst.barrier(p)
		g.compressSleep(p, int64(pr)*wire) // decode-sum all contributions
	}
	inst.barrier(p)
	if rank == 0 {
		if g.Prof != nil {
			g.Prof.Record("allreduce", wire, p.Now()-inst.start)
		}
		if g.Trace != nil {
			g.Trace.Add("comm", fmt.Sprintf("allreduce topk %dKB", wire>>10), inst.start, p.Now())
		}
	}
	g.release(inst)
	return wire
}
