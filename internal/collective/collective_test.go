package collective

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hvprof"
	"repro/internal/simnet"
)

// runAllreduce executes one allreduce of the given size on a fresh
// simulated cluster and returns the per-rank completion times and the
// profiler.
func runAllreduce(nodes int, backend Backend, bytes int64) ([]simnet.Time, *hvprof.Profiler) {
	sim := simnet.New()
	cl := cluster.New(sim, cluster.DefaultConfig(nodes))
	prof := hvprof.New()
	g := NewGroup(cl, backend, prof)
	times := make([]simnet.Time, cl.NumGPUs())
	for r := 0; r < cl.NumGPUs(); r++ {
		r := r
		sim.Spawn("rank", func(p *simnet.Proc) {
			g.Allreduce(p, r, bytes, 7)
			times[r] = p.Now()
		})
	}
	sim.RunAll()
	return times, prof
}

func TestAllreduceAllRanksFinishTogether(t *testing.T) {
	for _, backend := range []Backend{BackendMPI, BackendMPIOpt, BackendNCCL} {
		times, _ := runAllreduce(2, backend, 32<<20)
		for r, tt := range times {
			if math.Abs(tt-times[0]) > 1e-12 {
				t.Fatalf("%v rank %d finished at %g, rank 0 at %g", backend, r, tt, times[0])
			}
			if tt <= 0 {
				t.Fatalf("%v rank %d finished at %g", backend, r, tt)
			}
		}
	}
}

func TestAllreduceRecordsProfile(t *testing.T) {
	_, prof := runAllreduce(2, BackendMPIOpt, 40<<20)
	recs := prof.Records()
	if len(recs) != 1 {
		t.Fatalf("records: %d", len(recs))
	}
	if recs[0].Op != "allreduce" || recs[0].Bytes != 40<<20 || recs[0].Seconds <= 0 {
		t.Fatalf("bad record %+v", recs[0])
	}
}

// TestOptFasterThanDefaultLargeMessages is the paper's core claim in
// miniature: for ≥16 MB messages the IPC-enabled backend must beat the
// host-staged default by roughly 2x.
func TestOptFasterThanDefaultLargeMessages(t *testing.T) {
	big := int64(48 << 20)
	defTimes, _ := runAllreduce(1, BackendMPI, big)
	optTimes, _ := runAllreduce(1, BackendMPIOpt, big)
	ratio := defTimes[0] / optTimes[0]
	if ratio < 1.6 || ratio > 3.0 {
		t.Fatalf("intra-node default/opt ratio %g, want ~2 (Table I)", ratio)
	}
}

// TestSmallMessagesSamePath: below the IPC threshold both configurations
// take the pipelined staging path, so times must be identical (Table I's
// ≈0 rows).
func TestSmallMessagesSamePath(t *testing.T) {
	small := int64(4 << 20)
	defTimes, _ := runAllreduce(1, BackendMPI, small)
	optTimes, _ := runAllreduce(1, BackendMPIOpt, small)
	if math.Abs(defTimes[0]-optTimes[0]) > 1e-12 {
		t.Fatalf("small-message times differ: %g vs %g", defTimes[0], optTimes[0])
	}
}

func TestMultiNodeSlowerThanSingleNode(t *testing.T) {
	intra, _ := runAllreduce(1, BackendMPIOpt, 32<<20)
	inter, _ := runAllreduce(4, BackendMPIOpt, 32<<20)
	if inter[0] <= intra[0] {
		t.Fatalf("multi-node allreduce (%g) should cost more than single-node (%g)", inter[0], intra[0])
	}
}

func TestNCCLDegradesWithScale(t *testing.T) {
	// The flat ring's pipeline latency grows with rank count; the
	// hierarchical design's does not (ring only over node leaders).
	ncclSmall, _ := runAllreduce(2, BackendNCCL, 16<<20)
	ncclBig, _ := runAllreduce(64, BackendNCCL, 16<<20)
	if ncclBig[0] <= ncclSmall[0] {
		t.Fatalf("NCCL at 256 ranks (%g) should be slower than at 8 (%g)", ncclBig[0], ncclSmall[0])
	}
	growth := ncclBig[0] - ncclSmall[0]
	hierSmall, _ := runAllreduce(2, BackendMPIOpt, 16<<20)
	hierBig, _ := runAllreduce(64, BackendMPIOpt, 16<<20)
	hierGrowth := hierBig[0] - hierSmall[0]
	if growth <= hierGrowth {
		t.Fatalf("flat-ring growth (%g) should exceed hierarchical growth (%g)", growth, hierGrowth)
	}
}

func TestSingleGPUAllreduceFree(t *testing.T) {
	sim := simnet.New()
	cfg := cluster.DefaultConfig(1)
	cfg.GPUsPerNode = 1
	cl := cluster.New(sim, cfg)
	g := NewGroup(cl, BackendMPI, nil)
	var end simnet.Time
	sim.Spawn("r", func(p *simnet.Proc) {
		g.Allreduce(p, 0, 64<<20, 1)
		end = p.Now()
	})
	sim.RunAll()
	if end != 0 {
		t.Fatalf("single-rank allreduce should be instantaneous, took %g", end)
	}
}

func TestNegotiateIntersectsMasks(t *testing.T) {
	sim := simnet.New()
	cl := cluster.New(sim, cluster.DefaultConfig(1))
	g := NewGroup(cl, BackendMPIOpt, nil)
	results := make([][]bool, 4)
	for r := 0; r < 4; r++ {
		r := r
		sim.Spawn("rank", func(p *simnet.Proc) {
			// Tensor 0 ready everywhere; tensor 1 missing on rank 2;
			// tensor 2 ready nowhere.
			mask := []bool{true, r != 2, false}
			results[r] = g.Negotiate(p, r, mask)
		})
	}
	sim.RunAll()
	for r, got := range results {
		if !got[0] || got[1] || got[2] {
			t.Fatalf("rank %d negotiated %v, want [true false false]", r, got)
		}
	}
}

func TestNegotiateTakesTime(t *testing.T) {
	sim := simnet.New()
	cl := cluster.New(sim, cluster.DefaultConfig(2))
	g := NewGroup(cl, BackendMPIOpt, nil)
	var end simnet.Time
	for r := 0; r < 8; r++ {
		r := r
		sim.Spawn("rank", func(p *simnet.Proc) {
			g.Negotiate(p, r, []bool{true})
			end = p.Now()
		})
	}
	sim.RunAll()
	if end <= 0 {
		t.Fatal("negotiation should cost simulated time")
	}
}

func TestSequentialCollectivesIndependent(t *testing.T) {
	// Two allreduces back to back must both complete and be recorded.
	sim := simnet.New()
	cl := cluster.New(sim, cluster.DefaultConfig(2))
	prof := hvprof.New()
	g := NewGroup(cl, BackendNCCL, prof)
	for r := 0; r < 8; r++ {
		r := r
		sim.Spawn("rank", func(p *simnet.Proc) {
			g.Allreduce(p, r, 1<<20, 1)
			g.Allreduce(p, r, 2<<20, 2)
		})
	}
	sim.RunAll()
	recs := prof.Records()
	if len(recs) != 2 {
		t.Fatalf("records %d", len(recs))
	}
	if recs[0].Bytes != 1<<20 || recs[1].Bytes != 2<<20 {
		t.Fatalf("record order/sizes wrong: %+v", recs)
	}
}

func TestBackendProperties(t *testing.T) {
	if BackendMPI.UsesRegCache() || !BackendMPIReg.UsesRegCache() || !BackendMPIOpt.UsesRegCache() {
		t.Fatal("reg-cache flags wrong")
	}
	if BackendMPI.IntraPath() != cluster.PathHostStaged {
		t.Fatal("default MPI must stage intra-node")
	}
	if BackendMPIOpt.IntraPath() != cluster.PathIPC {
		t.Fatal("MPI-Opt must use IPC")
	}
	if BackendMPI.InterPath() != cluster.PathIBStaged || BackendNCCL.InterPath() != cluster.PathGDR {
		t.Fatal("inter paths wrong")
	}
	for _, b := range []Backend{BackendMPI, BackendMPIReg, BackendMPIOpt, BackendNCCL, Backend(42)} {
		if b.String() == "" {
			t.Fatal("empty backend name")
		}
	}
}

func TestBcastCompletes(t *testing.T) {
	for _, nodes := range []int{1, 4} {
		for _, backend := range []Backend{BackendMPI, BackendMPIOpt} {
			sim := simnet.New()
			cl := cluster.New(sim, cluster.DefaultConfig(nodes))
			prof := hvprof.New()
			g := NewGroup(cl, backend, prof)
			times := make([]simnet.Time, cl.NumGPUs())
			for r := 0; r < cl.NumGPUs(); r++ {
				r := r
				sim.Spawn("rank", func(p *simnet.Proc) {
					g.Bcast(p, r, 64<<20, 5)
					times[r] = p.Now()
				})
			}
			sim.RunAll()
			for r, tt := range times {
				if tt != times[0] || tt <= 0 {
					t.Fatalf("nodes=%d %v: rank %d finished at %g (rank0 %g)",
						nodes, backend, r, tt, times[0])
				}
			}
			recs := prof.Records()
			if len(recs) != 1 || recs[0].Op != "bcast" {
				t.Fatalf("bcast record missing: %+v", recs)
			}
		}
	}
}

func TestBcastMultiNodeSlower(t *testing.T) {
	run := func(nodes int) simnet.Time {
		sim := simnet.New()
		cl := cluster.New(sim, cluster.DefaultConfig(nodes))
		g := NewGroup(cl, BackendMPIOpt, nil)
		var end simnet.Time
		for r := 0; r < cl.NumGPUs(); r++ {
			r := r
			sim.Spawn("rank", func(p *simnet.Proc) {
				g.Bcast(p, r, 64<<20, 5)
				end = p.Now()
			})
		}
		sim.RunAll()
		return end
	}
	if run(8) <= run(1) {
		t.Fatal("multi-node bcast should cost more than single-node")
	}
}

func TestInstancesReleased(t *testing.T) {
	sim := simnet.New()
	cl := cluster.New(sim, cluster.DefaultConfig(1))
	g := NewGroup(cl, BackendMPIOpt, nil)
	for r := 0; r < 4; r++ {
		r := r
		sim.Spawn("rank", func(p *simnet.Proc) {
			for i := 0; i < 10; i++ {
				g.Allreduce(p, r, 1<<20, uint64(i))
			}
		})
	}
	sim.RunAll()
	if len(g.instances) != 0 {
		t.Fatalf("%d instances leaked", len(g.instances))
	}
}
