package collective

import (
	"math"
	"sort"
	"testing"

	"repro/internal/tensor"
)

// refTopK computes the reference selection: indices of the k
// largest-magnitude elements, magnitude ties broken toward lower
// indices, returned ascending.
func refTopK(g []float32, k int) []int {
	idx := make([]int, len(g))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return sanMag(g[idx[a]]) > sanMag(g[idx[b]])
	})
	sel := append([]int(nil), idx[:k]...)
	sort.Ints(sel)
	return sel
}

// eqBits compares float32 values bit-wise, with any NaN matching any
// NaN (payload copies may requantize NaN payloads on exotic FPUs).
func eqBits(a, b float32) bool {
	if a != a && b != b {
		return true
	}
	return math.Float32bits(a) == math.Float32bits(b)
}

// TestTopKCodecRoundTrip pins the codec against a reference selection:
// decode(encode(g)) reproduces exactly the top-k indices and values, and
// touches nothing else.
func TestTopKCodecRoundTrip(t *testing.T) {
	rng := tensor.NewRNG(3)
	for _, n := range []int{1, 2, 5, 17, 100, 1001} {
		for _, k := range []int{0, 1, 2, n / 3, n - 1, n} {
			if k < 0 || k > n {
				continue
			}
			g := make([]float32, n)
			for i := range g {
				g[i] = (rng.Float32() - 0.5) * 10
			}
			wire := make([]float32, TopKWords(k))
			EncodeTopK(wire, g, k, nil)
			out := make([]float32, n)
			got, err := DecodeTopKAdd(out, wire)
			if err != nil {
				t.Fatalf("n=%d k=%d: decode: %v", n, k, err)
			}
			if got != k {
				t.Fatalf("n=%d k=%d: decoded %d elements", n, k, got)
			}
			want := refTopK(g, k)
			sel := map[int]bool{}
			for _, i := range want {
				sel[i] = true
			}
			for i := range out {
				if sel[i] && !eqBits(out[i], g[i]) {
					t.Fatalf("n=%d k=%d: selected elem %d: got %v want %v", n, k, i, out[i], g[i])
				}
				if !sel[i] && out[i] != 0 {
					t.Fatalf("n=%d k=%d: unselected elem %d leaked %v", n, k, i, out[i])
				}
			}
		}
	}
}

// TestTopKCodecTies: equal magnitudes must resolve toward lower indices
// identically on every rank — a rank-dependent tie-break would desync
// the replicas' selections and their error-feedback residuals.
func TestTopKCodecTies(t *testing.T) {
	g := []float32{2, -2, 2, 1, -2, 2}
	wire := make([]float32, TopKWords(3))
	EncodeTopK(wire, g, 3, nil)
	out := make([]float32, len(g))
	if _, err := DecodeTopKAdd(out, wire); err != nil {
		t.Fatal(err)
	}
	want := []float32{2, -2, 2, 0, 0, 0}
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("elem %d: got %v want %v (tie-break must favor low indices)", i, out, want)
		}
	}
}

// TestTopKCountPins the k schedule: ⌈n/ratio⌉ clamped to [1, n].
func TestTopKCount(t *testing.T) {
	cases := []struct{ n, ratio, want int }{
		{0, 32, 0}, {1, 32, 1}, {31, 32, 1}, {32, 32, 1}, {33, 32, 2},
		{1000, 32, 32}, {1000, 1, 1000}, {1000, 0, 1000}, {5, 100, 1},
	}
	for _, c := range cases {
		if got := TopKCount(c.n, c.ratio); got != c.want {
			t.Fatalf("TopKCount(%d,%d) = %d, want %d", c.n, c.ratio, got, c.want)
		}
	}
}

// TestDecodeTopKAddRejects pins the validation surface: every malformed
// shape errors out cleanly and leaves the output untouched.
func TestDecodeTopKAddRejects(t *testing.T) {
	mk := func(count uint32, words ...uint32) []float32 {
		p := []float32{math.Float32frombits(count)}
		for _, w := range words {
			p = append(p, math.Float32frombits(w))
		}
		return p
	}
	out := make([]float32, 4)
	cases := map[string][]float32{
		"empty":           {},
		"count>payload":   mk(3, 1, 2),
		"count>out":       append(mk(5, 0, 1, 2, 3), make([]float32, 7)...),
		"index-range":     append(mk(1, 9), 1),
		"index-unordered": append(mk(2, 2, 1), 1, 1),
		"index-repeat":    append(mk(2, 1, 1), 1, 1),
	}
	for name, payload := range cases {
		if _, err := DecodeTopKAdd(out, payload); err == nil {
			t.Fatalf("%s: expected error", name)
		}
		for i, v := range out {
			if v != 0 {
				t.Fatalf("%s: rejected payload mutated out[%d]=%v", name, i, v)
			}
		}
	}
}

// FuzzTopKEncodeDecode is the wire-robustness gate from the issue: for
// arbitrary gradients, decode(encode(g)) preserves the selected
// indices/values exactly; and the decoder never panics on truncated or
// arbitrary payloads.
func FuzzTopKEncodeDecode(f *testing.F) {
	f.Add([]byte{0, 0, 128, 63, 0, 0, 0, 64, 0, 0, 64, 64})
	f.Add([]byte{255, 255, 255, 255, 1, 2, 3, 4})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Interpret the input as a little-endian float32 gradient.
		n := len(data) / 4
		g := make([]float32, n)
		for i := 0; i < n; i++ {
			bits := uint32(data[4*i]) | uint32(data[4*i+1])<<8 |
				uint32(data[4*i+2])<<16 | uint32(data[4*i+3])<<24
			g[i] = math.Float32frombits(bits)
		}
		if n > 0 {
			k := 1 + int(data[0])%n
			wire := make([]float32, TopKWords(k))
			EncodeTopK(wire, g, k, nil)
			out := make([]float32, n)
			s, err := DecodeTopKAdd(out, wire)
			if err != nil {
				t.Fatalf("decode of own encoding failed: %v", err)
			}
			if s != k {
				t.Fatalf("encoded k=%d, decoded %d", k, s)
			}
			for j := 0; j < s; j++ {
				idx := math.Float32bits(wire[1+j])
				if !eqBits(out[idx], g[idx]) {
					t.Fatalf("selected elem %d: %v != %v", idx, out[idx], g[idx])
				}
			}
			// Truncations of a valid payload must error, never panic.
			for cut := 0; cut < len(wire); cut++ {
				if _, err := DecodeTopKAdd(out, wire[:cut]); err == nil && cut < 1+2*s {
					t.Fatalf("truncated payload (%d of %d words) accepted", cut, len(wire))
				}
			}
		}
		// Arbitrary bytes as a payload: any outcome but a panic.
		DecodeTopKAdd(make([]float32, 8), g)
	})
}
