package collective

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/simnet"
)

// Allreduce performs one allreduce of a bytes-sized buffer across all
// ranks; every rank's engine must call it in the same order. regKey
// identifies the communication buffer (Horovod's fusion buffer or an
// unfused tensor) for the registration cache. The call returns when the
// collective completes on this rank; rank 0 records the profiled duration.
func (g *Group) Allreduce(p *simnet.Proc, rank int, bytes int64, regKey uint64) {
	inst := g.join(p, rank)
	if g.NumRanks() > 1 {
		if g.Backend == BackendNCCL {
			g.flatRing(p, inst, rank, bytes, regKey)
		} else {
			g.hierarchical(p, inst, rank, bytes, regKey)
		}
	}
	inst.barrier(p)
	if rank == 0 {
		if g.Prof != nil {
			g.Prof.Record("allreduce", bytes, p.Now()-inst.start)
		}
		if g.Trace != nil {
			g.Trace.Add("comm", fmt.Sprintf("allreduce %dMB", bytes>>20), inst.start, p.Now())
		}
	}
	g.release(inst)
}

// hierarchical is the MVAPICH2-GDR-style two-level design: reduce within
// each node (NVLink or host-staged), ring-allreduce across node leaders
// (InfiniBand), then broadcast within each node.
func (g *Group) hierarchical(p *simnet.Proc, inst *instance, rank int, bytes int64, regKey uint64) {
	cl := g.Cl
	gpu := cl.GPU(rank)
	gs := cl.Cfg.GPUsPerNode
	nodes := cl.Cfg.Nodes
	isLeader := gpu.Local == 0

	// Phase 1 — intra-node reduce: a reduce-scatter in which every rank
	// moves (g−1)/g of the buffer, then non-leaders forward their reduced
	// shard (1/g) to the leader.
	if gs > 1 {
		vol := bytes * int64(gs-1) / int64(gs)
		if !isLeader {
			vol += bytes / int64(gs)
		}
		dur := float64(gs-1)*g.intraLatency(bytes) + float64(vol)/g.intraBandwidth(bytes)
		gpu.Port().Use(p, dur)
	}
	inst.barrier(p)

	// Phase 2 — inter-node ring allreduce among node leaders: each leader
	// moves 2·bytes·(N−1)/N through its NIC across 2(N−1) pipelined steps.
	if nodes > 1 && isLeader {
		vol := 2 * bytes * int64(nodes-1) / int64(nodes)
		steps := 2 * (nodes - 1)
		cl.InterRing(p, gpu.Node, vol, steps, g.Backend.InterPath(), regKey)
	}
	inst.barrier(p)

	// Phase 3 — intra-node broadcast of the result from the leader.
	if gs > 1 && !isLeader {
		dur := g.intraLatency(bytes) + float64(bytes)/g.intraBandwidth(bytes)
		gpu.Port().Use(p, dur)
	}
}

// intraPath resolves the intra-node path for a message of the given size.
// MVAPICH2-GDR's CUDA-IPC designs only engage for large messages (the
// pipelined staging path serves small and medium ones in every mode),
// which is why the paper's Table I shows ≈0 improvement below 16 MB: both
// configurations take the same path there. NCCL always runs over IPC.
func (g *Group) intraPath(bytes int64) cluster.Path {
	switch g.Backend {
	case BackendNCCL:
		return cluster.PathIPC
	case BackendMPIOpt:
		if bytes >= g.Cl.Cfg.IPCMessageThreshold {
			return cluster.PathIPC
		}
		return cluster.PathHostStaged
	default:
		return cluster.PathHostStaged
	}
}

func (g *Group) intraBandwidth(bytes int64) float64 {
	if g.intraPath(bytes) == cluster.PathIPC {
		return g.Cl.Cfg.NVLinkBandwidth
	}
	return g.Cl.Cfg.HostStagedBandwidth
}

func (g *Group) intraLatency(bytes int64) float64 {
	if g.intraPath(bytes) == cluster.PathIPC {
		return g.Cl.Cfg.NVLinkLatency
	}
	return g.Cl.Cfg.HostStagedLatency
}

// flatRing is the NCCL-style single ring over all ranks: each rank moves
// 2·bytes·(p−1)/p to its ring neighbor — over NVLink when the neighbor is
// on the same node, over InfiniBand when the ring crosses nodes — with a
// per-step pipeline latency that grows linearly in p.
func (g *Group) flatRing(p *simnet.Proc, inst *instance, rank int, bytes int64, regKey uint64) {
	cl := g.Cl
	gpu := cl.GPU(rank)
	pr := g.NumRanks()
	next := cl.GPU((rank + 1) % pr)
	vol := 2 * bytes * int64(pr-1) / int64(pr)
	pipeline := 2 * float64(pr-1) * g.NCCLChunkLatency

	if next.Node == gpu.Node {
		dur := pipeline + float64(vol)/cl.Cfg.NVLinkBandwidth
		gpu.Port().Use(p, dur)
	} else {
		// Ring edge crossing to the next node: GDR over this node's NIC.
		cl.InterRingEdge(p, gpu.Node, vol, pipeline, cluster.PathGDR, regKey)
	}
	inst.barrier(p)
}

// Bcast broadcasts a bytes-sized buffer from global rank 0 to all ranks —
// Horovod's initial parameter synchronization (step 2 of the paper's
// integration recipe). The simulated cost is a binomial tree over node
// leaders (log₂ N network hops) followed by an intra-node broadcast.
func (g *Group) Bcast(p *simnet.Proc, rank int, bytes int64, regKey uint64) {
	inst := g.join(p, rank)
	cl := g.Cl
	gpu := cl.GPU(rank)
	nodes := cl.Cfg.Nodes
	gs := cl.Cfg.GPUsPerNode
	if g.NumRanks() > 1 {
		// Inter-node stage: each leader after the root forwards once per
		// binomial-tree round it participates in; we charge each
		// non-root leader one receive and the root log₂(N) sends.
		if nodes > 1 && gpu.Local == 0 {
			rounds := 0
			for 1<<rounds < nodes {
				rounds++
			}
			if gpu.Node == 0 {
				vol := bytes * int64(rounds)
				cl.InterRing(p, 0, vol, rounds, g.Backend.InterPath(), regKey)
			} else {
				cl.InterRing(p, gpu.Node, bytes, 1, g.Backend.InterPath(), regKey)
			}
		}
		inst.barrier(p)
		// Intra-node stage: leader fans the buffer out over NVLink/staged.
		if gs > 1 && gpu.Local != 0 {
			dur := g.intraLatency(bytes) + float64(bytes)/g.intraBandwidth(bytes)
			gpu.Port().Use(p, dur)
		}
	}
	inst.barrier(p)
	if rank == 0 {
		if g.Prof != nil {
			g.Prof.Record("bcast", bytes, p.Now()-inst.start)
		}
		if g.Trace != nil {
			g.Trace.Add("comm", "bcast", inst.start, p.Now())
		}
	}
	g.release(inst)
}

// Negotiate is Horovod's coordinator round: every rank contributes its
// local readiness mask; the returned mask is the AND across ranks
// (tensors ready everywhere). The round costs a latency-bound small
// allreduce — base·log2(p) plus the mask payload — and is recorded in the
// profile as a small allreduce, which is what populates the 1–128 KB
// bucket of the paper's Fig. 14.
func (g *Group) Negotiate(p *simnet.Proc, rank int, mask []bool) []bool {
	inst := g.join(p, rank)
	if inst.maskAND == nil {
		inst.maskAND = append([]bool(nil), mask...)
	} else {
		for i, m := range mask {
			inst.maskAND[i] = inst.maskAND[i] && m
		}
	}
	inst.barrier(p)
	out := append([]bool(nil), inst.maskAND...)

	pr := g.NumRanks()
	bytes := int64(len(mask)) * 4 // one float32 flag per tensor on the wire
	if pr > 1 {
		dur := g.NegotiationBaseLatency*math.Log2(float64(pr)) + float64(bytes)/5e8
		p.Sleep(dur)
	}
	inst.barrier(p)
	if rank == 0 {
		if g.Prof != nil {
			g.Prof.Record("allreduce", bytes, p.Now()-inst.start)
		}
		if g.Trace != nil {
			g.Trace.Add("comm", "negotiate", inst.start, p.Now())
		}
	}
	g.release(inst)
	return out
}
