package collective

import (
	"math"
	"sync"
	"testing"

	"repro/internal/mpi"
)

// TestTopKAllreduceDenseRatio: with ratio 1 nothing is dropped, so the
// sparse path must reproduce the exact dense sum on every rank.
func TestTopKAllreduceDenseRatio(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5} {
		for _, n := range []int{1, 13, 257} {
			w := mpi.NewWorld(size)
			var mu sync.Mutex
			results := make([][]float32, size)
			if err := w.Run(func(c *mpi.Comm) {
				tk := NewTopK(1)
				buf := make([]float32, n)
				for i := range buf {
					buf[i] = float32((c.Rank()+i)%7 - 3)
				}
				if err := tk.Allreduce(c, buf); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				results[c.Rank()] = buf
				mu.Unlock()
			}); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				var want float32
				for r := 0; r < size; r++ {
					want += float32((r+i)%7 - 3)
				}
				for r := 0; r < size; r++ {
					if results[r][i] != want {
						t.Fatalf("size=%d n=%d rank=%d elem=%d: got %g want %g",
							size, n, r, i, results[r][i], want)
					}
				}
			}
		}
	}
}

// TestTopKAllreduceSparseMatchesReference: with a real sparsification
// ratio the result must equal the rank-ordered sum of every rank's
// locally encoded top-k contribution, bit-identical on all ranks.
func TestTopKAllreduceSparseMatchesReference(t *testing.T) {
	const size, n, ratio = 4, 1000, 8
	grad := func(rank, i int) float32 {
		return float32(math.Sin(float64(rank*n + i)))
	}
	var mu sync.Mutex
	results := make([][]float32, size)
	w := mpi.NewWorld(size)
	if err := w.Run(func(c *mpi.Comm) {
		tk := NewTopK(ratio)
		tk.ErrorFeedback = false
		buf := make([]float32, n)
		for i := range buf {
			buf[i] = grad(c.Rank(), i)
		}
		if err := tk.Allreduce(c, buf); err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		results[c.Rank()] = buf
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	// Reference: encode each rank's gradient locally, decode-sum in rank
	// order — the exact arithmetic the collective promises.
	k := TopKCount(n, ratio)
	want := make([]float32, n)
	for r := 0; r < size; r++ {
		g := make([]float32, n)
		for i := range g {
			g[i] = grad(r, i)
		}
		wire := make([]float32, TopKWords(k))
		EncodeTopK(wire, g, k, nil)
		if _, err := DecodeTopKAdd(want, wire); err != nil {
			t.Fatal(err)
		}
	}
	for r := 0; r < size; r++ {
		for i := 0; i < n; i++ {
			if math.Float32bits(results[r][i]) != math.Float32bits(want[i]) {
				t.Fatalf("rank %d elem %d: got %v want %v", r, i, results[r][i], want[i])
			}
		}
	}
}

// TestTopKErrorFeedbackCarriesResidual pins DGC's error-feedback
// arithmetic on one rank: unsent mass must reappear and win selection on
// later steps instead of being silently dropped.
func TestTopKErrorFeedbackCarriesResidual(t *testing.T) {
	w := mpi.NewWorld(1)
	if err := w.Run(func(c *mpi.Comm) {
		tk := NewTopK(4) // n=4 → k=1: one element per step
		buf := make([]float32, 4)

		copy(buf, []float32{4, 3, 2, 1})
		if err := tk.Allreduce(c, buf); err != nil {
			t.Error(err)
			return
		}
		if want := []float32{4, 0, 0, 0}; !eqSlice(buf, want) {
			t.Errorf("step 1: got %v want %v", buf, want)
		}

		// Zero gradient: the residual alone must drive the next pick.
		clear(buf)
		if err := tk.Allreduce(c, buf); err != nil {
			t.Error(err)
			return
		}
		if want := []float32{0, 3, 0, 0}; !eqSlice(buf, want) {
			t.Errorf("step 2: got %v want %v", buf, want)
		}

		// A fresh gradient folds into the remaining residual [0,0,2,1].
		copy(buf, []float32{0, 0, 3, 0})
		if err := tk.Allreduce(c, buf); err != nil {
			t.Error(err)
			return
		}
		if want := []float32{0, 0, 5, 0}; !eqSlice(buf, want) {
			t.Errorf("step 3: got %v want %v", buf, want)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

func eqSlice(a, b []float32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTopKNoErrorFeedbackDrops: without error feedback the unsent mass
// is gone — the contrast that motivates the EF machinery.
func TestTopKNoErrorFeedbackDrops(t *testing.T) {
	w := mpi.NewWorld(1)
	if err := w.Run(func(c *mpi.Comm) {
		tk := NewTopK(4)
		tk.ErrorFeedback = false
		buf := []float32{4, 3, 2, 1}
		if err := tk.Allreduce(c, buf); err != nil {
			t.Error(err)
			return
		}
		clear(buf)
		if err := tk.Allreduce(c, buf); err != nil {
			t.Error(err)
			return
		}
		if !eqSlice(buf, []float32{0, 0, 0, 0}) {
			t.Errorf("dropped mass resurfaced: %v", buf)
		}
	}); err != nil {
		t.Fatal(err)
	}
}

// TestTopKAllreduceZeroAlloc pins the steady-state zero-allocation
// contract of the sparse hot path (selection scratch, payload slots, and
// residuals all reach their high-water mark during warm-up).
func TestTopKAllreduceZeroAlloc(t *testing.T) {
	const runs = 50
	w := mpi.NewWorld(4)
	var got float64
	w.Run(func(c *mpi.Comm) {
		tk := NewTopK(16)
		buf := make([]float32, 2048)
		iter := func() {
			for i := range buf {
				buf[i] = float32(i%17) - 8
			}
			if err := tk.Allreduce(c, buf); err != nil {
				t.Error(err)
			}
		}
		for i := 0; i < 3; i++ {
			iter()
		}
		if c.Rank() == 0 {
			got = testing.AllocsPerRun(runs, iter)
		} else {
			for i := 0; i < runs+1; i++ {
				iter()
			}
		}
	})
	if got != 0 {
		t.Errorf("%g allocs per sparse allreduce, want 0", got)
	}
}

// TestTopKWireBytes pins the on-wire win the issue requires: the metered
// bytes of a sparse allreduce must undercut the exact ring by ≥2×.
func TestTopKWireBytes(t *testing.T) {
	const size, n, ratio = 4, 4096, 32
	var sparse, exact int64
	w := mpi.NewWorld(size)
	w.Run(func(c *mpi.Comm) {
		tk := NewTopK(ratio)
		buf := make([]float32, n)
		if err := tk.Allreduce(c, buf); err != nil {
			t.Error(err)
		}
		if c.Rank() == 0 {
			sparse = c.SentBytes()
		}
	})
	w2 := mpi.NewWorld(size)
	w2.Run(func(c *mpi.Comm) {
		buf := make([]float32, n)
		c.AllreduceSum(buf, mpi.AlgoRing)
		if c.Rank() == 0 {
			exact = c.SentBytes()
		}
	})
	k := TopKCount(n, ratio)
	wantSparse := int64(size-1) * int64(TopKWords(k)) * 4
	if sparse != wantSparse {
		t.Fatalf("sparse wire bytes %d, want %d", sparse, wantSparse)
	}
	if exact < 2*sparse {
		t.Fatalf("wire reduction %.1f× < 2× (sparse %d, exact %d)",
			float64(exact)/float64(sparse), sparse, exact)
	}
}

// TestCompressionParseAndNames pins the CLI surface.
func TestCompressionParseAndNames(t *testing.T) {
	for _, c := range []Compression{CompressNone, CompressFP16, CompressTopK} {
		got, err := ParseCompression(c.String())
		if err != nil || got != c {
			t.Fatalf("round-trip %v: got %v err %v", c, got, err)
		}
	}
	if _, err := ParseCompression("zstd"); err == nil {
		t.Fatal("expected error for unknown variant")
	}
	if fn, err := NewAllreduceFnByName("none", 0); err != nil || fn != nil {
		t.Fatalf("none must resolve to nil fn (backend default), err %v", err)
	}
	for _, name := range []string{"fp16", "topk", "hier", "hier-fp16"} {
		if fn, err := NewAllreduceFnByName(name, 32); err != nil || fn == nil {
			t.Fatalf("%s: fn nil=%v err=%v", name, fn == nil, err)
		}
	}
	if _, err := NewAllreduceFnByName("bogus", 0); err == nil {
		t.Fatal("expected error for unknown name")
	}
}
