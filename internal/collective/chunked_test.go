package collective

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/simnet"
)

// runChunked executes one chunked-ring allreduce and returns its duration.
func runChunked(nodes int, bytes int64, chunks int) float64 {
	sim := simnet.New()
	cl := cluster.New(sim, cluster.DefaultConfig(nodes))
	g := NewGroup(cl, BackendNCCL, nil)
	var end simnet.Time
	for r := 0; r < cl.NumGPUs(); r++ {
		r := r
		sim.Spawn("rank", func(p *simnet.Proc) {
			g.ChunkedRingAllreduce(p, r, bytes, chunks)
			end = p.Now()
		})
	}
	sim.RunAll()
	return end
}

func TestChunkedRingCompletes(t *testing.T) {
	for _, nodes := range []int{1, 2, 3} {
		for _, chunks := range []int{1, 2, 8} {
			d := runChunked(nodes, 16<<20, chunks)
			if d <= 0 {
				t.Fatalf("nodes=%d chunks=%d: duration %g", nodes, chunks, d)
			}
		}
	}
}

func TestChunkedAllRanksFinishTogether(t *testing.T) {
	sim := simnet.New()
	cl := cluster.New(sim, cluster.DefaultConfig(2))
	g := NewGroup(cl, BackendNCCL, nil)
	times := make([]simnet.Time, cl.NumGPUs())
	for r := 0; r < cl.NumGPUs(); r++ {
		r := r
		sim.Spawn("rank", func(p *simnet.Proc) {
			g.ChunkedRingAllreduce(p, r, 8<<20, 4)
			times[r] = p.Now()
		})
	}
	sim.RunAll()
	for r, tt := range times {
		if math.Abs(tt-times[0]) > 1e-12 {
			t.Fatalf("rank %d at %g, rank 0 at %g", r, tt, times[0])
		}
	}
}

// TestChunkedMatchesMacroRing is the cross-validation: the fine-grained
// per-chunk pipeline must agree with the macro flat-ring model. The
// lockstep chunk exchange serializes what the real pipeline overlaps, so
// the chunked time is bounded below by the macro time and above by the
// macro time plus the lockstep inflation factor; with few chunks and
// intra-node rings the two converge tightly.
func TestChunkedMatchesMacroRing(t *testing.T) {
	for _, tc := range []struct {
		nodes  int
		bytes  int64
		chunks int
	}{
		{1, 32 << 20, 1},
		{1, 64 << 20, 4},
		{2, 32 << 20, 1},
		{4, 48 << 20, 2},
	} {
		name := fmt.Sprintf("%dnodes/%dMB/%dchunks", tc.nodes, tc.bytes>>20, tc.chunks)
		chunked := runChunked(tc.nodes, tc.bytes, tc.chunks)

		// Macro model duration for the same ring.
		sim := simnet.New()
		cl := cluster.New(sim, cluster.DefaultConfig(tc.nodes))
		g := NewGroup(cl, BackendNCCL, nil)
		var macro simnet.Time
		for r := 0; r < cl.NumGPUs(); r++ {
			r := r
			sim.Spawn("rank", func(p *simnet.Proc) {
				g.Allreduce(p, r, tc.bytes, 1)
				macro = p.Now()
			})
		}
		sim.RunAll()

		if chunked < macro*0.85 {
			t.Errorf("%s: chunked %.6fs implausibly below macro %.6fs", name, chunked, macro)
		}
		// Lockstep rendezvous can inflate by the per-chunk latency share;
		// allow 2x headroom.
		if chunked > macro*2.0+0.001 {
			t.Errorf("%s: chunked %.6fs too far above macro %.6fs", name, chunked, macro)
		}
	}
}

func TestChunkedInvalidChunksPanics(t *testing.T) {
	sim := simnet.New()
	cl := cluster.New(sim, cluster.DefaultConfig(1))
	g := NewGroup(cl, BackendNCCL, nil)
	panicked := false
	sim.Spawn("rank", func(p *simnet.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		g.ChunkedRingAllreduce(p, 0, 1<<20, 0)
	})
	func() {
		defer func() { recover() }() // remaining ranks absent → deadlock panic is fine
		sim.RunAll()
	}()
	if !panicked {
		t.Fatal("expected panic for zero chunks")
	}
}
