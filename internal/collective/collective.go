// Package collective implements the simulated allreduce algorithms of the
// two communication backends the paper compares — MVAPICH2-GDR's two-level
// hierarchical design and NCCL's flat ring — executed as discrete-event
// processes on the cluster model.
//
// A Backend bundles the algorithm with the transfer paths the visibility
// configuration permits:
//
//	MPI      — hierarchical, host-staged everywhere (no IPC/GDR designs),
//	           no registration cache (paper's default).
//	MPI-Reg  — MPI plus the InfiniBand registration cache.
//	MPI-Opt  — hierarchical with CUDA IPC intra-node and GDR inter-node
//	           (MV2_VISIBLE_DEVICES in effect) plus the registration cache.
//	NCCL     — flat ring with IPC and GDR (NCCL discovers devices itself,
//	           so the framework's CUDA_VISIBLE_DEVICES pinning never hurt
//	           it — which is why the paper's default-MPI degradation does
//	           not appear on the NCCL curves).
package collective

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/simnet"
)

// Backend selects a communication configuration from the paper.
type Backend int

// Backends evaluated in the paper.
const (
	BackendMPI Backend = iota
	BackendMPIReg
	BackendMPIOpt
	BackendNCCL
)

// String names the backend as the paper does.
func (b Backend) String() string {
	switch b {
	case BackendMPI:
		return "MPI"
	case BackendMPIReg:
		return "MPI-Reg"
	case BackendMPIOpt:
		return "MPI-Opt"
	case BackendNCCL:
		return "NCCL"
	default:
		return fmt.Sprintf("backend(%d)", int(b))
	}
}

// IntraPath returns the intra-node transfer path the backend may use.
func (b Backend) IntraPath() cluster.Path {
	switch b {
	case BackendMPI, BackendMPIReg:
		return cluster.PathHostStaged
	default:
		return cluster.PathIPC
	}
}

// InterPath returns the inter-node transfer path the backend may use.
func (b Backend) InterPath() cluster.Path {
	switch b {
	case BackendMPI, BackendMPIReg:
		return cluster.PathIBStaged
	default:
		return cluster.PathGDR
	}
}

// UsesRegCache reports whether the backend enables the registration cache.
func (b Backend) UsesRegCache() bool {
	return b == BackendMPIReg || b == BackendMPIOpt || b == BackendNCCL
}

// Profiler matches hvprof's recording interface.
type Profiler interface {
	Record(op string, bytes int64, seconds float64)
}

// Tracer receives activity spans for timeline rendering (hvprof.Timeline
// implements it). Only rank 0's view is traced.
type Tracer interface {
	Add(lane, label string, start, end float64)
}

// Group coordinates collectives among all GPUs of a cluster. Every rank
// must call each collective in the same order (the Horovod engine
// guarantees this); ranks synchronize through per-instance barriers.
//
// All methods run inside simnet processes; the simulation kernel is
// single-threaded, so Group needs no locking.
type Group struct {
	Cl      *cluster.Cluster
	Backend Backend
	Prof    Profiler
	// Trace, when non-nil, receives a span per collective.
	Trace Tracer

	// NCCLChunkLatency is the per-ring-step pipeline latency of the flat
	// ring (two passes of p−1 steps each); it is what makes flat rings
	// degrade at very large rank counts.
	NCCLChunkLatency float64
	// NegotiationBaseLatency scales the Horovod coordinator round:
	// base·log2(p) plus the mask payload transfer.
	NegotiationBaseLatency float64

	seq       []int
	instances map[instKey]*instance
}

type instKey struct {
	seq int
}

// instance is the shared state of one collective call across ranks.
type instance struct {
	key      instKey
	arrived  int
	expected int
	finished int
	waiters  []*simnet.Proc
	start    simnet.Time
	maskAND  []bool
	// ring holds the per-neighbor channels of a chunked-ring instance.
	ring *ringState
}

// NewGroup creates a coordinator over all GPUs in cl.
func NewGroup(cl *cluster.Cluster, backend Backend, prof Profiler) *Group {
	g := &Group{
		Cl:                     cl,
		Backend:                backend,
		Prof:                   prof,
		NCCLChunkLatency:       40e-6,
		NegotiationBaseLatency: 45e-6,
		seq:                    make([]int, cl.NumGPUs()),
		instances:              map[instKey]*instance{},
	}
	if backend.UsesRegCache() {
		cl.EnableRegCache(64)
	}
	return g
}

// NumRanks returns the number of participating ranks (all GPUs).
func (g *Group) NumRanks() int { return g.Cl.NumGPUs() }

// join obtains the shared instance for a rank's next collective call.
// The first rank to arrive creates it; its start time records the
// earliest entry for profiling.
func (g *Group) join(p *simnet.Proc, rank int) *instance {
	key := instKey{seq: g.seq[rank]}
	g.seq[rank]++
	inst := g.instances[key]
	if inst == nil {
		inst = &instance{key: key, expected: g.NumRanks(), start: p.Now()}
		g.instances[key] = inst
	}
	if p.Now() < inst.start {
		inst.start = p.Now()
	}
	return inst
}

// release drops the instance once every rank has left it.
func (g *Group) release(inst *instance) {
	inst.finished++
	if inst.finished == inst.expected {
		delete(g.instances, inst.key)
	}
}

// barrier blocks until all ranks of the instance reach the same point.
func (inst *instance) barrier(p *simnet.Proc) {
	inst.arrived++
	if inst.arrived == inst.expected {
		inst.arrived = 0
		for _, w := range inst.waiters {
			p.Sim().Wake(w)
		}
		inst.waiters = inst.waiters[:0]
		return
	}
	inst.waiters = append(inst.waiters, p)
	p.Block()
}
