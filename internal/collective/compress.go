package collective

import (
	"fmt"
	"math"
	"time"

	"repro/internal/mpi"
)

// Real-communication gradient compression. The simulation side of this
// package prices the variants on the cluster model; this file runs them
// for real over the in-process MPI substrate, shaped to plug into
// horovod.Config.AllreduceFn so the engine's negotiation, fusion, and
// failure semantics stay untouched.

// Compression selects the gradient-compression variant of an allreduce.
type Compression int

const (
	// CompressNone is the exact float32 ring.
	CompressNone Compression = iota
	// CompressFP16 packs every wire payload to IEEE 754 binary16: half
	// the bytes, 11-bit significands, deterministic across replicas.
	CompressFP16
	// CompressTopK ships only the k largest-magnitude gradient elements
	// per bucket as index+value pairs, with local error feedback carrying
	// the unsent mass into the next step.
	CompressTopK
)

// String names the variant as the CLI flags and reports spell it.
func (c Compression) String() string {
	switch c {
	case CompressNone:
		return "none"
	case CompressFP16:
		return "fp16"
	case CompressTopK:
		return "topk"
	default:
		return fmt.Sprintf("compression(%d)", int(c))
	}
}

// ParseCompression parses a CLI-facing variant name.
func ParseCompression(s string) (Compression, error) {
	switch s {
	case "", "none":
		return CompressNone, nil
	case "fp16":
		return CompressFP16, nil
	case "topk":
		return CompressTopK, nil
	}
	return CompressNone, fmt.Errorf("collective: unknown compression %q (none|fp16|topk)", s)
}

// FP16Allreduce runs the fp16-compressed chunk-pipelined ring; it is a
// horovod.Config.AllreduceFn.
func FP16Allreduce(c *mpi.Comm, buf []float32) error {
	c.AllreduceSumFP16(buf)
	return nil
}

// NodeAwareAllreduce returns an AllreduceFn running the two-level
// node-aware reduction (intra-node reduce, leader ring, intra-node
// broadcast) over the communicator's topology, with an optionally
// fp16-compressed inter-node wire.
func NodeAwareAllreduce(fp16 bool) func(c *mpi.Comm, buf []float32) error {
	return func(c *mpi.Comm, buf []float32) error {
		c.AllreduceSumNodeAware(buf, fp16)
		return nil
	}
}

// TopK is one rank's top-k sparsified allreduce state: compression ratio,
// per-buffer error-feedback residuals, and reusable scratch. Create one
// per rank (NewTopK) and install its Allreduce as the engine's
// AllreduceFn; the residual map is keyed by gradient buffer identity, so
// it needs the stable per-tensor buffers an unfused engine reduces
// (fusion buffers are recycled across groups and would alias residuals).
type TopK struct {
	// Ratio keeps ⌈n/Ratio⌉ elements of an n-element bucket (DGC-style
	// fixed-rate sparsification). Ratio ≤ 1 keeps everything.
	Ratio int
	// ErrorFeedback accumulates the unsent gradient mass locally and
	// re-injects it the next time the same buffer reduces — the
	// correction that lets aggressive sparsification converge.
	ErrorFeedback bool

	resid map[residKey][]float32
	mags  []float32
	slots []float32
}

// residKey identifies a gradient buffer across steps by its backing
// array identity and length.
type residKey struct {
	ptr *float32
	n   int
}

// NewTopK returns a fresh per-rank top-k allreduce with the given
// compression ratio and error feedback enabled.
func NewTopK(ratio int) *TopK {
	return &TopK{Ratio: ratio, ErrorFeedback: true, resid: map[residKey][]float32{}}
}

// residual returns the error-feedback accumulator for buf, zero-valued
// on first sight.
func (t *TopK) residual(buf []float32) []float32 {
	key := residKey{&buf[0], len(buf)}
	r := t.resid[key]
	if r == nil {
		r = make([]float32, len(buf))
		t.resid[key] = r
	}
	return r
}

// grow returns s with at least n elements, reallocating at most once per
// high-water mark so the steady state is allocation-free.
func grow(s []float32, n int) []float32 {
	if cap(s) < n {
		return make([]float32, n)
	}
	return s[:n]
}

// Allreduce is the sparsified sum: every rank (after folding in its
// residual) selects its top-k elements, the fixed-size payloads ride a
// ring allgather on the reserved sparse tag band, and each rank decodes
// all p contributions in rank order — identical arithmetic everywhere,
// so replicas stay bit-wise in sync. Unselected mass becomes the new
// residual (or is dropped without error feedback). A malformed payload
// aborts with an error, which the engine surfaces through Err/Drain.
func (t *TopK) Allreduce(c *mpi.Comm, buf []float32) error {
	n := len(buf)
	if n == 0 {
		return nil
	}
	start := time.Now()
	p := c.Size()
	me := c.Rank()
	k := TopKCount(n, t.Ratio)
	w := TopKWords(k)

	if t.ErrorFeedback {
		resid := t.residual(buf)
		for i, r := range resid {
			buf[i] += r
		}
	}
	t.mags = grow(t.mags, n)
	t.slots = grow(t.slots, p*w)
	own := t.slots[me*w : (me+1)*w]
	EncodeTopK(own, buf, k, t.mags)
	if t.ErrorFeedback {
		resid := t.residual(buf)
		copy(resid, buf)
		for j := 0; j < k; j++ {
			resid[idxWord(own, j)] = 0
		}
	}
	clear(buf)

	// Ring allgather of the fixed-size payloads: step s forwards the
	// slot received at step s−1, so after p−1 steps every rank holds all
	// p contributions in source-rank order.
	next, prev := (me+1)%p, (me-1+p)%p
	for step := 0; step < p-1; step++ {
		send := t.slots[((me-step+p)%p)*w:][:w]
		recvRank := (me - step - 1 + p) % p
		c.Send(next, mpi.TagSparse+step, send)
		c.Recv(prev, mpi.TagSparse+step, t.slots[recvRank*w:][:w])
	}
	for r := 0; r < p; r++ {
		if _, err := DecodeTopKAdd(buf, t.slots[r*w:(r+1)*w]); err != nil {
			return fmt.Errorf("top-k allreduce: rank %d payload: %w", r, err)
		}
	}
	c.ProfileCollective("allreduce", "allreduce/topk", int64(w)*4, time.Since(start))
	return nil
}

// idxWord reads index word j of an encoded payload.
func idxWord(payload []float32, j int) uint32 {
	return math.Float32bits(payload[1+j])
}

// NewAllreduceFn builds the engine AllreduceFn for a variant; nil means
// "use the backend default" (exact ring), which is what the engine does
// with a nil fn. topkRatio only applies to CompressTopK.
func NewAllreduceFn(kind Compression, topkRatio int) func(c *mpi.Comm, buf []float32) error {
	switch kind {
	case CompressFP16:
		return FP16Allreduce
	case CompressTopK:
		return NewTopK(topkRatio).Allreduce
	default:
		return nil
	}
}

// NewAllreduceFnByName resolves a CLI variant name — none, fp16, topk,
// hier, hier-fp16 — to an engine AllreduceFn (nil for none). The hier
// variants run the node-aware two-level reduction and honor the world's
// SetGPUsPerNode topology.
func NewAllreduceFnByName(name string, topkRatio int) (func(c *mpi.Comm, buf []float32) error, error) {
	switch name {
	case "hier":
		return NodeAwareAllreduce(false), nil
	case "hier-fp16":
		return NodeAwareAllreduce(true), nil
	}
	kind, err := ParseCompression(name)
	if err != nil {
		return nil, err
	}
	return NewAllreduceFn(kind, topkRatio), nil
}
