package collective_test

import (
	"math"
	"testing"

	"repro/internal/models"
	"repro/internal/trainer"
)

// TestCompressedAllreduceConvergence is the issue's convergence gate: a
// tiny EDSR trained 4-rank in-process from identical seeds under the
// exact ring, the fp16-compressed ring, and top-k sparsification with
// error feedback. Compression must not change the optimization story:
// every arm's loss trends down, and the compressed finals stay inside a
// pinned envelope of the exact final. The envelopes are deliberately
// tight — the arms are deterministic (unfused engine, rank-ordered
// sparse decode), so a numerics regression in any codec moves a final
// loss and trips them.
func TestCompressedAllreduceConvergence(t *testing.T) {
	const worldSize = 4
	base := trainer.DefaultConfig()
	base.Model = models.EDSRConfig{NumBlocks: 1, NumFeats: 6, Scale: 2, ResScale: 0.1, Colors: 3}
	base.Data.Images = 16
	base.Data.Height, base.Data.Width = 24, 24
	base.Steps = 30
	base.BatchSize = 2
	base.PatchSize = 8
	base.Seed = 11

	run := func(compression string, ratio int) trainer.Stats {
		t.Helper()
		cfg := base
		cfg.Compression = compression
		cfg.TopKRatio = ratio
		_, st, err := trainer.TrainDistributed(cfg, worldSize)
		if err != nil {
			t.Fatalf("%s: %v", compression, err)
		}
		if math.IsNaN(st.FinalLoss) || st.FinalLoss <= 0 {
			t.Fatalf("%s: bad final loss %g", compression, st.FinalLoss)
		}
		if st.FinalLoss >= st.AvgLoss*1.2 {
			t.Fatalf("%s: loss not trending down: final %g avg %g", compression, st.FinalLoss, st.AvgLoss)
		}
		return st
	}

	exact := run("none", 0)
	fp16 := run("fp16", 0)
	topk := run("topk", 16)

	// Pinned envelopes, relative to the exact final loss. fp16 rounds
	// every wire hop through 11-bit significands — after averaging, the
	// gradient perturbation is tiny, so its final must track the exact
	// run closely. Top-k at ratio 16 reshuffles which coordinates update
	// each step; error feedback keeps the trajectory sound but not
	// identical, so its envelope is wider.
	relFP16 := math.Abs(fp16.FinalLoss-exact.FinalLoss) / exact.FinalLoss
	relTopK := math.Abs(topk.FinalLoss-exact.FinalLoss) / exact.FinalLoss
	t.Logf("final losses: exact %.6f fp16 %.6f (Δ %.2f%%) topk %.6f (Δ %.2f%%)",
		exact.FinalLoss, fp16.FinalLoss, relFP16*100, topk.FinalLoss, relTopK*100)
	if relFP16 > 0.05 {
		t.Errorf("fp16 final loss %g drifted %.1f%% from exact %g (envelope 5%%)",
			fp16.FinalLoss, relFP16*100, exact.FinalLoss)
	}
	if relTopK > 0.35 {
		t.Errorf("topk final loss %g drifted %.1f%% from exact %g (envelope 35%%)",
			topk.FinalLoss, relTopK*100, exact.FinalLoss)
	}
}

// TestNodeAwareConvergence runs the two-level node-aware variant (2 GPUs
// per node, fp16 inter-node wire) through the same harness: the
// hierarchy must be transparent to training.
func TestNodeAwareConvergence(t *testing.T) {
	cfg := trainer.DefaultConfig()
	cfg.Model = models.EDSRConfig{NumBlocks: 1, NumFeats: 6, Scale: 2, ResScale: 0.1, Colors: 3}
	cfg.Data.Images = 16
	cfg.Data.Height, cfg.Data.Width = 24, 24
	cfg.Steps = 20
	cfg.BatchSize = 2
	cfg.PatchSize = 8
	cfg.Seed = 11
	cfg.GPUsPerNode = 2

	cfg.Compression = "none"
	_, exact, err := trainer.TrainDistributed(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Compression = "hier-fp16"
	_, hier, err := trainer.TrainDistributed(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if hier.FinalLoss >= hier.AvgLoss*1.2 {
		t.Fatalf("hier-fp16 loss not trending down: final %g avg %g", hier.FinalLoss, hier.AvgLoss)
	}
	rel := math.Abs(hier.FinalLoss-exact.FinalLoss) / exact.FinalLoss
	t.Logf("final losses: exact %.6f hier-fp16 %.6f (Δ %.2f%%)", exact.FinalLoss, hier.FinalLoss, rel*100)
	if rel > 0.05 {
		t.Errorf("hier-fp16 final loss %g drifted %.1f%% from exact %g (envelope 5%%)",
			hier.FinalLoss, rel*100, exact.FinalLoss)
	}
}
