package collective

import (
	"fmt"
	"math"
)

// Top-k sparsification codec (deep gradient compression): a gradient
// vector is reduced to its k largest-magnitude elements, shipped as an
// index+value payload riding the float32 transport. The wire layout, in
// float32 words, is
//
//	word 0        count s (uint32 bits), s ≤ k
//	words 1..s    element indices (uint32 bits), strictly ascending
//	words s+1..2s values (float32)
//
// Encoders always emit TopKWords(k) words so ring relays can use
// fixed-size receives; when fewer than k finite elements exist the tail
// beyond 2s+1 is zero. Decoders trust nothing: count, bounds, and
// ordering are validated so a truncated or corrupted payload surfaces as
// an error, never a panic or silent corruption.

// TopKWords returns the wire size, in float32 words, of a top-k payload
// for k selected elements.
func TopKWords(k int) int { return 1 + 2*k }

// TopKCount returns the number of elements kept from an n-element
// gradient at the given compression ratio: ⌈n/ratio⌉, at least 1, at
// most n. Ratio ≤ 1 keeps everything.
func TopKCount(n, ratio int) int {
	if n == 0 {
		return 0
	}
	if ratio <= 1 {
		return n
	}
	k := (n + ratio - 1) / ratio
	if k < 1 {
		k = 1
	}
	return k
}

// sanMag is the selection magnitude of a value: |v|, with NaN mapped
// below every real magnitude so quickselect stays total-ordered and
// deterministic, and NaNs are only ever selected after all finite
// elements.
func sanMag(v float32) float32 {
	if v != v {
		return -1
	}
	return float32(math.Abs(float64(v)))
}

// EncodeTopK writes the k largest-magnitude elements of g into dst,
// which must have exactly TopKWords(k) elements; ties on magnitude break
// toward lower indices, so every rank of a replicated run selects the
// identical set. mags is selection scratch of at least len(g) elements
// (nil allocates). k must be in [0, len(g)].
func EncodeTopK(dst, g []float32, k int, mags []float32) {
	if k < 0 || k > len(g) {
		panic(fmt.Sprintf("collective: EncodeTopK k=%d out of range [0,%d]", k, len(g)))
	}
	if len(dst) != TopKWords(k) {
		panic(fmt.Sprintf("collective: EncodeTopK dst has %d words, want %d", len(dst), TopKWords(k)))
	}
	if k == 0 {
		dst[0] = 0
		return
	}
	if mags == nil {
		mags = make([]float32, len(g))
	}
	mags = mags[:len(g)]
	for i, v := range g {
		mags[i] = sanMag(v)
	}
	var thresh float32 = -1
	if k > 0 && k < len(g) {
		thresh = quickselectDesc(mags, k-1)
	} else if k == len(g) {
		// Keep everything: any threshold below the sanitized floor works.
		thresh = -2
	}
	// Collect in ascending index order: first strictly above the
	// threshold, then at the threshold until k are chosen. NaNs (mapped
	// to −1) are only reachable when the threshold itself is −1.
	s := 0
	for i, v := range g {
		if sanMag(v) > thresh {
			dst[1+s] = math.Float32frombits(uint32(i))
			s++
		}
	}
	above := s
	for i, v := range g {
		if s == k {
			break
		}
		if sanMag(v) == thresh {
			dst[1+s] = math.Float32frombits(uint32(i))
			s++
		}
	}
	// The threshold pass appends after the strict pass, so the index
	// words are ascending within each pass but not across them; merge by
	// insertion (both runs are already sorted, k is small relative to n).
	sortIdxWords(dst[1:1+s], above)
	dst[0] = math.Float32frombits(uint32(s))
	for j := 0; j < s; j++ {
		dst[1+s+j] = g[math.Float32bits(dst[1+j])]
	}
	for j := 1 + 2*s; j < len(dst); j++ {
		dst[j] = 0
	}
}

// sortIdxWords merges the two sorted runs [0,split) and [split,len) of
// bit-cast uint32 index words in place.
func sortIdxWords(w []float32, split int) {
	for i := split; i < len(w); i++ {
		v := math.Float32bits(w[i])
		j := i
		for j > 0 && math.Float32bits(w[j-1]) > v {
			w[j] = w[j-1]
			j--
		}
		w[j] = math.Float32frombits(v)
	}
}

// quickselectDesc partially orders mags (descending) so that index nth
// holds the value a full descending sort would place there, and returns
// it. Hoare-style partitioning with median-of-three pivots; mags must be
// NaN-free (see sanMag).
func quickselectDesc(mags []float32, nth int) float32 {
	lo, hi := 0, len(mags)-1
	for lo < hi {
		// Median-of-three pivot, deterministic.
		mid := lo + (hi-lo)/2
		if mags[mid] > mags[lo] {
			mags[mid], mags[lo] = mags[lo], mags[mid]
		}
		if mags[hi] > mags[lo] {
			mags[hi], mags[lo] = mags[lo], mags[hi]
		}
		if mags[hi] > mags[mid] {
			mags[hi], mags[mid] = mags[mid], mags[hi]
		}
		pivot := mags[mid]
		i, j := lo, hi
		for i <= j {
			for mags[i] > pivot {
				i++
			}
			for mags[j] < pivot {
				j--
			}
			if i <= j {
				mags[i], mags[j] = mags[j], mags[i]
				i++
				j--
			}
		}
		if nth <= j {
			hi = j
		} else if nth >= i {
			lo = i
		} else {
			break
		}
	}
	return mags[nth]
}

// DecodeTopKAdd validates payload and accumulates its sparse elements
// into out (out[idx] += val for each pair). It returns the number of
// elements decoded. Malformed input — truncated payloads, counts that
// exceed the payload or out, out-of-range or non-ascending indices —
// returns an error and leaves out untouched; decoders never panic on
// wire data.
func DecodeTopKAdd(out, payload []float32) (int, error) {
	if len(payload) == 0 {
		return 0, fmt.Errorf("collective: empty top-k payload")
	}
	s := math.Float32bits(payload[0])
	if uint64(s) > uint64((len(payload)-1)/2) {
		return 0, fmt.Errorf("collective: top-k count %d exceeds payload of %d words", s, len(payload))
	}
	if uint64(s) > uint64(len(out)) {
		return 0, fmt.Errorf("collective: top-k count %d exceeds output length %d", s, len(out))
	}
	n := int(s)
	prev := -1
	for j := 0; j < n; j++ {
		idx := math.Float32bits(payload[1+j])
		if uint64(idx) >= uint64(len(out)) {
			return 0, fmt.Errorf("collective: top-k index %d out of range [0,%d)", idx, len(out))
		}
		if int(idx) <= prev {
			return 0, fmt.Errorf("collective: top-k indices not strictly ascending at word %d", j)
		}
		prev = int(idx)
	}
	for j := 0; j < n; j++ {
		out[math.Float32bits(payload[1+j])] += payload[1+n+j]
	}
	return n, nil
}
