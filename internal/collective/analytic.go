package collective

import "repro/internal/cluster"

// AnalyticAllreduceSeconds returns the closed-form (LogGP-style) cost of
// one uncontended allreduce of the given size on a cluster with the given
// configuration — the textbook alpha-beta model of the same algorithms
// the discrete-event simulation executes.
//
// It exists to validate the simulator: with a single collective in flight
// there is no queueing, so the DES must agree with this formula exactly
// (TestAnalyticMatchesSimulation enforces agreement to float tolerance).
// During training the DES additionally captures what the formula cannot —
// port/NIC contention between overlapping collectives, stragglers, and
// engine serialization.
func AnalyticAllreduceSeconds(cfg cluster.Config, backend Backend, bytes int64) float64 {
	p := cfg.Nodes * cfg.GPUsPerNode
	if p <= 1 {
		return 0
	}
	if backend == BackendNCCL {
		return analyticFlatRing(cfg, bytes)
	}
	return analyticHierarchical(cfg, backend, bytes)
}

// intraParams resolves the effective intra-node path for a backend and
// message size, mirroring Group.intraPath.
func intraParams(cfg cluster.Config, backend Backend, bytes int64) (bw, lat float64) {
	ipc := false
	switch backend {
	case BackendNCCL:
		ipc = true
	case BackendMPIOpt:
		ipc = bytes >= cfg.IPCMessageThreshold
	}
	if ipc {
		return cfg.NVLinkBandwidth, cfg.NVLinkLatency
	}
	return cfg.HostStagedBandwidth, cfg.HostStagedLatency
}

func analyticHierarchical(cfg cluster.Config, backend Backend, bytes int64) float64 {
	g := cfg.GPUsPerNode
	n := cfg.Nodes
	bw, lat := intraParams(cfg, backend, bytes)

	// Phase 1: the slowest rank is a non-leader moving (g−1)/g + 1/g of
	// the buffer.
	var t float64
	if g > 1 {
		vol := float64(bytes*int64(g-1)/int64(g) + bytes/int64(g))
		t += float64(g-1)*lat + vol/bw
	}
	// Phase 2: leader ring across nodes, including registration when the
	// cache is absent (steady state: cached backends have warmed up).
	if n > 1 {
		interBW := cfg.IBBandwidth
		if backend == BackendMPI || backend == BackendMPIReg {
			interBW = cfg.IBStagedBandwidth
		}
		vol := float64(2 * bytes * int64(n-1) / int64(n))
		t += float64(2*(n-1))*cfg.IBLatency + vol/interBW
		if !backend.UsesRegCache() {
			t += cfg.RegistrationBaseSec + float64(2*bytes*int64(n-1)/int64(n))*cfg.RegistrationSecPerByte
		}
	}
	// Phase 3: intra-node broadcast to non-leaders.
	if g > 1 {
		t += lat + float64(bytes)/bw
	}
	return t
}

func analyticFlatRing(cfg cluster.Config, bytes int64) float64 {
	p := cfg.Nodes * cfg.GPUsPerNode
	vol := float64(2 * bytes * int64(p-1) / int64(p))
	// The slowest ring edge bounds the pipeline: inter-node if any node
	// boundary is crossed, NVLink otherwise.
	bw := cfg.NVLinkBandwidth
	if cfg.Nodes > 1 {
		bw = cfg.IBBandwidth
	}
	// Pipeline latency uses the Group default chunk latency.
	const chunkLat = 40e-6
	return 2*float64(p-1)*chunkLat + vol/bw
}

// AnalyticEfficiency predicts weak-scaling efficiency from the analytic
// model assuming zero compute/communication overlap — an upper bound on
// communication cost and hence a lower bound on efficiency. The simulated
// efficiency must land between this bound and 1.
func AnalyticEfficiency(cfg cluster.Config, backend Backend, stepComputeSec float64, messageBytes []int64) float64 {
	var comm float64
	for _, m := range messageBytes {
		comm += AnalyticAllreduceSeconds(cfg, backend, m)
	}
	if stepComputeSec <= 0 {
		return 0
	}
	return stepComputeSec / (stepComputeSec + comm)
}
