package collective

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/simnet"
)

// BenchmarkSimulatedAllreduce measures wall-clock cost of simulating one
// allreduce at several scales — the inner loop of the scaling study.
func BenchmarkSimulatedAllreduce(b *testing.B) {
	for _, nodes := range []int{1, 32, 128} {
		for _, backend := range []Backend{BackendMPIOpt, BackendNCCL} {
			b.Run(fmt.Sprintf("%v/%dGPUs", backend, nodes*4), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					sim := simnet.New()
					cl := cluster.New(sim, cluster.DefaultConfig(nodes))
					g := NewGroup(cl, backend, nil)
					for r := 0; r < cl.NumGPUs(); r++ {
						r := r
						sim.Spawn("rank", func(p *simnet.Proc) {
							g.Allreduce(p, r, 48<<20, 1)
						})
					}
					sim.RunAll()
				}
			})
		}
	}
}

// BenchmarkSimulatedNegotiation measures the Horovod coordinator round.
func BenchmarkSimulatedNegotiation(b *testing.B) {
	const nodes = 32
	for i := 0; i < b.N; i++ {
		sim := simnet.New()
		cl := cluster.New(sim, cluster.DefaultConfig(nodes))
		g := NewGroup(cl, BackendMPIOpt, nil)
		mask := make([]bool, 134)
		for r := 0; r < cl.NumGPUs(); r++ {
			r := r
			sim.Spawn("rank", func(p *simnet.Proc) {
				g.Negotiate(p, r, mask)
			})
		}
		sim.RunAll()
	}
}
