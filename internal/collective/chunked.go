package collective

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/simnet"
)

// ChunkedRingAllreduce simulates the NCCL flat ring at chunk granularity:
// the buffer is split into numChunks pipeline chunks and every rank
// executes the 2(p−1) ring steps as individual chunk transfers on its
// outgoing link, synchronizing with its neighbor at every step exactly as
// the real protocol does. It is the fine-grained counterpart of the
// macro-model flatRing used by the scaling study — O(p·numChunks) events
// per call instead of O(p) — and exists to validate the macro model:
// TestChunkedMatchesMacroRing checks that both agree on total time within
// the pipeline fill/drain correction.
//
// The call blocks until the ring completes on this rank. Every rank must
// call it with identical arguments.
func (g *Group) ChunkedRingAllreduce(p *simnet.Proc, rank int, bytes int64, numChunks int) {
	if numChunks < 1 {
		panic("collective: need at least one chunk")
	}
	pr := g.NumRanks()
	inst := g.join(p, rank)
	if pr > 1 {
		g.chunkedRing(p, inst, rank, bytes, numChunks)
	}
	inst.barrier(p)
	if rank == 0 && g.Prof != nil {
		g.Prof.Record("allreduce", bytes, p.Now()-inst.start)
	}
	g.release(inst)
}

// ringStepChans lazily builds per-neighbor rendezvous channels for one
// chunked collective instance.
type ringState struct {
	chans []*simnet.Chan // chans[r]: rank r sends to rank (r+1)%p
}

func (g *Group) chunkedRing(p *simnet.Proc, inst *instance, rank int, bytes int64, numChunks int) {
	pr := g.NumRanks()
	cl := g.Cl
	if inst.ring == nil {
		inst.ring = &ringState{chans: make([]*simnet.Chan, pr)}
		for r := 0; r < pr; r++ {
			inst.ring.chans[r] = p.Sim().NewChan(fmt.Sprintf("ring.%d", r))
		}
	}
	ring := inst.ring
	gpu := cl.GPU(rank)
	next := cl.GPU((rank + 1) % pr)
	prev := (rank - 1 + pr) % pr

	// Per-step transfer volume: the ring moves bytes/p per logical chunk
	// position, split into numChunks pipeline chunks.
	perStep := bytes / int64(pr)
	perChunk := perStep / int64(numChunks)
	if perChunk < 1 {
		perChunk = 1
	}

	sendOne := func() {
		if next.Node == gpu.Node {
			dur := g.NCCLChunkLatency + float64(perChunk)/cl.Cfg.NVLinkBandwidth
			gpu.Port().Use(p, dur)
		} else {
			cl.InterRingEdge(p, gpu.Node, perChunk, g.NCCLChunkLatency, cluster.PathGDR, uint64(rank))
		}
	}

	// 2(p−1) ring steps, each pipelined over numChunks chunks. At every
	// (step, chunk) the rank transfers its chunk to the next rank and
	// waits for the matching chunk from the previous rank — the
	// dependency structure that creates pipeline fill/drain.
	steps := 2 * (pr - 1)
	for s := 0; s < steps; s++ {
		for c := 0; c < numChunks; c++ {
			sendOne()
			// Rendezvous with both neighbors. Parity ordering avoids the
			// all-send deadlock on rendezvous channels (even ranks send
			// first; odd ranks receive first) — the classic trick for
			// synchronous ring exchanges. The last rank of an odd-sized
			// ring pairs even-even, so it receives first too.
			if rank%2 == 0 && !(pr%2 == 1 && rank == pr-1) {
				ring.chans[rank].Send(p, struct{}{})
				ring.chans[prev].Recv(p)
			} else {
				ring.chans[prev].Recv(p)
				ring.chans[rank].Send(p, struct{}{})
			}
		}
	}
}
