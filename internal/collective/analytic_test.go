package collective

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/simnet"
)

// simulateOne runs a single uncontended allreduce through the DES and
// returns its duration.
func simulateOne(nodes int, backend Backend, bytes int64) float64 {
	sim := simnet.New()
	cl := cluster.New(sim, cluster.DefaultConfig(nodes))
	g := NewGroup(cl, backend, nil)
	if backend.UsesRegCache() {
		// Warm the cache so the analytic steady-state assumption holds.
		for r := 0; r < cl.NumGPUs(); r++ {
			r := r
			sim.Spawn("warm", func(p *simnet.Proc) {
				g.Allreduce(p, r, bytes, 7)
			})
		}
		sim.RunAll()
	}
	var start, end simnet.Time
	start = sim.Now()
	for r := 0; r < cl.NumGPUs(); r++ {
		r := r
		sim.Spawn("rank", func(p *simnet.Proc) {
			g.Allreduce(p, r, bytes, 7)
			end = p.Now()
		})
	}
	sim.RunAll()
	return end - start
}

// TestAnalyticMatchesSimulation cross-validates the discrete-event
// machine against the closed-form cost model: with one collective in
// flight there is no contention, so they must agree to float tolerance.
func TestAnalyticMatchesSimulation(t *testing.T) {
	cfgAt := func(nodes int) cluster.Config { return cluster.DefaultConfig(nodes) }
	for _, nodes := range []int{1, 2, 8, 32} {
		for _, backend := range []Backend{BackendMPI, BackendMPIReg, BackendMPIOpt, BackendNCCL} {
			for _, bytes := range []int64{1 << 20, 24 << 20, 60 << 20} {
				name := fmt.Sprintf("%v/%dnodes/%dMB", backend, nodes, bytes>>20)
				got := simulateOne(nodes, backend, bytes)
				want := AnalyticAllreduceSeconds(cfgAt(nodes), backend, bytes)
				if math.Abs(got-want) > 1e-9+0.01*want {
					t.Errorf("%s: DES %.6fs vs analytic %.6fs", name, got, want)
				}
			}
		}
	}
}

func TestAnalyticSinglePRankFree(t *testing.T) {
	cfg := cluster.DefaultConfig(1)
	cfg.GPUsPerNode = 1
	if AnalyticAllreduceSeconds(cfg, BackendMPI, 64<<20) != 0 {
		t.Fatal("single rank should be free")
	}
}

func TestAnalyticOrderings(t *testing.T) {
	cfg := cluster.DefaultConfig(32)
	big := int64(48 << 20)
	def := AnalyticAllreduceSeconds(cfg, BackendMPI, big)
	reg := AnalyticAllreduceSeconds(cfg, BackendMPIReg, big)
	opt := AnalyticAllreduceSeconds(cfg, BackendMPIOpt, big)
	if !(def > reg && reg > opt) {
		t.Fatalf("ordering violated: def %g reg %g opt %g", def, reg, opt)
	}
	// Small messages: default and optimized share the staging path
	// intra-node, but inter-node still differs (GDR vs staged).
	small := int64(1 << 20)
	one := cluster.DefaultConfig(1)
	if AnalyticAllreduceSeconds(one, BackendMPI, small) != AnalyticAllreduceSeconds(one, BackendMPIOpt, small) {
		t.Fatal("small intra-node messages should cost the same in both modes")
	}
}

func TestAnalyticEfficiencyBound(t *testing.T) {
	cfg := cluster.DefaultConfig(128)
	msgs := []int64{10 << 20, 29 << 20, 61 << 20, 61 << 20}
	eff := AnalyticEfficiency(cfg, BackendMPI, 0.3885, msgs)
	if eff <= 0 || eff >= 1 {
		t.Fatalf("bound %g out of range", eff)
	}
	optEff := AnalyticEfficiency(cfg, BackendMPIOpt, 0.3885, msgs)
	if optEff <= eff {
		t.Fatal("optimized bound should exceed default bound")
	}
	if AnalyticEfficiency(cfg, BackendMPI, 0, msgs) != 0 {
		t.Fatal("zero compute should give 0")
	}
}
