//go:build !amd64

package tensor

// Portable micro-tile: 2×4 so the 8 accumulators plus 6 operand values
// fit a 16-register file without spilling (a 4×4 tile spills half its
// accumulators every iteration in compiled scalar code).
const (
	gemmMR = 2 // micro-tile rows: register-tiled rows of A
	gemmNR = 4 // micro-tile columns
)

// gemmMicro accumulates a 2×4 tile over kc packed steps. ap holds 2 A
// values per step (one per tile row), bp holds 4 B values per step (one
// per tile column); both advance in lockstep, so the inner loop is two
// contiguous streams feeding 8 independent multiply-add chains. The depth
// loop is unrolled ×4 to amortize the advance and bounds checks.
func gemmMicro(ap, bp []float32, kc int, acc *[gemmMR * gemmNR]float32) {
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	ap = ap[: kc*gemmMR : kc*gemmMR]
	bp = bp[: kc*gemmNR : kc*gemmNR]
	for len(ap) >= 4*gemmMR && len(bp) >= 4*gemmNR {
		a0, a1 := ap[0], ap[1]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a0, a1 = ap[2], ap[3]
		b0, b1, b2, b3 = bp[4], bp[5], bp[6], bp[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a0, a1 = ap[4], ap[5]
		b0, b1, b2, b3 = bp[8], bp[9], bp[10], bp[11]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		a0, a1 = ap[6], ap[7]
		b0, b1, b2, b3 = bp[12], bp[13], bp[14], bp[15]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		ap = ap[4*gemmMR:]
		bp = bp[4*gemmNR:]
	}
	for len(ap) >= gemmMR && len(bp) >= gemmNR {
		a0, a1 := ap[0], ap[1]
		b0, b1, b2, b3 := bp[0], bp[1], bp[2], bp[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		ap = ap[gemmMR:]
		bp = bp[gemmNR:]
	}
	acc[0], acc[1], acc[2], acc[3] = c00, c01, c02, c03
	acc[4], acc[5], acc[6], acc[7] = c10, c11, c12, c13
}
