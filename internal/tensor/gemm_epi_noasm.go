//go:build !amd64

package tensor

// storeTileEpi16 has no assembly on this architecture; gemmStoreTileEpi
// runs its portable loop instead.
func storeTileEpi16(dst []float32, n int, acc *[gemmMR * gemmNR]float32, bias []float32, mr int, first, clamp bool) bool {
	return false
}
