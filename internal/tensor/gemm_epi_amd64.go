//go:build amd64

package tensor

// storeTileEpi16 stores a full-width (nr = 16) epilogue tile with the
// AVX routine; the caller falls back to the portable loop when it
// returns false. dst must point at the tile's first element, bias at the
// tile's first row's bias.
func storeTileEpi16(dst []float32, n int, acc *[gemmMR * gemmNR]float32, bias []float32, mr int, first, clamp bool) bool {
	if !gemmHasFMA {
		return false
	}
	flags := 0
	if first {
		flags |= 1
	}
	if clamp {
		flags |= 2
	}
	gemmStoreTileEpiAsm(&dst[0], 4*n, &acc[0], &bias[0], mr, flags)
	return true
}

//go:noescape
func gemmStoreTileEpiAsm(dst *float32, strideB int, acc *float32, bias *float32, mr, flags int)
