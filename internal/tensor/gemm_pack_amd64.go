//go:build amd64

package tensor

// packRows16 copies kc unconditional stride-1 B-panel rows (gemmNR=16
// float32 each) from the padded input plane, advancing the source with
// the incremental tap deltas (see packBIm2col). Returns false when the
// AVX path is unavailable so the caller runs its portable loop.
func packRows16(dst, src []float32, kc, kw, kh, kx0, ky0, dRow, dPlane int) bool {
	if !gemmHasFMA {
		return false
	}
	packRows16Asm(&dst[0], &src[0], kc, kw, kh, kx0, ky0, dRow, dPlane)
	return true
}

//go:noescape
func packRows16Asm(dst, src *float32, kc, kw, kh, kx0, ky0, dRow, dPlane int)
