package tensor

import "testing"

// convRef runs the training-path lowering (Im2ColBuf + GemmBias) and an
// optional unfused ReLU pass — the reference the fused path must match
// bit for bit.
func convRef(dst, w, src []float32, outC, c, h, wd, kh, kw, stride, pad int, bias []float32, relu bool) {
	outH := (h+2*pad-kh)/stride + 1
	outW := (wd+2*pad-kw)/stride + 1
	k, n := c*kh*kw, outH*outW
	col := make([]float32, k*n)
	Im2ColBuf(col, src, c, h, wd, kh, kw, stride, pad)
	ws := NewWorkspace()
	if bias != nil {
		ws.GemmBias(dst, w, col, bias, outC, k, n)
	} else {
		ws.Gemm(dst, w, col, outC, k, n)
	}
	if relu {
		for i, v := range dst {
			if !(v > 0) {
				dst[i] = 0
			}
		}
	}
}

// TestConvGemmPackedBitExact proves the fused conv+bias+ReLU kernel with
// prepacked weights is bitwise identical to the unfused training path
// across shapes that exercise single- and multi-depth-block reductions,
// panel edges, stride, and padding.
func TestConvGemmPackedBitExact(t *testing.T) {
	cases := []struct {
		name                        string
		outC, c, h, w, kh, kw, s, p int
		relu, bias                  bool
	}{
		{"edsr-body", 16, 16, 32, 32, 3, 3, 1, 1, true, true},
		{"edsr-head", 16, 3, 32, 32, 3, 3, 1, 1, false, true},
		{"tail-64ch", 64, 16, 16, 16, 3, 3, 1, 1, false, true},
		{"srcnn-c3-multiblock", 3, 32, 20, 20, 5, 5, 1, 2, false, true}, // k=800 > KC
		{"stride2", 8, 4, 17, 13, 3, 3, 2, 1, true, true},
		{"1x1", 12, 7, 9, 11, 1, 1, 1, 0, true, false},
		{"odd-edges", 5, 3, 15, 31, 3, 3, 1, 1, true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := NewRNG(31)
			k := tc.c * tc.kh * tc.kw
			w := New(tc.outC, k)
			w.FillUniform(rng, -0.5, 0.5)
			src := New(tc.c, tc.h, tc.w)
			src.FillUniform(rng, -1, 1)
			var bias []float32
			if tc.bias {
				bt := New(tc.outC)
				bt.FillUniform(rng, -0.2, 0.2)
				bias = bt.Data()
			}
			outH := (tc.h+2*tc.p-tc.kh)/tc.s + 1
			outW := (tc.w+2*tc.p-tc.kw)/tc.s + 1
			n := outH * outW

			want := make([]float32, tc.outC*n)
			convRef(want, w.Data(), src.Data(), tc.outC, tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.s, tc.p, bias, tc.relu)

			pa := PackA(w.Data(), tc.outC, k)
			got := make([]float32, tc.outC*n)
			ws := NewWorkspace()
			ws.ConvGemmPacked(got, pa, src.Data(), tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.s, tc.p, bias, tc.relu)

			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("output[%d] = %v, want %v (not bit-exact)", i, got[i], want[i])
				}
			}
		})
	}
}

// TestGemmPackedBias checks the plain prepacked-A entry point against the
// repacking GemmBias across edge shapes.
func TestGemmPackedBias(t *testing.T) {
	shapes := [][2]int{{16, 144}, {3, 800}, {7, 5}, {65, 300}, {1, 1}}
	rng := NewRNG(5)
	for _, sh := range shapes {
		m, k := sh[0], sh[1]
		n := 100
		a := New(m, k)
		a.FillUniform(rng, -1, 1)
		b := New(k, n)
		b.FillUniform(rng, -1, 1)
		bias := New(m)
		bias.FillUniform(rng, -1, 1)

		want := make([]float32, m*n)
		ws := NewWorkspace()
		ws.GemmBias(want, a.Data(), b.Data(), bias.Data(), m, k, n)
		for i, v := range want {
			if !(v > 0) {
				want[i] = 0
			}
		}

		pa := PackA(a.Data(), m, k)
		got := make([]float32, m*n)
		ws2 := NewWorkspace()
		ws2.GemmPackedBias(got, pa, b.Data(), n, bias.Data(), true)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("m=%d k=%d: output[%d] = %v, want %v", m, k, i, got[i], want[i])
			}
		}
	}
}

// TestConvGemmPackedReuse confirms a Workspace driving the fused path
// repeatedly (mixed shapes) reuses buffers without corrupting results.
func TestConvGemmPackedReuse(t *testing.T) {
	rng := NewRNG(77)
	ws := NewWorkspace()
	for trial := 0; trial < 3; trial++ {
		for _, dim := range []int{8, 32, 19} {
			c, outC := 4, 6
			k := c * 9
			w := New(outC, k)
			w.FillUniform(rng, -1, 1)
			src := New(c, dim, dim)
			src.FillUniform(rng, -1, 1)
			pa := PackA(w.Data(), outC, k)
			n := dim * dim
			got := make([]float32, outC*n)
			ws.ConvGemmPacked(got, pa, src.Data(), c, dim, dim, 3, 3, 1, 1, nil, false)
			want := make([]float32, outC*n)
			convRef(want, w.Data(), src.Data(), outC, c, dim, dim, 3, 3, 1, 1, nil, false)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d dim %d: output[%d] = %v, want %v", trial, dim, i, got[i], want[i])
				}
			}
		}
	}
}
