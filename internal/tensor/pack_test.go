package tensor

import (
	"math"
	"testing"
)

// TestPackHalfRoundTrip pins the wire-format contract of the fp16
// compressed-allreduce path: unpacking a packed buffer yields exactly the
// values QuantizeHalf produces, for even and odd lengths.
func TestPackHalfRoundTrip(t *testing.T) {
	rng := NewRNG(7)
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1001} {
		src := make([]float32, n)
		for i := range src {
			src[i] = (rng.Float32() - 0.5) * 100
		}
		want := append([]float32(nil), src...)
		QuantizeHalf(want)

		wire := make([]float32, HalfWords(n))
		PackHalf(wire, src)
		got := make([]float32, n)
		UnpackHalf(got, wire)
		for i := range got {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("n=%d elem %d: unpack %v (%#x), QuantizeHalf %v (%#x)",
					n, i, got[i], math.Float32bits(got[i]), want[i], math.Float32bits(want[i]))
			}
		}
	}
}

// TestPackHalfErrorBound pins the worst-case quantization error of the
// fp16 wire format: round-to-nearest-even loses at most half a ULP, i.e.
// a relative error of 2^-11 for values in the binary16 normal range
// [2^-14, 65504].
func TestPackHalfErrorBound(t *testing.T) {
	rng := NewRNG(42)
	const maxRel = 1.0 / 2048 // 2^-11: half a ULP of a 10-bit significand
	src := make([]float32, 4096)
	for i := range src {
		// Log-uniform magnitudes across the normal range, both signs.
		e := -14 + 25*rng.Float32()
		src[i] = float32(math.Pow(2, float64(e)))
		if i%2 == 0 {
			src[i] = -src[i]
		}
	}
	wire := make([]float32, HalfWords(len(src)))
	PackHalf(wire, src)
	got := make([]float32, len(src))
	UnpackHalf(got, wire)
	for i, v := range src {
		rel := math.Abs(float64(got[i])-float64(v)) / math.Abs(float64(v))
		if rel > maxRel {
			t.Fatalf("elem %d: %v -> %v, relative error %.3e exceeds 2^-11", i, v, got[i], rel)
		}
	}
}

// TestPackHalfOddTail: the half-filled tail word must not leak garbage —
// the high half is zero, so a conservative decoder reading it sees +0.
func TestPackHalfOddTail(t *testing.T) {
	src := []float32{1, 2, 3}
	wire := make([]float32, HalfWords(3))
	PackHalf(wire, src)
	if hi := uint16(math.Float32bits(wire[1]) >> 16); hi != 0 {
		t.Fatalf("tail word high half = %#x, want 0", hi)
	}
}

// TestPackHalfLengthValidation pins the panic contract on mis-sized
// buffers (a wire-format bug would otherwise corrupt silently).
func TestPackHalfLengthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short dst")
		}
	}()
	PackHalf(make([]float32, 1), make([]float32, 4))
}
