package tensor

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xorshift64*). Training code keeps one RNG per rank so that
// data-parallel runs are reproducible regardless of goroutine scheduling.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (zero is remapped).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// State returns the generator's internal state for checkpointing.
func (r *RNG) State() uint64 { return r.state }

// SetState restores a state captured with State, resuming the exact
// stream (zero is remapped as in NewRNG).
func (r *RNG) SetState(s uint64) {
	if s == 0 {
		s = 0x9e3779b97f4a7c15
	}
	r.state = s
}

// Uint64 returns the next raw 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / float32(1<<24)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat32 returns a standard-normal sample (Box–Muller).
func (r *RNG) NormFloat32() float32 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return float32(math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2))
}

// FillUniform fills t with uniform samples in [lo, hi).
func (t *Tensor) FillUniform(r *RNG, lo, hi float32) {
	span := hi - lo
	for i := range t.data {
		t.data[i] = lo + span*r.Float32()
	}
}

// FillNormal fills t with normal samples of the given mean and stddev.
func (t *Tensor) FillNormal(r *RNG, mean, std float32) {
	for i := range t.data {
		t.data[i] = mean + std*r.NormFloat32()
	}
}

// KaimingInit fills t with He-normal initialization for a layer with the
// given fan-in, the standard initialization for ReLU networks such as EDSR.
func (t *Tensor) KaimingInit(r *RNG, fanIn int) {
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	t.FillNormal(r, 0, std)
}
