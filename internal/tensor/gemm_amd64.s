#include "textflag.h"

// func gemmMicroFMA(ap, bp *float32, kc int, acc *[96]float32)
//
// 6×16 FMA micro-kernel over packed panels. Per step p it reads 6 A
// values (one per tile row, layout ap[p*6+r]) and 16 B values (layout
// bp[p*16+c], two YMM vectors), and accumulates the outer product into
// 12 YMM accumulators:
//
//	Y0,Y1  = row 0 cols 0-7, 8-15      Y6,Y7   = row 3
//	Y2,Y3  = row 1                     Y8,Y9   = row 4
//	Y4,Y5  = row 2                     Y10,Y11 = row 5
//
// Y12/Y13 hold the current B vectors, Y14/Y15 rotate A broadcasts.
TEXT ·gemmMicroFMA(SB), NOSPLIT, $0-32
	MOVQ ap+0(FP), SI
	MOVQ bp+8(FP), DX
	MOVQ kc+16(FP), CX
	MOVQ acc+24(FP), DI

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11

loop:
	VMOVUPS (DX), Y12
	VMOVUPS 32(DX), Y13

	VBROADCASTSS (SI), Y14
	VBROADCASTSS 4(SI), Y15
	VFMADD231PS Y12, Y14, Y0
	VFMADD231PS Y13, Y14, Y1
	VFMADD231PS Y12, Y15, Y2
	VFMADD231PS Y13, Y15, Y3

	VBROADCASTSS 8(SI), Y14
	VBROADCASTSS 12(SI), Y15
	VFMADD231PS Y12, Y14, Y4
	VFMADD231PS Y13, Y14, Y5
	VFMADD231PS Y12, Y15, Y6
	VFMADD231PS Y13, Y15, Y7

	VBROADCASTSS 16(SI), Y14
	VBROADCASTSS 20(SI), Y15
	VFMADD231PS Y12, Y14, Y8
	VFMADD231PS Y13, Y14, Y9
	VFMADD231PS Y12, Y15, Y10
	VFMADD231PS Y13, Y15, Y11

	ADDQ $24, SI
	ADDQ $64, DX
	DECQ CX
	JNZ  loop

	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, 64(DI)
	VMOVUPS Y3, 96(DI)
	VMOVUPS Y4, 128(DI)
	VMOVUPS Y5, 160(DI)
	VMOVUPS Y6, 192(DI)
	VMOVUPS Y7, 224(DI)
	VMOVUPS Y8, 256(DI)
	VMOVUPS Y9, 288(DI)
	VMOVUPS Y10, 320(DI)
	VMOVUPS Y11, 352(DI)
	VZEROUPPER
	RET

// func cpuidAsm(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidAsm(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbvAsm() (eax, edx uint32)
TEXT ·xgetbvAsm(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
