//go:build !amd64

package tensor

// packRows16 has no assembly on this architecture; packBIm2col runs its
// portable row-copy loop instead.
func packRows16(dst, src []float32, kc, kw, kh, kx0, ky0, dRow, dPlane int) bool {
	return false
}
