package tensor

// The vector kernels reuse the GEMM micro-kernel's CPU detection: the asm
// bodies only need AVX (VADDPS/VMINPS on YMM), which detectFMA's
// AVX2+FMA+OS-YMM check implies.

func vecAdd(dst, src []float32) {
	if n8 := len(dst) &^ 7; gemmHasFMA && n8 > 0 {
		vecAddAVX(&dst[0], &src[0], n8)
		dst, src = dst[n8:], src[n8:]
	}
	vecAddGeneric(dst, src)
}

func vecMin(dst, src []float32) {
	if n8 := len(dst) &^ 7; gemmHasFMA && n8 > 0 {
		vecMinAVX(&dst[0], &src[0], n8)
		dst, src = dst[n8:], src[n8:]
	}
	vecMinGeneric(dst, src)
}

// vecAddAVX computes dst[i] += src[i] for i < n (vec_amd64.s).
//
//go:noescape
func vecAddAVX(dst, src *float32, n int)

// vecMinAVX computes dst[i] = min(dst[i], src[i]) for i < n, with the
// scalar tie/NaN convention "src replaces dst only when src < dst"
// (vec_amd64.s).
//
//go:noescape
func vecMinAVX(dst, src *float32, n int)
