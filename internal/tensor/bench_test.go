package tensor

import (
	"fmt"
	"testing"
)

func BenchmarkMatMul(b *testing.B) {
	for _, n := range []int{32, 128, 256} {
		b.Run(fmt.Sprintf("%dx%d", n, n), func(b *testing.B) {
			r := NewRNG(1)
			x, y, dst := New(n, n), New(n, n), New(n, n)
			x.FillUniform(r, -1, 1)
			y.FillUniform(r, -1, 1)
			b.SetBytes(int64(n) * int64(n) * int64(n) * 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMul(dst, x, y)
			}
		})
	}
}

func BenchmarkMatMulTransB(b *testing.B) {
	r := NewRNG(2)
	const m, n, k = 128, 256, 64
	a, bt, dst := New(m, n), New(k, n), New(m, k)
	a.FillUniform(r, -1, 1)
	bt.FillUniform(r, -1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransB(dst, a, bt)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	r := NewRNG(3)
	src := New(16, 48, 48)
	src.FillUniform(r, 0, 1)
	dst := New(16*9, 48*48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(dst, src, 3, 3, 1, 1)
	}
}

func BenchmarkCol2Im(b *testing.B) {
	r := NewRNG(4)
	src := New(16*9, 48*48)
	src.FillUniform(r, 0, 1)
	dst := New(16, 48, 48)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Col2Im(dst, src, 3, 3, 1, 1)
	}
}

func BenchmarkElementwiseAdd(b *testing.B) {
	r := NewRNG(5)
	x, y := New(1<<20), New(1<<20)
	x.FillUniform(r, -1, 1)
	y.FillUniform(r, -1, 1)
	b.SetBytes(1 << 22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Add(y)
	}
}

func BenchmarkRNGNormal(b *testing.B) {
	r := NewRNG(6)
	x := New(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.FillNormal(r, 0, 1)
	}
}
