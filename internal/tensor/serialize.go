package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
)

// MarshalBinary encodes the tensor as shape rank, dims, then raw float32
// bits, all little-endian. It satisfies encoding.BinaryMarshaler, so
// tensors can be stored through encoding/gob (used for checkpoints).
func (t *Tensor) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 4+4*len(t.shape)+4*len(t.data))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.shape)))
	for _, d := range t.shape {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
	}
	for _, v := range t.data {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
	}
	return buf, nil
}

// UnmarshalBinary decodes data produced by MarshalBinary. Every size in
// the header is validated against the bytes actually present before any
// allocation happens, so a corrupted or adversarial checkpoint cannot
// trigger a huge bogus allocation (or an integer-overflowed small one).
func (t *Tensor) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("tensor: truncated header")
	}
	rank := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if rank == 0 {
		// A zero-value Tensor marshals as rank 0 with no payload; make it
		// round-trip instead of rejecting what MarshalBinary produces.
		if len(data) != 0 {
			return fmt.Errorf("tensor: rank-0 tensor with %d payload bytes", len(data))
		}
		t.shape = nil
		t.data = nil
		return nil
	}
	if rank < 0 || len(data) < 4*rank {
		return fmt.Errorf("tensor: invalid rank %d for %d remaining bytes", rank, len(data))
	}
	shape := make([]int, rank)
	// maxElems bounds the element count by the payload that actually
	// follows the dims; checking n against it before each multiply keeps
	// the product from ever overflowing (n*shape[i] <= maxElems <= len/4).
	maxElems := (len(data) - 4*rank) / 4
	n := 1
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if shape[i] <= 0 {
			return fmt.Errorf("tensor: invalid dimension %d", shape[i])
		}
		if shape[i] > maxElems/n {
			return fmt.Errorf("tensor: shape %v exceeds %d-element payload", shape[:i+1], maxElems)
		}
		n *= shape[i]
	}
	if len(data) != 4*n {
		return fmt.Errorf("tensor: payload %d bytes, want %d", len(data), 4*n)
	}
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(data))
		data = data[4:]
	}
	t.shape = shape
	t.data = vals
	return nil
}
