package tensor

import (
	"encoding/binary"
	"fmt"
	"math"
)

// MarshalBinary encodes the tensor as shape rank, dims, then raw float32
// bits, all little-endian. It satisfies encoding.BinaryMarshaler, so
// tensors can be stored through encoding/gob (used for checkpoints).
func (t *Tensor) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 4+4*len(t.shape)+4*len(t.data))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.shape)))
	for _, d := range t.shape {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(d))
	}
	for _, v := range t.data {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
	}
	return buf, nil
}

// UnmarshalBinary decodes data produced by MarshalBinary.
func (t *Tensor) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("tensor: truncated header")
	}
	rank := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if rank <= 0 || len(data) < 4*rank {
		return fmt.Errorf("tensor: invalid rank %d", rank)
	}
	shape := make([]int, rank)
	n := 1
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if shape[i] <= 0 {
			return fmt.Errorf("tensor: invalid dimension %d", shape[i])
		}
		n *= shape[i]
	}
	if len(data) != 4*n {
		return fmt.Errorf("tensor: payload %d bytes, want %d", len(data), 4*n)
	}
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = math.Float32frombits(binary.LittleEndian.Uint32(data))
		data = data[4:]
	}
	t.shape = shape
	t.data = vals
	return nil
}
