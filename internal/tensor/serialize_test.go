package tensor

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"testing"
)

// TestScalarTensorRoundTrip pins the rank-0 case: a zero-value Tensor is
// what MarshalBinary encodes as rank 0, and UnmarshalBinary must accept
// its own output instead of rejecting it as "invalid rank 0".
func TestScalarTensorRoundTrip(t *testing.T) {
	var x Tensor
	enc, err := x.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var y Tensor
	if err := y.UnmarshalBinary(enc); err != nil {
		t.Fatalf("rank-0 tensor did not round-trip: %v", err)
	}
	if y.Rank() != 0 || len(y.Data()) != 0 {
		t.Fatalf("rank-0 round trip produced rank %d, %d elements", y.Rank(), len(y.Data()))
	}

	// Through gob too, the path checkpoints take.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&x); err != nil {
		t.Fatal(err)
	}
	var z Tensor
	if err := gob.NewDecoder(&buf).Decode(&z); err != nil {
		t.Fatalf("gob round trip of zero tensor: %v", err)
	}
}

// TestUnmarshalBoundsProductBeforeAlloc feeds headers whose dim product
// overflows or vastly exceeds the payload; decoding must fail cleanly
// (no panic, no giant allocation — the latter would OOM the test).
func TestUnmarshalBoundsProductBeforeAlloc(t *testing.T) {
	le := binary.LittleEndian
	// rank 4, dims 65536^4: product overflows int64 to a small value.
	overflow := le.AppendUint32(nil, 4)
	for i := 0; i < 4; i++ {
		overflow = le.AppendUint32(overflow, 65536)
	}
	// rank 1, dim 2^31-1 with no payload: honest but absurd.
	huge := le.AppendUint32(nil, 1)
	huge = le.AppendUint32(huge, 1<<31-1)
	// rank 0 followed by trailing garbage.
	badScalar := le.AppendUint32(nil, 0)
	badScalar = append(badScalar, 1, 2, 3, 4)
	for _, data := range [][]byte{overflow, huge, badScalar} {
		var y Tensor
		if err := y.UnmarshalBinary(data); err == nil {
			t.Fatalf("expected error for header %v", data[:min(len(data), 20)])
		}
	}
}

// FuzzUnmarshalBinary checks the codec never panics on arbitrary input
// and that anything it accepts re-encodes to the exact same bytes.
func FuzzUnmarshalBinary(f *testing.F) {
	seed := func(t *Tensor) []byte {
		b, err := t.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		return b
	}
	f.Add(seed(&Tensor{}))
	f.Add(seed(FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)))
	f.Add(seed(New(1, 3, 4, 4)))
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		var x Tensor
		if err := x.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := x.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted input failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted %d bytes but re-encoded %d differing bytes", len(data), len(out))
		}
	})
}
