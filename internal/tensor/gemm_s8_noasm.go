//go:build !amd64

package tensor

// gemmMicroS8 falls back to the portable int8 micro-kernel on
// architectures without the AVX2 assembly tile.
func gemmMicroS8(ap []int8, bp []uint8, kq int, acc *[gemmMR8 * gemmNR8]int32) {
	gemmMicroS8Generic(ap, bp, kq, acc)
}

// packQuads16 has no assembly on this architecture; packBIm2colU8 runs
// its portable staging loop instead.
func packQuads16(dst, src []uint8, nq, kw, kh, dRow, dPlane int) bool {
	return false
}

// storeTileS816 has no assembly on this architecture; gemmStoreTileS8
// runs its portable loop instead.
func storeTileS816(dst []float32, n int, acc *[gemmMR8 * gemmNR8]int32, da, db []float32, mr int, relu bool) bool {
	return false
}

// quantMinMax has no assembly on this architecture.
func quantMinMax(src []float32) (lo, hi float32, ok bool) { return 0, 0, false }

// quantApply has no assembly on this architecture.
func quantApply(dst []uint8, src []float32, inv, zpf float32) bool { return false }
