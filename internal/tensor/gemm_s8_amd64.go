package tensor

// gemmMicroS8 dispatches the int8 micro-kernel: the AVX2 assembly tile
// when the CPU supports it (the same detection gate as the fp32 kernel),
// the pure-Go reference otherwise. Both compute identical results for
// u7-clamped activations — see TestGemmMicroS8AsmMatchesGeneric.
func gemmMicroS8(ap []int8, bp []uint8, kq int, acc *[gemmMR8 * gemmNR8]int32) {
	if gemmHasFMA && kq > 0 {
		gemmMicroS8Asm(&ap[0], &bp[0], kq, acc)
		return
	}
	gemmMicroS8Generic(ap, bp, kq, acc)
}

// gemmMicroS8Asm computes acc[r*16+c] = Σ_q Σ_t ap[(q*4+r)*4+t]·bp[(q*16+c)*4+t]
// over kq quads (implemented in gemm_s8_amd64.s; requires AVX2, kq ≥ 1).
//
//go:noescape
func gemmMicroS8Asm(ap *int8, bp *uint8, kq int, acc *[gemmMR8 * gemmNR8]int32)

// packQuads16 packs nq full depth quads of unconditional stride-1 panel
// rows (16 bytes each) from the padded quantized plane into the
// quad-interleaved B layout. Returns false when the SIMD path is
// unavailable so the caller runs its portable staging loop.
func packQuads16(dst, src []uint8, nq, kw, kh, dRow, dPlane int) bool {
	if !gemmHasFMA {
		return false
	}
	if nq > 0 {
		packQuads16Asm(&dst[0], &src[0], nq, kw, kh, dRow, dPlane)
	}
	return true
}

//go:noescape
func packQuads16Asm(dst, src *uint8, nq, kw, kh, dRow, dPlane int)

// storeTileS816 stores a full-width (nr = 16) dequant tile with the AVX
// routine; the caller falls back to the portable loop when it returns
// false. dst must point at the tile's first element, da/db at the tile's
// first row's coefficients.
func storeTileS816(dst []float32, n int, acc *[gemmMR8 * gemmNR8]int32, da, db []float32, mr int, relu bool) bool {
	if !gemmHasFMA {
		return false
	}
	r := 0
	if relu {
		r = 1
	}
	gemmStoreTileS8Asm(&dst[0], 4*n, &acc[0], &da[0], &db[0], mr, r)
	return true
}

//go:noescape
func gemmStoreTileS8Asm(dst *float32, strideB int, acc *int32, da, db *float32, mr, relu int)

// quantMinMax computes min(0, min(src)) / max(0, max(src)) with the AVX
// scan, finishing ragged tails in Go. ok=false means no SIMD support.
func quantMinMax(src []float32) (lo, hi float32, ok bool) {
	n8 := len(src) &^ 7
	if !gemmHasFMA || n8 == 0 {
		return 0, 0, false
	}
	lo, hi = minMaxF32Asm(&src[0], n8)
	for _, v := range src[n8:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi, true
}

// quantApply quantizes src into dst with the AVX kernel, finishing
// ragged tails in Go. false means the caller must run the scalar loop.
func quantApply(dst []uint8, src []float32, inv, zpf float32) bool {
	n32 := len(src) &^ 31
	if !gemmHasFMA || n32 == 0 {
		return false
	}
	quantizeU7Asm(&dst[0], &src[0], n32, inv, zpf)
	quantScalar(dst[n32:], src[n32:], inv, zpf)
	return true
}

//go:noescape
func minMaxF32Asm(src *float32, n8 int) (lo, hi float32)

//go:noescape
func quantizeU7Asm(dst *uint8, src *float32, n32 int, inv, zpf float32)
