package tensor

import (
	"runtime"
	"sync"
)

// maxWorkers bounds the parallelism of tensor kernels. Training code may
// run several model replicas concurrently (one per simulated rank), so
// each kernel keeps its worker count modest.
var maxWorkers = runtime.GOMAXPROCS(0)

// SetMaxWorkers overrides the kernel parallelism (n < 1 resets to
// GOMAXPROCS). It returns the previous value.
func SetMaxWorkers(n int) int {
	prev := maxWorkers
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers = n
	return prev
}

// parallelFor runs f(lo, hi) over [0, n) split across workers. It runs
// inline when n is small or only one worker is configured.
func parallelFor(n, minPerWorker int, f func(lo, hi int)) {
	workers := maxWorkers
	if workers > n/minPerWorker {
		workers = n / minPerWorker
	}
	if workers <= 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul computes dst = a(m×k) * b(k×n). dst must be m×n and distinct
// from a and b. The inner loops are written j-inner so the compiler can
// vectorize over contiguous rows of b.
func MatMul(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic("tensor: MatMul shape mismatch")
	}
	ad, bd, dd := a.data, b.data, dst.data
	parallelFor(m, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dd[i*n : (i+1)*n]
			for j := range drow {
				drow[j] = 0
			}
			arow := ad[i*k : (i+1)*k]
			for p, av := range arow {
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	})
}

// MatMulAccum computes dst += a(m×k) * b(k×n) without zeroing dst first.
func MatMulAccum(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic("tensor: MatMulAccum shape mismatch")
	}
	ad, bd, dd := a.data, b.data, dst.data
	parallelFor(m, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dd[i*n : (i+1)*n]
			arow := ad[i*k : (i+1)*k]
			for p, av := range arow {
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	})
}

// MatMulTransA computes dst = aᵀ(k×m)ᵀ… precisely: given a stored as
// (k×m), computes dst(m×n) = aᵀ * b(k×n). Used for weight-gradient
// computation in convolution backward passes.
func MatMulTransA(dst, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic("tensor: MatMulTransA shape mismatch")
	}
	ad, bd, dd := a.data, b.data, dst.data
	parallelFor(m, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dd[i*n : (i+1)*n]
			for j := range drow {
				drow[j] = 0
			}
			for p := 0; p < k; p++ {
				av := ad[p*m+i]
				if av == 0 {
					continue
				}
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	})
}

// MatMulTransBAccum computes dst(m×k) += a(m×n) * bᵀ where b is stored
// (k×n). Used for weight-gradient accumulation in convolution backward
// passes, where per-sample contributions sum into one gradient tensor.
func MatMulTransBAccum(dst, a, b *Tensor) {
	m, n := a.shape[0], a.shape[1]
	k, n2 := b.shape[0], b.shape[1]
	if n != n2 || dst.shape[0] != m || dst.shape[1] != k {
		panic("tensor: MatMulTransBAccum shape mismatch")
	}
	ad, bd, dd := a.data, b.data, dst.data
	parallelFor(m, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := ad[i*n : (i+1)*n]
			drow := dd[i*k : (i+1)*k]
			for p := 0; p < k; p++ {
				brow := bd[p*n : (p+1)*n]
				var s float32
				for j, av := range arow {
					s += av * brow[j]
				}
				drow[p] += s
			}
		}
	})
}

// MatMulTransB computes dst(m×k) = a(m×n) * bᵀ where b is stored (k×n).
// Used for input-gradient computation in convolution backward passes.
func MatMulTransB(dst, a, b *Tensor) {
	m, n := a.shape[0], a.shape[1]
	k, n2 := b.shape[0], b.shape[1]
	if n != n2 || dst.shape[0] != m || dst.shape[1] != k {
		panic("tensor: MatMulTransB shape mismatch")
	}
	ad, bd, dd := a.data, b.data, dst.data
	parallelFor(m, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := ad[i*n : (i+1)*n]
			drow := dd[i*k : (i+1)*k]
			for p := 0; p < k; p++ {
				brow := bd[p*n : (p+1)*n]
				var s float32
				for j, av := range arow {
					s += av * brow[j]
				}
				drow[p] = s
			}
		}
	})
}
