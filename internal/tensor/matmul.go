package tensor

import (
	"runtime"
	"sync"
)

// maxWorkers bounds the parallelism of tensor kernels. Training code may
// run several model replicas concurrently (one per simulated rank), so
// each kernel keeps its worker count modest.
var maxWorkers = runtime.GOMAXPROCS(0)

// SetMaxWorkers overrides the kernel parallelism (n < 1 resets to
// GOMAXPROCS). It returns the previous value.
func SetMaxWorkers(n int) int {
	prev := maxWorkers
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	maxWorkers = n
	return prev
}

// WorkerCount reports how many workers ParallelWorkers would use for n
// items at the given grain: at most maxWorkers, at most one worker per
// minPerWorker items, never less than 1 for non-empty ranges, and 0 for
// n <= 0.
func WorkerCount(n, minPerWorker int) int {
	if n <= 0 {
		return 0
	}
	if minPerWorker < 1 {
		minPerWorker = 1
	}
	w := maxWorkers
	if byGrain := n / minPerWorker; w > byGrain {
		w = byGrain
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ParallelWorkers splits [0, n) into WorkerCount(n, minPerWorker)
// contiguous ranges and runs f(worker, lo, hi) for each, concurrently when
// more than one worker is used. Worker indices are dense in [0, workers),
// so callers can pre-size per-worker scratch with WorkerCount and index it
// race-free. With a single worker f runs inline on the calling goroutine.
func ParallelWorkers(n, minPerWorker int, f func(worker, lo, hi int)) {
	workers := WorkerCount(n, minPerWorker)
	switch workers {
	case 0:
		return
	case 1:
		f(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	worker := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(worker, lo, hi int) {
			defer wg.Done()
			f(worker, lo, hi)
		}(worker, lo, hi)
		worker++
	}
	wg.Wait()
}

// parallelFor runs f(lo, hi) over [0, n) split across workers. It runs
// inline when n is small or only one worker is configured.
func parallelFor(n, minPerWorker int, f func(lo, hi int)) {
	ParallelWorkers(n, minPerWorker, func(_, lo, hi int) { f(lo, hi) })
}

// wsPool recycles Workspaces for the package-level MatMul entry points so
// transient callers get packed-panel reuse without owning a Workspace.
var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

// gemmParallel splits the m output rows across workers, each running the
// blocked engine over its strip with a pooled workspace. Row strips write
// disjoint destination rows, so accumulation variants stay race-free.
func gemmParallel(dst, a, b []float32, m, n, k int, aTrans, bTrans, accum bool, bias []float32) {
	ParallelWorkers(m, 16, func(_, lo, hi int) {
		ws := wsPool.Get().(*Workspace)
		ws.gemmRange(dst, a, b, m, n, k, lo, hi, aTrans, bTrans, accum, bias)
		wsPool.Put(ws)
	})
}

// MatMul computes dst = a(m×k) * b(k×n). dst must be m×n and distinct
// from a and b.
func MatMul(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic("tensor: MatMul shape mismatch")
	}
	gemmParallel(dst.data, a.data, b.data, m, n, k, false, false, false, nil)
}

// MatMulAccum computes dst += a(m×k) * b(k×n) without zeroing dst first.
func MatMulAccum(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic("tensor: MatMulAccum shape mismatch")
	}
	gemmParallel(dst.data, a.data, b.data, m, n, k, false, false, true, nil)
}

// MatMulTransA computes dst(m×n) = aᵀ * b(k×n) for a stored as (k×m).
// Used for weight-gradient computation in convolution backward passes.
func MatMulTransA(dst, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic("tensor: MatMulTransA shape mismatch")
	}
	gemmParallel(dst.data, a.data, b.data, m, n, k, true, false, false, nil)
}

// MatMulTransAAccum computes dst(m×n) += aᵀ * b(k×n) for a stored (k×m),
// accumulating directly into dst — fully-connected layers use it to add
// the weight gradient xᵀ·g into Param.Grad without a temporary.
func MatMulTransAAccum(dst, a, b *Tensor) {
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic("tensor: MatMulTransAAccum shape mismatch")
	}
	gemmParallel(dst.data, a.data, b.data, m, n, k, true, false, true, nil)
}

// MatMulTransBAccum computes dst(m×k) += a(m×n) * bᵀ where b is stored
// (k×n). Used for weight-gradient accumulation in convolution backward
// passes, where per-sample contributions sum into one gradient tensor.
func MatMulTransBAccum(dst, a, b *Tensor) {
	m, n := a.shape[0], a.shape[1]
	k, n2 := b.shape[0], b.shape[1]
	if n != n2 || dst.shape[0] != m || dst.shape[1] != k {
		panic("tensor: MatMulTransBAccum shape mismatch")
	}
	gemmParallel(dst.data, a.data, b.data, m, k, n, false, true, true, nil)
}

// MatMulTransB computes dst(m×k) = a(m×n) * bᵀ where b is stored (k×n).
// Used for input-gradient computation in convolution backward passes.
func MatMulTransB(dst, a, b *Tensor) {
	m, n := a.shape[0], a.shape[1]
	k, n2 := b.shape[0], b.shape[1]
	if n != n2 || dst.shape[0] != m || dst.shape[1] != k {
		panic("tensor: MatMulTransB shape mismatch")
	}
	gemmParallel(dst.data, a.data, b.data, m, k, n, false, true, false, nil)
}

// MatMulNaive is the pre-blocking j-inner kernel, kept as the reference
// implementation for correctness tests and for measuring the blocked
// engine's speedup (cmd/bench-kernels). It streams all of b from memory
// for every output row, which is exactly the behavior the packed kernels
// exist to avoid.
func MatMulNaive(dst, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 || dst.shape[0] != m || dst.shape[1] != n {
		panic("tensor: MatMulNaive shape mismatch")
	}
	ad, bd, dd := a.data, b.data, dst.data
	parallelFor(m, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			drow := dd[i*n : (i+1)*n]
			for j := range drow {
				drow[j] = 0
			}
			arow := ad[i*k : (i+1)*k]
			for p, av := range arow {
				brow := bd[p*n : (p+1)*n]
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	})
}
