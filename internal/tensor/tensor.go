// Package tensor provides dense float32 tensors with the operations needed
// to implement convolutional neural networks on the CPU: shape/stride
// bookkeeping, element-wise arithmetic, reductions, im2col, and a
// goroutine-parallel matrix multiply.
//
// The package is deliberately small and allocation-conscious: a Tensor is a
// shape plus a flat []float32 in row-major order, and most operations have
// an in-place or destination-passing variant so training loops can reuse
// buffers across iterations.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	shape []int
	data  []float32
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the shape's element count.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elements)", len(data), shape, n))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Scalar returns a 1-element tensor holding v.
func Scalar(v float32) *Tensor {
	return FromSlice([]float32{v}, 1)
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("tensor: empty shape")
	}
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: invalid dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return n
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying flat storage in row-major order.
func (t *Tensor) Data() []float32 { return t.data }

// Bytes returns the storage size in bytes (4 bytes per element).
func (t *Tensor) Bytes() int64 { return int64(len(t.data)) * 4 }

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index %v has wrong rank for shape %v", idx, t.shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies u's contents into t. Shapes must have equal element
// counts (reshaping copies are allowed).
func (t *Tensor) CopyFrom(u *Tensor) {
	if len(t.data) != len(u.data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.shape, u.shape))
	}
	copy(t.data, u.data)
}

// Reshape returns a tensor sharing t's storage with a new shape of equal
// element count.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.shape, shape))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Add accumulates u into t element-wise.
func (t *Tensor) Add(u *Tensor) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: Add shape mismatch %v vs %v", t.shape, u.shape))
	}
	for i, v := range u.data {
		t.data[i] += v
	}
}

// Sub subtracts u from t element-wise.
func (t *Tensor) Sub(u *Tensor) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: Sub shape mismatch %v vs %v", t.shape, u.shape))
	}
	for i, v := range u.data {
		t.data[i] -= v
	}
}

// Mul multiplies t by u element-wise.
func (t *Tensor) Mul(u *Tensor) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: Mul shape mismatch %v vs %v", t.shape, u.shape))
	}
	for i, v := range u.data {
		t.data[i] *= v
	}
}

// Scale multiplies every element by s.
func (t *Tensor) Scale(s float32) {
	for i := range t.data {
		t.data[i] *= s
	}
}

// AddScaled accumulates s*u into t (axpy).
func (t *Tensor) AddScaled(s float32, u *Tensor) {
	if len(t.data) != len(u.data) {
		panic(fmt.Sprintf("tensor: AddScaled size mismatch %v vs %v", t.shape, u.shape))
	}
	for i, v := range u.data {
		t.data[i] += s * v
	}
}

// Sum returns the sum of all elements in float64 for accuracy.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.data)) }

// AbsSum returns the sum of absolute values (L1 norm).
func (t *Tensor) AbsSum() float64 {
	var s float64
	for _, v := range t.data {
		s += math.Abs(float64(v))
	}
	return s
}

// SqSum returns the sum of squares (squared L2 norm).
func (t *Tensor) SqSum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return s
}

// Max returns the largest element.
func (t *Tensor) Max() float32 {
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest element.
func (t *Tensor) Min() float32 {
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// ArgMax returns the flat index of the largest element.
func (t *Tensor) ArgMax() int {
	best, bi := t.data[0], 0
	for i, v := range t.data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Clamp limits every element to [lo, hi].
func (t *Tensor) Clamp(lo, hi float32) {
	for i, v := range t.data {
		if v < lo {
			t.data[i] = lo
		} else if v > hi {
			t.data[i] = hi
		}
	}
}

// Apply replaces each element x with f(x).
func (t *Tensor) Apply(f func(float32) float32) {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 16 {
		fmt.Fprintf(&b, "%v", t.data)
	} else {
		fmt.Fprintf(&b, "[%g %g %g ... %g] (n=%d, mean=%.4g)",
			t.data[0], t.data[1], t.data[2], t.data[len(t.data)-1], len(t.data), t.Mean())
	}
	return b.String()
}
