package tensor

// amd64 micro-tile: 6×16 sized for AVX2+FMA — 12 YMM accumulators (6 rows
// × two 8-float vectors), two B loads and a broadcast per step, leaving
// headroom in the 16 vector registers. CPUs without AVX2/FMA (or an OS
// that does not save YMM state) fall back to the generic Go kernel over
// the same packed layout.
const (
	gemmMR = 6  // micro-tile rows: register-tiled rows of A
	gemmNR = 16 // micro-tile columns: two YMM vectors of B
)

var gemmHasFMA = detectFMA()

func gemmMicro(ap, bp []float32, kc int, acc *[gemmMR * gemmNR]float32) {
	if gemmHasFMA && kc > 0 {
		gemmMicroFMA(&ap[0], &bp[0], kc, acc)
		return
	}
	gemmMicroGeneric(ap, bp, kc, acc)
}

// gemmMicroFMA computes acc[r*16+c] = Σ_p ap[p*6+r]·bp[p*16+c] over kc
// packed steps (implemented in gemm_amd64.s; requires AVX2+FMA, kc ≥ 1).
//
//go:noescape
func gemmMicroFMA(ap, bp *float32, kc int, acc *[gemmMR * gemmNR]float32)

//go:noescape
func cpuidAsm(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

//go:noescape
func xgetbvAsm() (eax, edx uint32)

// detectFMA reports whether the CPU supports AVX2 and FMA3 and the OS
// saves YMM state across context switches (XCR0 bits 1 and 2).
func detectFMA() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidAsm(1, 0)
	const fma = 1 << 12
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&(fma|osxsave|avx) != fma|osxsave|avx {
		return false
	}
	if xcr0, _ := xgetbvAsm(); xcr0&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuidAsm(7, 0)
	const avx2 = 1 << 5
	return ebx7&avx2 != 0
}
