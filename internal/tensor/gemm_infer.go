package tensor

// Inference-path GEMM: prepacked weights and a convolution entry point
// that fuses im2col, bias, and ReLU into the blocked GEMM itself.
//
// The training engine in gemm.go repacks both operands on every call —
// fine when weights change each step, pure overhead when serving a frozen
// model. Profiling the EDSR forward on one core shows where that overhead
// lives: ~51% of the time is Im2ColBuf materializing the column matrix,
// ~18% is packBPanels re-reading it into panels, and another ~5% is the
// separate ReLU pass. The compiled path removes all three:
//
//   - Weights are packed into micro-kernel A panels once at model load
//     (PackedA / PackA) and streamed directly by the kernel thereafter.
//   - The im2col column matrix is never materialized: packBIm2col packs
//     B panels straight from the NCHW source plane, computing the im2col
//     indexing on the fly. For stride-1 convolutions each panel row is a
//     bounds-clipped copy of a contiguous input span, so the pack costs
//     the same as the plain copy in packBPanels — the entire column
//     matrix write+read disappears.
//   - Bias add and ReLU happen in the store epilogue while the
//     accumulator tile is still in registers.
//
// The loop order (jc outer, pc inner) and the micro-kernel are identical
// to the training path, so the fused fp32 forward is bit-exact with
// Conv2d.Forward + ReLU — see TestConvGemmPackedBitExact.

// PackedA holds an m×k A operand packed once into the micro-kernel panel
// layout, split into gemmKC depth blocks to mirror the blocked loop. It
// is immutable after PackA and safe to share across worker goroutines.
type PackedA struct {
	M, K int

	data []float32 // all depth blocks, concatenated
	off  []int     // start of depth block i in data
}

// PackA packs a (stored m×k, non-transposed) into panel layout. Each
// depth block pc holds roundUp(m,MR) rows × kc values in MR-row
// interleaved panels — exactly the layout packAPanels produces, computed
// once instead of per forward.
func PackA(a []float32, m, k int) *PackedA {
	if len(a) < m*k {
		panic("tensor: PackA operand shorter than m*k")
	}
	mp := roundUp(m, gemmMR)
	p := &PackedA{M: m, K: k}
	for pc := 0; pc < k; pc += gemmKC {
		kc := min(gemmKC, k-pc)
		p.off = append(p.off, len(p.data))
		block := make([]float32, mp*kc)
		packAPanelsInto(block, a, m, k, 0, pc, m, kc, false)
		p.data = append(p.data, block...)
	}
	return p
}

// block returns the packed panels for the depth block starting at
// element index pc (which must be a multiple of gemmKC).
func (p *PackedA) block(pc int) []float32 {
	return p.data[p.off[pc/gemmKC]:]
}

// Bytes returns the packed footprint in bytes (for load-time logging).
func (p *PackedA) Bytes() int { return 4 * len(p.data) }

// ConvGemmPacked computes the convolution dst = relu?(pa·im2col(src) +
// bias) for one NCHW sample plane, with the column matrix packed
// implicitly. pa is the prepacked (outC × c*kh*kw) weight matrix; src is
// the c×h×w input plane; dst receives outC×outH*outW. bias may be nil;
// relu selects a fused max(x,0) on the final store.
func (w *Workspace) ConvGemmPacked(dst []float32, pa *PackedA, src []float32, c, h, wd, kh, kw, stride, pad int, bias []float32, relu bool) {
	outH := (h+2*pad-kh)/stride + 1
	outW := (wd+2*pad-kw)/stride + 1
	m, k, n := pa.M, pa.K, outH*outW
	if k != c*kh*kw {
		panic("tensor: ConvGemmPacked geometry does not match packed weights")
	}
	if n <= 0 || k <= 0 {
		return
	}
	// For stride-1 convolutions the packer reads every panel row as one
	// contiguous span. Copying the input into a zero-padded buffer once
	// (c·(h+2p)·(w+2p) elements, ~5% of the im2col traffic) removes all
	// bounds clipping from the hot pack loop: each row becomes a single
	// unconditional vector copy.
	psrc, pws := src, wd
	if stride == 1 && pad > 0 {
		pws = wd + 2*pad
		psrc = w.Slot(slotPadSrc, c*(h+2*pad)*pws)
		padPlanes(psrc, src, c, h, wd, pad)
	}
	var acc [gemmMR * gemmNR]float32
	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			first, last := pc == 0, pc+kc == k
			w.packBIm2col(src, psrc, pws, c, h, wd, kh, kw, stride, pad, outW, outH, pc, jc, kc, nc)
			ablk := pa.block(pc)
			for jr := 0; jr < nc; jr += gemmNR {
				nrr := min(gemmNR, nc-jr)
				bp := w.packB[(jr/gemmNR)*kc*gemmNR:]
				for ir := 0; ir < m; ir += gemmMR {
					mrr := min(gemmMR, m-ir)
					ap := ablk[(ir/gemmMR)*kc*gemmMR:]
					gemmMicro(ap, bp, kc, &acc)
					gemmStoreTileEpi(dst, n, ir, jc+jr, mrr, nrr, &acc, first, last, bias, relu)
				}
			}
		}
	}
}

// GemmPackedBias computes dst(m×n) = pa(m×k)·b(k×n) + bias with an
// optional fused ReLU — the prepacked-A analogue of GemmBias, used by
// tests and non-convolution inference layers.
func (w *Workspace) GemmPackedBias(dst []float32, pa *PackedA, b []float32, n int, bias []float32, relu bool) {
	m, k := pa.M, pa.K
	if n <= 0 || k <= 0 {
		return
	}
	var acc [gemmMR * gemmNR]float32
	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			first, last := pc == 0, pc+kc == k
			w.packBPanels(b, n, k, pc, jc, kc, nc, false)
			ablk := pa.block(pc)
			for jr := 0; jr < nc; jr += gemmNR {
				nrr := min(gemmNR, nc-jr)
				bp := w.packB[(jr/gemmNR)*kc*gemmNR:]
				for ir := 0; ir < m; ir += gemmMR {
					mrr := min(gemmMR, m-ir)
					ap := ablk[(ir/gemmMR)*kc*gemmMR:]
					gemmMicro(ap, bp, kc, &acc)
					gemmStoreTileEpi(dst, n, ir, jc+jr, mrr, nrr, &acc, first, last, bias, relu)
				}
			}
		}
	}
}

// gemmStoreTileEpi is gemmStoreTile with the inference epilogue: bias is
// added on the first depth block (which overwrites dst), later blocks
// accumulate, and ReLU clamps on the last block only — so multi-block
// reductions stay correct and the fp32 result matches the unfused
// bias-then-ReLU sequence bit for bit.
func gemmStoreTileEpi(dst []float32, n, i0, j0, mr, nr int, acc *[gemmMR * gemmNR]float32, first, last bool, bias []float32, relu bool) {
	clamp := last && relu
	if gemmNR == 16 && nr == gemmNR && bias != nil &&
		storeTileEpi16(dst[i0*n+j0:], n, acc, bias[i0:], mr, first, clamp) {
		return
	}
	for r := 0; r < mr; r++ {
		row := dst[(i0+r)*n+j0 : (i0+r)*n+j0+nr]
		av := acc[r*gemmNR : r*gemmNR+nr]
		if first {
			var bv float32
			if bias != nil {
				bv = bias[i0+r]
			}
			if clamp {
				for c, v := range av {
					row[c] = relu32(v + bv)
				}
			} else {
				for c, v := range av {
					row[c] = v + bv
				}
			}
		} else if clamp {
			for c, v := range av {
				row[c] = relu32(row[c] + v)
			}
		} else {
			for c, v := range av {
				row[c] += v
			}
		}
	}
}

// relu32 matches nn.ReLU's forward semantics exactly (x if x > 0 else 0,
// so -0 and NaN both map to +0).
func relu32(x float32) float32 {
	if x > 0 {
		return x
	}
	return 0
}

// Workspace float32 slot used by ConvGemmPacked for the zero-padded
// input copy (nn's training conv uses slots 0-3, the int8 path 4-5).
const slotPadSrc = 6

// padPlanes copies the c×h×w planes of src into dst with a zero border
// of pad pixels on every side; dst is c×(h+2·pad)×(w+2·pad).
func padPlanes(dst, src []float32, c, h, w, pad int) {
	pw := w + 2*pad
	ph := h + 2*pad
	for ch := 0; ch < c; ch++ {
		d := dst[ch*ph*pw : (ch+1)*ph*pw]
		s := src[ch*h*w : (ch+1)*h*w]
		for i := 0; i < pad*pw; i++ {
			d[i] = 0
		}
		for i := (ph - pad) * pw; i < ph*pw; i++ {
			d[i] = 0
		}
		for y := 0; y < h; y++ {
			row := d[(y+pad)*pw : (y+pad+1)*pw]
			for i := 0; i < pad; i++ {
				row[i] = 0
			}
			copy(row[pad:pad+w], s[y*w:(y+1)*w])
			for i := pad + w; i < pw; i++ {
				row[i] = 0
			}
		}
	}
}

// packBIm2col packs depth rows [pc,pc+kc) × columns [jc,jc+nc) of the
// implicit im2col matrix of src (c×h×w) into w.packB, in the same
// NR-column interleaved panel layout packBPanels produces. Row r of the
// im2col matrix is (channel, ky, kx) = (r/(kh·kw), r%(kh·kw)/kw, r%kw);
// column j is output pixel (j/outW, j%outW). For a fixed row, columns
// within one output row read a contiguous input span, so the common
// stride-1 case packs straight out of the pre-padded plane psrc (row
// stride pws, see ConvGemmPacked): one unconditional fixed-size vector
// copy per row, with all tap/pixel indices advancing incrementally. Only
// ragged tail panels fall back to the bounds-clipped filler; this matters
// because each packed value is touched just ~m/MR times by the kernel.
func (w *Workspace) packBIm2col(src, psrc []float32, pws int, c, h, wd, kh, kw, stride, pad, outW, outH, pc, jc, kc, nc int) {
	_ = c
	_ = outH
	ncp := roundUp(nc, gemmNR)
	w.packB = growF32(w.packB, ncp*kc)
	khw := kh * kw
	for jp := 0; jp < ncp; jp += gemmNR {
		panel := w.packB[jp*kc : jp*kc+gemmNR*kc]
		cols := min(gemmNR, nc-jp)
		j0 := jc + jp
		if stride == 1 {
			oy0 := j0 / outW
			ox0 := j0 - oy0*outW
			ch := pc / khw
			rem := pc - ch*khw
			ky := rem / kw
			kx := rem - ky*kw
			php := (h + 2*pad) * pws
			if cols == gemmNR && ox0+gemmNR <= outW {
				// Full panel inside one output row: every row is an
				// unconditional contiguous copy from the padded plane
				// (the source span never crosses a plane-row boundary:
				// ox0+kx+NR ≤ outW+kw-1 = w+2·pad). The fixed-size
				// array copy compiles to vector moves with one bounds
				// check, and the source offset advances incrementally
				// with the tap indices — no per-row clipping at all.
				off := ch*php + (oy0+ky)*pws + ox0 + kx
				if gemmNR == 16 && packRows16(panel, psrc[off:], kc, kw, kh, kx, ky, pws-kw+1, php-kh*pws) {
					continue
				}
				for p := 0; p < kc; p++ {
					*(*[gemmNR]float32)(panel[p*gemmNR:]) = *(*[gemmNR]float32)(psrc[off:])
					if kx++; kx == kw {
						kx = 0
						off += pws - kw + 1
						if ky++; ky == kh {
							ky = 0
							off += php - kh*pws
							ch++
						}
					} else {
						off++
					}
				}
				continue
			}
			plane := src[ch*h*wd:]
			for p := 0; p < kc; p++ {
				row := panel[p*gemmNR : p*gemmNR+gemmNR]
				fillIm2colRowF32(row[:cols], plane, h, wd, pad, outW, oy0, ox0, ky, kx, 0)
				for cI := cols; cI < gemmNR; cI++ {
					row[cI] = 0
				}
				if kx++; kx == kw {
					kx = 0
					if ky++; ky == kh {
						ky = 0
						ch++
						plane = src[ch*h*wd:]
					}
				}
			}
			continue
		}
		for p := 0; p < kc; p++ {
			r := pc + p
			ch := r / khw
			rem := r - ch*khw
			ky := rem / kw
			kx := rem - ky*kw
			row := panel[p*gemmNR : p*gemmNR+gemmNR]
			im2colSpan(row[:cols], src[ch*h*wd:(ch+1)*h*wd], j0, outW, h, wd, ky, kx, stride, pad)
			for cI := cols; cI < gemmNR; cI++ {
				row[cI] = 0
			}
		}
	}
}

// fillIm2colRowF32 fills row with the stride-1 im2col values of kernel
// tap (ky,kx) for consecutive output columns starting at pixel
// (oy0,ox0), reading the h×w channel plane and writing padVal for
// out-of-bounds taps. Small segment loops are deliberate: segments are
// at most gemmNR elements, so an element loop beats a memmove call.
// fillIm2colRowU8 in quant8.go is the byte twin (a generic version
// compiles to measurably worse code than the concrete pair).
func fillIm2colRowF32(row []float32, plane []float32, h, w, pad, outW, oy0, ox0, ky, kx int, padVal float32) {
	di := 0
	oy, ox := oy0, ox0
	for di < len(row) {
		seg := min(len(row)-di, outW-ox)
		d := row[di : di+seg]
		sy := oy - pad + ky
		if sy < 0 || sy >= h {
			for i := range d {
				d[i] = padVal
			}
		} else {
			sx := ox - pad + kx
			srow := plane[sy*w : sy*w+w]
			e := 0
			for ; e < seg && sx+e < 0; e++ {
				d[e] = padVal
			}
			stop := seg
			if w-sx < stop {
				stop = w - sx
			}
			if stop < e {
				stop = e
			}
			for i := e; i < stop; i++ {
				d[i] = srow[sx+i]
			}
			for ; stop < seg; stop++ {
				d[stop] = padVal
			}
		}
		di += seg
		oy++
		ox = 0
	}
}

// im2colSpan fills dst[i] with the im2col value at kernel tap (ky,kx)
// for consecutive output columns j0+i, reading from one channel plane.
func im2colSpan(dst []float32, plane []float32, j0, outW, h, w, ky, kx, stride, pad int) {
	i := 0
	for i < len(dst) {
		j := j0 + i
		oy := j / outW
		ox := j - oy*outW
		seg := min(len(dst)-i, outW-ox)
		sy := oy*stride - pad + ky
		if sy < 0 || sy >= h {
			for e := 0; e < seg; e++ {
				dst[i+e] = 0
			}
			i += seg
			continue
		}
		srow := plane[sy*w : (sy+1)*w]
		if stride == 1 {
			sx := ox - pad + kx
			e := 0
			for ; e < seg && sx+e < 0; e++ {
				dst[i+e] = 0
			}
			stop := min(seg, w-sx)
			if stop > e {
				copy(dst[i+e:i+stop], srow[sx+e:sx+stop])
			} else {
				stop = e
			}
			for ; stop < seg; stop++ {
				dst[i+stop] = 0
			}
		} else {
			for e := 0; e < seg; e++ {
				sx := (ox+e)*stride - pad + kx
				if sx < 0 || sx >= w {
					dst[i+e] = 0
				} else {
					dst[i+e] = srow[sx]
				}
			}
		}
		i += seg
	}
}
