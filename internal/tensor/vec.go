package tensor

import "fmt"

// SIMD-dispatched element-wise vector kernels. These are the reduction
// primitives of the communication path: every allreduce algorithm in
// internal/mpi folds received chunks into the local buffer with VecAdd
// (gradient sums) or VecMin (Horovod readiness-mask negotiation). They
// follow the same dispatch pattern as the GEMM micro-kernel: an AVX2
// assembly body on amd64 when the CPU and OS support it, and a pure-Go
// loop everywhere else. Both kernels are in-place, allocation-free, and
// safe for any length (including 0).

// VecAdd accumulates src into dst element-wise: dst[i] += src[i].
// The slices must have equal length.
func VecAdd(dst, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: VecAdd length mismatch %d vs %d", len(dst), len(src)))
	}
	if len(dst) == 0 {
		return
	}
	vecAdd(dst, src)
}

// VecMin folds src into dst element-wise: dst[i] = min(dst[i], src[i]).
// The slices must have equal length. NaN handling follows the scalar
// comparison (a NaN in src never replaces dst); callers reduce readiness
// masks and gradients, which are NaN-free by construction.
func VecMin(dst, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: VecMin length mismatch %d vs %d", len(dst), len(src)))
	}
	if len(dst) == 0 {
		return
	}
	vecMin(dst, src)
}

func vecAddGeneric(dst, src []float32) {
	for i, v := range src {
		dst[i] += v
	}
}

func vecMinGeneric(dst, src []float32) {
	for i, v := range src {
		if v < dst[i] {
			dst[i] = v
		}
	}
}
