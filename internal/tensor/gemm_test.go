package tensor

import (
	"fmt"
	"math"
	"testing"
)

// refGemm is an independent triple-loop reference (float64 accumulation)
// for validating the blocked kernels.
func refGemm(dst, a, b *Tensor, m, k, n int, aTrans, bTrans, accum bool, bias []float32) {
	at := func(i, p int) float32 {
		if aTrans {
			return a.data[p*m+i]
		}
		return a.data[i*k+p]
	}
	bt := func(p, j int) float32 {
		if bTrans {
			return b.data[j*k+p]
		}
		return b.data[p*n+j]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += float64(at(i, p)) * float64(bt(p, j))
			}
			if bias != nil {
				s += float64(bias[i])
			}
			if accum {
				dst.data[i*n+j] += float32(s)
			} else {
				dst.data[i*n+j] = float32(s)
			}
		}
	}
}

func maxAbsDiff(x, y *Tensor) float64 {
	var worst float64
	for i, v := range x.data {
		d := math.Abs(float64(v) - float64(y.data[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// gemmShapes exercises tiny, odd, rectangular, and EDSR-layer shapes. The
// EDSR entries are the per-sample matmuls of the tiny config (16 feats)
// and the baseline config (64 feats) on a 24×24 patch; the paper-scale
// 256-feat shape is covered by TestGemmEDSRPaperShape.
var gemmShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 5, 3},
	{3, 1, 7},
	{4, 4, 4},
	{5, 7, 9},
	{8, 16, 4},
	{13, 3, 2},
	{17, 33, 65},
	{64, 64, 64},
	{3, 27, 576},   // EDSR-tiny head conv: (OutC=16 uses next entry's k)
	{16, 144, 576}, // EDSR-tiny body conv
	{64, 576, 576}, // EDSR-baseline body conv
}

func fillRand(r *RNG, ts ...*Tensor) {
	for _, t := range ts {
		t.FillUniform(r, -1, 1)
	}
}

func tolFor(k int) float64 { return 1e-4 * math.Sqrt(float64(k)) * 4 }

func TestGemmAgainstReference(t *testing.T) {
	r := NewRNG(42)
	for _, sh := range gemmShapes {
		m, k, n := sh.m, sh.k, sh.n
		t.Run(fmt.Sprintf("%dx%dx%d", m, k, n), func(t *testing.T) {
			a, b := New(m, k), New(k, n)
			at, bt := New(k, m), New(n, k)
			bias := New(m)
			fillRand(r, a, b, at, bt, bias)
			got, want := New(m, n), New(m, n)
			tol := tolFor(k)

			check := func(name string) {
				t.Helper()
				if d := maxAbsDiff(got, want); d > tol {
					t.Errorf("%s: max abs diff %g > tol %g", name, d, tol)
				}
			}

			MatMul(got, a, b)
			refGemm(want, a, b, m, k, n, false, false, false, nil)
			check("MatMul")

			fillRand(r, got)
			want.CopyFrom(got)
			MatMulAccum(got, a, b)
			refGemm(want, a, b, m, k, n, false, false, true, nil)
			check("MatMulAccum")

			MatMulTransA(got, at, b)
			refGemm(want, at, b, m, k, n, true, false, false, nil)
			check("MatMulTransA")

			fillRand(r, got)
			want.CopyFrom(got)
			MatMulTransAAccum(got, at, b)
			refGemm(want, at, b, m, k, n, true, false, true, nil)
			check("MatMulTransAAccum")

			// TransB: dst(m×n) = a'(m×k')·bᵀ with b stored (n×k'). Reuse
			// dims by treating k as the shared inner dimension.
			a2 := New(m, k)
			b2 := New(n, k)
			fillRand(r, a2, b2)
			MatMulTransB(got, a2, b2)
			refGemm(want, a2, b2, m, k, n, false, true, false, nil)
			check("MatMulTransB")

			fillRand(r, got)
			want.CopyFrom(got)
			MatMulTransBAccum(got, a2, b2)
			refGemm(want, a2, b2, m, k, n, false, true, true, nil)
			check("MatMulTransBAccum")

			// Workspace (serial, slice-level) variants incl. fused bias.
			ws := NewWorkspace()
			ws.Gemm(got.data, a.data, b.data, m, k, n)
			refGemm(want, a, b, m, k, n, false, false, false, nil)
			check("Workspace.Gemm")

			ws.GemmBias(got.data, a.data, b.data, bias.data, m, k, n)
			refGemm(want, a, b, m, k, n, false, false, false, bias.data)
			check("Workspace.GemmBias")

			ws.GemmTransA(got.data, at.data, b.data, k, m, n)
			refGemm(want, at, b, m, k, n, true, false, false, nil)
			check("Workspace.GemmTransA")

			ws.GemmTransB(got.data, a2.data, b2.data, m, k, n)
			refGemm(want, a2, b2, m, k, n, false, true, false, nil)
			check("Workspace.GemmTransB")

			fillRand(r, got)
			want.CopyFrom(got)
			ws.GemmTransBAccum(got.data, a2.data, b2.data, m, k, n)
			refGemm(want, a2, b2, m, k, n, false, true, true, nil)
			check("Workspace.GemmTransBAccum")

			fillRand(r, got)
			want.CopyFrom(got)
			ws.GemmAccum(got.data, a.data, b.data, m, k, n)
			refGemm(want, a, b, m, k, n, false, false, true, nil)
			check("Workspace.GemmAccum")
		})
	}
}

// TestGemmMatchesNaive cross-checks the blocked engine against the kept
// pre-blocking kernel on a shape spanning several cache blocks.
func TestGemmMatchesNaive(t *testing.T) {
	r := NewRNG(7)
	const m, k, n = 130, 260, 515 // deliberately just past MC/KC/NC edges
	a, b := New(m, k), New(k, n)
	fillRand(r, a, b)
	got, want := New(m, n), New(m, n)
	MatMul(got, a, b)
	MatMulNaive(want, a, b)
	if d := maxAbsDiff(got, want); d > tolFor(k) {
		t.Fatalf("blocked vs naive: max abs diff %g", d)
	}
}

// TestGemmParallelMatchesSerial pins worker-count independence: the same
// product computed with 1 and several workers must agree exactly (row
// strips do not change per-element summation order).
func TestGemmParallelMatchesSerial(t *testing.T) {
	r := NewRNG(8)
	const m, k, n = 96, 64, 48
	a, b := New(m, k), New(k, n)
	fillRand(r, a, b)
	serial, par := New(m, n), New(m, n)

	prev := SetMaxWorkers(1)
	MatMul(serial, a, b)
	SetMaxWorkers(5)
	MatMul(par, a, b)
	SetMaxWorkers(prev)

	if d := maxAbsDiff(serial, par); d != 0 {
		t.Fatalf("parallel result differs from serial by %g", d)
	}
}

// TestGemmEDSRPaperShape validates (and, under -bench, measures) the exact
// paper-scale EDSR body-conv matmul named in the acceptance criteria:
// OutC=256, K=256·3·3=2304, columns=24·24=576.
func TestGemmEDSRPaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale GEMM skipped in -short mode")
	}
	r := NewRNG(9)
	const m, k, n = 256, 2304, 576
	a, b := New(m, k), New(k, n)
	fillRand(r, a, b)
	got, want := New(m, n), New(m, n)
	MatMul(got, a, b)
	MatMulNaive(want, a, b)
	if d := maxAbsDiff(got, want); d > tolFor(k) {
		t.Fatalf("EDSR shape: max abs diff %g", d)
	}
}

func TestWorkspaceSlots(t *testing.T) {
	ws := NewWorkspace()
	s0 := ws.Slot(0, 10)
	if len(s0) != 10 {
		t.Fatalf("slot len %d", len(s0))
	}
	s0[3] = 7
	// Growing slot 2 must not disturb slot 0's backing array.
	_ = ws.ZeroSlot(2, 100)
	again := ws.Slot(0, 10)
	if again[3] != 7 {
		t.Fatal("slot 0 lost its contents")
	}
	// Shrinking returns a shorter view of the same array.
	small := ws.Slot(0, 4)
	if len(small) != 4 || small[3] != 7 {
		t.Fatal("shrunk slot broken")
	}
	z := ws.ZeroSlot(0, 10)
	for _, v := range z {
		if v != 0 {
			t.Fatal("ZeroSlot left data")
		}
	}
}

func TestEnsure(t *testing.T) {
	a := New(2, 3)
	if Ensure(a, 2, 3) != a {
		t.Fatal("Ensure should reuse matching tensor")
	}
	b := Ensure(a, 3, 2)
	if b == a {
		t.Fatal("Ensure must not reuse mismatched shape")
	}
	if c := Ensure(nil, 4); c == nil || c.Len() != 4 {
		t.Fatal("Ensure(nil) should allocate")
	}
}
