#include "textflag.h"

// func gemmStoreTileEpiAsm(dst *float32, strideB int, acc *float32, bias *float32, mr, flags int)
//
// Stores an mr×16 accumulator tile with the fused inference epilogue.
// dst points at the tile's first element and advances strideB bytes per
// row; acc rows are 16 floats (64 bytes) apart. flags bit0 selects the
// first-depth-block form (dst = acc + bias[r], overwriting) versus the
// accumulate form (dst += acc); flags bit1 applies the ReLU clamp before
// the store. VMAXPS operand order keeps relu32 semantics: NaN and -0
// both map to +0, so the result stays bit-identical to the Go epilogue.
TEXT ·gemmStoreTileEpiAsm(SB), NOSPLIT, $0-48
	MOVQ   dst+0(FP), DI
	MOVQ   strideB+8(FP), DX
	MOVQ   acc+16(FP), SI
	MOVQ   bias+24(FP), BX
	MOVQ   mr+32(FP), CX
	MOVQ   flags+40(FP), AX
	VXORPS Y15, Y15, Y15
	TESTQ  $1, AX
	JZ     epiacc

epifirst:
	VBROADCASTSS (BX), Y14
	VMOVUPS      (SI), Y0
	VMOVUPS      32(SI), Y1
	VADDPS       Y14, Y0, Y0
	VADDPS       Y14, Y1, Y1
	TESTQ        $2, AX
	JZ           epifstore
	VMAXPS       Y15, Y0, Y0
	VMAXPS       Y15, Y1, Y1

epifstore:
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    $4, BX
	ADDQ    DX, DI
	DECQ    CX
	JNE     epifirst
	JMP     epidone

epiacc:
	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
	VADDPS  (SI), Y0, Y0
	VADDPS  32(SI), Y1, Y1
	TESTQ   $2, AX
	JZ      epiastore
	VMAXPS  Y15, Y0, Y0
	VMAXPS  Y15, Y1, Y1

epiastore:
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    DX, DI
	DECQ    CX
	JNE     epiacc

epidone:
	VZEROUPPER
	RET
