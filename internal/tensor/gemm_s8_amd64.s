#include "textflag.h"

// func gemmMicroS8Asm(ap *int8, bp *uint8, kq int, acc *[64]int32)
//
// 4×16 int8 micro-kernel over quad-interleaved panels. Per quad q it
// loads 64 B bytes (16 columns × 4 depth values) and, for each of the 4
// A rows, broadcasts the row's 4-byte weight quad and multiplies with
// VPMADDUBSW (u8 activations × s8 weights → saturating pair sums; safe
// because activations are ≤ 127) then VPMADDWD against a ones vector to
// finish the quad dot products in int32 lanes:
//
//	Y0,Y1 = row 0 cols 0-7, 8-15      Y4,Y5 = row 2
//	Y2,Y3 = row 1                     Y6,Y7 = row 3
//
// Y12/Y13 hold the B quads, Y14 the broadcast weight quad, Y10/Y11 the
// pair-sum temporaries, Y15 the constant word ones.
TEXT ·gemmMicroS8Asm(SB), NOSPLIT, $0-32
	MOVQ ap+0(FP), SI
	MOVQ bp+8(FP), DX
	MOVQ kq+16(FP), CX
	MOVQ acc+24(FP), DI

	VPXOR Y0, Y0, Y0
	VPXOR Y1, Y1, Y1
	VPXOR Y2, Y2, Y2
	VPXOR Y3, Y3, Y3
	VPXOR Y4, Y4, Y4
	VPXOR Y5, Y5, Y5
	VPXOR Y6, Y6, Y6
	VPXOR Y7, Y7, Y7

	// Y15 = 16 × int16(1): all-ones then logical shift right by 15.
	VPCMPEQD Y15, Y15, Y15
	VPSRLW   $15, Y15, Y15

loop:
	VMOVDQU (DX), Y12
	VMOVDQU 32(DX), Y13

	VPBROADCASTD (SI), Y14
	VPMADDUBSW   Y14, Y12, Y10
	VPMADDUBSW   Y14, Y13, Y11
	VPMADDWD     Y15, Y10, Y10
	VPMADDWD     Y15, Y11, Y11
	VPADDD       Y10, Y0, Y0
	VPADDD       Y11, Y1, Y1

	VPBROADCASTD 4(SI), Y14
	VPMADDUBSW   Y14, Y12, Y10
	VPMADDUBSW   Y14, Y13, Y11
	VPMADDWD     Y15, Y10, Y10
	VPMADDWD     Y15, Y11, Y11
	VPADDD       Y10, Y2, Y2
	VPADDD       Y11, Y3, Y3

	VPBROADCASTD 8(SI), Y14
	VPMADDUBSW   Y14, Y12, Y10
	VPMADDUBSW   Y14, Y13, Y11
	VPMADDWD     Y15, Y10, Y10
	VPMADDWD     Y15, Y11, Y11
	VPADDD       Y10, Y4, Y4
	VPADDD       Y11, Y5, Y5

	VPBROADCASTD 12(SI), Y14
	VPMADDUBSW   Y14, Y12, Y10
	VPMADDUBSW   Y14, Y13, Y11
	VPMADDWD     Y15, Y10, Y10
	VPMADDWD     Y15, Y11, Y11
	VPADDD       Y10, Y6, Y6
	VPADDD       Y11, Y7, Y7

	ADDQ $16, SI
	ADDQ $64, DX
	DECQ CX
	JNZ  loop

	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	VMOVDQU Y2, 64(DI)
	VMOVDQU Y3, 96(DI)
	VMOVDQU Y4, 128(DI)
	VMOVDQU Y5, 160(DI)
	VMOVDQU Y6, 192(DI)
	VMOVDQU Y7, 224(DI)
	VZEROUPPER
	RET

// func packQuads16Asm(dst, src *uint8, nq, kw, kh, dRow, dPlane int)
//
// Packs nq depth quads of the implicit im2col matrix into the
// quad-interleaved B layout, reading each depth row as one contiguous
// 16-byte span of the zero-point-padded plane (see packBIm2colU8). The
// source advances one byte per row (next kx tap), by dRow bytes instead
// when kx wraps, plus dPlane bytes when ky wraps to the next channel;
// tap counters start at (0,0). Each quad loads four 16-byte rows and
// transposes them with PUNPCK byte/word interleaves so the stores are
// four straight 16-byte writes: dst[c*4+t] = row_t[c].
TEXT ·packQuads16Asm(SB), NOSPLIT, $0-56
	MOVQ  dst+0(FP), DI
	MOVQ  src+8(FP), SI
	MOVQ  nq+16(FP), CX
	MOVQ  kw+24(FP), R8
	MOVQ  kh+32(FP), R9
	MOVQ  dRow+40(FP), R10
	MOVQ  dPlane+48(FP), R11
	XORQ  R12, R12            // kx
	XORQ  R13, R13            // ky
	TESTQ CX, CX
	JE    pqdone

pqloop:
	VMOVDQU (SI), X0
	INCQ    R12
	CMPQ    R12, R8
	JNE     pqkx0
	XORQ    R12, R12
	ADDQ    R10, SI
	INCQ    R13
	CMPQ    R13, R9
	JNE     pqrow1
	XORQ    R13, R13
	ADDQ    R11, SI
	JMP     pqrow1

pqkx0:
	INCQ SI

pqrow1:
	VMOVDQU (SI), X1
	INCQ    R12
	CMPQ    R12, R8
	JNE     pqkx1
	XORQ    R12, R12
	ADDQ    R10, SI
	INCQ    R13
	CMPQ    R13, R9
	JNE     pqrow2
	XORQ    R13, R13
	ADDQ    R11, SI
	JMP     pqrow2

pqkx1:
	INCQ SI

pqrow2:
	VMOVDQU (SI), X2
	INCQ    R12
	CMPQ    R12, R8
	JNE     pqkx2
	XORQ    R12, R12
	ADDQ    R10, SI
	INCQ    R13
	CMPQ    R13, R9
	JNE     pqrow3
	XORQ    R13, R13
	ADDQ    R11, SI
	JMP     pqrow3

pqkx2:
	INCQ SI

pqrow3:
	VMOVDQU (SI), X3
	INCQ    R12
	CMPQ    R12, R8
	JNE     pqkx3
	XORQ    R12, R12
	ADDQ    R10, SI
	INCQ    R13
	CMPQ    R13, R9
	JNE     pqstore
	XORQ    R13, R13
	ADDQ    R11, SI
	JMP     pqstore

pqkx3:
	INCQ SI

pqstore:
	VPUNPCKLBW X1, X0, X4     // a0 b0 .. a7 b7
	VPUNPCKHBW X1, X0, X5     // a8 b8 .. a15 b15
	VPUNPCKLBW X3, X2, X6     // c0 d0 .. c7 d7
	VPUNPCKHBW X3, X2, X7
	VPUNPCKLWD X6, X4, X8     // a0 b0 c0 d0 .. (cols 0-3)
	VPUNPCKHWD X6, X4, X9     // cols 4-7
	VPUNPCKLWD X7, X5, X10    // cols 8-11
	VPUNPCKHWD X7, X5, X11    // cols 12-15
	VMOVDQU    X8, (DI)
	VMOVDQU    X9, 16(DI)
	VMOVDQU    X10, 32(DI)
	VMOVDQU    X11, 48(DI)
	ADDQ       $64, DI
	DECQ       CX
	JNE        pqloop

pqdone:
	RET

// func gemmStoreTileS8Asm(dst *float32, strideB int, acc *int32, da, db *float32, mr, relu int)
//
// Dequantizes and stores an mr×16 int32 accumulator tile:
// dst[r][c] = da[r]·acc[r][c] + db[r], with an optional ReLU clamp.
// VMULPS+VADDPS (not FMA) keep the rounding identical to the portable
// Go epilogue; VMAXPS operand order maps NaN and -0 to +0 like relu32.
TEXT ·gemmStoreTileS8Asm(SB), NOSPLIT, $0-56
	MOVQ   dst+0(FP), DI
	MOVQ   strideB+8(FP), DX
	MOVQ   acc+16(FP), SI
	MOVQ   da+24(FP), BX
	MOVQ   db+32(FP), R8
	MOVQ   mr+40(FP), CX
	MOVQ   relu+48(FP), AX
	VXORPS Y15, Y15, Y15

s8row:
	VBROADCASTSS (BX), Y14
	VBROADCASTSS (R8), Y13
	VCVTDQ2PS    (SI), Y0
	VCVTDQ2PS    32(SI), Y1
	VMULPS       Y14, Y0, Y0
	VMULPS       Y14, Y1, Y1
	VADDPS       Y13, Y0, Y0
	VADDPS       Y13, Y1, Y1
	TESTQ        AX, AX
	JZ           s8store
	VMAXPS       Y15, Y0, Y0
	VMAXPS       Y15, Y1, Y1

s8store:
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	ADDQ    $64, SI
	ADDQ    $4, BX
	ADDQ    $4, R8
	ADDQ    DX, DI
	DECQ    CX
	JNE     s8row
	VZEROUPPER
	RET

// func minMaxF32Asm(src *float32, n8 int) (lo, hi float32)
//
// Running min/max over n8 floats (n8 a positive multiple of 8), with
// both accumulators seeded at 0 to match QuantizeU7's range convention
// (the quantized range always includes 0). VMINPS/VMAXPS operand order
// keeps the accumulator on NaN input, like the portable comparisons.
TEXT ·minMaxF32Asm(SB), NOSPLIT, $0-24
	MOVQ   src+0(FP), SI
	MOVQ   n8+8(FP), CX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1

mmloop:
	VMOVUPS (SI), Y2
	VMINPS  Y0, Y2, Y0
	VMAXPS  Y1, Y2, Y1
	ADDQ    $32, SI
	SUBQ    $8, CX
	JNE     mmloop
	VEXTRACTF128 $1, Y0, X2
	VMINPS       X0, X2, X0
	VEXTRACTF128 $1, Y1, X3
	VMAXPS       X1, X3, X1
	VPERMILPS    $0x4e, X0, X2
	VMINPS       X0, X2, X0
	VPERMILPS    $0xb1, X0, X2
	VMINPS       X0, X2, X0
	VPERMILPS    $0x4e, X1, X3
	VMAXPS       X1, X3, X1
	VPERMILPS    $0xb1, X1, X3
	VMAXPS       X1, X3, X1
	VMOVSS       X0, lo+16(FP)
	VMOVSS       X1, hi+20(FP)
	VZEROUPPER
	RET

// Dword permutation that reorders the lane-interleaved VPACKSSDW →
// VPACKUSWB result into 32 consecutive quantized bytes.
DATA permQ<>+0(SB)/4, $0
DATA permQ<>+4(SB)/4, $4
DATA permQ<>+8(SB)/4, $1
DATA permQ<>+12(SB)/4, $5
DATA permQ<>+16(SB)/4, $2
DATA permQ<>+20(SB)/4, $6
DATA permQ<>+24(SB)/4, $3
DATA permQ<>+28(SB)/4, $7
GLOBL permQ<>(SB), RODATA|NOPTR, $32

// func quantizeU7Asm(dst *uint8, src *float32, n32 int, inv, zpf float32)
//
// Quantizes n32 floats (a positive multiple of 32) to u7 bytes:
// q = clamp(int32(v·inv + zpf + 0.5), 0, 127). The adds happen in the
// same order as the Go loop ((v·inv + zpf) + 0.5, separate roundings)
// so the two paths produce identical bytes; VCVTTPS2DQ truncates like
// Go's int32 conversion and sends NaN to INT_MIN, which the clamp maps
// to 0. Four YMM vectors pack to one 32-byte store via saturating
// narrowing plus a cross-lane dword permute.
TEXT ·quantizeU7Asm(SB), NOSPLIT, $0-32
	MOVQ         dst+0(FP), DI
	MOVQ         src+8(FP), SI
	MOVQ         n32+16(FP), CX
	VBROADCASTSS inv+24(FP), Y14
	VBROADCASTSS zpf+28(FP), Y13
	VPCMPEQD     Y12, Y12, Y12
	VPSRLD       $25, Y12, Y12 // 127
	VPCMPEQD     Y9, Y9, Y9
	VPSRLD       $26, Y9, Y9
	VPSLLD       $24, Y9, Y9   // 0.5f
	VPXOR        Y11, Y11, Y11
	VMOVDQU      permQ<>(SB), Y10

qloop:
	VMULPS      (SI), Y14, Y0
	VMULPS      32(SI), Y14, Y1
	VMULPS      64(SI), Y14, Y2
	VMULPS      96(SI), Y14, Y3
	VADDPS      Y13, Y0, Y0
	VADDPS      Y13, Y1, Y1
	VADDPS      Y13, Y2, Y2
	VADDPS      Y13, Y3, Y3
	VADDPS      Y9, Y0, Y0
	VADDPS      Y9, Y1, Y1
	VADDPS      Y9, Y2, Y2
	VADDPS      Y9, Y3, Y3
	VCVTTPS2DQ  Y0, Y0
	VCVTTPS2DQ  Y1, Y1
	VCVTTPS2DQ  Y2, Y2
	VCVTTPS2DQ  Y3, Y3
	VPMAXSD     Y11, Y0, Y0
	VPMAXSD     Y11, Y1, Y1
	VPMAXSD     Y11, Y2, Y2
	VPMAXSD     Y11, Y3, Y3
	VPMINSD     Y12, Y0, Y0
	VPMINSD     Y12, Y1, Y1
	VPMINSD     Y12, Y2, Y2
	VPMINSD     Y12, Y3, Y3
	VPACKSSDW   Y1, Y0, Y0
	VPACKSSDW   Y3, Y2, Y2
	VPACKUSWB   Y2, Y0, Y0
	VPERMD      Y0, Y10, Y0
	VMOVDQU     Y0, (DI)
	ADDQ        $128, SI
	ADDQ        $32, DI
	SUBQ        $32, CX
	JNE         qloop
	VZEROUPPER
	RET
