package tensor

import (
	"runtime"
	"sync"
	"testing"
)

func TestWorkerCountClamps(t *testing.T) {
	prev := SetMaxWorkers(8)
	defer SetMaxWorkers(prev)

	cases := []struct {
		n, minPer, want int
	}{
		{0, 4, 0},   // empty range: no workers
		{-3, 4, 0},  // negative range: no workers
		{3, 4, 1},   // n < minPerWorker: explicit clamp to one worker
		{4, 4, 1},   // exactly one grain
		{8, 4, 2},   // two grains
		{100, 4, 8}, // capped by maxWorkers
		{100, 0, 8}, // minPerWorker < 1 treated as 1
		{5, 1, 5},   // one worker per item, below maxWorkers
		{7, 2, 3},   // floor division of grains
	}
	for _, c := range cases {
		if got := WorkerCount(c.n, c.minPer); got != c.want {
			t.Errorf("WorkerCount(%d, %d) = %d, want %d", c.n, c.minPer, got, c.want)
		}
	}
}

func TestParallelWorkersCoversRangeExactlyOnce(t *testing.T) {
	prev := SetMaxWorkers(3)
	defer SetMaxWorkers(prev)

	for _, n := range []int{1, 2, 3, 5, 7, 10, 11, 100} {
		var mu sync.Mutex
		seen := make([]int, n)
		maxWorker := -1
		ParallelWorkers(n, 1, func(worker, lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			if worker > maxWorker {
				maxWorker = worker
			}
			for i := lo; i < hi; i++ {
				seen[i]++
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, c)
			}
		}
		if want := WorkerCount(n, 1); maxWorker >= want {
			t.Fatalf("n=%d: worker index %d out of range [0,%d)", n, maxWorker, want)
		}
	}
}

func TestParallelWorkersZeroAndSmallN(t *testing.T) {
	calls := 0
	ParallelWorkers(0, 4, func(_, _, _ int) { calls++ })
	if calls != 0 {
		t.Fatalf("n=0 invoked f %d times", calls)
	}
	// n below the per-worker grain must still process everything, inline.
	var got [][2]int
	ParallelWorkers(3, 16, func(worker, lo, hi int) {
		if worker != 0 {
			t.Fatalf("inline path used worker %d", worker)
		}
		got = append(got, [2]int{lo, hi})
	})
	if len(got) != 1 || got[0] != [2]int{0, 3} {
		t.Fatalf("inline chunks %v, want [[0 3]]", got)
	}
}

func TestSetMaxWorkersRestore(t *testing.T) {
	orig := maxWorkers
	prev := SetMaxWorkers(2)
	if prev != orig {
		t.Fatalf("SetMaxWorkers returned %d, want previous %d", prev, orig)
	}
	if maxWorkers != 2 {
		t.Fatalf("maxWorkers = %d after SetMaxWorkers(2)", maxWorkers)
	}
	// n < 1 resets to GOMAXPROCS.
	SetMaxWorkers(0)
	if maxWorkers != runtime.GOMAXPROCS(0) {
		t.Fatalf("reset gave %d, want GOMAXPROCS %d", maxWorkers, runtime.GOMAXPROCS(0))
	}
	// Restoring the returned previous value round-trips.
	SetMaxWorkers(prev)
	if maxWorkers != orig {
		t.Fatalf("restore gave %d, want %d", maxWorkers, orig)
	}
}

func TestParallelForNonDivisibleChunks(t *testing.T) {
	prev := SetMaxWorkers(4)
	defer SetMaxWorkers(prev)
	// 10 items over 4 workers → chunk 3: ranges [0,3) [3,6) [6,9) [9,10).
	var mu sync.Mutex
	total := 0
	parallelFor(10, 1, func(lo, hi int) {
		mu.Lock()
		total += hi - lo
		mu.Unlock()
		if hi <= lo {
			t.Errorf("empty chunk [%d,%d)", lo, hi)
		}
	})
	if total != 10 {
		t.Fatalf("covered %d of 10 items", total)
	}
}
