package tensor

// Workspace holds the reusable scratch buffers the blocked GEMM kernels
// and convolution lowerings need: packed A/B panels plus a set of numbered
// general-purpose slots (im2col columns, per-worker gradient accumulators,
// and similar). Buffers grow monotonically and are reused across calls, so
// a training loop that owns a Workspace per worker performs zero
// steady-state heap allocations in its compute hot path.
//
// A Workspace is NOT safe for concurrent use; give each worker goroutine
// its own (see nn.ScratchPool). The package-level MatMul entry points keep
// an internal pool of Workspaces, one per transient worker.
type Workspace struct {
	packA    []float32 // packed A panels (mc×kc, MR-row interleaved)
	packB    []float32 // packed B panels (kc×nc, NR-column interleaved)
	packB8   []uint8   // packed int8 B panels (quad-interleaved, see quant8.go)
	packTmp8 []uint8   // row-major staging buffer for the int8 B packer
	slots    [][]float32
	slots8   [][]uint8
}

// NewWorkspace returns an empty workspace; buffers are grown on demand.
func NewWorkspace() *Workspace { return &Workspace{} }

// Slot returns slot i resized to exactly n elements, growing the backing
// array if needed. Contents are unspecified (callers overwrite or zero).
// Slot indices are small integers chosen by the caller; each distinct use
// within one call frame must use a distinct index.
func (w *Workspace) Slot(i, n int) []float32 {
	for len(w.slots) <= i {
		w.slots = append(w.slots, nil)
	}
	s := w.slots[i]
	if cap(s) < n {
		s = make([]float32, n)
		w.slots[i] = s
	}
	return s[:n]
}

// ZeroSlot returns slot i resized to n elements with every element zeroed.
func (w *Workspace) ZeroSlot(i, n int) []float32 {
	s := w.Slot(i, n)
	for j := range s {
		s[j] = 0
	}
	return s
}

// SlotU8 returns byte slot i resized to exactly n elements, growing the
// backing array if needed — the uint8 analogue of Slot, used by the
// quantized inference path for activation planes.
func (w *Workspace) SlotU8(i, n int) []uint8 {
	for len(w.slots8) <= i {
		w.slots8 = append(w.slots8, nil)
	}
	s := w.slots8[i]
	if cap(s) < n {
		s = make([]uint8, n)
		w.slots8[i] = s
	}
	return s[:n]
}

// growF32 resizes buf to n elements, reallocating only when capacity is
// insufficient.
func growF32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// Ensure returns t when it already has exactly the requested shape and a
// freshly allocated tensor otherwise. Layers use it to reuse their output
// and gradient buffers across iterations. The shape slice is copied only
// on the allocating path, so the fast path is allocation-free (the
// variadic stays on the caller's stack).
func Ensure(t *Tensor, shape ...int) *Tensor {
	if t != nil && len(t.shape) == len(shape) {
		same := true
		for i, d := range shape {
			if t.shape[i] != d {
				same = false
				break
			}
		}
		if same {
			return t
		}
	}
	ns := make([]int, len(shape))
	copy(ns, shape)
	return New(ns...)
}
