package tensor

import "math"

// Int8 quantized convolution for the inference compile path.
//
// Weights are quantized offline at model compile time: symmetric
// per-output-channel int8 (scale = absmax/127, no zero point), packed
// into micro-kernel panels once. Activations are quantized on the fly,
// per forward call, to *unsigned 7-bit* [0,127] with an asymmetric zero
// point. The u7 range is what makes the AVX2 kernel safe: VPMADDUBSW
// sums two u8×s8 products into a saturating int16, and 2·127·127 =
// 32258 < 32767, so with activations clamped to 127 the pair sum can
// never saturate and the asm kernel is exactly equal to the pure-Go
// reference.
//
// Dequantization folds the zero point through precomputed per-row weight
// sums: with wq the quantized weights, xq the quantized activations,
//
//	real ≈ Σ_p (wq·sW)·((xq−zp)·sX)
//	     = sW·sX·(Σ wq·xq − zp·Σ wq)
//	dst[r][c] = sW[r]·sX·(acc[r][c] − zp·rowSum[r]) + bias[r]
//
// so the integer GEMM needs no per-element zero-point handling, and the
// epilogue is one fused multiply-add per output (plus optional ReLU).
//
// The int8 path keeps the whole reduction depth in one block (int32
// accumulators lose no precision to blocking, and |acc| ≤ k·127² stays
// far below 2³¹ for any realistic k), which lets the epilogue dequantize
// directly from the accumulator tile.

// Int8 micro-tile: 4×16. The AVX2 kernel processes the depth in quads
// (4 int8 values per 32-bit lane), so panels are quad-interleaved:
//
//	A (weights, int8):      ap[(q*MR8 + r)*4 + t]  — row r, depth 4q+t
//	B (activations, uint8): bp[(q*NR8 + c)*4 + t]  — col c, depth 4q+t
//
// 8 YMM int32 accumulators (4 rows × two 8-lane halves) leave registers
// free for the two B loads, the broadcast weight quad, the pair-sum
// temporaries, and the ones vector VPMADDWD needs.
const (
	gemmMR8 = 4  // int8 micro-tile rows
	gemmNR8 = 16 // int8 micro-tile columns
)

// maxQuantK bounds the reduction depth so int32 accumulators cannot
// overflow: k·127·127 < 2³¹ ⇒ k < 133152.
const maxQuantK = 1 << 17

// PackedA8 holds per-output-channel int8 quantized weights packed into
// the quad-interleaved micro-kernel layout, plus the per-row scales and
// quantized-weight row sums the dequantization epilogue needs. Immutable
// after PackA8 and safe to share across workers.
type PackedA8 struct {
	M, K int

	data    []int8    // panels: rows padded to MR8, depth padded to quads
	Scales  []float32 // per-row weight scale sW[r] (absmax/127)
	RowSums []int32   // per-row Σ_p wq[r][p] for zero-point correction
}

// PackA8 quantizes a (stored m×k float32) to symmetric per-row int8 and
// packs it for the int8 micro-kernel.
func PackA8(a []float32, m, k int) *PackedA8 {
	if len(a) < m*k {
		panic("tensor: PackA8 operand shorter than m*k")
	}
	if k >= maxQuantK {
		panic("tensor: PackA8 reduction depth too large for int32 accumulation")
	}
	p := &PackedA8{
		M: m, K: k,
		Scales:  make([]float32, m),
		RowSums: make([]int32, m),
	}
	q := make([]int8, m*k)
	for r := 0; r < m; r++ {
		row := a[r*k : (r+1)*k]
		var amax float32
		for _, v := range row {
			if av := float32(math.Abs(float64(v))); av > amax {
				amax = av
			}
		}
		scale := amax / 127
		if scale == 0 {
			scale = 1 // all-zero row: any scale dequantizes 0 correctly
		}
		p.Scales[r] = scale
		inv := 1 / scale
		var sum int32
		for pIdx, v := range row {
			qv := int32(math.RoundToEven(float64(v * inv)))
			if qv > 127 {
				qv = 127
			} else if qv < -127 {
				qv = -127
			}
			q[r*k+pIdx] = int8(qv)
			sum += qv
		}
		p.RowSums[r] = sum
	}
	// Pack: rows padded to MR8 panels, depth padded to whole quads.
	kq := (k + 3) / 4
	mp := roundUp(m, gemmMR8)
	p.data = make([]int8, mp*kq*4)
	for ir := 0; ir < mp; ir += gemmMR8 {
		panel := p.data[ir*kq*4 : (ir+gemmMR8)*kq*4]
		for r := 0; r < gemmMR8; r++ {
			if ir+r >= m {
				continue // padding rows stay zero
			}
			row := q[(ir+r)*k : (ir+r+1)*k]
			for pIdx, v := range row {
				qi, t := pIdx/4, pIdx%4
				panel[(qi*gemmMR8+r)*4+t] = v
			}
		}
	}
	return p
}

// Bytes returns the packed footprint in bytes.
func (p *PackedA8) Bytes() int { return len(p.data) + 8*len(p.Scales) }

// panel returns the packed quads for the row panel starting at row ir.
func (p *PackedA8) panel(ir, kq int) []int8 {
	return p.data[ir*kq*4:]
}

// QuantizeU7 quantizes src to dst in [0,127] with an asymmetric zero
// point chosen so that both the observed range of src and the value 0
// (zero padding introduces it) are representable exactly enough:
// scale = (hi−lo)/127 over lo = min(0, min src), hi = max(0, max src),
// zp = round(−lo/scale). Returns (scale, zp). An all-zero or constant-0
// input yields scale 1, zp 0.
func QuantizeU7(dst []uint8, src []float32) (float32, int32) {
	if len(dst) < len(src) {
		panic("tensor: QuantizeU7 dst shorter than src")
	}
	lo, hi, ok := quantMinMax(src)
	if !ok {
		for _, v := range src {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	scale := (hi - lo) / 127
	if scale == 0 {
		scale = 1
	}
	inv := 1 / scale
	zp := int32(math.RoundToEven(float64(-lo * inv)))
	if zp < 0 {
		zp = 0
	} else if zp > 127 {
		zp = 127
	}
	// Hot loop in float32 with round-half-up via +0.5: v*inv+zp ≥ -0.5 by
	// construction, so int32 truncation after the shift is a floor. The
	// half-step error bound is unchanged.
	zpf := float32(zp)
	if !quantApply(dst[:len(src)], src, inv, zpf) {
		quantScalar(dst[:len(src)], src, inv, zpf)
	}
	return scale, zp
}

// quantScalar is the portable quantize loop (also the ragged-tail
// finisher for the SIMD path, which produces identical bytes).
func quantScalar(dst []uint8, src []float32, inv, zpf float32) {
	for i, v := range src {
		q := int32(v*inv + zpf + 0.5)
		if q < 0 {
			q = 0
		} else if q > 127 {
			q = 127
		}
		dst[i] = uint8(q)
	}
}

// DequantizeU7 reverses QuantizeU7 for testing: real = (q − zp)·scale.
func DequantizeU7(dst []float32, src []uint8, scale float32, zp int32) {
	for i, q := range src {
		dst[i] = float32(int32(q)-zp) * scale
	}
}

// ConvGemmS8 computes the int8 convolution dst = relu?(dequant(pa8 ·
// im2col(srcQ)) + bias) for one NCHW sample plane. srcQ is the input
// plane already quantized by QuantizeU7 with (scaleX, zp); dst receives
// float32 outC×outH*outW. The zero-padding ring contributes the exact
// quantized zero (zp), so padding dequantizes to 0.
func (w *Workspace) ConvGemmS8(dst []float32, pa *PackedA8, srcQ []uint8, scaleX float32, zp int32, c, h, wd, kh, kw, stride, pad int, bias []float32, relu bool) {
	outH := (h+2*pad-kh)/stride + 1
	outW := (wd+2*pad-kw)/stride + 1
	m, k, n := pa.M, pa.K, outH*outW
	if k != c*kh*kw {
		panic("tensor: ConvGemmS8 geometry does not match packed weights")
	}
	if n <= 0 || k <= 0 {
		return
	}
	kq := (k + 3) / 4
	// Per-row dequant coefficients: dst = a[r]·acc + b[r].
	da := w.Slot(slotDequantA, m)
	db := w.Slot(slotDequantB, m)
	for r := 0; r < m; r++ {
		da[r] = pa.Scales[r] * scaleX
		var bv float32
		if bias != nil {
			bv = bias[r]
		}
		db[r] = bv - da[r]*float32(zp*pa.RowSums[r])
	}
	// Mirror of the float32 fast path (see ConvGemmPacked): pre-pad the
	// quantized plane once so the packer's interior rows are
	// unconditional contiguous copies. The border byte is the activation
	// zero point — the exact quantized 0.0 — so padding taps dequantize
	// to zero through the db correction term.
	psrc, pws := srcQ, wd
	if stride == 1 && pad > 0 {
		pws = wd + 2*pad
		psrc = w.SlotU8(slotPadSrc8, c*(h+2*pad)*pws)
		padPlanesU8(psrc, srcQ, c, h, wd, pad, uint8(zp))
	}
	var acc [gemmMR8 * gemmNR8]int32
	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		w.packBIm2colU8(srcQ, psrc, pws, h, wd, kh, kw, stride, pad, outW, jc, k, kq, nc, uint8(zp))
		for jr := 0; jr < nc; jr += gemmNR8 {
			nrr := min(gemmNR8, nc-jr)
			bp := w.packB8[(jr/gemmNR8)*kq*4*gemmNR8:]
			for ir := 0; ir < m; ir += gemmMR8 {
				mrr := min(gemmMR8, m-ir)
				ap := pa.panel(ir, kq)
				gemmMicroS8(ap, bp, kq, &acc)
				gemmStoreTileS8(dst, n, ir, jc+jr, mrr, nrr, &acc, da, db, relu)
			}
		}
	}
}

// Dequant coefficient slots (float32 Workspace slots). They sit above the
// conv/grad slots used by internal/nn (0-3).
const (
	slotDequantA = 4
	slotDequantB = 5
)

// Workspace byte-slot used by ConvGemmS8 for the zero-point-padded
// quantized plane (internal/nn uses byte slot 0 for the quantized
// input).
const slotPadSrc8 = 1

// padPlanesU8 copies the c×h×w quantized planes of src into dst with a
// border of pad pixels holding padVal (the activation zero point) on
// every side; dst is c×(h+2·pad)×(w+2·pad).
func padPlanesU8(dst, src []uint8, c, h, w, pad int, padVal uint8) {
	pw := w + 2*pad
	ph := h + 2*pad
	for ch := 0; ch < c; ch++ {
		d := dst[ch*ph*pw : (ch+1)*ph*pw]
		s := src[ch*h*w : (ch+1)*h*w]
		for i := 0; i < pad*pw; i++ {
			d[i] = padVal
		}
		for i := (ph - pad) * pw; i < ph*pw; i++ {
			d[i] = padVal
		}
		for y := 0; y < h; y++ {
			row := d[(y+pad)*pw : (y+pad+1)*pw]
			for i := 0; i < pad; i++ {
				row[i] = padVal
			}
			copy(row[pad:pad+w], s[y*w:(y+1)*w])
			for i := pad + w; i < pw; i++ {
				row[i] = padVal
			}
		}
	}
}

// gemmStoreTileS8 dequantizes and stores an int32 accumulator tile:
// dst[r][c] = da[r]·acc + db[r], optionally clamped by ReLU.
func gemmStoreTileS8(dst []float32, n, i0, j0, mr, nr int, acc *[gemmMR8 * gemmNR8]int32, da, db []float32, relu bool) {
	if gemmNR8 == 16 && nr == gemmNR8 &&
		storeTileS816(dst[i0*n+j0:], n, acc, da[i0:], db[i0:], mr, relu) {
		return
	}
	for r := 0; r < mr; r++ {
		row := dst[(i0+r)*n+j0 : (i0+r)*n+j0+nr]
		av := acc[r*gemmNR8 : r*gemmNR8+nr]
		a, b := da[i0+r], db[i0+r]
		if relu {
			for c, v := range av {
				row[c] = relu32(a*float32(v) + b)
			}
		} else {
			for c, v := range av {
				row[c] = a*float32(v) + b
			}
		}
	}
}

// packBIm2colU8 packs the implicit im2col of the quantized plane srcQ
// (covering depth rows [0,k) padded to kq quads × columns [jc,jc+nc))
// into w.packB8 in the quad-interleaved B layout. Zero-padding taps get
// the activation zero point zp (the exact quantized 0); depth rows past
// k and columns past nc get byte 0 (they meet zero weights or are
// clipped at store, and 0 keeps the VPMADDUBSW pair sums small).
//
// Packing is two-phase per panel: phase 1 fills a row-major gemmNR8-wide
// staging buffer with the same fast clipped-span code the float32 packer
// uses (contiguous byte writes); phase 2 interleaves the staging rows
// into the quad layout the kernel loads. The staging buffer is a few KB
// and stays L1-resident, so the interleave is cheap — much cheaper than
// writing stride-4 bytes straight from the image would be.
func (w *Workspace) packBIm2colU8(srcQ, psrc []uint8, pws int, h, wd, kh, kw, stride, pad, outW, jc, k, kq, nc int, zp uint8) {
	ncp := roundUp(nc, gemmNR8)
	need := ncp * kq * 4
	if cap(w.packB8) < need {
		w.packB8 = make([]uint8, need)
	}
	w.packB8 = w.packB8[:need]
	tmpN := kq * 4 * gemmNR8
	if cap(w.packTmp8) < tmpN {
		w.packTmp8 = make([]uint8, tmpN)
	}
	tmp := w.packTmp8[:tmpN]
	php := (h + 2*pad) * pws
	for jp := 0; jp < ncp; jp += gemmNR8 {
		panel := w.packB8[jp*kq*4 : (jp+gemmNR8)*kq*4]
		cols := min(gemmNR8, nc-jp)
		j0 := jc + jp
		oy0 := j0 / outW
		ox0 := j0 - oy0*outW
		// Fast path twin of the float32 packer: a full panel inside one
		// output row reads every depth row as one contiguous 16-byte
		// span of the padded plane. The asm routine transposes four
		// such rows at a time into the quad-interleaved layout.
		if stride == 1 && cols == gemmNR8 && ox0+gemmNR8 <= outW && gemmNR8 == 16 &&
			packQuads16(panel, psrc[oy0*pws+ox0:], k/4, kw, kh, pws-kw+1, php-kh*pws) {
			khw := kh * kw
			for q := k / 4; q < kq; q++ {
				out := panel[q*gemmNR8*4 : (q+1)*gemmNR8*4]
				for t := 0; t < 4; t++ {
					p := q*4 + t
					if p < k {
						ch := p / khw
						rem := p - ch*khw
						ky := rem / kw
						kx := rem - ky*kw
						span := psrc[ch*php+(oy0+ky)*pws+ox0+kx:]
						for c := 0; c < gemmNR8; c++ {
							out[c*4+t] = span[c]
						}
					} else {
						for c := 0; c < gemmNR8; c++ {
							out[c*4+t] = 0
						}
					}
				}
			}
			continue
		}
		// Phase 1: row-major staging, tmp[p*NR8+c] = im2col[k-row p][col j0+c].
		ch, ky, kx := 0, 0, 0
		plane := srcQ
		for p := 0; p < k; p++ {
			row := tmp[p*gemmNR8 : p*gemmNR8+gemmNR8]
			if stride == 1 {
				fillIm2colRowU8(row[:cols], plane, h, wd, pad, outW, oy0, ox0, ky, kx, zp)
			} else {
				im2colRowU8Strided(row[:cols], plane, j0, outW, h, wd, ky, kx, stride, pad, zp)
			}
			for c := cols; c < gemmNR8; c++ {
				row[c] = 0
			}
			if kx++; kx == kw {
				kx = 0
				if ky++; ky == kh {
					ky = 0
					ch++
					plane = srcQ[min(ch*h*wd, len(srcQ)):]
				}
			}
		}
		for p := k; p < kq*4; p++ {
			row := tmp[p*gemmNR8 : p*gemmNR8+gemmNR8]
			for c := range row {
				row[c] = 0
			}
		}
		// Phase 2: quad interleave, panel[q*NR8*4 + c*4 + t] = tmp[(4q+t)*NR8+c].
		for q := 0; q < kq; q++ {
			r0 := tmp[(4*q)*gemmNR8 : (4*q)*gemmNR8+gemmNR8]
			r1 := tmp[(4*q+1)*gemmNR8 : (4*q+1)*gemmNR8+gemmNR8]
			r2 := tmp[(4*q+2)*gemmNR8 : (4*q+2)*gemmNR8+gemmNR8]
			r3 := tmp[(4*q+3)*gemmNR8 : (4*q+3)*gemmNR8+gemmNR8]
			out := panel[q*gemmNR8*4 : (q+1)*gemmNR8*4]
			for c := 0; c < gemmNR8; c++ {
				out[c*4] = r0[c]
				out[c*4+1] = r1[c]
				out[c*4+2] = r2[c]
				out[c*4+3] = r3[c]
			}
		}
	}
}

// fillIm2colRowU8 is the byte twin of fillIm2colRowF32 (see gemm_infer.go
// for why the pair is not a generic).
func fillIm2colRowU8(row []uint8, plane []uint8, h, w, pad, outW, oy0, ox0, ky, kx int, padVal uint8) {
	di := 0
	oy, ox := oy0, ox0
	for di < len(row) {
		seg := min(len(row)-di, outW-ox)
		d := row[di : di+seg]
		sy := oy - pad + ky
		if sy < 0 || sy >= h {
			for i := range d {
				d[i] = padVal
			}
		} else {
			sx := ox - pad + kx
			srow := plane[sy*w : sy*w+w]
			e := 0
			for ; e < seg && sx+e < 0; e++ {
				d[e] = padVal
			}
			stop := seg
			if w-sx < stop {
				stop = w - sx
			}
			if stop < e {
				stop = e
			}
			for i := e; i < stop; i++ {
				d[i] = srow[sx+i]
			}
			for ; stop < seg; stop++ {
				d[stop] = padVal
			}
		}
		di += seg
		oy++
		ox = 0
	}
}

// im2colRowU8Strided is the general-stride staging-row filler.
func im2colRowU8Strided(dst []uint8, plane []uint8, j0, outW, h, w, ky, kx, stride, pad int, zp uint8) {
	for i := range dst {
		j := j0 + i
		oy := j / outW
		ox := j - oy*outW
		sy := oy*stride - pad + ky
		sx := ox*stride - pad + kx
		if sy < 0 || sy >= h || sx < 0 || sx >= w {
			dst[i] = zp
		} else {
			dst[i] = plane[sy*w+sx]
		}
	}
}

// gemmMicroS8Generic is the portable int8 micro-kernel: acc[r*NR8+c] =
// Σ_q Σ_t ap[(q*MR8+r)*4+t]·bp[(q*NR8+c)*4+t] over kq quads. It is the
// reference the asm kernel must match exactly; with activations in
// [0,127] the asm pair sums cannot saturate, so the two agree bit for
// bit.
func gemmMicroS8Generic(ap []int8, bp []uint8, kq int, acc *[gemmMR8 * gemmNR8]int32) {
	for i := range acc {
		acc[i] = 0
	}
	for q := 0; q < kq; q++ {
		as := ap[q*gemmMR8*4 : (q+1)*gemmMR8*4]
		bs := bp[q*gemmNR8*4 : (q+1)*gemmNR8*4]
		for r := 0; r < gemmMR8; r++ {
			a0 := int32(as[r*4])
			a1 := int32(as[r*4+1])
			a2 := int32(as[r*4+2])
			a3 := int32(as[r*4+3])
			row := acc[r*gemmNR8 : (r+1)*gemmNR8]
			for c := 0; c < gemmNR8; c++ {
				bq := bs[c*4 : c*4+4]
				row[c] += a0*int32(bq[0]) + a1*int32(bq[1]) + a2*int32(bq[2]) + a3*int32(bq[3])
			}
		}
	}
}
