//go:build !amd64

package tensor

func vecAdd(dst, src []float32) { vecAddGeneric(dst, src) }

func vecMin(dst, src []float32) { vecMinGeneric(dst, src) }
