package tensor

import (
	"math"
	"testing"
)

// vecCase builds deterministic operands of length n with mixed signs and
// magnitudes, exercising both the unrolled SIMD body and the scalar tail.
func vecCase(n int) (dst, src []float32) {
	dst = make([]float32, n)
	src = make([]float32, n)
	for i := range dst {
		dst[i] = float32(i%17) - 8.25
		src[i] = float32((i*7)%23) - 11.5
	}
	return dst, src
}

func TestVecAddMatchesGeneric(t *testing.T) {
	for _, n := range []int{0, 1, 3, 7, 8, 9, 15, 16, 31, 32, 33, 63, 64, 100, 1023, 4096} {
		got, src := vecCase(n)
		want := append([]float32(nil), got...)
		VecAdd(got, src)
		vecAddGeneric(want, src)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d elem %d: %g want %g", n, i, got[i], want[i])
			}
		}
	}
}

func TestVecMinMatchesGeneric(t *testing.T) {
	for _, n := range []int{0, 1, 5, 8, 13, 16, 32, 37, 64, 255, 1000} {
		got, src := vecCase(n)
		want := append([]float32(nil), got...)
		VecMin(got, src)
		vecMinGeneric(want, src)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d elem %d: %g want %g", n, i, got[i], want[i])
			}
		}
	}
}

func TestVecMinReadinessMask(t *testing.T) {
	// The negotiation use case: 0/1 masks, min picks 0 whenever any rank
	// reports not-ready.
	n := 67
	dst := make([]float32, n)
	src := make([]float32, n)
	for i := range dst {
		dst[i] = 1
		src[i] = float32(i % 2)
	}
	VecMin(dst, src)
	for i, v := range dst {
		if v != float32(i%2) {
			t.Fatalf("elem %d: %g", i, v)
		}
	}
}

func TestVecLengthMismatchPanics(t *testing.T) {
	for _, f := range []func(){
		func() { VecAdd(make([]float32, 3), make([]float32, 4)) },
		func() { VecMin(make([]float32, 4), make([]float32, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestVecAddZeroAlloc(t *testing.T) {
	dst, src := vecCase(4096)
	if a := testing.AllocsPerRun(100, func() { VecAdd(dst, src) }); a != 0 {
		t.Fatalf("VecAdd allocates %g per run", a)
	}
	if a := testing.AllocsPerRun(100, func() { VecMin(dst, src) }); a != 0 {
		t.Fatalf("VecMin allocates %g per run", a)
	}
}

func TestVecMinNaNKeepsDst(t *testing.T) {
	// src NaN must not replace dst (scalar convention "src < dst").
	nan := float32(math.NaN())
	dst := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	src := []float32{nan, nan, nan, nan, nan, nan, nan, nan, nan}
	VecMin(dst, src)
	for i, v := range dst {
		if v != float32(i+1) {
			t.Fatalf("elem %d: %g, NaN src replaced dst", i, v)
		}
	}
}

func BenchmarkVecAdd(b *testing.B) {
	dst, src := vecCase(1 << 20)
	b.SetBytes(1 << 22)
	for i := 0; i < b.N; i++ {
		VecAdd(dst, src)
	}
}

func BenchmarkVecAddGeneric(b *testing.B) {
	dst, src := vecCase(1 << 20)
	b.SetBytes(1 << 22)
	for i := 0; i < b.N; i++ {
		vecAddGeneric(dst, src)
	}
}
