package tensor

import "testing"

// TestGemmGenericFallbackMatchesFMA runs the same product through the FMA
// assembly micro-kernel and the generic Go fallback (as used on CPUs
// without AVX2) and checks they agree to float tolerance. FMA fuses the
// multiply-add rounding, so equality is approximate, not bitwise.
func TestGemmGenericFallbackMatchesFMA(t *testing.T) {
	if !gemmHasFMA {
		t.Skip("CPU has no AVX2+FMA; generic path is already the default")
	}
	r := NewRNG(11)
	const m, k, n = 37, 129, 83 // odd sizes exercise the padded tile edges
	a, b := New(m, k), New(k, n)
	fillRand(r, a, b)
	fma, gen := New(m, n), New(m, n)

	MatMul(fma, a, b)
	gemmHasFMA = false
	MatMul(gen, a, b)
	gemmHasFMA = true

	if d := maxAbsDiff(fma, gen); d > tolFor(k) {
		t.Fatalf("FMA vs generic kernel: max abs diff %g", d)
	}
}
