package tensor

// Cache-blocked GEMM engine shared by every MatMul* entry point and by the
// convolution lowerings in internal/nn.
//
// The structure is the classic three-level blocking (Goto & van de Geijn):
// B is packed into KC×NC panels that stay resident in L2 while MC×KC
// panels of A stream through them, and the innermost computation is a
// register-tiled MR×NR micro-kernel over packed, contiguous panels. Both
// operands may be logically transposed, which lets one engine serve the
// forward pass (C = A·B), the weight gradient (C += A·Bᵀ), and the data
// gradient (C = Aᵀ·B) without materializing any transposes. A per-row bias
// can be fused into the store epilogue, which is how convolution layers
// avoid a separate bias pass over their output.
//
// The naive j-inner kernel this replaces streamed all of B from memory for
// every output row (k·n·4 bytes per row — megabytes for EDSR-shaped
// layers) and paid a load+store of the destination per multiply-add. The
// packed micro-kernel keeps an MR×NR accumulator block in registers across
// the whole k loop, so the destination traffic disappears and each packed
// B panel is read from cache, not DRAM. On amd64 with AVX2+FMA the
// micro-kernel is a 6×16 assembly tile (gemm_amd64.s); elsewhere a 2×4
// pure-Go tile sized for 16 scalar registers.

// The micro-tile dimensions gemmMR×gemmNR are architecture-specific (see
// gemm_tile_amd64.go and gemm_tile_noasm.go); the cache-block sizes below
// are shared.
const (
	gemmMC = 128 // rows of A packed per L2 block
	gemmKC = 256 // depth of one packed panel pair
	gemmNC = 512 // columns of B packed per panel
)

func roundUp(x, to int) int { return (x + to - 1) / to * to }

// gemmRange computes rows [i0,i1) of C(m×n) = op(A)(m×k)·op(B)(k×n),
// overwriting (accum=false) or accumulating into (accum=true) dst. Operand
// storage is selected by the transpose flags:
//
//	aTrans=false: A[i][p] = a[i*k+p] (stored m×k)
//	aTrans=true:  A[i][p] = a[p*m+i] (stored k×m)
//	bTrans=false: B[p][j] = b[p*n+j] (stored k×n)
//	bTrans=true:  B[p][j] = b[j*k+p] (stored n×k)
//
// When bias is non-nil (valid only with accum=false), bias[i] is added to
// every element of row i during the first store of that row.
func (w *Workspace) gemmRange(dst, a, b []float32, m, n, k, i0, i1 int, aTrans, bTrans, accum bool, bias []float32) {
	if i0 >= i1 || n <= 0 || k <= 0 {
		return
	}
	var acc [gemmMR * gemmNR]float32
	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			overwrite := pc == 0 && !accum
			w.packBPanels(b, n, k, pc, jc, kc, nc, bTrans)
			for ic := i0; ic < i1; ic += gemmMC {
				mc := min(gemmMC, i1-ic)
				w.packAPanels(a, m, k, ic, pc, mc, kc, aTrans)
				for jr := 0; jr < nc; jr += gemmNR {
					nrr := min(gemmNR, nc-jr)
					bp := w.packB[(jr/gemmNR)*kc*gemmNR:]
					for ir := 0; ir < mc; ir += gemmMR {
						mrr := min(gemmMR, mc-ir)
						ap := w.packA[(ir/gemmMR)*kc*gemmMR:]
						gemmMicro(ap, bp, kc, &acc)
						gemmStoreTile(dst, n, ic+ir, jc+jr, mrr, nrr, &acc, overwrite, bias)
					}
				}
			}
		}
	}
}

// gemmMicroGeneric accumulates a gemmMR×gemmNR tile over kc packed steps
// in pure Go — the portable fallback behind the per-architecture
// gemmMicro. ap holds gemmMR A values per step (one per tile row), bp
// holds gemmNR B values per step (one per tile column); both advance in
// lockstep.
func gemmMicroGeneric(ap, bp []float32, kc int, acc *[gemmMR * gemmNR]float32) {
	for i := range acc {
		acc[i] = 0
	}
	for p := 0; p < kc; p++ {
		as := ap[p*gemmMR : p*gemmMR+gemmMR]
		bs := bp[p*gemmNR : p*gemmNR+gemmNR]
		for r, av := range as {
			row := acc[r*gemmNR : r*gemmNR+gemmNR]
			for c, bv := range bs {
				row[c] += av * bv
			}
		}
	}
}

// gemmStoreTile writes the micro-kernel accumulators into dst rows
// [i0,i0+mr) × columns [j0,j0+nr), clipping the zero-padded tile edge.
// overwrite selects dst = acc (+bias) versus dst += acc.
func gemmStoreTile(dst []float32, n, i0, j0, mr, nr int, acc *[gemmMR * gemmNR]float32, overwrite bool, bias []float32) {
	for r := 0; r < mr; r++ {
		row := dst[(i0+r)*n+j0 : (i0+r)*n+j0+nr]
		av := acc[r*gemmNR : r*gemmNR+nr]
		if !overwrite {
			for c, v := range av {
				row[c] += v
			}
		} else if bias != nil {
			bv := bias[i0+r]
			for c, v := range av {
				row[c] = v + bv
			}
		} else {
			copy(row, av)
		}
	}
}

// packAPanels packs rows [ic,ic+mc) × depth [pc,pc+kc) of op(A) into
// MR-row interleaved panels: panel q holds rows ic+q·MR.. with layout
// [p·MR + r]. Rows beyond mc are zero-filled so the micro-kernel never
// branches on the edge.
func (w *Workspace) packAPanels(a []float32, m, k, ic, pc, mc, kc int, aTrans bool) {
	mcp := roundUp(mc, gemmMR)
	w.packA = growF32(w.packA, mcp*kc)
	packAPanelsInto(w.packA, a, m, k, ic, pc, mc, kc, aTrans)
}

// packAPanelsInto is the destination-explicit core of packAPanels, shared
// with the one-time inference prepacking in gemm_infer.go.
func packAPanelsInto(dst []float32, a []float32, m, k, ic, pc, mc, kc int, aTrans bool) {
	mcp := roundUp(mc, gemmMR)
	for ir := 0; ir < mcp; ir += gemmMR {
		panel := dst[ir*kc : ir*kc+gemmMR*kc]
		rows := min(gemmMR, mc-ir)
		if aTrans {
			// A[i][p] = a[p*m+i]: each packed step is contiguous in r.
			idx := 0
			for p := 0; p < kc; p++ {
				src := a[(pc+p)*m+ic+ir:]
				copy(panel[idx:idx+rows], src)
				for r := rows; r < gemmMR; r++ {
					panel[idx+r] = 0
				}
				idx += gemmMR
			}
			continue
		}
		// A[i][p] = a[i*k+p]: stream each source row into a strided lane
		// of the panel (the panel itself stays L1-resident).
		for r := 0; r < gemmMR; r++ {
			if r < rows {
				src := a[(ic+ir+r)*k+pc : (ic+ir+r)*k+pc+kc]
				for p, v := range src {
					panel[p*gemmMR+r] = v
				}
			} else {
				for p := 0; p < kc; p++ {
					panel[p*gemmMR+r] = 0
				}
			}
		}
	}
}

// packBPanels packs depth [pc,pc+kc) × columns [jc,jc+nc) of op(B) into
// NR-column interleaved panels: panel q holds columns jc+q·NR.. with
// layout [p·NR + c], zero-filling past nc.
func (w *Workspace) packBPanels(b []float32, n, k, pc, jc, kc, nc int, bTrans bool) {
	ncp := roundUp(nc, gemmNR)
	w.packB = growF32(w.packB, ncp*kc)
	for jp := 0; jp < ncp; jp += gemmNR {
		panel := w.packB[jp*kc : jp*kc+gemmNR*kc]
		cols := min(gemmNR, nc-jp)
		if bTrans {
			// B[p][j] = b[j*k+p]: each logical column is contiguous in p,
			// so stream it into a strided lane of the panel.
			for c := 0; c < gemmNR; c++ {
				if c < cols {
					src := b[(jc+jp+c)*k+pc : (jc+jp+c)*k+pc+kc]
					for p, v := range src {
						panel[p*gemmNR+c] = v
					}
				} else {
					for p := 0; p < kc; p++ {
						panel[p*gemmNR+c] = 0
					}
				}
			}
			continue
		}
		idx := 0
		for p := 0; p < kc; p++ {
			src := b[(pc+p)*n+jc+jp : (pc+p)*n+jc+jp+cols]
			copy(panel[idx:], src)
			for c := cols; c < gemmNR; c++ {
				panel[idx+c] = 0
			}
			idx += gemmNR
		}
	}
}

// Slice-level entry points. These run single-threaded on the calling
// goroutine — callers that parallelize (e.g. batch-parallel convolution)
// own one Workspace per worker and drive these directly, which keeps the
// steady-state hot path free of heap allocations.

// Gemm computes dst(m×n) = a(m×k)·b(k×n).
func (w *Workspace) Gemm(dst, a, b []float32, m, k, n int) {
	w.gemmRange(dst, a, b, m, n, k, 0, m, false, false, false, nil)
}

// GemmBias computes dst(m×n) = a(m×k)·b(k×n) + bias broadcast per row:
// bias[i] is added to every element of row i in the store epilogue.
func (w *Workspace) GemmBias(dst, a, b, bias []float32, m, k, n int) {
	w.gemmRange(dst, a, b, m, n, k, 0, m, false, false, false, bias)
}

// GemmAccum computes dst(m×n) += a(m×k)·b(k×n).
func (w *Workspace) GemmAccum(dst, a, b []float32, m, k, n int) {
	w.gemmRange(dst, a, b, m, n, k, 0, m, false, false, true, nil)
}

// GemmTransA computes dst(m×n) = aᵀ·b for a stored (k×m), b stored (k×n).
func (w *Workspace) GemmTransA(dst, a, b []float32, k, m, n int) {
	w.gemmRange(dst, a, b, m, n, k, 0, m, true, false, false, nil)
}

// GemmTransB computes dst(m×k) = a(m×n)·bᵀ for b stored (k×n).
func (w *Workspace) GemmTransB(dst, a, b []float32, m, n, k int) {
	w.gemmRange(dst, a, b, m, k, n, 0, m, false, true, false, nil)
}

// GemmTransBAccum computes dst(m×k) += a(m×n)·bᵀ for b stored (k×n).
func (w *Workspace) GemmTransBAccum(dst, a, b []float32, m, n, k int) {
	w.gemmRange(dst, a, b, m, k, n, 0, m, false, true, true, nil)
}
