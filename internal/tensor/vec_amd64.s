#include "textflag.h"

// func vecAddAVX(dst, src *float32, n int)
//
// dst[i] += src[i] for i < n, 32 floats per main-loop iteration (4 YMM
// pairs), then 8 at a time. n is a multiple of 8 (the Go wrapper handles
// the scalar tail), but the loops are guarded so any n is safe.
TEXT ·vecAddAVX(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

add32:
	CMPQ CX, $32
	JLT  add8
	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
	VMOVUPS 64(DI), Y2
	VMOVUPS 96(DI), Y3
	VMOVUPS (SI), Y4
	VMOVUPS 32(SI), Y5
	VMOVUPS 64(SI), Y6
	VMOVUPS 96(SI), Y7
	VADDPS  Y4, Y0, Y0
	VADDPS  Y5, Y1, Y1
	VADDPS  Y6, Y2, Y2
	VADDPS  Y7, Y3, Y3
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, 64(DI)
	VMOVUPS Y3, 96(DI)
	ADDQ    $128, DI
	ADDQ    $128, SI
	SUBQ    $32, CX
	JMP     add32

add8:
	CMPQ CX, $8
	JLT  adddone
	VMOVUPS (DI), Y0
	VMOVUPS (SI), Y4
	VADDPS  Y4, Y0, Y0
	VMOVUPS Y0, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	SUBQ    $8, CX
	JMP     add8

adddone:
	VZEROUPPER
	RET

// func vecMinAVX(dst, src *float32, n int)
//
// dst[i] = min(dst[i], src[i]) for i < n. VMINPS with src as the first
// source returns the second source (dst) on ties and NaNs, matching the
// scalar "replace only when src < dst" convention.
TEXT ·vecMinAVX(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX

min32:
	CMPQ CX, $32
	JLT  min8
	VMOVUPS (DI), Y0
	VMOVUPS 32(DI), Y1
	VMOVUPS 64(DI), Y2
	VMOVUPS 96(DI), Y3
	VMOVUPS (SI), Y4
	VMOVUPS 32(SI), Y5
	VMOVUPS 64(SI), Y6
	VMOVUPS 96(SI), Y7
	VMINPS  Y0, Y4, Y0
	VMINPS  Y1, Y5, Y1
	VMINPS  Y2, Y6, Y2
	VMINPS  Y3, Y7, Y3
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, 64(DI)
	VMOVUPS Y3, 96(DI)
	ADDQ    $128, DI
	ADDQ    $128, SI
	SUBQ    $32, CX
	JMP     min32

min8:
	CMPQ CX, $8
	JLT  mindone
	VMOVUPS (DI), Y0
	VMOVUPS (SI), Y4
	VMINPS  Y0, Y4, Y0
	VMOVUPS Y0, (DI)
	ADDQ    $32, DI
	ADDQ    $32, SI
	SUBQ    $8, CX
	JMP     min8

mindone:
	VZEROUPPER
	RET
