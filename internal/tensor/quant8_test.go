package tensor

import (
	"math"
	"testing"
)

// TestGemmMicroS8AsmMatchesGeneric drives the dispatching kernel against
// the pure-Go reference on random u7 activations and s8 weights. On
// amd64 with AVX2 this pins the assembly tile; elsewhere it degenerates
// to generic-vs-generic and passes trivially.
func TestGemmMicroS8AsmMatchesGeneric(t *testing.T) {
	rng := NewRNG(123)
	for _, kq := range []int{1, 2, 7, 36, 64} {
		ap := make([]int8, kq*gemmMR8*4)
		bp := make([]uint8, kq*gemmNR8*4)
		for i := range ap {
			ap[i] = int8(rng.Intn(255) - 127)
		}
		for i := range bp {
			bp[i] = uint8(rng.Intn(128))
		}
		var got, want [gemmMR8 * gemmNR8]int32
		gemmMicroS8(ap, bp, kq, &got)
		gemmMicroS8Generic(ap, bp, kq, &want)
		if got != want {
			t.Fatalf("kq=%d: dispatched kernel disagrees with generic reference\n got %v\nwant %v", kq, got, want)
		}
	}
}

// TestQuantizeU7RoundTrip is the round-trip property: for any input, the
// quantize→dequantize error per element is at most half a quantization
// step, and exact zeros survive the trip exactly.
func TestQuantizeU7RoundTrip(t *testing.T) {
	rng := NewRNG(9)
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(500)
		src := make([]float32, n)
		lo := rng.Float32()*4 - 2
		hi := lo + rng.Float32()*4
		for i := range src {
			src[i] = lo + rng.Float32()*(hi-lo)
		}
		// Sprinkle exact zeros: padding must dequantize to 0.
		for i := 0; i < n; i += 7 {
			src[i] = 0
		}
		checkRoundTrip(t, src)
	}
}

func checkRoundTrip(t *testing.T, src []float32) {
	t.Helper()
	q := make([]uint8, len(src))
	scale, zp := QuantizeU7(q, src)
	if zp < 0 || zp > 127 {
		t.Fatalf("zero point %d outside [0,127]", zp)
	}
	back := make([]float32, len(src))
	DequantizeU7(back, q, scale, zp)
	// Half-step tolerance, plus a ulp of slack for the float arithmetic.
	tol := float64(scale)*0.5 + 1e-6
	for i, v := range src {
		if err := math.Abs(float64(back[i] - v)); err > tol {
			t.Fatalf("element %d: %v -> %d -> %v, error %v exceeds half-step %v", i, v, q[i], back[i], err, tol)
		}
		if v == 0 && back[i] != 0 {
			// zp is the rounded image of 0; it must map back exactly when
			// 0 is within the represented range (it always is, by
			// construction of QuantizeU7).
			if math.Abs(float64(back[i])) > 1e-6 {
				t.Fatalf("exact zero dequantized to %v", back[i])
			}
		}
	}
}

// FuzzQuantizeU7RoundTrip fuzzes the round-trip property over arbitrary
// 4-float payloads, including NaN-free extremes.
func FuzzQuantizeU7RoundTrip(f *testing.F) {
	f.Add(float32(0), float32(0), float32(0), float32(0))
	f.Add(float32(-1), float32(1), float32(0.5), float32(-0.25))
	f.Add(float32(1e-30), float32(-1e-30), float32(255), float32(-255))
	f.Add(float32(1e8), float32(-1e8), float32(3.14), float32(0))
	f.Fuzz(func(t *testing.T, a, b, c, d float32) {
		src := []float32{a, b, c, d}
		for _, v := range src {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Skip("quantization contract excludes NaN/Inf inputs")
			}
		}
		q := make([]uint8, 4)
		scale, zp := QuantizeU7(q, src)
		if scale <= 0 || math.IsInf(float64(scale), 0) || math.IsNaN(float64(scale)) {
			t.Fatalf("invalid scale %v for input %v", scale, src)
		}
		if zp < 0 || zp > 127 {
			t.Fatalf("zero point %d outside [0,127] for input %v", zp, src)
		}
		back := make([]float32, 4)
		DequantizeU7(back, q, scale, zp)
		// Rounding the range endpoints can cost up to one full step.
		tol := float64(scale) * 1.001
		for i, v := range src {
			if err := math.Abs(float64(back[i] - v)); err > tol && !(err <= tol*1.01) {
				t.Fatalf("element %d: %v -> %d -> %v, error %v exceeds step %v", i, v, q[i], back[i], err, tol)
			}
		}
	})
}

// TestConvGemmS8Accuracy runs the int8 conv against the float32 reference
// and bounds the error by the quantization budget: each output element's
// error should be within a few quantization steps of the operands.
func TestConvGemmS8Accuracy(t *testing.T) {
	rng := NewRNG(17)
	outC, c, h, wd := 16, 16, 24, 24
	kh, kw, stride, pad := 3, 3, 1, 1
	k := c * kh * kw
	w := New(outC, k)
	w.FillUniform(rng, -0.3, 0.3)
	bias := New(outC)
	bias.FillUniform(rng, -0.1, 0.1)
	src := New(c, h, wd)
	src.FillUniform(rng, -1, 1)
	n := h * wd

	want := make([]float32, outC*n)
	convRef(want, w.Data(), src.Data(), outC, c, h, wd, kh, kw, stride, pad, bias.Data(), true)

	pa := PackA8(w.Data(), outC, k)
	srcQ := make([]uint8, c*h*wd)
	scaleX, zp := QuantizeU7(srcQ, src.Data())
	got := make([]float32, outC*n)
	ws := NewWorkspace()
	ws.ConvGemmS8(got, pa, srcQ, scaleX, zp, c, h, wd, kh, kw, stride, pad, bias.Data(), true)

	// Error budget: each product w·x carries error ≤ |w|·sX/2 + |x|·sW/2
	// (half a quantization step per factor, to first order); the k-term
	// accumulation is bounded by the sum of those.
	var maxSW, maxW, maxX float32
	for _, s := range pa.Scales {
		if s > maxSW {
			maxSW = s
		}
	}
	for _, v := range w.Data() {
		if av := float32(math.Abs(float64(v))); av > maxW {
			maxW = av
		}
	}
	for _, v := range src.Data() {
		if av := float32(math.Abs(float64(v))); av > maxX {
			maxX = av
		}
	}
	bound := float64(k) * (float64(maxW)*float64(scaleX)/2 + float64(maxX)*float64(maxSW)/2 + float64(scaleX)*float64(maxSW)/4)
	var worst float64
	for i := range want {
		if err := math.Abs(float64(got[i] - want[i])); err > worst {
			worst = err
		}
	}
	if worst > bound {
		t.Fatalf("int8 conv worst-case error %v exceeds bound %v", worst, bound)
	}
	// And the signal must actually correlate: relative RMS error small.
	var num, den float64
	for i := range want {
		d := float64(got[i] - want[i])
		num += d * d
		den += float64(want[i]) * float64(want[i])
	}
	if den == 0 {
		t.Fatal("degenerate reference output")
	}
	if rel := math.Sqrt(num / den); rel > 0.05 {
		t.Fatalf("int8 conv relative RMS error %v > 5%%", rel)
	}
}

// TestConvGemmS8ZeroPadding checks that the zero-padding ring contributes
// exactly zero after dequantization even with a nonzero activation zero
// point: an all-zero input with zero bias must produce an all-zero
// output regardless of padding.
func TestConvGemmS8ZeroPadding(t *testing.T) {
	rng := NewRNG(3)
	outC, c, h, wd := 4, 2, 8, 8
	k := c * 9
	w := New(outC, k)
	w.FillUniform(rng, -1, 1)
	src := make([]float32, c*h*wd) // all zeros
	pa := PackA8(w.Data(), outC, k)
	srcQ := make([]uint8, len(src))
	scaleX, zp := QuantizeU7(srcQ, src)
	got := make([]float32, outC*h*wd)
	for i := range got {
		got[i] = 42 // poison
	}
	ws := NewWorkspace()
	ws.ConvGemmS8(got, pa, srcQ, scaleX, zp, c, h, wd, 3, 3, 1, 1, nil, false)
	for i, v := range got {
		if v != 0 {
			t.Fatalf("output[%d] = %v, want exact 0 for all-zero input", i, v)
		}
	}
}
