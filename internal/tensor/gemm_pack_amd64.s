#include "textflag.h"

// func packRows16Asm(dst, src *float32, kc, kw, kh, kx0, ky0, dRow, dPlane int)
//
// Copies kc unconditional B-panel rows of 16 float32 each straight out
// of the zero-padded input plane (see packBIm2col). src points at the
// first row's first element; the source then advances by one element per
// row (next kx tap), by dRow elements instead when kx wraps to the next
// ky tap, plus dPlane further elements when ky wraps to the next
// channel. dst advances 16 elements per row. Two YMM loads/stores per
// row replace the clipped scalar filler on the all-interior fast path.
TEXT ·packRows16Asm(SB), NOSPLIT, $0-72
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ kc+16(FP), CX
	MOVQ kw+24(FP), R8
	MOVQ kh+32(FP), R9
	MOVQ kx0+40(FP), R12
	MOVQ ky0+48(FP), R13
	MOVQ dRow+56(FP), R10
	MOVQ dPlane+64(FP), R11
	SHLQ $2, R10 // element deltas to byte deltas
	SHLQ $2, R11

loop:
	VMOVUPS (SI), Y0
	VMOVUPS 32(SI), Y1
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	ADDQ    $64, DI
	INCQ    R12
	CMPQ    R12, R8
	JNE     kxstep
	XORQ    R12, R12
	ADDQ    R10, SI
	INCQ    R13
	CMPQ    R13, R9
	JNE     next
	XORQ    R13, R13
	ADDQ    R11, SI
	JMP     next

kxstep:
	ADDQ $4, SI

next:
	DECQ CX
	JNE  loop
	VZEROUPPER
	RET
