package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHalfKnownValues(t *testing.T) {
	cases := []struct {
		f float32
		h uint16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},            // max finite half
		{0.00006103515625, 0x0400}, // min normal half
		{float32(math.Inf(1)), 0x7c00},
		{float32(math.Inf(-1)), 0xfc00},
	}
	for _, c := range cases {
		if got := Float32ToHalf(c.f); got != c.h {
			t.Errorf("Float32ToHalf(%g) = %#04x, want %#04x", c.f, got, c.h)
		}
		if back := HalfToFloat32(c.h); back != c.f {
			t.Errorf("HalfToFloat32(%#04x) = %g, want %g", c.h, back, c.f)
		}
	}
}

func TestHalfOverflowToInf(t *testing.T) {
	if got := HalfToFloat32(Float32ToHalf(1e6)); !math.IsInf(float64(got), 1) {
		t.Fatalf("1e6 should overflow to +Inf, got %g", got)
	}
	if got := HalfToFloat32(Float32ToHalf(-1e6)); !math.IsInf(float64(got), -1) {
		t.Fatalf("-1e6 should overflow to -Inf, got %g", got)
	}
}

func TestHalfNaN(t *testing.T) {
	nan := float32(math.NaN())
	if got := HalfToFloat32(Float32ToHalf(nan)); !math.IsNaN(float64(got)) {
		t.Fatalf("NaN should survive round trip, got %g", got)
	}
}

func TestHalfSubnormals(t *testing.T) {
	// Smallest positive half subnormal is 2^-24 ≈ 5.96e-8.
	tiny := float32(math.Ldexp(1, -24))
	h := Float32ToHalf(tiny)
	if h != 0x0001 {
		t.Fatalf("2^-24 should map to the smallest subnormal, got %#04x", h)
	}
	if back := HalfToFloat32(h); back != tiny {
		t.Fatalf("subnormal round trip: %g vs %g", back, tiny)
	}
	// Below half the smallest subnormal: flush to zero.
	if Float32ToHalf(1e-9) != 0 {
		t.Fatal("1e-9 should underflow to +0")
	}
}

// Property: round trip is exact for values representable in half, and
// within 2^-11 relative error for normal-range values.
func TestQuickHalfRoundTripError(t *testing.T) {
	f := func(raw float32) bool {
		v := raw
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return true
		}
		// Clamp to the half normal range.
		if v > 60000 {
			v = 60000
		} else if v < -60000 {
			v = -60000
		}
		if v != 0 && math.Abs(float64(v)) < 6.2e-5 {
			v = 6.2e-5 // stay in normal range for the tight bound
		}
		back := HalfToFloat32(Float32ToHalf(v))
		relErr := math.Abs(float64(back-v)) / math.Max(math.Abs(float64(v)), 1e-30)
		return relErr <= 1.0/2048+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: half round trip is idempotent (quantize twice == once).
func TestQuickHalfIdempotent(t *testing.T) {
	f := func(raw float32) bool {
		if math.IsNaN(float64(raw)) {
			return true
		}
		once := HalfToFloat32(Float32ToHalf(raw))
		twice := HalfToFloat32(Float32ToHalf(once))
		return once == twice || (math.IsNaN(float64(once)) && math.IsNaN(float64(twice)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeHalfSlice(t *testing.T) {
	s := []float32{1.0000001, 0.333333, -2.718281}
	orig := append([]float32(nil), s...)
	QuantizeHalf(s)
	for i := range s {
		if math.Abs(float64(s[i]-orig[i])) > math.Abs(float64(orig[i]))/1024 {
			t.Fatalf("element %d: %g too far from %g", i, s[i], orig[i])
		}
	}
	// Quantized values are exactly representable: re-quantizing is a no-op.
	again := append([]float32(nil), s...)
	QuantizeHalf(again)
	for i := range s {
		if again[i] != s[i] {
			t.Fatal("quantization not idempotent")
		}
	}
}
