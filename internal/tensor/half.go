package tensor

import "math"

// IEEE 754 half-precision conversion, used by the gradient-compression
// path: Horovod's fp16 compression halves every allreduce payload at the
// cost of quantizing gradients to 11 significand bits.

// Float32ToHalf converts a float32 to IEEE 754 binary16 bits with
// round-to-nearest-even, handling subnormals, overflow to infinity, and
// NaN propagation.
func Float32ToHalf(f float32) uint16 {
	bits := math.Float32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127 + 15
	mant := bits & 0x7fffff

	switch {
	case exp >= 0x1f:
		// Overflow or inf/NaN.
		if int32(bits>>23&0xff) == 0xff {
			if mant != 0 {
				return sign | 0x7e00 // NaN (quiet)
			}
			return sign | 0x7c00 // Inf
		}
		return sign | 0x7c00 // overflow → Inf
	case exp <= 0:
		// Subnormal or underflow to zero.
		if exp < -10 {
			return sign
		}
		// Add the implicit leading 1, then shift into subnormal position.
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint16(mant >> shift)
		// Round to nearest even.
		rem := mant & ((1 << shift) - 1)
		halfway := uint32(1) << (shift - 1)
		if rem > halfway || (rem == halfway && half&1 == 1) {
			half++
		}
		return sign | half
	default:
		half := sign | uint16(exp)<<10 | uint16(mant>>13)
		// Round to nearest even on the 13 dropped bits.
		rem := mant & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && half&1 == 1) {
			half++
		}
		return half
	}
}

// HalfToFloat32 converts IEEE 754 binary16 bits to float32.
func HalfToFloat32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)

	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign) // ±0
		}
		// Subnormal: normalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 0x1f:
		if mant == 0 {
			return math.Float32frombits(sign | 0x7f800000) // ±Inf
		}
		return math.Float32frombits(sign | 0x7fc00000) // NaN
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}

// QuantizeHalf rounds every element of s through fp16 in place —
// numerically identical to compressing to half precision for transmission
// and decompressing on arrival.
func QuantizeHalf(s []float32) {
	for i, v := range s {
		s[i] = HalfToFloat32(Float32ToHalf(v))
	}
}

// HalfWords returns the number of float32 wire words needed to carry n
// fp16-packed values (two halves per word, the tail word half-filled).
func HalfWords(n int) int { return (n + 1) / 2 }

// PackHalf compresses src into dst as packed IEEE 754 binary16 pairs:
// word i carries halves 2i (low 16 bits) and 2i+1 (high 16 bits), bit-cast
// into float32 so the payload rides the existing float32 transport. dst
// must have HalfWords(len(src)) elements; an odd tail leaves the high half
// of the last word zero. Values are rounded to nearest even exactly as
// QuantizeHalf does, so UnpackHalf(PackHalf(x)) == QuantizeHalf(x).
func PackHalf(dst, src []float32) {
	if len(dst) != HalfWords(len(src)) {
		panic("tensor: PackHalf dst must have HalfWords(len(src)) elements")
	}
	n := len(src) &^ 1
	for i := 0; i < n; i += 2 {
		w := uint32(Float32ToHalf(src[i])) | uint32(Float32ToHalf(src[i+1]))<<16
		dst[i>>1] = math.Float32frombits(w)
	}
	if len(src)&1 == 1 {
		dst[len(src)>>1] = math.Float32frombits(uint32(Float32ToHalf(src[len(src)-1])))
	}
}

// UnpackHalf decompresses a PackHalf payload: dst receives len(dst)
// decoded values, so callers recover odd-length buffers by sizing dst.
// src must have at least HalfWords(len(dst)) elements.
func UnpackHalf(dst, src []float32) {
	if len(src) < HalfWords(len(dst)) {
		panic("tensor: UnpackHalf src shorter than HalfWords(len(dst))")
	}
	n := len(dst) &^ 1
	for i := 0; i < n; i += 2 {
		w := math.Float32bits(src[i>>1])
		dst[i] = HalfToFloat32(uint16(w))
		dst[i+1] = HalfToFloat32(uint16(w >> 16))
	}
	if len(dst)&1 == 1 {
		dst[len(dst)-1] = HalfToFloat32(uint16(math.Float32bits(src[len(dst)>>1])))
	}
}
