package tensor

import (
	"bytes"
	"encoding/gob"
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 || x.Rank() != 3 {
		t.Fatalf("got len=%d rank=%d", x.Len(), x.Rank())
	}
	for i, v := range x.Data() {
		if v != 0 {
			t.Fatalf("element %d = %g, want 0", i, v)
		}
	}
}

func TestFromSliceAndIndexing(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	if x.At(0, 0) != 1 || x.At(0, 2) != 3 || x.At(1, 0) != 4 || x.At(1, 2) != 6 {
		t.Fatalf("row-major indexing broken: %v", x.Data())
	}
	x.Set(42, 1, 1)
	if x.At(1, 1) != 42 {
		t.Fatal("Set did not store value")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestInvalidShapePanics(t *testing.T) {
	for _, shape := range [][]int{{}, {0}, {-1, 3}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("shape %v: expected panic", shape)
				}
			}()
			New(shape...)
		}()
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y := x.Reshape(4)
	y.Set(99, 0)
	if x.At(0, 0) != 99 {
		t.Fatal("Reshape should share storage")
	}
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := x.Clone()
	y.Set(5, 0)
	if x.At(0) != 1 {
		t.Fatal("Clone should not share storage")
	}
}

func TestArithmetic(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	a.Add(b)
	if a.At(0) != 5 || a.At(2) != 9 {
		t.Fatalf("Add: %v", a.Data())
	}
	a.Sub(b)
	if a.At(0) != 1 || a.At(2) != 3 {
		t.Fatalf("Sub: %v", a.Data())
	}
	a.Mul(b)
	if a.At(1) != 10 {
		t.Fatalf("Mul: %v", a.Data())
	}
	a.Scale(0.5)
	if a.At(1) != 5 {
		t.Fatalf("Scale: %v", a.Data())
	}
}

func TestAddScaled(t *testing.T) {
	a := FromSlice([]float32{1, 1}, 2)
	b := FromSlice([]float32{2, 4}, 2)
	a.AddScaled(0.5, b)
	if a.At(0) != 2 || a.At(1) != 3 {
		t.Fatalf("AddScaled: %v", a.Data())
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float32{-1, 2, -3, 4}, 4)
	if x.Sum() != 2 {
		t.Errorf("Sum = %g", x.Sum())
	}
	if x.Mean() != 0.5 {
		t.Errorf("Mean = %g", x.Mean())
	}
	if x.AbsSum() != 10 {
		t.Errorf("AbsSum = %g", x.AbsSum())
	}
	if x.SqSum() != 30 {
		t.Errorf("SqSum = %g", x.SqSum())
	}
	if x.Max() != 4 || x.Min() != -3 {
		t.Errorf("Max/Min = %g/%g", x.Max(), x.Min())
	}
	if x.ArgMax() != 3 {
		t.Errorf("ArgMax = %d", x.ArgMax())
	}
}

func TestClampApply(t *testing.T) {
	x := FromSlice([]float32{-2, 0.5, 3}, 3)
	x.Clamp(0, 1)
	if x.At(0) != 0 || x.At(1) != 0.5 || x.At(2) != 1 {
		t.Fatalf("Clamp: %v", x.Data())
	}
	x.Apply(func(v float32) float32 { return v * 2 })
	if x.At(2) != 2 {
		t.Fatalf("Apply: %v", x.Data())
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	dst := New(2, 2)
	MatMul(dst, a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if dst.Data()[i] != w {
			t.Fatalf("MatMul[%d] = %g, want %g", i, dst.Data()[i], w)
		}
	}
}

// matMulNaive is a reference implementation used to check the optimized
// kernels, including the transposed variants.
func matMulNaive(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	dst := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			dst.Set(s, i, j)
		}
	}
	return dst
}

func randTensor(r *RNG, shape ...int) *Tensor {
	t := New(shape...)
	t.FillUniform(r, -1, 1)
	return t
}

func TestMatMulAgainstNaive(t *testing.T) {
	r := NewRNG(7)
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 2}, {17, 9, 23}, {32, 64, 16}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randTensor(r, m, k), randTensor(r, k, n)
		got := New(m, n)
		MatMul(got, a, b)
		want := matMulNaive(a, b)
		for i := range got.Data() {
			if !almostEqual(float64(got.Data()[i]), float64(want.Data()[i]), 1e-4) {
				t.Fatalf("dims %v: element %d: got %g want %g", dims, i, got.Data()[i], want.Data()[i])
			}
		}
	}
}

func transpose(a *Tensor) *Tensor {
	m, n := a.Dim(0), a.Dim(1)
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Set(a.At(i, j), j, i)
		}
	}
	return out
}

func TestMatMulTransA(t *testing.T) {
	r := NewRNG(11)
	a := randTensor(r, 7, 5) // stored (k=7, m=5)
	b := randTensor(r, 7, 4)
	got := New(5, 4)
	MatMulTransA(got, a, b)
	want := matMulNaive(transpose(a), b)
	for i := range got.Data() {
		if !almostEqual(float64(got.Data()[i]), float64(want.Data()[i]), 1e-4) {
			t.Fatalf("element %d: got %g want %g", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestMatMulTransB(t *testing.T) {
	r := NewRNG(13)
	a := randTensor(r, 6, 5)
	b := randTensor(r, 3, 5) // stored (k=3, n=5)
	got := New(6, 3)
	MatMulTransB(got, a, b)
	want := matMulNaive(a, transpose(b))
	for i := range got.Data() {
		if !almostEqual(float64(got.Data()[i]), float64(want.Data()[i]), 1e-4) {
			t.Fatalf("element %d: got %g want %g", i, got.Data()[i], want.Data()[i])
		}
	}
}

func TestMatMulAccum(t *testing.T) {
	r := NewRNG(17)
	a, b := randTensor(r, 4, 3), randTensor(r, 3, 4)
	dst := New(4, 4)
	dst.Fill(1)
	MatMulAccum(dst, a, b)
	want := matMulNaive(a, b)
	for i := range dst.Data() {
		if !almostEqual(float64(dst.Data()[i]), float64(want.Data()[i]+1), 1e-4) {
			t.Fatalf("element %d: got %g want %g", i, dst.Data()[i], want.Data()[i]+1)
		}
	}
}

func TestSetMaxWorkers(t *testing.T) {
	prev := SetMaxWorkers(1)
	defer SetMaxWorkers(prev)
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{1, 0, 0, 1}, 2, 2)
	dst := New(2, 2)
	MatMul(dst, a, b) // must still be correct single-threaded
	for i, w := range []float32{1, 2, 3, 4} {
		if dst.Data()[i] != w {
			t.Fatalf("single-worker MatMul wrong: %v", dst.Data())
		}
	}
	if SetMaxWorkers(0); maxWorkers < 1 {
		t.Fatal("SetMaxWorkers(0) should reset to >=1")
	}
}

// Property: (a+b) summed equals sum(a)+sum(b) for any float32 vectors.
func TestQuickAddSumLinearity(t *testing.T) {
	f := func(av, bv []float32) bool {
		n := len(av)
		if len(bv) < n {
			n = len(bv)
		}
		if n == 0 {
			return true
		}
		// Clean non-finite values that quick may generate.
		clean := func(s []float32) []float32 {
			out := make([]float32, n)
			for i := 0; i < n; i++ {
				v := s[i]
				if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
					v = 1
				}
				// Bound magnitude so float32 addition stays accurate.
				if v > 1e3 {
					v = 1e3
				} else if v < -1e3 {
					v = -1e3
				}
				out[i] = v
			}
			return out
		}
		a := FromSlice(clean(av), n)
		b := FromSlice(clean(bv), n)
		sa, sb := a.Sum(), b.Sum()
		a.Add(b)
		return almostEqual(a.Sum(), sa+sb, 1e-2*float64(n)+1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Scale(s) multiplies AbsSum by |s|.
func TestQuickScaleNorm(t *testing.T) {
	f := func(vals []float32, s float32) bool {
		if len(vals) == 0 {
			return true
		}
		if math.IsNaN(float64(s)) || math.IsInf(float64(s), 0) || s > 10 || s < -10 {
			s = 2
		}
		data := make([]float32, len(vals))
		for i, v := range vals {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) || v > 1e3 || v < -1e3 {
				v = 1
			}
			data[i] = v
		}
		x := FromSlice(data, len(data))
		before := x.AbsSum()
		x.Scale(s)
		return almostEqual(x.AbsSum(), math.Abs(float64(s))*before, 1e-2*before+1e-2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	if NewRNG(0).Uint64() == 0 {
		t.Fatal("zero seed should be remapped")
	}
}

func TestRNGUniformRange(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of range: %g", v)
		}
		n := r.Intn(10)
		if n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %d", n)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(3)
	x := New(20000)
	x.FillNormal(r, 2, 3)
	if !almostEqual(x.Mean(), 2, 0.1) {
		t.Errorf("mean = %g, want ≈2", x.Mean())
	}
	varEst := x.SqSum()/float64(x.Len()) - x.Mean()*x.Mean()
	if !almostEqual(varEst, 9, 0.5) {
		t.Errorf("variance = %g, want ≈9", varEst)
	}
}

func TestKaimingInitStd(t *testing.T) {
	r := NewRNG(5)
	x := New(30000)
	x.KaimingInit(r, 50)
	wantStd := math.Sqrt(2.0 / 50.0)
	gotStd := math.Sqrt(x.SqSum() / float64(x.Len()))
	if !almostEqual(gotStd, wantStd, wantStd*0.05) {
		t.Errorf("std = %g, want ≈%g", gotStd, wantStd)
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: im2col is the identity (reshaped).
	src := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	dst := New(1, 4)
	Im2Col(dst, src, 1, 1, 1, 0)
	for i, w := range []float32{1, 2, 3, 4} {
		if dst.Data()[i] != w {
			t.Fatalf("Im2Col 1x1: %v", dst.Data())
		}
	}
}

func TestIm2ColKnownValues(t *testing.T) {
	// 3x3 input, 2x2 kernel, stride 1, no pad → 2x2 output positions.
	src := FromSlice([]float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	dst := New(4, 4)
	Im2Col(dst, src, 2, 2, 1, 0)
	// Row r = kernel offset (ky,kx); column = output position (oy,ox).
	want := [][]float32{
		{1, 2, 4, 5}, // ky=0,kx=0
		{2, 3, 5, 6}, // ky=0,kx=1
		{4, 5, 7, 8}, // ky=1,kx=0
		{5, 6, 8, 9}, // ky=1,kx=1
	}
	for r, row := range want {
		for c, w := range row {
			if dst.At(r, c) != w {
				t.Fatalf("Im2Col[%d,%d] = %g, want %g", r, c, dst.At(r, c), w)
			}
		}
	}
}

func TestIm2ColPadding(t *testing.T) {
	src := FromSlice([]float32{5}, 1, 1, 1)
	// 3x3 kernel with pad 1 → one output position, only center sees the pixel.
	dst := New(9, 1)
	Im2Col(dst, src, 3, 3, 1, 1)
	for i := 0; i < 9; i++ {
		want := float32(0)
		if i == 4 {
			want = 5
		}
		if dst.At(i, 0) != want {
			t.Fatalf("pad: row %d = %g, want %g", i, dst.At(i, 0), want)
		}
	}
}

// Property: Col2Im is the adjoint of Im2Col: <Im2Col(x), y> == <x, Col2Im(y)>.
func TestCol2ImAdjoint(t *testing.T) {
	r := NewRNG(23)
	for _, cfg := range []struct{ c, h, w, kh, kw, stride, pad int }{
		{1, 4, 4, 3, 3, 1, 1},
		{2, 5, 6, 3, 3, 1, 1},
		{3, 6, 6, 2, 2, 2, 0},
		{1, 7, 5, 3, 3, 2, 1},
	} {
		outH := (cfg.h+2*cfg.pad-cfg.kh)/cfg.stride + 1
		outW := (cfg.w+2*cfg.pad-cfg.kw)/cfg.stride + 1
		rows := cfg.c * cfg.kh * cfg.kw
		cols := outH * outW
		x := randTensor(r, cfg.c, cfg.h, cfg.w)
		y := randTensor(r, rows, cols)
		cx := New(rows, cols)
		Im2Col(cx, x, cfg.kh, cfg.kw, cfg.stride, cfg.pad)
		xy := New(cfg.c, cfg.h, cfg.w)
		Col2Im(xy, y, cfg.kh, cfg.kw, cfg.stride, cfg.pad)
		var lhs, rhs float64
		for i := range cx.Data() {
			lhs += float64(cx.Data()[i]) * float64(y.Data()[i])
		}
		for i := range x.Data() {
			rhs += float64(x.Data()[i]) * float64(xy.Data()[i])
		}
		if !almostEqual(lhs, rhs, 1e-3*(math.Abs(lhs)+1)) {
			t.Fatalf("cfg %+v: adjoint mismatch: %g vs %g", cfg, lhs, rhs)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	r := NewRNG(31)
	x := randTensor(r, 3, 4, 5)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(x); err != nil {
		t.Fatal(err)
	}
	var y Tensor
	if err := gob.NewDecoder(&buf).Decode(&y); err != nil {
		t.Fatal(err)
	}
	if !x.SameShape(&y) {
		t.Fatalf("shape mismatch: %v vs %v", x.Shape(), y.Shape())
	}
	for i := range x.Data() {
		if x.Data()[i] != y.Data()[i] {
			t.Fatal("data mismatch after round trip")
		}
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	var y Tensor
	for _, data := range [][]byte{
		{},
		{1, 0, 0},
		{1, 0, 0, 0, 2, 0, 0, 0},         // shape [2] but no payload
		{1, 0, 0, 0, 0, 0, 0, 0},         // zero dim
		{255, 255, 255, 255, 0, 0, 0, 0}, // absurd rank
	} {
		if err := y.UnmarshalBinary(data); err == nil {
			t.Fatalf("expected error for %v", data)
		}
	}
}

func TestStringForms(t *testing.T) {
	small := FromSlice([]float32{1, 2}, 2)
	if got := small.String(); got == "" {
		t.Fatal("empty String for small tensor")
	}
	big := New(100)
	if got := big.String(); got == "" {
		t.Fatal("empty String for big tensor")
	}
}

func TestBytes(t *testing.T) {
	if New(10, 10).Bytes() != 400 {
		t.Fatal("Bytes should be 4 per element")
	}
}
