package tensor

// Im2Col unrolls the patches of a single image for convolution-as-matmul.
//
// src has shape (C, H, W); dst receives shape (C*kh*kw, outH*outW), where
// outH = (H + 2*pad - kh)/stride + 1 and likewise for outW. Out-of-bounds
// positions contribute zeros (zero padding).
func Im2Col(dst, src *Tensor, kh, kw, stride, pad int) {
	c, h, w := src.shape[0], src.shape[1], src.shape[2]
	rows := c * kh * kw
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	if dst.shape[0] != rows || dst.shape[1] != outH*outW {
		panic("tensor: Im2Col dst shape mismatch")
	}
	sd, dd := src.data, dst.data
	parallelFor(rows, 16, func(lo, hi int) {
		im2colRows(dd, sd, c, h, w, kh, kw, stride, pad, lo, hi)
	})
}

// Im2ColBuf is the slice-level Im2Col: src is a (c,h,w) image in row-major
// order and dst receives (c*kh*kw) × (outH*outW) columns. It runs serially
// on the calling goroutine — batch-parallel convolution calls it from
// per-sample workers that own the parallelism.
func Im2ColBuf(dst, src []float32, c, h, w, kh, kw, stride, pad int) {
	im2colRows(dst, src, c, h, w, kh, kw, stride, pad, 0, c*kh*kw)
}

// im2colRows fills rows [r0,r1) of the column matrix.
func im2colRows(dd, sd []float32, c, h, w, kh, kw, stride, pad, r0, r1 int) {
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	cols := outH * outW
	for r := r0; r < r1; r++ {
		ch := r / (kh * kw)
		rem := r % (kh * kw)
		ky := rem / kw
		kx := rem % kw
		plane := sd[ch*h*w : (ch+1)*h*w]
		drow := dd[r*cols : (r+1)*cols]
		idx := 0
		for oy := 0; oy < outH; oy++ {
			sy := oy*stride - pad + ky
			if sy < 0 || sy >= h {
				for ox := 0; ox < outW; ox++ {
					drow[idx] = 0
					idx++
				}
				continue
			}
			srow := plane[sy*w : (sy+1)*w]
			for ox := 0; ox < outW; ox++ {
				sx := ox*stride - pad + kx
				if sx < 0 || sx >= w {
					drow[idx] = 0
				} else {
					drow[idx] = srow[sx]
				}
				idx++
			}
		}
	}
}

// Col2Im scatters a column matrix back into an image, accumulating
// overlapping contributions — the adjoint of Im2Col, used in convolution
// backward passes. dst has shape (C, H, W) and is zeroed first.
func Col2Im(dst, src *Tensor, kh, kw, stride, pad int) {
	c, h, w := dst.shape[0], dst.shape[1], dst.shape[2]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	if src.shape[0] != c*kh*kw || src.shape[1] != outH*outW {
		panic("tensor: Col2Im src shape mismatch")
	}
	dst.Zero()
	sd, dd := src.data, dst.data
	// Parallelize over channels: every row of src with the same channel
	// writes to a disjoint plane of dst, so channel-level parallelism is
	// race-free.
	parallelFor(c, 1, func(clo, chi int) {
		col2imChannels(dd, sd, c, h, w, kh, kw, stride, pad, clo, chi)
	})
}

// Col2ImBuf is the slice-level Col2Im: it zeroes dst (a (c,h,w) image) and
// scatter-accumulates the (c*kh*kw) × (outH*outW) column matrix src into
// it, serially on the calling goroutine.
func Col2ImBuf(dst, src []float32, c, h, w, kh, kw, stride, pad int) {
	for i := range dst {
		dst[i] = 0
	}
	col2imChannels(dst, src, c, h, w, kh, kw, stride, pad, 0, c)
}

// col2imChannels scatters channels [clo,chi) of the column matrix into dst.
func col2imChannels(dd, sd []float32, c, h, w, kh, kw, stride, pad, clo, chi int) {
	_ = c
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	cols := outH * outW
	for ch := clo; ch < chi; ch++ {
		plane := dd[ch*h*w : (ch+1)*h*w]
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kw; kx++ {
				r := (ch*kh+ky)*kw + kx
				srow := sd[r*cols : (r+1)*cols]
				idx := 0
				for oy := 0; oy < outH; oy++ {
					sy := oy*stride - pad + ky
					if sy < 0 || sy >= h {
						idx += outW
						continue
					}
					drow := plane[sy*w : (sy+1)*w]
					for ox := 0; ox < outW; ox++ {
						sx := ox*stride - pad + kx
						if sx >= 0 && sx < w {
							drow[sx] += srow[idx]
						}
						idx++
					}
				}
			}
		}
	}
}
