package scaling

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/hvprof"
	"repro/internal/models"
	"repro/internal/perfmodel"
)

func TestRunBasic(t *testing.T) {
	r := Run(Options{Nodes: 1, Backend: collective.BackendMPIOpt, Steps: 3})
	if r.GPUs != 4 {
		t.Fatalf("GPUs %d", r.GPUs)
	}
	if r.ImagesPerSec <= 0 || r.StepSec <= 0 {
		t.Fatalf("no throughput: %+v", r)
	}
	if r.Messages == 0 || r.FusedBytes == 0 {
		t.Fatalf("no messages recorded: %+v", r)
	}
}

func TestRunDeterministic(t *testing.T) {
	a := Run(Options{Nodes: 2, Backend: collective.BackendMPI, Steps: 3, Seed: 5})
	b := Run(Options{Nodes: 2, Backend: collective.BackendMPI, Steps: 3, Seed: 5})
	if a.ImagesPerSec != b.ImagesPerSec || a.Messages != b.Messages {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestEfficiencyBounded(t *testing.T) {
	base := SingleGPUBaseline(0)
	if math.Abs(base-10.3) > 0.1 {
		t.Fatalf("baseline %g", base)
	}
	r := Run(Options{Nodes: 2, Backend: collective.BackendMPIOpt, Steps: 3})
	eff := Efficiency(r, base)
	if eff <= 0 || eff > 1.02 {
		t.Fatalf("efficiency %g out of range", eff)
	}
}

// TestOptBeatsDefaultAtScale verifies the paper's headline orderings at a
// mid scale (32 nodes = 128 GPUs): MPI-Opt > MPI-Reg ≥ MPI, and MPI-Opt ≥
// NCCL > MPI.
func TestOptBeatsDefaultAtScale(t *testing.T) {
	steps := 5
	mpi := Run(Options{Nodes: 32, Backend: collective.BackendMPI, Steps: steps})
	reg := Run(Options{Nodes: 32, Backend: collective.BackendMPIReg, Steps: steps})
	opt := Run(Options{Nodes: 32, Backend: collective.BackendMPIOpt, Steps: steps})
	nccl := Run(Options{Nodes: 32, Backend: collective.BackendNCCL, Steps: steps})

	if !(opt.ImagesPerSec > reg.ImagesPerSec && reg.ImagesPerSec > mpi.ImagesPerSec) {
		t.Fatalf("ordering violated: opt %g, reg %g, mpi %g",
			opt.ImagesPerSec, reg.ImagesPerSec, mpi.ImagesPerSec)
	}
	if !(nccl.ImagesPerSec > mpi.ImagesPerSec) {
		t.Fatalf("NCCL (%g) should beat default MPI (%g)", nccl.ImagesPerSec, mpi.ImagesPerSec)
	}
	if !(opt.ImagesPerSec >= nccl.ImagesPerSec*0.97) {
		t.Fatalf("MPI-Opt (%g) should be at least competitive with NCCL (%g)",
			opt.ImagesPerSec, nccl.ImagesPerSec)
	}
}

// TestPaperHeadlineNumbers runs the 512-GPU endpoints and checks the
// paper's quantitative claims as shapes with tolerance: efficiency below
// ~60% default vs above ~70% optimized, a ~1.26x speedup, and a ~90%+
// registration-cache hit rate.
func TestPaperHeadlineNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip("512-GPU simulation")
	}
	steps := 6
	base := SingleGPUBaseline(0)
	mpi := Run(Options{Nodes: 128, Backend: collective.BackendMPI, Steps: steps})
	opt := Run(Options{Nodes: 128, Backend: collective.BackendMPIOpt, Steps: steps})

	effMPI, effOpt := Efficiency(mpi, base), Efficiency(opt, base)
	if effMPI >= 0.62 || effMPI <= 0.45 {
		t.Fatalf("default efficiency %.1f%%, paper says below 60%%", 100*effMPI)
	}
	if effOpt <= 0.70 || effOpt >= 0.85 {
		t.Fatalf("optimized efficiency %.1f%%, paper says above 70%%", 100*effOpt)
	}
	gain := effOpt - effMPI
	if gain < 0.10 || gain > 0.25 {
		t.Fatalf("efficiency gain %.1f points, paper says 15.6", 100*gain)
	}
	speedup := opt.ImagesPerSec / mpi.ImagesPerSec
	if speedup < 1.15 || speedup > 1.45 {
		t.Fatalf("speedup %.2fx, paper says 1.26x", speedup)
	}
	if hr := opt.RegCacheHitRate(); hr < 0.85 {
		t.Fatalf("reg-cache hit rate %.1f%%, paper says 93%%", 100*hr)
	}
}

// TestRegCacheGain reproduces Fig. 11's shape: MPI-Reg ~5% faster than MPI
// on multi-node runs.
func TestRegCacheGain(t *testing.T) {
	mpi := Run(Options{Nodes: 16, Backend: collective.BackendMPI, Steps: 5})
	reg := Run(Options{Nodes: 16, Backend: collective.BackendMPIReg, Steps: 5})
	gain := reg.ImagesPerSec/mpi.ImagesPerSec - 1
	if gain < 0.01 || gain > 0.12 {
		t.Fatalf("reg-cache gain %.1f%%, paper says ~5.1%%", 100*gain)
	}
	if reg.RegCacheHits == 0 {
		t.Fatal("cache saw no hits")
	}
	if mpi.RegCacheHits != 0 || mpi.RegCacheMiss != 0 {
		t.Fatal("default MPI must not use the cache")
	}
}

// TestProfileBucketShape reproduces Table I's shape at 4 GPUs: large
// buckets improve ~50%, small buckets ~0, total ~45%.
func TestProfileBucketShape(t *testing.T) {
	run := func(b collective.Backend) hvprof.Report {
		prof := hvprof.New()
		Run(Options{Nodes: 1, Backend: b, Steps: 20, Prof: prof})
		return prof.Report()
	}
	def, opt := run(collective.BackendMPI), run(collective.BackendMPIOpt)
	rows := hvprof.Compare(def, opt, "allreduce")
	byBucket := map[string]hvprof.CompareRow{}
	for _, r := range rows {
		byBucket[r.Bucket] = r
	}
	if r, ok := byBucket["32 MB - 64 MB"]; !ok || r.ImprovementPercent < 40 || r.ImprovementPercent > 60 {
		t.Fatalf("32-64MB improvement %+v, paper says 49.7%%", r)
	}
	if r, ok := byBucket["16 MB - 32 MB"]; !ok || r.ImprovementPercent < 40 || r.ImprovementPercent > 62 {
		t.Fatalf("16-32MB improvement %+v, paper says 53.1%%", r)
	}
	if r, ok := byBucket["128 KB - 16 MB"]; ok && math.Abs(r.ImprovementPercent) > 15 {
		t.Fatalf("medium bucket should be ~0: %+v", r)
	}
	if r := byBucket["Total Time"]; r.ImprovementPercent < 35 || r.ImprovementPercent > 60 {
		t.Fatalf("total improvement %.1f%%, paper says 45.4%%", r.ImprovementPercent)
	}
}

func TestMessagesLandInExpectedBuckets(t *testing.T) {
	prof := hvprof.New()
	Run(Options{Nodes: 1, Backend: collective.BackendMPIOpt, Steps: 5, Prof: prof})
	rep := prof.Report()
	ar := rep.PerOp["allreduce"]
	if ar == nil {
		t.Fatal("no allreduce records")
	}
	// Negotiations populate the smallest bucket; fused gradients the
	// 1-16, 16-32 and 32-64 MB classes; nothing exceeds the 64 MB fusion
	// threshold.
	if ar[0].Count == 0 {
		t.Fatal("negotiation traffic missing from 1-128 KB bucket")
	}
	if ar[2].Count == 0 || ar[3].Count == 0 {
		t.Fatalf("large fused messages missing: %+v", ar)
	}
	if ar[4].Count != 0 {
		t.Fatalf("messages above the fusion threshold: %+v", ar[4])
	}
}

func TestSmallerModelFusesSmaller(t *testing.T) {
	prof := hvprof.New()
	Run(Options{
		Nodes: 1, Backend: collective.BackendMPIOpt, Steps: 3,
		Model: models.EDSRBaseline(), Prof: prof,
	})
	rep := prof.Report()
	ar := rep.PerOp["allreduce"]
	// EDSR-baseline has ~5 MB of gradients: nothing above 16 MB.
	if ar[2].Count != 0 || ar[3].Count != 0 || ar[4].Count != 0 {
		t.Fatalf("baseline model should not produce >16MB messages: %+v", ar)
	}
}

func TestSweepAndHelpers(t *testing.T) {
	res := Sweep(collective.BackendMPIOpt, []int{1, 2}, 3, nil)
	if len(res) != 2 || res[0].GPUs != 4 || res[1].GPUs != 8 {
		t.Fatalf("sweep results %+v", res)
	}
	if res[1].ImagesPerSec <= res[0].ImagesPerSec {
		t.Fatal("more GPUs should process more images/sec")
	}
	if s := SpeedupAt(res, res, 1); math.Abs(s-1) > 1e-12 {
		t.Fatalf("self-speedup %g", s)
	}
	if !math.IsNaN(SpeedupAt(res, res, 5)) {
		t.Fatal("out-of-range speedup should be NaN")
	}
	counts := PaperNodeCounts()
	if counts[0] != 1 || counts[len(counts)-1] != 128 {
		t.Fatalf("paper node counts %v", counts)
	}
}

// TestSimulatedEfficiencyWithinAnalyticBounds sandwiches the simulated
// efficiency between the zero-overlap analytic lower bound and perfect
// scaling: the DES may hide communication behind compute (raising
// efficiency above the bound) but may never beat linear scaling.
func TestSimulatedEfficiencyWithinAnalyticBounds(t *testing.T) {
	base := SingleGPUBaseline(0)
	msgs := []int64{10 << 20, 29 << 20, 61 << 20, 61 << 20} // the burst-fused messages
	for _, nodes := range []int{8, 32} {
		for _, b := range []collective.Backend{collective.BackendMPI, collective.BackendMPIOpt} {
			r := Run(Options{Nodes: nodes, Backend: b, Steps: 4})
			eff := Efficiency(r, base)
			lower := collective.AnalyticEfficiency(
				cluster.DefaultConfig(nodes), b, perfmodel.EDSRStepSec(4), msgs)
			if eff < lower*0.97 {
				t.Errorf("nodes=%d %v: simulated eff %.3f below analytic lower bound %.3f",
					nodes, b, eff, lower)
			}
			if eff > 1.02 {
				t.Errorf("nodes=%d %v: simulated eff %.3f beats linear scaling", nodes, b, eff)
			}
		}
	}
}

func TestFusionThresholdChangesMessageCount(t *testing.T) {
	small := Run(Options{Nodes: 1, Backend: collective.BackendMPIOpt, Steps: 3,
		FusionThresholdBytes: 8 << 20})
	big := Run(Options{Nodes: 1, Backend: collective.BackendMPIOpt, Steps: 3,
		FusionThresholdBytes: 64 << 20})
	if small.Messages <= big.Messages {
		t.Fatalf("smaller fusion buffer must produce more messages: %d vs %d",
			small.Messages, big.Messages)
	}
}
