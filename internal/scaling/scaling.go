// Package scaling runs the paper's distributed-training experiments on the
// simulated cluster: for a given backend (MPI, MPI-Reg, MPI-Opt, NCCL) and
// node count it simulates data-parallel EDSR training — per-rank compute
// processes emitting gradients through a Horovod-style engine whose fused
// allreduces execute on the discrete-event machine model — and reports
// throughput, scaling efficiency, and an hvprof-compatible communication
// profile.
package scaling

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/horovod"
	"repro/internal/models"
	"repro/internal/perfmodel"
	"repro/internal/simnet"
	"repro/internal/tensor"
)

// Options configures one simulated training run.
type Options struct {
	// Nodes on the simulated machine (4 GPUs each).
	Nodes int
	// Backend is the communication configuration under test.
	Backend collective.Backend
	// Steps to simulate (after WarmupSteps).
	Steps int
	// WarmupSteps are excluded from throughput (default 1).
	WarmupSteps int
	// Model selects the EDSR configuration (default: paper config).
	Model models.EDSRConfig
	// BatchPerGPU (default 4, the paper's choice). The paper's study is
	// weak scaling: the per-GPU batch is fixed and the global batch grows
	// with the GPU count.
	BatchPerGPU int
	// GlobalBatchSize, when nonzero, switches to strong scaling: the
	// global batch is fixed and each GPU processes
	// max(1, GlobalBatchSize/p) images per step, so per-step compute
	// shrinks with scale and communication dominates sooner — the
	// extension experiment the paper leaves open.
	GlobalBatchSize int
	// FusionThresholdBytes is HOROVOD_FUSION_THRESHOLD (default 64 MB).
	FusionThresholdBytes int64
	// CycleTimeSec is HOROVOD_CYCLE_TIME (the paper tunes it per scale to
	// maximize throughput; default 10 ms).
	CycleTimeSec float64
	// FP16Gradients halves every gradient payload (Horovod's fp16
	// compression) — the future-work lever that shrinks EDSR's messages,
	// sometimes below the large-message IPC threshold.
	FP16Gradients bool
	// Compression prices the gradient-compression variants of the real
	// communication path (internal/collective) on the cluster model:
	// fp16 halves wire payloads and pays pack/unpack kernel passes; topk
	// ships ~1/TopKRatio of each bucket as index+value payloads over a
	// sparse ring allgather. Unlike the coarse FP16Gradients knob (which
	// only halves the negotiated message sizes), these charge the
	// compression compute and reshape the traffic pattern.
	Compression collective.Compression
	// TopKRatio is the top-k sparsification ratio (default 32).
	TopKRatio int
	// JitterFrac is the relative stddev of per-rank compute time
	// (OS/driver noise); synchronous training pays the slowest rank.
	JitterFrac float64
	// Seed drives the jitter streams.
	Seed uint64
	// Cluster overrides the machine parameters (default: calibrated
	// Lassen-like DefaultConfig).
	Cluster *cluster.Config
	// Prof, when non-nil, receives every simulated collective.
	Prof collective.Profiler
	// Trace, when non-nil, receives activity spans (rank 0's collectives
	// plus compute phases) for timeline rendering.
	Trace collective.Tracer
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 1
	}
	if o.Steps == 0 {
		o.Steps = 10
	}
	if o.WarmupSteps == 0 {
		o.WarmupSteps = 1
	}
	if o.Model.NumBlocks == 0 {
		o.Model = models.EDSRPaper()
	}
	if o.BatchPerGPU == 0 {
		o.BatchPerGPU = perfmodel.EDSRBatchSize
	}
	if o.FusionThresholdBytes == 0 {
		o.FusionThresholdBytes = 64 << 20
	}
	if o.CycleTimeSec == 0 {
		o.CycleTimeSec = 0.010
	}
	if o.JitterFrac == 0 {
		o.JitterFrac = 0.015
	}
	if o.TopKRatio == 0 {
		o.TopKRatio = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Result summarizes one run.
type Result struct {
	GPUs         int
	Backend      collective.Backend
	ImagesPerSec float64
	StepSec      float64
	SimulatedSec float64
	RegCacheHits int64
	RegCacheMiss int64
	Messages     int
	FusedBytes   int64
	// WireBytes is the cumulative compressed wire payload of rank 0's
	// allreduces; equal to FusedBytes when no compression is configured.
	// FusedBytes/WireBytes is the run's wire-reduction factor.
	WireBytes int64
}

// RegCacheHitRate returns the registration-cache hit rate of the run.
func (r Result) RegCacheHitRate() float64 {
	total := r.RegCacheHits + r.RegCacheMiss
	if total == 0 {
		return 0
	}
	return float64(r.RegCacheHits) / float64(total)
}

// rankState is the data shared between one rank's compute and engine
// processes. The simulation kernel is single-threaded, so plain fields
// suffice.
type rankState struct {
	ready        []bool
	wantShutdown bool
	stepWG       *simnet.WaitGroup
}

// Run simulates one training configuration and returns its result.
func Run(opt Options) Result {
	opt = opt.withDefaults()
	sim := simnet.New()
	ccfg := cluster.DefaultConfig(opt.Nodes)
	if opt.Cluster != nil {
		ccfg = *opt.Cluster
		ccfg.Nodes = opt.Nodes
	}
	cl := cluster.New(sim, ccfg)
	group := collective.NewGroup(cl, opt.Backend, opt.Prof)
	group.Trace = opt.Trace
	p := cl.NumGPUs()

	layout := perfmodel.GradLayout(opt.Model)
	nt := len(layout)
	sizes := make([]int64, nt)
	// Engine-side registration order is submission order: reverse layout,
	// as the backward pass produces tail gradients first.
	revNames := make([]string, nt)
	for i := range layout {
		rev := layout[nt-1-i]
		sizes[i] = rev.Bytes()
		if opt.FP16Gradients {
			sizes[i] /= 2
		}
		revNames[i] = rev.Name
	}

	batchPerGPU := opt.BatchPerGPU
	if opt.GlobalBatchSize > 0 {
		batchPerGPU = opt.GlobalBatchSize / (opt.Nodes * cluster.DefaultConfig(1).GPUsPerNode)
		if batchPerGPU < 1 {
			batchPerGPU = 1
		}
	}
	stepSec := perfmodel.EDSRStepSec(batchPerGPU)
	fwd := stepSec * perfmodel.ForwardFraction
	bwd := stepSec - fwd
	bursts := perfmodel.BurstSchedule(layout)

	var measureStart, measureEnd simnet.Time
	var messages int
	var fusedBytes, wireBytes int64

	totalSteps := opt.Steps + opt.WarmupSteps
	states := make([]*rankState, p)
	for r := 0; r < p; r++ {
		states[r] = &rankState{ready: make([]bool, nt)}
	}

	for r := 0; r < p; r++ {
		r := r
		st := states[r]
		jrng := tensor.NewRNG(opt.Seed*1_000_003 + uint64(r)*97 + 11)

		// Compute process: initial parameter broadcast (step 2 of the
		// paper's Horovod recipe), then per-step forward, gradient
		// bursts, synchronization wait, optimizer update.
		sim.Spawn(fmt.Sprintf("compute.%d", r), func(pc *simnet.Proc) {
			group.Bcast(pc, r, perfmodel.TotalGradBytes(layout), 999_999)
			for step := 0; step < totalSteps; step++ {
				if r == 0 && step == opt.WarmupSteps {
					measureStart = pc.Now()
				}
				jitter := 1 + opt.JitterFrac*float64(jrng.NormFloat32())
				if jitter < 0.5 {
					jitter = 0.5
				}
				st.stepWG = pc.Sim().NewWaitGroup(nt)
				computeStart := pc.Now()
				pc.Sleep(fwd * jitter)
				if r == 0 && opt.Trace != nil {
					opt.Trace.Add("compute", "forward", computeStart, pc.Now())
				}
				bwdStart := pc.Now()
				prev := 0.0
				for _, b := range bursts {
					pc.Sleep((b.AtFrac - prev) * bwd * jitter)
					prev = b.AtFrac
					for _, id := range b.Tensors {
						st.ready[id] = true
					}
				}
				if r == 0 && opt.Trace != nil {
					opt.Trace.Add("compute", "backward", bwdStart, pc.Now())
				}
				waitStart := pc.Now()
				st.stepWG.Wait(pc)
				if r == 0 && opt.Trace != nil && pc.Now() > waitStart {
					opt.Trace.Add("compute", "sync-wait", waitStart, pc.Now())
				}
				if r == 0 && step == totalSteps-1 {
					measureEnd = pc.Now()
				}
			}
			st.wantShutdown = true
		})

		// Engine process: Horovod background loop — cycle sleep,
		// negotiation, fusion, allreduce.
		sim.Spawn(fmt.Sprintf("engine.%d", r), func(pe *simnet.Proc) {
			mask := make([]bool, nt+1)
			for {
				// Fixed-phase cycle clock: sleep to the next multiple of
				// the cycle time rather than a relative sleep, so cycle
				// boundaries don't drift with the backend's collective
				// speed (which would alias into the step tail and make
				// backend comparisons unfair).
				now := pe.Now()
				next := (math.Floor(now/opt.CycleTimeSec) + 1) * opt.CycleTimeSec
				pe.Sleep(next - now)
				copy(mask, st.ready)
				mask[nt] = st.wantShutdown
				global := group.Negotiate(pe, r, mask)
				var ready []int
				for i := 0; i < nt; i++ {
					if global[i] {
						ready = append(ready, i)
					}
				}
				groups := horovod.PlanFusion(sizes, ready, opt.FusionThresholdBytes)
				for _, grp := range groups {
					bytes := horovod.GroupBytes(sizes, grp)
					wire := group.AllreduceCompressed(pe, r, bytes,
						regKeyFor(sizes, grp, opt.FusionThresholdBytes), opt.Compression, opt.TopKRatio)
					for _, id := range grp {
						st.ready[id] = false
						st.stepWG.Done()
					}
					if r == 0 {
						messages++
						fusedBytes += bytes
						wireBytes += wire
					}
				}
				if global[nt] && len(ready) == 0 {
					return
				}
			}
		})
	}

	sim.RunAll()

	elapsed := float64(measureEnd - measureStart)
	images := float64(opt.Steps * batchPerGPU * p)
	res := Result{
		GPUs:         p,
		Backend:      opt.Backend,
		SimulatedSec: elapsed,
		Messages:     messages,
		FusedBytes:   fusedBytes,
		WireBytes:    wireBytes,
	}
	if elapsed > 0 {
		res.ImagesPerSec = images / elapsed
		res.StepSec = elapsed / float64(opt.Steps)
	}
	res.RegCacheHits, res.RegCacheMiss = cl.RegCacheStats()
	return res
}

// regKeyFor identifies the communication buffer a fusion group travels in.
// Multi-tensor groups ride Horovod's single reusable fusion buffer, but a
// registration covers (address, length): a group shorter than the buffer
// registers a different extent, so the key includes the padded length
// class. Unfused tensors use their own (stable) buffers.
func regKeyFor(sizes []int64, grp []int, threshold int64) uint64 {
	if len(grp) == 1 {
		return 1_000_000 + uint64(grp[0])
	}
	bytes := horovod.GroupBytes(sizes, grp)
	// Length class: registrations cover page-aligned extents, so nearby
	// group sizes reuse the same registration (8 MB classes).
	return uint64(bytes >> 23)
}

// Efficiency computes scaling efficiency against a single-GPU baseline
// throughput (the paper's Fig. 13 metric).
func Efficiency(r Result, singleGPUImagesPerSec float64) float64 {
	if r.GPUs == 0 || singleGPUImagesPerSec <= 0 {
		return 0
	}
	return r.ImagesPerSec / (float64(r.GPUs) * singleGPUImagesPerSec)
}

// SingleGPUBaseline returns the modeled one-GPU throughput used as the
// efficiency denominator.
func SingleGPUBaseline(batch int) float64 {
	if batch <= 0 {
		batch = perfmodel.EDSRBatchSize
	}
	t, _ := perfmodel.EDSRThroughput(batch)
	return t
}

// Sweep runs one backend across the paper's node counts (1→128 nodes,
// i.e. 4→512 GPUs) and returns results in order.
func Sweep(backend collective.Backend, nodeCounts []int, steps int, prof collective.Profiler) []Result {
	results := make([]Result, 0, len(nodeCounts))
	for _, n := range nodeCounts {
		results = append(results, Run(Options{
			Nodes:   n,
			Backend: backend,
			Steps:   steps,
			Prof:    prof,
		}))
	}
	return results
}

// PaperNodeCounts are the scales of the paper's Figs. 10-13 (4 to 512
// GPUs in powers of two).
func PaperNodeCounts() []int { return []int{1, 2, 4, 8, 16, 32, 64, 128} }

// SpeedupAt returns opt/def throughput at matching indices (the paper's
// "1.26× at 512 GPUs").
func SpeedupAt(opt, def []Result, i int) float64 {
	if i >= len(opt) || i >= len(def) || def[i].ImagesPerSec == 0 {
		return math.NaN()
	}
	return opt[i].ImagesPerSec / def[i].ImagesPerSec
}
