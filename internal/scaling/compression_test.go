package scaling

import (
	"testing"

	"repro/internal/collective"
)

// TestCompressionWireReduction pins the on-wire accounting of the
// simulated compression variants: fp16 halves every payload, top-k at
// ratio 32 cuts it by roughly 16× (1+2k words for k = n/32), and the
// exact baseline reports wire == fused.
func TestCompressionWireReduction(t *testing.T) {
	base := Run(Options{Nodes: 2, Backend: collective.BackendMPIOpt, Steps: 3, Seed: 5})
	if base.WireBytes != base.FusedBytes {
		t.Fatalf("uncompressed run: wire %d != fused %d", base.WireBytes, base.FusedBytes)
	}
	fp16 := Run(Options{Nodes: 2, Backend: collective.BackendMPIOpt, Steps: 3, Seed: 5,
		Compression: collective.CompressFP16})
	ratio := float64(fp16.FusedBytes) / float64(fp16.WireBytes)
	if ratio < 1.99 || ratio > 2.01 {
		t.Fatalf("fp16 wire reduction %.3f×, want 2×", ratio)
	}
	topk := Run(Options{Nodes: 2, Backend: collective.BackendMPIOpt, Steps: 3, Seed: 5,
		Compression: collective.CompressTopK, TopKRatio: 32})
	ratio = float64(topk.FusedBytes) / float64(topk.WireBytes)
	if ratio < 8 || ratio > 17 {
		t.Fatalf("topk ratio-32 wire reduction %.1f×, want ~16×", ratio)
	}
}

// TestCompressionDeterministic: compressed runs must stay reproducible —
// the determinism pin of the exact path extended to the variants.
func TestCompressionDeterministic(t *testing.T) {
	for _, comp := range []collective.Compression{collective.CompressFP16, collective.CompressTopK} {
		a := Run(Options{Nodes: 2, Backend: collective.BackendMPI, Steps: 3, Seed: 5, Compression: comp})
		b := Run(Options{Nodes: 2, Backend: collective.BackendMPI, Steps: 3, Seed: 5, Compression: comp})
		if a.ImagesPerSec != b.ImagesPerSec || a.WireBytes != b.WireBytes {
			t.Fatalf("%v: same seed diverged: %+v vs %+v", comp, a, b)
		}
	}
}

// TestCompressionProjection512GPUs is the issue's scalesim projection at
// the paper's largest scale (128 nodes × 4 GPUs) on the
// communication-bound default-MPI configuration. fp16 must win outright.
// Top-k rides a flat allgather whose per-rank volume is (p−1)·payload, so
// at 512 ranks a mild ratio like 32 moves MORE bytes than the exact ring
// — the projection must surface that — while a DGC-style 0.1% density
// (ratio 1000) amortizes the ring and beats the exact baseline (landing
// near fp16, which halves the already-hierarchical ring).
func TestCompressionProjection512GPUs(t *testing.T) {
	if testing.Short() {
		t.Skip("512-GPU simulation")
	}
	steps := 5
	exact := Run(Options{Nodes: 128, Backend: collective.BackendMPI, Steps: steps})
	fp16 := Run(Options{Nodes: 128, Backend: collective.BackendMPI, Steps: steps,
		Compression: collective.CompressFP16})
	topkMild := Run(Options{Nodes: 128, Backend: collective.BackendMPI, Steps: steps,
		Compression: collective.CompressTopK, TopKRatio: 32})
	topkDGC := Run(Options{Nodes: 128, Backend: collective.BackendMPI, Steps: steps,
		Compression: collective.CompressTopK, TopKRatio: 1000})
	t.Logf("512-GPU img/s: exact %.0f, fp16 %.0f (%.2fx), topk/32 %.0f (%.2fx), topk/1000 %.0f (%.2fx)",
		exact.ImagesPerSec,
		fp16.ImagesPerSec, fp16.ImagesPerSec/exact.ImagesPerSec,
		topkMild.ImagesPerSec, topkMild.ImagesPerSec/exact.ImagesPerSec,
		topkDGC.ImagesPerSec, topkDGC.ImagesPerSec/exact.ImagesPerSec)
	if fp16.ImagesPerSec <= exact.ImagesPerSec*1.05 {
		t.Fatalf("fp16 projection %.0f img/s not >5%% over exact %.0f at 512 GPUs",
			fp16.ImagesPerSec, exact.ImagesPerSec)
	}
	if topkMild.ImagesPerSec >= exact.ImagesPerSec {
		t.Fatalf("topk ratio-32 %.0f img/s should LOSE to exact %.0f at 512 ranks (allgather volume grows with p)",
			topkMild.ImagesPerSec, exact.ImagesPerSec)
	}
	if topkDGC.ImagesPerSec <= exact.ImagesPerSec*1.05 {
		t.Fatalf("topk ratio-1000 projection %.0f img/s not >5%% over exact %.0f at 512 GPUs",
			topkDGC.ImagesPerSec, exact.ImagesPerSec)
	}
}
