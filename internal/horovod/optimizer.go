package horovod

import (
	"repro/internal/mpi"
	"repro/internal/nn"
)

// BroadcastParameters sends root's parameter values to all ranks — step 2
// of the paper's Horovod integration guide (Section III-A): every replica
// must start from identical weights.
func BroadcastParameters(comm *mpi.Comm, params []*nn.Param, root int) {
	for _, p := range params {
		comm.Bcast(p.Value.Data(), root)
	}
}

// ScaleLR applies the linear learning-rate scaling rule from the paper's
// integration guide (step 4): multiply the single-process learning rate by
// the world size to counteract the effectively larger global batch.
func ScaleLR(opt nn.Optimizer, worldSize int) {
	opt.SetLR(opt.LR() * float64(worldSize))
}

// DistributedOptimizer wraps an optimizer so that Step() first reduces all
// gradients through the engine (step 3 of the integration guide). It
// submits gradients in reverse registration order, matching the order a
// backward pass produces them.
type DistributedOptimizer struct {
	inner  nn.Optimizer
	engine *Engine
	ids    []int
}

// NewDistributedOptimizer registers every parameter's gradient with the
// engine and returns the wrapper. Must be called before engine.Start, and
// identically on every rank.
func NewDistributedOptimizer(inner nn.Optimizer, engine *Engine) *DistributedOptimizer {
	d := &DistributedOptimizer{inner: inner, engine: engine}
	for _, p := range inner.Params() {
		d.ids = append(d.ids, engine.Register(p.Name, p.Grad.Data()))
	}
	return d
}

// Step allreduces all gradients, waits for completion, then applies the
// wrapped optimizer's update.
func (d *DistributedOptimizer) Step() {
	waits := make([]<-chan struct{}, len(d.ids))
	for i := len(d.ids) - 1; i >= 0; i-- {
		waits[i] = d.engine.Submit(d.ids[i])
	}
	for _, w := range waits {
		<-w
	}
	d.inner.Step()
}

// ZeroGrad clears gradients on the wrapped optimizer.
func (d *DistributedOptimizer) ZeroGrad() { d.inner.ZeroGrad() }

// LR returns the wrapped optimizer's learning rate.
func (d *DistributedOptimizer) LR() float64 { return d.inner.LR() }

// SetLR sets the wrapped optimizer's learning rate.
func (d *DistributedOptimizer) SetLR(lr float64) { d.inner.SetLR(lr) }

// Params returns the wrapped optimizer's parameters.
func (d *DistributedOptimizer) Params() []*nn.Param { return d.inner.Params() }
