package horovod

import (
	"fmt"
	"time"

	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/trace"
)

// BroadcastParameters sends root's parameter values to all ranks — step 2
// of the paper's Horovod integration guide (Section III-A): every replica
// must start from identical weights.
func BroadcastParameters(comm *mpi.Comm, params []*nn.Param, root int) {
	for _, p := range params {
		comm.Bcast(p.Value.Data(), root)
	}
}

// ScaleLR applies the linear learning-rate scaling rule from the paper's
// integration guide (step 4): multiply the single-process learning rate by
// the world size to counteract the effectively larger global batch.
func ScaleLR(opt nn.Optimizer, worldSize int) {
	opt.SetLR(opt.LR() * float64(worldSize))
}

// DistributedOptimizer wraps an optimizer so gradients are reduced
// through the engine (step 3 of the integration guide). Two modes:
//
//   - Overlapped: install GradHook() on the model (nn.GradNotifier).
//     Each parameter is submitted to the engine the moment its backward
//     contribution completes, so reduction of late-layer gradients
//     overlaps the remaining backward computation; Step() only drains the
//     outstanding completions.
//   - Serial (no hook): Step() submits everything in reverse registration
//     order — the order a backward pass produces gradients — then waits.
//
// Both modes reduce identical values; with fusion disabled the results
// are bitwise identical (see TestOverlappedMatchesSerial).
type DistributedOptimizer struct {
	inner  nn.Optimizer
	engine *Engine
	ids    []int
	slotOf map[*nn.Param]int
	// pending[i] is the completion channel of ids[i]'s in-flight
	// reduction, nil when not submitted; reused across steps.
	pending []<-chan struct{}
	hook    nn.GradHook

	// drainTotal/drains accumulate the exposed communication window so
	// trainer.Stats can report per-step drain milliseconds.
	drainTotal time.Duration
	drains     int
}

// NewDistributedOptimizer registers every parameter's gradient with the
// engine and returns the wrapper. Must be called before engine.Start, and
// identically on every rank.
func NewDistributedOptimizer(inner nn.Optimizer, engine *Engine) *DistributedOptimizer {
	d := &DistributedOptimizer{inner: inner, engine: engine}
	params := inner.Params()
	d.slotOf = make(map[*nn.Param]int, len(params))
	d.pending = make([]<-chan struct{}, len(params))
	for i, p := range params {
		d.ids = append(d.ids, engine.Register(p.Name, p.Grad.Data()))
		d.slotOf[p] = i
	}
	d.hook = func(p *nn.Param) {
		slot, ok := d.slotOf[p]
		if !ok {
			panic(fmt.Sprintf("horovod: grad hook fired for unregistered parameter %q", p.Name))
		}
		if d.pending[slot] != nil {
			panic(fmt.Sprintf("horovod: parameter %q announced twice in one step", p.Name))
		}
		d.pending[slot] = d.engine.Submit(d.ids[slot])
		// Mark the submission instant on the timeline: the gap between a
		// grad-hook marker and the matching engine reduction is the
		// negotiation latency the overlap design must hide.
		engine.cfg.Trace.EmitInstant(trace.CatGradHook, trace.TrackMain, engine.sizes[d.ids[slot]])
	}
	return d
}

// GradHook returns the hook that submits a parameter for reduction as its
// gradient becomes final. Install it on the model with SetGradHook before
// training; it must fire on the goroutine that calls Step.
func (d *DistributedOptimizer) GradHook() nn.GradHook { return d.hook }

// Drain submits any gradients the hook has not already announced
// (reverse registration order, as a backward pass would produce them)
// and blocks until every outstanding reduction completes. Step calls it
// before the wrapped update; callers that want to schedule or measure
// the exposed communication window may call it directly.
//
// If the engine failed (a peer rank died), its waiters are closed
// without results; Drain then panics with the engine's error — a
// *mpi.RankError — which World.Run recovers into this rank's per-rank
// error, so a dead peer aborts the step instead of hanging it or
// silently applying garbage gradients.
func (d *DistributedOptimizer) Drain() {
	start := time.Now()
	spanStart := d.engine.cfg.Trace.Now()
	for i := len(d.ids) - 1; i >= 0; i-- {
		if d.pending[i] == nil {
			d.pending[i] = d.engine.Submit(d.ids[i])
		}
	}
	for i, w := range d.pending {
		<-w
		d.pending[i] = nil
	}
	dur := time.Since(start)
	d.drainTotal += dur
	d.drains++
	d.engine.cfg.Trace.Emit(trace.CatDrain, trace.TrackMain, spanStart, 0)
	if m := d.engine.cfg.Metrics; m != nil {
		m.DrainSeconds.Observe(dur.Seconds())
	}
	if err := d.engine.Err(); err != nil {
		panic(err)
	}
}

// DrainStats returns the accumulated exposed-communication wait across
// all Drain calls and how many drains ran. The mean per-step drain is
// the step's non-overlapped allreduce cost — the quantity
// trainer.Stats surfaces and cmd/bench-comm sweeps.
func (d *DistributedOptimizer) DrainStats() (total time.Duration, n int) {
	return d.drainTotal, d.drains
}

// Step drains all gradient reductions, then applies the wrapped
// optimizer's update. On a failed engine Drain panics before the update
// is applied (see Drain).
func (d *DistributedOptimizer) Step() {
	d.Drain()
	d.inner.Step()
}

// ZeroGrad clears gradients on the wrapped optimizer.
func (d *DistributedOptimizer) ZeroGrad() { d.inner.ZeroGrad() }

// LR returns the wrapped optimizer's learning rate.
func (d *DistributedOptimizer) LR() float64 { return d.inner.LR() }

// SetLR sets the wrapped optimizer's learning rate.
func (d *DistributedOptimizer) SetLR(lr float64) { d.inner.SetLR(lr) }

// Params returns the wrapped optimizer's parameters.
func (d *DistributedOptimizer) Params() []*nn.Param { return d.inner.Params() }
