package horovod

import (
	"testing"
	"testing/quick"
)

func TestPlanFusionEmpty(t *testing.T) {
	if got := PlanFusion([]int64{4, 8}, nil, 64); got != nil {
		t.Fatalf("empty ready should give no groups: %v", got)
	}
}

func TestPlanFusionSingleGroup(t *testing.T) {
	sizes := []int64{10, 20, 30}
	groups := PlanFusion(sizes, []int{0, 1, 2}, 100)
	if len(groups) != 1 || len(groups[0]) != 3 {
		t.Fatalf("all should fuse into one group: %v", groups)
	}
	if GroupBytes(sizes, groups[0]) != 60 {
		t.Fatalf("group bytes %d", GroupBytes(sizes, groups[0]))
	}
}

func TestPlanFusionSplitsAtThreshold(t *testing.T) {
	sizes := []int64{40, 40, 40}
	groups := PlanFusion(sizes, []int{0, 1, 2}, 100)
	// 40+40 = 80 fits, adding the third (120) would not.
	if len(groups) != 2 {
		t.Fatalf("want 2 groups: %v", groups)
	}
	if len(groups[0]) != 2 || len(groups[1]) != 1 {
		t.Fatalf("split wrong: %v", groups)
	}
}

func TestPlanFusionOversizeAlone(t *testing.T) {
	sizes := []int64{10, 500, 10}
	groups := PlanFusion(sizes, []int{0, 1, 2}, 100)
	// Tensor 1 exceeds the threshold: reduced alone; 0 flushed before it.
	if len(groups) != 3 {
		t.Fatalf("want 3 groups: %v", groups)
	}
	if len(groups[1]) != 1 || groups[1][0] != 1 {
		t.Fatalf("oversize tensor should be alone: %v", groups)
	}
}

func TestPlanFusionExactThreshold(t *testing.T) {
	// A tensor exactly at the threshold counts as unfusable (>=).
	groups := PlanFusion([]int64{100}, []int{0}, 100)
	if len(groups) != 1 || len(groups[0]) != 1 {
		t.Fatalf("%v", groups)
	}
	// Two tensors summing exactly to the threshold do fuse.
	groups = PlanFusion([]int64{50, 50}, []int{0, 1}, 100)
	if len(groups) != 1 {
		t.Fatalf("exact-sum should fuse: %v", groups)
	}
}

func TestPlanFusionZeroThreshold(t *testing.T) {
	groups := PlanFusion([]int64{1, 2, 3}, []int{0, 1, 2}, 0)
	if len(groups) != 3 {
		t.Fatalf("threshold 0 disables fusion: %v", groups)
	}
}

// Properties: every ready id appears exactly once, order is preserved, and
// no multi-tensor group exceeds the threshold.
func TestQuickPlanFusionInvariants(t *testing.T) {
	f := func(rawSizes []uint16, threshRaw uint16) bool {
		if len(rawSizes) == 0 {
			return true
		}
		threshold := int64(threshRaw)%1000 + 1
		sizes := make([]int64, len(rawSizes))
		ready := make([]int, len(rawSizes))
		for i, s := range rawSizes {
			sizes[i] = int64(s)%500 + 1
			ready[i] = i
		}
		groups := PlanFusion(sizes, ready, threshold)
		var flat []int
		for _, g := range groups {
			if len(g) == 0 {
				return false
			}
			if len(g) > 1 && GroupBytes(sizes, g) > threshold {
				return false
			}
			flat = append(flat, g...)
		}
		if len(flat) != len(ready) {
			return false
		}
		for i, id := range flat {
			if id != ready[i] {
				return false // order must be preserved
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanFusionMatchesEDSRShape(t *testing.T) {
	// The Table I scenario: ~172 MB of gradients against a 64 MB fusion
	// buffer must yield messages in the 16-64 MB buckets, with at least
	// two in 32-64 MB (the paper's dominant bucket).
	const mb = 1 << 20
	// Simplified EDSR paper-config layout: 64 resblock convs of 2.25 MB
	// each plus a few large head/tail tensors.
	var sizes []int64
	for i := 0; i < 64; i++ {
		sizes = append(sizes, 2362368) // 256×256×3×3 weights ≈ 2.25 MB
	}
	sizes = append(sizes, 9437184) // tail up-conv 256→1024
	ready := make([]int, len(sizes))
	for i := range ready {
		ready[i] = i
	}
	groups := PlanFusion(sizes, ready, 64*mb)
	if len(groups) < 3 {
		t.Fatalf("expected ≥3 fused messages for 160+ MB of gradients, got %d", len(groups))
	}
	big := 0
	for _, g := range groups {
		if b := GroupBytes(sizes, g); b > 32*mb && b <= 64*mb {
			big++
		}
	}
	if big < 2 {
		t.Fatalf("expected ≥2 messages in the 32-64 MB bucket, got %d", big)
	}
}
