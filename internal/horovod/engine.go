package horovod

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/mpi"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Config mirrors the Horovod tunables the paper sweeps.
type Config struct {
	// FusionThresholdBytes is HOROVOD_FUSION_THRESHOLD (default 64 MB).
	FusionThresholdBytes int64
	// CycleTime is HOROVOD_CYCLE_TIME (default 3.5 ms): how long the
	// engine accumulates ready tensors before negotiating a fusion round.
	CycleTime time.Duration
	// Average divides reduced gradients by the world size (the standard
	// data-parallel gradient average).
	Average bool
	// Algo selects the allreduce algorithm of the backend.
	Algo mpi.AllreduceAlgo
	// FP16Compression quantizes gradients through half precision before
	// reduction (Horovod's fp16 compressor): the wire payload halves at
	// the cost of 11-bit significands. Values are quantized on submit and
	// after reduction, reproducing the numerics of an fp16 wire format.
	FP16Compression bool
	// AllreduceFn, when non-nil, replaces the backend sum-allreduce —
	// gradient-compression variants, benchmarks, and instrumented test
	// doubles plug in here. Algo is ignored when set. A returned error
	// aborts the engine: waiters are released and the failure surfaces
	// via Err (and the Drain panic path), exactly like a peer death.
	AllreduceFn func(c *mpi.Comm, buf []float32) error
	// Trace, when non-nil, records engine spans (fusion-group
	// reductions on the engine track, drain windows and per-parameter
	// grad-hook instants on the trainer track). For the engine's own
	// collectives to land on the engine track, pass NewEngine a forked
	// Comm whose Tracer is bound to trace.TrackEngine.
	Trace *trace.Recorder
	// Metrics, when non-nil, receives live counters (bytes reduced,
	// allreduce message sizes).
	Metrics *trace.TrainMetrics
}

// DefaultConfig returns Horovod's defaults (64 MB fusion buffer, 3.5 ms
// cycle, averaging, ring allreduce).
func DefaultConfig() Config {
	return Config{
		FusionThresholdBytes: 64 << 20,
		CycleTime:            3500 * time.Microsecond,
		Average:              true,
		Algo:                 mpi.AlgoRing,
	}
}

// Engine is one rank's background communication engine. All ranks must
// register the same tensors in the same order (Horovod keys tensors by
// name; registration order stands in for its response ordering).
type Engine struct {
	comm *mpi.Comm
	cfg  Config

	names []string
	bufs  [][]float32
	sizes []int64
	ids   map[string]int

	mu       sync.Mutex
	ready    []bool
	waiters  []chan struct{}
	shutdown bool
	failErr  error

	fusion   []float32
	readyIDs []int // loop-local ready set, reused across cycles
	loopDone chan struct{}
	started  bool
}

// NewEngine creates an engine bound to one rank's communicator.
func NewEngine(comm *mpi.Comm, cfg Config) *Engine {
	if cfg.FusionThresholdBytes == 0 {
		cfg.FusionThresholdBytes = 64 << 20
	}
	return &Engine{
		comm:     comm,
		cfg:      cfg,
		ids:      map[string]int{},
		loopDone: make(chan struct{}),
	}
}

// Register adds a named gradient buffer and returns its id. All ranks
// must register identically before Start.
func (e *Engine) Register(name string, buf []float32) int {
	if e.started {
		panic("horovod: Register after Start")
	}
	if _, dup := e.ids[name]; dup {
		panic(fmt.Sprintf("horovod: duplicate tensor %q", name))
	}
	id := len(e.names)
	e.ids[name] = id
	e.names = append(e.names, name)
	e.bufs = append(e.bufs, buf)
	e.sizes = append(e.sizes, int64(len(buf))*4)
	e.ready = append(e.ready, false)
	e.waiters = append(e.waiters, nil)
	return id
}

// Start launches the background negotiation loop. Every rank must call
// Start, and afterwards every rank must eventually call Shutdown.
func (e *Engine) Start() {
	if e.started {
		panic("horovod: Start called twice")
	}
	e.started = true
	go e.loop()
}

// Submit marks a tensor's gradient ready for reduction and returns a
// channel closed when the reduced (averaged) values are back in the
// registered buffer. On a failed engine the channel is already closed —
// the caller unblocks immediately and discovers the failure via Err.
func (e *Engine) Submit(id int) <-chan struct{} {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.failErr != nil {
		done := make(chan struct{})
		close(done)
		return done
	}
	if e.ready[id] {
		panic(fmt.Sprintf("horovod: tensor %q submitted twice before completion", e.names[id]))
	}
	done := make(chan struct{})
	e.ready[id] = true
	e.waiters[id] = done
	return done
}

// SubmitByName is Submit keyed by tensor name.
func (e *Engine) SubmitByName(name string) <-chan struct{} {
	id, ok := e.ids[name]
	if !ok {
		panic(fmt.Sprintf("horovod: unknown tensor %q", name))
	}
	return e.Submit(id)
}

// Shutdown negotiates a clean stop: the loop exits once every rank has
// requested shutdown and no tensors remain pending. Blocks until the
// background loop ends. On a failed engine (a peer died mid-run) the
// loop has already aborted and Shutdown returns immediately.
func (e *Engine) Shutdown() {
	e.mu.Lock()
	e.shutdown = true
	e.mu.Unlock()
	<-e.loopDone
}

// Err returns the failure that aborted the engine, or nil while it is
// healthy. The error is a *mpi.RankError when a peer rank died.
func (e *Engine) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.failErr
}

// fail records the first failure, releases every waiter (so a Drain
// blocked on an in-flight reduction unblocks and can observe Err), and
// makes future Submits complete immediately.
func (e *Engine) fail(err error) {
	e.mu.Lock()
	if e.failErr == nil {
		e.failErr = err
		for i, w := range e.waiters {
			if w != nil {
				close(w)
				e.waiters[i] = nil
			}
			e.ready[i] = false
		}
	}
	e.mu.Unlock()
}

// loop is the Horovod background thread: each cycle it collects locally
// ready tensors, negotiates the globally ready set with a min-allreduce
// over readiness masks (Horovod's coordinator performs the equivalent
// gather), fuses them within the threshold, and executes the reductions.
func (e *Engine) loop() {
	defer close(e.loopDone)
	// The loop runs collectives on its own goroutine, outside World.Run's
	// per-rank recovery — a dead peer surfacing as a *mpi.RankError panic
	// inside NegotiateMin or an allreduce would crash the process. Recover
	// it here and convert it into an engine failure instead: waiters are
	// released and the training loop observes Err at its next Drain.
	defer func() {
		if r := recover(); r != nil {
			if err, ok := r.(error); ok {
				e.fail(fmt.Errorf("horovod: engine aborted: %w", err))
			} else {
				e.fail(fmt.Errorf("horovod: engine panicked: %v", r))
			}
		}
	}()
	n := len(e.names)
	mask := make([]float32, n+1) // last slot carries the shutdown vote
	e.readyIDs = make([]int, 0, n)
	for {
		if e.cfg.CycleTime > 0 {
			time.Sleep(e.cfg.CycleTime)
		}
		// A crashed peer never negotiates again: without this check the
		// cycle would keep min-ing all-zero masks forever (the classic
		// Horovod stall) instead of surfacing the failure.
		if err := e.comm.PeerFailure(); err != nil {
			e.fail(fmt.Errorf("horovod: engine aborted: %w", err))
			return
		}
		e.mu.Lock()
		for i := 0; i < n; i++ {
			if e.ready[i] {
				mask[i] = 1
			} else {
				mask[i] = 0
			}
		}
		if e.shutdown {
			mask[n] = 1
		} else {
			mask[n] = 0
		}
		e.mu.Unlock()

		e.comm.NegotiateMin(mask)

		ready := e.readyIDs[:0]
		for i := 0; i < n; i++ {
			if mask[i] == 1 {
				ready = append(ready, i)
			}
		}
		e.readyIDs = ready
		for _, group := range PlanFusion(e.sizes, ready, e.cfg.FusionThresholdBytes) {
			if err := e.reduceGroup(group); err != nil {
				e.fail(fmt.Errorf("horovod: allreduce failed: %w", err))
				return
			}
		}

		// Exit is decided purely from negotiated state, so every rank
		// leaves on the same round. A rank only votes shutdown after all
		// its submissions completed, so a unanimous vote implies no rank
		// has pending tensors.
		if mask[n] == 1 && len(ready) == 0 {
			return
		}
	}
}

// reduceGroup copies the group into the fusion buffer, allreduces it as a
// single message, averages, scatters results back, and wakes waiters. An
// AllreduceFn error is returned without waking the group's waiters — the
// caller aborts the engine and fail releases them with Err set.
func (e *Engine) reduceGroup(group []int) error {
	total := 0
	for _, id := range group {
		total += len(e.bufs[id])
	}
	spanStart := e.cfg.Trace.Now()
	if m := e.cfg.Metrics; m != nil {
		m.BytesReduced.Add(int64(total) * 4)
		m.AllreduceBytes.Observe(float64(total) * 4)
	}
	var buf []float32
	if len(group) == 1 {
		// Unfused path: reduce the tensor's own buffer directly (no copy),
		// exactly what Horovod does for tensors above the threshold.
		buf = e.bufs[group[0]]
	} else {
		if cap(e.fusion) < total {
			e.fusion = make([]float32, total)
		}
		buf = e.fusion[:total]
		off := 0
		for _, id := range group {
			copy(buf[off:], e.bufs[id])
			off += len(e.bufs[id])
		}
	}

	if e.cfg.FP16Compression {
		tensor.QuantizeHalf(buf)
	}
	if e.cfg.AllreduceFn != nil {
		if err := e.cfg.AllreduceFn(e.comm, buf); err != nil {
			return err
		}
	} else {
		e.comm.AllreduceSum(buf, e.cfg.Algo)
	}
	if e.cfg.FP16Compression {
		tensor.QuantizeHalf(buf)
	}

	if e.cfg.Average {
		inv := 1 / float32(e.comm.Size())
		for i := range buf {
			buf[i] *= inv
		}
	}
	if len(group) > 1 {
		off := 0
		for _, id := range group {
			copy(e.bufs[id], buf[off:off+len(e.bufs[id])])
			off += len(e.bufs[id])
		}
	}

	e.mu.Lock()
	for _, id := range group {
		e.ready[id] = false
		if w := e.waiters[id]; w != nil {
			close(w)
			e.waiters[id] = nil
		}
	}
	e.mu.Unlock()
	e.cfg.Trace.Emit(trace.CatFusedReduce, trace.TrackEngine, spanStart, int64(total)*4)
	return nil
}
