package horovod

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// testConfig is DefaultConfig with no cycle sleep, for fast tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.CycleTime = 0
	return cfg
}

func TestEngineSingleTensor(t *testing.T) {
	w := mpi.NewWorld(4)
	var mu sync.Mutex
	results := make([][]float32, 4)
	w.Run(func(c *mpi.Comm) {
		e := NewEngine(c, testConfig())
		buf := []float32{float32(c.Rank() + 1), 2 * float32(c.Rank()+1)}
		id := e.Register("g", buf)
		e.Start()
		<-e.Submit(id)
		e.Shutdown()
		mu.Lock()
		results[c.Rank()] = buf
		mu.Unlock()
	})
	// Average of (1,2,3,4) = 2.5; of (2,4,6,8) = 5.
	for r, buf := range results {
		if math.Abs(float64(buf[0]-2.5)) > 1e-5 || math.Abs(float64(buf[1]-5)) > 1e-5 {
			t.Fatalf("rank %d: %v", r, buf)
		}
	}
}

func TestEngineSumWithoutAverage(t *testing.T) {
	w := mpi.NewWorld(3)
	cfg := testConfig()
	cfg.Average = false
	var mu sync.Mutex
	results := make([][]float32, 3)
	w.Run(func(c *mpi.Comm) {
		e := NewEngine(c, cfg)
		buf := []float32{1}
		id := e.Register("g", buf)
		e.Start()
		<-e.Submit(id)
		e.Shutdown()
		mu.Lock()
		results[c.Rank()] = buf
		mu.Unlock()
	})
	for r, buf := range results {
		if buf[0] != 3 {
			t.Fatalf("rank %d: %v, want sum 3", r, buf)
		}
	}
}

func TestEngineManyTensorsFused(t *testing.T) {
	const nt = 10
	w := mpi.NewWorld(2)
	cfg := testConfig()
	cfg.FusionThresholdBytes = 1 << 10
	var mu sync.Mutex
	results := make([][][]float32, 2)
	w.Run(func(c *mpi.Comm) {
		e := NewEngine(c, cfg)
		bufs := make([][]float32, nt)
		ids := make([]int, nt)
		for i := range bufs {
			bufs[i] = make([]float32, 16+i)
			for j := range bufs[i] {
				bufs[i][j] = float32((c.Rank() + 1) * (i + 1))
			}
			ids[i] = e.Register(name(i), bufs[i])
		}
		e.Start()
		waits := make([]<-chan struct{}, nt)
		for i := nt - 1; i >= 0; i-- {
			waits[i] = e.Submit(ids[i])
		}
		for _, wch := range waits {
			<-wch
		}
		e.Shutdown()
		mu.Lock()
		results[c.Rank()] = bufs
		mu.Unlock()
	})
	for r := 0; r < 2; r++ {
		for i := 0; i < nt; i++ {
			want := float32(i+1) * 1.5 // average of (i+1) and 2(i+1)
			for j, v := range results[r][i] {
				if math.Abs(float64(v-want)) > 1e-5 {
					t.Fatalf("rank %d tensor %d elem %d: %g want %g", r, i, j, v, want)
				}
			}
		}
	}
}

func name(i int) string { return string(rune('a' + i)) }

func TestEngineMultipleRounds(t *testing.T) {
	// Tensors submitted repeatedly across steps, like a training loop.
	w := mpi.NewWorld(2)
	w.Run(func(c *mpi.Comm) {
		e := NewEngine(c, testConfig())
		buf := []float32{0}
		id := e.Register("g", buf)
		e.Start()
		for step := 0; step < 5; step++ {
			buf[0] = float32((step + 1) * (c.Rank() + 1))
			<-e.Submit(id)
			want := float32(step+1) * 1.5
			if math.Abs(float64(buf[0]-want)) > 1e-5 {
				t.Errorf("rank %d step %d: %g want %g", c.Rank(), step, buf[0], want)
			}
		}
		e.Shutdown()
	})
}

func TestEngineStaggeredSubmissions(t *testing.T) {
	// One rank submits late; negotiation must hold the reduction until
	// every rank is ready.
	w := mpi.NewWorld(2)
	w.Run(func(c *mpi.Comm) {
		e := NewEngine(c, testConfig())
		buf := []float32{float32(c.Rank() + 1)}
		id := e.Register("g", buf)
		e.Start()
		if c.Rank() == 1 {
			time.Sleep(20 * time.Millisecond)
		}
		<-e.Submit(id)
		if math.Abs(float64(buf[0]-1.5)) > 1e-5 {
			t.Errorf("rank %d: %v", c.Rank(), buf)
		}
		e.Shutdown()
	})
}

func TestEngineDuplicateRegisterPanics(t *testing.T) {
	w := mpi.NewWorld(1)
	c := w.Comm(0)
	e := NewEngine(c, testConfig())
	e.Register("x", []float32{1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Register("x", []float32{2})
}

func TestEngineDoubleSubmitPanics(t *testing.T) {
	w := mpi.NewWorld(1)
	c := w.Comm(0)
	e := NewEngine(c, testConfig())
	id := e.Register("x", []float32{1})
	e.Submit(id)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
		// Unblock the engine (never started, so nothing to do).
	}()
	e.Submit(id)
}

func TestSubmitByName(t *testing.T) {
	w := mpi.NewWorld(1)
	w.Run(func(c *mpi.Comm) {
		e := NewEngine(c, testConfig())
		e.Register("w1", []float32{5})
		e.Start()
		<-e.SubmitByName("w1")
		e.Shutdown()
	})
}

func TestBroadcastParameters(t *testing.T) {
	w := mpi.NewWorld(4)
	var mu sync.Mutex
	vals := make([]float32, 4)
	w.Run(func(c *mpi.Comm) {
		p := nn.NewParam("p", 3)
		p.Value.Fill(float32(c.Rank() * 100)) // divergent initial weights
		BroadcastParameters(c, []*nn.Param{p}, 0)
		mu.Lock()
		vals[c.Rank()] = p.Value.At(1)
		mu.Unlock()
	})
	for r, v := range vals {
		if v != 0 {
			t.Fatalf("rank %d kept value %g after broadcast from root 0", r, v)
		}
	}
}

func TestScaleLR(t *testing.T) {
	p := nn.NewParam("p", 1)
	opt := nn.NewSGD([]*nn.Param{p}, 1e-4, 0, 0)
	ScaleLR(opt, 8)
	if math.Abs(opt.LR()-8e-4) > 1e-12 {
		t.Fatalf("LR = %g", opt.LR())
	}
}

// TestDistributedMatchesSingleProcess is the core data-parallelism
// invariant: N ranks each computing gradients on 1/N of a batch, averaged
// through the engine, must produce the same update as one process on the
// full batch.
func TestDistributedMatchesSingleProcess(t *testing.T) {
	const world = 4
	const perRank = 2
	rngData := tensor.NewRNG(77)
	// Full batch shared by both setups.
	fullX := tensor.New(world*perRank, 1, 6, 6)
	fullX.FillUniform(rngData, 0, 1)
	fullY := tensor.New(world*perRank, 1, 6, 6)
	fullY.FillUniform(rngData, 0, 1)

	buildNet := func() *nn.Sequential {
		rng := tensor.NewRNG(123) // same init everywhere
		return nn.NewSequential("n",
			nn.NewConv2d("n.c1", 1, 4, 3, 1, 1, true, rng),
			nn.NewReLU(),
			nn.NewConv2d("n.c2", 4, 1, 3, 1, 1, true, rng),
		)
	}

	// Single-process reference: loss gradients averaged over the full batch.
	ref := buildNet()
	refOpt := nn.NewSGD(ref.Params(), 0.1, 0, 0)
	refOpt.ZeroGrad()
	out := ref.Forward(fullX)
	_, grad := nn.MSELoss{}.Forward(out, fullY)
	ref.Backward(grad)
	refOpt.Step()

	// Distributed: each rank gets its slice; MSE over the slice has the
	// same per-element weight, so averaging rank gradients equals the
	// full-batch gradient.
	w := mpi.NewWorld(world)
	var mu sync.Mutex
	finalParams := make([][]float32, world)
	w.Run(func(c *mpi.Comm) {
		net := buildNet()
		opt := nn.NewSGD(net.Params(), 0.1, 0, 0)
		e := NewEngine(c, testConfig())
		dopt := NewDistributedOptimizer(opt, e)
		e.Start()
		BroadcastParameters(c, net.Params(), 0)

		sliceX := tensor.New(perRank, 1, 6, 6)
		sliceY := tensor.New(perRank, 1, 6, 6)
		off := c.Rank() * perRank * 36
		copy(sliceX.Data(), fullX.Data()[off:off+perRank*36])
		copy(sliceY.Data(), fullY.Data()[off:off+perRank*36])

		dopt.ZeroGrad()
		o := net.Forward(sliceX)
		_, g := nn.MSELoss{}.Forward(o, sliceY)
		net.Backward(g)
		dopt.Step()
		e.Shutdown()

		var flat []float32
		for _, p := range net.Params() {
			flat = append(flat, p.Value.Data()...)
		}
		mu.Lock()
		finalParams[c.Rank()] = flat
		mu.Unlock()
	})

	var refFlat []float32
	for _, p := range ref.Params() {
		refFlat = append(refFlat, p.Value.Data()...)
	}
	for r := 0; r < world; r++ {
		if len(finalParams[r]) != len(refFlat) {
			t.Fatalf("rank %d param count mismatch", r)
		}
		for i := range refFlat {
			if math.Abs(float64(finalParams[r][i]-refFlat[i])) > 1e-5 {
				t.Fatalf("rank %d param %d: %g vs reference %g",
					r, i, finalParams[r][i], refFlat[i])
			}
		}
	}
	// And all ranks must agree exactly with each other.
	for r := 1; r < world; r++ {
		for i := range finalParams[0] {
			if finalParams[r][i] != finalParams[0][i] {
				t.Fatalf("ranks 0 and %d diverged at param %d", r, i)
			}
		}
	}
}

func TestEngineWithCycleTime(t *testing.T) {
	// Exercise the real cycle-sleep path once.
	w := mpi.NewWorld(2)
	cfg := testConfig()
	cfg.CycleTime = time.Millisecond
	w.Run(func(c *mpi.Comm) {
		e := NewEngine(c, cfg)
		buf := []float32{1}
		id := e.Register("g", buf)
		e.Start()
		<-e.Submit(id)
		e.Shutdown()
	})
}

// TestEngineFP16Compression: reduced values carry fp16 quantization but
// remain close to the exact average, and training-style repeated rounds
// still work.
func TestEngineFP16Compression(t *testing.T) {
	w := mpi.NewWorld(2)
	cfg := testConfig()
	cfg.FP16Compression = true
	w.Run(func(c *mpi.Comm) {
		e := NewEngine(c, cfg)
		buf := []float32{0.333333343, 100.0625, 1e-3}
		for i := range buf {
			buf[i] *= float32(c.Rank() + 1)
		}
		id := e.Register("g", buf)
		e.Start()
		<-e.Submit(id)
		e.Shutdown()
		// Exact averages of (v, 2v) are 1.5v; fp16 quantization bounds the
		// error at ~2^-11 relative.
		want := []float32{0.5, 150.09375, 1.5e-3}
		for i, v := range buf {
			rel := math.Abs(float64(v-want[i])) / math.Abs(float64(want[i]))
			if rel > 2e-3 {
				t.Errorf("rank %d elem %d: %g vs %g (rel %g)", c.Rank(), i, v, want[i], rel)
			}
		}
	})
}
