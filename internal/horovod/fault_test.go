package horovod

import (
	"errors"
	"testing"
	"time"

	"repro/internal/mpi"
	"repro/internal/nn"
)

// TestEngineAbortsOnRankCrash is the engine-level fault gate: one rank
// dies at its fault point mid-training; the survivors' engines must
// detect the dead peer, release their Drain waiters, and surface a
// *mpi.RankError through World.Run — within the deadline, with no hang
// and no process panic.
func TestEngineAbortsOnRankCrash(t *testing.T) {
	const world, steps, crashRank, crashStep = 3, 6, 1, 3
	w := mpi.NewWorld(world)
	w.SetRecvTimeout(2 * time.Second)
	plan := mpi.NoFaults()
	plan.CrashRank, plan.CrashStep = crashRank, crashStep
	w.SetFaultPlan(plan)

	stepsDone := make([]int, world)
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(c *mpi.Comm) {
			p := nn.NewParam("w", 4, 4)
			opt := nn.NewSGD([]*nn.Param{p}, 0.1, 0, 0)
			e := NewEngine(c, Config{CycleTime: 0, Average: true, Algo: mpi.AlgoRing})
			dopt := NewDistributedOptimizer(opt, e)
			e.Start()
			defer e.Shutdown()
			for s := 0; s < steps; s++ {
				c.FaultPoint(s)
				for i := range p.Grad.Data() {
					p.Grad.Data()[i] = float32(c.Rank() + s)
				}
				dopt.Step()
				stepsDone[c.Rank()]++
			}
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected failure error")
		}
		if !errors.Is(err, mpi.ErrRankFailed) {
			t.Fatalf("error chain missing ErrRankFailed: %v", err)
		}
		if !errors.Is(err, mpi.ErrInjectedFault) {
			t.Fatalf("error chain missing ErrInjectedFault: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("training deadlocked on crashed rank")
	}
	if got := w.FailedRanks(); len(got) != 1 || got[0] != crashRank {
		t.Fatalf("FailedRanks = %v, want [%d]", got, crashRank)
	}
	if got := len(w.Survivors()); got != world-1 {
		t.Fatalf("%d survivors, want %d", got, world-1)
	}
	// The crashed rank completed exactly crashStep steps; survivors
	// cannot have advanced past the step the reduction stalled on.
	if stepsDone[crashRank] != crashStep {
		t.Fatalf("crashed rank did %d steps, want %d", stepsDone[crashRank], crashStep)
	}
	for r, n := range stepsDone {
		if r != crashRank && n < crashStep-1 {
			t.Fatalf("rank %d only completed %d steps before abort", r, n)
		}
	}
}

// TestEngineErrAndSubmitAfterFailure pins the failure API: after fail,
// Err is set, waiters are closed, and Submit returns a closed channel.
func TestEngineErrAndSubmitAfterFailure(t *testing.T) {
	w := mpi.NewWorld(1)
	c := w.Comm(0)
	e := NewEngine(c, Config{CycleTime: time.Hour}) // loop effectively idle
	buf := make([]float32, 4)
	id := e.Register("g", buf)
	pending := e.Submit(id)
	cause := errors.New("boom")
	e.fail(cause)
	select {
	case <-pending:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not released on failure")
	}
	if err := e.Err(); !errors.Is(err, cause) {
		t.Fatalf("Err = %v, want %v", err, cause)
	}
	select {
	case <-e.Submit(id):
	case <-time.After(5 * time.Second):
		t.Fatal("Submit after failure must return a closed channel")
	}
}

// TestEngineAllreduceFnError pins satellite #4 of the compression issue:
// an AllreduceFn error mid-fusion-cycle must abort the engine and surface
// through engine.Err() and the Drain panic path exactly like a peer
// death — not be silently dropped, leaving ranks training on unreduced
// gradients. The fn fails on every rank on its second call, so no rank
// is left blocked inside a half-completed collective.
func TestEngineAllreduceFnError(t *testing.T) {
	const world, steps, failStep = 2, 4, 2
	cause := errors.New("compression backend rejected payload")
	w := mpi.NewWorld(world)
	stepsDone := make([]int, world)
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(c *mpi.Comm) {
			p := nn.NewParam("w", 4, 4)
			opt := nn.NewSGD([]*nn.Param{p}, 0.1, 0, 0)
			calls := 0
			cfg := Config{CycleTime: 0, Average: true}
			cfg.AllreduceFn = func(c *mpi.Comm, buf []float32) error {
				if calls++; calls > failStep {
					return cause
				}
				c.AllreduceSum(buf, mpi.AlgoRing)
				return nil
			}
			e := NewEngine(c, cfg)
			dopt := NewDistributedOptimizer(opt, e)
			e.Start()
			defer e.Shutdown()
			for s := 0; s < steps; s++ {
				for i := range p.Grad.Data() {
					p.Grad.Data()[i] = float32(c.Rank() + s)
				}
				dopt.Step() // panics via Drain once the engine fails
				stepsDone[c.Rank()]++
			}
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected World.Run to surface the allreduce failure")
		}
		if !errors.Is(err, cause) {
			t.Fatalf("error chain missing the AllreduceFn cause: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("AllreduceFn failure hung the engine instead of aborting it")
	}
	for r, n := range stepsDone {
		if n != failStep {
			t.Fatalf("rank %d completed %d steps, want exactly %d before the failure", r, n, failStep)
		}
	}
}
