package horovod

import (
	"sync"
	"testing"

	"repro/internal/mpi"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// trainParams runs a short distributed training loop (3 steps, 4 ranks)
// and returns each rank's flattened final parameters. With overlap, the
// model announces gradients through the optimizer's GradHook during
// Backward; without, Step submits everything afterwards (the serial
// submit-after-backward path).
func trainParams(t *testing.T, algo mpi.AllreduceAlgo, overlap bool) [][]float32 {
	t.Helper()
	const world, perRank, steps = 4, 2, 3
	rngData := tensor.NewRNG(55)
	fullX := tensor.New(world*perRank, 1, 6, 6)
	fullX.FillUniform(rngData, 0, 1)
	fullY := tensor.New(world*perRank, 1, 6, 6)
	fullY.FillUniform(rngData, 0, 1)

	buildNet := func() *nn.Sequential {
		rng := tensor.NewRNG(321)
		return nn.NewSequential("n",
			nn.NewConv2d("n.c1", 1, 4, 3, 1, 1, true, rng),
			nn.NewReLU(),
			nn.NewConv2d("n.c2", 4, 4, 3, 1, 1, true, rng),
			nn.NewReLU(),
			nn.NewConv2d("n.c3", 4, 1, 3, 1, 1, true, rng),
		)
	}

	// Fusion OFF: grouping changes ring chunk boundaries and hence fp
	// summation order, so bitwise comparison across submission orders is
	// only meaningful when every tensor reduces alone.
	cfg := testConfig()
	cfg.FusionThresholdBytes = -1
	cfg.Algo = algo

	w := mpi.NewWorld(world)
	var mu sync.Mutex
	finals := make([][]float32, world)
	w.Run(func(c *mpi.Comm) {
		net := buildNet()
		opt := nn.NewSGD(net.Params(), 0.05, 0, 0)
		e := NewEngine(c, cfg)
		dopt := NewDistributedOptimizer(opt, e)
		if overlap {
			net.SetGradHook(dopt.GradHook())
		}
		e.Start()
		BroadcastParameters(c, net.Params(), 0)

		sliceX := tensor.New(perRank, 1, 6, 6)
		sliceY := tensor.New(perRank, 1, 6, 6)
		off := c.Rank() * perRank * 36
		copy(sliceX.Data(), fullX.Data()[off:off+perRank*36])
		copy(sliceY.Data(), fullY.Data()[off:off+perRank*36])

		for s := 0; s < steps; s++ {
			dopt.ZeroGrad()
			o := net.Forward(sliceX)
			_, g := nn.MSELoss{}.Forward(o, sliceY)
			net.Backward(g)
			dopt.Step()
		}
		e.Shutdown()

		var flat []float32
		for _, p := range net.Params() {
			flat = append(flat, p.Value.Data()...)
		}
		mu.Lock()
		finals[c.Rank()] = flat
		mu.Unlock()
	})
	return finals
}

// TestOverlappedMatchesSerial is the tentpole's correctness gate: with
// per-layer submission during backward, final parameters must be bitwise
// identical to the serial submit-after-backward path, for every allreduce
// algorithm. (Run under -race this also exercises the engine-thread /
// backward-thread handoff.)
func TestOverlappedMatchesSerial(t *testing.T) {
	for _, algo := range []mpi.AllreduceAlgo{mpi.AlgoRing, mpi.AlgoRecursiveDoubling, mpi.AlgoNaive} {
		serial := trainParams(t, algo, false)
		overlapped := trainParams(t, algo, true)
		for r := range serial {
			if len(serial[r]) == 0 || len(serial[r]) != len(overlapped[r]) {
				t.Fatalf("algo=%v rank %d: param length mismatch (%d vs %d)",
					algo, r, len(serial[r]), len(overlapped[r]))
			}
			for i := range serial[r] {
				if serial[r][i] != overlapped[r][i] {
					t.Fatalf("algo=%v rank %d param %d: overlapped %g != serial %g",
						algo, r, i, overlapped[r][i], serial[r][i])
				}
			}
		}
		// All ranks agree exactly.
		for r := 1; r < len(overlapped); r++ {
			for i := range overlapped[0] {
				if overlapped[r][i] != overlapped[0][i] {
					t.Fatalf("algo=%v: ranks 0 and %d diverged at param %d", algo, r, i)
				}
			}
		}
	}
}

// TestGradHookUnregisteredParamPanics: the optimizer's hook must reject
// parameters it never registered rather than reduce garbage.
func TestGradHookUnregisteredParamPanics(t *testing.T) {
	w := mpi.NewWorld(1)
	c := w.Comm(0)
	p := nn.NewParam("p", 4)
	opt := nn.NewSGD([]*nn.Param{p}, 0.1, 0, 0)
	e := NewEngine(c, testConfig())
	dopt := NewDistributedOptimizer(opt, e)
	stranger := nn.NewParam("stranger", 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unregistered parameter")
		}
	}()
	dopt.GradHook()(stranger)
}

// TestGradHookDoubleAnnouncePanics: announcing the same parameter twice
// in one step is a model-wiring bug and must fail loudly.
func TestGradHookDoubleAnnouncePanics(t *testing.T) {
	w := mpi.NewWorld(1)
	c := w.Comm(0)
	p := nn.NewParam("p", 4)
	opt := nn.NewSGD([]*nn.Param{p}, 0.1, 0, 0)
	e := NewEngine(c, testConfig())
	dopt := NewDistributedOptimizer(opt, e)
	hook := dopt.GradHook()
	hook(p)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for double announcement")
		}
	}()
	hook(p)
}
