package horovod

import (
	"fmt"
	"testing"

	"repro/internal/models"
	"repro/internal/mpi"
	"repro/internal/perfmodel"
)

// BenchmarkPlanFusion measures the fusion planner on the real EDSR
// gradient layout.
func BenchmarkPlanFusion(b *testing.B) {
	layout := perfmodel.GradLayout(models.EDSRPaper())
	sizes := make([]int64, len(layout))
	ready := make([]int, len(layout))
	for i, t := range layout {
		sizes[i] = t.Bytes()
		ready[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PlanFusion(sizes, ready, 64<<20)
	}
}

// BenchmarkEngineStep measures a full engine round trip: submit all of a
// model's gradients, negotiate, fuse, allreduce, complete — on real
// buffers across real ranks.
func BenchmarkEngineStep(b *testing.B) {
	for _, ranks := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("%dranks", ranks), func(b *testing.B) {
			const nt = 20
			w := mpi.NewWorld(ranks)
			var bytes int64
			b.ResetTimer()
			w.Run(func(c *mpi.Comm) {
				cfg := DefaultConfig()
				cfg.CycleTime = 0
				e := NewEngine(c, cfg)
				ids := make([]int, nt)
				for i := range ids {
					buf := make([]float32, 4096*(i+1))
					ids[i] = e.Register(fmt.Sprintf("g%d", i), buf)
					if c.Rank() == 0 {
						bytes += int64(len(buf)) * 4
					}
				}
				e.Start()
				for iter := 0; iter < b.N; iter++ {
					waits := make([]<-chan struct{}, nt)
					for i := nt - 1; i >= 0; i-- {
						waits[i] = e.Submit(ids[i])
					}
					for _, wch := range waits {
						<-wch
					}
				}
				e.Shutdown()
			})
			b.SetBytes(bytes)
		})
	}
}
