// Package horovod reimplements the Horovod data-parallel training engine
// on top of the in-process MPI substrate: background per-rank engines, a
// readiness negotiation between ranks, Tensor Fusion (the
// HOROVOD_FUSION_THRESHOLD / HOROVOD_CYCLE_TIME mechanism the paper tunes
// at every scale), gradient-averaging allreduce, a DistributedOptimizer
// wrapper, and initial-parameter broadcast.
package horovod

// PlanFusion implements Horovod's Tensor Fusion packing rule: walk the
// globally-ready tensors in registration order and group consecutive ones
// while the running byte total stays within threshold; a tensor larger
// than the threshold is reduced alone, unfused.
//
// sizes holds every registered tensor's payload in bytes, ready lists the
// indices negotiated ready on all ranks (in registration order). The
// result deterministically partitions ready, so every rank — running this
// same pure function on the same negotiated input — issues identical
// collectives in identical order.
func PlanFusion(sizes []int64, ready []int, threshold int64) [][]int {
	var groups [][]int
	var cur []int
	var curBytes int64
	flush := func() {
		if len(cur) > 0 {
			groups = append(groups, cur)
			cur = nil
			curBytes = 0
		}
	}
	for _, id := range ready {
		sz := sizes[id]
		if threshold <= 0 || sz >= threshold {
			// Unfusable: flush the open group, emit this one alone.
			flush()
			groups = append(groups, []int{id})
			continue
		}
		if curBytes+sz > threshold {
			flush()
		}
		cur = append(cur, id)
		curBytes += sz
	}
	flush()
	return groups
}

// GroupBytes sums the payload of one fusion group.
func GroupBytes(sizes []int64, group []int) int64 {
	var total int64
	for _, id := range group {
		total += sizes[id]
	}
	return total
}
