package models

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Model is the interface all zoo members implement; it matches nn.Layer
// plus a parameter count helper.
type Model interface {
	nn.Layer
	NumParams() int
}

// SRCNN is the original CNN super-resolution model (Dong et al., 2014):
// three convolutions (9-1-5) over a pre-upsampled input. Unlike EDSR it
// operates at HR resolution, so callers must bicubic-upsample the LR input
// first (see Bicubic).
type SRCNN struct {
	net *nn.Sequential
}

// NewSRCNN builds an SRCNN over c color channels.
func NewSRCNN(c int, rng *tensor.RNG) *SRCNN {
	m := &SRCNN{net: nn.NewSequential("srcnn",
		nn.NewConv2d("srcnn.c1", c, 64, 9, 1, 4, true, rng),
		nn.NewReLU(),
		nn.NewConv2d("srcnn.c2", 64, 32, 1, 1, 0, true, rng),
		nn.NewReLU(),
		nn.NewConv2d("srcnn.c3", 32, c, 5, 1, 2, true, rng),
	)}
	nn.AttachScratch(m.net, nn.NewScratchPool())
	return m
}

// Forward refines a bicubic-upsampled image.
func (m *SRCNN) Forward(x *tensor.Tensor) *tensor.Tensor { return m.net.Forward(x) }

// Backward propagates gradients.
func (m *SRCNN) Backward(g *tensor.Tensor) *tensor.Tensor { return m.net.Backward(g) }

// Params returns the trainable parameters.
func (m *SRCNN) Params() []*nn.Param { return m.net.Params() }

// SetGradHook installs a per-parameter gradient-ready hook (nn.GradHook).
func (m *SRCNN) SetGradHook(h nn.GradHook) { m.net.SetGradHook(h) }

// NumParams returns the trainable parameter count.
func (m *SRCNN) NumParams() int { return nn.NumParams(m.Params()) }

// SRResNet is the SRGAN generator (Ledig et al., 2017) — the architecture
// EDSR simplified by dropping batch normalization (paper Fig. 5a). This is
// a width/depth-configurable variant for contrast experiments.
type SRResNet struct {
	head     *nn.Sequential
	body     *nn.Sequential
	bodyEnd  *nn.Sequential
	tail     *nn.Sequential
	lastHead *tensor.Tensor
}

// NewSRResNet builds an SRResNet with b residual blocks, f features, and
// the given upscale factor (2 or 4).
func NewSRResNet(c, b, f, scale int, rng *tensor.RNG) *SRResNet {
	if scale != 2 && scale != 4 {
		panic(fmt.Sprintf("models: SRResNet scale %d unsupported", scale))
	}
	m := &SRResNet{}
	m.head = nn.NewSequential("sr.head",
		nn.NewConv2d("sr.head.conv", c, f, 9, 1, 4, true, rng),
		nn.NewReLU(),
	)
	m.body = nn.NewSequential("sr.body")
	for i := 0; i < b; i++ {
		m.body.Append(nn.NewResBlock(fmt.Sprintf("sr.body.%d", i), nn.StyleSRResNet, f, 1, rng))
	}
	m.bodyEnd = nn.NewSequential("sr.bodyend",
		nn.NewConv2d("sr.bodyend.conv", f, f, 3, 1, 1, true, rng),
		nn.NewBatchNorm2d("sr.bodyend.bn", f),
	)
	m.tail = nn.NewSequential("sr.tail")
	stages := 1
	if scale == 4 {
		stages = 2
	}
	for s := 0; s < stages; s++ {
		m.tail.Append(nn.NewConv2d(fmt.Sprintf("sr.tail.up%d", s), f, f*4, 3, 1, 1, true, rng))
		m.tail.Append(nn.NewPixelShuffle(2))
		m.tail.Append(nn.NewReLU())
	}
	m.tail.Append(nn.NewConv2d("sr.tail.out", f, c, 9, 1, 4, true, rng))
	sp := nn.NewScratchPool()
	nn.AttachScratch(m.head, sp)
	nn.AttachScratch(m.body, sp)
	nn.AttachScratch(m.bodyEnd, sp)
	nn.AttachScratch(m.tail, sp)
	return m
}

// Forward maps LR to SR.
func (m *SRResNet) Forward(x *tensor.Tensor) *tensor.Tensor {
	h := m.head.Forward(x)
	m.lastHead = h
	b := m.body.Forward(h)
	b = m.bodyEnd.Forward(b)
	b.Add(h)
	return m.tail.Forward(b)
}

// Backward propagates gradients.
func (m *SRResNet) Backward(g *tensor.Tensor) *tensor.Tensor {
	g = m.tail.Backward(g)
	gb := m.bodyEnd.Backward(g)
	gb = m.body.Backward(gb)
	gb.Add(g)
	m.lastHead = nil
	return m.head.Backward(gb)
}

// Params returns the trainable parameters.
func (m *SRResNet) Params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, m.head.Params()...)
	ps = append(ps, m.body.Params()...)
	ps = append(ps, m.bodyEnd.Params()...)
	ps = append(ps, m.tail.Params()...)
	return ps
}

// NumParams returns the trainable parameter count.
func (m *SRResNet) NumParams() int { return nn.NumParams(m.Params()) }

// SetGradHook installs a per-parameter gradient-ready hook; all four
// stages are Sequentials, which fire for their own layers in reverse.
func (m *SRResNet) SetGradHook(h nn.GradHook) {
	m.head.SetGradHook(h)
	m.body.SetGradHook(h)
	m.bodyEnd.SetGradHook(h)
	m.tail.SetGradHook(h)
}
