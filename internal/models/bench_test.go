package models

import (
	"fmt"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// BenchmarkEDSRForwardBackward measures a full training iteration of the
// tiny EDSR configuration at several patch sizes.
func BenchmarkEDSRForwardBackward(b *testing.B) {
	for _, patch := range []int{12, 24} {
		b.Run(fmt.Sprintf("patch%d", patch), func(b *testing.B) {
			rng := tensor.NewRNG(1)
			m := NewEDSR(EDSRTiny(), rng)
			x := tensor.New(1, 3, patch, patch)
			x.FillUniform(rng, 0, 1)
			target := tensor.New(1, 3, patch*2, patch*2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				y := m.Forward(x)
				_, g := nn.L1Loss{}.Forward(y, target)
				nn.ZeroGrads(m.Params())
				m.Backward(g)
			}
		})
	}
}

// BenchmarkSRCNNForward measures the lighter SRCNN baseline.
func BenchmarkSRCNNForward(b *testing.B) {
	rng := tensor.NewRNG(2)
	m := NewSRCNN(3, rng)
	x := tensor.New(1, 3, 24, 24)
	x.FillUniform(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

// BenchmarkBicubicUpscale measures the classical baseline.
func BenchmarkBicubicUpscale(b *testing.B) {
	rng := tensor.NewRNG(3)
	x := tensor.New(1, 3, 48, 48)
	x.FillUniform(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BicubicUpscale(x, 2)
	}
}

// BenchmarkMiniResNetForwardBackward contrasts the classifier's per-image
// cost against EDSR's (the real-compute version of the paper's Fig. 1).
func BenchmarkMiniResNetForwardBackward(b *testing.B) {
	rng := tensor.NewRNG(4)
	m := NewMiniResNet([]int{8, 16}, 1, 10, rng)
	x := tensor.New(1, 3, 48, 48)
	x.FillUniform(rng, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := m.Forward(x)
		_, g := nn.SoftmaxCrossEntropy{}.Forward(y, []int{1})
		nn.ZeroGrads(m.Params())
		m.Backward(g)
	}
}
