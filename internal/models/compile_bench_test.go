package models

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// The compiled-vs-training forward benchmarks back the serving speedup
// numbers in BENCH_serve.json: run with -cpu 1 on an otherwise idle
// machine to reproduce the per-core figures.

func benchEDSRForward(b *testing.B, compile bool, prec nn.Precision) {
	rng := tensor.NewRNG(1)
	m := NewEDSR(EDSRTiny(), rng)
	x := tensor.New(1, 3, 32, 32)
	x.FillUniform(rng, 0, 1)
	var fwd func(*tensor.Tensor) *tensor.Tensor
	if compile {
		fwd = m.Compile(CompileOptions{Precision: prec}).Forward
	} else {
		fwd = m.Forward
	}
	fwd(x) // warm up the reused buffers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fwd(x)
	}
}

func BenchmarkEDSRForwardTraining(b *testing.B) { benchEDSRForward(b, false, nn.PrecFloat32) }
func BenchmarkCompiledEDSRFloat32(b *testing.B) { benchEDSRForward(b, true, nn.PrecFloat32) }
func BenchmarkCompiledEDSRInt8(b *testing.B)    { benchEDSRForward(b, true, nn.PrecInt8) }
