package models

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Discriminator is the SRGAN-style image discriminator: strided
// convolution blocks with LeakyReLU (batch norm after the first block),
// global average pooling, and a linear head producing one realness logit
// per image. Together with the SRResNet generator and BCEWithLogits it
// completes the GAN branch of the DLSR family the paper's background
// surveys (SRCNN → ... → SRGAN).
type Discriminator struct {
	net  *nn.Sequential
	pool *nn.GlobalAvgPool
	head *nn.Linear
}

// NewDiscriminator builds a discriminator over c-channel images with the
// given widths (each stage halves the spatial resolution). Input spatial
// dimensions must be divisible by 2^len(widths).
func NewDiscriminator(c int, widths []int, rng *tensor.RNG) *Discriminator {
	if len(widths) == 0 {
		panic("models: Discriminator needs at least one stage")
	}
	d := &Discriminator{net: nn.NewSequential("disc")}
	prev := c
	for i, wdt := range widths {
		d.net.Append(nn.NewConv2d(fmt.Sprintf("disc.%d.conv", i), prev, wdt, 3, 2, 1, true, rng))
		if i > 0 {
			d.net.Append(nn.NewBatchNorm2d(fmt.Sprintf("disc.%d.bn", i), wdt))
		}
		d.net.Append(nn.NewLeakyReLU(0.2))
		prev = wdt
	}
	d.pool = nn.NewGlobalAvgPool()
	d.head = nn.NewLinear("disc.head", prev, 1, rng)
	nn.AttachScratch(d.net, nn.NewScratchPool())
	return d
}

// Forward returns one realness logit per image: (N, 1).
func (d *Discriminator) Forward(x *tensor.Tensor) *tensor.Tensor {
	h := d.net.Forward(x)
	h = d.pool.Forward(h)
	return d.head.Forward(h)
}

// Backward propagates gradients back to the input image — the path the
// generator's adversarial gradient takes.
func (d *Discriminator) Backward(g *tensor.Tensor) *tensor.Tensor {
	g = d.head.Backward(g)
	g = d.pool.Backward(g)
	return d.net.Backward(g)
}

// Params returns the trainable parameters.
func (d *Discriminator) Params() []*nn.Param {
	ps := d.net.Params()
	return append(ps, d.head.Params()...)
}

// NumParams returns the trainable parameter count.
func (d *Discriminator) NumParams() int { return nn.NumParams(d.Params()) }
