// Package models provides the model zoo for the reproduction: EDSR (the
// paper's workload), the SRCNN and SRResNet super-resolution baselines, a
// bicubic upsampler (the classical baseline in the paper's Fig. 4), and a
// mini-ResNet classifier used for the ResNet-50-vs-EDSR comparison in
// Fig. 1.
package models

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// DIV2KMean is the per-channel RGB mean of the DIV2K training set (in
// [0,1] pixel scale) that the public EDSR implementation subtracts before
// the body and re-adds after the tail.
var DIV2KMean = []float32{0.4488, 0.4371, 0.4040}

// EDSRConfig selects the EDSR variant.
type EDSRConfig struct {
	// NumBlocks is the residual block count (paper: 32).
	NumBlocks int
	// NumFeats is the feature map width. The paper's text says 64; the
	// public 32-block config uses 256, which is what the Table I message
	// sizes imply. Both are provided (see DESIGN.md).
	NumFeats int
	// Scale is the upscaling factor (paper: 2).
	Scale int
	// ResScale is the residual scaling constant (paper: 0.1).
	ResScale float32
	// Colors is the channel count (3 for RGB).
	Colors int
}

// EDSRPaper is the configuration named in the paper's Section IV-C.
func EDSRPaper() EDSRConfig {
	return EDSRConfig{NumBlocks: 32, NumFeats: 256, Scale: 2, ResScale: 0.1, Colors: 3}
}

// EDSRBaseline is the public "EDSR baseline" configuration (16 blocks, 64
// features, no residual scaling).
func EDSRBaseline() EDSRConfig {
	return EDSRConfig{NumBlocks: 16, NumFeats: 64, Scale: 2, ResScale: 1, Colors: 3}
}

// EDSRTiny is a laptop-scale configuration used by tests and examples that
// actually train; it preserves the architecture end to end.
func EDSRTiny() EDSRConfig {
	return EDSRConfig{NumBlocks: 4, NumFeats: 16, Scale: 2, ResScale: 0.1, Colors: 3}
}

// Validate reports configuration errors.
func (c EDSRConfig) Validate() error {
	if c.NumBlocks < 1 || c.NumFeats < 1 || c.Colors < 1 {
		return fmt.Errorf("models: invalid EDSR config %+v", c)
	}
	switch c.Scale {
	case 2, 3, 4:
		return nil
	default:
		return fmt.Errorf("models: unsupported EDSR scale %d (want 2, 3, or 4)", c.Scale)
	}
}

// EDSR is the Enhanced Deep Super-Resolution network (Lim et al., 2017):
// SubMean → head conv → B× EDSR residual blocks → body-end conv (+ global
// skip) → upsampler (conv + pixel shuffle) → tail conv → AddMean.
type EDSR struct {
	Config  EDSRConfig
	subMean *nn.MeanShift
	addMean *nn.MeanShift
	head    *nn.Conv2d
	body    *nn.Sequential
	bodyEnd *nn.Conv2d
	tail    *nn.Sequential

	lastHeadOut *tensor.Tensor

	gradHook      nn.GradHook
	headParams    []*nn.Param // cached for hook firing (Params() allocates)
	bodyEndParams []*nn.Param
}

// NewEDSR builds an EDSR with the given configuration.
func NewEDSR(cfg EDSRConfig, rng *tensor.RNG) *EDSR {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	mean := DIV2KMean
	if cfg.Colors != 3 {
		mean = make([]float32, cfg.Colors)
		for i := range mean {
			mean[i] = 0.45
		}
	}
	m := &EDSR{
		Config:  cfg,
		subMean: nn.NewMeanShift(mean, nil, -1),
		addMean: nn.NewMeanShift(mean, nil, +1),
		head:    nn.NewConv2d("head", cfg.Colors, cfg.NumFeats, 3, 1, 1, true, rng),
	}
	m.body = nn.NewSequential("body")
	for i := 0; i < cfg.NumBlocks; i++ {
		m.body.Append(nn.NewResBlock(fmt.Sprintf("body.%d", i), nn.StyleEDSR, cfg.NumFeats, cfg.ResScale, rng))
	}
	m.bodyEnd = nn.NewConv2d("body.end", cfg.NumFeats, cfg.NumFeats, 3, 1, 1, true, rng)
	m.tail = nn.NewSequential("tail")
	// The upsampler stacks ×2 stages (or a single ×3 stage), each a conv
	// widening to feats*s² followed by PixelShuffle(s).
	appendUpsample := func(idx, s int) {
		m.tail.Append(nn.NewConv2d(fmt.Sprintf("tail.up%d", idx), cfg.NumFeats, cfg.NumFeats*s*s, 3, 1, 1, true, rng))
		m.tail.Append(nn.NewPixelShuffle(s))
	}
	switch cfg.Scale {
	case 2:
		appendUpsample(0, 2)
	case 3:
		appendUpsample(0, 3)
	case 4:
		appendUpsample(0, 2)
		appendUpsample(1, 2)
	}
	m.tail.Append(nn.NewConv2d("tail.out", cfg.NumFeats, cfg.Colors, 3, 1, 1, true, rng))
	// All convolutions share one per-worker scratch pool: layers run
	// sequentially, so the pool's packed-panel and column buffers are
	// reused by every layer, keeping steady-state training allocation-free.
	sp := nn.NewScratchPool()
	nn.AttachScratch(m.head, sp)
	nn.AttachScratch(m.body, sp)
	nn.AttachScratch(m.bodyEnd, sp)
	nn.AttachScratch(m.tail, sp)
	return m
}

// Forward maps an LR batch (N, C, h, w) to an SR batch (N, C, h*S, w*S).
func (m *EDSR) Forward(x *tensor.Tensor) *tensor.Tensor {
	x = m.subMean.Forward(x)
	h := m.head.Forward(x)
	m.lastHeadOut = h
	b := m.body.Forward(h)
	b = m.bodyEnd.Forward(b)
	b.Add(h) // global residual skip around the body
	out := m.tail.Forward(b)
	return m.addMean.Forward(out)
}

// Backward propagates gradients through the network, accumulating
// parameter gradients. With a gradient hook installed (SetGradHook), each
// parameter is announced as soon as its layer's backward contribution
// completes — tail first, head last — so gradient reduction can overlap
// the rest of the pass.
func (m *EDSR) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	g := m.addMean.Backward(gradOut)
	g = m.tail.Backward(g)
	gBody := m.bodyEnd.Backward(g)
	m.fire(m.bodyEndParams)
	gBody = m.body.Backward(gBody)
	gBody.Add(g) // gradient of the global skip
	gIn := m.head.Backward(gBody)
	m.fire(m.headParams)
	m.lastHeadOut = nil
	return m.subMean.Backward(gIn)
}

func (m *EDSR) fire(ps []*nn.Param) {
	if m.gradHook == nil {
		return
	}
	for _, p := range ps {
		m.gradHook(p)
	}
}

// SetGradHook installs h to fire per parameter during Backward, in
// reverse-layer order. The tail and body containers notify for their own
// layers; the head and body-end convolutions are fired here.
func (m *EDSR) SetGradHook(h nn.GradHook) {
	m.gradHook = h
	m.tail.SetGradHook(h)
	m.body.SetGradHook(h)
	m.headParams, m.bodyEndParams = nil, nil
	if h != nil {
		m.headParams = m.head.Params()
		m.bodyEndParams = m.bodyEnd.Params()
	}
}

// Params returns all trainable parameters in a stable order.
func (m *EDSR) Params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, m.head.Params()...)
	ps = append(ps, m.body.Params()...)
	ps = append(ps, m.bodyEnd.Params()...)
	ps = append(ps, m.tail.Params()...)
	return ps
}

// NumParams returns the trainable parameter count.
func (m *EDSR) NumParams() int { return nn.NumParams(m.Params()) }
