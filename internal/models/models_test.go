package models

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestEDSRConfigValidate(t *testing.T) {
	if err := EDSRPaper().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := EDSRConfig{NumBlocks: 0, NumFeats: 4, Scale: 2, Colors: 3}
	if bad.Validate() == nil {
		t.Fatal("expected error for zero blocks")
	}
	bad = EDSRConfig{NumBlocks: 1, NumFeats: 4, Scale: 5, Colors: 3}
	if bad.Validate() == nil {
		t.Fatal("expected error for scale 5")
	}
}

func TestEDSRForwardShapes(t *testing.T) {
	rng := tensor.NewRNG(1)
	for _, scale := range []int{2, 3, 4} {
		cfg := EDSRConfig{NumBlocks: 2, NumFeats: 8, Scale: scale, ResScale: 0.1, Colors: 3}
		m := NewEDSR(cfg, rng)
		x := tensor.New(2, 3, 8, 6)
		x.FillUniform(rng, 0, 1)
		y := m.Forward(x)
		want := []int{2, 3, 8 * scale, 6 * scale}
		for i, d := range want {
			if y.Dim(i) != d {
				t.Fatalf("scale %d: output shape %v, want %v", scale, y.Shape(), want)
			}
		}
	}
}

func TestEDSRBackwardShapes(t *testing.T) {
	rng := tensor.NewRNG(2)
	m := NewEDSR(EDSRTiny(), rng)
	x := tensor.New(1, 3, 8, 8)
	x.FillUniform(rng, 0, 1)
	y := m.Forward(x)
	g := m.Backward(y.Clone())
	if !g.SameShape(x) {
		t.Fatalf("input grad shape %v, want %v", g.Shape(), x.Shape())
	}
}

func TestEDSRParamNamesUnique(t *testing.T) {
	rng := tensor.NewRNG(3)
	m := NewEDSR(EDSRTiny(), rng)
	if err := nn.CheckUniqueNames(m.Params()); err != nil {
		t.Fatal(err)
	}
}

func TestEDSRPaperParamCount(t *testing.T) {
	rng := tensor.NewRNG(4)
	m := NewEDSR(EDSRPaper(), rng)
	// EDSR x2 with B=32, F=256: ≈40.7M parameters (the published model).
	got := m.NumParams()
	if got < 38_000_000 || got > 46_000_000 {
		t.Fatalf("EDSR paper-config params = %d, want ≈40-43M", got)
	}
	// Gradient volume drives Table I: must exceed two 64MB fusion buffers.
	if bytes := nn.GradBytes(m.Params()); bytes < 2*64<<20 {
		t.Fatalf("gradient volume %d B too small to exercise Table I buckets", bytes)
	}
}

func TestEDSRGradientFlowsToAllParams(t *testing.T) {
	rng := tensor.NewRNG(5)
	m := NewEDSR(EDSRConfig{NumBlocks: 2, NumFeats: 6, Scale: 2, ResScale: 0.1, Colors: 3}, rng)
	x := tensor.New(1, 3, 6, 6)
	x.FillUniform(rng, 0, 1)
	y := m.Forward(x)
	target := tensor.New(y.Shape()...)
	target.FillUniform(rng, 0, 1)
	_, grad := nn.L1Loss{}.Forward(y, target)
	nn.ZeroGrads(m.Params())
	m.Backward(grad)
	for _, p := range m.Params() {
		if p.Grad.AbsSum() == 0 {
			t.Errorf("parameter %s received zero gradient", p.Name)
		}
	}
}

func TestEDSRTinyLearnsToBeatBicubic(t *testing.T) {
	if testing.Short() {
		t.Skip("training test")
	}
	rng := tensor.NewRNG(6)
	cfg := EDSRConfig{NumBlocks: 2, NumFeats: 8, Scale: 2, ResScale: 0.1, Colors: 3}
	m := NewEDSR(cfg, rng)
	opt := nn.NewAdam(m.Params(), 1e-3)
	// One fixed micro-image: test that optimization reduces L1 loss
	// substantially (full PSNR-vs-bicubic comparisons live in the trainer
	// integration tests).
	hr := tensor.New(2, 3, 16, 16)
	hr.FillUniform(rng, 0, 1)
	lr := BicubicDownscale(hr, 2)
	var first, last float64
	for i := 0; i < 40; i++ {
		opt.ZeroGrad()
		y := m.Forward(lr)
		loss, g := nn.L1Loss{}.Forward(y, hr)
		if i == 0 {
			first = loss
		}
		last = loss
		m.Backward(g)
		opt.Step()
	}
	if last > first*0.7 {
		t.Fatalf("EDSR did not learn: first %g last %g", first, last)
	}
}

func TestSRCNNShapesAndGradients(t *testing.T) {
	rng := tensor.NewRNG(7)
	m := NewSRCNN(3, rng)
	x := tensor.New(1, 3, 12, 12)
	x.FillUniform(rng, 0, 1)
	y := m.Forward(x)
	if !y.SameShape(x) {
		t.Fatalf("SRCNN should preserve shape, got %v", y.Shape())
	}
	g := m.Backward(y.Clone())
	if !g.SameShape(x) {
		t.Fatalf("SRCNN grad shape %v", g.Shape())
	}
	if m.NumParams() == 0 {
		t.Fatal("SRCNN has no params")
	}
}

func TestSRResNetShapes(t *testing.T) {
	rng := tensor.NewRNG(8)
	for _, scale := range []int{2, 4} {
		m := NewSRResNet(3, 2, 8, scale, rng)
		x := tensor.New(1, 3, 6, 6)
		x.FillUniform(rng, 0, 1)
		y := m.Forward(x)
		if y.Dim(2) != 6*scale || y.Dim(3) != 6*scale {
			t.Fatalf("scale %d: got %v", scale, y.Shape())
		}
		g := m.Backward(y.Clone())
		if !g.SameShape(x) {
			t.Fatalf("grad shape %v", g.Shape())
		}
	}
	if err := nn.CheckUniqueNames(NewSRResNet(3, 2, 8, 2, rng).Params()); err != nil {
		t.Fatal(err)
	}
}

func TestSRResNetHasBatchNormEDSRDoesNot(t *testing.T) {
	// The architectural contrast from paper Fig. 5a: SRResNet carries BN
	// parameters (gamma/beta), EDSR must not.
	rng := tensor.NewRNG(9)
	srresnet := NewSRResNet(3, 2, 8, 2, rng)
	edsr := NewEDSR(EDSRTiny(), rng)
	hasBN := func(ps []*nn.Param) bool {
		for _, p := range ps {
			if len(p.Name) > 6 && (contains(p.Name, ".gamma") || contains(p.Name, ".beta")) {
				return true
			}
		}
		return false
	}
	if !hasBN(srresnet.Params()) {
		t.Fatal("SRResNet should contain batch-norm parameters")
	}
	if hasBN(edsr.Params()) {
		t.Fatal("EDSR must not contain batch-norm parameters")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestMiniResNetForwardBackward(t *testing.T) {
	rng := tensor.NewRNG(10)
	m := NewMiniResNet([]int{8, 16}, 1, 10, rng)
	x := tensor.New(2, 3, 16, 16)
	x.FillUniform(rng, 0, 1)
	y := m.Forward(x)
	if y.Dim(0) != 2 || y.Dim(1) != 10 {
		t.Fatalf("logits shape %v", y.Shape())
	}
	loss, g := nn.SoftmaxCrossEntropy{}.Forward(y, []int{3, 7})
	if loss <= 0 {
		t.Fatalf("loss %g", loss)
	}
	gi := m.Backward(g)
	if !gi.SameShape(x) {
		t.Fatalf("grad shape %v", gi.Shape())
	}
	if err := nn.CheckUniqueNames(m.Params()); err != nil {
		t.Fatal(err)
	}
}

func TestBicubicIdentityOnConstant(t *testing.T) {
	x := tensor.New(1, 1, 8, 8)
	x.Fill(0.5)
	up := BicubicUpscale(x, 2)
	for i, v := range up.Data() {
		if math.Abs(float64(v)-0.5) > 1e-5 {
			t.Fatalf("constant image should stay constant: [%d]=%g", i, v)
		}
	}
	down := BicubicDownscale(x, 2)
	for _, v := range down.Data() {
		if math.Abs(float64(v)-0.5) > 1e-5 {
			t.Fatalf("downscale of constant: %g", v)
		}
	}
}

func TestBicubicPreservesLinearGradient(t *testing.T) {
	// Bicubic interpolation reproduces affine functions exactly away from
	// borders.
	h, w := 16, 16
	x := tensor.New(1, 1, h, w)
	for y := 0; y < h; y++ {
		for xx := 0; xx < w; xx++ {
			x.Set(float32(xx)/float32(w), 0, 0, y, xx)
		}
	}
	up := BicubicUpscale(x, 2)
	// Check interior points follow the same linear ramp.
	for _, xx := range []int{8, 16, 24} {
		got := float64(up.At(0, 0, 16, xx))
		want := (float64(xx)+0.5)/32 - 0.5/16 // ramp value at upsampled center
		if math.Abs(got-want) > 0.02 {
			t.Errorf("x=%d: got %g want ≈%g", xx, got, want)
		}
	}
}

func TestBicubicRoundTripClose(t *testing.T) {
	rng := tensor.NewRNG(11)
	// A smooth image downsampled then upsampled should be close to itself.
	ds := tensor.New(1, 1, 16, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			v := 0.5 + 0.3*math.Sin(float64(x)/4) + 0.2*math.Cos(float64(y)/5)
			ds.Set(float32(v), 0, 0, y, x)
		}
	}
	_ = rng
	rt := BicubicUpscale(BicubicDownscale(ds, 2), 2)
	var maxErr float64
	for i := range ds.Data() {
		e := math.Abs(float64(ds.Data()[i] - rt.Data()[i]))
		if e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.12 {
		t.Fatalf("round-trip error %g too large for a smooth image", maxErr)
	}
}

func TestBicubicOutputInRange(t *testing.T) {
	rng := tensor.NewRNG(12)
	x := tensor.New(1, 3, 12, 12)
	x.FillUniform(rng, 0, 1)
	up := BicubicUpscale(x, 2)
	// Bicubic can overshoot slightly but must stay near [0,1].
	if up.Min() < -0.2 || up.Max() > 1.2 {
		t.Fatalf("bicubic output out of plausible range: [%g, %g]", up.Min(), up.Max())
	}
}

func TestFSRCNNShapes(t *testing.T) {
	rng := tensor.NewRNG(13)
	for _, scale := range []int{2, 3, 4} {
		m := NewFSRCNN(3, 16, 8, 2, scale, rng)
		x := tensor.New(1, 3, 6, 5)
		x.FillUniform(rng, 0, 1)
		y := m.Forward(x)
		if y.Dim(2) != 6*scale || y.Dim(3) != 5*scale {
			t.Fatalf("scale %d: got %v", scale, y.Shape())
		}
		g := m.Backward(y.Clone())
		if !g.SameShape(x) {
			t.Fatalf("grad shape %v", g.Shape())
		}
	}
}

func TestFSRCNNParamCount(t *testing.T) {
	rng := tensor.NewRNG(14)
	// Published config d=56, s=12, m=4 at x2 is ~13k params — fewer than
	// SRCNN and far cheaper in FLOPs (the body runs at LR resolution).
	m := NewFSRCNN(3, 56, 12, 4, 2, rng)
	if n := m.NumParams(); n < 10000 || n > 20000 {
		t.Fatalf("FSRCNN params %d, want ~13k", n)
	}
	if err := nn.CheckUniqueNames(m.Params()); err != nil {
		t.Fatal(err)
	}
}

func TestFSRCNNValidation(t *testing.T) {
	rng := tensor.NewRNG(15)
	for _, f := range []func(){
		func() { NewFSRCNN(3, 16, 8, 2, 5, rng) },
		func() { NewFSRCNN(3, 0, 8, 2, 2, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDiscriminatorShapes(t *testing.T) {
	rng := tensor.NewRNG(16)
	d := NewDiscriminator(3, []int{8, 16}, rng)
	x := tensor.New(2, 3, 16, 16)
	x.FillUniform(rng, 0, 1)
	y := d.Forward(x)
	if y.Dim(0) != 2 || y.Dim(1) != 1 {
		t.Fatalf("logits %v", y.Shape())
	}
	g := d.Backward(y.Clone())
	if !g.SameShape(x) {
		t.Fatalf("grad %v", g.Shape())
	}
	if err := nn.CheckUniqueNames(d.Params()); err != nil {
		t.Fatal(err)
	}
}

// TestDiscriminatorLearnsToSeparate: a tiny discriminator must learn to
// separate bright from dark images within a few steps.
func TestDiscriminatorLearnsToSeparate(t *testing.T) {
	rng := tensor.NewRNG(17)
	d := NewDiscriminator(1, []int{8}, rng)
	opt := nn.NewAdam(d.Params(), 1e-2)
	mkBatch := func() (*tensor.Tensor, *tensor.Tensor) {
		x := tensor.New(8, 1, 8, 8)
		y := tensor.New(8, 1)
		for i := 0; i < 8; i++ {
			lo, hi := float32(0.0), float32(0.4)
			if i%2 == 0 {
				lo, hi = 0.6, 1.0
				y.Set(1, i, 0)
			}
			for j := 0; j < 64; j++ {
				x.Data()[i*64+j] = lo + (hi-lo)*rng.Float32()
			}
		}
		return x, y
	}
	var first, last float64
	for step := 0; step < 60; step++ {
		x, y := mkBatch()
		opt.ZeroGrad()
		logits := d.Forward(x)
		l, g := nn.BCEWithLogits{}.Forward(logits, y)
		d.Backward(g)
		opt.Step()
		if step == 0 {
			first = l
		}
		last = l
	}
	if last > first*0.5 {
		t.Fatalf("discriminator failed to learn: first %g last %g", first, last)
	}
}
