package models

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// TestCompiledEDSRBitExact: the float32 compiled graph must reproduce the
// training graph's forward bit for bit — prepacking, im2col fusion, and
// epilogue fusion are pure reorganizations of the same arithmetic.
func TestCompiledEDSRBitExact(t *testing.T) {
	rng := tensor.NewRNG(11)
	m := NewEDSR(EDSRTiny(), rng)
	c := m.Compile(CompileOptions{Precision: nn.PrecFloat32})
	for _, n := range []int{1, 3} {
		x := tensor.New(n, 3, 24, 24)
		x.FillUniform(rng, 0, 1)
		want := m.Forward(x).Data()
		got := c.Forward(x).Data()
		if len(want) != len(got) {
			t.Fatalf("batch %d: output length %d, want %d", n, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("batch %d: output[%d] = %v, want %v (not bit-exact)", n, i, got[i], want[i])
			}
		}
	}
}

// TestCompiledSRCNNBitExact mirrors the EDSR test for the SRCNN graph.
func TestCompiledSRCNNBitExact(t *testing.T) {
	rng := tensor.NewRNG(13)
	m := NewSRCNN(3, rng)
	c := m.Compile(CompileOptions{Precision: nn.PrecFloat32})
	x := tensor.New(1, 3, 20, 20)
	x.FillUniform(rng, 0, 1)
	want := m.Forward(x).Data()
	got := c.Forward(x).Data()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("output[%d] = %v, want %v (not bit-exact)", i, got[i], want[i])
		}
	}
}

// TestCompiledEDSRZeroAlloc enforces zero steady-state allocations on the
// whole compiled model forward, for both precisions.
func TestCompiledEDSRZeroAlloc(t *testing.T) {
	rng := tensor.NewRNG(2)
	m := NewEDSR(EDSRTiny(), rng)
	x := tensor.New(1, 3, 32, 32)
	x.FillUniform(rng, 0, 1)
	for _, prec := range []nn.Precision{nn.PrecFloat32, nn.PrecInt8} {
		c := m.Compile(CompileOptions{Precision: prec})
		c.Forward(x) // warm up buffers
		if allocs := testing.AllocsPerRun(5, func() { c.Forward(x) }); allocs != 0 {
			t.Fatalf("%v compiled forward allocates %v times per run, want 0", prec, allocs)
		}
	}
}

// TestCompiledEDSRInt8PSNR pins the quantized graph's fidelity floor.
// With dynamic per-tensor u7 activations the error accumulates across
// all ~18 convolutions of EDSR-tiny (per-stage isolation shows no single
// culprit); on random weights this lands around 26 dB vs float32. The
// floor below catches regressions in the quantization pipeline itself —
// whether a given checkpoint's int8 form is fit to serve is decided by
// the golden-set PSNR gate at model load, not here.
func TestCompiledEDSRInt8PSNR(t *testing.T) {
	rng := tensor.NewRNG(19)
	m := NewEDSR(EDSRTiny(), rng)
	ref := m.Compile(CompileOptions{Precision: nn.PrecFloat32})
	q := m.Compile(CompileOptions{Precision: nn.PrecInt8})
	x := tensor.New(1, 3, 32, 32)
	x.FillUniform(rng, 0, 1)
	a := ref.Forward(x)
	b := q.Forward(x)
	psnr := metrics.PSNR(a, b, 1)
	if psnr < 24 {
		t.Fatalf("int8 compiled EDSR PSNR vs float32 = %.2f dB, want >= 24", psnr)
	}
	t.Logf("int8 compiled EDSR PSNR vs float32 = %.2f dB", psnr)
}
