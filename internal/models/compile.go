package models

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Inference compile pass. Compile snapshots a trained model into a
// forward-only serving graph built from nn.FusedConv2d: every
// convolution's weights are packed into the GEMM micro-kernel panel
// layout once (or quantized to per-channel int8), every conv+ReLU pair
// is fused into a single kernel, and the residual/skip arithmetic reuses
// the layers' own buffers so the steady-state forward performs zero heap
// allocations. The compiled graph shares nothing with the training
// model: Compile can be called per serving replica and the replicas run
// concurrently.

// CompileOptions configures the inference compile pass.
type CompileOptions struct {
	// Precision selects fused float32 (bit-exact with training) or int8
	// quantized convolutions.
	Precision nn.Precision
}

// compiledResBlock is an EDSR residual block with the first conv's ReLU
// folded into its GEMM epilogue.
type compiledResBlock struct {
	conv1, conv2 *nn.FusedConv2d // conv1 carries the fused ReLU
}

// CompiledEDSR is the optimized serving form of EDSR. Construct with
// EDSR.Compile; Forward-only.
type CompiledEDSR struct {
	Config    EDSRConfig
	Precision nn.Precision

	subMean, addMean *nn.MeanShift
	head             *nn.FusedConv2d
	blocks           []*compiledResBlock
	bodyEnd          *nn.FusedConv2d
	tailConvs        []*nn.FusedConv2d
	tailShuffles     []*nn.PixelShuffle
	tailOut          *nn.FusedConv2d
}

// Compile builds the fused inference graph from the trained weights.
func (m *EDSR) Compile(opts CompileOptions) *CompiledEDSR {
	cfg := m.Config
	mean := DIV2KMean
	if cfg.Colors != 3 {
		mean = make([]float32, cfg.Colors)
		for i := range mean {
			mean[i] = 0.45
		}
	}
	prec := opts.Precision
	c := &CompiledEDSR{
		Config:    cfg,
		Precision: prec,
		subMean:   nn.NewMeanShift(mean, nil, -1),
		addMean:   nn.NewMeanShift(mean, nil, +1),
		head:      nn.CompileConv2d(m.head, false, prec),
		bodyEnd:   nn.CompileConv2d(m.bodyEnd, false, prec),
	}
	for _, l := range m.body.Layers {
		rb, ok := l.(*nn.ResBlock)
		if !ok {
			panic(fmt.Sprintf("models: EDSR body layer %T is not a ResBlock", l))
		}
		conv1, ok1 := rb.Body.Layers[0].(*nn.Conv2d)
		conv2, ok2 := rb.Body.Layers[2].(*nn.Conv2d)
		if !ok1 || !ok2 {
			panic("models: EDSR ResBlock body is not conv-relu-conv")
		}
		c.blocks = append(c.blocks, &compiledResBlock{
			conv1: nn.CompileConv2d(conv1, true, prec),
			conv2: nn.CompileConv2d(conv2, false, prec),
		})
	}
	for _, l := range m.tail.Layers {
		switch v := l.(type) {
		case *nn.Conv2d:
			c.tailConvs = append(c.tailConvs, nn.CompileConv2d(v, false, prec))
		case *nn.PixelShuffle:
			c.tailShuffles = append(c.tailShuffles, nn.NewPixelShuffle(v.R))
		default:
			panic(fmt.Sprintf("models: EDSR tail layer %T unsupported", l))
		}
	}
	if len(c.tailConvs) != len(c.tailShuffles)+1 {
		panic("models: EDSR tail shape unexpected")
	}
	// The final tail conv produces output pixels; split it off so the
	// upsample convs pair with their shuffles.
	c.tailOut = c.tailConvs[len(c.tailConvs)-1]
	c.tailConvs = c.tailConvs[:len(c.tailConvs)-1]
	// One scratch pool across all fused layers, as in the training graph.
	sp := nn.NewScratchPool()
	c.attachScratch(sp)
	return c
}

func (c *CompiledEDSR) attachScratch(sp *nn.ScratchPool) {
	c.head.UseScratch(sp)
	for _, b := range c.blocks {
		b.conv1.UseScratch(sp)
		b.conv2.UseScratch(sp)
	}
	c.bodyEnd.UseScratch(sp)
	for _, tc := range c.tailConvs {
		tc.UseScratch(sp)
	}
	c.tailOut.UseScratch(sp)
}

// Forward maps an LR batch (N, C, h, w) to an SR batch (N, C, h*S, w*S).
// In float32 precision the result is bit-exact with EDSR.Forward.
func (c *CompiledEDSR) Forward(x *tensor.Tensor) *tensor.Tensor {
	x = c.subMean.Forward(x)
	h := c.head.Forward(x)
	cur := h
	for _, b := range c.blocks {
		t := b.conv1.Forward(cur)
		t = b.conv2.Forward(t)
		if c.Config.ResScale != 1 {
			t.Scale(c.Config.ResScale)
		}
		t.Add(cur)
		cur = t
	}
	b := c.bodyEnd.Forward(cur)
	b.Add(h) // global residual skip around the body
	for i, tc := range c.tailConvs {
		b = c.tailShuffles[i].Forward(tc.Forward(b))
	}
	out := c.tailOut.Forward(b)
	return c.addMean.Forward(out)
}

// WeightBytes returns the total packed weight footprint in bytes.
func (c *CompiledEDSR) WeightBytes() int {
	total := c.head.WeightBytes() + c.bodyEnd.WeightBytes() + c.tailOut.WeightBytes()
	for _, b := range c.blocks {
		total += b.conv1.WeightBytes() + b.conv2.WeightBytes()
	}
	for _, tc := range c.tailConvs {
		total += tc.WeightBytes()
	}
	return total
}

// CompiledSRCNN is the optimized serving form of SRCNN (the convolutional
// refinement only — serving wraps it with the bicubic pre-upscale, as it
// does the training graph).
type CompiledSRCNN struct {
	Precision nn.Precision

	c1, c2, c3 *nn.FusedConv2d // c1 and c2 carry fused ReLUs
}

// Compile builds the fused inference graph from the trained weights.
func (m *SRCNN) Compile(opts CompileOptions) *CompiledSRCNN {
	convs := make([]*nn.Conv2d, 0, 3)
	for _, l := range m.net.Layers {
		if cv, ok := l.(*nn.Conv2d); ok {
			convs = append(convs, cv)
		}
	}
	if len(convs) != 3 {
		panic("models: SRCNN graph is not conv-relu-conv-relu-conv")
	}
	prec := opts.Precision
	c := &CompiledSRCNN{
		Precision: prec,
		c1:        nn.CompileConv2d(convs[0], true, prec),
		c2:        nn.CompileConv2d(convs[1], true, prec),
		c3:        nn.CompileConv2d(convs[2], false, prec),
	}
	sp := nn.NewScratchPool()
	c.c1.UseScratch(sp)
	c.c2.UseScratch(sp)
	c.c3.UseScratch(sp)
	return c
}

// Forward refines a bicubic-upsampled batch. In float32 precision the
// result is bit-exact with SRCNN.Forward.
func (c *CompiledSRCNN) Forward(x *tensor.Tensor) *tensor.Tensor {
	return c.c3.Forward(c.c2.Forward(c.c1.Forward(x)))
}
