package models

import (
	"math"

	"repro/internal/tensor"
)

// bicubicKernel is the Keys cubic convolution kernel with a = −0.5, the
// standard "bicubic" used by image libraries and by the EDSR data pipeline
// for generating LR images.
func bicubicKernel(x float64) float64 {
	const a = -0.5
	x = math.Abs(x)
	switch {
	case x <= 1:
		return (a+2)*x*x*x - (a+3)*x*x + 1
	case x < 2:
		return a*x*x*x - 5*a*x*x + 8*a*x - 4*a
	default:
		return 0
	}
}

// resampleAxis computes, for each output coordinate, the 4 source taps and
// weights of a bicubic resample from size in to size out.
func resampleAxis(in, out int) ([][4]int, [][4]float64) {
	idx := make([][4]int, out)
	wts := make([][4]float64, out)
	scale := float64(in) / float64(out)
	for o := 0; o < out; o++ {
		// Center of output pixel o in input coordinates.
		center := (float64(o)+0.5)*scale - 0.5
		base := int(math.Floor(center)) - 1
		var sum float64
		for t := 0; t < 4; t++ {
			src := base + t
			w := bicubicKernel((center - float64(src)) / 1.0)
			// Clamp to the edge (replicate border).
			if src < 0 {
				src = 0
			} else if src >= in {
				src = in - 1
			}
			idx[o][t] = src
			wts[o][t] = w
			sum += w
		}
		// Normalize so weights sum to 1 even at the borders.
		if sum != 0 {
			for t := 0; t < 4; t++ {
				wts[o][t] /= sum
			}
		}
	}
	return idx, wts
}

// BicubicResize resamples an image batch (N, C, H, W) to (N, C, outH, outW)
// with separable bicubic interpolation. It serves as the classical
// upsampling baseline (paper Fig. 4) and as the HR→LR degradation used to
// synthesize training pairs.
func BicubicResize(x *tensor.Tensor, outH, outW int) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	colIdx, colW := resampleAxis(w, outW)
	rowIdx, rowW := resampleAxis(h, outH)

	// Horizontal pass: (H, W) → (H, outW).
	mid := tensor.New(n, c, h, outW)
	xd, md := x.Data(), mid.Data()
	for plane := 0; plane < n*c; plane++ {
		src := xd[plane*h*w : (plane+1)*h*w]
		dst := md[plane*h*outW : (plane+1)*h*outW]
		for y := 0; y < h; y++ {
			srow := src[y*w : (y+1)*w]
			drow := dst[y*outW : (y+1)*outW]
			for o := 0; o < outW; o++ {
				var v float64
				for t := 0; t < 4; t++ {
					v += colW[o][t] * float64(srow[colIdx[o][t]])
				}
				drow[o] = float32(v)
			}
		}
	}
	// Vertical pass: (H, outW) → (outH, outW).
	out := tensor.New(n, c, outH, outW)
	od := out.Data()
	for plane := 0; plane < n*c; plane++ {
		src := md[plane*h*outW : (plane+1)*h*outW]
		dst := od[plane*outH*outW : (plane+1)*outH*outW]
		for o := 0; o < outH; o++ {
			drow := dst[o*outW : (o+1)*outW]
			for xq := 0; xq < outW; xq++ {
				var v float64
				for t := 0; t < 4; t++ {
					v += rowW[o][t] * float64(src[rowIdx[o][t]*outW+xq])
				}
				drow[xq] = float32(v)
			}
		}
	}
	return out
}

// BicubicUpscale upsamples by an integer factor — the classical SR
// baseline that DLSR models are measured against.
func BicubicUpscale(x *tensor.Tensor, scale int) *tensor.Tensor {
	return BicubicResize(x, x.Dim(2)*scale, x.Dim(3)*scale)
}

// BicubicDownscale downsamples by an integer factor — the degradation used
// to make LR training inputs from HR targets.
func BicubicDownscale(x *tensor.Tensor, scale int) *tensor.Tensor {
	return BicubicResize(x, x.Dim(2)/scale, x.Dim(3)/scale)
}
