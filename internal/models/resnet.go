package models

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// MiniResNet is a ResNet-style image classifier scaled to CPU training. It
// stands in for ResNet-50 in the paper's Fig. 1 single-GPU comparison: the
// point of that figure is the *architectural contrast* — classification
// models downsample aggressively, so their per-image cost is far below a
// super-resolution model that keeps full spatial resolution throughout.
// MiniResNet preserves exactly that property (stride-2 stem + stage-wise
// downsampling + global average pooling).
type MiniResNet struct {
	stem   *nn.Sequential
	stages *nn.Sequential
	pool   *nn.GlobalAvgPool
	fc     *nn.Linear
}

// NewMiniResNet builds a classifier with the given stage widths, blocks
// per stage, and class count. Input is (N, 3, H, W) with H, W divisible by
// 2^(len(widths)).
func NewMiniResNet(widths []int, blocksPerStage, classes int, rng *tensor.RNG) *MiniResNet {
	if len(widths) == 0 {
		panic("models: MiniResNet needs at least one stage")
	}
	m := &MiniResNet{}
	m.stem = nn.NewSequential("stem",
		nn.NewConv2d("stem.conv", 3, widths[0], 3, 2, 1, true, rng),
		nn.NewBatchNorm2d("stem.bn", widths[0]),
		nn.NewReLU(),
	)
	m.stages = nn.NewSequential("stages")
	prev := widths[0]
	for si, wdt := range widths {
		if wdt != prev || si > 0 {
			// Downsampling transition conv between stages.
			m.stages.Append(nn.NewConv2d(fmt.Sprintf("stage%d.down", si), prev, wdt, 3, 2, 1, true, rng))
			m.stages.Append(nn.NewReLU())
		}
		for b := 0; b < blocksPerStage; b++ {
			m.stages.Append(nn.NewResBlock(fmt.Sprintf("stage%d.block%d", si, b), nn.StyleResNet, wdt, 1, rng))
		}
		prev = wdt
	}
	m.pool = nn.NewGlobalAvgPool()
	m.fc = nn.NewLinear("fc", prev, classes, rng)
	sp := nn.NewScratchPool()
	nn.AttachScratch(m.stem, sp)
	nn.AttachScratch(m.stages, sp)
	return m
}

// Forward returns class logits (N, classes).
func (m *MiniResNet) Forward(x *tensor.Tensor) *tensor.Tensor {
	h := m.stem.Forward(x)
	h = m.stages.Forward(h)
	h = m.pool.Forward(h)
	return m.fc.Forward(h)
}

// Backward propagates gradients.
func (m *MiniResNet) Backward(g *tensor.Tensor) *tensor.Tensor {
	g = m.fc.Backward(g)
	g = m.pool.Backward(g)
	g = m.stages.Backward(g)
	return m.stem.Backward(g)
}

// Params returns all trainable parameters.
func (m *MiniResNet) Params() []*nn.Param {
	var ps []*nn.Param
	ps = append(ps, m.stem.Params()...)
	ps = append(ps, m.stages.Params()...)
	ps = append(ps, m.fc.Params()...)
	return ps
}

// NumParams returns the trainable parameter count.
func (m *MiniResNet) NumParams() int { return nn.NumParams(m.Params()) }
