package models

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// FSRCNN is the "fast SRCNN" (Dong et al., 2016): unlike SRCNN it runs
// its body at LR resolution — feature extraction (5×5), shrinking (1×1),
// m mapping layers (3×3), expanding (1×1) — and learns the upsampling
// with a transposed convolution, the design PixelShuffle later displaced.
// It completes the repository's lineage of SR upsampler designs:
// pre-interpolation (SRCNN) → deconvolution (FSRCNN) → sub-pixel
// convolution (SRResNet/EDSR).
type FSRCNN struct {
	net *nn.Sequential
}

// NewFSRCNN builds an FSRCNN with d feature channels, s shrunk channels,
// and m mapping layers, upsampling by scale (2, 3, or 4). The published
// configuration is d=56, s=12, m=4.
func NewFSRCNN(c, d, s, m, scale int, rng *tensor.RNG) *FSRCNN {
	if scale < 2 || scale > 4 {
		panic(fmt.Sprintf("models: FSRCNN scale %d unsupported", scale))
	}
	if d < 1 || s < 1 || m < 0 {
		panic("models: invalid FSRCNN dimensions")
	}
	seq := nn.NewSequential("fsrcnn",
		nn.NewConv2d("fsrcnn.feat", c, d, 5, 1, 2, true, rng),
		nn.NewLeakyReLU(0.1), // the paper uses PReLU; LeakyReLU is the fixed-slope variant
		nn.NewConv2d("fsrcnn.shrink", d, s, 1, 1, 0, true, rng),
		nn.NewLeakyReLU(0.1),
	)
	for i := 0; i < m; i++ {
		seq.Append(nn.NewConv2d(fmt.Sprintf("fsrcnn.map%d", i), s, s, 3, 1, 1, true, rng))
		seq.Append(nn.NewLeakyReLU(0.1))
	}
	seq.Append(nn.NewConv2d("fsrcnn.expand", s, d, 1, 1, 0, true, rng))
	seq.Append(nn.NewLeakyReLU(0.1))
	// Deconvolution: kernel 2·scale, stride scale, pad scale/2 gives an
	// exact ×scale spatial expansion for even scales; for scale 3 use
	// kernel 9, pad 3 ((h−1)·3 − 6 + 9 = 3h).
	switch scale {
	case 2, 4:
		seq.Append(nn.NewConvTranspose2d("fsrcnn.deconv", d, c, 2*scale, scale, scale/2, true, rng))
	case 3:
		seq.Append(nn.NewConvTranspose2d("fsrcnn.deconv", d, c, 9, 3, 3, true, rng))
	}
	nn.AttachScratch(seq, nn.NewScratchPool())
	return &FSRCNN{net: seq}
}

// Forward maps LR (N, C, h, w) to SR (N, C, h·scale, w·scale).
func (f *FSRCNN) Forward(x *tensor.Tensor) *tensor.Tensor { return f.net.Forward(x) }

// Backward propagates gradients.
func (f *FSRCNN) Backward(g *tensor.Tensor) *tensor.Tensor { return f.net.Backward(g) }

// Params returns the trainable parameters.
func (f *FSRCNN) Params() []*nn.Param { return f.net.Params() }

// NumParams returns the trainable parameter count.
func (f *FSRCNN) NumParams() int { return nn.NumParams(f.Params()) }
