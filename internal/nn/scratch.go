package nn

import "repro/internal/tensor"

// ScratchPool owns one tensor.Workspace per kernel worker so that
// batch-parallel layers can run their GEMMs and im2col lowerings
// concurrently without sharing — or repeatedly allocating — scratch
// memory. All layers of a model share one pool: layers execute
// sequentially, so only the per-worker axis needs distinct buffers, and
// sharing lets a deep network reuse the same packed-panel and column
// buffers for every convolution.
type ScratchPool struct {
	ws []*tensor.Workspace
}

// NewScratchPool returns an empty pool; workspaces are created on Reserve.
func NewScratchPool() *ScratchPool { return &ScratchPool{} }

// Reserve grows the pool to at least n workspaces. Layers call it before
// entering a parallel region; once the pool has reached its steady-state
// size the call is allocation-free.
func (s *ScratchPool) Reserve(n int) {
	for len(s.ws) < n {
		s.ws = append(s.ws, tensor.NewWorkspace())
	}
}

// Worker returns the workspace for dense worker index i. The pool must
// have been Reserve'd past i.
func (s *ScratchPool) Worker(i int) *tensor.Workspace { return s.ws[i] }

// scratchUser is implemented by layers that run batch-parallel kernels
// and want to draw per-worker scratch from a shared pool.
type scratchUser interface{ setScratch(*ScratchPool) }

// AttachScratch walks a layer tree and hands every batch-parallel layer
// the shared pool. Model constructors call it once after assembling the
// network. Attachment is an optimization, not a requirement: a layer
// without a pool lazily creates a private one on first use.
func AttachScratch(l Layer, sp *ScratchPool) {
	switch v := l.(type) {
	case *Sequential:
		for _, inner := range v.Layers {
			AttachScratch(inner, sp)
		}
	case *ResBlock:
		AttachScratch(v.Body, sp)
	case scratchUser:
		v.setScratch(sp)
	}
}
