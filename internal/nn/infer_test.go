package nn

import (
	"testing"

	"repro/internal/tensor"
)

// TestFusedConv2dBitExact proves the compiled fused conv+bias+ReLU layer
// matches the training-path Conv2d followed by a separate ReLU bit for
// bit, across batch sizes and geometries.
func TestFusedConv2dBitExact(t *testing.T) {
	cases := []struct {
		name            string
		inC, outC, k, s int
		pad, n, h, w    int
		relu            bool
	}{
		{"edsr-body", 16, 16, 3, 1, 1, 2, 32, 32, true},
		{"head", 3, 16, 3, 1, 1, 1, 24, 24, false},
		{"srcnn-c1", 3, 64, 9, 1, 4, 1, 20, 20, true},
		{"srcnn-c3", 32, 3, 5, 1, 2, 3, 16, 16, false},
		{"batch4", 8, 8, 3, 1, 1, 4, 10, 14, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := tensor.NewRNG(21)
			conv := NewConv2d("c", tc.inC, tc.outC, tc.k, tc.s, tc.pad, true, rng)
			relu := NewReLU()
			x := tensor.New(tc.n, tc.inC, tc.h, tc.w)
			x.FillUniform(rng, -1, 1)

			want := conv.Forward(x)
			if tc.relu {
				want = relu.Forward(want)
			}

			fused := CompileConv2d(conv, tc.relu, PrecFloat32)
			got := fused.Forward(x)

			wd, gd := want.Data(), got.Data()
			for i := range wd {
				if wd[i] != gd[i] {
					t.Fatalf("output[%d] = %v, want %v (not bit-exact)", i, gd[i], wd[i])
				}
			}
		})
	}
}

// TestFusedConv2dZeroAlloc enforces zero steady-state heap allocations on
// the compiled forward path for both precisions.
func TestFusedConv2dZeroAlloc(t *testing.T) {
	rng := tensor.NewRNG(4)
	conv := NewConv2d("c", 16, 16, 3, 1, 1, true, rng)
	x := tensor.New(2, 16, 24, 24)
	x.FillUniform(rng, -1, 1)
	for _, prec := range []Precision{PrecFloat32, PrecInt8} {
		fused := CompileConv2d(conv, true, prec)
		fused.Forward(x) // warm up buffers
		if allocs := testing.AllocsPerRun(10, func() { fused.Forward(x) }); allocs != 0 {
			t.Fatalf("%v fused forward allocates %v times per run, want 0", prec, allocs)
		}
	}
}

// TestFusedConv2dInt8Close sanity-checks the int8 layer against float32
// at the layer level (the accuracy budget is pinned in internal/tensor).
func TestFusedConv2dInt8Close(t *testing.T) {
	rng := tensor.NewRNG(12)
	conv := NewConv2d("c", 8, 8, 3, 1, 1, true, rng)
	x := tensor.New(1, 8, 16, 16)
	x.FillUniform(rng, -1, 1)
	ref := CompileConv2d(conv, true, PrecFloat32).Forward(x)
	got := CompileConv2d(conv, true, PrecInt8).Forward(x)
	rd, gd := ref.Data(), got.Data()
	var worst float64
	for i := range rd {
		d := float64(rd[i] - gd[i])
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	// The layer output range is O(1); quantization error should be far
	// below 10% of it.
	if worst > 0.1 {
		t.Fatalf("int8 layer diverges from float32 by %v", worst)
	}
}
