package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Inference compile pass: FusedConv2d is the serving-side counterpart of
// Conv2d. Compiling a trained convolution snapshots its weights into the
// GEMM micro-kernel's panel layout once (float32) or quantizes them to
// per-channel int8 (PrecInt8), and its Forward fuses im2col, bias, and an
// optional trailing ReLU into a single blocked-GEMM pass. The layer is
// forward-only — it keeps no reference to the training parameters and
// cannot be trained further — and its steady-state Forward performs zero
// heap allocations (see TestFusedConv2dZeroAlloc).

// Precision selects the arithmetic of a compiled layer or model.
type Precision int

const (
	// PrecFloat32 keeps float32 arithmetic; the fused forward is
	// bit-exact with the training path.
	PrecFloat32 Precision = iota
	// PrecInt8 quantizes weights to per-channel int8 at compile time and
	// activations to u7 on the fly.
	PrecInt8
)

// String returns the variant name used in logs and bench records.
func (p Precision) String() string {
	if p == PrecInt8 {
		return "int8"
	}
	return "float32"
}

// Byte slot index for the quantized input plane (per-worker, u8).
const slotU8QuantIn = 0

// FusedConv2d is a compiled, forward-only convolution with prepacked
// weights, fused bias+ReLU epilogue, and an optional int8 quantized
// kernel. Construct with CompileConv2d.
type FusedConv2d struct {
	InC, OutC   int
	KH, KW      int
	Stride, Pad int
	Relu        bool
	Prec        Precision

	bias []float32
	pw   *tensor.PackedA  // PrecFloat32
	pw8  *tensor.PackedA8 // PrecInt8

	scratch            *ScratchPool
	out                *tensor.Tensor
	lastIn             *tensor.Tensor
	lastOutH, lastOutW int
	fwdFn              func(worker, lo, hi int)
}

// CompileConv2d snapshots a trained Conv2d into its fused inference
// form. relu folds a trailing ReLU into the GEMM epilogue.
func CompileConv2d(c *Conv2d, relu bool, prec Precision) *FusedConv2d {
	f := &FusedConv2d{
		InC: c.InC, OutC: c.OutC, KH: c.KH, KW: c.KW,
		Stride: c.Stride, Pad: c.Pad, Relu: relu, Prec: prec,
	}
	// Always materialize a bias vector (zeros when the training layer has
	// none) so the fused epilogue's fast path never branches on nil.
	f.bias = make([]float32, c.OutC)
	if c.hasBias {
		copy(f.bias, c.Bias.Value.Data())
	}
	k := c.InC * c.KH * c.KW
	switch prec {
	case PrecInt8:
		f.pw8 = tensor.PackA8(c.Weight.Value.Data(), c.OutC, k)
	default:
		f.pw = tensor.PackA(c.Weight.Value.Data(), c.OutC, k)
	}
	return f
}

// UseScratch points the layer at a shared per-worker workspace pool.
// Compiled models call it for each fused layer (FusedConv2d is
// forward-only and not an nn.Layer, so AttachScratch cannot reach it).
func (f *FusedConv2d) UseScratch(sp *ScratchPool) { f.scratch = sp }

// WeightBytes returns the packed weight footprint in bytes.
func (f *FusedConv2d) WeightBytes() int {
	if f.pw8 != nil {
		return f.pw8.Bytes()
	}
	return f.pw.Bytes()
}

// OutSize returns the spatial output size for an input of h×w.
func (f *FusedConv2d) OutSize(h, w int) (int, int) {
	return (h+2*f.Pad-f.KH)/f.Stride + 1, (w+2*f.Pad-f.KW)/f.Stride + 1
}

// Forward computes the fused convolution for a batch x of shape
// (N, InC, H, W). The returned tensor is owned by the layer and reused
// on the next call.
func (f *FusedConv2d) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != f.InC {
		panic(fmt.Sprintf("nn: FusedConv2d input shape %v, want (N,%d,H,W)", x.Shape(), f.InC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	outH, outW := f.OutSize(h, w)
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("nn: FusedConv2d input %dx%d too small for kernel", h, w))
	}
	f.lastIn, f.lastOutH, f.lastOutW = x, outH, outW
	f.out = tensor.Ensure(f.out, n, f.OutC, outH, outW)
	if f.scratch == nil {
		f.scratch = NewScratchPool()
	}
	f.scratch.Reserve(tensor.WorkerCount(n, 1))
	if f.fwdFn == nil {
		f.fwdFn = f.fwdWork
	}
	tensor.ParallelWorkers(n, 1, f.fwdFn)
	f.lastIn = nil
	return f.out
}

// fwdWork convolves samples [lo,hi) with worker-private scratch.
func (f *FusedConv2d) fwdWork(worker, lo, hi int) {
	x := f.lastIn
	h, w := x.Dim(2), x.Dim(3)
	inPlane := f.InC * h * w
	outPlane := f.OutC * f.lastOutH * f.lastOutW
	ws := f.scratch.Worker(worker)
	xd, od := x.Data(), f.out.Data()
	for i := lo; i < hi; i++ {
		src := xd[i*inPlane : (i+1)*inPlane]
		dst := od[i*outPlane : (i+1)*outPlane]
		if f.Prec == PrecInt8 {
			srcQ := ws.SlotU8(slotU8QuantIn, inPlane)
			scaleX, zp := tensor.QuantizeU7(srcQ, src)
			ws.ConvGemmS8(dst, f.pw8, srcQ, scaleX, zp, f.InC, h, w, f.KH, f.KW, f.Stride, f.Pad, f.bias, f.Relu)
		} else {
			ws.ConvGemmPacked(dst, f.pw, src, f.InC, h, w, f.KH, f.KW, f.Stride, f.Pad, f.bias, f.Relu)
		}
	}
}
