package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// The batch-parallel convolution path splits samples across workers with
// per-worker gradient accumulators. These tests pin worker counts that
// exercise the interesting chunkings: more samples than workers,
// non-divisible splits, and reserved-but-idle workers.

func TestConv2dBatchParallelGradients(t *testing.T) {
	prev := tensor.SetMaxWorkers(3)
	defer tensor.SetMaxWorkers(prev)
	rng := tensor.NewRNG(21)
	conv := NewConv2d("c", 2, 3, 3, 1, 1, true, rng)
	// n=5 over 3 workers: ceil(5/3)=2 per chunk → chunks of 2,2,1.
	x := tensor.New(5, 2, 4, 4)
	x.FillUniform(rng, -1, 1)
	checkLayerGradients(t, conv, x, 2e-2)
}

func TestConvTranspose2dBatchParallelGradients(t *testing.T) {
	prev := tensor.SetMaxWorkers(3)
	defer tensor.SetMaxWorkers(prev)
	rng := tensor.NewRNG(22)
	deconv := NewConvTranspose2d("d", 2, 2, 4, 2, 1, true, rng)
	x := tensor.New(5, 2, 4, 4)
	x.FillUniform(rng, -1, 1)
	checkLayerGradients(t, deconv, x, 2e-2)
}

func TestConv2dIdleWorkerGradientsStayClean(t *testing.T) {
	// With 4 workers and n=5, the chunk size is ceil(5/4)=2, so only 3
	// chunks are dispatched and worker 3 stays idle. Run two backward
	// passes with different data: if an idle worker's accumulator slot
	// kept stale gradients from pass one, the pass-two merge would be
	// polluted. Compare against a single-worker reference.
	rng := tensor.NewRNG(23)
	conv := NewConv2d("c", 2, 2, 3, 1, 1, true, rng)
	x1 := tensor.New(5, 2, 4, 4)
	x1.FillUniform(rng, -1, 1)
	x2 := tensor.New(5, 2, 4, 4)
	x2.FillUniform(rng, -1, 1)

	run := func(workers int, x *tensor.Tensor) (dw, db []float32) {
		prev := tensor.SetMaxWorkers(workers)
		defer tensor.SetMaxWorkers(prev)
		ZeroGrads(conv.Params())
		y := conv.Forward(x)
		g := y.Clone()
		conv.Backward(g)
		dw = append([]float32(nil), conv.Weight.Grad.Data()...)
		db = append([]float32(nil), conv.Bias.Grad.Data()...)
		return dw, db
	}

	// Warm the multi-worker accumulators with x1, then measure x2.
	run(4, x1)
	gotW, gotB := run(4, x2)
	wantW, wantB := run(1, x2)
	for i := range wantW {
		if d := math.Abs(float64(gotW[i] - wantW[i])); d > 1e-4 {
			t.Fatalf("dW[%d]: parallel %g vs serial %g", i, gotW[i], wantW[i])
		}
	}
	for i := range wantB {
		if d := math.Abs(float64(gotB[i] - wantB[i])); d > 1e-4 {
			t.Fatalf("dB[%d]: parallel %g vs serial %g", i, gotB[i], wantB[i])
		}
	}
}

// convParallelMatchesSerial runs one forward/backward serially and in
// parallel on the same layer and asserts identical outputs and input
// gradients (bitwise — per-sample work is order-independent) and matching
// parameter gradients (to tolerance — the merge reorders float additions).
func convParallelMatchesSerial(t *testing.T, layer Layer, x *tensor.Tensor) {
	t.Helper()
	prev := tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(prev)
	ZeroGrads(layer.Params())
	ySerial := layer.Forward(x).Clone()
	giSerial := layer.Backward(ySerial.Clone()).Clone()
	var gradsSerial [][]float32
	for _, p := range layer.Params() {
		gradsSerial = append(gradsSerial, append([]float32(nil), p.Grad.Data()...))
	}

	tensor.SetMaxWorkers(4)
	ZeroGrads(layer.Params())
	yPar := layer.Forward(x)
	for i, v := range yPar.Data() {
		if v != ySerial.Data()[i] {
			t.Fatalf("output[%d]: parallel %g vs serial %g", i, v, ySerial.Data()[i])
		}
	}
	giPar := layer.Backward(ySerial.Clone())
	for i, v := range giPar.Data() {
		if v != giSerial.Data()[i] {
			t.Fatalf("gradIn[%d]: parallel %g vs serial %g", i, v, giSerial.Data()[i])
		}
	}
	for pi, p := range layer.Params() {
		for i, v := range p.Grad.Data() {
			want := gradsSerial[pi][i]
			if d := math.Abs(float64(v - want)); d > 1e-4*(math.Abs(float64(want))+1) {
				t.Fatalf("%s grad[%d]: parallel %g vs serial %g", p.Name, i, v, want)
			}
		}
	}
}

func TestConv2dParallelMatchesSerial(t *testing.T) {
	rng := tensor.NewRNG(24)
	conv := NewConv2d("c", 3, 4, 3, 1, 1, true, rng)
	x := tensor.New(6, 3, 6, 6)
	x.FillUniform(rng, -1, 1)
	convParallelMatchesSerial(t, conv, x)
}

func TestConvTranspose2dParallelMatchesSerial(t *testing.T) {
	rng := tensor.NewRNG(25)
	deconv := NewConvTranspose2d("d", 3, 2, 4, 2, 1, true, rng)
	x := tensor.New(6, 3, 5, 5)
	x.FillUniform(rng, -1, 1)
	convParallelMatchesSerial(t, deconv, x)
}

func TestPixelShuffleParallelMatchesSerial(t *testing.T) {
	rng := tensor.NewRNG(26)
	ps := NewPixelShuffle(2)
	x := tensor.New(6, 8, 3, 3)
	x.FillUniform(rng, -1, 1)
	convParallelMatchesSerial(t, ps, x)
}
