package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// ConvTranspose2d is a transposed ("fractionally-strided") convolution —
// the learned upsampler FSRCNN introduced to super-resolution, and the
// historical alternative to EDSR's PixelShuffle tail.
//
// The implementation reuses the convolution machinery through the adjoint
// relationship: the forward pass of a transposed convolution is exactly
// the backward-data pass of a normal convolution with the same weights,
// and vice versa. Weights are stored (InC, OutC*kh*kw) so the underlying
// "forward" convolution maps OutC → InC. Like Conv2d, the batch dimension
// is split across workers with per-worker scratch, and the output and
// input-gradient tensors are reused across iterations.
type ConvTranspose2d struct {
	Weight *Param
	Bias   *Param

	InC, OutC   int
	KH, KW      int
	Stride, Pad int
	hasBias     bool

	lastIn             *tensor.Tensor
	lastOutH, lastOutW int

	scratch    *ScratchPool
	out        *tensor.Tensor
	gradIn     *tensor.Tensor
	gradOut    *tensor.Tensor
	bwdWorkers int

	fwdFn, bwdFn func(worker, lo, hi int)
}

// NewConvTranspose2d creates a transposed convolution. The output size is
// (H−1)·stride − 2·pad + k.
func NewConvTranspose2d(name string, inC, outC, k, stride, pad int, bias bool, rng *tensor.RNG) *ConvTranspose2d {
	c := &ConvTranspose2d{
		InC: inC, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad, hasBias: bias,
	}
	c.Weight = NewParam(name+".weight", inC, outC*k*k)
	c.Weight.Value.KaimingInit(rng, inC*k*k)
	if bias {
		c.Bias = NewParam(name+".bias", outC)
	}
	return c
}

// setScratch points the layer at a shared per-worker workspace pool.
func (c *ConvTranspose2d) setScratch(sp *ScratchPool) { c.scratch = sp }

func (c *ConvTranspose2d) ensureScratch(n int) {
	if c.scratch == nil {
		c.scratch = NewScratchPool()
	}
	c.scratch.Reserve(tensor.WorkerCount(n, 1))
	if c.fwdFn == nil {
		c.fwdFn = c.fwdWork
		c.bwdFn = c.bwdWork
	}
}

// OutSize returns the spatial output size for an h×w input.
func (c *ConvTranspose2d) OutSize(h, w int) (int, int) {
	return (h-1)*c.Stride - 2*c.Pad + c.KH, (w-1)*c.Stride - 2*c.Pad + c.KW
}

// Forward computes the transposed convolution of x (N, InC, H, W) into
// (N, OutC, outH, outW): per sample, dCol = Wᵀ·x, then Col2Im scatters
// the columns into the upsampled plane. The returned tensor is owned by
// the layer and reused on the next call.
func (c *ConvTranspose2d) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: ConvTranspose2d input %v, want (N,%d,H,W)", x.Shape(), c.InC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	outH, outW := c.OutSize(h, w)
	if outH < 1 || outW < 1 {
		panic(fmt.Sprintf("nn: ConvTranspose2d output %dx%d degenerate", outH, outW))
	}
	c.lastIn, c.lastOutH, c.lastOutW = x, outH, outW
	c.out = tensor.Ensure(c.out, n, c.OutC, outH, outW)
	c.ensureScratch(n)
	tensor.ParallelWorkers(n, 1, c.fwdFn)
	return c.out
}

func (c *ConvTranspose2d) fwdWork(worker, lo, hi int) {
	x := c.lastIn
	h, w := x.Dim(2), x.Dim(3)
	outH, outW := c.lastOutH, c.lastOutW
	k := c.OutC * c.KH * c.KW
	cols := h * w
	inPlane := c.InC * cols
	plane := outH * outW
	outPlane := c.OutC * plane
	ws := c.scratch.Worker(worker)
	col := ws.Slot(slotCol, k*cols)
	wd := c.Weight.Value.Data()
	xd, od := x.Data(), c.out.Data()
	var bias []float32
	if c.hasBias {
		bias = c.Bias.Value.Data()
	}
	for i := lo; i < hi; i++ {
		// dCol (K×cols) = Wᵀ (K×InC) · x (InC×cols).
		ws.GemmTransA(col, wd, xd[i*inPlane:(i+1)*inPlane], c.InC, k, cols)
		dst := od[i*outPlane : (i+1)*outPlane]
		tensor.Col2ImBuf(dst, col, c.OutC, outH, outW, c.KH, c.KW, c.Stride, c.Pad)
		// Col2Im scatters, so the bias cannot ride the GEMM epilogue; add
		// it here while the output plane is still cache-hot.
		if bias != nil {
			for oc := 0; oc < c.OutC; oc++ {
				b := bias[oc]
				row := dst[oc*plane : (oc+1)*plane]
				for j := range row {
					row[j] += b
				}
			}
		}
	}
}

// Backward is the adjoint: gradIn = conv(gradOut) with the stored weights
// (an ordinary im2col convolution), and dW accumulates from the input and
// the gradient columns. Multi-worker runs use per-worker accumulator
// slots merged serially, exactly like Conv2d.
func (c *ConvTranspose2d) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	x := c.lastIn
	if x == nil {
		panic("nn: ConvTranspose2d Backward before Forward")
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	outH, outW := c.lastOutH, c.lastOutW
	if gradOut.Dim(0) != n || gradOut.Dim(1) != c.OutC || gradOut.Dim(2) != outH || gradOut.Dim(3) != outW {
		panic(fmt.Sprintf("nn: ConvTranspose2d gradOut %v mismatch", gradOut.Shape()))
	}
	c.gradIn = tensor.Ensure(c.gradIn, n, c.InC, h, w)
	c.gradOut = gradOut
	c.ensureScratch(n)

	workers := tensor.WorkerCount(n, 1)
	c.bwdWorkers = workers
	if workers > 1 {
		for wk := 0; wk < workers; wk++ {
			ws := c.scratch.Worker(wk)
			ws.ZeroSlot(slotDW, c.Weight.Grad.Len())
			if c.hasBias {
				ws.ZeroSlot(slotDB, c.Bias.Grad.Len())
			}
		}
	}
	tensor.ParallelWorkers(n, 1, c.bwdFn)
	if workers > 1 {
		wg := c.Weight.Grad.Data()
		for wk := 0; wk < workers; wk++ {
			ws := c.scratch.Worker(wk)
			for j, v := range ws.Slot(slotDW, len(wg)) {
				wg[j] += v
			}
			if c.hasBias {
				bg := c.Bias.Grad.Data()
				for j, v := range ws.Slot(slotDB, len(bg)) {
					bg[j] += v
				}
			}
		}
	}
	c.lastIn, c.gradOut = nil, nil
	return c.gradIn
}

func (c *ConvTranspose2d) bwdWork(worker, lo, hi int) {
	x := c.lastIn
	h, w := x.Dim(2), x.Dim(3)
	outH, outW := c.lastOutH, c.lastOutW
	k := c.OutC * c.KH * c.KW
	cols := h * w
	inPlane := c.InC * cols
	plane := outH * outW
	outPlane := c.OutC * plane
	ws := c.scratch.Worker(worker)
	gcol := ws.Slot(slotGradCol, k*cols)
	dW := c.Weight.Grad.Data()
	var dB []float32
	if c.hasBias {
		dB = c.Bias.Grad.Data()
	}
	if c.bwdWorkers > 1 {
		dW = ws.Slot(slotDW, len(dW))
		if c.hasBias {
			dB = ws.Slot(slotDB, len(dB))
		}
	}
	wd := c.Weight.Value.Data()
	xd, gd, gi := x.Data(), c.gradOut.Data(), c.gradIn.Data()
	for i := lo; i < hi; i++ {
		g := gd[i*outPlane : (i+1)*outPlane]
		tensor.Im2ColBuf(gcol, g, c.OutC, outH, outW, c.KH, c.KW, c.Stride, c.Pad)
		// gradIn (InC×cols) = W (InC×K) · gradCol (K×cols).
		ws.Gemm(gi[i*inPlane:(i+1)*inPlane], wd, gcol, c.InC, k, cols)
		// dW (InC×K) += x (InC×cols) · gradColᵀ (cols×K).
		xs := xd[i*inPlane : (i+1)*inPlane]
		ws.GemmTransBAccum(dW, xs, gcol, c.InC, cols, k)
		if dB != nil {
			for oc := 0; oc < c.OutC; oc++ {
				var s float32
				for _, v := range g[oc*plane : (oc+1)*plane] {
					s += v
				}
				dB[oc] += s
			}
		}
	}
}

// Params returns the trainable parameters.
func (c *ConvTranspose2d) Params() []*Param {
	if c.hasBias {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Weight}
}
