package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// ConvTranspose2d is a transposed ("fractionally-strided") convolution —
// the learned upsampler FSRCNN introduced to super-resolution, and the
// historical alternative to EDSR's PixelShuffle tail.
//
// The implementation reuses the convolution machinery through the adjoint
// relationship: the forward pass of a transposed convolution is exactly
// the backward-data pass of a normal convolution with the same weights,
// and vice versa. Weights are stored (InC, OutC*kh*kw) so the underlying
// "forward" convolution maps OutC → InC.
type ConvTranspose2d struct {
	Weight *Param
	Bias   *Param

	InC, OutC   int
	KH, KW      int
	Stride, Pad int
	hasBias     bool

	lastIn       *tensor.Tensor
	lastOutH     int
	lastOutW     int
	col, gradCol *tensor.Tensor
}

// NewConvTranspose2d creates a transposed convolution. The output size is
// (H−1)·stride − 2·pad + k.
func NewConvTranspose2d(name string, inC, outC, k, stride, pad int, bias bool, rng *tensor.RNG) *ConvTranspose2d {
	c := &ConvTranspose2d{
		InC: inC, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad, hasBias: bias,
	}
	c.Weight = NewParam(name+".weight", inC, outC*k*k)
	c.Weight.Value.KaimingInit(rng, inC*k*k)
	if bias {
		c.Bias = NewParam(name+".bias", outC)
	}
	return c
}

// OutSize returns the spatial output size for an h×w input.
func (c *ConvTranspose2d) OutSize(h, w int) (int, int) {
	return (h-1)*c.Stride - 2*c.Pad + c.KH, (w-1)*c.Stride - 2*c.Pad + c.KW
}

// Forward computes the transposed convolution of x (N, InC, H, W) into
// (N, OutC, outH, outW): per sample, dCol = Wᵀ·x, then Col2Im scatters the
// columns into the upsampled plane.
func (c *ConvTranspose2d) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: ConvTranspose2d input %v, want (N,%d,H,W)", x.Shape(), c.InC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	outH, outW := c.OutSize(h, w)
	if outH < 1 || outW < 1 {
		panic(fmt.Sprintf("nn: ConvTranspose2d output %dx%d degenerate", outH, outW))
	}
	c.lastIn, c.lastOutH, c.lastOutW = x, outH, outW

	k := c.OutC * c.KH * c.KW
	cols := h * w
	if c.col == nil || c.col.Dim(0) != k || c.col.Dim(1) != cols {
		c.col = tensor.New(k, cols)
	}
	out := tensor.New(n, c.OutC, outH, outW)
	inPlane := c.InC * h * w
	outPlane := c.OutC * outH * outW
	scratch := tensor.New(c.OutC, outH, outW)
	for i := 0; i < n; i++ {
		src := tensor.FromSlice(x.Data()[i*inPlane:(i+1)*inPlane], c.InC, cols)
		// dCol = Wᵀ (k×InC) · x (InC×cols)
		tensor.MatMulTransA(c.col, c.Weight.Value, src)
		tensor.Col2Im(scratch, c.col, c.KH, c.KW, c.Stride, c.Pad)
		copy(out.Data()[i*outPlane:(i+1)*outPlane], scratch.Data())
	}
	if c.hasBias {
		bd, od := c.Bias.Value.Data(), out.Data()
		plane := outH * outW
		for i := 0; i < n; i++ {
			for oc := 0; oc < c.OutC; oc++ {
				b := bd[oc]
				row := od[i*outPlane+oc*plane : i*outPlane+(oc+1)*plane]
				for j := range row {
					row[j] += b
				}
			}
		}
	}
	return out
}

// Backward is the adjoint: gradIn = conv(gradOut) with the stored weights
// (an ordinary im2col convolution), and dW accumulates from the input and
// the gradient columns.
func (c *ConvTranspose2d) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	x := c.lastIn
	if x == nil {
		panic("nn: ConvTranspose2d Backward before Forward")
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	outH, outW := c.lastOutH, c.lastOutW
	k := c.OutC * c.KH * c.KW
	cols := h * w
	if gradOut.Dim(0) != n || gradOut.Dim(1) != c.OutC || gradOut.Dim(2) != outH || gradOut.Dim(3) != outW {
		panic(fmt.Sprintf("nn: ConvTranspose2d gradOut %v mismatch", gradOut.Shape()))
	}
	if c.gradCol == nil || c.gradCol.Dim(0) != k || c.gradCol.Dim(1) != cols {
		c.gradCol = tensor.New(k, cols)
	}
	gradIn := tensor.New(n, c.InC, h, w)
	inPlane := c.InC * h * w
	outPlane := c.OutC * outH * outW
	for i := 0; i < n; i++ {
		g := tensor.FromSlice(gradOut.Data()[i*outPlane:(i+1)*outPlane], c.OutC, outH, outW)
		// Columns of the upstream gradient.
		tensor.Im2Col(c.gradCol, g, c.KH, c.KW, c.Stride, c.Pad)
		// gradIn = W (InC×k) · gradCol (k×cols)
		dst := tensor.FromSlice(gradIn.Data()[i*inPlane:(i+1)*inPlane], c.InC, cols)
		tensor.MatMul(dst, c.Weight.Value, c.gradCol)
		// dW += x (InC×cols) · gradColᵀ (cols×k)
		src := tensor.FromSlice(x.Data()[i*inPlane:(i+1)*inPlane], c.InC, cols)
		tensor.MatMulTransBAccum(c.Weight.Grad, src, c.gradCol)

		if c.hasBias {
			bg := c.Bias.Grad.Data()
			gd := g.Data()
			plane := outH * outW
			for oc := 0; oc < c.OutC; oc++ {
				var s float32
				for _, v := range gd[oc*plane : (oc+1)*plane] {
					s += v
				}
				bg[oc] += s
			}
		}
	}
	c.lastIn = nil
	return gradIn
}

// Params returns the trainable parameters.
func (c *ConvTranspose2d) Params() []*Param {
	if c.hasBias {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Weight}
}
