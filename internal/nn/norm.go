package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// MeanShift subtracts (Sign=-1) or re-adds (Sign=+1) a fixed per-channel
// mean, optionally dividing by a per-channel std. EDSR wraps its body in a
// SubMean/AddMean pair so the network operates on zero-centered pixels.
// It has no trainable parameters.
type MeanShift struct {
	Mean []float32
	Std  []float32
	Sign float32

	out, gradIn *tensor.Tensor
}

// NewMeanShift builds a mean-shift layer. std may be nil for unit std.
func NewMeanShift(mean, std []float32, sign float32) *MeanShift {
	if std == nil {
		std = make([]float32, len(mean))
		for i := range std {
			std[i] = 1
		}
	}
	if len(mean) != len(std) {
		panic("nn: MeanShift mean/std length mismatch")
	}
	return &MeanShift{Mean: mean, Std: std, Sign: sign}
}

// Forward applies y = (x + sign*mean)/std for sign=-1 (normalize) or
// y = x*std + sign*mean for sign=+1 (denormalize).
func (m *MeanShift) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != len(m.Mean) {
		panic(fmt.Sprintf("nn: MeanShift input %v, want %d channels", x.Shape(), len(m.Mean)))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	m.out = tensor.Ensure(m.out, n, c, h, w)
	out := m.out
	plane := h * w
	xd, od := x.Data(), out.Data()
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			off := (i*c + ch) * plane
			src, dst := xd[off:off+plane], od[off:off+plane]
			if m.Sign < 0 {
				mu, inv := m.Mean[ch], 1/m.Std[ch]
				for j, v := range src {
					dst[j] = (v - mu) * inv
				}
			} else {
				mu, sd := m.Mean[ch], m.Std[ch]
				for j, v := range src {
					dst[j] = v*sd + mu
				}
			}
		}
	}
	return out
}

// Backward scales gradients by the per-channel 1/std (normalize) or std
// (denormalize); the additive mean term has zero derivative.
func (m *MeanShift) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := gradOut.Dim(0), gradOut.Dim(1), gradOut.Dim(2), gradOut.Dim(3)
	m.gradIn = tensor.Ensure(m.gradIn, n, c, h, w)
	gradIn := m.gradIn
	plane := h * w
	gd, gi := gradOut.Data(), gradIn.Data()
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			off := (i*c + ch) * plane
			var scale float32
			if m.Sign < 0 {
				scale = 1 / m.Std[ch]
			} else {
				scale = m.Std[ch]
			}
			src, dst := gd[off:off+plane], gi[off:off+plane]
			for j, v := range src {
				dst[j] = v * scale
			}
		}
	}
	return gradIn
}

// Params returns nil; MeanShift is a fixed transform.
func (m *MeanShift) Params() []*Param { return nil }

// BatchNorm2d normalizes each channel over the batch and spatial axes.
// SRResNet keeps batch norm in its residual blocks; EDSR's headline
// architectural change (paper Fig. 5a) is removing it. Implementing both
// lets the model zoo contrast the two designs.
type BatchNorm2d struct {
	Gamma, Beta *Param
	Eps         float32
	Momentum    float32

	RunningMean, RunningVar []float32
	Training                bool

	// Backward cache and reused buffers.
	lastNorm     *tensor.Tensor
	lastIn       *tensor.Tensor
	mean, invStd []float32
	out, norm    *tensor.Tensor
	gradIn       *tensor.Tensor
}

// NewBatchNorm2d creates a batch-norm layer over c channels.
func NewBatchNorm2d(name string, c int) *BatchNorm2d {
	bn := &BatchNorm2d{
		Gamma:       NewParam(name+".gamma", c),
		Beta:        NewParam(name+".beta", c),
		Eps:         1e-5,
		Momentum:    0.1,
		RunningMean: make([]float32, c),
		RunningVar:  make([]float32, c),
		Training:    true,
	}
	bn.Gamma.Value.Fill(1)
	for i := range bn.RunningVar {
		bn.RunningVar[i] = 1
	}
	return bn
}

// Forward normalizes per channel using batch statistics (training) or
// running statistics (inference).
func (bn *BatchNorm2d) Forward(x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if c != bn.Gamma.Value.Len() {
		panic(fmt.Sprintf("nn: BatchNorm2d input %v, want %d channels", x.Shape(), bn.Gamma.Value.Len()))
	}
	plane := h * w
	cnt := float64(n * plane)
	bn.out = tensor.Ensure(bn.out, n, c, h, w)
	bn.norm = tensor.Ensure(bn.norm, n, c, h, w)
	out, norm := bn.out, bn.norm
	if bn.mean == nil {
		bn.mean = make([]float32, c)
		bn.invStd = make([]float32, c)
	}
	xd, od, nd := x.Data(), out.Data(), norm.Data()
	gd, bd := bn.Gamma.Value.Data(), bn.Beta.Value.Data()
	for ch := 0; ch < c; ch++ {
		var mu, va float32
		if bn.Training {
			var sum, sq float64
			for i := 0; i < n; i++ {
				off := (i*c + ch) * plane
				for _, v := range xd[off : off+plane] {
					sum += float64(v)
					sq += float64(v) * float64(v)
				}
			}
			mu = float32(sum / cnt)
			va = float32(sq/cnt - (sum/cnt)*(sum/cnt))
			if va < 0 {
				va = 0
			}
			bn.RunningMean[ch] = (1-bn.Momentum)*bn.RunningMean[ch] + bn.Momentum*mu
			bn.RunningVar[ch] = (1-bn.Momentum)*bn.RunningVar[ch] + bn.Momentum*va
		} else {
			mu, va = bn.RunningMean[ch], bn.RunningVar[ch]
		}
		inv := float32(1 / math.Sqrt(float64(va)+float64(bn.Eps)))
		bn.mean[ch], bn.invStd[ch] = mu, inv
		g, b := gd[ch], bd[ch]
		for i := 0; i < n; i++ {
			off := (i*c + ch) * plane
			src := xd[off : off+plane]
			no := nd[off : off+plane]
			oo := od[off : off+plane]
			for j, v := range src {
				nv := (v - mu) * inv
				no[j] = nv
				oo[j] = g*nv + b
			}
		}
	}
	bn.lastNorm, bn.lastIn = norm, x
	return out
}

// Backward implements the standard batch-norm gradient (training mode).
func (bn *BatchNorm2d) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if bn.lastNorm == nil {
		panic("nn: BatchNorm2d Backward before Forward")
	}
	n, c := gradOut.Dim(0), gradOut.Dim(1)
	h, w := gradOut.Dim(2), gradOut.Dim(3)
	plane := h * w
	cnt := float32(n * plane)
	bn.gradIn = tensor.Ensure(bn.gradIn, n, c, h, w)
	gradIn := bn.gradIn
	gd := gradOut.Data()
	nd := bn.lastNorm.Data()
	gi := gradIn.Data()
	gammaD := bn.Gamma.Value.Data()
	gGrad, bGrad := bn.Gamma.Grad.Data(), bn.Beta.Grad.Data()
	for ch := 0; ch < c; ch++ {
		var sumG, sumGN float32
		for i := 0; i < n; i++ {
			off := (i*c + ch) * plane
			for j := 0; j < plane; j++ {
				g := gd[off+j]
				sumG += g
				sumGN += g * nd[off+j]
			}
		}
		gGrad[ch] += sumGN
		bGrad[ch] += sumG
		if !bn.Training {
			// Inference mode: gradient is just scale by gamma*invStd.
			scale := gammaD[ch] * bn.invStd[ch]
			for i := 0; i < n; i++ {
				off := (i*c + ch) * plane
				for j := 0; j < plane; j++ {
					gi[off+j] = gd[off+j] * scale
				}
			}
			continue
		}
		k := gammaD[ch] * bn.invStd[ch]
		mg, mgn := sumG/cnt, sumGN/cnt
		for i := 0; i < n; i++ {
			off := (i*c + ch) * plane
			for j := 0; j < plane; j++ {
				gi[off+j] = k * (gd[off+j] - mg - nd[off+j]*mgn)
			}
		}
	}
	bn.lastNorm, bn.lastIn = nil, nil
	return gradIn
}

// Params returns gamma and beta.
func (bn *BatchNorm2d) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }
