package nn

import (
	"testing"

	"repro/internal/tensor"
)

// The perf contract of the scratch-pool kernels: after the first
// (buffer-growing) iteration, convolution forward/backward performs zero
// heap allocations. Measured with a single worker — the multi-worker path
// allocates only goroutine bookkeeping inside ParallelWorkers, and the
// gradient math itself is identical.

func TestConv2dForwardBackwardNoAllocs(t *testing.T) {
	prev := tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(prev)
	rng := tensor.NewRNG(31)
	conv := NewConv2d("c", 8, 16, 3, 1, 1, true, rng)
	x := tensor.New(2, 8, 12, 12)
	x.FillUniform(rng, -1, 1)
	gradOut := tensor.New(2, 16, 12, 12)
	gradOut.FillUniform(rng, -1, 1)

	allocs := testing.AllocsPerRun(5, func() {
		ZeroGrads(conv.Params())
		conv.Forward(x)
		conv.Backward(gradOut)
	})
	if allocs != 0 {
		t.Fatalf("Conv2d forward+backward allocated %.0f objects per step, want 0", allocs)
	}
}

func TestConvTranspose2dForwardBackwardNoAllocs(t *testing.T) {
	prev := tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(prev)
	rng := tensor.NewRNG(32)
	deconv := NewConvTranspose2d("d", 8, 4, 4, 2, 1, true, rng)
	x := tensor.New(2, 8, 6, 6)
	x.FillUniform(rng, -1, 1)
	y := deconv.Forward(x)
	gradOut := tensor.New(y.Shape()...)
	gradOut.FillUniform(rng, -1, 1)

	allocs := testing.AllocsPerRun(5, func() {
		ZeroGrads(deconv.Params())
		deconv.Forward(x)
		deconv.Backward(gradOut)
	})
	if allocs != 0 {
		t.Fatalf("ConvTranspose2d forward+backward allocated %.0f objects per step, want 0", allocs)
	}
}

func TestSequentialConvStackNoAllocs(t *testing.T) {
	// An EDSR-shaped stack: conv → ReLU → residual block → pixel-shuffle
	// upsampler. Exercises the cross-layer buffer reuse end to end.
	prev := tensor.SetMaxWorkers(1)
	defer tensor.SetMaxWorkers(prev)
	rng := tensor.NewRNG(33)
	seq := NewSequential("s",
		NewConv2d("s.head", 3, 8, 3, 1, 1, true, rng),
		NewReLU(),
		NewResBlock("s.rb", StyleEDSR, 8, 0.1, rng),
		NewConv2d("s.up", 8, 32, 3, 1, 1, true, rng),
		NewPixelShuffle(2),
		NewConv2d("s.out", 8, 3, 3, 1, 1, true, rng),
	)
	AttachScratch(seq, NewScratchPool())
	x := tensor.New(2, 3, 8, 8)
	x.FillUniform(rng, -1, 1)
	y := seq.Forward(x)
	gradOut := tensor.New(y.Shape()...)
	gradOut.FillUniform(rng, -1, 1)
	params := seq.Params() // Params() itself builds a slice; hoist it

	allocs := testing.AllocsPerRun(5, func() {
		ZeroGrads(params)
		seq.Forward(x)
		seq.Backward(gradOut)
	})
	if allocs != 0 {
		t.Fatalf("conv stack forward+backward allocated %.0f objects per step, want 0", allocs)
	}
}
