package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// quadratic builds a single-parameter "model" whose loss is 0.5‖p−target‖².
func quadratic(target float32) (*Param, func() float64) {
	p := NewParam("p", 4)
	lossOf := func() float64 {
		var l float64
		for _, v := range p.Value.Data() {
			d := float64(v) - float64(target)
			l += 0.5 * d * d
		}
		return l
	}
	return p, lossOf
}

func fillQuadGrad(p *Param, target float32) {
	for i, v := range p.Value.Data() {
		p.Grad.Data()[i] = v - target
	}
}

func TestSGDConverges(t *testing.T) {
	p, lossOf := quadratic(3)
	p.Value.Fill(0)
	opt := NewSGD([]*Param{p}, 0.2, 0, 0)
	for i := 0; i < 100; i++ {
		opt.ZeroGrad()
		fillQuadGrad(p, 3)
		opt.Step()
	}
	if lossOf() > 1e-6 {
		t.Fatalf("SGD did not converge: loss %g, p=%v", lossOf(), p.Value.Data())
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	p, lossOf := quadratic(-2)
	p.Value.Fill(5)
	opt := NewSGD([]*Param{p}, 0.05, 0.9, 0)
	for i := 0; i < 300; i++ {
		opt.ZeroGrad()
		fillQuadGrad(p, -2)
		opt.Step()
	}
	if lossOf() > 1e-4 {
		t.Fatalf("momentum SGD did not converge: loss %g", lossOf())
	}
}

func TestSGDWeightDecayShrinks(t *testing.T) {
	p := NewParam("p", 2)
	p.Value.Fill(1)
	opt := NewSGD([]*Param{p}, 0.1, 0, 0.5)
	for i := 0; i < 50; i++ {
		opt.ZeroGrad() // gradient stays zero; only decay acts
		opt.Step()
	}
	if math.Abs(float64(p.Value.At(0))) > 0.1 {
		t.Fatalf("weight decay should shrink params: %v", p.Value.Data())
	}
}

func TestAdamConverges(t *testing.T) {
	p, lossOf := quadratic(1.5)
	p.Value.Fill(-4)
	opt := NewAdam([]*Param{p}, 0.1)
	for i := 0; i < 500; i++ {
		opt.ZeroGrad()
		fillQuadGrad(p, 1.5)
		opt.Step()
	}
	if lossOf() > 1e-4 {
		t.Fatalf("Adam did not converge: loss %g, p=%v", lossOf(), p.Value.Data())
	}
}

func TestAdamFirstStepMagnitude(t *testing.T) {
	// With bias correction, Adam's first step has magnitude ≈ lr regardless
	// of gradient scale.
	p := NewParam("p", 1)
	p.Value.Fill(0)
	opt := NewAdam([]*Param{p}, 0.01)
	p.Grad.Fill(1000)
	opt.Step()
	if got := math.Abs(float64(p.Value.At(0))); math.Abs(got-0.01) > 0.001 {
		t.Fatalf("first Adam step %g, want ≈lr=0.01", got)
	}
}

func TestLRAccessors(t *testing.T) {
	p := NewParam("p", 1)
	for _, opt := range []Optimizer{NewSGD([]*Param{p}, 0.1, 0, 0), NewAdam([]*Param{p}, 0.1)} {
		if opt.LR() != 0.1 {
			t.Fatalf("LR() = %g", opt.LR())
		}
		opt.SetLR(0.4)
		if opt.LR() != 0.4 {
			t.Fatalf("SetLR not applied")
		}
		if len(opt.Params()) != 1 {
			t.Fatalf("Params() wrong length")
		}
	}
}

func TestStepLRSchedule(t *testing.T) {
	s := StepLRSchedule{Base: 1e-4, DecayEvery: 100, Gamma: 0.5}
	if s.LRAt(0) != 1e-4 || s.LRAt(99) != 1e-4 {
		t.Fatal("schedule decayed too early")
	}
	if got := s.LRAt(100); math.Abs(got-5e-5) > 1e-12 {
		t.Fatalf("LRAt(100) = %g", got)
	}
	if got := s.LRAt(250); math.Abs(got-2.5e-5) > 1e-12 {
		t.Fatalf("LRAt(250) = %g", got)
	}
	p := NewParam("p", 1)
	opt := NewSGD([]*Param{p}, 1e-4, 0, 0)
	s.Apply(opt, 300)
	if math.Abs(opt.LR()-1.25e-5) > 1e-12 {
		t.Fatalf("Apply gave %g", opt.LR())
	}
	// Zero DecayEvery means constant.
	c := StepLRSchedule{Base: 2e-3}
	if c.LRAt(1e6) != 2e-3 {
		t.Fatal("DecayEvery=0 should be constant")
	}
}

func TestCheckUniqueNames(t *testing.T) {
	a, b := NewParam("x", 1), NewParam("x", 1)
	if err := CheckUniqueNames([]*Param{a, b}); err == nil {
		t.Fatal("expected duplicate-name error")
	}
	b.Name = "y"
	if err := CheckUniqueNames([]*Param{a, b}); err != nil {
		t.Fatal(err)
	}
}

func TestParamCounts(t *testing.T) {
	rng := tensor.NewRNG(1)
	conv := NewConv2d("c", 3, 8, 3, 1, 1, true, rng)
	ps := conv.Params()
	wantW := 8 * 3 * 3 * 3
	if NumParams(ps) != wantW+8 {
		t.Fatalf("NumParams = %d, want %d", NumParams(ps), wantW+8)
	}
	if GradBytes(ps) != int64(wantW+8)*4 {
		t.Fatalf("GradBytes = %d", GradBytes(ps))
	}
}

// End-to-end: a tiny conv net must fit a linear downscale of its input.
func TestTinyNetworkLearns(t *testing.T) {
	rng := tensor.NewRNG(99)
	net := NewSequential("net",
		NewConv2d("net.c1", 1, 4, 3, 1, 1, true, rng),
		NewReLU(),
		NewConv2d("net.c2", 4, 1, 3, 1, 1, true, rng),
	)
	opt := NewAdam(net.Params(), 1e-2)
	x := tensor.New(4, 1, 8, 8)
	x.FillUniform(rng, 0, 1)
	// Target: identity map of the input (a learnable task for a conv net).
	target := x.Clone()
	var first, last float64
	for step := 0; step < 150; step++ {
		opt.ZeroGrad()
		y := net.Forward(x)
		loss, grad := MSELoss{}.Forward(y, target)
		if step == 0 {
			first = loss
		}
		last = loss
		net.Backward(grad)
		opt.Step()
	}
	if last > first*0.05 {
		t.Fatalf("network failed to learn: first %g, last %g", first, last)
	}
}
