package nn

import (
	"reflect"
	"testing"

	"repro/internal/tensor"
)

// hookNet builds a 3-conv Sequential whose backward walks c3 → c2 → c1.
func hookNet(rng *tensor.RNG) *Sequential {
	return NewSequential("net",
		NewConv2d("c1", 2, 4, 3, 1, 1, true, rng),
		NewReLU(),
		NewConv2d("c2", 4, 4, 3, 1, 1, true, rng),
		NewReLU(),
		NewConv2d("c3", 4, 2, 3, 1, 1, false, rng),
	)
}

func runStep(t *testing.T, net *Sequential) {
	t.Helper()
	x := tensor.New(1, 2, 6, 6)
	x.FillUniform(tensor.NewRNG(7), -0.5, 0.5)
	out := net.Forward(x)
	g := tensor.New(out.Shape()...)
	g.FillUniform(tensor.NewRNG(8), -0.5, 0.5)
	net.Backward(g)
}

// TestGradHookFiresInReverseLayerOrder is the contract the overlapped
// distributed optimizer relies on: parameters are announced as their
// layer's backward completes, last layer first.
func TestGradHookFiresInReverseLayerOrder(t *testing.T) {
	net := hookNet(tensor.NewRNG(1))
	var order []string
	net.SetGradHook(func(p *Param) { order = append(order, p.Name) })
	runStep(t, net)
	want := []string{"c3.weight", "c2.weight", "c2.bias", "c1.weight", "c1.bias"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("hook order %v, want %v", order, want)
	}
}

// TestGradHookSeesFinalGradients: at hook time the parameter's gradient
// must already equal its end-of-backward value.
func TestGradHookSeesFinalGradients(t *testing.T) {
	net := hookNet(tensor.NewRNG(1))
	snap := map[string][]float32{}
	net.SetGradHook(func(p *Param) {
		snap[p.Name] = append([]float32(nil), p.Grad.Data()...)
	})
	runStep(t, net)
	for _, p := range net.Params() {
		got, ok := snap[p.Name]
		if !ok {
			t.Fatalf("hook never fired for %q", p.Name)
		}
		if !reflect.DeepEqual(got, p.Grad.Data()) {
			t.Fatalf("%q: gradient changed after hook fired", p.Name)
		}
	}
}

func TestGradHookRemovedAndAppend(t *testing.T) {
	net := hookNet(tensor.NewRNG(1))
	fired := 0
	net.SetGradHook(func(p *Param) { fired++ })

	// Append after installation must re-snapshot: the new layer's params
	// fire too.
	net.Append(NewConv2d("c4", 2, 2, 3, 1, 1, true, tensor.NewRNG(2)))
	runStep(t, net)
	if fired != 7 { // 5 original params + c4.weight + c4.bias
		t.Fatalf("hook fired %d times, want 7", fired)
	}

	fired = 0
	net.SetGradHook(nil)
	runStep(t, net)
	if fired != 0 {
		t.Fatalf("hook fired %d times after removal", fired)
	}
}

// TestGradHookResBlockDelegation: a container of ResBlocks delegates the
// hook to each block's body; params still fire in reverse order.
func TestGradHookResBlockDelegation(t *testing.T) {
	rng := tensor.NewRNG(3)
	net := NewSequential("net",
		NewResBlock("b0", StyleEDSR, 2, 0.1, rng),
		NewResBlock("b1", StyleEDSR, 2, 0.1, rng),
	)
	var order []string
	net.SetGradHook(func(p *Param) { order = append(order, p.Name) })
	runStep2ch(t, net)
	want := []string{
		"b1.conv2.weight", "b1.conv2.bias", "b1.conv1.weight", "b1.conv1.bias",
		"b0.conv2.weight", "b0.conv2.bias", "b0.conv1.weight", "b0.conv1.bias",
	}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("hook order %v, want %v", order, want)
	}
}

func runStep2ch(t *testing.T, net *Sequential) {
	t.Helper()
	x := tensor.New(1, 2, 5, 5)
	x.FillUniform(tensor.NewRNG(9), -0.5, 0.5)
	out := net.Forward(x)
	g := tensor.New(out.Shape()...)
	g.FillUniform(tensor.NewRNG(10), -0.5, 0.5)
	net.Backward(g)
}
