package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Loss computes a scalar training objective and the gradient of that scalar
// with respect to the prediction.
type Loss interface {
	// Forward returns the loss value and dLoss/dPred.
	Forward(pred, target *tensor.Tensor) (float64, *tensor.Tensor)
	Name() string
}

// L1Loss is mean absolute error — EDSR's training objective (the EDSR paper
// found L1 gives better PSNR than L2 for super-resolution).
type L1Loss struct{}

// Name returns "L1".
func (L1Loss) Name() string { return "L1" }

// Forward computes mean |pred − target| and its subgradient.
func (l L1Loss) Forward(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	return l.ForwardBuf(nil, pred, target)
}

// ForwardBuf is Forward with a caller-owned gradient buffer: buf is grown
// with tensor.Ensure and returned, so a training loop that feeds the
// previous step's buffer back in allocates nothing at steady state.
func (L1Loss) ForwardBuf(buf, pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("nn: L1Loss shape mismatch %v vs %v", pred.Shape(), target.Shape()))
	}
	grad := tensor.Ensure(buf, pred.Shape()...)
	pd, td, gd := pred.Data(), target.Data(), grad.Data()
	inv := 1 / float32(pred.Len())
	var loss float64
	for i, p := range pd {
		d := p - td[i]
		loss += math.Abs(float64(d))
		switch {
		case d > 0:
			gd[i] = inv
		case d < 0:
			gd[i] = -inv
		default:
			gd[i] = 0 // reused buffers are not zero-initialized
		}
	}
	return loss / float64(pred.Len()), grad
}

// MSELoss is mean squared error, the objective of SRCNN and SRResNet.
type MSELoss struct{}

// Name returns "MSE".
func (MSELoss) Name() string { return "MSE" }

// Forward computes mean (pred − target)² and its gradient.
func (l MSELoss) Forward(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	return l.ForwardBuf(nil, pred, target)
}

// ForwardBuf is Forward with a caller-owned gradient buffer (see
// L1Loss.ForwardBuf).
func (MSELoss) ForwardBuf(buf, pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("nn: MSELoss shape mismatch %v vs %v", pred.Shape(), target.Shape()))
	}
	grad := tensor.Ensure(buf, pred.Shape()...)
	pd, td, gd := pred.Data(), target.Data(), grad.Data()
	inv := 2 / float32(pred.Len())
	var loss float64
	for i, p := range pd {
		d := p - td[i]
		loss += float64(d) * float64(d)
		gd[i] = inv * d
	}
	return loss / float64(pred.Len()), grad
}

// BCEWithLogits is binary cross-entropy on raw logits, computed in the
// numerically stable form max(x,0) − x·y + log(1+exp(−|x|)) — the
// adversarial objective of SRGAN's discriminator and generator.
type BCEWithLogits struct{}

// Name returns "BCEWithLogits".
func (BCEWithLogits) Name() string { return "BCEWithLogits" }

// Forward computes mean BCE of logits pred against targets in {0,1} (any
// shape) and the gradient (σ(x) − y)/N.
func (l BCEWithLogits) Forward(pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	return l.ForwardBuf(nil, pred, target)
}

// ForwardBuf is Forward with a caller-owned gradient buffer (see
// L1Loss.ForwardBuf).
func (BCEWithLogits) ForwardBuf(buf, pred, target *tensor.Tensor) (float64, *tensor.Tensor) {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("nn: BCEWithLogits shape mismatch %v vs %v", pred.Shape(), target.Shape()))
	}
	grad := tensor.Ensure(buf, pred.Shape()...)
	pd, td, gd := pred.Data(), target.Data(), grad.Data()
	invN := 1 / float32(pred.Len())
	var loss float64
	for i, x := range pd {
		y := td[i]
		fx := float64(x)
		loss += math.Max(fx, 0) - fx*float64(y) + math.Log1p(math.Exp(-math.Abs(fx)))
		sig := float32(1 / (1 + math.Exp(-fx)))
		gd[i] = (sig - y) * invN
	}
	return loss / float64(pred.Len()), grad
}

// SoftmaxCrossEntropy combines softmax and negative log-likelihood for
// classification heads (the mini-ResNet used in the Fig. 1 comparison).
// Targets are class indices, one per row of pred (N, Classes).
type SoftmaxCrossEntropy struct{}

// Name returns "SoftmaxCE".
func (SoftmaxCrossEntropy) Name() string { return "SoftmaxCE" }

// Forward computes mean cross-entropy of pred (N, C) against integer
// labels and the gradient (softmax − onehot)/N.
func (SoftmaxCrossEntropy) Forward(pred *tensor.Tensor, labels []int) (float64, *tensor.Tensor) {
	n, c := pred.Dim(0), pred.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy got %d labels for batch %d", len(labels), n))
	}
	grad := tensor.New(n, c)
	pd, gd := pred.Data(), grad.Data()
	var loss float64
	invN := 1 / float32(n)
	for i := 0; i < n; i++ {
		row := pd[i*c : (i+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logSum := math.Log(sum) + float64(maxv)
		lbl := labels[i]
		if lbl < 0 || lbl >= c {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", lbl, c))
		}
		loss += logSum - float64(row[lbl])
		grow := gd[i*c : (i+1)*c]
		for j, v := range row {
			p := float32(math.Exp(float64(v) - logSum))
			grow[j] = p * invN
		}
		grow[lbl] -= invN
	}
	return loss / float64(n), grad
}
