package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// PixelShuffle rearranges (N, C*r², H, W) into (N, C, H*r, W*r) — the
// sub-pixel convolution upsampler EDSR and SRResNet use in their tails.
// Input channel c*r²+dy*r+dx maps to output channel c at spatial offset
// (dy, dx) within each r×r output block. The rearrangement is pure data
// movement, parallelized over the batch, with output and gradient
// buffers reused across iterations.
type PixelShuffle struct {
	R int

	inN, inC, inH, inW int

	lastIn      *tensor.Tensor
	lastGrad    *tensor.Tensor
	out, gradIn *tensor.Tensor

	fwdFn, bwdFn func(worker, lo, hi int)
}

// NewPixelShuffle returns a pixel shuffle with upscale factor r.
func NewPixelShuffle(r int) *PixelShuffle {
	if r < 1 {
		panic("nn: PixelShuffle factor must be >= 1")
	}
	return &PixelShuffle{R: r}
}

// Forward performs the channel-to-space rearrangement. The returned
// tensor is owned by the layer and reused on the next call.
func (p *PixelShuffle) Forward(x *tensor.Tensor) *tensor.Tensor {
	r := p.R
	if x.Rank() != 4 || x.Dim(1)%(r*r) != 0 {
		panic(fmt.Sprintf("nn: PixelShuffle input %v not divisible by r²=%d", x.Shape(), r*r))
	}
	n, cIn, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	p.inN, p.inC, p.inH, p.inW = n, cIn, h, w
	p.out = tensor.Ensure(p.out, n, cIn/(r*r), h*r, w*r)
	p.lastIn = x
	if p.fwdFn == nil {
		p.fwdFn = p.fwdWork
		p.bwdFn = p.bwdWork
	}
	tensor.ParallelWorkers(n, 1, p.fwdFn)
	p.lastIn = nil
	return p.out
}

func (p *PixelShuffle) fwdWork(_, lo, hi int) {
	r := p.R
	cIn, h, w := p.inC, p.inH, p.inW
	cOut := cIn / (r * r)
	xd, od := p.lastIn.Data(), p.out.Data()
	oh, ow := h*r, w*r
	for i := lo; i < hi; i++ {
		for c := 0; c < cOut; c++ {
			for dy := 0; dy < r; dy++ {
				for dx := 0; dx < r; dx++ {
					ic := c*r*r + dy*r + dx
					for y := 0; y < h; y++ {
						srow := xd[((i*cIn+ic)*h+y)*w : ((i*cIn+ic)*h+y+1)*w]
						obase := ((i*cOut+c)*oh+(y*r+dy))*ow + dx
						for xq, v := range srow {
							od[obase+xq*r] = v
						}
					}
				}
			}
		}
	}
}

// Backward performs the inverse space-to-channel rearrangement. The
// returned tensor is owned by the layer and reused on the next call.
func (p *PixelShuffle) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if p.inN == 0 {
		panic("nn: PixelShuffle Backward before Forward")
	}
	n := p.inN
	p.gradIn = tensor.Ensure(p.gradIn, n, p.inC, p.inH, p.inW)
	p.lastGrad = gradOut
	tensor.ParallelWorkers(n, 1, p.bwdFn)
	p.lastGrad = nil
	return p.gradIn
}

func (p *PixelShuffle) bwdWork(_, lo, hi int) {
	r := p.R
	cIn, h, w := p.inC, p.inH, p.inW
	cOut := cIn / (r * r)
	gd, gi := p.lastGrad.Data(), p.gradIn.Data()
	oh, ow := h*r, w*r
	for i := lo; i < hi; i++ {
		for c := 0; c < cOut; c++ {
			for dy := 0; dy < r; dy++ {
				for dx := 0; dx < r; dx++ {
					ic := c*r*r + dy*r + dx
					for y := 0; y < h; y++ {
						irow := gi[((i*cIn+ic)*h+y)*w : ((i*cIn+ic)*h+y+1)*w]
						obase := ((i*cOut+c)*oh+(y*r+dy))*ow + dx
						for xq := range irow {
							irow[xq] = gd[obase+xq*r]
						}
					}
				}
			}
		}
	}
}

// Params returns nil; PixelShuffle has no parameters.
func (p *PixelShuffle) Params() []*Param { return nil }
