package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// PixelShuffle rearranges (N, C*r², H, W) into (N, C, H*r, W*r) — the
// sub-pixel convolution upsampler EDSR and SRResNet use in their tails.
// Input channel c*r²+dy*r+dx maps to output channel c at spatial offset
// (dy, dx) within each r×r output block.
type PixelShuffle struct {
	R       int
	inShape []int
}

// NewPixelShuffle returns a pixel shuffle with upscale factor r.
func NewPixelShuffle(r int) *PixelShuffle {
	if r < 1 {
		panic("nn: PixelShuffle factor must be >= 1")
	}
	return &PixelShuffle{R: r}
}

// Forward performs the channel-to-space rearrangement.
func (p *PixelShuffle) Forward(x *tensor.Tensor) *tensor.Tensor {
	r := p.R
	if x.Rank() != 4 || x.Dim(1)%(r*r) != 0 {
		panic(fmt.Sprintf("nn: PixelShuffle input %v not divisible by r²=%d", x.Shape(), r*r))
	}
	n, cIn, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	cOut := cIn / (r * r)
	p.inShape = []int{n, cIn, h, w}
	out := tensor.New(n, cOut, h*r, w*r)
	xd, od := x.Data(), out.Data()
	oh, ow := h*r, w*r
	for i := 0; i < n; i++ {
		for c := 0; c < cOut; c++ {
			for dy := 0; dy < r; dy++ {
				for dx := 0; dx < r; dx++ {
					ic := c*r*r + dy*r + dx
					for y := 0; y < h; y++ {
						srow := xd[((i*cIn+ic)*h+y)*w : ((i*cIn+ic)*h+y+1)*w]
						obase := ((i*cOut+c)*oh+(y*r+dy))*ow + dx
						for xq, v := range srow {
							od[obase+xq*r] = v
						}
					}
				}
			}
		}
	}
	return out
}

// Backward performs the inverse space-to-channel rearrangement.
func (p *PixelShuffle) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if p.inShape == nil {
		panic("nn: PixelShuffle Backward before Forward")
	}
	r := p.R
	n, cIn, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	cOut := cIn / (r * r)
	gradIn := tensor.New(n, cIn, h, w)
	gd, gi := gradOut.Data(), gradIn.Data()
	oh, ow := h*r, w*r
	for i := 0; i < n; i++ {
		for c := 0; c < cOut; c++ {
			for dy := 0; dy < r; dy++ {
				for dx := 0; dx < r; dx++ {
					ic := c*r*r + dy*r + dx
					for y := 0; y < h; y++ {
						irow := gi[((i*cIn+ic)*h+y)*w : ((i*cIn+ic)*h+y+1)*w]
						obase := ((i*cOut+c)*oh+(y*r+dy))*ow + dx
						for xq := range irow {
							irow[xq] = gd[obase+xq*r]
						}
					}
				}
			}
		}
	}
	return gradIn
}

// Params returns nil; PixelShuffle has no parameters.
func (p *PixelShuffle) Params() []*Param { return nil }
