package nn

import "repro/internal/tensor"

// ReLU is the rectified linear activation, y = max(x, 0). Output and
// gradient buffers are reused across iterations: a returned tensor is
// valid until the next call on the same layer instance.
type ReLU struct {
	mask        []bool // which inputs were positive, for the backward pass
	out, gradIn *tensor.Tensor
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward applies max(x, 0) element-wise.
func (r *ReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	r.out = tensor.Ensure(r.out, x.Shape()...)
	if cap(r.mask) < x.Len() {
		r.mask = make([]bool, x.Len())
	}
	r.mask = r.mask[:x.Len()]
	xd, od := x.Data(), r.out.Data()
	for i, v := range xd {
		if v > 0 {
			od[i] = v
			r.mask[i] = true
		} else {
			od[i] = 0
			r.mask[i] = false
		}
	}
	return r.out
}

// Backward zeroes gradients where the input was non-positive.
func (r *ReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if len(r.mask) != gradOut.Len() {
		panic("nn: ReLU Backward before Forward")
	}
	r.gradIn = tensor.Ensure(r.gradIn, gradOut.Shape()...)
	gd, gi := gradOut.Data(), r.gradIn.Data()
	for i, pass := range r.mask {
		if pass {
			gi[i] = gd[i]
		} else {
			gi[i] = 0
		}
	}
	return r.gradIn
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// LeakyReLU is max(x, alpha*x); SRGAN-family discriminators use it, and it
// is kept here for parity with the SRResNet generator variants.
type LeakyReLU struct {
	Alpha       float32
	mask        []bool
	out, gradIn *tensor.Tensor
}

// NewLeakyReLU returns a LeakyReLU with the given negative slope.
func NewLeakyReLU(alpha float32) *LeakyReLU { return &LeakyReLU{Alpha: alpha} }

// Forward applies the leaky rectifier element-wise.
func (r *LeakyReLU) Forward(x *tensor.Tensor) *tensor.Tensor {
	r.out = tensor.Ensure(r.out, x.Shape()...)
	if cap(r.mask) < x.Len() {
		r.mask = make([]bool, x.Len())
	}
	r.mask = r.mask[:x.Len()]
	xd, od := x.Data(), r.out.Data()
	for i, v := range xd {
		if v > 0 {
			od[i] = v
			r.mask[i] = true
		} else {
			od[i] = r.Alpha * v
			r.mask[i] = false
		}
	}
	return r.out
}

// Backward scales gradients by 1 or Alpha depending on the input sign.
func (r *LeakyReLU) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if len(r.mask) != gradOut.Len() {
		panic("nn: LeakyReLU Backward before Forward")
	}
	r.gradIn = tensor.Ensure(r.gradIn, gradOut.Shape()...)
	gd, gi := gradOut.Data(), r.gradIn.Data()
	for i, pass := range r.mask {
		if pass {
			gi[i] = gd[i]
		} else {
			gi[i] = r.Alpha * gd[i]
		}
	}
	return r.gradIn
}

// Params returns nil; LeakyReLU has no parameters.
func (r *LeakyReLU) Params() []*Param { return nil }
