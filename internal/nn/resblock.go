package nn

import "repro/internal/tensor"

// ResBlock is the residual block family compared in the paper's Fig. 5a:
//
//	ResNet:   Conv → BN → ReLU → Conv → BN → (+x) → ReLU
//	SRResNet: Conv → BN → ReLU → Conv → BN → (+x)
//	EDSR:     Conv → ReLU → Conv → ×resScale → (+x)
//
// EDSR removes batch normalization entirely (BN consumes memory comparable
// to the convolutions and hurts super-resolution quality) and scales the
// residual branch by a constant (0.1 in the paper) to stabilize training of
// wide models.
type ResBlock struct {
	Body      *Sequential
	ResScale  float32
	FinalReLU bool // ResNet-style trailing activation

	lastIn    *tensor.Tensor
	tailRelu  *ReLU
	branchBuf *tensor.Tensor // reused scaled-gradient buffer
}

// BlockStyle selects which residual block variant to build.
type BlockStyle int

// Residual block variants from the paper's Fig. 5a.
const (
	StyleEDSR BlockStyle = iota
	StyleSRResNet
	StyleResNet
)

// NewResBlock builds a residual block over c channels with 3×3 kernels.
// resScale is only used by StyleEDSR (pass 1 for no scaling).
func NewResBlock(name string, style BlockStyle, c int, resScale float32, rng *tensor.RNG) *ResBlock {
	b := &ResBlock{ResScale: 1}
	switch style {
	case StyleEDSR:
		b.Body = NewSequential(name,
			NewConv2d(name+".conv1", c, c, 3, 1, 1, true, rng),
			NewReLU(),
			NewConv2d(name+".conv2", c, c, 3, 1, 1, true, rng),
		)
		b.ResScale = resScale
	case StyleSRResNet:
		b.Body = NewSequential(name,
			NewConv2d(name+".conv1", c, c, 3, 1, 1, true, rng),
			NewBatchNorm2d(name+".bn1", c),
			NewReLU(),
			NewConv2d(name+".conv2", c, c, 3, 1, 1, true, rng),
			NewBatchNorm2d(name+".bn2", c),
		)
	case StyleResNet:
		b.Body = NewSequential(name,
			NewConv2d(name+".conv1", c, c, 3, 1, 1, true, rng),
			NewBatchNorm2d(name+".bn1", c),
			NewReLU(),
			NewConv2d(name+".conv2", c, c, 3, 1, 1, true, rng),
			NewBatchNorm2d(name+".bn2", c),
		)
		b.FinalReLU = true
		b.tailRelu = NewReLU()
	}
	return b
}

// Forward computes x + resScale·body(x), with an optional trailing ReLU.
func (b *ResBlock) Forward(x *tensor.Tensor) *tensor.Tensor {
	b.lastIn = x
	out := b.Body.Forward(x)
	if b.ResScale != 1 {
		out.Scale(b.ResScale)
	}
	out.Add(x)
	if b.FinalReLU {
		out = b.tailRelu.Forward(out)
	}
	return out
}

// Backward propagates through the skip connection and the body.
func (b *ResBlock) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if b.lastIn == nil {
		panic("nn: ResBlock Backward before Forward")
	}
	if b.FinalReLU {
		gradOut = b.tailRelu.Backward(gradOut)
	}
	// Branch gradient: scale by resScale before entering the body.
	branch := gradOut
	if b.ResScale != 1 {
		b.branchBuf = tensor.Ensure(b.branchBuf, gradOut.Shape()...)
		b.branchBuf.CopyFrom(gradOut)
		b.branchBuf.Scale(b.ResScale)
		branch = b.branchBuf
	}
	gradIn := b.Body.Backward(branch)
	gradIn.Add(gradOut) // skip connection
	b.lastIn = nil
	return gradIn
}

// Params returns the body's parameters.
func (b *ResBlock) Params() []*Param { return b.Body.Params() }

// SetGradHook delegates to the body: its layers fire as Body.Backward
// walks them in reverse. The skip connection adds no parameters.
func (b *ResBlock) SetGradHook(h GradHook) { b.Body.SetGradHook(h) }

// Flatten reshapes (N, C, H, W) to (N, C*H*W) for classifier heads.
type Flatten struct {
	inShape []int
}

// NewFlatten returns a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all non-batch dimensions.
func (f *Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	f.inShape = append([]int(nil), x.Shape()...)
	n := x.Dim(0)
	return x.Reshape(n, x.Len()/n)
}

// Backward restores the original shape.
func (f *Flatten) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if f.inShape == nil {
		panic("nn: Flatten Backward before Forward")
	}
	return gradOut.Reshape(f.inShape...)
}

// Params returns nil; Flatten has no parameters.
func (f *Flatten) Params() []*Param { return nil }
