package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Linear is a fully-connected layer: y = xW + b with x of shape (N, In).
type Linear struct {
	Weight  *Param // stored (In, Out)
	Bias    *Param
	In, Out int

	lastIn      *tensor.Tensor
	out, gradIn *tensor.Tensor
}

// NewLinear creates a fully-connected layer with Kaiming initialization.
func NewLinear(name string, in, out int, rng *tensor.RNG) *Linear {
	l := &Linear{In: in, Out: out}
	l.Weight = NewParam(name+".weight", in, out)
	l.Weight.Value.KaimingInit(rng, in)
	l.Bias = NewParam(name+".bias", out)
	return l
}

// Forward computes the affine map for a batch.
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != l.In {
		panic(fmt.Sprintf("nn: Linear input %v, want (N,%d)", x.Shape(), l.In))
	}
	l.lastIn = x
	n := x.Dim(0)
	l.out = tensor.Ensure(l.out, n, l.Out)
	out := l.out
	tensor.MatMul(out, x, l.Weight.Value)
	bd, od := l.Bias.Value.Data(), out.Data()
	for i := 0; i < n; i++ {
		row := od[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += bd[j]
		}
	}
	return out
}

// Backward accumulates dW = xᵀg, db = Σg and returns dx = gWᵀ.
func (l *Linear) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	x := l.lastIn
	if x == nil {
		panic("nn: Linear Backward before Forward")
	}
	n := x.Dim(0)
	// dW += xᵀ · g, accumulated straight into the gradient tensor.
	tensor.MatMulTransAAccum(l.Weight.Grad, x, gradOut)
	// db += column sums of g
	bg, gd := l.Bias.Grad.Data(), gradOut.Data()
	for i := 0; i < n; i++ {
		row := gd[i*l.Out : (i+1)*l.Out]
		for j, v := range row {
			bg[j] += v
		}
	}
	// dx = g · Wᵀ
	l.gradIn = tensor.Ensure(l.gradIn, n, l.In)
	gradIn := l.gradIn
	wt := l.Weight.Value // (In, Out); want g(N,Out) · Wᵀ(Out,In)
	tensor.MatMulTransB(gradIn, gradOut, wt)
	l.lastIn = nil
	return gradIn
}

// Params returns the weight and bias.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// GlobalAvgPool reduces (N, C, H, W) to (N, C) by averaging each plane —
// the head of ResNet-style classifiers.
type GlobalAvgPool struct {
	inN, inC, inH, inW int

	out, gradIn *tensor.Tensor
}

// NewGlobalAvgPool returns a global average pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Forward averages over the spatial axes.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	g.inN, g.inC, g.inH, g.inW = n, c, h, w
	g.out = tensor.Ensure(g.out, n, c)
	out := g.out
	plane := h * w
	inv := 1 / float32(plane)
	xd, od := x.Data(), out.Data()
	for i := 0; i < n*c; i++ {
		var s float32
		for _, v := range xd[i*plane : (i+1)*plane] {
			s += v
		}
		od[i] = s * inv
	}
	return out
}

// Backward spreads each gradient uniformly over its plane.
func (g *GlobalAvgPool) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	if g.inN == 0 {
		panic("nn: GlobalAvgPool Backward before Forward")
	}
	n, c, h, w := g.inN, g.inC, g.inH, g.inW
	g.gradIn = tensor.Ensure(g.gradIn, n, c, h, w)
	gradIn := g.gradIn
	plane := h * w
	inv := 1 / float32(plane)
	gd, gi := gradOut.Data(), gradIn.Data()
	for i := 0; i < n*c; i++ {
		v := gd[i] * inv
		row := gi[i*plane : (i+1)*plane]
		for j := range row {
			row[j] = v
		}
	}
	return gradIn
}

// Params returns nil; pooling has no parameters.
func (g *GlobalAvgPool) Params() []*Param { return nil }
