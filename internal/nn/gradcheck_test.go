package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// numericalGrad estimates dLoss/dx[i] by central differences for the scalar
// loss produced by lossOf. It rebuilds the forward pass each probe, so
// layers under test must be deterministic.
func numericalGrad(x *tensor.Tensor, i int, lossOf func() float64) float64 {
	const h = 1e-3
	orig := x.Data()[i]
	x.Data()[i] = orig + h
	up := lossOf()
	x.Data()[i] = orig - h
	down := lossOf()
	x.Data()[i] = orig
	return (up - down) / (2 * h)
}

// checkLayerGradients runs a full forward/backward through layer with an
// MSE-style quadratic loss and compares analytic input and parameter
// gradients against finite differences.
func checkLayerGradients(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	// Quadratic loss: L = 0.5 Σ y². dL/dy = y.
	lossOf := func() float64 {
		y := layer.Forward(x.Clone())
		return 0.5 * y.SqSum()
	}
	y := layer.Forward(x.Clone())
	gradOut := y.Clone()
	ZeroGrads(layer.Params())
	gradIn := layer.Backward(gradOut)

	// Input gradient check on a sample of indices.
	stride := x.Len()/12 + 1
	for i := 0; i < x.Len(); i += stride {
		want := numericalGrad(x, i, lossOf)
		got := float64(gradIn.Data()[i])
		if math.Abs(got-want) > tol*(math.Abs(want)+1) {
			t.Errorf("input grad[%d]: analytic %g vs numeric %g", i, got, want)
		}
	}
	// Parameter gradient check.
	for _, p := range layer.Params() {
		pstride := p.Value.Len()/8 + 1
		for i := 0; i < p.Value.Len(); i += pstride {
			want := numericalGrad(p.Value, i, lossOf)
			got := float64(p.Grad.Data()[i])
			if math.Abs(got-want) > tol*(math.Abs(want)+1) {
				t.Errorf("%s grad[%d]: analytic %g vs numeric %g", p.Name, i, got, want)
			}
		}
	}
}

func TestConv2dGradients(t *testing.T) {
	rng := tensor.NewRNG(1)
	conv := NewConv2d("c", 2, 3, 3, 1, 1, true, rng)
	x := tensor.New(2, 2, 5, 5)
	x.FillUniform(rng, -1, 1)
	checkLayerGradients(t, conv, x, 2e-2)
}

func TestConv2dStridedGradients(t *testing.T) {
	rng := tensor.NewRNG(2)
	conv := NewConv2d("c", 1, 2, 3, 2, 1, true, rng)
	x := tensor.New(1, 1, 7, 7)
	x.FillUniform(rng, -1, 1)
	checkLayerGradients(t, conv, x, 2e-2)
}

func TestConv2dNoBiasGradients(t *testing.T) {
	rng := tensor.NewRNG(3)
	conv := NewConv2d("c", 2, 2, 1, 1, 0, false, rng)
	x := tensor.New(1, 2, 4, 4)
	x.FillUniform(rng, -1, 1)
	checkLayerGradients(t, conv, x, 2e-2)
}

func TestLinearGradients(t *testing.T) {
	rng := tensor.NewRNG(4)
	lin := NewLinear("l", 6, 4, rng)
	x := tensor.New(3, 6)
	x.FillUniform(rng, -1, 1)
	checkLayerGradients(t, lin, x, 1e-2)
}

func TestPixelShuffleGradients(t *testing.T) {
	rng := tensor.NewRNG(5)
	ps := NewPixelShuffle(2)
	x := tensor.New(2, 8, 3, 3)
	x.FillUniform(rng, -1, 1)
	checkLayerGradients(t, ps, x, 1e-3)
}

func TestReLUGradients(t *testing.T) {
	rng := tensor.NewRNG(6)
	// Keep values away from the kink so finite differences are valid.
	x := tensor.New(2, 3, 4, 4)
	x.FillUniform(rng, 0.1, 1)
	x.Data()[0] = -0.5
	x.Data()[7] = -0.9
	checkLayerGradients(t, NewReLU(), x, 1e-3)
}

func TestLeakyReLUGradients(t *testing.T) {
	rng := tensor.NewRNG(7)
	x := tensor.New(1, 2, 3, 3)
	x.FillUniform(rng, 0.1, 1)
	x.Data()[3] = -0.7
	checkLayerGradients(t, NewLeakyReLU(0.2), x, 1e-3)
}

func TestMeanShiftGradients(t *testing.T) {
	rng := tensor.NewRNG(8)
	ms := NewMeanShift([]float32{0.4, 0.5, 0.6}, []float32{1, 0.5, 2}, -1)
	x := tensor.New(2, 3, 3, 3)
	x.FillUniform(rng, 0, 1)
	checkLayerGradients(t, ms, x, 1e-3)
}

func TestBatchNormGradients(t *testing.T) {
	rng := tensor.NewRNG(9)
	bn := NewBatchNorm2d("bn", 2)
	x := tensor.New(3, 2, 4, 4)
	x.FillUniform(rng, -1, 1)
	checkLayerGradients(t, bn, x, 5e-2)
}

func TestResBlockEDSRGradients(t *testing.T) {
	rng := tensor.NewRNG(10)
	rb := NewResBlock("rb", StyleEDSR, 3, 0.1, rng)
	x := tensor.New(1, 3, 5, 5)
	x.FillUniform(rng, -1, 1)
	checkLayerGradients(t, rb, x, 2e-2)
}

func TestResBlockSRResNetGradients(t *testing.T) {
	rng := tensor.NewRNG(11)
	rb := NewResBlock("rb", StyleSRResNet, 2, 1, rng)
	x := tensor.New(2, 2, 4, 4)
	x.FillUniform(rng, -1, 1)
	checkLayerGradients(t, rb, x, 6e-2)
}

func TestResBlockResNetGradients(t *testing.T) {
	rng := tensor.NewRNG(12)
	rb := NewResBlock("rb", StyleResNet, 2, 1, rng)
	x := tensor.New(2, 2, 4, 4)
	// Bias away from ReLU kinks.
	x.FillUniform(rng, 0.2, 1)
	checkLayerGradients(t, rb, x, 8e-2)
}

func TestSequentialGradients(t *testing.T) {
	rng := tensor.NewRNG(13)
	seq := NewSequential("s",
		NewConv2d("s.c1", 1, 2, 3, 1, 1, true, rng),
		NewReLU(),
		NewConv2d("s.c2", 2, 1, 3, 1, 1, true, rng),
	)
	x := tensor.New(1, 1, 5, 5)
	x.FillUniform(rng, 0.1, 1)
	checkLayerGradients(t, seq, x, 2e-2)
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := tensor.NewRNG(14)
	x := tensor.New(2, 3, 4, 4)
	x.FillUniform(rng, -1, 1)
	// GlobalAvgPool output is 2-D; quadratic-loss harness still applies.
	checkLayerGradients(t, NewGlobalAvgPool(), x, 1e-3)
}

func TestL1LossGradient(t *testing.T) {
	rng := tensor.NewRNG(15)
	pred := tensor.New(2, 3)
	pred.FillUniform(rng, -1, 1)
	target := tensor.New(2, 3)
	target.FillUniform(rng, -1, 1)
	loss, grad := L1Loss{}.Forward(pred, target)
	if loss < 0 {
		t.Fatalf("L1 loss negative: %g", loss)
	}
	for i := range pred.Data() {
		want := numericalGrad(pred, i, func() float64 {
			l, _ := L1Loss{}.Forward(pred, target)
			return l
		})
		got := float64(grad.Data()[i])
		if math.Abs(got-want) > 1e-3 {
			t.Errorf("L1 grad[%d]: %g vs %g", i, got, want)
		}
	}
}

func TestMSELossGradient(t *testing.T) {
	rng := tensor.NewRNG(16)
	pred := tensor.New(2, 4)
	pred.FillUniform(rng, -1, 1)
	target := tensor.New(2, 4)
	target.FillUniform(rng, -1, 1)
	loss, grad := MSELoss{}.Forward(pred, target)
	if loss < 0 {
		t.Fatalf("MSE loss negative: %g", loss)
	}
	for i := range pred.Data() {
		want := numericalGrad(pred, i, func() float64 {
			l, _ := MSELoss{}.Forward(pred, target)
			return l
		})
		got := float64(grad.Data()[i])
		if math.Abs(got-want) > 1e-3 {
			t.Errorf("MSE grad[%d]: %g vs %g", i, got, want)
		}
	}
}

func TestSoftmaxCrossEntropyGradient(t *testing.T) {
	rng := tensor.NewRNG(17)
	pred := tensor.New(3, 5)
	pred.FillUniform(rng, -2, 2)
	labels := []int{1, 4, 0}
	loss, grad := SoftmaxCrossEntropy{}.Forward(pred, labels)
	if loss <= 0 {
		t.Fatalf("CE loss should be positive for random logits: %g", loss)
	}
	for i := range pred.Data() {
		want := numericalGrad(pred, i, func() float64 {
			l, _ := SoftmaxCrossEntropy{}.Forward(pred, labels)
			return l
		})
		got := float64(grad.Data()[i])
		if math.Abs(got-want) > 1e-3 {
			t.Errorf("CE grad[%d]: %g vs %g", i, got, want)
		}
	}
}

func TestConvTranspose2dGradients(t *testing.T) {
	rng := tensor.NewRNG(20)
	ct := NewConvTranspose2d("ct", 2, 3, 3, 2, 1, true, rng)
	x := tensor.New(1, 2, 4, 4)
	x.FillUniform(rng, -1, 1)
	checkLayerGradients(t, ct, x, 2e-2)
}

func TestConvTranspose2dNoBiasGradients(t *testing.T) {
	rng := tensor.NewRNG(21)
	ct := NewConvTranspose2d("ct", 3, 2, 2, 2, 0, false, rng)
	x := tensor.New(2, 3, 3, 3)
	x.FillUniform(rng, -1, 1)
	checkLayerGradients(t, ct, x, 2e-2)
}

func TestConvTranspose2dUpsamples(t *testing.T) {
	rng := tensor.NewRNG(22)
	// k=4, stride=2, pad=1 → exact 2x upsampling (the FSRCNN deconv).
	ct := NewConvTranspose2d("ct", 1, 1, 4, 2, 1, true, rng)
	x := tensor.New(1, 1, 5, 7)
	x.FillUniform(rng, 0, 1)
	y := ct.Forward(x)
	if y.Dim(2) != 10 || y.Dim(3) != 14 {
		t.Fatalf("output %v, want (1,1,10,14)", y.Shape())
	}
}

// TestConvTransposeIsConvAdjoint verifies the defining property:
// <ConvT(x), y> == <x, Conv(y)> for matching weights.
func TestConvTransposeIsConvAdjoint(t *testing.T) {
	rng := tensor.NewRNG(23)
	const inC, outC, k, stride, pad = 2, 3, 3, 2, 1
	ct := NewConvTranspose2d("ct", inC, outC, k, stride, pad, false, rng)
	// The adjoint ordinary convolution maps outC→inC with the same kernel.
	conv := &Conv2d{
		InC: outC, OutC: inC, KH: k, KW: k, Stride: stride, Pad: pad,
		Weight: ct.Weight, // shared storage: (inC, outC*k*k) matches conv's (outC', inC'*k*k)
	}
	x := tensor.New(1, inC, 4, 4)
	x.FillUniform(rng, -1, 1)
	up := ct.Forward(x)
	y := tensor.New(up.Shape()...)
	y.FillUniform(rng, -1, 1)
	down := conv.Forward(y)
	var lhs, rhs float64
	for i := range up.Data() {
		lhs += float64(up.Data()[i]) * float64(y.Data()[i])
	}
	for i := range x.Data() {
		rhs += float64(x.Data()[i]) * float64(down.Data()[i])
	}
	if math.Abs(lhs-rhs) > 1e-3*(math.Abs(lhs)+1) {
		t.Fatalf("adjoint identity broken: %g vs %g", lhs, rhs)
	}
}

func TestBCEWithLogitsGradient(t *testing.T) {
	rng := tensor.NewRNG(30)
	pred := tensor.New(3, 2)
	pred.FillUniform(rng, -3, 3)
	target := tensor.FromSlice([]float32{1, 0, 1, 1, 0, 0}, 3, 2)
	loss, grad := BCEWithLogits{}.Forward(pred, target)
	if loss <= 0 {
		t.Fatalf("BCE of random logits should be positive: %g", loss)
	}
	for i := range pred.Data() {
		want := numericalGrad(pred, i, func() float64 {
			l, _ := BCEWithLogits{}.Forward(pred, target)
			return l
		})
		got := float64(grad.Data()[i])
		if math.Abs(got-want) > 1e-3 {
			t.Errorf("BCE grad[%d]: %g vs %g", i, got, want)
		}
	}
}

func TestBCEWithLogitsStability(t *testing.T) {
	// Extreme logits must not overflow to Inf/NaN.
	pred := tensor.FromSlice([]float32{80, -80}, 2)
	target := tensor.FromSlice([]float32{1, 0}, 2)
	loss, grad := BCEWithLogits{}.Forward(pred, target)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("unstable loss %g", loss)
	}
	if loss > 1e-6 {
		t.Fatalf("confident correct logits should give ~0 loss: %g", loss)
	}
	for _, g := range grad.Data() {
		if math.IsNaN(float64(g)) {
			t.Fatal("NaN gradient")
		}
	}
}
