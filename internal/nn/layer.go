// Package nn implements the neural-network layers, losses, and optimizers
// needed to train super-resolution models (EDSR, SRCNN, SRResNet) and small
// classifiers on the CPU.
//
// Layers follow a manual-backprop design: Forward caches whatever the
// matching Backward pass needs, and Backward consumes the cache and
// accumulates parameter gradients. The design trades generality of a full
// autograd for simplicity and tight control over allocation, which is what
// the distributed-training experiments care about: the per-parameter
// gradient tensors exposed through Params() are exactly the buffers that
// Horovod-style data parallelism must allreduce.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Param is a trainable parameter: its value and accumulated gradient.
// Grad has the same shape as Value and is owned by the layer; data-parallel
// training reduces Grad across ranks in place.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter and its gradient with the given shape.
func NewParam(name string, shape ...int) *Param {
	return &Param{Name: name, Value: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable module. Forward consumes an input batch and
// returns the output; Backward consumes the gradient of the loss with
// respect to the output and returns the gradient with respect to the input,
// accumulating parameter gradients along the way. A Layer's Backward must
// be called after its Forward, with tensors from the same iteration.
type Layer interface {
	Forward(x *tensor.Tensor) *tensor.Tensor
	Backward(gradOut *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Sequential chains layers, feeding each one's output to the next.
type Sequential struct {
	Name   string
	Layers []Layer
}

// NewSequential builds a sequential container.
func NewSequential(name string, layers ...Layer) *Sequential {
	return &Sequential{Name: name, Layers: layers}
}

// Append adds a layer to the end of the chain.
func (s *Sequential) Append(l Layer) { s.Layers = append(s.Layers, l) }

// Forward runs all layers in order.
func (s *Sequential) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward runs all layers in reverse order.
func (s *Sequential) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		gradOut = s.Layers[i].Backward(gradOut)
	}
	return gradOut
}

// Params returns the parameters of all layers in declaration order.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrads clears the gradients of every parameter in ps.
func ZeroGrads(ps []*Param) {
	for _, p := range ps {
		p.ZeroGrad()
	}
}

// NumParams returns the total element count across parameters.
func NumParams(ps []*Param) int {
	n := 0
	for _, p := range ps {
		n += p.Value.Len()
	}
	return n
}

// GradBytes returns the total gradient payload in bytes — the volume a
// data-parallel step must allreduce.
func GradBytes(ps []*Param) int64 {
	var n int64
	for _, p := range ps {
		n += p.Grad.Bytes()
	}
	return n
}

// CheckUniqueNames verifies that parameter names are distinct; Horovod-style
// negotiation keys tensors by name, so collisions would silently corrupt
// training.
func CheckUniqueNames(ps []*Param) error {
	seen := make(map[string]bool, len(ps))
	for _, p := range ps {
		if seen[p.Name] {
			return fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
	}
	return nil
}
