// Package nn implements the neural-network layers, losses, and optimizers
// needed to train super-resolution models (EDSR, SRCNN, SRResNet) and small
// classifiers on the CPU.
//
// Layers follow a manual-backprop design: Forward caches whatever the
// matching Backward pass needs, and Backward consumes the cache and
// accumulates parameter gradients. The design trades generality of a full
// autograd for simplicity and tight control over allocation, which is what
// the distributed-training experiments care about: the per-parameter
// gradient tensors exposed through Params() are exactly the buffers that
// Horovod-style data parallelism must allreduce.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Param is a trainable parameter: its value and accumulated gradient.
// Grad has the same shape as Value and is owned by the layer; data-parallel
// training reduces Grad across ranks in place.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam allocates a parameter and its gradient with the given shape.
func NewParam(name string, shape ...int) *Param {
	return &Param{Name: name, Value: tensor.New(shape...), Grad: tensor.New(shape...)}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable module. Forward consumes an input batch and
// returns the output; Backward consumes the gradient of the loss with
// respect to the output and returns the gradient with respect to the input,
// accumulating parameter gradients along the way. A Layer's Backward must
// be called after its Forward, with tensors from the same iteration.
type Layer interface {
	Forward(x *tensor.Tensor) *tensor.Tensor
	Backward(gradOut *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// GradHook observes a parameter whose gradient accumulation for the
// current backward pass has just completed. It fires on the goroutine
// running Backward, after the owning layer's Backward returns, so p.Grad
// is final for the step — the hook may hand the buffer to a communication
// engine immediately, overlapping the remaining backward computation with
// gradient reduction.
type GradHook func(p *Param)

// GradNotifier is implemented by layers and containers that can fire a
// GradHook during Backward. SetGradHook(nil) removes the hook. Containers
// propagate the hook to notifier children and fire it themselves for
// plain-Layer children.
type GradNotifier interface {
	SetGradHook(h GradHook)
}

// Sequential chains layers, feeding each one's output to the next.
type Sequential struct {
	Name   string
	Layers []Layer

	hook GradHook
	// hookParams caches each non-notifier layer's Params() slice so
	// Backward fires the hook without calling Params() per step (which
	// would allocate). Entry i is nil when layer i notifies for itself or
	// has no parameters.
	hookParams [][]*Param
}

// NewSequential builds a sequential container.
func NewSequential(name string, layers ...Layer) *Sequential {
	return &Sequential{Name: name, Layers: layers}
}

// Append adds a layer to the end of the chain.
func (s *Sequential) Append(l Layer) {
	s.Layers = append(s.Layers, l)
	if s.hook != nil {
		s.SetGradHook(s.hook) // re-snapshot hookParams for the new layer
	}
}

// SetGradHook installs h to fire for each layer's parameters as soon as
// that layer's Backward returns (reverse layer order). Child layers that
// are themselves GradNotifiers receive the hook and fire for their own
// parameters.
func (s *Sequential) SetGradHook(h GradHook) {
	s.hook = h
	s.hookParams = nil
	if h == nil {
		for _, l := range s.Layers {
			if n, ok := l.(GradNotifier); ok {
				n.SetGradHook(nil)
			}
		}
		return
	}
	s.hookParams = make([][]*Param, len(s.Layers))
	for i, l := range s.Layers {
		if n, ok := l.(GradNotifier); ok {
			n.SetGradHook(h)
			continue
		}
		s.hookParams[i] = l.Params()
	}
}

// Forward runs all layers in order.
func (s *Sequential) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward runs all layers in reverse order. With a gradient hook
// installed, each layer's parameters are announced the moment that
// layer's backward contribution completes.
func (s *Sequential) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		gradOut = s.Layers[i].Backward(gradOut)
		if s.hook != nil {
			for _, p := range s.hookParams[i] {
				s.hook(p)
			}
		}
	}
	return gradOut
}

// Params returns the parameters of all layers in declaration order.
func (s *Sequential) Params() []*Param {
	var out []*Param
	for _, l := range s.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// ZeroGrads clears the gradients of every parameter in ps.
func ZeroGrads(ps []*Param) {
	for _, p := range ps {
		p.ZeroGrad()
	}
}

// NumParams returns the total element count across parameters.
func NumParams(ps []*Param) int {
	n := 0
	for _, p := range ps {
		n += p.Value.Len()
	}
	return n
}

// GradBytes returns the total gradient payload in bytes — the volume a
// data-parallel step must allreduce.
func GradBytes(ps []*Param) int64 {
	var n int64
	for _, p := range ps {
		n += p.Grad.Bytes()
	}
	return n
}

// CheckUniqueNames verifies that parameter names are distinct; Horovod-style
// negotiation keys tensors by name, so collisions would silently corrupt
// training.
func CheckUniqueNames(ps []*Param) error {
	seen := make(map[string]bool, len(ps))
	for _, p := range ps {
		if seen[p.Name] {
			return fmt.Errorf("nn: duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
	}
	return nil
}
