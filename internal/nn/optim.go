package nn

import (
	"math"

	"repro/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients. Step is
// called once per training iteration after gradients are synchronized.
type Optimizer interface {
	Step()
	ZeroGrad()
	// LR returns the current learning rate; SetLR overrides it (used both
	// by schedules and by Horovod's linear LR scaling rule).
	LR() float64
	SetLR(lr float64)
	// Params exposes the parameter set so wrappers (e.g. Horovod's
	// DistributedOptimizer) can interpose on gradients before the update.
	Params() []*Param
}

// SGD is stochastic gradient descent with optional momentum and weight
// decay.
type SGD struct {
	lr          float64
	Momentum    float64
	WeightDecay float64
	params      []*Param
	velocity    []*tensor.Tensor
}

// NewSGD creates an SGD optimizer over params.
func NewSGD(params []*Param, lr, momentum, weightDecay float64) *SGD {
	s := &SGD{lr: lr, Momentum: momentum, WeightDecay: weightDecay, params: params}
	if momentum != 0 {
		s.velocity = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			s.velocity[i] = tensor.New(p.Value.Shape()...)
		}
	}
	return s
}

// Step applies one SGD update.
func (s *SGD) Step() {
	lr := float32(s.lr)
	mom := float32(s.Momentum)
	wd := float32(s.WeightDecay)
	for i, p := range s.params {
		vd, gd := p.Value.Data(), p.Grad.Data()
		if s.velocity != nil {
			vel := s.velocity[i].Data()
			for j := range vd {
				g := gd[j] + wd*vd[j]
				vel[j] = mom*vel[j] + g
				vd[j] -= lr * vel[j]
			}
		} else {
			for j := range vd {
				g := gd[j] + wd*vd[j]
				vd[j] -= lr * g
			}
		}
	}
}

// ZeroGrad clears all gradients.
func (s *SGD) ZeroGrad() { ZeroGrads(s.params) }

// LR returns the learning rate.
func (s *SGD) LR() float64 { return s.lr }

// SetLR sets the learning rate.
func (s *SGD) SetLR(lr float64) { s.lr = lr }

// Params returns the optimizer's parameter set.
func (s *SGD) Params() []*Param { return s.params }

// Adam implements the Adam optimizer (Kingma & Ba), EDSR's published
// training configuration (lr 1e-4, β₁ 0.9, β₂ 0.999, ε 1e-8).
type Adam struct {
	lr           float64
	Beta1, Beta2 float64
	Eps          float64
	params       []*Param
	m, v         []*tensor.Tensor
	t            int
}

// NewAdam creates an Adam optimizer with the standard hyperparameters.
func NewAdam(params []*Param, lr float64) *Adam {
	a := &Adam{lr: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	a.m = make([]*tensor.Tensor, len(params))
	a.v = make([]*tensor.Tensor, len(params))
	for i, p := range params {
		a.m[i] = tensor.New(p.Value.Shape()...)
		a.v[i] = tensor.New(p.Value.Shape()...)
	}
	return a
}

// Step applies one Adam update with bias correction.
func (a *Adam) Step() {
	a.t++
	b1, b2 := float32(a.Beta1), float32(a.Beta2)
	corr1 := 1 - math.Pow(a.Beta1, float64(a.t))
	corr2 := 1 - math.Pow(a.Beta2, float64(a.t))
	stepSize := float32(a.lr / corr1)
	sqrtCorr2 := float32(math.Sqrt(corr2))
	eps := float32(a.Eps)
	for i, p := range a.params {
		vd, gd := p.Value.Data(), p.Grad.Data()
		md, sd := a.m[i].Data(), a.v[i].Data()
		for j := range vd {
			g := gd[j]
			md[j] = b1*md[j] + (1-b1)*g
			sd[j] = b2*sd[j] + (1-b2)*g*g
			denom := float32(math.Sqrt(float64(sd[j])))/sqrtCorr2 + eps
			vd[j] -= stepSize * md[j] / denom
		}
	}
}

// ZeroGrad clears all gradients.
func (a *Adam) ZeroGrad() { ZeroGrads(a.params) }

// State exposes the optimizer's internal state for checkpointing: the
// first and second moment estimates (in parameter order) and the step
// counter. The returned tensors are the live internal buffers.
func (a *Adam) State() (m, v []*tensor.Tensor, step int) {
	return a.m, a.v, a.t
}

// SetStep restores the bias-correction step counter.
func (a *Adam) SetStep(t int) { a.t = t }

// LR returns the learning rate.
func (a *Adam) LR() float64 { return a.lr }

// SetLR sets the learning rate.
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// Params returns the optimizer's parameter set.
func (a *Adam) Params() []*Param { return a.params }

// StepLRSchedule halves (or generally scales) the learning rate every
// DecayEvery steps — EDSR's published schedule halves lr every 2·10⁵
// iterations.
type StepLRSchedule struct {
	Base       float64
	DecayEvery int
	Gamma      float64
}

// LRAt returns the learning rate for a given global step.
func (s StepLRSchedule) LRAt(step int) float64 {
	if s.DecayEvery <= 0 {
		return s.Base
	}
	return s.Base * math.Pow(s.Gamma, float64(step/s.DecayEvery))
}

// Apply sets opt's learning rate for the given step, preserving any
// multiplicative scale (e.g. Horovod's ×N rule) baked into Base.
func (s StepLRSchedule) Apply(opt Optimizer, step int) {
	opt.SetLR(s.LRAt(step))
}
