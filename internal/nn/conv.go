package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Conv2d is a 2-D convolution with square or rectangular kernels, zero
// padding, and stride, implemented as im2col + matrix multiply — the same
// lowering cuDNN uses for its GEMM-based algorithms.
//
// Input and output are NCHW. Weight is stored as (outC, inC*kh*kw) so the
// per-sample forward pass is a single (outC × K) · (K × outH*outW) matmul.
type Conv2d struct {
	Weight *Param
	Bias   *Param

	InC, OutC      int
	KH, KW         int
	Stride, Pad    int
	hasBias        bool

	// Backward cache.
	lastIn         *tensor.Tensor
	lastOutH, lastOutW int

	// Scratch buffers reused across iterations.
	col, gradCol *tensor.Tensor
}

// NewConv2d creates a convolution layer with Kaiming-normal weights.
func NewConv2d(name string, inC, outC, k, stride, pad int, bias bool, rng *tensor.RNG) *Conv2d {
	c := &Conv2d{
		InC: inC, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad, hasBias: bias,
	}
	c.Weight = NewParam(name+".weight", outC, inC*k*k)
	c.Weight.Value.KaimingInit(rng, inC*k*k)
	if bias {
		c.Bias = NewParam(name+".bias", outC)
	}
	return c
}

// OutSize returns the spatial output size for an input of h×w.
func (c *Conv2d) OutSize(h, w int) (int, int) {
	return (h+2*c.Pad-c.KH)/c.Stride + 1, (w+2*c.Pad-c.KW)/c.Stride + 1
}

// Forward computes the convolution for a batch x of shape (N, InC, H, W).
func (c *Conv2d) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: Conv2d input shape %v, want (N,%d,H,W)", x.Shape(), c.InC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	outH, outW := c.OutSize(h, w)
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("nn: Conv2d input %dx%d too small for kernel", h, w))
	}
	c.lastIn, c.lastOutH, c.lastOutW = x, outH, outW

	k := c.InC * c.KH * c.KW
	cols := outH * outW
	if c.col == nil || c.col.Dim(0) != k || c.col.Dim(1) != cols {
		c.col = tensor.New(k, cols)
	}
	out := tensor.New(n, c.OutC, outH, outW)
	inPlane := c.InC * h * w
	outPlane := c.OutC * cols
	for i := 0; i < n; i++ {
		src := tensor.FromSlice(x.Data()[i*inPlane:(i+1)*inPlane], c.InC, h, w)
		tensor.Im2Col(c.col, src, c.KH, c.KW, c.Stride, c.Pad)
		dst := tensor.FromSlice(out.Data()[i*outPlane:(i+1)*outPlane], c.OutC, cols)
		tensor.MatMul(dst, c.Weight.Value, c.col)
	}
	if c.hasBias {
		bd := c.Bias.Value.Data()
		od := out.Data()
		for i := 0; i < n; i++ {
			for oc := 0; oc < c.OutC; oc++ {
				b := bd[oc]
				row := od[i*outPlane+oc*cols : i*outPlane+(oc+1)*cols]
				for j := range row {
					row[j] += b
				}
			}
		}
	}
	return out
}

// Backward accumulates weight/bias gradients and returns the input gradient.
func (c *Conv2d) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	x := c.lastIn
	if x == nil {
		panic("nn: Conv2d Backward before Forward")
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	outH, outW := c.lastOutH, c.lastOutW
	k := c.InC * c.KH * c.KW
	cols := outH * outW
	if gradOut.Dim(0) != n || gradOut.Dim(1) != c.OutC || gradOut.Dim(2) != outH || gradOut.Dim(3) != outW {
		panic(fmt.Sprintf("nn: Conv2d gradOut shape %v mismatch", gradOut.Shape()))
	}
	if c.gradCol == nil || c.gradCol.Dim(0) != k || c.gradCol.Dim(1) != cols {
		c.gradCol = tensor.New(k, cols)
	}
	gradIn := tensor.New(n, c.InC, h, w)
	inPlane := c.InC * h * w
	outPlane := c.OutC * cols
	scratch := tensor.New(c.InC, h, w)
	for i := 0; i < n; i++ {
		src := tensor.FromSlice(x.Data()[i*inPlane:(i+1)*inPlane], c.InC, h, w)
		// Recompute the column matrix rather than caching one per sample:
		// EDSR activations dominate memory, so trading FLOPs for footprint
		// mirrors the checkpointing trade-off real frameworks make.
		tensor.Im2Col(c.col, src, c.KH, c.KW, c.Stride, c.Pad)
		g := tensor.FromSlice(gradOut.Data()[i*outPlane:(i+1)*outPlane], c.OutC, cols)

		// dW += g · colᵀ   — (OutC×cols)·(cols×K)ᵀ accumulation.
		tensor.MatMulTransBAccum(c.Weight.Grad, g, c.col)
		// dCol = Wᵀ · g    — (K×OutC)·(OutC×cols) via MatMulTransA.
		tensor.MatMulTransA(c.gradCol, c.Weight.Value, g)
		tensor.Col2Im(scratch, c.gradCol, c.KH, c.KW, c.Stride, c.Pad)
		copy(gradIn.Data()[i*inPlane:(i+1)*inPlane], scratch.Data())

		if c.hasBias {
			bg := c.Bias.Grad.Data()
			gd := g.Data()
			for oc := 0; oc < c.OutC; oc++ {
				var s float32
				row := gd[oc*cols : (oc+1)*cols]
				for _, v := range row {
					s += v
				}
				bg[oc] += s
			}
		}
	}
	c.lastIn = nil
	return gradIn
}

// Params returns the convolution's trainable parameters.
func (c *Conv2d) Params() []*Param {
	if c.hasBias {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Weight}
}
