package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Per-worker Workspace slot assignments shared by the convolution layers.
// Slots 0 and 1 hold the im2col column matrices; 2 and 3 hold per-worker
// weight- and bias-gradient accumulators that are merged serially after a
// multi-worker backward region.
const (
	slotCol = iota
	slotGradCol
	slotDW
	slotDB
)

// Conv2d is a 2-D convolution with square or rectangular kernels, zero
// padding, and stride, implemented as im2col + matrix multiply — the same
// lowering cuDNN uses for its GEMM-based algorithms.
//
// Input and output are NCHW. Weight is stored as (outC, inC*kh*kw) so the
// per-sample forward pass is a single (outC × K) · (K × outH*outW) matmul
// with the bias fused into the GEMM store epilogue. The batch dimension is
// split across workers, each owning a Workspace from the layer's scratch
// pool, and the output and input-gradient tensors are reused across
// iterations: a returned tensor is valid until the next Forward/Backward
// on the same layer instance.
type Conv2d struct {
	Weight *Param
	Bias   *Param

	InC, OutC   int
	KH, KW      int
	Stride, Pad int
	hasBias     bool

	// Backward cache.
	lastIn             *tensor.Tensor
	lastOutH, lastOutW int

	// Reused output/gradient buffers and per-worker scratch.
	scratch    *ScratchPool
	out        *tensor.Tensor
	gradIn     *tensor.Tensor
	gradOut    *tensor.Tensor // view of the incoming gradient during Backward
	bwdWorkers int

	// Persistent worker closures: bound once so the steady-state parallel
	// loops do not allocate.
	fwdFn, bwdFn func(worker, lo, hi int)
}

// NewConv2d creates a convolution layer with Kaiming-normal weights.
func NewConv2d(name string, inC, outC, k, stride, pad int, bias bool, rng *tensor.RNG) *Conv2d {
	c := &Conv2d{
		InC: inC, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad, hasBias: bias,
	}
	c.Weight = NewParam(name+".weight", outC, inC*k*k)
	c.Weight.Value.KaimingInit(rng, inC*k*k)
	if bias {
		c.Bias = NewParam(name+".bias", outC)
	}
	return c
}

// setScratch points the layer at a shared per-worker workspace pool.
func (c *Conv2d) setScratch(sp *ScratchPool) { c.scratch = sp }

// ensureScratch lazily provisions the pool and worker closures, so layers
// assembled by struct literal (tests construct adjoint pairs that way)
// work without NewConv2d or AttachScratch.
func (c *Conv2d) ensureScratch(n int) {
	if c.scratch == nil {
		c.scratch = NewScratchPool()
	}
	c.scratch.Reserve(tensor.WorkerCount(n, 1))
	if c.fwdFn == nil {
		c.fwdFn = c.fwdWork
		c.bwdFn = c.bwdWork
	}
}

// OutSize returns the spatial output size for an input of h×w.
func (c *Conv2d) OutSize(h, w int) (int, int) {
	return (h+2*c.Pad-c.KH)/c.Stride + 1, (w+2*c.Pad-c.KW)/c.Stride + 1
}

// Forward computes the convolution for a batch x of shape (N, InC, H, W).
// The returned tensor is owned by the layer and reused on the next call.
func (c *Conv2d) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 || x.Dim(1) != c.InC {
		panic(fmt.Sprintf("nn: Conv2d input shape %v, want (N,%d,H,W)", x.Shape(), c.InC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	outH, outW := c.OutSize(h, w)
	if outH <= 0 || outW <= 0 {
		panic(fmt.Sprintf("nn: Conv2d input %dx%d too small for kernel", h, w))
	}
	c.lastIn, c.lastOutH, c.lastOutW = x, outH, outW
	c.out = tensor.Ensure(c.out, n, c.OutC, outH, outW)
	c.ensureScratch(n)
	tensor.ParallelWorkers(n, 1, c.fwdFn)
	return c.out
}

// fwdWork convolves samples [lo,hi) using worker-private scratch: each
// sample is lowered to columns and multiplied against the weight matrix
// with the bias added in the GEMM epilogue.
func (c *Conv2d) fwdWork(worker, lo, hi int) {
	x := c.lastIn
	h, w := x.Dim(2), x.Dim(3)
	cols := c.lastOutH * c.lastOutW
	k := c.InC * c.KH * c.KW
	inPlane := c.InC * h * w
	outPlane := c.OutC * cols
	ws := c.scratch.Worker(worker)
	col := ws.Slot(slotCol, k*cols)
	wd := c.Weight.Value.Data()
	xd, od := x.Data(), c.out.Data()
	var bias []float32
	if c.hasBias {
		bias = c.Bias.Value.Data()
	}
	for i := lo; i < hi; i++ {
		tensor.Im2ColBuf(col, xd[i*inPlane:(i+1)*inPlane], c.InC, h, w, c.KH, c.KW, c.Stride, c.Pad)
		dst := od[i*outPlane : (i+1)*outPlane]
		if bias != nil {
			ws.GemmBias(dst, wd, col, bias, c.OutC, k, cols)
		} else {
			ws.Gemm(dst, wd, col, c.OutC, k, cols)
		}
	}
}

// Backward accumulates weight/bias gradients and returns the input
// gradient (owned by the layer, reused on the next call). With one worker
// gradients accumulate straight into Param.Grad; with several, each
// worker fills a private accumulator slot and the slots are summed
// serially afterwards, keeping the parallel region race-free.
func (c *Conv2d) Backward(gradOut *tensor.Tensor) *tensor.Tensor {
	x := c.lastIn
	if x == nil {
		panic("nn: Conv2d Backward before Forward")
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	outH, outW := c.lastOutH, c.lastOutW
	if gradOut.Dim(0) != n || gradOut.Dim(1) != c.OutC || gradOut.Dim(2) != outH || gradOut.Dim(3) != outW {
		panic(fmt.Sprintf("nn: Conv2d gradOut shape %v mismatch", gradOut.Shape()))
	}
	c.gradIn = tensor.Ensure(c.gradIn, n, c.InC, h, w)
	c.gradOut = gradOut
	c.ensureScratch(n)

	workers := tensor.WorkerCount(n, 1)
	c.bwdWorkers = workers
	if workers > 1 {
		// Pre-zero every worker's accumulator slot (including workers the
		// range split may leave idle) so the merge below never reads stale
		// gradients from an earlier iteration.
		for wk := 0; wk < workers; wk++ {
			ws := c.scratch.Worker(wk)
			ws.ZeroSlot(slotDW, c.Weight.Grad.Len())
			if c.hasBias {
				ws.ZeroSlot(slotDB, c.Bias.Grad.Len())
			}
		}
	}
	tensor.ParallelWorkers(n, 1, c.bwdFn)
	if workers > 1 {
		wg := c.Weight.Grad.Data()
		for wk := 0; wk < workers; wk++ {
			ws := c.scratch.Worker(wk)
			for j, v := range ws.Slot(slotDW, len(wg)) {
				wg[j] += v
			}
			if c.hasBias {
				bg := c.Bias.Grad.Data()
				for j, v := range ws.Slot(slotDB, len(bg)) {
					bg[j] += v
				}
			}
		}
	}
	c.lastIn, c.gradOut = nil, nil
	return c.gradIn
}

// bwdWork processes samples [lo,hi): it recomputes the column matrix
// (activations dominate EDSR memory, so trading FLOPs for footprint
// mirrors the checkpointing trade-off real frameworks make), accumulates
// dW += g·colᵀ and dB += Σg, and scatters dCol = Wᵀ·g back to the input
// gradient.
func (c *Conv2d) bwdWork(worker, lo, hi int) {
	x := c.lastIn
	h, w := x.Dim(2), x.Dim(3)
	cols := c.lastOutH * c.lastOutW
	k := c.InC * c.KH * c.KW
	inPlane := c.InC * h * w
	outPlane := c.OutC * cols
	ws := c.scratch.Worker(worker)
	col := ws.Slot(slotCol, k*cols)
	gcol := ws.Slot(slotGradCol, k*cols)
	dW := c.Weight.Grad.Data()
	var dB []float32
	if c.hasBias {
		dB = c.Bias.Grad.Data()
	}
	if c.bwdWorkers > 1 {
		dW = ws.Slot(slotDW, len(dW))
		if c.hasBias {
			dB = ws.Slot(slotDB, len(dB))
		}
	}
	wd := c.Weight.Value.Data()
	xd, gd, gi := x.Data(), c.gradOut.Data(), c.gradIn.Data()
	for i := lo; i < hi; i++ {
		tensor.Im2ColBuf(col, xd[i*inPlane:(i+1)*inPlane], c.InC, h, w, c.KH, c.KW, c.Stride, c.Pad)
		g := gd[i*outPlane : (i+1)*outPlane]
		// dW (OutC×K) += g (OutC×cols) · colᵀ (cols×K).
		ws.GemmTransBAccum(dW, g, col, c.OutC, cols, k)
		// dCol (K×cols) = Wᵀ (K×OutC) · g (OutC×cols).
		ws.GemmTransA(gcol, wd, g, c.OutC, k, cols)
		tensor.Col2ImBuf(gi[i*inPlane:(i+1)*inPlane], gcol, c.InC, h, w, c.KH, c.KW, c.Stride, c.Pad)
		if dB != nil {
			for oc := 0; oc < c.OutC; oc++ {
				var s float32
				for _, v := range g[oc*cols : (oc+1)*cols] {
					s += v
				}
				dB[oc] += s
			}
		}
	}
}

// Params returns the convolution's trainable parameters.
func (c *Conv2d) Params() []*Param {
	if c.hasBias {
		return []*Param{c.Weight, c.Bias}
	}
	return []*Param{c.Weight}
}
