package experiments

import (
	"fmt"
	"strings"

	"repro/internal/collective"
	"repro/internal/scaling"
)

// AblationPoint is one setting of a tunable and its outcome.
type AblationPoint struct {
	Label        string
	ImagesPerSec float64
	Messages     float64 // per step
	StepMs       float64
}

// AblationResult is a named sweep.
type AblationResult struct {
	Name   string
	Points []AblationPoint
}

// RunFusionAblation sweeps HOROVOD_FUSION_THRESHOLD — the Horovod tunable
// the paper says it adjusted at every scale (Section II-D). Small buffers
// flood the backend with medium messages; large ones produce the 32-64 MB
// messages that the optimized large-message path accelerates.
func RunFusionAblation(backend collective.Backend, nodes, steps int) AblationResult {
	res := AblationResult{Name: fmt.Sprintf("fusion threshold (%s, %d GPUs)", backend, nodes*4)}
	for _, mb := range []int64{2, 8, 16, 32, 64, 128} {
		r := scaling.Run(scaling.Options{
			Nodes: nodes, Backend: backend, Steps: steps,
			FusionThresholdBytes: mb << 20,
		})
		res.Points = append(res.Points, AblationPoint{
			Label:        fmt.Sprintf("%d MB", mb),
			ImagesPerSec: r.ImagesPerSec,
			Messages:     float64(r.Messages) / float64(steps),
			StepMs:       r.StepSec * 1000,
		})
	}
	return res
}

// RunCycleAblation sweeps HOROVOD_CYCLE_TIME: short cycles react faster
// but negotiate constantly; long cycles quantize the step tail.
func RunCycleAblation(backend collective.Backend, nodes, steps int) AblationResult {
	res := AblationResult{Name: fmt.Sprintf("cycle time (%s, %d GPUs)", backend, nodes*4)}
	for _, ms := range []float64{1, 3.5, 10, 25, 50} {
		r := scaling.Run(scaling.Options{
			Nodes: nodes, Backend: backend, Steps: steps,
			CycleTimeSec: ms / 1000,
		})
		res.Points = append(res.Points, AblationPoint{
			Label:        fmt.Sprintf("%.1f ms", ms),
			ImagesPerSec: r.ImagesPerSec,
			Messages:     float64(r.Messages) / float64(steps),
			StepMs:       r.StepSec * 1000,
		})
	}
	return res
}

// RunJitterAblation sweeps compute noise: synchronous data parallelism
// pays the slowest rank, so straggler sensitivity grows with scale.
func RunJitterAblation(backend collective.Backend, nodes, steps int) AblationResult {
	res := AblationResult{Name: fmt.Sprintf("compute jitter (%s, %d GPUs)", backend, nodes*4)}
	for _, frac := range []float64{0.001, 0.01, 0.03, 0.06} {
		r := scaling.Run(scaling.Options{
			Nodes: nodes, Backend: backend, Steps: steps,
			JitterFrac: frac,
		})
		res.Points = append(res.Points, AblationPoint{
			Label:        fmt.Sprintf("%.1f%%", frac*100),
			ImagesPerSec: r.ImagesPerSec,
			Messages:     float64(r.Messages) / float64(steps),
			StepMs:       r.StepSec * 1000,
		})
	}
	return res
}

// Format renders a sweep.
func (a AblationResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — %s\n", a.Name)
	fmt.Fprintf(&b, "%-10s %12s %12s %12s\n", "Setting", "img/s", "msgs/step", "step ms")
	for _, p := range a.Points {
		fmt.Fprintf(&b, "%-10s %12.1f %12.1f %12.1f\n", p.Label, p.ImagesPerSec, p.Messages, p.StepMs)
	}
	return b.String()
}

// Best returns the setting with the highest throughput.
func (a AblationResult) Best() AblationPoint {
	best := a.Points[0]
	for _, p := range a.Points[1:] {
		if p.ImagesPerSec > best.ImagesPerSec {
			best = p
		}
	}
	return best
}
