package experiments

import (
	"fmt"
	"strings"

	"repro/internal/collective"
	"repro/internal/perfmodel"
	"repro/internal/scaling"
)

// StrongScalingPoint is one scale of a fixed-global-batch run.
type StrongScalingPoint struct {
	GPUs        int
	BatchPerGPU int
	StepMs      float64
	Speedup     float64 // vs the single-node step time
}

// StrongScalingResult is a strong-scaling curve for one backend.
type StrongScalingResult struct {
	Backend     collective.Backend
	GlobalBatch int
	Points      []StrongScalingPoint
}

// RunStrongScaling fixes the global batch (default 512 images — the weak
// study's batch at max scale) and shrinks per-GPU work as GPUs grow. This
// is the extension experiment the paper leaves open: with less compute to
// hide behind, communication dominates sooner, so the default backend's
// speedup saturates earlier than the optimized one's.
func RunStrongScaling(backend collective.Backend, globalBatch, steps int, nodeCounts []int) StrongScalingResult {
	if globalBatch == 0 {
		globalBatch = 512
	}
	if len(nodeCounts) == 0 {
		nodeCounts = []int{1, 4, 16, 64, 128}
	}
	res := StrongScalingResult{Backend: backend, GlobalBatch: globalBatch}
	var baseStep float64
	for i, n := range nodeCounts {
		r := scaling.Run(scaling.Options{
			Nodes: n, Backend: backend, Steps: steps, GlobalBatchSize: globalBatch,
		})
		bpg := globalBatch / (n * 4)
		if bpg < 1 {
			bpg = 1
		}
		pt := StrongScalingPoint{GPUs: r.GPUs, BatchPerGPU: bpg, StepMs: r.StepSec * 1000}
		if i == 0 {
			baseStep = r.StepSec
		}
		if r.StepSec > 0 {
			pt.Speedup = baseStep / r.StepSec
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

// Format renders a strong-scaling comparison of several backends.
func FormatStrongScaling(results []StrongScalingResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Strong scaling (extension) — fixed global batch %d, speedup vs first scale\n",
		results[0].GlobalBatch)
	fmt.Fprintf(&b, "%-8s %10s", "GPUs", "batch/GPU")
	for _, r := range results {
		fmt.Fprintf(&b, " %14s", r.Backend)
	}
	fmt.Fprintf(&b, "\n")
	for i := range results[0].Points {
		p := results[0].Points[i]
		fmt.Fprintf(&b, "%-8d %10d", p.GPUs, p.BatchPerGPU)
		for _, r := range results {
			fmt.Fprintf(&b, " %7.1fx %5.0fms", r.Points[i].Speedup, r.Points[i].StepMs)
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "With shrinking per-GPU compute there is less work to hide communication\n")
	fmt.Fprintf(&b, "behind, so the IPC fix matters even more than in the paper's weak scaling.\n")
	return b.String()
}

// StrongScalingAmdahlBound returns the ideal-speedup ceiling implied by
// the fixed per-step overhead in the compute model (launch costs do not
// shrink with the batch), for reference against the measured curves.
func StrongScalingAmdahlBound(globalBatch, gpus int) float64 {
	bpg := globalBatch / gpus
	if bpg < 1 {
		bpg = 1
	}
	t1 := perfmodel.EDSRStepSec(globalBatch / 4) // per-GPU batch at 4 GPUs
	tn := perfmodel.EDSRStepSec(bpg)
	if tn <= 0 {
		return 0
	}
	return t1 / tn
}
