package experiments

import (
	"fmt"
	"strings"

	"repro/internal/collective"
	"repro/internal/models"
	"repro/internal/perfmodel"
	"repro/internal/scaling"
)

// TuningLimitResult tests the paper's Section IX claim: the approach of
// reference [7] — tuning only at the Horovod layer (fusion threshold,
// cycle time) — cannot recover EDSR's performance, "the larger average
// message size for MPI_Allreduce required by EDSR [is] unable to be
// resolved with tuning at the Horovod layer alone." We sweep the default
// backend over a grid of Horovod tunables and compare the best result
// against MPI-Opt at its defaults.
type TuningLimitResult struct {
	BestDefault AblationPoint // best default-MPI throughput over the grid
	BestSetting string
	MPIOpt      float64 // MPI-Opt throughput at default tunables
	GapPercent  float64 // how far the best default remains below MPI-Opt
}

// RunTuningLimit sweeps Horovod tunables on the default backend.
func RunTuningLimit(nodes, steps int) TuningLimitResult {
	var res TuningLimitResult
	for _, mb := range []int64{8, 32, 64, 128} {
		for _, cyc := range []float64{0.0035, 0.010, 0.025} {
			r := scaling.Run(scaling.Options{
				Nodes: nodes, Backend: collective.BackendMPI, Steps: steps,
				FusionThresholdBytes: mb << 20, CycleTimeSec: cyc,
			})
			if r.ImagesPerSec > res.BestDefault.ImagesPerSec {
				res.BestDefault = AblationPoint{
					Label:        fmt.Sprintf("fusion %dMB cycle %.1fms", mb, cyc*1000),
					ImagesPerSec: r.ImagesPerSec,
					Messages:     float64(r.Messages) / float64(steps),
					StepMs:       r.StepSec * 1000,
				}
				res.BestSetting = res.BestDefault.Label
			}
		}
	}
	opt := scaling.Run(scaling.Options{Nodes: nodes, Backend: collective.BackendMPIOpt, Steps: steps})
	res.MPIOpt = opt.ImagesPerSec
	if res.MPIOpt > 0 {
		res.GapPercent = (res.MPIOpt - res.BestDefault.ImagesPerSec) / res.MPIOpt * 100
	}
	return res
}

// Format renders the tuning-limit comparison.
func (r TuningLimitResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Horovod-layer tuning limit (the paper's Section IX claim)\n")
	fmt.Fprintf(&b, "best default-MPI over tunable grid: %.1f img/s (%s)\n",
		r.BestDefault.ImagesPerSec, r.BestSetting)
	fmt.Fprintf(&b, "MPI-Opt at default tunables:        %.1f img/s\n", r.MPIOpt)
	fmt.Fprintf(&b, "remaining gap: %.1f%% — Horovod-layer tuning alone cannot restore CUDA IPC\n", r.GapPercent)
	return b.String()
}

// ModelSensitivityRow compares how two EDSR configurations stress the
// communication layer.
type ModelSensitivityRow struct {
	Name       string
	GradMB     float64
	Messages   float64 // per step
	DefaultEff float64
	OptEff     float64
	GainPts    float64
}

// RunModelSensitivity contrasts the paper's 40.7M-parameter EDSR against
// the 1.4M-parameter EDSR-baseline: the small model's gradients never
// reach the ≥16 MB IPC-dependent regime, so the default-vs-optimized gap
// (the paper's whole story) nearly vanishes — evidence that the pathology
// is specific to large-message workloads like DLSR.
func RunModelSensitivity(nodes, steps int) []ModelSensitivityRow {
	base := scaling.SingleGPUBaseline(0)
	var rows []ModelSensitivityRow
	for _, tc := range []struct {
		name string
		cfg  models.EDSRConfig
	}{
		{"EDSR paper (B32/F256)", models.EDSRPaper()},
		{"EDSR baseline (B16/F64)", models.EDSRBaseline()},
	} {
		def := scaling.Run(scaling.Options{Nodes: nodes, Backend: collective.BackendMPI, Steps: steps, Model: tc.cfg})
		opt := scaling.Run(scaling.Options{Nodes: nodes, Backend: collective.BackendMPIOpt, Steps: steps, Model: tc.cfg})
		defEff := scaling.Efficiency(def, base)
		optEff := scaling.Efficiency(opt, base)
		rows = append(rows, ModelSensitivityRow{
			Name:       tc.name,
			GradMB:     float64(perfmodel.TotalGradBytes(perfmodel.GradLayout(tc.cfg))) / (1 << 20),
			Messages:   float64(def.Messages) / float64(steps),
			DefaultEff: defEff,
			OptEff:     optEff,
			GainPts:    (optEff - defEff) * 100,
		})
	}
	return rows
}

// FormatModelSensitivity renders the comparison.
func FormatModelSensitivity(rows []ModelSensitivityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Model sensitivity — why the IPC pathology is a DLSR problem\n")
	fmt.Fprintf(&b, "%-26s %10s %10s %10s %10s %10s\n",
		"Model", "grads MB", "msgs/step", "MPI eff", "Opt eff", "gain pts")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %10.1f %10.1f %9.1f%% %9.1f%% %10.1f\n",
			r.Name, r.GradMB, r.Messages, 100*r.DefaultEff, 100*r.OptEff, r.GainPts)
	}
	fmt.Fprintf(&b, "Note: efficiencies use the large model's compute rate as the common baseline;\n")
	fmt.Fprintf(&b, "the comparison of interest is each row's default-vs-optimized gap.\n")
	return b.String()
}
