package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/simnet"
)

// Fig6Row is the per-GPU memory footprint under one visibility mode — the
// paper's Fig. 6 "overhead kernel" mechanism made quantitative.
type Fig6Row struct {
	Mode      cluster.VisibilityMode
	PerGPU    []int64 // allocated bytes per device after process start-up
	Overflow  bool    // did any device exceed 16 GB?
	IPCForMPI bool    // can the MPI layer still open IPC handles?
}

// RunFig6 applies each visibility mode's framework footprint to a
// simulated 4-GPU node with a near-capacity model and reports what the
// paper's Figs. 6a/6b/7 describe: all-visible overflows (overhead
// kernels everywhere), pinning fits but kills IPC, the split fits and
// keeps IPC.
func RunFig6(modelBytes int64) []Fig6Row {
	if modelBytes == 0 {
		modelBytes = 14<<30 + (600 << 20) // near-capacity EDSR job
	}
	var rows []Fig6Row
	for _, mode := range []cluster.VisibilityMode{
		cluster.VisibilityAll, cluster.VisibilityPinned, cluster.VisibilitySplit,
	} {
		sim := simnet.New()
		cl := cluster.New(sim, cluster.DefaultConfig(1))
		node := cl.Node(0)
		maps := cluster.MapProcesses(mode, 4)
		err := cluster.FrameworkFootprint(node, maps, modelBytes, cl.Cfg.GPUMemBytes)
		row := Fig6Row{Mode: mode, Overflow: err != nil}
		for _, g := range node.GPUs {
			row.PerGPU = append(row.PerGPU, g.Allocated())
		}
		row.IPCForMPI = maps[0].IPCAvailable(0, 1)
		rows = append(rows, row)
	}
	return rows
}

// FormatFig6 renders the mechanism table.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figs. 6-7 — device visibility: framework footprint vs CUDA IPC (4x V100 16 GB,\n")
	fmt.Fprintf(&b, "near-capacity model per process; overhead kernel = %d MB per visible device)\n",
		cluster.OverheadKernelBytes>>20)
	fmt.Fprintf(&b, "%-22s %8s %8s %8s %8s %10s %8s\n",
		"Mode", "GPU0", "GPU1", "GPU2", "GPU3", "Overflow", "MPI IPC")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s", r.Mode)
		for _, a := range r.PerGPU {
			fmt.Fprintf(&b, " %6.1fGB", float64(a)/float64(1<<30))
		}
		over, ipc := "fits", "yes"
		if r.Overflow {
			over = "OOM"
		}
		if !r.IPCForMPI {
			ipc = "LOST"
		}
		fmt.Fprintf(&b, " %10s %8s\n", over, ipc)
	}
	fmt.Fprintf(&b, "Paper: pinning CUDA_VISIBLE_DEVICES contains the footprint but disables IPC;\n")
	fmt.Fprintf(&b, "MV2_VISIBLE_DEVICES (split) keeps both properties — the proposed fix.\n")
	return b.String()
}
