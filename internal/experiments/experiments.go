// Package experiments regenerates every table and figure in the paper's
// evaluation: each Fig*/Table* function runs the corresponding experiment
// on the simulated cluster (and the perfmodel for single-GPU figures) and
// formats the result next to the paper's reported values so the shapes
// can be compared directly. cmd/figures and the benchmark harness are
// thin wrappers around this package.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/collective"
	"repro/internal/hvprof"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/scaling"
)

// Options trades fidelity for runtime: the full configuration matches the
// paper's runs; Quick uses fewer steps and scales for tests/benchmarks.
type Options struct {
	// Steps per simulated run (paper profiles use 100).
	Steps int
	// ProfileSteps for the Fig. 14 / Table I runs.
	ProfileSteps int
	// NodeCounts for the scaling sweeps.
	NodeCounts []int
}

// Full mirrors the paper's experiment sizes.
func Full() Options {
	return Options{Steps: 10, ProfileSteps: 100, NodeCounts: scaling.PaperNodeCounts()}
}

// Quick is a reduced configuration for tests and iterative work.
func Quick() Options {
	return Options{Steps: 5, ProfileSteps: 20, NodeCounts: []int{1, 4, 16, 64, 128}}
}

func (o Options) withDefaults() Options {
	if o.Steps == 0 {
		o.Steps = 10
	}
	if o.ProfileSteps == 0 {
		o.ProfileSteps = 100
	}
	if len(o.NodeCounts) == 0 {
		o.NodeCounts = scaling.PaperNodeCounts()
	}
	return o
}

// Fig1 is the single-GPU throughput contrast between an image
// classification model (ResNet-50) and a super-resolution model (EDSR).
type Fig1 struct {
	ResNet50ImgPerSec float64
	EDSRImgPerSec     float64
	Ratio             float64
}

// RunFig1 evaluates the calibrated single-V100 model.
func RunFig1() Fig1 {
	edsr, _ := perfmodel.EDSRThroughput(perfmodel.EDSRBatchSize)
	rn := perfmodel.ResNet50Throughput(64)
	return Fig1{ResNet50ImgPerSec: rn, EDSRImgPerSec: edsr, Ratio: rn / edsr}
}

// Format renders the figure with the paper's reference values.
func (f Fig1) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1 — Single-V100 training throughput (images/sec)\n")
	fmt.Fprintf(&b, "%-22s %10s %10s\n", "Model", "Measured", "Paper")
	fmt.Fprintf(&b, "%-22s %10.1f %10.1f\n", "ResNet-50 (batch 64)", f.ResNet50ImgPerSec, perfmodel.ResNet50ImagesPerSecV100)
	fmt.Fprintf(&b, "%-22s %10.1f %10.1f\n", "EDSR (batch 4)", f.EDSRImgPerSec, perfmodel.EDSRImagesPerSecV100)
	fmt.Fprintf(&b, "ResNet-50/EDSR ratio: %.1fx (paper: ~35x)\n", f.Ratio)
	return b.String()
}

// Fig9Point is one batch-size measurement.
type Fig9Point struct {
	Batch     int
	ImgPerSec float64
	Fits      bool
}

// RunFig9 sweeps the single-GPU batch size (the paper selected 4).
func RunFig9() []Fig9Point {
	var pts []Fig9Point
	for _, b := range []int{1, 2, 4, 8, 16} {
		tp, fits := perfmodel.EDSRThroughput(b)
		pts = append(pts, Fig9Point{Batch: b, ImgPerSec: tp, Fits: fits})
	}
	return pts
}

// FormatFig9 renders the sweep.
func FormatFig9(pts []Fig9Point) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9 — Single-GPU batch-size evaluation (EDSR, V100 16 GB)\n")
	fmt.Fprintf(&b, "%-8s %12s %10s\n", "Batch", "img/s", "Fits 16GB")
	for _, p := range pts {
		fit := "yes"
		if !p.Fits {
			fit = "OOM"
		}
		fmt.Fprintf(&b, "%-8d %12.2f %10s\n", p.Batch, p.ImgPerSec, fit)
	}
	fmt.Fprintf(&b, "Paper's choice: batch 4 (10.3 img/s) — balances throughput and convergence.\n")
	return b.String()
}

// ScalingCurve is one backend's throughput/efficiency across scales.
type ScalingCurve struct {
	Backend collective.Backend
	Points  []scaling.Result
}

// Efficiencies returns the per-point scaling efficiencies.
func (c ScalingCurve) Efficiencies() []float64 {
	base := scaling.SingleGPUBaseline(0)
	out := make([]float64, len(c.Points))
	for i, r := range c.Points {
		out[i] = scaling.Efficiency(r, base)
	}
	return out
}

// RunScaling sweeps one backend over the node counts.
func RunScaling(b collective.Backend, opt Options) ScalingCurve {
	opt = opt.withDefaults()
	return ScalingCurve{Backend: b, Points: scaling.Sweep(b, opt.NodeCounts, opt.Steps, nil)}
}

// Fig10 is the default-configuration scaling comparison: MPI vs NCCL.
type Fig10 struct {
	MPI, NCCL ScalingCurve
}

// RunFig10 runs the default scaling study.
func RunFig10(opt Options) Fig10 {
	return Fig10{MPI: RunScaling(collective.BackendMPI, opt), NCCL: RunScaling(collective.BackendNCCL, opt)}
}

// Format renders Fig. 10.
func (f Fig10) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 10 — Default distributed EDSR training throughput (images/sec)\n")
	formatCurves(&b, []ScalingCurve{f.MPI, f.NCCL})
	fmt.Fprintf(&b, "Paper: default MPI throughput degrades at scale; NCCL holds up (IPC unaffected).\n")
	return b.String()
}

// Fig11 is the registration-cache study: MPI vs MPI-Reg.
type Fig11 struct {
	MPI, MPIReg    ScalingCurve
	AvgImprovement float64 // fraction, paper: 0.051
	HitRate        float64 // paper: 0.93
}

// RunFig11 runs the registration-cache comparison.
func RunFig11(opt Options) Fig11 {
	f := Fig11{
		MPI:    RunScaling(collective.BackendMPI, opt),
		MPIReg: RunScaling(collective.BackendMPIReg, opt),
	}
	var sum float64
	var n int
	var hits, misses int64
	for i := range f.MPI.Points {
		if f.MPI.Points[i].ImagesPerSec > 0 {
			sum += f.MPIReg.Points[i].ImagesPerSec/f.MPI.Points[i].ImagesPerSec - 1
			n++
		}
		hits += f.MPIReg.Points[i].RegCacheHits
		misses += f.MPIReg.Points[i].RegCacheMiss
	}
	if n > 0 {
		f.AvgImprovement = sum / float64(n)
	}
	if hits+misses > 0 {
		f.HitRate = float64(hits) / float64(hits+misses)
	}
	return f
}

// Format renders Fig. 11.
func (f Fig11) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 11 — EDSR throughput with the registration cache (MPI vs MPI-Reg)\n")
	formatCurves(&b, []ScalingCurve{f.MPI, f.MPIReg})
	fmt.Fprintf(&b, "Average improvement: %.1f%% (paper: 5.1%%)   cache hit rate: %.0f%% (paper: 93%%)\n",
		100*f.AvgImprovement, 100*f.HitRate)
	return b.String()
}

// Fig12 is the optimized-throughput comparison: MPI vs MPI-Opt vs NCCL.
type Fig12 struct {
	MPI, MPIOpt, NCCL ScalingCurve
	// SpeedupAtMax is MPI-Opt/MPI at the largest scale (paper: 1.26x).
	SpeedupAtMax float64
}

// RunFig12 runs the optimized scaling study.
func RunFig12(opt Options) Fig12 {
	f := Fig12{
		MPI:    RunScaling(collective.BackendMPI, opt),
		MPIOpt: RunScaling(collective.BackendMPIOpt, opt),
		NCCL:   RunScaling(collective.BackendNCCL, opt),
	}
	last := len(f.MPI.Points) - 1
	f.SpeedupAtMax = metrics.Speedup(f.MPIOpt.Points[last].ImagesPerSec, f.MPI.Points[last].ImagesPerSec)
	return f
}

// Format renders Fig. 12.
func (f Fig12) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 12 — Optimized distributed EDSR training throughput (images/sec)\n")
	formatCurves(&b, []ScalingCurve{f.MPI, f.MPIOpt, f.NCCL})
	fmt.Fprintf(&b, "MPI-Opt speedup over MPI at max scale: %.2fx (paper: 1.26x / +26%% throughput)\n", f.SpeedupAtMax)
	return b.String()
}

// Fig13 is the scaling-efficiency view of all four backends.
type Fig13 struct {
	Curves []ScalingCurve
	// EffGainAtMax is MPI-Opt minus MPI efficiency at the largest scale
	// in points (paper: 15.6).
	EffGainAtMax float64
}

// RunFig13 runs the efficiency study.
func RunFig13(opt Options) Fig13 {
	f := Fig13{Curves: []ScalingCurve{
		RunScaling(collective.BackendMPI, opt),
		RunScaling(collective.BackendMPIReg, opt),
		RunScaling(collective.BackendMPIOpt, opt),
		RunScaling(collective.BackendNCCL, opt),
	}}
	mpiEff := f.Curves[0].Efficiencies()
	optEff := f.Curves[2].Efficiencies()
	last := len(mpiEff) - 1
	f.EffGainAtMax = (optEff[last] - mpiEff[last]) * 100
	return f
}

// Format renders Fig. 13.
func (f Fig13) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 13 — EDSR scaling efficiency (%% of perfect linear scaling)\n")
	fmt.Fprintf(&b, "%-8s", "GPUs")
	for _, c := range f.Curves {
		fmt.Fprintf(&b, " %9s", c.Backend)
	}
	fmt.Fprintf(&b, "\n")
	for i := range f.Curves[0].Points {
		fmt.Fprintf(&b, "%-8d", f.Curves[0].Points[i].GPUs)
		for _, c := range f.Curves {
			fmt.Fprintf(&b, " %8.1f%%", 100*c.Efficiencies()[i])
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "Efficiency gain (MPI-Opt − MPI) at max scale: %.1f points (paper: 15.6)\n", f.EffGainAtMax)
	fmt.Fprintf(&b, "Paper: default drops below 60%%; MPI-Opt stays above 70%% at 512 GPUs.\n")
	return b.String()
}

// Fig14 is the hvprof allreduce profile of 100 training steps on 4 GPUs.
type Fig14 struct {
	Default, Optimized hvprof.Report
}

// RunFig14 profiles default and optimized runs.
func RunFig14(opt Options) Fig14 {
	opt = opt.withDefaults()
	run := func(b collective.Backend) hvprof.Report {
		prof := hvprof.New()
		scaling.Run(scaling.Options{Nodes: 1, Backend: b, Steps: opt.ProfileSteps, Prof: prof})
		return prof.Report()
	}
	return Fig14{Default: run(collective.BackendMPI), Optimized: run(collective.BackendMPIOpt)}
}

// Format renders Fig. 14.
func (f Fig14) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 14 — hvprof allreduce profile, EDSR on 4 GPUs\n\n-- default MPI --\n%s\n-- MPI-Opt --\n%s",
		f.Default.String(), f.Optimized.String())
	return b.String()
}

// TableI compares allreduce time by message-size bucket.
type TableI struct {
	Rows []hvprof.CompareRow
}

// PaperTableI holds the published numbers for side-by-side rendering.
var PaperTableI = map[string][3]float64{ // bucket → default ms, opt ms, improvement %
	"1-128 KB":       {392.0, 391.2, 0},
	"128 KB - 16 MB": {320.7, 342.4, 0},
	"16 MB - 32 MB":  {1321.6, 619.6, 53.1},
	"32 MB - 64 MB":  {5145.6, 2587.2, 49.7},
	"Total Time":     {7179.9, 3918.5, 45.4},
}

// RunTableI derives Table I from the Fig. 14 profiles.
func RunTableI(opt Options) TableI {
	f := RunFig14(opt)
	return TableI{Rows: hvprof.Compare(f.Default, f.Optimized, "allreduce")}
}

// TotalImprovement returns the bottom-line improvement percentage.
func (t TableI) TotalImprovement() float64 {
	for _, r := range t.Rows {
		if r.Bucket == "Total Time" {
			return r.ImprovementPercent
		}
	}
	return 0
}

// Format renders Table I with the paper's numbers alongside.
func (t TableI) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — Allreduce time by message size, default vs optimized\n")
	fmt.Fprintf(&b, "%-16s %22s %22s %18s\n", "", "Measured (ms)", "Paper (ms)", "Improvement %")
	fmt.Fprintf(&b, "%-16s %10s %11s %10s %11s %8s %9s\n",
		"Message Size", "Default", "Opt", "Default", "Opt", "Ours", "Paper")
	for _, r := range t.Rows {
		paper, ok := PaperTableI[r.Bucket]
		pd, po, pi := "-", "-", "-"
		if ok {
			pd = fmt.Sprintf("%.1f", paper[0])
			po = fmt.Sprintf("%.1f", paper[1])
			if paper[2] == 0 {
				pi = "~0"
			} else {
				pi = fmt.Sprintf("%.1f", paper[2])
			}
		}
		ours := fmt.Sprintf("%.1f", r.ImprovementPercent)
		if r.ImprovementPercent < 2 && r.ImprovementPercent > -2 {
			ours = "~0"
		}
		fmt.Fprintf(&b, "%-16s %10.1f %11.1f %10s %11s %8s %9s\n",
			r.Bucket, r.DefaultMs, r.OptMs, pd, po, ours, pi)
	}
	return b.String()
}

func formatCurves(b *strings.Builder, curves []ScalingCurve) {
	fmt.Fprintf(b, "%-8s", "GPUs")
	for _, c := range curves {
		fmt.Fprintf(b, " %11s", c.Backend)
	}
	fmt.Fprintf(b, "\n")
	for i := range curves[0].Points {
		fmt.Fprintf(b, "%-8d", curves[0].Points[i].GPUs)
		for _, c := range curves {
			fmt.Fprintf(b, " %11.1f", c.Points[i].ImagesPerSec)
		}
		fmt.Fprintf(b, "\n")
	}
}
