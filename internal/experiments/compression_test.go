package experiments

import (
	"strings"
	"testing"

	"repro/internal/collective"
)

func TestCompressionStudy(t *testing.T) {
	rows := RunCompressionStudy(16, 3)
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	for _, r := range rows {
		if r.FP16ImgPerS <= r.FP32ImgPerS*0.98 {
			t.Fatalf("%v: fp16 (%g) should not be slower than fp32 (%g)",
				r.Backend, r.FP16ImgPerS, r.FP32ImgPerS)
		}
	}
	// The bandwidth-bound default backend must benefit at least as much
	// as the optimized one.
	var def, opt CompressionRow
	for _, r := range rows {
		switch r.Backend {
		case collective.BackendMPI:
			def = r
		case collective.BackendMPIOpt:
			opt = r
		}
	}
	if def.GainPercent < opt.GainPercent-1 {
		t.Fatalf("default should gain at least as much from compression: def %+.1f%% opt %+.1f%%",
			def.GainPercent, opt.GainPercent)
	}
	if !strings.Contains(FormatCompression(rows, 16), "FP16") {
		t.Fatal("format broken")
	}
}
