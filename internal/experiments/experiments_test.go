package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestFig1MatchesPaper(t *testing.T) {
	f := RunFig1()
	if math.Abs(f.EDSRImgPerSec-10.3) > 0.1 {
		t.Fatalf("EDSR %g img/s", f.EDSRImgPerSec)
	}
	if math.Abs(f.ResNet50ImgPerSec-360) > 5 {
		t.Fatalf("ResNet %g img/s", f.ResNet50ImgPerSec)
	}
	if f.Ratio < 30 || f.Ratio > 40 {
		t.Fatalf("ratio %g", f.Ratio)
	}
	if !strings.Contains(f.Format(), "Fig. 1") {
		t.Fatal("format broken")
	}
}

func TestFig9ShapeAndFormat(t *testing.T) {
	pts := RunFig9()
	if len(pts) != 5 {
		t.Fatalf("points %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].ImgPerSec <= pts[i-1].ImgPerSec {
			t.Fatal("throughput should rise with batch")
		}
	}
	if pts[4].Fits {
		t.Fatal("batch 16 should be OOM")
	}
	out := FormatFig9(pts)
	if !strings.Contains(out, "OOM") || !strings.Contains(out, "batch 4") {
		t.Fatalf("format: %s", out)
	}
}

func quickOpt() Options {
	return Options{Steps: 4, ProfileSteps: 10, NodeCounts: []int{1, 8, 32}}
}

func TestFig10Shape(t *testing.T) {
	f := RunFig10(quickOpt())
	last := len(f.MPI.Points) - 1
	if f.NCCL.Points[last].ImagesPerSec <= f.MPI.Points[last].ImagesPerSec {
		t.Fatal("NCCL should beat default MPI at scale (the paper's Fig. 10)")
	}
	if !strings.Contains(f.Format(), "Fig. 10") {
		t.Fatal("format broken")
	}
}

func TestFig11Shape(t *testing.T) {
	f := RunFig11(quickOpt())
	if f.AvgImprovement <= 0 || f.AvgImprovement > 0.15 {
		t.Fatalf("avg improvement %.1f%%, paper says 5.1%%", 100*f.AvgImprovement)
	}
	if f.HitRate < 0.7 {
		t.Fatalf("hit rate %.0f%%, paper says 93%%", 100*f.HitRate)
	}
	if !strings.Contains(f.Format(), "5.1%") {
		t.Fatal("format should cite the paper value")
	}
}

func TestFig12Shape(t *testing.T) {
	f := RunFig12(quickOpt())
	if f.SpeedupAtMax < 1.1 || f.SpeedupAtMax > 1.5 {
		t.Fatalf("speedup %.2fx, paper says 1.26x", f.SpeedupAtMax)
	}
	if !strings.Contains(f.Format(), "1.26x") {
		t.Fatal("format should cite the paper value")
	}
}

func TestFig13Shape(t *testing.T) {
	f := RunFig13(quickOpt())
	if len(f.Curves) != 4 {
		t.Fatal("want all four backends")
	}
	if f.EffGainAtMax < 8 || f.EffGainAtMax > 25 {
		t.Fatalf("efficiency gain %.1f points, paper says 15.6", f.EffGainAtMax)
	}
	out := f.Format()
	if !strings.Contains(out, "MPI-Opt") || !strings.Contains(out, "15.6") {
		t.Fatalf("format: %s", out)
	}
}

func TestFig14AndTableI(t *testing.T) {
	ti := RunTableI(Options{ProfileSteps: 15})
	total := ti.TotalImprovement()
	if total < 30 || total > 65 {
		t.Fatalf("Table I total improvement %.1f%%, paper says 45.4%%", total)
	}
	out := ti.Format()
	if !strings.Contains(out, "45.4") || !strings.Contains(out, "32 MB - 64 MB") {
		t.Fatalf("format: %s", out)
	}
	f14 := RunFig14(Options{ProfileSteps: 5})
	if !strings.Contains(f14.Format(), "hvprof") {
		t.Fatal("fig14 format broken")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Steps == 0 || o.ProfileSteps == 0 || len(o.NodeCounts) == 0 {
		t.Fatalf("defaults not applied: %+v", o)
	}
	if Full().ProfileSteps != 100 {
		t.Fatal("Full should match the paper's 100-step profile")
	}
	if len(Quick().NodeCounts) == 0 {
		t.Fatal("Quick node counts empty")
	}
}
