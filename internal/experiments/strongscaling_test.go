package experiments

import (
	"strings"
	"testing"

	"repro/internal/collective"
)

func TestStrongScalingShrinksBatch(t *testing.T) {
	r := RunStrongScaling(collective.BackendMPIOpt, 512, 3, []int{1, 8, 32})
	if len(r.Points) != 3 {
		t.Fatalf("points %d", len(r.Points))
	}
	if r.Points[0].BatchPerGPU != 128 || r.Points[1].BatchPerGPU != 16 || r.Points[2].BatchPerGPU != 4 {
		t.Fatalf("batch split wrong: %+v", r.Points)
	}
	// Step time must shrink with more GPUs (that is the point of strong
	// scaling) and speedup must exceed 1.
	if r.Points[2].StepMs >= r.Points[0].StepMs {
		t.Fatalf("no strong-scaling benefit: %+v", r.Points)
	}
	if r.Points[2].Speedup <= 1.5 {
		t.Fatalf("speedup %g too small", r.Points[2].Speedup)
	}
}

func TestStrongScalingOptBeatsDefault(t *testing.T) {
	nodes := []int{1, 16, 64}
	def := RunStrongScaling(collective.BackendMPI, 512, 3, nodes)
	opt := RunStrongScaling(collective.BackendMPIOpt, 512, 3, nodes)
	last := len(nodes) - 1
	if opt.Points[last].Speedup <= def.Points[last].Speedup {
		t.Fatalf("optimized strong-scaling speedup (%g) should beat default (%g)",
			opt.Points[last].Speedup, def.Points[last].Speedup)
	}
	out := FormatStrongScaling([]StrongScalingResult{def, opt})
	if !strings.Contains(out, "Strong scaling") {
		t.Fatal("format broken")
	}
}

func TestStrongScalingAmdahlBound(t *testing.T) {
	// The bound must exceed measured speedups and grow with GPU count.
	b16 := StrongScalingAmdahlBound(512, 16)
	b256 := StrongScalingAmdahlBound(512, 256)
	if b256 <= b16 {
		t.Fatalf("bound should grow with GPUs: %g vs %g", b16, b256)
	}
	if StrongScalingAmdahlBound(512, 4096) <= 0 {
		t.Fatal("degenerate bound")
	}
}
