package experiments

import (
	"fmt"
	"strings"

	"repro/internal/collective"
	"repro/internal/scaling"
)

// CompressionRow compares fp32 vs fp16-compressed gradients for one
// backend at one scale.
type CompressionRow struct {
	Backend      collective.Backend
	FP32ImgPerS  float64
	FP16ImgPerS  float64
	GainPercent  float64
	FP16Messages float64 // per step
}

// RunCompressionStudy evaluates fp16 gradient compression — the paper's
// natural future-work lever — on the simulated cluster. Compression
// halves every payload, which interacts with the paper's mechanism in
// two ways: it shrinks the traffic the slow staged path must carry
// (helping default MPI most), and it pushes some fused messages *below*
// the 16 MB IPC threshold, clawing back part of MPI-Opt's advantage.
func RunCompressionStudy(nodes, steps int) []CompressionRow {
	var rows []CompressionRow
	for _, b := range []collective.Backend{collective.BackendMPI, collective.BackendMPIOpt, collective.BackendNCCL} {
		fp32 := scaling.Run(scaling.Options{Nodes: nodes, Backend: b, Steps: steps})
		fp16 := scaling.Run(scaling.Options{Nodes: nodes, Backend: b, Steps: steps, FP16Gradients: true})
		row := CompressionRow{
			Backend:      b,
			FP32ImgPerS:  fp32.ImagesPerSec,
			FP16ImgPerS:  fp16.ImagesPerSec,
			FP16Messages: float64(fp16.Messages) / float64(steps),
		}
		if fp32.ImagesPerSec > 0 {
			row.GainPercent = (fp16.ImagesPerSec/fp32.ImagesPerSec - 1) * 100
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatCompression renders the study.
func FormatCompression(rows []CompressionRow, nodes int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FP16 gradient compression (extension) — %d GPUs\n", nodes*4)
	fmt.Fprintf(&b, "%-10s %12s %12s %10s\n", "Backend", "fp32 img/s", "fp16 img/s", "gain %")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %12.1f %12.1f %10.1f\n", r.Backend, r.FP32ImgPerS, r.FP16ImgPerS, r.GainPercent)
	}
	fmt.Fprintf(&b, "Halving payloads helps the bandwidth-bound default most; the optimized\n")
	fmt.Fprintf(&b, "backend gains less (and loses some messages below the 16 MB IPC threshold).\n")
	return b.String()
}
